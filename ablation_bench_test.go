package ucp_test

// Ablation benchmarks for the design choices DESIGN.md calls out. Each
// reports the metric delta between the chosen design point and an
// alternative, over the reduced trace set.

import (
	"testing"

	"ucp"
)

// BenchmarkAblationStreamSwitchHysteresis varies how many consecutive
// µ-op cache window hits build mode needs before returning to stream
// mode. Too little hysteresis thrashes modes; too much wastes stream
// opportunities.
func BenchmarkAblationStreamSwitchHysteresis(b *testing.B) {
	b.ReportAllocs()
	var imps [3]float64
	hits := []int{1, 3, 8}
	for i := 0; i < b.N; i++ {
		base := ucp.Baseline() // StreamSwitchHits = 3
		for j, h := range hits {
			cfg := ucp.Baseline()
			cfg.Name = "hyst"
			cfg.Frontend.StreamSwitchHits = h
			imps[j] = geomean(b, base, cfg)
		}
	}
	b.ReportMetric(imps[0], "hits1-%")
	b.ReportMetric(imps[1], "hits3-%")
	b.ReportMetric(imps[2], "hits8-%")
}

// BenchmarkAblationModeSwitchPenalty quantifies the stream/build switch
// penalty the paper charges (1 cycle, §V); a free switch bounds how much
// of the slowdown on switch-heavy traces it explains.
func BenchmarkAblationModeSwitchPenalty(b *testing.B) {
	b.ReportAllocs()
	var free, heavy float64
	for i := 0; i < b.N; i++ {
		cfg0 := ucp.Baseline()
		cfg0.Name = "switch0"
		cfg0.Frontend.ModeSwitchPenalty = 0
		free = geomean(b, ucp.Baseline(), cfg0)
		cfg3 := ucp.Baseline()
		cfg3.Name = "switch3"
		cfg3.Frontend.ModeSwitchPenalty = 3
		heavy = geomean(b, ucp.Baseline(), cfg3)
	}
	b.ReportMetric(free, "penalty0-%")
	b.ReportMetric(heavy, "penalty3-%")
}

// BenchmarkAblationAltFTQSize varies UCP's 24-entry Alt-FTQ (§IV-F).
func BenchmarkAblationAltFTQSize(b *testing.B) {
	b.ReportAllocs()
	var small, big float64
	for i := 0; i < b.N; i++ {
		mk := func(n int, name string) ucp.Config {
			u := ucp.DefaultUCP()
			u.AltFTQEntries = n
			c := ucp.WithUCP(u)
			c.Name = name
			return c
		}
		small = geomean(b, ucp.Baseline(), mk(8, "aftq8"))
		big = geomean(b, ucp.Baseline(), mk(64, "aftq64"))
	}
	b.ReportMetric(small, "aftq8-%")
	b.ReportMetric(big, "aftq64-%")
}

// BenchmarkAblationWalkWidth varies how many alternate-path addresses
// UCP generates per cycle (one 16-address window in the paper's model).
func BenchmarkAblationWalkWidth(b *testing.B) {
	b.ReportAllocs()
	var narrow, wide float64
	for i := 0; i < b.N; i++ {
		mk := func(w int, name string) ucp.Config {
			u := ucp.DefaultUCP()
			u.WalkWidth = w
			c := ucp.WithUCP(u)
			c.Name = name
			return c
		}
		narrow = geomean(b, ucp.Baseline(), mk(4, "walk4"))
		wide = geomean(b, ucp.Baseline(), mk(16, "walk16"))
	}
	b.ReportMetric(narrow, "walk4-%")
	b.ReportMetric(wide, "walk16-%")
}

// BenchmarkAblationInclusiveUop measures the §IV-G2 design point the
// paper argues against: keeping the µ-op cache inclusive of the L1I
// limits reach on large footprints.
func BenchmarkAblationInclusiveUop(b *testing.B) {
	b.ReportAllocs()
	var imp float64
	for i := 0; i < b.N; i++ {
		inc := ucp.Baseline()
		inc.Name = "inclusive"
		inc.InclusiveUop = true
		imp = geomean(b, ucp.Baseline(), inc)
	}
	b.ReportMetric(imp, "inclusive-vs-nonincl-%")
}

// BenchmarkAblationUopMSHRs varies UCP's 32-entry µ-op cache MSHR file.
func BenchmarkAblationUopMSHRs(b *testing.B) {
	b.ReportAllocs()
	var small float64
	for i := 0; i < b.N; i++ {
		u := ucp.DefaultUCP()
		u.UopMSHRs = 4
		cfg := ucp.WithUCP(u)
		cfg.Name = "mshr4"
		base := ucp.WithUCP(ucp.DefaultUCP())
		small = geomean(b, base, cfg)
	}
	b.ReportMetric(small, "mshr4-vs-32-%")
}

// BenchmarkAblationBlockBTB compares the baseline instruction BTB with
// the block-based organization of §IV-C under UCP — the paper claims
// UCP is conceptually agnostic of the BTB organization.
func BenchmarkAblationBlockBTB(b *testing.B) {
	b.ReportAllocs()
	var delta float64
	for i := 0; i < b.N; i++ {
		base := ucp.WithUCP(ucp.DefaultUCP())
		blk := ucp.WithUCP(ucp.DefaultUCP())
		blk.Name = "UCP-blockbtb"
		bb := ucp.DefaultBlockBTB()
		blk.BlockBTB = &bb
		delta = geomean(b, base, blk)
	}
	b.ReportMetric(delta, "blockbtb-vs-instbtb-%")
}
