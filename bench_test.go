package ucp_test

// One benchmark per table/figure of the paper's evaluation. Each
// benchmark runs a miniature version of the corresponding experiment
// (reduced trace set, reduced instruction budget) and reports the
// figure's headline metric via b.ReportMetric, so `go test -bench=.`
// regenerates the whole evaluation in miniature. The full-scale runs
// live in cmd/experiments (see EXPERIMENTS.md).

import (
	"math"
	"sync"
	"testing"

	"ucp"
)

const (
	benchWarmup  = 250_000
	benchMeasure = 200_000
)

// benchTraces is the reduced set: one per workload category.
var benchTraces = []string{"crypto02", "int02", "srv203", "srv206"}

var (
	progCache = map[string]*ucp.Program{}
	progMu    sync.Mutex
)

func program(b *testing.B, name string) (ucp.Profile, *ucp.Program) {
	b.Helper()
	prof, ok := ucp.ProfileByName(name)
	if !ok {
		b.Fatalf("no profile %s", name)
	}
	progMu.Lock()
	defer progMu.Unlock()
	if p, ok := progCache[name]; ok {
		return prof, p
	}
	p, err := ucp.BuildProgram(prof)
	if err != nil {
		b.Fatal(err)
	}
	progCache[name] = p
	return prof, p
}

func runOne(b *testing.B, cfg ucp.Config, traceName string) ucp.Result {
	b.Helper()
	prof, prog := program(b, traceName)
	cfg.WarmupInsts, cfg.MeasureInsts = benchWarmup, benchMeasure
	src := ucp.Limit(ucp.NewWalker(prog), int(cfg.WarmupInsts+cfg.MeasureInsts)+100_000)
	res, err := ucp.Run(cfg, src, prog, prof.Name)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func geomean(b *testing.B, base, exp ucp.Config) float64 {
	b.Helper()
	sum := 0.0
	for _, tr := range benchTraces {
		r0 := runOne(b, base, tr)
		r1 := runOne(b, exp, tr)
		sum += math.Log(r1.IPC / r0.IPC)
	}
	return (math.Exp(sum/float64(len(benchTraces))) - 1) * 100
}

func noUop() ucp.Config {
	c := ucp.Baseline()
	c.Name = "no-uop"
	c.Ideal.NoUopCache = true
	return c
}

// BenchmarkFig02UopCacheVsNone measures the IPC improvement of the
// 4Kops µ-op cache over no µ-op cache (Fig. 2).
func BenchmarkFig02UopCacheVsNone(b *testing.B) {
	b.ReportAllocs()
	var imp float64
	for i := 0; i < b.N; i++ {
		imp = geomean(b, noUop(), ucp.Baseline())
	}
	b.ReportMetric(imp, "geomean-improvement-%")
}

// BenchmarkFig03HitRateSwitchPKI measures the baseline µ-op cache hit
// rate and mode-switch PKI (Fig. 3).
func BenchmarkFig03HitRateSwitchPKI(b *testing.B) {
	b.ReportAllocs()
	var hr, sw float64
	for i := 0; i < b.N; i++ {
		hr, sw = 0, 0
		for _, tr := range benchTraces {
			r := runOne(b, ucp.Baseline(), tr)
			hr += r.UopHitRate
			sw += r.SwitchPKI
		}
		hr /= float64(len(benchTraces))
		sw /= float64(len(benchTraces))
	}
	b.ReportMetric(hr*100, "amean-hitrate-%")
	b.ReportMetric(sw, "amean-switch-pki")
}

// BenchmarkFig04SizeSweep measures the speedup of a 16Kops µ-op cache
// and of the ideal µ-op cache over the 4Kops baseline (Fig. 4).
func BenchmarkFig04SizeSweep(b *testing.B) {
	b.ReportAllocs()
	big := ucp.Baseline()
	big.Name = "uop-16K"
	big.Uop.Ops = 16384
	ideal := ucp.Baseline()
	ideal.Name = "uop-ideal"
	ideal.Ideal.UopAlwaysHit = true
	var impBig, impIdeal float64
	for i := 0; i < b.N; i++ {
		impBig = geomean(b, ucp.Baseline(), big)
		impIdeal = geomean(b, ucp.Baseline(), ideal)
	}
	b.ReportMetric(impBig, "16Kops-%")
	b.ReportMetric(impIdeal, "ideal-%")
}

// BenchmarkFig05PrefetcherStudy measures a standalone L1I prefetcher
// and the IdealBRCond-16 configuration against the no-prefetcher
// baseline (Fig. 5).
func BenchmarkFig05PrefetcherStudy(b *testing.B) {
	b.ReportAllocs()
	ep := ucp.Baseline()
	ep.Name = "pf-ep"
	ep.L1IPrefetcher = "ep"
	br16 := ucp.Baseline()
	br16.Name = "brcond16"
	br16.Ideal.BRCondN = 16
	var impEP, impBR float64
	for i := 0; i < b.N; i++ {
		impEP = geomean(b, ucp.Baseline(), ep)
		impBR = geomean(b, ucp.Baseline(), br16)
	}
	b.ReportMetric(impEP, "EP-%")
	b.ReportMetric(impBR, "IdealBRCond16-%")
}

// BenchmarkFig06ConfidenceProfile exercises the TAGE-SC-L component
// profiling behind Fig. 6 (per-provider misprediction behavior).
func BenchmarkFig06ConfidenceProfile(b *testing.B) {
	b.ReportAllocs()
	var miss float64
	for i := 0; i < b.N; i++ {
		r := runOne(b, ucp.Baseline(), "srv203")
		miss = r.CondMPKI
	}
	b.ReportMetric(miss, "cond-mpki")
}

// BenchmarkFig07MispredictShare measures total misprediction pressure
// feeding the Fig. 7 component-share analysis.
func BenchmarkFig07MispredictShare(b *testing.B) {
	b.ReportAllocs()
	var mpki float64
	for i := 0; i < b.N; i++ {
		mpki = 0
		for _, tr := range benchTraces {
			mpki += runOne(b, ucp.Baseline(), tr).CondMPKI
		}
		mpki /= float64(len(benchTraces))
	}
	b.ReportMetric(mpki, "amean-cond-mpki")
}

// BenchmarkFig09H2PCoverageAccuracy measures H2P coverage/accuracy of
// both confidence estimators (Fig. 9).
func BenchmarkFig09H2PCoverageAccuracy(b *testing.B) {
	b.ReportAllocs()
	var tCov, uCov, uAcc float64
	for i := 0; i < b.N; i++ {
		tCov, uCov, uAcc = 0, 0, 0
		for _, tr := range benchTraces {
			r := runOne(b, ucp.Baseline(), tr)
			tCov += r.FE.H2PTage.Coverage()
			uCov += r.FE.H2PUCP.Coverage()
			uAcc += r.FE.H2PUCP.Accuracy()
		}
		n := float64(len(benchTraces))
		tCov, uCov, uAcc = tCov/n, uCov/n, uAcc/n
	}
	b.ReportMetric(tCov*100, "tageconf-coverage-%")
	b.ReportMetric(uCov*100, "ucpconf-coverage-%")
	b.ReportMetric(uAcc*100, "ucpconf-accuracy-%")
}

// BenchmarkFig10UCPvsBaseline measures baseline and UCP against the
// no-µ-op-cache machine (Fig. 10).
func BenchmarkFig10UCPvsBaseline(b *testing.B) {
	b.ReportAllocs()
	var impBase, impUCP float64
	for i := 0; i < b.N; i++ {
		impBase = geomean(b, noUop(), ucp.Baseline())
		impUCP = geomean(b, noUop(), ucp.WithUCP(ucp.DefaultUCP()))
	}
	b.ReportMetric(impBase, "baseline-%")
	b.ReportMetric(impUCP, "UCP-%")
}

// BenchmarkFig11SpeedupMPKI measures the headline UCP speedup (Fig. 11).
func BenchmarkFig11SpeedupMPKI(b *testing.B) {
	b.ReportAllocs()
	var imp float64
	for i := 0; i < b.N; i++ {
		imp = geomean(b, ucp.Baseline(), ucp.WithUCP(ucp.DefaultUCP()))
	}
	b.ReportMetric(imp, "UCP-geomean-%")
}

// BenchmarkFig12Variants measures UCP without Alt-Ind and UCP with
// TAGE-Conf (Fig. 12).
func BenchmarkFig12Variants(b *testing.B) {
	b.ReportAllocs()
	noind := ucp.WithUCP(ucp.NoIndUCP())
	noind.Name = "UCP-NoInd"
	tconf := ucp.DefaultUCP()
	tconf.Estimator = ucp.EstimatorTageConf
	tc := ucp.WithUCP(tconf)
	tc.Name = "UCP-TageConf"
	var impNoInd, impTConf float64
	for i := 0; i < b.N; i++ {
		impNoInd = geomean(b, ucp.Baseline(), noind)
		impTConf = geomean(b, ucp.Baseline(), tc)
	}
	b.ReportMetric(impNoInd, "UCP-NoIND-%")
	b.ReportMetric(impTConf, "UCP-TageConf-%")
}

// BenchmarkFig13UCPHitRate measures the µ-op cache hit rate under UCP
// (Fig. 13).
func BenchmarkFig13UCPHitRate(b *testing.B) {
	b.ReportAllocs()
	cfg := ucp.WithUCP(ucp.DefaultUCP())
	var hr float64
	for i := 0; i < b.N; i++ {
		hr = 0
		for _, tr := range benchTraces {
			hr += runOne(b, cfg, tr).UopHitRate
		}
		hr /= float64(len(benchTraces))
	}
	b.ReportMetric(hr*100, "amean-hitrate-%")
}

// BenchmarkFig14PrefetchAccuracy measures UCP prefetch accuracy
// (Fig. 14).
func BenchmarkFig14PrefetchAccuracy(b *testing.B) {
	b.ReportAllocs()
	cfg := ucp.WithUCP(ucp.DefaultUCP())
	var acc float64
	for i := 0; i < b.N; i++ {
		acc = 0
		for _, tr := range benchTraces {
			acc += runOne(b, cfg, tr).PrefetchAccuracy
		}
		acc /= float64(len(benchTraces))
	}
	b.ReportMetric(acc*100, "amean-accuracy-%")
}

// BenchmarkFig15ThresholdSweep measures two points of the stopping
// threshold sweep (Fig. 15).
func BenchmarkFig15ThresholdSweep(b *testing.B) {
	b.ReportAllocs()
	low := ucp.DefaultUCP()
	low.StopThreshold = 16
	lowCfg := ucp.WithUCP(low)
	lowCfg.Name = "UCP-T16"
	var imp16, imp500 float64
	for i := 0; i < b.N; i++ {
		imp16 = geomean(b, ucp.Baseline(), lowCfg)
		imp500 = geomean(b, ucp.Baseline(), ucp.WithUCP(ucp.DefaultUCP()))
	}
	b.ReportMetric(imp16, "T16-%")
	b.ReportMetric(imp500, "T500-%")
}

// BenchmarkFig16Pareto measures the two UCP Pareto points (speedup per
// KB of storage, Fig. 16).
func BenchmarkFig16Pareto(b *testing.B) {
	b.ReportAllocs()
	var perKB, perKBNoInd float64
	for i := 0; i < b.N; i++ {
		full := ucp.WithUCP(ucp.DefaultUCP())
		imp := geomean(b, ucp.Baseline(), full)
		r := runOne(b, full, "srv203")
		perKB = imp / r.UCPStorageKB

		noind := ucp.WithUCP(ucp.NoIndUCP())
		noind.Name = "UCP-NoInd"
		impN := geomean(b, ucp.Baseline(), noind)
		rn := runOne(b, noind, "srv203")
		perKBNoInd = impN / rn.UCPStorageKB
	}
	b.ReportMetric(perKB, "UCP-%/KB")
	b.ReportMetric(perKBNoInd, "UCP-NoInd-%/KB")
}

// BenchmarkArtifactTable measures the four artifact variants (the
// appendix's summary table).
func BenchmarkArtifactTable(b *testing.B) {
	b.ReportAllocs()
	mk := func(mut func(*ucp.UCPConfig), name string) ucp.Config {
		u := ucp.DefaultUCP()
		mut(&u)
		c := ucp.WithUCP(u)
		c.Name = name
		return c
	}
	var imps [4]float64
	cfgs := []ucp.Config{
		ucp.WithUCP(ucp.DefaultUCP()),
		mk(func(u *ucp.UCPConfig) { u.TillL1I = true }, "UCP-TillL1I"),
		mk(func(u *ucp.UCPConfig) { u.SharedDecoders = true }, "UCP-SharedDecoders"),
		mk(func(u *ucp.UCPConfig) { u.IdealBTBBanking = true }, "UCP-IdealBTBBanking"),
	}
	for i := 0; i < b.N; i++ {
		for j, cfg := range cfgs {
			imps[j] = geomean(b, ucp.Baseline(), cfg)
		}
	}
	b.ReportMetric(imps[0], "UCP-%")
	b.ReportMetric(imps[1], "TillL1I-%")
	b.ReportMetric(imps[2], "SharedDecoders-%")
	b.ReportMetric(imps[3], "IdealBTBBanking-%")
}

// BenchmarkSimulatorThroughput reports raw simulation speed
// (instructions per second) on the baseline machine.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runOne(b, ucp.Baseline(), "int02")
	}
	b.ReportMetric(float64(benchWarmup+benchMeasure)*float64(b.N)/b.Elapsed().Seconds(), "insts/s")
}
