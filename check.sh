#!/bin/sh
# check.sh — the tier-1+ verification gate (see ROADMAP.md).
#
# Runs, in order:
#   1. gofmt -l            (no unformatted files)
#   2. go vet ./...        (stdlib vet)
#   3. go build ./...      (everything compiles)
#   4. ucplint ./...       (custom determinism / hardware-invariant lints)
#   5. ucplint -determinism (two seeded runs must byte-match)
#   6. go test -race ./... (full suite under the race detector)
#   7. fuzz smoke          (each internal/trace fuzz target, 5s)
#
# Any failure aborts immediately with a nonzero exit.
set -eu

cd "$(dirname "$0")"

step() { printf '\n== %s ==\n' "$*"; }

step "gofmt"
UNFMT=$(gofmt -l .)
if [ -n "$UNFMT" ]; then
	echo "unformatted files:" >&2
	echo "$UNFMT" >&2
	exit 1
fi

step "go vet"
go vet ./...

step "go build"
go build ./...

step "ucplint"
go run ./cmd/ucplint ./...

step "ucplint -determinism"
go run ./cmd/ucplint -determinism -determinism-insts 60000

step "go test -race"
go test -race ./...

# `go test -fuzz` accepts a single target at a time, so smoke each one.
step "fuzz smoke (internal/trace)"
go test -fuzz=FuzzReadAny -fuzztime=5s -run='^$' ./internal/trace
go test -fuzz=FuzzValidate -fuzztime=5s -run='^$' ./internal/trace

printf '\ncheck.sh: all gates passed\n'
