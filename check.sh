#!/bin/sh
# check.sh — the tier-1+ verification gate (see ROADMAP.md).
#
# Runs, in order:
#   1. gofmt -l            (no unformatted files)
#   2. go vet ./...        (stdlib vet)
#   3. go build ./...      (everything compiles)
#   4. ucplint ./...       (custom determinism / hardware-invariant lints)
#   5. ucplint -determinism (two seeded runs must byte-match)
#   6. go test -race ./... (full suite under the race detector)
#   7. fuzz smoke          (each internal/trace fuzz target, 5s)
#   8. runq determinism    (quick sweep at -jobs 1 vs -jobs 8 vs a warm
#                           cache must be byte-identical; wall-clock
#                           ratios are recorded in BENCH_runq.json but
#                           never gated — timing is machine noise)
#
# Any failure aborts immediately with a nonzero exit.
set -eu

cd "$(dirname "$0")"

step() { printf '\n== %s ==\n' "$*"; }

step "gofmt"
UNFMT=$(gofmt -l .)
if [ -n "$UNFMT" ]; then
	echo "unformatted files:" >&2
	echo "$UNFMT" >&2
	exit 1
fi

step "go vet"
go vet ./...

step "go build"
go build ./...

step "ucplint"
go run ./cmd/ucplint ./...

step "ucplint -determinism"
go run ./cmd/ucplint -determinism -determinism-insts 60000

step "go test -race"
go test -race ./...

# `go test -fuzz` accepts a single target at a time, so smoke each one.
step "fuzz smoke (internal/trace)"
go test -fuzz=FuzzReadAny -fuzztime=5s -run='^$' ./internal/trace
go test -fuzz=FuzzValidate -fuzztime=5s -run='^$' ./internal/trace

step "runq parallel determinism"
# The report must be byte-identical whether runs execute serially, on 8
# workers, or replay from a warm on-disk cache. Timings go to
# BENCH_runq.json as a record; cmp is the only gate.
RUNQ_TMP=$(mktemp -d)
trap 'rm -rf "$RUNQ_TMP"' EXIT
go build -o "$RUNQ_TMP/experiments" ./cmd/experiments
now_ms() { echo $(( $(date +%s%N) / 1000000 )); }

T0=$(now_ms)
"$RUNQ_TMP/experiments" -all -quick -warmup 60000 -measure 60000 \
	-jobs 1 -progress=false -o "$RUNQ_TMP/serial.md"
T1=$(now_ms)
"$RUNQ_TMP/experiments" -all -quick -warmup 60000 -measure 60000 \
	-jobs 8 -progress=false -cache-dir "$RUNQ_TMP/cache" -o "$RUNQ_TMP/parallel.md"
T2=$(now_ms)
"$RUNQ_TMP/experiments" -all -quick -warmup 60000 -measure 60000 \
	-jobs 8 -progress=false -cache-dir "$RUNQ_TMP/cache" -o "$RUNQ_TMP/warm.md"
T3=$(now_ms)

cmp "$RUNQ_TMP/serial.md" "$RUNQ_TMP/parallel.md" || {
	echo "runq: -jobs 8 report differs from -jobs 1" >&2; exit 1; }
cmp "$RUNQ_TMP/serial.md" "$RUNQ_TMP/warm.md" || {
	echo "runq: cache-warm report differs from cold" >&2; exit 1; }

SERIAL_MS=$((T1 - T0)); PARALLEL_MS=$((T2 - T1)); WARM_MS=$((T3 - T2))
awk -v s="$SERIAL_MS" -v p="$PARALLEL_MS" -v w="$WARM_MS" -v j="$(nproc)" 'BEGIN {
	printf "{\n"
	printf "  \"bench\": \"runq quick sweep (-all -quick, 60k+60k insts)\",\n"
	printf "  \"cores\": %d,\n", j
	printf "  \"serial_ms\": %d,\n", s
	printf "  \"parallel8_ms\": %d,\n", p
	printf "  \"warm_cache_ms\": %d,\n", w
	printf "  \"parallel_speedup\": %.2f,\n", (p > 0 ? s / p : 0)
	printf "  \"warm_fraction_of_cold\": %.3f\n", (s > 0 ? w / s : 0)
	printf "}\n"
}' > BENCH_runq.json
echo "runq: serial=${SERIAL_MS}ms parallel8=${PARALLEL_MS}ms warm=${WARM_MS}ms (BENCH_runq.json)"

printf '\ncheck.sh: all gates passed\n'
