#!/bin/sh
# check.sh — the tier-1+ verification gate (see ROADMAP.md).
#
# Usage: ./check.sh [-fast] [-only <gate>]
#
#   -fast         skip the fuzz smoke, sweep-reuse, autopilot, and
#                 sweepd gates (the slowest four); everything else runs.
#                 Use for inner-loop iteration; CI and pre-merge runs
#                 use the full gate.
#   -only <gate>  run a single gate by id (tool binaries are still
#                 built so every gate stays self-contained). Gate ids:
#                 fmt vet build lint lint-determinism test fuzz runq
#                 hotpath hotpath-bench sampling tpar wpar sweepreuse
#                 autopilot sweepd schema
#
# Each gate's wall-clock time is printed when the next gate starts, and
# a per-gate timing summary table is printed at the end.
#
# Runs, in order:
#   1. gofmt -l            (no unformatted files)
#   2. go vet ./...        (stdlib vet)
#   3. go build ./...      (everything compiles)
#   4. ucplint ./...       (custom determinism / hardware-invariant
#                           lints, including the interprocedural
#                           seedflow/mergeorder/sharedstate/mapemit/
#                           hotalloc dataflow rules; runs with -json
#                           against .ucplint-baseline.json — exit 0
#                           clean, 1 findings, 2 load error)
#   5. ucplint -determinism (two seeded runs must byte-match)
#   6. go test -race ./... (full suite under the race detector)
#   7. fuzz smoke          (each internal/trace fuzz target, 5s)
#   8. runq determinism    (quick sweep at -jobs 1 vs -jobs 8 vs a warm
#                           cache must be byte-identical; wall-clock
#                           ratios are recorded in BENCH_runq.json but
#                           never gated — timing is machine noise)
#   9. hotpath gate        (quick-sweep determinism digests must byte-
#                           match testdata/hotpath_digest.golden — every
#                           optimization is provably outcome-neutral —
#                           and a BenchmarkSimQuick smoke records
#                           insts/s + allocs/inst into BENCH_hotpath.json)
#  10. sampling gate       (paired full-vs-sampled sweep in one process:
#                           per-point IPC error must stay under 2% and
#                           the aggregate wall-clock speedup at or above
#                           10x; measurements land in BENCH_sampling.json;
#                           the sampled side must digest identically twice)
#  11. time-parallel gate  (one full-detail UCP run executed serial,
#                           segmented at two worker counts, and through
#                           a capture+restore checkpoint cycle — every
#                           segmented digest byte-identical, all four
#                           boundaries captured and restored, boundary-
#                           warming IPC error < 2%; recorded in
#                           BENCH_tpar.json. Then ucpsim itself runs
#                           -segments 4 at -jobs 1 vs -jobs 8 and the
#                           digest files must cmp-equal)
#  11b. window-parallel gate (one sampled UCP run executed chain-serial,
#                           window-parallel at two worker counts, through
#                           a capture+restore checkpoint cycle, and
#                           adaptively at both worker counts — every
#                           window-parallel digest byte-identical, all 20
#                           window boundaries captured and restored, the
#                           adaptive run stopping at the same window at
#                           every worker count, window-independence IPC
#                           error < 2%, and scaling >= 0.7 x min(cores,
#                           windows) on multi-core hosts (single-core
#                           hosts carry a note); recorded in
#                           BENCH_wpar.json. Then ucpsim itself runs
#                           -sample -segments 4 at -jobs 1 vs -jobs 8
#                           and the digest files must cmp-equal)
#  12. sweep-reuse gate    (cold vs arena+checkpoint pool over a
#                           10-config sampled threshold ablation: every
#                           digest byte-identical, exactly one warm
#                           checkpoint captured and N-1 restored, and
#                           wall-clock speedup at or above 3x; recorded
#                           in BENCH_sweepreuse.json)
#  12b. autopilot gate     (adaptive sampling must meet its CI target in
#                           fewer windows than fixed geometry with the
#                           full-detail IPC inside the claimed interval,
#                           and the confidence-pruned 10-config search
#                           must return the exhaustive winner for at
#                           least 2x fewer simulated instructions, twice
#                           identically; recorded in BENCH_autopilot.json,
#                           Pareto table spliced into EXPERIMENTS_RESULTS.md)
#  13. sweepd gate         (local pool vs a loopback sweepd server over
#                           the same ablation: digests byte-identical
#                           over the wire, each distinct job executed
#                           exactly once across two remote passes, the
#                           warm pass fully coalesced — recorded in
#                           BENCH_sweepd.json; then the real sweepd
#                           binary serves ucpsim -server and the remote
#                           digest file must cmp-equal the local one)
#  14. BENCH schema        (every BENCH_*.json carries the shared
#                           schema_version/bench/cores envelope)
#
# Any failure aborts immediately with a nonzero exit.
set -eu

cd "$(dirname "$0")"

KNOWN_GATES="fmt vet build lint lint-determinism test fuzz runq hotpath hotpath-bench sampling tpar wpar sweepreuse autopilot sweepd schema"

FAST=0
ONLY=""
while [ $# -gt 0 ]; do
	case "$1" in
	-fast) FAST=1 ;;
	-only)
		shift
		[ $# -gt 0 ] || { echo "check.sh: -only requires a gate id (one of: $KNOWN_GATES)" >&2; exit 2; }
		ONLY="$1"
		case " $KNOWN_GATES " in
		*" $ONLY "*) ;;
		*) echo "check.sh: unknown gate \"$ONLY\" (one of: $KNOWN_GATES)" >&2; exit 2 ;;
		esac
		;;
	*) echo "check.sh: unknown argument $1 (usage: ./check.sh [-fast] [-only <gate>])" >&2; exit 2 ;;
	esac
	shift
done

# want reports whether the named gate should run under -only filtering.
want() { [ -z "$ONLY" ] || [ "$ONLY" = "$1" ]; }

now_ms() { echo $(( $(date +%s%N) / 1000000 )); }

# step prints the previous gate's wall-clock time, records it for the
# summary table, then opens the next gate.
STEP_NAME=""
STEP_T0=0
TIMINGS=""
step() {
	_now=$(now_ms)
	if [ -n "$STEP_NAME" ]; then
		_ms=$((_now - STEP_T0))
		printf '   [%s: %sms]\n' "$STEP_NAME" "$_ms"
		TIMINGS="${TIMINGS}${STEP_NAME}|${_ms}
"
	fi
	STEP_NAME="$*"
	STEP_T0=$_now
	printf '\n== %s ==\n' "$*"
}

RUNQ_TMP=$(mktemp -d)
SWEEPD_PID=""
trap '[ -n "$SWEEPD_PID" ] && kill "$SWEEPD_PID" 2>/dev/null; rm -rf "$RUNQ_TMP"' EXIT

# Tool binaries are built unconditionally (the Go build cache makes
# repeats cheap) so any -only gate is self-contained.
step "tool build"
go build -o "$RUNQ_TMP/ucplint" ./cmd/ucplint
go build -o "$RUNQ_TMP/experiments" ./cmd/experiments
go build -o "$RUNQ_TMP/ucpsim" ./cmd/ucpsim
CORES=$("$RUNQ_TMP/experiments" -numcpu)
SERIAL_MS=0

if want fmt; then
step "gofmt"
UNFMT=$(gofmt -l .)
if [ -n "$UNFMT" ]; then
	echo "unformatted files:" >&2
	echo "$UNFMT" >&2
	exit 1
fi
fi

if want vet; then
step "go vet"
go vet ./...
fi

if want build; then
step "go build"
go build ./...
fi

if want lint; then
step "ucplint"
# The lint gate covers the whole module (./... includes cmd/) and runs
# in JSON mode against the committed baseline. Exit codes are stable:
# 0 clean, 1 findings, 2 load error — run the built binary, not
# `go run`, which collapses any nonzero child status to 1.
if "$RUNQ_TMP/ucplint" -json -baseline .ucplint-baseline.json ./... > "$RUNQ_TMP/lint.json"; then
	echo "ucplint: clean (no findings outside .ucplint-baseline.json)"
else
	rc=$?
	if [ "$rc" -eq 1 ]; then
		cat "$RUNQ_TMP/lint.json" >&2
		N=$(grep -c '"rule":' "$RUNQ_TMP/lint.json" || true)
		echo "ucplint: $N finding(s) outside the baseline" >&2
	else
		echo "ucplint: load error (exit $rc)" >&2
	fi
	exit 1
fi
fi

if want lint-determinism; then
step "ucplint -determinism"
"$RUNQ_TMP/ucplint" -determinism -determinism-insts 60000
fi

if want test; then
step "go test -race"
go test -race ./...
fi

# `go test -fuzz` accepts a single target at a time, so smoke each one.
if want fuzz; then
step "fuzz smoke (internal/trace)"
if [ "$FAST" -eq 0 ]; then
	go test -fuzz=FuzzReadAny -fuzztime=5s -run='^$' ./internal/trace
	go test -fuzz=FuzzValidate -fuzztime=5s -run='^$' ./internal/trace
else
	echo "skipped (-fast)"
fi
fi

if want runq; then
step "runq parallel determinism"
# The report must be byte-identical whether runs execute serially, on 8
# workers, or replay from a warm on-disk cache. Timings go to
# BENCH_runq.json as a record; cmp is the only gate.
T0=$(now_ms)
"$RUNQ_TMP/experiments" -all -quick -warmup 60000 -measure 60000 \
	-jobs 1 -progress=false -o "$RUNQ_TMP/serial.md"
T1=$(now_ms)
"$RUNQ_TMP/experiments" -all -quick -warmup 60000 -measure 60000 \
	-jobs 8 -progress=false -cache-dir "$RUNQ_TMP/cache" -o "$RUNQ_TMP/parallel.md"
T2=$(now_ms)
"$RUNQ_TMP/experiments" -all -quick -warmup 60000 -measure 60000 \
	-jobs 8 -progress=false -cache-dir "$RUNQ_TMP/cache" -o "$RUNQ_TMP/warm.md"
T3=$(now_ms)

cmp "$RUNQ_TMP/serial.md" "$RUNQ_TMP/parallel.md" || {
	echo "runq: -jobs 8 report differs from -jobs 1" >&2; exit 1; }
cmp "$RUNQ_TMP/serial.md" "$RUNQ_TMP/warm.md" || {
	echo "runq: cache-warm report differs from cold" >&2; exit 1; }

SERIAL_MS=$((T1 - T0)); PARALLEL_MS=$((T2 - T1)); WARM_MS=$((T3 - T2))
# Cores come from the Go runtime — GOMAXPROCS, what the worker pool
# actually schedules on, which a container CPU quota can pin below
# nproc. On a single-core box -jobs 8 time-slices one CPU, so no
# speedup is expected; the record says so in a note instead of
# presenting the ratio as a regression.
awk -v s="$SERIAL_MS" -v p="$PARALLEL_MS" -v w="$WARM_MS" -v j="$CORES" 'BEGIN {
	printf "{\n"
	printf "  \"schema_version\": 1,\n"
	printf "  \"bench\": \"runq quick sweep (-all -quick, 60k+60k insts)\",\n"
	printf "  \"cores\": %d,\n", j
	printf "  \"serial_ms\": %d,\n", s
	printf "  \"parallel8_ms\": %d,\n", p
	printf "  \"warm_cache_ms\": %d,\n", w
	printf "  \"parallel_speedup\": %.2f,\n", (p > 0 ? s / p : 0)
	if (j < 2) {
		printf "  \"note\": \"single-core host (GOMAXPROCS=%d): parallel_speedup is time-slicing, no speedup expected\",\n", j
	}
	printf "  \"warm_fraction_of_cold\": %.3f\n", (s > 0 ? w / s : 0)
	printf "}\n"
}' > BENCH_runq.json
echo "runq: serial=${SERIAL_MS}ms parallel8=${PARALLEL_MS}ms warm=${WARM_MS}ms cores=${CORES} (BENCH_runq.json)"
fi

if want hotpath; then
step "hotpath determinism digest"
# The hard gate of the hot-path work: the quick-sweep determinism
# digests (baseline + UCP, 60k+60k insts) must be byte-identical to the
# pre-optimization golden. Any optimization that changes a simulated
# outcome — one cycle, one counter — fails here.
{
	"$RUNQ_TMP/ucpsim" -trace quick -digest -warmup 60000 -measure 60000
	"$RUNQ_TMP/ucpsim" -trace quick -ucp -digest -warmup 60000 -measure 60000
} > "$RUNQ_TMP/digest.txt"
cmp "$RUNQ_TMP/digest.txt" testdata/hotpath_digest.golden || {
	echo "hotpath: determinism digest differs from testdata/hotpath_digest.golden" >&2
	echo "hotpath: an optimization changed simulated outcomes (or the model changed" >&2
	echo "hotpath: intentionally — then regenerate the golden and say so in the PR)" >&2
	exit 1
}
echo "hotpath: digests match golden"
fi

if want hotpath-bench; then
step "hotpath benchmark (BenchmarkSimQuick)"
# One iteration is enough for a smoke + a steady-state allocs/inst
# reading (the sim loop is allocation-free; construction amortizes).
# Timings are recorded, never gated.
go test -run '^$' -bench '^BenchmarkSimQuick$' -benchtime=1x . | tee "$RUNQ_TMP/bench.txt"
grep -q '^BenchmarkSimQuick' "$RUNQ_TMP/bench.txt" || {
	echo "hotpath: BenchmarkSimQuick produced no result line" >&2; exit 1; }
# seed_serial_ms is the quick-sweep serial wall clock of the
# pre-optimization tree (commit 4e3b42d), measured interleaved with the
# optimized build on the same machine to cancel thermal drift.
# sweep_serial_ms is 0 when the runq gate did not run this invocation.
awk -v s="$SERIAL_MS" -v j="$CORES" -v seed=28645 '
	/^BenchmarkSimQuick/ {
		for (i = 2; i <= NF; i++) {
			if ($i == "insts/s")     ips = $(i-1)
			if ($i == "allocs/inst") api = $(i-1)
		}
	}
	END {
		printf "{\n"
		printf "  \"schema_version\": 1,\n"
		printf "  \"bench\": \"BenchmarkSimQuick (quick set, baseline+UCP, 30k+30k insts each)\",\n"
		printf "  \"cores\": %d,\n", j
		printf "  \"simulated_insts_per_sec\": %.0f,\n", ips
		printf "  \"allocs_per_inst\": %.5f,\n", api
		printf "  \"sweep_serial_ms\": %d,\n", s
		printf "  \"seed_serial_ms\": %d,\n", seed
		printf "  \"speedup_vs_seed\": %.2f\n", (s > 0 ? seed / s : 0)
		printf "}\n"
	}' "$RUNQ_TMP/bench.txt" > BENCH_hotpath.json
echo "hotpath: $(tr -d '\n' < BENCH_hotpath.json | tr -s ' ')"
fi

if want sampling; then
step "sampling gate"
# Paired full-vs-sampled sweep (no-uop / baseline / UCP on crypto01,
# 25M measured insts) in one process so the wall-clock ratio is
# thermally comparable. Gated: per-point IPC error < 2%, aggregate
# speedup >= 10x, sampled runs digest-identical across two passes.
"$RUNQ_TMP/experiments" -sample-gate -sample-bench BENCH_sampling.json
fi

if want tpar; then
step "time-parallel gate"
# One full-detail UCP run on crypto01 executed five ways in one process
# (serial, segmented w1, segmented wN, checkpoint capture, checkpoint
# restore). Gated: segmented digests byte-identical across worker counts
# and across the capture/restore cycle, 4 boundaries captured + 4
# restored, boundary-warming IPC error < 2%. Scaling is gated only on
# multi-core hosts; single-core runs carry a note in BENCH_tpar.json.
"$RUNQ_TMP/experiments" -tpar-gate -tpar-bench BENCH_tpar.json

# End-to-end half: ucpsim itself, segmented, at two pool worker counts —
# the whole digest file (which includes the per-segment timepar lines)
# must be byte-identical.
"$RUNQ_TMP/ucpsim" -trace srv203 -ucp -digest -warmup 60000 -measure 60000 \
	-segments 4 -jobs 1 > "$RUNQ_TMP/tpar_digest_j1.txt"
"$RUNQ_TMP/ucpsim" -trace srv203 -ucp -digest -warmup 60000 -measure 60000 \
	-segments 4 -jobs 8 > "$RUNQ_TMP/tpar_digest_j8.txt"
cmp "$RUNQ_TMP/tpar_digest_j1.txt" "$RUNQ_TMP/tpar_digest_j8.txt" || {
	echo "tpar: segmented ucpsim digest differs between -jobs 1 and -jobs 8" >&2; exit 1; }
echo "tpar: segmented ucpsim digests byte-identical across worker counts"
fi

if want wpar; then
step "window-parallel gate"
# One sampled UCP run on crypto01 executed seven ways in one process
# (chain-serial, window-parallel w1, window-parallel wN, checkpoint
# capture, checkpoint restore, adaptive w1, adaptive wN). Gated:
# window-parallel digests byte-identical across worker counts and
# across the capture/restore cycle, all 20 window boundaries captured +
# restored, the adaptive run stopping at the same window at both worker
# counts, window-independence IPC error < 2%, and scaling >= 0.7 x
# min(cores, windows) on multi-core hosts. Single-core runs carry a
# note in BENCH_wpar.json.
"$RUNQ_TMP/experiments" -wpar-gate -wpar-bench BENCH_wpar.json

# End-to-end half: ucpsim itself, sampled + segmented, at two pool
# worker counts — the whole digest file (sampled window lines, adaptive
# provenance, and timepar window lines) must be byte-identical.
"$RUNQ_TMP/ucpsim" -trace srv203 -ucp -digest -warmup 60000 -measure 200000 \
	-sample -sample-period 50000 -sample-window 2000 \
	-segments 4 -jobs 1 > "$RUNQ_TMP/wpar_digest_j1.txt"
"$RUNQ_TMP/ucpsim" -trace srv203 -ucp -digest -warmup 60000 -measure 200000 \
	-sample -sample-period 50000 -sample-window 2000 \
	-segments 4 -jobs 8 > "$RUNQ_TMP/wpar_digest_j8.txt"
cmp "$RUNQ_TMP/wpar_digest_j1.txt" "$RUNQ_TMP/wpar_digest_j8.txt" || {
	echo "wpar: sampled segmented ucpsim digest differs between -jobs 1 and -jobs 8" >&2; exit 1; }
echo "wpar: sampled segmented ucpsim digests byte-identical across worker counts"
fi

if want sweepreuse; then
step "sweep-reuse gate"
if [ "$FAST" -eq 0 ]; then
	# Cold pool (per-job fast-forward) vs a fresh arena+checkpoint pool
	# over one warm-key-sharing sampled sweep, in one process. Gated:
	# digests byte-identical cold vs warm, one checkpoint captured + N-1
	# restored, wall-clock speedup >= 3x.
	"$RUNQ_TMP/experiments" -sweepreuse-gate -sweepreuse-bench BENCH_sweepreuse.json
else
	echo "skipped (-fast)"
fi
fi

if want autopilot; then
step "autopilot gate"
if [ "$FAST" -eq 0 ]; then
	# Part A: an adaptive run (FastSampling + a ±2% CI target) must meet
	# its target in strictly fewer windows than the fixed geometry, with
	# the full-detail reference IPC inside its claimed interval, twice
	# digest-identically. Part B: the confidence-pruned 10-config search
	# must name the same winner as exhaustive enumeration at >=2x fewer
	# simulated instructions, and a repeat search must reproduce winner,
	# rounds, spend, and winning digest. The Pareto table is regenerated
	# in EXPERIMENTS_RESULTS.md between its markers.
	"$RUNQ_TMP/experiments" -autopilot-gate -autopilot-bench BENCH_autopilot.json
else
	echo "skipped (-fast)"
fi
fi

if want sweepd; then
step "sweepd gate"
if [ "$FAST" -eq 0 ]; then
	# In-process half: local pool vs a loopback sweepd server over the
	# same ablation sweep, plus a second remote pass. Gated: every digest
	# byte-identical over the wire, the server executes each distinct job
	# exactly once, the whole second pass coalesces, and its checkpoint
	# tier captures once + restores N-1 times.
	"$RUNQ_TMP/experiments" -sweepd-gate -sweepd-bench BENCH_sweepd.json

	# End-to-end half: the real sweepd binary serving a real ucpsim
	# client. The remote digest file must be byte-identical to the local
	# one — same binary, same flags, only -server differs.
	go build -o "$RUNQ_TMP/sweepd" ./cmd/sweepd
	"$RUNQ_TMP/sweepd" -addr 127.0.0.1:0 -quiet 2> "$RUNQ_TMP/sweepd.log" &
	SWEEPD_PID=$!
	ADDR=""
	i=0
	while [ $i -lt 100 ]; do
		ADDR=$(sed -n 's/^sweepd: listening on //p' "$RUNQ_TMP/sweepd.log")
		[ -n "$ADDR" ] && break
		sleep 0.1
		i=$((i + 1))
	done
	[ -n "$ADDR" ] || { echo "sweepd: server did not come up" >&2; exit 1; }
	{
		"$RUNQ_TMP/ucpsim" -trace quick -digest -warmup 60000 -measure 60000
		"$RUNQ_TMP/ucpsim" -trace quick -ucp -digest -warmup 60000 -measure 60000
	} > "$RUNQ_TMP/digest_local.txt"
	{
		"$RUNQ_TMP/ucpsim" -trace quick -digest -warmup 60000 -measure 60000 -server "http://$ADDR"
		"$RUNQ_TMP/ucpsim" -trace quick -ucp -digest -warmup 60000 -measure 60000 -server "http://$ADDR"
	} > "$RUNQ_TMP/digest_remote.txt"
	kill "$SWEEPD_PID" 2>/dev/null || true
	wait "$SWEEPD_PID" 2>/dev/null || true
	SWEEPD_PID=""
	cmp "$RUNQ_TMP/digest_local.txt" "$RUNQ_TMP/digest_remote.txt" || {
		echo "sweepd: remote digests differ from local (wire round-trip is lossy)" >&2; exit 1; }
	echo "sweepd: end-to-end remote digests byte-identical to local"
else
	echo "skipped (-fast)"
fi
fi

if want schema; then
step "BENCH schema"
# Every benchmark record shares the same envelope so downstream tooling
# can discover and parse them uniformly. In -fast mode the sweep-reuse,
# autopilot, and sweepd records may be stale or absent; only gate them
# on full runs. Under -only, gate whichever records exist on disk.
SCHEMA_FILES="BENCH_runq.json BENCH_hotpath.json BENCH_sampling.json BENCH_tpar.json BENCH_wpar.json"
if [ "$FAST" -eq 0 ]; then
	SCHEMA_FILES="$SCHEMA_FILES BENCH_sweepreuse.json BENCH_autopilot.json BENCH_sweepd.json"
fi
if [ -n "$ONLY" ]; then
	PRESENT=""
	for f in $SCHEMA_FILES; do
		[ -f "$f" ] && PRESENT="$PRESENT $f"
	done
	SCHEMA_FILES="$PRESENT"
fi
for f in $SCHEMA_FILES; do
	[ -f "$f" ] || { echo "BENCH schema: $f missing" >&2; exit 1; }
	grep -q '"schema_version": 1' "$f" || {
		echo "BENCH schema: $f lacks \"schema_version\": 1" >&2; exit 1; }
	grep -q '"bench": "' "$f" || {
		echo "BENCH schema: $f lacks a \"bench\" description" >&2; exit 1; }
	grep -q '"cores": ' "$f" || {
		echo "BENCH schema: $f lacks a \"cores\" stamp" >&2; exit 1; }
done
echo "BENCH schema: records conform ($SCHEMA_FILES)"
fi

step "done"
printf 'gate timing summary:\n'
printf '%s' "$TIMINGS" | awk -F'|' '{
	printf "  %-36s %8d ms\n", $1, $2
	total += $2
}
END { printf "  %-36s %8d ms\n", "total", total }'
printf 'check.sh: all gates passed\n'
