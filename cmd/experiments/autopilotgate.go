package main

import (
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strings"

	"ucp/internal/autopilot"
	"ucp/internal/harness"
	"ucp/internal/runq"
	"ucp/internal/sim"
	"ucp/internal/trace"
)

// The autopilot gate has two halves, both documented in EXPERIMENTS.md.
//
// Part A — adaptive-sampling soundness. One adaptive run (FastSampling
// geometry plus a CI target) on crypto01 against the full-detail
// reference and the fixed-geometry sampled run:
//   - the adaptive run must report its target met, using strictly fewer
//     windows than the fixed geometry's budget;
//   - the full-detail IPC must lie inside the adaptive run's own
//     claimed 95% interval (the CI is honest, not just narrow);
//   - two adaptive passes must produce byte-identical digests.
//
// Part B — confidence-pruned search efficiency. A seeded 10-config
// ablation on srv203 searched with autopilot.Search against the
// autopilot.Exhaustive reference (every config straight at the final
// target):
//   - both strategies must name the same winner;
//   - the search must spend at least autopilotMinSpendRatio× fewer
//     simulated instructions (measured-region stream advance) than
//     exhaustive;
//   - a second Search over a fresh pool must reproduce the winner, the
//     round count, the spend, and the winning digest byte-for-byte.
//
// The gate also regenerates the autopilot Pareto section of
// EXPERIMENTS_RESULTS.md between its markers.
const (
	// Part A: crypto01 is the trace the FastSampling geometry is
	// specified for, and the only one with a full-detail reference cheap
	// enough to recompute per gate run.
	adaptiveGateTrace   = "crypto01"
	adaptiveGateWarmup  = 400_000
	adaptiveGateMeasure = 25_000_000
	adaptiveGateTarget  = 0.02 // relative 95% half-width target

	// Part B: int01 pairs clear grid separation (the µ-op cache matters:
	// no-uop 2.61 → ideal 3.88 IPC) with low per-window variance
	// (~8% relative sd at this geometry), so the coarse probes stop
	// after a handful of windows while the final target stays meetable
	// inside the 80-window budget — both are what give pruning its
	// leverage. The server traces are the counterexample: srv203's ~27%
	// per-window sd makes even a ±4% target cost the whole budget, and a
	// search degenerates to exhaustive plus overhead.
	autopilotGateTrace     = "int01"
	autopilotGateWarmup    = 400_000
	autopilotGateMeasure   = 20_000_000
	autopilotGateCoarse    = 0.05
	autopilotGateFinal     = 0.02
	autopilotGateMinWin    = 0 // sim defaults
	autopilotMinSpendRatio = 2.0
)

// autopilotResultsMarkers delimit the generated Pareto section in
// EXPERIMENTS_RESULTS.md.
const (
	autopilotBeginMarker = "<!-- BEGIN GENERATED: autopilot-pareto -->"
	autopilotEndMarker   = "<!-- END GENERATED: autopilot-pareto -->"
)

// autopilotGrid is the seeded ablation: the paper's headline reference
// points (no µ-op cache, baseline, ideal µ-op cache) plus the UCP
// threshold/estimator axes of Figs. 12 and 15. The ideal µ-op cache is
// the expected winner by a wide margin, so the other nine candidates
// are pruning fodder — which is the point: the gate measures how much
// of the exhaustive spend the search avoids without changing the
// answer.
func autopilotGrid() ([]runq.Job, *runq.Job, error) {
	prof, ok := trace.ProfileByName(autopilotGateTrace)
	if !ok {
		return nil, nil, fmt.Errorf("unknown profile %q", autopilotGateTrace)
	}
	sc := sim.SamplingConfig{
		Enabled:       true,
		PeriodInsts:   250_000,
		DetailedInsts: 5_000,
		WarmInsts:     5_000,
		FFWarmInsts:   25_000,
	}
	cfgs := []sim.Config{
		harness.NoUop(),
		harness.BaselineCfg(),
		harness.IdealUop(),
		harness.UCPThreshold(125, false),
		harness.UCPThreshold(250, false),
		harness.UCP(),
		harness.UCPThreshold(1000, false),
		harness.UCPThreshold(2000, false),
		harness.UCPNoInd(),
		harness.UCPTageConf(),
	}
	jobs := make([]runq.Job, len(cfgs))
	for i, cfg := range cfgs {
		cfg.Sampling = sc
		jobs[i] = runq.Job{Config: cfg, Profile: prof,
			Warmup: autopilotGateWarmup, Measure: autopilotGateMeasure}
	}
	baseCfg := harness.BaselineCfg()
	baseCfg.Sampling = sc
	baseline := &runq.Job{Config: baseCfg, Profile: prof,
		Warmup: autopilotGateWarmup, Measure: autopilotGateMeasure}
	return jobs, baseline, nil
}

// adaptiveGateResult carries Part A's measurements into the bench record.
type adaptiveGateResult struct {
	fullIPC         float64
	ipcMean, ipcCI  float64
	relHalf         float64
	fixedWindows    int
	adaptiveWindows int
	windowBudget    int
	targetMet       bool
}

// runAdaptiveSoundness executes Part A and appends violations.
func runAdaptiveSoundness(w io.Writer, violations *[]string) (adaptiveGateResult, error) {
	var out adaptiveGateResult
	prof, ok := trace.ProfileByName(adaptiveGateTrace)
	if !ok {
		return out, fmt.Errorf("unknown profile %q", adaptiveGateTrace)
	}
	prog, err := trace.BuildProgram(prof)
	if err != nil {
		return out, fmt.Errorf("building %s: %v", adaptiveGateTrace, err)
	}
	newSrc := func() trace.Source {
		return trace.NewLimit(trace.NewWalker(prog), adaptiveGateWarmup+adaptiveGateMeasure+200_000)
	}
	cfg := harness.BaselineCfg()
	cfg.WarmupInsts, cfg.MeasureInsts = adaptiveGateWarmup, adaptiveGateMeasure

	full, err := sim.Run(cfg, newSrc(), prog, adaptiveGateTrace)
	if err != nil {
		return out, fmt.Errorf("full-detail reference: %v", err)
	}

	fixedCfg := cfg
	fixedCfg.Sampling = sim.FastSampling()
	fixed, err := sim.Run(fixedCfg, newSrc(), prog, adaptiveGateTrace)
	if err != nil {
		return out, fmt.Errorf("fixed-geometry run: %v", err)
	}

	adCfg := fixedCfg
	adCfg.Sampling.TargetCI = adaptiveGateTarget
	adaptive, err := sim.Run(adCfg, newSrc(), prog, adaptiveGateTrace)
	if err != nil {
		return out, fmt.Errorf("adaptive run: %v", err)
	}
	again, err := sim.Run(adCfg, newSrc(), prog, adaptiveGateTrace)
	if err != nil {
		return out, fmt.Errorf("adaptive repeat: %v", err)
	}
	if adaptive.DeterminismDigest() != again.DeterminismDigest() {
		*violations = append(*violations, "adaptive: two passes digest differently")
	}

	s := adaptive.Sampled
	out = adaptiveGateResult{
		fullIPC: full.IPC, ipcMean: s.IPCMean, ipcCI: s.IPCCI95,
		fixedWindows: fixed.Sampled.Windows, adaptiveWindows: s.Windows,
		windowBudget: s.WindowBudget, targetMet: s.TargetMet,
	}
	if s.IPCMean > 0 {
		out.relHalf = s.IPCCI95 / s.IPCMean
	}
	if !s.TargetMet {
		*violations = append(*violations, fmt.Sprintf(
			"adaptive: target ±%.1f%% unmet within the %d-window budget", adaptiveGateTarget*100, s.WindowBudget))
	}
	if s.Windows >= fixed.Sampled.Windows {
		*violations = append(*violations, fmt.Sprintf(
			"adaptive: %d windows, no fewer than the fixed geometry's %d", s.Windows, fixed.Sampled.Windows))
	}
	if bias := math.Abs(s.IPCMean - full.IPC); bias > s.IPCCI95 {
		*violations = append(*violations, fmt.Sprintf(
			"adaptive: full-detail IPC %.4f outside the claimed interval %.4f ± %.4f",
			full.IPC, s.IPCMean, s.IPCCI95))
	}
	fmt.Fprintf(w, "  adaptive: %s full IPC %.4f; fixed %d windows; adaptive %d/%d windows, IPC %.4f ±%.4f (±%.2f%%, target ±%.0f%%, met=%v)\n",
		adaptiveGateTrace, full.IPC, fixed.Sampled.Windows, s.Windows, s.WindowBudget,
		s.IPCMean, s.IPCCI95, out.relHalf*100, adaptiveGateTarget*100, s.TargetMet)
	return out, nil
}

// newAutopilotPool builds a fresh serial arena+checkpoint pool — fresh
// so neither search pass nor the exhaustive reference reuses another
// pass's memo (spend is read from results, but executed-once semantics
// keep the determinism comparison honest).
func newAutopilotPool() *runq.Pool {
	return runq.New(runq.Options{Workers: 1, UseArena: true, Checkpoints: true})
}

func autopilotOpts(exec runq.Runner, grid []runq.Job, baseline *runq.Job) autopilot.Options {
	return autopilot.Options{
		Exec:           exec,
		Grid:           grid,
		Baseline:       baseline,
		CoarseTargetCI: autopilotGateCoarse,
		TargetCI:       autopilotGateFinal,
		MinWindows:     autopilotGateMinWin,
	}
}

// runAutopilotSweep is the -autopilot report mode: one confidence-
// pruned search over the seeded ablation grid, rendered as the Pareto
// table. It honors the harness options the figure sweeps use (-jobs,
// -cache-dir, -server, progress) and lets -adaptive tighten the final
// target.
func runAutopilotSweep(w io.Writer, hopts harness.Options, finalTarget float64) error {
	grid, baseline, err := autopilotGrid()
	if err != nil {
		return fmt.Errorf("autopilot: %v", err)
	}
	exec := hopts.Exec
	if exec == nil {
		exec = runq.New(runq.Options{
			Workers:  hopts.Jobs,
			CacheDir: hopts.CacheDir,
			UseArena: true, Checkpoints: true,
			Clock: hopts.Clock, Progress: hopts.Progress,
		})
	}
	opts := autopilotOpts(exec, grid, baseline)
	if finalTarget > 0 {
		opts.TargetCI = finalTarget
		if opts.CoarseTargetCI < finalTarget {
			opts.CoarseTargetCI = finalTarget
		}
	}
	opts.Log = hopts.Progress
	rep, err := autopilot.Search(opts)
	if err != nil {
		return fmt.Errorf("autopilot: %v", err)
	}
	fmt.Fprintf(w, "## Autopilot — confidence-pruned ablation search\n\n")
	fmt.Fprintf(w, "Trace %s, %d configs, %d warmup + %d measured insts per probe; targets ±%.1f%% → ±%.1f%%.\n\n",
		autopilotGateTrace, len(grid), autopilotGateWarmup, autopilotGateMeasure,
		opts.CoarseTargetCI*100, opts.TargetCI*100)
	rep.WriteMarkdown(w)
	return nil
}

// runAutopilotGate executes both halves, writes benchPath, regenerates
// the EXPERIMENTS_RESULTS.md Pareto section, and returns an error when
// any bound is violated.
func runAutopilotGate(w io.Writer, benchPath, resultsPath string) error {
	var violations []string

	fmt.Fprintf(w, "autopilot gate: adaptive soundness (%s, %d+%d insts, FastSampling + ±%.0f%% target)\n",
		adaptiveGateTrace, adaptiveGateWarmup, adaptiveGateMeasure, adaptiveGateTarget*100)
	ad, err := runAdaptiveSoundness(w, &violations)
	if err != nil {
		return fmt.Errorf("autopilot gate: %v", err)
	}

	grid, baseline, err := autopilotGrid()
	if err != nil {
		return fmt.Errorf("autopilot gate: %v", err)
	}
	fmt.Fprintf(w, "autopilot gate: confidence-pruned search (%s, %d configs, ±%.0f%%→±%.0f%% targets)\n",
		autopilotGateTrace, len(grid), autopilotGateCoarse*100, autopilotGateFinal*100)

	search, err := autopilot.Search(autopilotOpts(newAutopilotPool(), grid, baseline))
	if err != nil {
		return fmt.Errorf("autopilot gate: search: %v", err)
	}
	exhaustive, err := autopilot.Exhaustive(autopilotOpts(newAutopilotPool(), grid, baseline))
	if err != nil {
		return fmt.Errorf("autopilot gate: exhaustive: %v", err)
	}
	searchAgain, err := autopilot.Search(autopilotOpts(newAutopilotPool(), grid, baseline))
	if err != nil {
		return fmt.Errorf("autopilot gate: search repeat: %v", err)
	}

	winner := search.Candidates[search.WinnerIndex].Job.Config.Name
	exWinner := exhaustive.Candidates[exhaustive.WinnerIndex].Job.Config.Name
	if search.WinnerIndex != exhaustive.WinnerIndex {
		violations = append(violations, fmt.Sprintf(
			"search winner %s differs from exhaustive winner %s", winner, exWinner))
	}
	ratio := 0.0
	if search.TotalSpentInsts > 0 {
		ratio = float64(exhaustive.TotalSpentInsts) / float64(search.TotalSpentInsts)
	}
	if ratio < autopilotMinSpendRatio {
		violations = append(violations, fmt.Sprintf(
			"spend ratio %.2fx below the %.1fx bound (search %d vs exhaustive %d insts)",
			ratio, autopilotMinSpendRatio, search.TotalSpentInsts, exhaustive.TotalSpentInsts))
	}
	switch {
	case searchAgain.WinnerIndex != search.WinnerIndex:
		violations = append(violations, "second search names a different winner")
	case searchAgain.Rounds != search.Rounds || searchAgain.TotalSpentInsts != search.TotalSpentInsts:
		violations = append(violations, fmt.Sprintf(
			"second search spent differently (%d rounds / %d insts vs %d / %d)",
			searchAgain.Rounds, searchAgain.TotalSpentInsts, search.Rounds, search.TotalSpentInsts))
	case searchAgain.Candidates[searchAgain.WinnerIndex].Result.DeterminismDigest() !=
		search.Candidates[search.WinnerIndex].Result.DeterminismDigest():
		violations = append(violations, "second search's winning digest diverges")
	}
	pruned := 0
	for i := range search.Candidates {
		if search.Candidates[i].PrunedRound > 0 {
			pruned++
		}
	}
	fmt.Fprintf(w, "  search: winner %s after %d rounds, %d/%d pruned, %.1f Minsts spent\n",
		winner, search.Rounds, pruned, len(search.Candidates), float64(search.TotalSpentInsts)/1e6)
	fmt.Fprintf(w, "  exhaustive: winner %s, %.1f Minsts spent — search spends %.2fx less (bound: ≥%.1fx)\n",
		exWinner, float64(exhaustive.TotalSpentInsts)/1e6, ratio, autopilotMinSpendRatio)

	var table strings.Builder
	search.WriteMarkdown(&table)
	if err := spliceAutopilotResults(resultsPath, table.String()); err != nil {
		return fmt.Errorf("autopilot gate: %v", err)
	}
	fmt.Fprintf(w, "  Pareto table regenerated in %s\n", resultsPath)

	if err := writeAutopilotBench(benchPath, ad, winner, search, exhaustive, ratio, pruned); err != nil {
		return err
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "autopilot gate: %s\n", v)
		}
		return fmt.Errorf("autopilot gate: %d bound violation(s)", len(violations))
	}
	return nil
}

// spliceAutopilotResults replaces the generated Pareto section of
// EXPERIMENTS_RESULTS.md in place (appending the section, markers
// included, when the file has none yet).
func spliceAutopilotResults(path, table string) error {
	section := autopilotBeginMarker + "\n\n" +
		fmt.Sprintf("Confidence-pruned ablation on %s (%d warmup + %d measured insts per probe; targets ±%.0f%% → ±%.0f%%).\n\n",
			autopilotGateTrace, autopilotGateWarmup, autopilotGateMeasure,
			autopilotGateCoarse*100, autopilotGateFinal*100) +
		table + "\n" + autopilotEndMarker
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		data = nil
	}
	text := string(data)
	begin := strings.Index(text, autopilotBeginMarker)
	end := strings.Index(text, autopilotEndMarker)
	if begin >= 0 && end > begin {
		text = text[:begin] + section + text[end+len(autopilotEndMarker):]
	} else {
		if text != "" && !strings.HasSuffix(text, "\n") {
			text += "\n"
		}
		text += "\n## Autopilot — confidence-pruned ablation search\n\n" + section + "\n"
	}
	return os.WriteFile(path, []byte(text), 0o644)
}

// writeAutopilotBench records both halves' measurements in the shared
// BENCH_*.json schema (schema_version / bench / cores + payload).
func writeAutopilotBench(path string, ad adaptiveGateResult, winner string,
	search, exhaustive *autopilot.Report, ratio float64, pruned int) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("autopilot gate: %v", err)
	}
	defer f.Close()
	fmt.Fprintf(f, "{\n")
	fmt.Fprintf(f, "  \"schema_version\": 1,\n")
	fmt.Fprintf(f, "  \"bench\": \"autopilot gate (adaptive sampling on %s; pruned vs exhaustive %d-config search on %s)\",\n",
		adaptiveGateTrace, len(search.Candidates), autopilotGateTrace)
	fmt.Fprintf(f, "  \"cores\": %d,\n", runtime.NumCPU())
	fmt.Fprintf(f, "  \"adaptive\": {\n")
	fmt.Fprintf(f, "    \"trace\": %q,\n", adaptiveGateTrace)
	fmt.Fprintf(f, "    \"target_ci\": %.3f,\n", adaptiveGateTarget)
	fmt.Fprintf(f, "    \"full_ipc\": %.4f,\n", ad.fullIPC)
	fmt.Fprintf(f, "    \"adaptive_ipc_mean\": %.4f,\n", ad.ipcMean)
	fmt.Fprintf(f, "    \"adaptive_ipc_ci95\": %.4f,\n", ad.ipcCI)
	fmt.Fprintf(f, "    \"achieved_rel_half\": %.4f,\n", ad.relHalf)
	fmt.Fprintf(f, "    \"fixed_windows\": %d,\n", ad.fixedWindows)
	fmt.Fprintf(f, "    \"adaptive_windows\": %d,\n", ad.adaptiveWindows)
	fmt.Fprintf(f, "    \"window_budget\": %d,\n", ad.windowBudget)
	fmt.Fprintf(f, "    \"target_met\": %v\n", ad.targetMet)
	fmt.Fprintf(f, "  },\n")
	fmt.Fprintf(f, "  \"autopilot\": {\n")
	fmt.Fprintf(f, "    \"trace\": %q,\n", autopilotGateTrace)
	fmt.Fprintf(f, "    \"configs\": %d,\n", len(search.Candidates))
	fmt.Fprintf(f, "    \"coarse_target_ci\": %.3f,\n", autopilotGateCoarse)
	fmt.Fprintf(f, "    \"final_target_ci\": %.3f,\n", autopilotGateFinal)
	fmt.Fprintf(f, "    \"winner\": %q,\n", winner)
	fmt.Fprintf(f, "    \"rounds\": %d,\n", search.Rounds)
	fmt.Fprintf(f, "    \"pruned\": %d,\n", pruned)
	fmt.Fprintf(f, "    \"search_spent_insts\": %d,\n", search.TotalSpentInsts)
	fmt.Fprintf(f, "    \"exhaustive_spent_insts\": %d,\n", exhaustive.TotalSpentInsts)
	fmt.Fprintf(f, "    \"spend_ratio\": %.2f,\n", ratio)
	fmt.Fprintf(f, "    \"min_spend_ratio_bound\": %.1f\n", autopilotMinSpendRatio)
	fmt.Fprintf(f, "  }\n")
	fmt.Fprintf(f, "}\n")
	return nil
}
