// Command experiments regenerates the paper's evaluation: every figure
// and table has a named experiment that sweeps the relevant machine
// configurations over the synthetic trace set and prints the same
// rows/series the paper reports.
//
// Runs execute on an internal/runq worker pool (-jobs) and can be
// memoized across invocations through a content-addressed on-disk cache
// (-cache-dir). Reports are byte-identical at every worker count.
//
// Examples:
//
//	experiments -fig 11                 # one figure
//	experiments -all -o results.md      # the whole evaluation
//	experiments -all -jobs 8 -cache-dir ~/.cache/ucp
//	experiments -fig 15 -quick          # reduced trace set
//	experiments -fig artifact -warmup 1000000 -measure 1000000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ucp/internal/buildinfo"
	"ucp/internal/harness"
	"ucp/internal/sim"
	"ucp/internal/sweepd/client"
	"ucp/internal/trace"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure to regenerate: 2,3,4,5,6,7,9,10,11,12,13,14,15,16,artifact (6 and 7 run together)")
		all      = flag.Bool("all", false, "run the complete evaluation")
		quick    = flag.Bool("quick", false, "use the reduced 4-trace set")
		warmup   = flag.Uint64("warmup", 800_000, "warmup instructions per run")
		measure  = flag.Uint64("measure", 700_000, "measured instructions per run")
		out      = flag.String("o", "", "write the report to a file (default stdout)")
		verbose  = flag.Bool("v", false, "log every completed run")
		jobs     = flag.Int("jobs", 0, "concurrent simulations (default GOMAXPROCS); the report is byte-identical at any value")
		cacheDir = flag.String("cache-dir", "", "content-addressed result cache directory (empty: no on-disk cache)")
		progress = flag.Bool("progress", true, "print scheduler progress/ETA lines to stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a pprof allocation profile to this file on exit")
		numCPU   = flag.Bool("numcpu", false, "print the worker pool's core count (GOMAXPROCS) and exit (used by check.sh to stamp BENCH_runq.json)")
		sample   = flag.Bool("sample", false, "run sweeps in sampled mode (conservative geometry; see EXPERIMENTS.md)")
		adaptive = flag.Float64("adaptive", 0, "with -sample: adaptive stop — end each run once the relative 95% CI half-width of its window IPC mean drops below this")
		pilot    = flag.Bool("autopilot", false, "run the confidence-pruned ablation search (see EXPERIMENTS.md) and print its Pareto table")
		segments = flag.Int("segments", 0, "run every sweep time-parallel: split each run's measured region into this many boundary-warmed segments; with -sample, any value > 1 runs the sampled windows in parallel instead (0/1: serial)")
		tpGate   = flag.Bool("tpar-gate", false, "run the serial-vs-time-parallel gate, write -tpar-bench, and exit")
		tpOut    = flag.String("tpar-bench", "BENCH_tpar.json", "where -tpar-gate records its measurements")
		wpGate   = flag.Bool("wpar-gate", false, "run the serial-vs-window-parallel sampled gate, write -wpar-bench, and exit")
		wpOut    = flag.String("wpar-bench", "BENCH_wpar.json", "where -wpar-gate records its measurements")
		gate     = flag.Bool("sample-gate", false, "run the paired full-vs-sampled gate sweep, write -sample-bench, and exit")
		gateOut  = flag.String("sample-bench", "BENCH_sampling.json", "where -sample-gate records its measurements")
		srGate   = flag.Bool("sweepreuse-gate", false, "run the cold-vs-warm sweep-reuse gate, write -sweepreuse-bench, and exit")
		srOut    = flag.String("sweepreuse-bench", "BENCH_sweepreuse.json", "where -sweepreuse-gate records its measurements")
		apGate   = flag.Bool("autopilot-gate", false, "run the adaptive-soundness + pruned-vs-exhaustive gate, write -autopilot-bench, and exit")
		apOut    = flag.String("autopilot-bench", "BENCH_autopilot.json", "where -autopilot-gate records its measurements")
		apTable  = flag.String("autopilot-results", "EXPERIMENTS_RESULTS.md", "where -autopilot-gate splices the generated Pareto section")
		server   = flag.String("server", "", "run sweeps against a sweepd server at this URL instead of in-process (reports are byte-identical)")
		sdGate   = flag.Bool("sweepd-gate", false, "run the local-vs-remote sweepd gate, write -sweepd-bench, and exit")
		sdOut    = flag.String("sweepd-bench", "BENCH_sweepd.json", "where -sweepd-gate records its measurements")
		version  = flag.Bool("version", false, "print model/schema/protocol versions and exit")
	)
	flag.Parse()

	if *version {
		buildinfo.Fprint(os.Stdout, "experiments")
		return
	}
	if *numCPU {
		// GOMAXPROCS, not NumCPU: a container CPU quota caps what the
		// worker pool actually schedules on, and the benchmark records
		// should describe that machine, not the host's package count.
		fmt.Println(runtime.GOMAXPROCS(0))
		return
	}
	if *sdGate {
		if err := runSweepdGate(os.Stdout, *sdOut); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *apGate {
		if err := runAutopilotGate(os.Stdout, *apOut, *apTable); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *gate {
		if err := runSampleGate(os.Stdout, *gateOut); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *srGate {
		if err := runSweepReuseGate(os.Stdout, *srOut); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *tpGate {
		if err := runTparGate(os.Stdout, *tpOut); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *wpGate {
		if err := runWparGate(os.Stdout, *wpOut); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		path := *memProf
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	opts := harness.DefaultOptions(w)
	opts.Warmup, opts.Measure = *warmup, *measure
	opts.Verbose = *verbose
	opts.Jobs = *jobs
	opts.CacheDir = *cacheDir
	if *progress {
		// Progress goes to stderr, never the report writer, so timing
		// noise can't leak into the deterministic output.
		start := time.Now() //ucplint:ignore wallclock
		opts.Clock = func() time.Duration {
			return time.Since(start) //ucplint:ignore wallclock
		}
		opts.Progress = os.Stderr
	}
	if *quick {
		opts.Profiles = trace.QuickProfiles()
	}
	if *sample {
		opts.Sampling = sim.ConservativeSampling()
		if *adaptive > 0 {
			opts.Sampling.TargetCI = *adaptive
		}
	}
	if *adaptive > 0 && !*sample {
		fmt.Fprintln(os.Stderr, "experiments: -adaptive requires -sample (the stop rule acts on sampled windows)")
		os.Exit(1)
	}
	if err := (sim.Config{Sampling: opts.Sampling}).ValidateSegments(*segments); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	opts.Segments = *segments
	if *server != "" {
		c := client.New(*server)
		if *progress {
			c.Progress = os.Stderr
		}
		opts.Exec = c
	}
	if *pilot {
		if err := runAutopilotSweep(w, opts, *adaptive); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	r := harness.NewRunner(opts)

	figs := map[string]func() error{
		"2": r.Fig2, "3": r.Fig3, "4": r.Fig4, "5": r.Fig5,
		"6": r.Fig6and7, "7": r.Fig6and7, "9": r.Fig9, "9x": r.Fig9JRS,
		"10": r.Fig10, "11": r.Fig11, "12": r.Fig12, "13": r.Fig13,
		"14": r.Fig14, "15": r.Fig15, "16": r.Fig16,
		"artifact": r.ArtifactTable, "dist": r.Distributions,
	}
	if *all {
		fmt.Fprintf(w, "# UCP evaluation — full reproduction run\n\n")
		fmt.Fprintf(w, "Traces: %d synthetic profiles; %d warmup + %d measured instructions per run.\n",
			len(opts.Profiles), opts.Warmup, opts.Measure)
		order := []string{"2", "3", "4", "5", "6", "9", "9x", "10", "11", "12", "13", "14", "15", "16", "artifact", "dist"}
		failed := 0
		for _, k := range order {
			if err := figs[k](); err != nil {
				// A broken configuration fails its own figure; the rest of
				// the evaluation still runs. The marker is deterministic,
				// so reports stay comparable byte-for-byte.
				fmt.Fprintf(w, "\nFIGURE %s FAILED: %v\n", k, err)
				failed++
			}
		}
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "experiments: %d figure(s) failed\n", failed)
			os.Exit(1)
		}
		return
	}
	if *fig == "" {
		fmt.Fprintln(os.Stderr, "need -fig or -all; figures:",
			strings.Join([]string{"2", "3", "4", "5", "6", "7", "9", "10", "11", "12", "13", "14", "15", "16", "artifact"}, ","))
		os.Exit(1)
	}
	fn, ok := figs[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(1)
	}
	if err := fn(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
