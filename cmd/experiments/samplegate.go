package main

import (
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"ucp/internal/harness"
	"ucp/internal/sim"
	"ucp/internal/trace"
)

// The sampled-simulation gate: a paired full-vs-sampled sweep over the
// machine configurations of the paper's headline comparison (no µ-op
// cache / baseline / UCP) on crypto01, the small-footprint trace the
// bounded-horizon FastSampling geometry is specified for. Both sides of
// every pair run in this one process, back to back, so the wall-clock
// ratio compares like against like (the box's thermal state drifts
// between processes by ±20%).
//
// Gated bounds, also documented in EXPERIMENTS.md:
//   - per-point |sampled IPC − full IPC| / full IPC < 2%
//   - aggregate wall-clock speedup (Σ full / Σ sampled) ≥ 10×
//   - the sampled side is deterministic: two passes must produce
//     byte-identical determinism digests.
const (
	sampleGateTrace   = "crypto01"
	sampleGateWarmup  = 400_000
	sampleGateMeasure = 25_000_000
	sampleGateMaxErr  = 0.02
	sampleGateMinSpd  = 10.0
)

type samplePoint struct {
	label string
	cfg   sim.Config
}

// sampleRow is one measured gate point.
type sampleRow struct {
	label               string
	fullIPC, sampledIPC float64
	relErr              float64
	fullMS, sampledMS   int64
	windows             int
	ipcCI95             float64
	skipped, ff, detail uint64
}

func sampleGatePoints() []samplePoint {
	return []samplePoint{
		{"no-uop-cache", harness.NoUop()},
		{"baseline", harness.BaselineCfg()},
		{"UCP", harness.UCP()},
	}
}

// runSampleGate executes the paired sweep, writes benchPath, and
// returns an error when any bound is violated.
func runSampleGate(w io.Writer, benchPath string) error {
	prof, ok := trace.ProfileByName(sampleGateTrace)
	if !ok {
		return fmt.Errorf("sample gate: unknown profile %q", sampleGateTrace)
	}
	prog, err := trace.BuildProgram(prof)
	if err != nil {
		return fmt.Errorf("sample gate: building %s: %v", sampleGateTrace, err)
	}
	newSrc := func() trace.Source {
		return trace.NewLimit(trace.NewWalker(prog), sampleGateWarmup+sampleGateMeasure+200_000)
	}

	var (
		rows                   []sampleRow
		totalFull, totalSample time.Duration
		violations             []string
	)
	fmt.Fprintf(w, "sample gate: %s, %d warmup + %d measured insts, FastSampling geometry\n",
		sampleGateTrace, sampleGateWarmup, sampleGateMeasure)
	for _, pt := range sampleGatePoints() {
		cfg := pt.cfg
		cfg.WarmupInsts, cfg.MeasureInsts = sampleGateWarmup, sampleGateMeasure

		t0 := time.Now() //ucplint:ignore wallclock
		full, err := sim.Run(cfg, newSrc(), prog, sampleGateTrace)
		if err != nil {
			return fmt.Errorf("sample gate: full %s: %v", pt.label, err)
		}
		fullDur := time.Since(t0) //ucplint:ignore wallclock

		scfg := cfg
		scfg.Sampling = sim.FastSampling()
		t1 := time.Now() //ucplint:ignore wallclock
		sampled, err := sim.Run(scfg, newSrc(), prog, sampleGateTrace)
		if err != nil {
			return fmt.Errorf("sample gate: sampled %s: %v", pt.label, err)
		}
		sampledDur := time.Since(t1) //ucplint:ignore wallclock

		// Determinism: a second sampled pass must digest identically.
		again, err := sim.Run(scfg, newSrc(), prog, sampleGateTrace)
		if err != nil {
			return fmt.Errorf("sample gate: sampled repeat %s: %v", pt.label, err)
		}
		if a, b := sampled.DeterminismDigest(), again.DeterminismDigest(); a != b {
			violations = append(violations,
				fmt.Sprintf("%s: two sampled passes digest differently", pt.label))
		}

		relErr := math.Abs(sampled.IPC-full.IPC) / full.IPC
		totalFull += fullDur
		totalSample += sampledDur
		s := sampled.Sampled
		rows = append(rows, sampleRow{
			label: pt.label, fullIPC: full.IPC, sampledIPC: sampled.IPC,
			relErr: relErr, fullMS: fullDur.Milliseconds(), sampledMS: sampledDur.Milliseconds(),
			windows: s.Windows, ipcCI95: s.IPCCI95,
			skipped: s.SkippedInsts, ff: s.FFInsts, detail: s.DetailedInsts,
		})
		status := "ok"
		if relErr >= sampleGateMaxErr {
			status = "FAIL"
			violations = append(violations, fmt.Sprintf(
				"%s: IPC error %.2f%% exceeds the %.0f%% bound", pt.label, relErr*100, sampleGateMaxErr*100))
		}
		fmt.Fprintf(w, "  %-14s full IPC %.4f (%5dms)  sampled IPC %.4f ±%.4f (%4dms, %d windows)  err %.2f%%  %s\n",
			pt.label, full.IPC, fullDur.Milliseconds(), sampled.IPC, s.IPCCI95,
			sampledDur.Milliseconds(), s.Windows, relErr*100, status)
	}

	speedup := 0.0
	if totalSample > 0 {
		speedup = float64(totalFull) / float64(totalSample)
	}
	if speedup < sampleGateMinSpd {
		violations = append(violations, fmt.Sprintf(
			"aggregate speedup %.1fx below the %.0fx bound", speedup, sampleGateMinSpd))
	}
	fmt.Fprintf(w, "  aggregate: full %dms, sampled %dms — %.1fx speedup (bound: ≥%.0fx, err <%.0f%%)\n",
		totalFull.Milliseconds(), totalSample.Milliseconds(), speedup,
		sampleGateMinSpd, sampleGateMaxErr*100)

	if err := writeSampleBench(benchPath, rows, totalFull, totalSample, speedup); err != nil {
		return err
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "sample gate: %s\n", v)
		}
		return fmt.Errorf("sample gate: %d bound violation(s)", len(violations))
	}
	return nil
}

// writeSampleBench records the gate's measurements in the shared
// BENCH_*.json schema (schema_version / bench / cores + payload).
func writeSampleBench(path string, rows []sampleRow, totalFull, totalSample time.Duration, speedup float64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sample gate: %v", err)
	}
	defer f.Close()
	fmt.Fprintf(f, "{\n")
	fmt.Fprintf(f, "  \"schema_version\": 1,\n")
	fmt.Fprintf(f, "  \"bench\": \"sampled-simulation gate (%s, %d+%d insts, full vs FastSampling)\",\n",
		sampleGateTrace, sampleGateWarmup, sampleGateMeasure)
	fmt.Fprintf(f, "  \"cores\": %d,\n", runtime.NumCPU())
	fmt.Fprintf(f, "  \"max_ipc_err_bound\": %.2f,\n", sampleGateMaxErr)
	fmt.Fprintf(f, "  \"min_speedup_bound\": %.1f,\n", sampleGateMinSpd)
	maxErr := 0.0
	fmt.Fprintf(f, "  \"points\": [\n")
	for i, r := range rows {
		if r.relErr > maxErr {
			maxErr = r.relErr
		}
		comma := ","
		if i == len(rows)-1 {
			comma = ""
		}
		fmt.Fprintf(f, "    {\"config\": %q, \"full_ipc\": %.4f, \"sampled_ipc\": %.4f, \"ipc_err\": %.4f, \"ipc_ci95\": %.4f, \"windows\": %d, \"full_ms\": %d, \"sampled_ms\": %d, \"skipped_insts\": %d, \"functional_insts\": %d, \"detailed_insts\": %d}%s\n",
			r.label, r.fullIPC, r.sampledIPC, r.relErr, r.ipcCI95, r.windows,
			r.fullMS, r.sampledMS, r.skipped, r.ff, r.detail, comma)
	}
	fmt.Fprintf(f, "  ],\n")
	fmt.Fprintf(f, "  \"max_ipc_err\": %.4f,\n", maxErr)
	fmt.Fprintf(f, "  \"full_total_ms\": %d,\n", totalFull.Milliseconds())
	fmt.Fprintf(f, "  \"sampled_total_ms\": %d,\n", totalSample.Milliseconds())
	fmt.Fprintf(f, "  \"speedup\": %.2f\n", speedup)
	fmt.Fprintf(f, "}\n")
	return nil
}
