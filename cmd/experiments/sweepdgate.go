package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"ucp/internal/runq"
	"ucp/internal/sweepd"
	"ucp/internal/sweepd/client"
)

// The sweepd gate: the same crypto01 threshold-ablation sweep the
// sweep-reuse gate uses, run three ways in this one process —
// in-process on a local pool, remotely through a sweepd server on a
// loopback listener (cold: the server executes every job), and
// remotely again (warm: every submission coalesces onto the server's
// finished jobs, nothing re-executes). Local and remote passes use
// identical pool tiers (shared arena + warm checkpoints).
//
// Gated bounds, also documented in EXPERIMENTS.md:
//   - wire neutrality: every config's determinism digest must be
//     byte-identical local vs remote (the JSON round-trip over the
//     API is lossless);
//   - the server executes each distinct job exactly once across both
//     remote passes (fleet-wide dedup), with the whole second pass
//     served from its caches;
//   - the server's checkpoint tier behaves like the local one:
//     exactly one capture, every other execution restored from it.
const sweepdGateTrace = sweepReuseTrace

// runSweepdGate executes the three passes, writes benchPath, and
// returns an error when any bound is violated.
func runSweepdGate(w io.Writer, benchPath string) error {
	jobs, err := sweepReuseJobs()
	if err != nil {
		return fmt.Errorf("sweepd gate: %v", err)
	}
	fmt.Fprintf(w, "sweepd gate: %s, %d configs, local pool vs loopback sweepd server\n",
		sweepdGateTrace, len(jobs))

	tiers := runq.Options{UseArena: true, Checkpoints: true}

	// Local pass: the reference digests.
	localStart := time.Now() //ucplint:ignore wallclock
	localRes := runq.New(tiers).RunAll(jobs)
	localDur := time.Since(localStart) //ucplint:ignore wallclock
	local := make([]string, len(localRes))
	for i, jr := range localRes {
		if jr.Err != nil {
			return fmt.Errorf("sweepd gate: local pass: %s: %v", jobs[i].Config.Name, jr.Err)
		}
		local[i] = jr.Result.DeterminismDigest()
	}

	// The server, on a real loopback listener — the same HTTP path any
	// remote client takes, minus only the physical network.
	clockStart := time.Now() //ucplint:ignore wallclock
	srv := sweepd.New(sweepd.Config{
		Pool: tiers,
		Clock: func() time.Duration {
			return time.Since(clockStart) //ucplint:ignore wallclock
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("sweepd gate: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	defer srv.Shutdown(nil)
	cl := client.New("http://" + ln.Addr().String())

	remotePass := func() ([]string, time.Duration, error) {
		t0 := time.Now() //ucplint:ignore wallclock
		res := cl.RunAll(jobs)
		dur := time.Since(t0) //ucplint:ignore wallclock
		digests := make([]string, len(res))
		for i, jr := range res {
			if jr.Err != nil {
				return nil, 0, fmt.Errorf("%s: %v", jobs[i].Config.Name, jr.Err)
			}
			digests[i] = jr.Result.DeterminismDigest()
		}
		return digests, dur, nil
	}
	cold, coldDur, err := remotePass()
	if err != nil {
		return fmt.Errorf("sweepd gate: remote cold pass: %v", err)
	}
	warm, warmDur, err := remotePass()
	if err != nil {
		return fmt.Errorf("sweepd gate: remote warm pass: %v", err)
	}

	st, err := cl.Statz()
	if err != nil {
		return fmt.Errorf("sweepd gate: statz: %v", err)
	}

	var violations []string
	identical := true
	for i := range jobs {
		if cold[i] != local[i] || warm[i] != local[i] {
			identical = false
			violations = append(violations, fmt.Sprintf(
				"%s: remote digest diverges from local digest", jobs[i].Config.Name))
		}
	}
	if st.Pool.Runs != len(jobs) {
		violations = append(violations, fmt.Sprintf(
			"server executed %d jobs across both passes, want exactly %d (dedup broken)",
			st.Pool.Runs, len(jobs)))
	}
	if st.JobsCoalesced < len(jobs) {
		violations = append(violations, fmt.Sprintf(
			"only %d submissions coalesced, want >= %d (the whole warm pass)",
			st.JobsCoalesced, len(jobs)))
	}
	if st.JobsFailed != 0 {
		violations = append(violations, fmt.Sprintf("%d job(s) failed server-side", st.JobsFailed))
	}
	if st.CkptCaptured != 1 || st.CkptRestored != len(jobs)-1 {
		violations = append(violations, fmt.Sprintf(
			"server checkpoint tier captured %d / restored %d, want 1 and %d",
			st.CkptCaptured, st.CkptRestored, len(jobs)-1))
	}

	fmt.Fprintf(w, "  local %dms  remote cold %dms  remote warm %dms (all %d resubmissions coalesced)\n",
		localDur.Milliseconds(), coldDur.Milliseconds(), warmDur.Milliseconds(), len(jobs))
	fmt.Fprintf(w, "  digests: %d/%d byte-identical local vs remote; server ran %d jobs, captured %d ckpt, restored %d\n",
		identicalCount(local, cold), len(local), st.Pool.Runs, st.CkptCaptured, st.CkptRestored)

	if err := writeSweepdBench(benchPath, len(jobs), localDur, coldDur, warmDur, st, identical); err != nil {
		return err
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "sweepd gate: %s\n", v)
		}
		return fmt.Errorf("sweepd gate: %d bound violation(s)", len(violations))
	}
	return nil
}

// writeSweepdBench records the gate's measurements in the shared
// BENCH_*.json schema (schema_version / bench / cores + payload).
func writeSweepdBench(path string, configs int, localDur, coldDur, warmDur time.Duration, st sweepd.Statz, identical bool) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sweepd gate: %v", err)
	}
	defer f.Close()
	fmt.Fprintf(f, "{\n")
	fmt.Fprintf(f, "  \"schema_version\": 1,\n")
	fmt.Fprintf(f, "  \"bench\": \"sweepd gate (%s, %d-config ablation, local pool vs loopback server, cold+warm remote passes)\",\n",
		sweepdGateTrace, configs)
	fmt.Fprintf(f, "  \"cores\": %d,\n", runtime.NumCPU())
	fmt.Fprintf(f, "  \"configs\": %d,\n", configs)
	fmt.Fprintf(f, "  \"protocol\": %q,\n", sweepd.ProtocolVersion)
	fmt.Fprintf(f, "  \"local_ms\": %d,\n", localDur.Milliseconds())
	fmt.Fprintf(f, "  \"remote_cold_ms\": %d,\n", coldDur.Milliseconds())
	fmt.Fprintf(f, "  \"remote_warm_ms\": %d,\n", warmDur.Milliseconds())
	fmt.Fprintf(f, "  \"server_runs\": %d,\n", st.Pool.Runs)
	fmt.Fprintf(f, "  \"jobs_submitted\": %d,\n", st.JobsSubmitted)
	fmt.Fprintf(f, "  \"jobs_coalesced\": %d,\n", st.JobsCoalesced)
	fmt.Fprintf(f, "  \"ckpt_captured\": %d,\n", st.CkptCaptured)
	fmt.Fprintf(f, "  \"ckpt_restored\": %d,\n", st.CkptRestored)
	fmt.Fprintf(f, "  \"digests_identical\": %v\n", identical)
	fmt.Fprintf(f, "}\n")
	return nil
}
