package main

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"ucp/internal/harness"
	"ucp/internal/runq"
	"ucp/internal/sim"
	"ucp/internal/trace"
)

// The sweep-reuse gate: one UCP stop-threshold ablation — the sweep
// shape of Fig. 15, whose configurations differ only in measurement
// phase parameters and therefore share a single functional-warm key —
// run twice over the same trace. The cold pass is a plain pool (per-job
// generator walk, no checkpoints), the warm pass a fresh pool with the
// shared decoded arena and warm-checkpoint reuse enabled, so the sweep
// pays the functional fast-forward once instead of once per config.
// Both passes run in this one process, single-worker, back to back, so
// the wall-clock ratio compares serial work against serial work.
//
// Gated bounds, also documented in EXPERIMENTS.md:
//   - outcome neutrality: every config's determinism digest must be
//     byte-identical across the two passes;
//   - the warm pass must actually reuse: exactly one checkpoint
//     captured, every other job restored from it;
//   - wall-clock speedup (cold / warm) ≥ 3×.
const (
	sweepReuseTrace   = "crypto01"
	sweepReuseWarmup  = 6_000_000
	sweepReuseMeasure = 250_000
	sweepReuseMinSpd  = 3.0
)

// sweepReuseThresholds is the ablation axis. StopThreshold steers only
// the detailed-mode prefetch walk, so all points share one warm key.
var sweepReuseThresholds = []int{125, 250, 375, 500, 750, 1000, 1500, 2000, 3000, 4000}

// sweepReuseJobs builds the ablation sweep.
func sweepReuseJobs() ([]runq.Job, error) {
	prof, ok := trace.ProfileByName(sweepReuseTrace)
	if !ok {
		return nil, fmt.Errorf("unknown profile %q", sweepReuseTrace)
	}
	sc := sim.SamplingConfig{
		Enabled:       true,
		PeriodInsts:   250_000,
		DetailedInsts: 5_000,
		WarmInsts:     5_000,
		FFWarmInsts:   25_000,
	}
	jobs := make([]runq.Job, len(sweepReuseThresholds))
	for i, t := range sweepReuseThresholds {
		cfg := harness.UCPThreshold(t, false)
		cfg.Sampling = sc
		jobs[i] = runq.Job{Config: cfg, Profile: prof,
			Warmup: sweepReuseWarmup, Measure: sweepReuseMeasure}
	}
	return jobs, nil
}

// runSweepPass executes jobs serially on a fresh pool built from opts
// and returns the per-job digests plus the pass wall-clock.
func runSweepPass(opts runq.Options, jobs []runq.Job) (*runq.Pool, []string, time.Duration, error) {
	opts.Workers = 1
	pool := runq.New(opts)
	t0 := time.Now() //ucplint:ignore wallclock
	results := pool.RunAll(jobs)
	dur := time.Since(t0) //ucplint:ignore wallclock
	digests := make([]string, len(results))
	for i, jr := range results {
		if jr.Err != nil {
			return nil, nil, 0, fmt.Errorf("%s: %v", jobs[i].Config.Name, jr.Err)
		}
		digests[i] = jr.Result.DeterminismDigest()
	}
	return pool, digests, dur, nil
}

// runSweepReuseGate executes the paired cold/warm sweep, writes
// benchPath, and returns an error when any bound is violated.
func runSweepReuseGate(w io.Writer, benchPath string) error {
	jobs, err := sweepReuseJobs()
	if err != nil {
		return fmt.Errorf("sweep-reuse gate: %v", err)
	}
	fmt.Fprintf(w, "sweep-reuse gate: %s, %d configs (stop-threshold ablation), %d warmup + %d sampled insts per run\n",
		sweepReuseTrace, len(jobs), sweepReuseWarmup, sweepReuseMeasure)

	_, cold, coldDur, err := runSweepPass(runq.Options{}, jobs)
	if err != nil {
		return fmt.Errorf("sweep-reuse gate: cold pass: %v", err)
	}
	warmPool, warm, warmDur, err := runSweepPass(
		runq.Options{UseArena: true, Checkpoints: true}, jobs)
	if err != nil {
		return fmt.Errorf("sweep-reuse gate: warm pass: %v", err)
	}

	var violations []string
	identical := true
	for i := range cold {
		if cold[i] != warm[i] {
			identical = false
			violations = append(violations, fmt.Sprintf(
				"%s: warm digest diverges from cold digest", jobs[i].Config.Name))
		}
	}
	captured, restored := warmPool.CheckpointStats()
	if captured != 1 || restored != len(jobs)-1 {
		violations = append(violations, fmt.Sprintf(
			"warm pass captured %d checkpoint(s) and restored %d job(s), want 1 and %d",
			captured, restored, len(jobs)-1))
	}
	speedup := 0.0
	if warmDur > 0 {
		speedup = float64(coldDur) / float64(warmDur)
	}
	if speedup < sweepReuseMinSpd {
		violations = append(violations, fmt.Sprintf(
			"speedup %.1fx below the %.0fx bound", speedup, sweepReuseMinSpd))
	}
	fmt.Fprintf(w, "  cold %dms (per-job fast-forward)  warm %dms (1 capture + %d restores, shared arena) — %.1fx speedup (bound: ≥%.0fx)\n",
		coldDur.Milliseconds(), warmDur.Milliseconds(), restored, speedup, sweepReuseMinSpd)
	fmt.Fprintf(w, "  digests: %d/%d byte-identical cold vs warm\n", identicalCount(cold, warm), len(cold))

	if err := writeSweepReuseBench(benchPath, len(jobs), coldDur, warmDur, speedup, captured, restored, identical); err != nil {
		return err
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "sweep-reuse gate: %s\n", v)
		}
		return fmt.Errorf("sweep-reuse gate: %d bound violation(s)", len(violations))
	}
	return nil
}

func identicalCount(a, b []string) int {
	n := 0
	for i := range a {
		if a[i] == b[i] {
			n++
		}
	}
	return n
}

// writeSweepReuseBench records the gate's measurements in the shared
// BENCH_*.json schema (schema_version / bench / cores + payload).
func writeSweepReuseBench(path string, configs int, coldDur, warmDur time.Duration, speedup float64, captured, restored int, identical bool) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sweep-reuse gate: %v", err)
	}
	defer f.Close()
	fmt.Fprintf(f, "{\n")
	fmt.Fprintf(f, "  \"schema_version\": 1,\n")
	fmt.Fprintf(f, "  \"bench\": \"sweep-reuse gate (%s, %d-config threshold ablation, cold vs arena+checkpoint pool)\",\n",
		sweepReuseTrace, configs)
	fmt.Fprintf(f, "  \"cores\": %d,\n", runtime.NumCPU())
	fmt.Fprintf(f, "  \"configs\": %d,\n", configs)
	fmt.Fprintf(f, "  \"warmup_insts\": %d,\n", sweepReuseWarmup)
	fmt.Fprintf(f, "  \"measure_insts\": %d,\n", sweepReuseMeasure)
	fmt.Fprintf(f, "  \"min_speedup_bound\": %.1f,\n", sweepReuseMinSpd)
	fmt.Fprintf(f, "  \"cold_ms\": %d,\n", coldDur.Milliseconds())
	fmt.Fprintf(f, "  \"warm_ms\": %d,\n", warmDur.Milliseconds())
	fmt.Fprintf(f, "  \"speedup\": %.2f,\n", speedup)
	fmt.Fprintf(f, "  \"checkpoints_captured\": %d,\n", captured)
	fmt.Fprintf(f, "  \"checkpoints_restored\": %d,\n", restored)
	fmt.Fprintf(f, "  \"digests_identical\": %v\n", identical)
	fmt.Fprintf(f, "}\n")
	return nil
}
