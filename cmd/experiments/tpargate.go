package main

import (
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"ucp/internal/harness"
	"ucp/internal/runq"
	"ucp/internal/sim"
	"ucp/internal/trace"
)

// The time-parallel gate: one full-detail UCP run (the paper's headline
// configuration on crypto01, figure-scale instruction budgets) executed
// five ways in this one process — serial, time-parallel on one worker,
// time-parallel on every core, a checkpoint-capturing pass, and a
// checkpoint-restoring pass — so every wall-clock ratio compares like
// against like.
//
// Gated bounds, also documented in EXPERIMENTS.md:
//   - worker-count invariance: the segmented digests at 1 worker and at
//     GOMAXPROCS workers must be byte-identical;
//   - checkpoint neutrality: the capture pass and the restore pass must
//     digest byte-identically to the cold segmented run, and the
//     restore pass must actually hit the boundary-checkpoint store;
//   - boundary-warming error: |tpar IPC − serial IPC| / serial IPC
//     < 2% (same bar as the sampling gate — both subsample history);
//   - scaling (multi-core hosts only): t(workers=1) / t(workers=N)
//     ≥ 0.7 · min(cores, segments). On a single-core host the segments
//     time-slice one CPU, so the record carries a note instead.
const (
	tparGateTrace     = "crypto01"
	tparGateWarmup    = 800_000
	tparGateMeasure   = 700_000
	tparGateSegments  = 4
	tparGateMaxIPCErr = 0.02
	tparGateScaleFrac = 0.7
)

// tparGateBoundary is the conservative boundary-warm geometry the gate
// runs — the same posture as DefaultBoundaryWarm: zero Cache/BP budgets
// warm the entire skip zone, so no long-history state is ever dropped
// at a boundary. On crypto01 that holds the boundary-warming IPC error
// to ~0.6%; the bounded geometries trade error for boundary cost and
// land above the 2% bar (EXPERIMENTS.md).
func tparGateBoundary() sim.BoundaryWarm {
	return sim.BoundaryWarm{
		DetailedInsts: 5_000,
		FFInsts:       50_000,
	}
}

// runTparPass executes one job on a fresh pool and returns the pool,
// the result, and the pass wall-clock.
func runTparPass(opts runq.Options, job runq.Job) (*runq.Pool, sim.Result, time.Duration, error) {
	pool := runq.New(opts)
	t0 := time.Now() //ucplint:ignore wallclock
	rs := pool.RunAll([]runq.Job{job})
	dur := time.Since(t0) //ucplint:ignore wallclock
	if rs[0].Err != nil {
		return nil, sim.Result{}, 0, rs[0].Err
	}
	return pool, rs[0].Result, dur, nil
}

// runTparGate executes the five passes, writes benchPath, and returns
// an error when any bound is violated.
func runTparGate(w io.Writer, benchPath string) error {
	prof, ok := trace.ProfileByName(tparGateTrace)
	if !ok {
		return fmt.Errorf("tpar gate: unknown profile %q", tparGateTrace)
	}
	cores := runtime.GOMAXPROCS(0)
	cfg := harness.UCP()
	serialJob := runq.Job{Config: cfg, Profile: prof, Warmup: tparGateWarmup, Measure: tparGateMeasure}
	segJob := serialJob
	segJob.Segments = tparGateSegments
	segJob.Boundary = tparGateBoundary()

	fmt.Fprintf(w, "tpar gate: %s, %d warmup + %d measured insts, %d segments, %d core(s)\n",
		tparGateTrace, tparGateWarmup, tparGateMeasure, tparGateSegments, cores)

	_, serial, serialDur, err := runTparPass(runq.Options{Workers: 1}, serialJob)
	if err != nil {
		return fmt.Errorf("tpar gate: serial pass: %v", err)
	}
	_, seg1, w1Dur, err := runTparPass(runq.Options{Workers: 1}, segJob)
	if err != nil {
		return fmt.Errorf("tpar gate: workers=1 pass: %v", err)
	}
	_, segN, wNDur, err := runTparPass(runq.Options{Workers: cores}, segJob)
	if err != nil {
		return fmt.Errorf("tpar gate: workers=%d pass: %v", cores, err)
	}

	// Checkpoint passes share an on-disk store: the first captures one
	// blob per boundary, the second must rebuild every boundary from
	// them — and both must be byte-identical to the cold runs above.
	ckptDir, err := os.MkdirTemp("", "ucp-tpar-gate-")
	if err != nil {
		return fmt.Errorf("tpar gate: %v", err)
	}
	defer os.RemoveAll(ckptDir)
	capPool, capRes, capDur, err := runTparPass(runq.Options{Workers: cores, CkptDir: ckptDir}, segJob)
	if err != nil {
		return fmt.Errorf("tpar gate: capture pass: %v", err)
	}
	resPool, resRes, resDur, err := runTparPass(runq.Options{Workers: cores, CkptDir: ckptDir}, segJob)
	if err != nil {
		return fmt.Errorf("tpar gate: restore pass: %v", err)
	}

	var violations []string
	segDigest := seg1.DeterminismDigest()
	digestsIdentical := true
	if segN.DeterminismDigest() != segDigest {
		digestsIdentical = false
		violations = append(violations, fmt.Sprintf(
			"workers=%d digest diverges from workers=1", cores))
	}
	if capRes.DeterminismDigest() != segDigest {
		digestsIdentical = false
		violations = append(violations, "checkpoint-capturing digest diverges from cold")
	}
	if resRes.DeterminismDigest() != segDigest {
		digestsIdentical = false
		violations = append(violations, "checkpoint-restored digest diverges from cold")
	}
	captured, _ := capPool.CheckpointStats()
	_, restoredHits := resPool.CheckpointStats()
	if captured != tparGateSegments {
		violations = append(violations, fmt.Sprintf(
			"capture pass published %d boundary checkpoint(s), want %d", captured, tparGateSegments))
	}
	if restoredHits != tparGateSegments {
		violations = append(violations, fmt.Sprintf(
			"restore pass hit %d boundary checkpoint(s), want %d", restoredHits, tparGateSegments))
	}

	ipcErr := math.Abs(segN.IPC-serial.IPC) / serial.IPC
	if ipcErr >= tparGateMaxIPCErr {
		violations = append(violations, fmt.Sprintf(
			"boundary-warming IPC error %.2f%% at or above the %.0f%% bound",
			ipcErr*100, tparGateMaxIPCErr*100))
	}

	// Scaling is honest only when there are cores to scale onto: the
	// serial-vs-tpar speedup below conflates parallelism with the
	// warming pyramid replacing the serial warmup, so the gated metric
	// is tpar-vs-tpar at two worker counts.
	scaling := 0.0
	if wNDur > 0 {
		scaling = float64(w1Dur) / float64(wNDur)
	}
	scaleBound := tparGateScaleFrac * math.Min(float64(cores), float64(tparGateSegments))
	if cores >= 2 && scaling < scaleBound {
		violations = append(violations, fmt.Sprintf(
			"scaling %.2fx below the %.2fx bound (0.7 x min(cores, segments))", scaling, scaleBound))
	}
	speedup := 0.0
	if wNDur > 0 {
		speedup = float64(serialDur) / float64(wNDur)
	}

	fmt.Fprintf(w, "  serial %dms  tpar w1 %dms  w%d %dms  capture %dms  restore %dms\n",
		serialDur.Milliseconds(), w1Dur.Milliseconds(), cores, wNDur.Milliseconds(),
		capDur.Milliseconds(), resDur.Milliseconds())
	fmt.Fprintf(w, "  serial IPC %.4f  tpar IPC %.4f — boundary-warming error %.3f%% (bound: <%.0f%%)\n",
		serial.IPC, segN.IPC, ipcErr*100, tparGateMaxIPCErr*100)
	if cores >= 2 {
		fmt.Fprintf(w, "  speedup vs serial %.1fx; scaling w1/w%d %.2fx (bound: >=%.2fx)\n",
			speedup, cores, scaling, scaleBound)
	} else {
		fmt.Fprintf(w, "  speedup vs serial %.1fx; single-core host, scaling not gated\n", speedup)
	}
	fmt.Fprintf(w, "  checkpoints: %d captured, %d restored; all digests byte-identical: %v\n",
		captured, restoredHits, digestsIdentical)

	if err := writeTparBench(benchPath, cores, serialDur, w1Dur, wNDur, capDur, resDur,
		speedup, scaling, scaleBound, ipcErr, captured, restoredHits); err != nil {
		return err
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "tpar gate: %s\n", v)
		}
		return fmt.Errorf("tpar gate: %d bound violation(s)", len(violations))
	}
	return nil
}

// writeTparBench records the gate's measurements in the shared
// BENCH_*.json schema (schema_version / bench / cores + payload).
func writeTparBench(path string, cores int, serialDur, w1Dur, wNDur, capDur, resDur time.Duration,
	speedup, scaling, scaleBound, ipcErr float64, captured, restored int) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tpar gate: %v", err)
	}
	defer f.Close()
	fmt.Fprintf(f, "{\n")
	fmt.Fprintf(f, "  \"schema_version\": 1,\n")
	fmt.Fprintf(f, "  \"bench\": \"tpar gate (%s, UCP full-detail, %d segments, serial vs time-parallel)\",\n",
		tparGateTrace, tparGateSegments)
	fmt.Fprintf(f, "  \"cores\": %d,\n", cores)
	fmt.Fprintf(f, "  \"segments\": %d,\n", tparGateSegments)
	fmt.Fprintf(f, "  \"warmup_insts\": %d,\n", tparGateWarmup)
	fmt.Fprintf(f, "  \"measure_insts\": %d,\n", tparGateMeasure)
	fmt.Fprintf(f, "  \"serial_ms\": %d,\n", serialDur.Milliseconds())
	fmt.Fprintf(f, "  \"tpar_w1_ms\": %d,\n", w1Dur.Milliseconds())
	fmt.Fprintf(f, "  \"tpar_wN_ms\": %d,\n", wNDur.Milliseconds())
	fmt.Fprintf(f, "  \"capture_ms\": %d,\n", capDur.Milliseconds())
	fmt.Fprintf(f, "  \"restore_ms\": %d,\n", resDur.Milliseconds())
	fmt.Fprintf(f, "  \"speedup_vs_serial\": %.2f,\n", speedup)
	fmt.Fprintf(f, "  \"scaling_w1_over_wN\": %.2f,\n", scaling)
	if cores >= 2 {
		fmt.Fprintf(f, "  \"scaling_bound\": %.2f,\n", scaleBound)
	} else {
		fmt.Fprintf(f, "  \"note\": \"single-core host (GOMAXPROCS=%d): segments time-slice one CPU, scaling not gated\",\n", cores)
	}
	fmt.Fprintf(f, "  \"boundary_ipc_err_pct\": %.3f,\n", ipcErr*100)
	fmt.Fprintf(f, "  \"checkpoints_captured\": %d,\n", captured)
	fmt.Fprintf(f, "  \"checkpoints_restored\": %d\n", restored)
	fmt.Fprintf(f, "}\n")
	return nil
}
