package main

import (
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"ucp/internal/harness"
	"ucp/internal/runq"
	"ucp/internal/sim"
	"ucp/internal/trace"
)

// The window-parallel gate: one sampled UCP run (the paper's headline
// configuration on crypto01, a bounded-horizon FastSampling-style
// geometry with a short period so the fixed budget is 20 windows)
// executed seven ways in this one process — chain-serial sampled,
// window-parallel on one worker, window-parallel on every core, a
// checkpoint-capturing pass, a checkpoint-restoring pass, and an
// adaptive window-parallel pass at both worker counts — so every
// wall-clock ratio compares like against like.
//
// Gated bounds, also documented in EXPERIMENTS.md:
//   - worker-count invariance: the window-parallel digests at 1 worker
//     and at GOMAXPROCS workers must be byte-identical (the serial
//     reference for the parallel mode is its own workers=1 run, exactly
//     as in the tpar gate);
//   - checkpoint neutrality: the capture pass and the restore pass must
//     digest byte-identically to the cold window-parallel run, capture
//     one boundary blob per window, and the restore pass must actually
//     hit the store once per window;
//   - adaptive invariance: the adaptive run must stop at the same
//     window and digest byte-identically at both worker counts —
//     speculative windows dispatched past the stop point are discarded
//     deterministically;
//   - window-independence error: |wpar IPC − chain-serial IPC| /
//     chain-serial IPC < 2% (the chain measures the same windows but
//     carries machine state across them; wpar boundary-warms each
//     window independently — same bar as the other subsampling gates);
//   - scaling (multi-core hosts only): t(workers=1) / t(workers=N)
//     ≥ 0.7 · min(cores, windows). On a single-core host the windows
//     time-slice one CPU, so the record carries a note instead.
const (
	wparGateTrace     = "crypto01"
	wparGateWarmup    = 400_000
	wparGateMeasure   = 4_000_000
	wparGateWindows   = 20
	wparGateTargetCI  = 0.05
	wparGateMaxIPCErr = 0.02
	wparGateScaleFrac = 0.7
)

// wparGateSampling is the gate's sampling geometry: the conservative
// posture (zero Cache/BP budgets warm the entire skip zone, so no
// long-history predictor or cache state is ever dropped) with a 200K
// period so the 4M measured budget yields 20 windows — enough
// parallelism to scale past small core counts and enough samples for a
// meaningful CI. The conservative horizons matter doubly here: the
// chain-serial reference carries machine state across windows, so a
// window-parallel run with bounded horizons would cold-start each
// window into a ~13% IPC gap on crypto01, while full-zone warming
// holds the window-independence error under the 2% bar.
func wparGateSampling() sim.SamplingConfig {
	sc := sim.ConservativeSampling()
	sc.PeriodInsts = wparGateMeasure / wparGateWindows
	// A longer detailed warm than the stock geometry: each measured
	// window is only 5K instructions, so the per-window µ-op-cache and
	// frontend transient is a far larger fraction of the measurement
	// than in a full-detail segment; 20K of cycle-accurate warm absorbs
	// it on both sides of the comparison.
	sc.WarmInsts = 20_000
	return sc
}

// runWparGate executes the seven passes, writes benchPath, and returns
// an error when any bound is violated.
func runWparGate(w io.Writer, benchPath string) error {
	prof, ok := trace.ProfileByName(wparGateTrace)
	if !ok {
		return fmt.Errorf("wpar gate: unknown profile %q", wparGateTrace)
	}
	cores := runtime.GOMAXPROCS(0)
	cfg := harness.UCP()
	cfg.Sampling = wparGateSampling()
	chainJob := runq.Job{Config: cfg, Profile: prof, Warmup: wparGateWarmup, Measure: wparGateMeasure}
	winJob := chainJob
	winJob.Segments = 2 // any value > 1 opts a sampled job into wpar

	fmt.Fprintf(w, "wpar gate: %s, %d warmup + %d measured insts, %d sampled windows, %d core(s)\n",
		wparGateTrace, wparGateWarmup, wparGateMeasure, wparGateWindows, cores)

	_, chain, chainDur, err := runTparPass(runq.Options{Workers: 1}, chainJob)
	if err != nil {
		return fmt.Errorf("wpar gate: chain-serial pass: %v", err)
	}
	_, win1, w1Dur, err := runTparPass(runq.Options{Workers: 1}, winJob)
	if err != nil {
		return fmt.Errorf("wpar gate: workers=1 pass: %v", err)
	}
	_, winN, wNDur, err := runTparPass(runq.Options{Workers: cores}, winJob)
	if err != nil {
		return fmt.Errorf("wpar gate: workers=%d pass: %v", cores, err)
	}

	// Checkpoint passes share an on-disk store: the first captures one
	// blob per window boundary, the second must rebuild every window
	// from them — and both must be byte-identical to the cold runs.
	ckptDir, err := os.MkdirTemp("", "ucp-wpar-gate-")
	if err != nil {
		return fmt.Errorf("wpar gate: %v", err)
	}
	defer os.RemoveAll(ckptDir)
	capPool, capRes, capDur, err := runTparPass(runq.Options{Workers: cores, CkptDir: ckptDir}, winJob)
	if err != nil {
		return fmt.Errorf("wpar gate: capture pass: %v", err)
	}
	resPool, resRes, resDur, err := runTparPass(runq.Options{Workers: cores, CkptDir: ckptDir}, winJob)
	if err != nil {
		return fmt.Errorf("wpar gate: restore pass: %v", err)
	}

	// Adaptive composition: same geometry plus a stop rule. The gate
	// pins the stop window and the digest across worker counts.
	adaptJob := winJob
	adaptJob.Config.Sampling.TargetCI = wparGateTargetCI
	_, adapt1, _, err := runTparPass(runq.Options{Workers: 1}, adaptJob)
	if err != nil {
		return fmt.Errorf("wpar gate: adaptive workers=1 pass: %v", err)
	}
	_, adaptN, adaptDur, err := runTparPass(runq.Options{Workers: cores}, adaptJob)
	if err != nil {
		return fmt.Errorf("wpar gate: adaptive workers=%d pass: %v", cores, err)
	}

	var violations []string
	winDigest := win1.DeterminismDigest()
	digestsIdentical := true
	if winN.DeterminismDigest() != winDigest {
		digestsIdentical = false
		violations = append(violations, fmt.Sprintf(
			"workers=%d digest diverges from workers=1", cores))
	}
	if capRes.DeterminismDigest() != winDigest {
		digestsIdentical = false
		violations = append(violations, "checkpoint-capturing digest diverges from cold")
	}
	if resRes.DeterminismDigest() != winDigest {
		digestsIdentical = false
		violations = append(violations, "checkpoint-restored digest diverges from cold")
	}
	if win1.Sampled == nil || win1.Sampled.Windows != wparGateWindows {
		violations = append(violations, fmt.Sprintf(
			"window plan produced %v windows, want %d", win1.Sampled, wparGateWindows))
	}
	captured, _ := capPool.CheckpointStats()
	_, restoredHits := resPool.CheckpointStats()
	if captured != wparGateWindows {
		violations = append(violations, fmt.Sprintf(
			"capture pass published %d boundary checkpoint(s), want %d", captured, wparGateWindows))
	}
	if restoredHits != wparGateWindows {
		violations = append(violations, fmt.Sprintf(
			"restore pass hit %d boundary checkpoint(s), want %d", restoredHits, wparGateWindows))
	}

	adaptWindows := 0
	if adapt1.Sampled != nil {
		adaptWindows = adapt1.Sampled.Windows
	}
	if adaptN.Sampled == nil || adaptN.Sampled.Windows != adaptWindows {
		violations = append(violations, fmt.Sprintf(
			"adaptive stop window diverges: workers=1 measured %d, workers=%d measured %v",
			adaptWindows, cores, adaptN.Sampled))
	}
	if adaptN.DeterminismDigest() != adapt1.DeterminismDigest() {
		violations = append(violations, "adaptive digest diverges between worker counts")
	}

	// The chain carries µ-architectural state from window to window;
	// wpar rebuilds it per window from the warming pyramid. The residual
	// is the window-independence error, bounded like the other
	// subsampling errors.
	ipcErr := math.Abs(winN.IPC-chain.IPC) / chain.IPC
	if ipcErr >= wparGateMaxIPCErr {
		violations = append(violations, fmt.Sprintf(
			"window-independence IPC error %.2f%% at or above the %.0f%% bound",
			ipcErr*100, wparGateMaxIPCErr*100))
	}

	// Scaling is honest only when there are cores to scale onto, and
	// only wpar-vs-wpar at two worker counts isolates parallelism from
	// the sampling pyramid itself.
	scaling := 0.0
	if wNDur > 0 {
		scaling = float64(w1Dur) / float64(wNDur)
	}
	scaleBound := wparGateScaleFrac * math.Min(float64(cores), float64(wparGateWindows))
	if cores >= 2 && scaling < scaleBound {
		violations = append(violations, fmt.Sprintf(
			"scaling %.2fx below the %.2fx bound (0.7 x min(cores, windows))", scaling, scaleBound))
	}
	speedup := 0.0
	if wNDur > 0 {
		speedup = float64(chainDur) / float64(wNDur)
	}

	fmt.Fprintf(w, "  chain %dms  wpar w1 %dms  w%d %dms  capture %dms  restore %dms  adaptive w%d %dms\n",
		chainDur.Milliseconds(), w1Dur.Milliseconds(), cores, wNDur.Milliseconds(),
		capDur.Milliseconds(), resDur.Milliseconds(), cores, adaptDur.Milliseconds())
	fmt.Fprintf(w, "  chain IPC %.4f  wpar IPC %.4f — window-independence error %.3f%% (bound: <%.0f%%)\n",
		chain.IPC, winN.IPC, ipcErr*100, wparGateMaxIPCErr*100)
	if cores >= 2 {
		fmt.Fprintf(w, "  speedup vs chain %.1fx; scaling w1/w%d %.2fx (bound: >=%.2fx)\n",
			speedup, cores, scaling, scaleBound)
	} else {
		fmt.Fprintf(w, "  speedup vs chain %.1fx; single-core host, scaling not gated\n", speedup)
	}
	fmt.Fprintf(w, "  adaptive: stopped at %d/%d windows at both worker counts\n",
		adaptWindows, wparGateWindows)
	fmt.Fprintf(w, "  checkpoints: %d captured, %d restored; all digests byte-identical: %v\n",
		captured, restoredHits, digestsIdentical)

	if err := writeWparBench(benchPath, cores, chainDur, w1Dur, wNDur, capDur, resDur,
		speedup, scaling, scaleBound, ipcErr, adaptWindows, captured, restoredHits); err != nil {
		return err
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "wpar gate: %s\n", v)
		}
		return fmt.Errorf("wpar gate: %d bound violation(s)", len(violations))
	}
	return nil
}

// writeWparBench records the gate's measurements in the shared
// BENCH_*.json schema (schema_version / bench / cores + payload).
func writeWparBench(path string, cores int, chainDur, w1Dur, wNDur, capDur, resDur time.Duration,
	speedup, scaling, scaleBound, ipcErr float64, adaptWindows, captured, restored int) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("wpar gate: %v", err)
	}
	defer f.Close()
	fmt.Fprintf(f, "{\n")
	fmt.Fprintf(f, "  \"schema_version\": 1,\n")
	fmt.Fprintf(f, "  \"bench\": \"wpar gate (%s, UCP sampled, %d windows, chain-serial vs window-parallel)\",\n",
		wparGateTrace, wparGateWindows)
	fmt.Fprintf(f, "  \"cores\": %d,\n", cores)
	fmt.Fprintf(f, "  \"windows\": %d,\n", wparGateWindows)
	fmt.Fprintf(f, "  \"warmup_insts\": %d,\n", wparGateWarmup)
	fmt.Fprintf(f, "  \"measure_insts\": %d,\n", wparGateMeasure)
	fmt.Fprintf(f, "  \"chain_serial_ms\": %d,\n", chainDur.Milliseconds())
	fmt.Fprintf(f, "  \"wpar_w1_ms\": %d,\n", w1Dur.Milliseconds())
	fmt.Fprintf(f, "  \"wpar_wN_ms\": %d,\n", wNDur.Milliseconds())
	fmt.Fprintf(f, "  \"capture_ms\": %d,\n", capDur.Milliseconds())
	fmt.Fprintf(f, "  \"restore_ms\": %d,\n", resDur.Milliseconds())
	fmt.Fprintf(f, "  \"speedup_vs_chain\": %.2f,\n", speedup)
	fmt.Fprintf(f, "  \"scaling_w1_over_wN\": %.2f,\n", scaling)
	if cores >= 2 {
		fmt.Fprintf(f, "  \"scaling_bound\": %.2f,\n", scaleBound)
	} else {
		fmt.Fprintf(f, "  \"note\": \"single-core host (GOMAXPROCS=%d): windows time-slice one CPU, scaling not gated\",\n", cores)
	}
	fmt.Fprintf(f, "  \"window_independence_ipc_err_pct\": %.3f,\n", ipcErr*100)
	fmt.Fprintf(f, "  \"adaptive_target_ci\": %.2f,\n", wparGateTargetCI)
	fmt.Fprintf(f, "  \"adaptive_stop_windows\": %d,\n", adaptWindows)
	fmt.Fprintf(f, "  \"checkpoints_captured\": %d,\n", captured)
	fmt.Fprintf(f, "  \"checkpoints_restored\": %d\n", restored)
	fmt.Fprintf(f, "}\n")
	return nil
}
