// Command sweepd serves simulations: one long-lived process owning a
// single runq pool — shared decoded-trace arenas, warm-checkpoint
// store, content-addressed result cache — behind a versioned JSON
// HTTP API, so any number of experiment clients share one set of
// caches instead of each rebuilding its own.
//
// Submissions are idempotent on the job's content-addressed key:
// concurrent clients asking for the same configuration coalesce onto
// one in-flight execution, and anyone arriving later replays the
// finished result. Reports rendered from remote results are
// byte-identical to local runs (check.sh gates on it).
//
// Examples:
//
//	sweepd -addr 127.0.0.1:8344 -cache-dir ~/.cache/ucp -ckpt-dir ~/.cache/ucp-ckpt
//	experiments -all -server http://127.0.0.1:8344
//	ucpsim -trace all -ucp -server http://127.0.0.1:8344
//	curl -s http://127.0.0.1:8344/v1/statz | jq .
//
// SIGINT/SIGTERM drain gracefully: new submissions are refused with
// 503, queued and in-flight jobs finish (landing in the caches), and
// open event streams see their terminal events before the listener
// closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ucp/internal/buildinfo"
	"ucp/internal/runq"
	"ucp/internal/sweepd"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8344", "listen address")
		jobs     = flag.Int("jobs", 0, "concurrently executing simulations (default GOMAXPROCS)")
		queue    = flag.Int("queue", 256, "admitted-but-not-executing job bound; past it submissions get 503 + Retry-After")
		cacheDir = flag.String("cache-dir", "", "content-addressed result cache directory (empty: in-memory memo only)")
		ckptDir  = flag.String("ckpt-dir", "", "warm-checkpoint store directory for sampled and time-parallel jobs (empty: in-memory store)")
		ckptMax  = flag.Int64("ckpt-max-bytes", 0, "on-disk checkpoint budget; past it the least-recently-verified blobs are pruned (0: unbounded)")
		arena    = flag.Bool("arena", true, "decode each workload once into a shared in-memory arena")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request deadline on non-streaming endpoints")
		retry    = flag.Duration("retry-after", 2*time.Second, "Retry-After hint sent with 503 backpressure")
		quiet    = flag.Bool("quiet", false, "suppress per-job lifecycle log lines")
		version  = flag.Bool("version", false, "print model/schema/protocol versions and exit")
	)
	flag.Parse()

	if *version {
		buildinfo.Fprint(os.Stdout, "sweepd")
		return
	}

	start := time.Now() //ucplint:ignore wallclock
	cfg := sweepd.Config{
		Pool: runq.Options{
			Workers:      *jobs,
			CacheDir:     *cacheDir,
			UseArena:     *arena,
			Checkpoints:  true,
			CkptDir:      *ckptDir,
			CkptMaxBytes: *ckptMax,
			CkptNow:      func() int64 { return time.Now().UnixNano() }, //ucplint:ignore wallclock // checkpoint-pruning recency clock, injected only at the edge
		},
		QueueDepth:     *queue,
		Executors:      *jobs,
		RequestTimeout: *timeout,
		RetryAfter:     *retry,
		Clock: func() time.Duration {
			return time.Since(start) //ucplint:ignore wallclock
		},
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}
	srv := sweepd.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweepd: %v\n", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	// The resolved address, not the flag: with -addr 127.0.0.1:0 this
	// line is how scripts learn the picked port.
	fmt.Fprintf(os.Stderr, "sweepd: listening on %s\n", ln.Addr())

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "sweepd: %v\n", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "sweepd: %v — draining\n", sig)
	}

	// Drain the job queue first (in-flight work finishes, streams see
	// their terminal events), then close the HTTP listener.
	cancel := make(chan struct{})
	go func() {
		<-sigc // a second signal aborts the drain
		close(cancel)
	}()
	if err := srv.Shutdown(cancel); err != nil {
		fmt.Fprintf(os.Stderr, "sweepd: %v\n", err)
	}
	ctx, stop := context.WithTimeout(context.Background(), 5*time.Second)
	defer stop()
	hs.Shutdown(ctx)
	fmt.Fprintln(os.Stderr, "sweepd: bye")
}
