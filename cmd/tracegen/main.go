// Command tracegen generates synthetic workload traces (the CVP-1
// substitutes) and writes them in the repository's binary trace format,
// or validates/inspects existing trace files.
//
// Examples:
//
//	tracegen -profile srv203 -n 2000000 -o srv203.ucpt
//	tracegen -all -n 500000 -dir traces/
//	tracegen -inspect srv203.ucpt
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ucp/internal/buildinfo"
	"ucp/internal/isa"
	"ucp/internal/trace"
)

func main() {
	var (
		profile = flag.String("profile", "", "profile to generate")
		all     = flag.Bool("all", false, "generate every default profile")
		n       = flag.Int("n", 1_000_000, "instructions per trace")
		out     = flag.String("o", "", "output file (default <profile>.ucpt)")
		dir     = flag.String("dir", ".", "output directory for -all")
		inspect = flag.String("inspect", "", "validate and summarize a trace file")
		compact = flag.Bool("compact", true, "write the varint v2 format (5x smaller; -compact=false for fixed-width v1)")
		version = flag.Bool("version", false, "print model/schema/protocol versions and exit")
	)
	flag.Parse()

	if *version {
		buildinfo.Fprint(os.Stdout, "tracegen")
		return
	}
	if *inspect != "" {
		inspectFile(*inspect)
		return
	}
	if *all {
		for _, p := range trace.DefaultProfiles() {
			write(p, *n, filepath.Join(*dir, p.Name+".ucpt"), *compact)
		}
		return
	}
	if *profile == "" {
		fmt.Fprintln(os.Stderr, "need -profile, -all, or -inspect")
		os.Exit(1)
	}
	p, ok := trace.ProfileByName(*profile)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = p.Name + ".ucpt"
	}
	write(p, *n, path, *compact)
}

func write(p trace.Profile, n int, path string, compact bool) {
	prog, err := trace.BuildProgram(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	insts := trace.Collect(trace.NewWalker(prog), n)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := trace.Write
	if compact {
		enc = trace.WriteCompact
	}
	if err := enc(f, insts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// v2 traces get a sidecar seek index so loaders skip the O(n)
	// index-building pass; v1 files are re-encoded on load, which would
	// invalidate a sidecar keyed to the file bytes.
	if compact {
		writeIndex(path, insts)
	}
	fmt.Printf("%s: %d instructions, %.1fKB static code\n",
		path, len(insts), float64(prog.StaticInsts())*isa.InstBytes/1024)
}

// writeIndex writes the sidecar seek index next to a v2 trace file.
func writeIndex(path string, insts []isa.Inst) {
	idx, err := os.Create(trace.IndexPath(path))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := trace.NewArena(insts).WriteIndex(idx); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := idx.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func inspectFile(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	insts, err := trace.Read(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := trace.Validate(insts); err != nil {
		fmt.Fprintf(os.Stderr, "INVALID: %v\n", err)
		os.Exit(1)
	}
	var classes [isa.NumClasses]int
	lines := map[uint64]bool{}
	for i := range insts {
		classes[insts[i].Class]++
		lines[insts[i].LineAddr()] = true
	}
	fmt.Printf("%s: %d instructions, valid control flow\n", path, len(insts))
	fmt.Printf("touched code: %.1fKB (%d lines)\n", float64(len(lines))*64/1024, len(lines))
	for c := 0; c < isa.NumClasses; c++ {
		if classes[c] > 0 {
			fmt.Printf("  %-13s %8d (%5.2f%%)\n", isa.Class(c), classes[c],
				100*float64(classes[c])/float64(len(insts)))
		}
	}
}
