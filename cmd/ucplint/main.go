// Command ucplint runs the repository's custom static-analysis pass
// (see internal/lint): determinism and hardware-model invariants that
// go vet cannot express. It is part of the tier-1+ gate (check.sh).
//
// Usage:
//
//	ucplint ./...            lint every package of the module (default)
//	ucplint <dir> [<dir>…]   lint standalone fixture directories
//	ucplint -determinism     run the runtime determinism harness: the
//	                         same seeded simulation twice, failing on
//	                         any byte difference in the stats digest
//
// Exit status: 0 clean, 1 findings (or determinism divergence),
// 2 operational error (unparseable source, unknown trace, …).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ucp/internal/core"
	"ucp/internal/lint"
	"ucp/internal/sim"
	"ucp/internal/trace"
)

func main() {
	var (
		determinism = flag.Bool("determinism", false, "run the two-pass runtime determinism harness instead of linting")
		detTrace    = flag.String("determinism-trace", "srv203", "profile for the determinism harness")
		detInsts    = flag.Uint64("determinism-insts", 120_000, "total instructions (warmup+measure) per determinism run")
		rulesOnly   = flag.Bool("rules", false, "print the rule names and docs, then exit")
	)
	flag.Parse()

	if *rulesOnly {
		for _, a := range lint.NewAnalyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *determinism {
		os.Exit(runDeterminism(*detTrace, *detInsts))
	}
	os.Exit(runLint(flag.Args()))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ucplint: "+format+"\n", args...)
	os.Exit(2)
}

func runLint(args []string) int {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fatalf("%v", err)
	}
	var pkgs []*lint.Package
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			ps, err := loader.LoadModule()
			if err != nil {
				fatalf("loading module: %v", err)
			}
			pkgs = append(pkgs, ps...)
		default:
			p, err := loader.LoadFixture(arg)
			if err != nil {
				fatalf("loading %s: %v", arg, err)
			}
			pkgs = append(pkgs, p)
		}
	}
	findings := lint.Run(pkgs, lint.NewAnalyzers())
	cwd, _ := os.Getwd()
	for _, f := range findings {
		pos := f.Pos
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
		}
		fmt.Printf("%s: [%s] %s\n", pos, f.Rule, f.Msg)
	}
	if len(findings) > 0 {
		fmt.Printf("ucplint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// runDeterminism executes the same seeded UCP simulation twice, each
// time regenerating the synthetic program from the profile seed, and
// byte-compares the full stats digests. Any wall-clock, global-rand, or
// map-order dependence anywhere in the pipeline shows up as a diff.
func runDeterminism(traceName string, insts uint64) int {
	prof, ok := trace.ProfileByName(traceName)
	if !ok {
		fatalf("unknown profile %q", traceName)
	}
	digest := func() string {
		prog, err := trace.BuildProgram(prof)
		if err != nil {
			fatalf("building %s: %v", prof.Name, err)
		}
		cfg := sim.WithUCP(core.DefaultConfig())
		cfg.WarmupInsts = insts / 2
		cfg.MeasureInsts = insts - insts/2
		src := trace.NewLimit(trace.NewWalker(prog), int(insts)+200_000)
		res, err := sim.Run(cfg, src, prog, prof.Name)
		if err != nil {
			fatalf("run failed: %v", err)
		}
		return res.DeterminismDigest()
	}
	a, b := digest(), digest()
	if a == b {
		fmt.Printf("determinism: OK — two %d-instruction runs of %s produced byte-identical digests (%d bytes)\n",
			insts, prof.Name, len(a))
		return 0
	}
	fmt.Printf("determinism: FAIL — digests differ between two identical runs of %s\n", prof.Name)
	printFirstDiff(a, b)
	return 1
}

func printFirstDiff(a, b string) {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			fmt.Printf("first diff at line %d:\n  run1: %s\n  run2: %s\n", i+1, al[i], bl[i])
			return
		}
	}
	fmt.Printf("digests differ in length: %d vs %d lines\n", len(al), len(bl))
}
