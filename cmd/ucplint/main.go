// Command ucplint runs the repository's custom static-analysis pass
// (see internal/lint): determinism and hardware-model invariants that
// go vet cannot express. It is part of the tier-1+ gate (check.sh).
//
// Usage:
//
//	ucplint ./...            lint every package of the module (default)
//	ucplint <dir> [<dir>…]   lint standalone fixture directories
//	ucplint -json ./...      emit findings as a JSON array on stdout
//	ucplint -baseline <f>    drop findings recorded in the baseline file
//	ucplint -write-baseline <f>  write current findings as the baseline
//	ucplint -determinism     run the runtime determinism harness: the
//	                         same seeded simulation twice, failing on
//	                         any byte difference in the stats digest
//
// Exit status (stable, consumed by check.sh):
//
//	0  clean — no findings outside the baseline (or determinism OK)
//	1  findings (or determinism divergence)
//	2  operational error (unparseable source, bad baseline, unknown
//	   trace, …)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ucp/internal/buildinfo"
	"ucp/internal/core"
	"ucp/internal/lint"
	"ucp/internal/sim"
	"ucp/internal/trace"
)

func main() {
	var (
		determinism = flag.Bool("determinism", false, "run the two-pass runtime determinism harness instead of linting")
		detTrace    = flag.String("determinism-trace", "srv203", "profile for the determinism harness")
		detInsts    = flag.Uint64("determinism-insts", 120_000, "total instructions (warmup+measure) per determinism run")
		rulesOnly   = flag.Bool("rules", false, "print the rule names and docs, then exit")
		jsonOut     = flag.Bool("json", false, "emit findings as a JSON array on stdout")
		baseline    = flag.String("baseline", "", "baseline file of accepted findings to subtract")
		writeBase   = flag.String("write-baseline", "", "write the current findings to this baseline file and exit 0")
		version     = flag.Bool("version", false, "print model/schema/protocol versions and exit")
	)
	flag.Parse()

	if *version {
		buildinfo.Fprint(os.Stdout, "ucplint")
		return
	}
	if *rulesOnly {
		for _, a := range lint.NewAnalyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *determinism {
		os.Exit(runDeterminism(*detTrace, *detInsts))
	}
	os.Exit(runLint(flag.Args(), *jsonOut, *baseline, *writeBase))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ucplint: "+format+"\n", args...)
	os.Exit(2)
}

// jsonFinding is the stable machine-readable shape of one finding.
type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// baselineKey identifies a finding for baseline matching. Line and
// column are deliberately excluded so an accepted finding survives
// unrelated edits to the same file; file+rule+message is specific
// enough in practice.
func baselineKey(f jsonFinding) string {
	return f.File + "\x00" + f.Rule + "\x00" + f.Msg
}

func runLint(args []string, jsonOut bool, baselinePath, writeBaselinePath string) int {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fatalf("%v", err)
	}
	var pkgs []*lint.Package
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			ps, err := loader.LoadModule()
			if err != nil {
				fatalf("loading module: %v", err)
			}
			pkgs = append(pkgs, ps...)
		default:
			p, err := loader.LoadFixture(arg)
			if err != nil {
				fatalf("loading %s: %v", arg, err)
			}
			pkgs = append(pkgs, p)
		}
	}
	findings := lint.Run(pkgs, lint.NewAnalyzers())
	cwd, _ := os.Getwd()
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		pos := f.Pos
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = filepath.ToSlash(rel)
			}
		}
		out = append(out, jsonFinding{
			File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Rule: f.Rule, Msg: f.Msg,
		})
	}

	if writeBaselinePath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatalf("encoding baseline: %v", err)
		}
		if err := os.WriteFile(writeBaselinePath, append(data, '\n'), 0o644); err != nil {
			fatalf("writing baseline: %v", err)
		}
		fmt.Fprintf(os.Stderr, "ucplint: wrote %d finding(s) to %s\n", len(out), writeBaselinePath)
		return 0
	}
	if baselinePath != "" {
		accepted, err := loadBaseline(baselinePath)
		if err != nil {
			fatalf("%v", err)
		}
		kept := out[:0]
		for _, f := range out {
			if accepted[baselineKey(f)] {
				continue
			}
			kept = append(kept, f)
		}
		out = kept
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatalf("encoding findings: %v", err)
		}
	} else {
		for _, f := range out {
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Rule, f.Msg)
		}
		if len(out) > 0 {
			fmt.Printf("ucplint: %d finding(s)\n", len(out))
		}
	}
	if len(out) > 0 {
		return 1
	}
	return 0
}

// loadBaseline reads a baseline file written by -write-baseline. A
// missing file is an operational error (exit 2), not an empty baseline:
// silently ignoring a typoed path would re-accept every finding.
func loadBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	var entries []jsonFinding
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	accepted := make(map[string]bool, len(entries))
	for _, e := range entries {
		accepted[baselineKey(e)] = true
	}
	return accepted, nil
}

// runDeterminism executes the same seeded UCP simulation twice, each
// time regenerating the synthetic program from the profile seed, and
// byte-compares the full stats digests. Any wall-clock, global-rand, or
// map-order dependence anywhere in the pipeline shows up as a diff.
func runDeterminism(traceName string, insts uint64) int {
	prof, ok := trace.ProfileByName(traceName)
	if !ok {
		fatalf("unknown profile %q", traceName)
	}
	digest := func() string {
		prog, err := trace.BuildProgram(prof)
		if err != nil {
			fatalf("building %s: %v", prof.Name, err)
		}
		cfg := sim.WithUCP(core.DefaultConfig())
		cfg.WarmupInsts = insts / 2
		cfg.MeasureInsts = insts - insts/2
		src := trace.NewLimit(trace.NewWalker(prog), int(insts)+200_000)
		res, err := sim.Run(cfg, src, prog, prof.Name)
		if err != nil {
			fatalf("run failed: %v", err)
		}
		return res.DeterminismDigest()
	}
	a, b := digest(), digest()
	if a == b {
		fmt.Printf("determinism: OK — two %d-instruction runs of %s produced byte-identical digests (%d bytes)\n",
			insts, prof.Name, len(a))
		return 0
	}
	fmt.Printf("determinism: FAIL — digests differ between two identical runs of %s\n", prof.Name)
	printFirstDiff(a, b)
	return 1
}

func printFirstDiff(a, b string) {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			fmt.Printf("first diff at line %d:\n  run1: %s\n  run2: %s\n", i+1, al[i], bl[i])
			return
		}
	}
	fmt.Printf("digests differ in length: %d vs %d lines\n", len(al), len(bl))
}
