// Command ucpsim runs one machine configuration over one or more
// synthetic workloads (or a recorded trace file) and prints the key
// metrics: IPC, µ-op cache hit rate, switch PKI, conditional MPKI, and
// — when UCP is enabled — trigger/prefetch statistics.
//
// Examples:
//
//	ucpsim -trace srv203
//	ucpsim -trace all -ucp -warmup 800000 -measure 700000
//	ucpsim -trace int02 -ucp -ucp-noind -threshold 1000
//	ucpsim -file trace.ucpt -prefetcher fnlmma
//	ucpsim -trace srv205 -compare          # baseline vs UCP side by side
//	ucpsim -trace srv203 -ucp -json        # machine-readable output
//	ucpsim -trace srv206 -ucp -hist        # stream/refill distributions
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ucp"
	"ucp/internal/sim"
	"ucp/internal/trace"
)

func main() {
	var (
		traceName  = flag.String("trace", "srv203", "profile name, or 'all' for the full default set")
		file       = flag.String("file", "", "run a recorded .ucpt trace file instead of a profile")
		useUCP     = flag.Bool("ucp", false, "enable the UCP alternate-path prefetcher")
		noInd      = flag.Bool("ucp-noind", false, "UCP without the dedicated indirect predictor")
		tillL1I    = flag.Bool("ucp-l1i", false, "UCP prefetching only to the L1I (no µ-op fill)")
		shared     = flag.Bool("ucp-shared-decoders", false, "UCP sharing the demand decoders")
		idealBTB   = flag.Bool("ucp-ideal-btb", false, "UCP with ideal BTB banking")
		tageConf   = flag.Bool("ucp-tage-conf", false, "use Seznec's TAGE-Conf instead of UCP-Conf")
		threshold  = flag.Int("threshold", 500, "UCP stop threshold")
		prefetcher = flag.String("prefetcher", "", "standalone L1I prefetcher: fnlmma, fnlmma++, djolt, ep, ep++")
		noUop      = flag.Bool("no-uop-cache", false, "remove the µ-op cache")
		idealUop   = flag.Bool("ideal-uop-cache", false, "perfect µ-op cache")
		warmup     = flag.Uint64("warmup", 800_000, "warmup instructions")
		measure    = flag.Uint64("measure", 700_000, "measured instructions")
		compare    = flag.Bool("compare", false, "run baseline AND UCP, reporting the speedup")
		jsonOut    = flag.Bool("json", false, "emit machine-readable JSON instead of the table")
		hist       = flag.Bool("hist", false, "print stream-length and refill-latency distributions")
	)
	flag.Parse()

	cfg := ucp.Baseline()
	if *useUCP {
		u := ucp.DefaultUCP()
		if *noInd {
			u = ucp.NoIndUCP()
		}
		u.StopThreshold = *threshold
		u.TillL1I = *tillL1I
		u.SharedDecoders = *shared
		u.IdealBTBBanking = *idealBTB
		if *tageConf {
			u.Estimator = ucp.EstimatorTageConf
		}
		cfg = ucp.WithUCP(u)
	}
	cfg.L1IPrefetcher = *prefetcher
	cfg.Ideal.NoUopCache = *noUop
	cfg.Ideal.UopAlwaysHit = *idealUop
	cfg.WarmupInsts, cfg.MeasureInsts = *warmup, *measure

	if *file != "" {
		runFile(cfg, *file)
		return
	}
	var profiles []ucp.Profile
	if *traceName == "all" {
		profiles = ucp.DefaultProfiles()
	} else {
		p, ok := ucp.ProfileByName(*traceName)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown profile %q; available:", *traceName)
			for _, pr := range ucp.DefaultProfiles() {
				fmt.Fprintf(os.Stderr, " %s", pr.Name)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(1)
		}
		profiles = []ucp.Profile{p}
	}
	if *compare {
		runCompare(profiles, *warmup, *measure)
		return
	}
	if !*jsonOut {
		header()
	}
	for _, p := range profiles {
		res, err := ucp.RunProfile(cfg, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", p.Name, err)
			os.Exit(1)
		}
		emit(res, *jsonOut, *hist)
	}
}

// runCompare runs the baseline and UCP over each profile and reports
// the per-trace speedup.
func runCompare(profiles []ucp.Profile, warmup, measure uint64) {
	fmt.Printf("%-10s %10s %10s %10s %9s %9s\n",
		"trace", "base IPC", "UCP IPC", "speedup%", "HR base%", "HR UCP%")
	for _, p := range profiles {
		base := ucp.Baseline()
		base.WarmupInsts, base.MeasureInsts = warmup, measure
		withUCP := ucp.WithUCP(ucp.DefaultUCP())
		withUCP.WarmupInsts, withUCP.MeasureInsts = warmup, measure
		b, err := ucp.RunProfile(base, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", p.Name, err)
			os.Exit(1)
		}
		u, err := ucp.RunProfile(withUCP, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", p.Name, err)
			os.Exit(1)
		}
		fmt.Printf("%-10s %10.4f %10.4f %+10.2f %9.2f %9.2f\n",
			p.Name, b.IPC, u.IPC, 100*(u.IPC/b.IPC-1),
			b.UopHitRate*100, u.UopHitRate*100)
	}
}

// emit prints one result as a table row or JSON object.
func emit(r sim.Result, asJSON, withHist bool) {
	if asJSON {
		out := map[string]any{
			"trace":            r.Trace,
			"config":           r.Name,
			"instructions":     r.Insts,
			"cycles":           r.Cycles,
			"ipc":              r.IPC,
			"uopHitRate":       r.UopHitRate,
			"switchPKI":        r.SwitchPKI,
			"condMPKI":         r.CondMPKI,
			"prefetchAccuracy": r.PrefetchAccuracy,
			"ucp": map[string]any{
				"triggers":     r.UCP.Triggers,
				"fills":        r.UCP.FillsInserted,
				"prefetches":   r.UCP.PrefetchesIssued,
				"linesPerPath": safeDiv(r.UCP.LinesPrefetched, r.UCP.Triggers),
				"storageKB":    r.UCPStorageKB,
				"btbConflicts": r.UCP.BTBConflicts,
			},
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	row(r)
	if withHist {
		fmt.Println(r.StreamLens.Render())
		fmt.Println(r.RefillLat.Render())
	}
}

func safeDiv(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func runFile(cfg sim.Config, path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	insts, err := trace.Read(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := sim.Run(cfg, trace.NewSliceSource(insts), nil, path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	header()
	row(res)
}

func header() {
	fmt.Printf("%-10s %8s %8s %9s %9s %9s %10s %9s\n",
		"trace", "IPC", "uopHR%", "switchPKI", "condMPKI", "ucpTrig", "ucpFills", "prefAcc%")
}

func row(r sim.Result) {
	fmt.Printf("%-10s %8.4f %8.2f %9.2f %9.2f %9d %10d %9.2f\n",
		r.Trace, r.IPC, r.UopHitRate*100, r.SwitchPKI, r.CondMPKI,
		r.UCP.Triggers, r.UCP.FillsInserted, r.PrefetchAccuracy*100)
}
