// Command ucpsim runs one machine configuration over one or more
// synthetic workloads (or a recorded trace file) and prints the key
// metrics: IPC, µ-op cache hit rate, switch PKI, conditional MPKI, and
// — when UCP is enabled — trigger/prefetch statistics.
//
// Multi-profile runs (and -compare) execute on an internal/runq worker
// pool: -jobs bounds concurrency, -cache-dir memoizes results across
// invocations, and output order is always the submission order.
//
// Examples:
//
//	ucpsim -trace srv203
//	ucpsim -trace all -ucp -warmup 800000 -measure 700000
//	ucpsim -trace all -ucp -jobs 8 -cache-dir ~/.cache/ucp
//	ucpsim -trace int02 -ucp -ucp-noind -threshold 1000
//	ucpsim -file trace.ucpt -prefetcher fnlmma
//	ucpsim -trace srv203 -sample -adaptive 0.02   # stop once the IPC CI is ±2%
//	ucpsim -trace srv203 -sample -segments 8      # sampled windows in parallel
//	ucpsim -trace srv205 -compare          # baseline vs UCP side by side
//	ucpsim -trace srv203 -ucp -json        # machine-readable output
//	ucpsim -trace srv206 -ucp -hist        # stream/refill distributions
//	ucpsim -trace quick -digest            # determinism digests only
//	ucpsim -trace srv203 -cpuprofile cpu.pb.gz   # pprof the hot loop
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"ucp"
	"ucp/internal/buildinfo"
	"ucp/internal/runq"
	"ucp/internal/sim"
	"ucp/internal/sweepd/client"
)

func main() {
	var (
		traceName  = flag.String("trace", "srv203", "profile name, or 'all' for the full default set")
		file       = flag.String("file", "", "run a recorded .ucpt trace file instead of a profile")
		useUCP     = flag.Bool("ucp", false, "enable the UCP alternate-path prefetcher")
		noInd      = flag.Bool("ucp-noind", false, "UCP without the dedicated indirect predictor")
		tillL1I    = flag.Bool("ucp-l1i", false, "UCP prefetching only to the L1I (no µ-op fill)")
		shared     = flag.Bool("ucp-shared-decoders", false, "UCP sharing the demand decoders")
		idealBTB   = flag.Bool("ucp-ideal-btb", false, "UCP with ideal BTB banking")
		tageConf   = flag.Bool("ucp-tage-conf", false, "use Seznec's TAGE-Conf instead of UCP-Conf")
		threshold  = flag.Int("threshold", 500, "UCP stop threshold")
		prefetcher = flag.String("prefetcher", "", "standalone L1I prefetcher: fnlmma, fnlmma++, djolt, ep, ep++")
		noUop      = flag.Bool("no-uop-cache", false, "remove the µ-op cache")
		idealUop   = flag.Bool("ideal-uop-cache", false, "perfect µ-op cache")
		warmup     = flag.Uint64("warmup", 800_000, "warmup instructions")
		measure    = flag.Uint64("measure", 700_000, "measured instructions")
		sample     = flag.Bool("sample", false, "sampled simulation: fast-forward between detailed windows (conservative geometry)")
		sampleFast = flag.Bool("sample-fast", false, "with -sample: bounded-horizon geometry (small-footprint traces only; see EXPERIMENTS.md)")
		samplePer  = flag.Uint64("sample-period", 0, "with -sample: override the sampling period (instructions)")
		sampleWin  = flag.Uint64("sample-window", 0, "with -sample: override the measured window length")
		sampleWarm = flag.Uint64("sample-warm", 0, "with -sample: override the detailed-warm length")
		sampleFF   = flag.Uint64("sample-ffwarm", 0, "with -sample: override the functional-warm horizon")
		adaptive   = flag.Float64("adaptive", 0, "with -sample: stop adding windows once the relative 95% CI half-width of the window IPC mean drops below this (0: fixed geometry)")
		adaptMin   = flag.Int("adaptive-min", 0, "with -adaptive: minimum windows before the first stop check (0: default)")
		adaptMax   = flag.Int("adaptive-max", 0, "with -adaptive: cap on windows even if the target is unmet (0: the fixed-geometry budget)")
		segments   = flag.Int("segments", 0, "time-parallel run: split the measured region into this many boundary-warmed segments; with -sample, any value > 1 runs the sampled windows in parallel instead (0/1: serial)")
		segWarm    = flag.Uint64("seg-warm", 0, "with -segments: override the detailed boundary-warm length")
		segFF      = flag.Uint64("seg-ffwarm", 0, "with -segments: override the functional boundary-warm horizon")
		segCache   = flag.Uint64("seg-cachewarm", 0, "with -segments: override the cache-warm horizon of the skip zone")
		segBP      = flag.Uint64("seg-bpwarm", 0, "with -segments: override the predictor-training horizon of the skip zone")
		compare    = flag.Bool("compare", false, "run baseline AND UCP, reporting the speedup")
		jsonOut    = flag.Bool("json", false, "emit machine-readable JSON instead of the table")
		hist       = flag.Bool("hist", false, "print stream-length and refill-latency distributions")
		jobs       = flag.Int("jobs", 0, "concurrent simulations (default GOMAXPROCS); output order is unaffected")
		cacheDir   = flag.String("cache-dir", "", "content-addressed result cache directory (empty: no on-disk cache)")
		arena      = flag.Bool("arena", false, "decode each workload once into a shared in-memory arena (results are byte-identical)")
		ckptDir    = flag.String("ckpt-dir", "", "warm-checkpoint store directory for sampled and time-parallel runs (empty: no checkpoint reuse)")
		ckptMax    = flag.Int64("ckpt-max-bytes", 0, "bound the checkpoint directory's on-disk bytes, pruning least-recently-verified blobs (0: unbounded)")
		digest     = flag.Bool("digest", false, "print Result.DeterminismDigest instead of the metric table (optimization-neutrality gate)")
		server     = flag.String("server", "", "run simulations against a sweepd server at this URL instead of in-process")
		version    = flag.Bool("version", false, "print model/schema/protocol versions and exit")
		cpuProf    = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a pprof allocation profile to this file on exit")
	)
	flag.Parse()

	if *version {
		buildinfo.Fprint(os.Stdout, "ucpsim")
		return
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		path := *memProf
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	cfg := ucp.Baseline()
	if *useUCP {
		u := ucp.DefaultUCP()
		if *noInd {
			u = ucp.NoIndUCP()
		}
		u.StopThreshold = *threshold
		u.TillL1I = *tillL1I
		u.SharedDecoders = *shared
		u.IdealBTBBanking = *idealBTB
		if *tageConf {
			u.Estimator = ucp.EstimatorTageConf
		}
		cfg = ucp.WithUCP(u)
	}
	cfg.L1IPrefetcher = *prefetcher
	cfg.Ideal.NoUopCache = *noUop
	cfg.Ideal.UopAlwaysHit = *idealUop
	cfg.WarmupInsts, cfg.MeasureInsts = *warmup, *measure
	if *sample {
		sc := ucp.ConservativeSampling()
		if *sampleFast {
			sc = ucp.FastSampling()
		}
		if *samplePer > 0 {
			sc.PeriodInsts = *samplePer
		}
		if *sampleWin > 0 {
			sc.DetailedInsts = *sampleWin
		}
		if *sampleWarm > 0 {
			sc.WarmInsts = *sampleWarm
		}
		if *sampleFF > 0 {
			sc.FFWarmInsts = *sampleFF
		}
		if *adaptive > 0 {
			sc.TargetCI = *adaptive
			sc.MinWindows = *adaptMin
			sc.MaxWindows = *adaptMax
		}
		cfg.Sampling = sc
	}
	if *adaptive > 0 && !*sample {
		fmt.Fprintln(os.Stderr, "ucpsim: -adaptive requires -sample (the stop rule acts on sampled windows)")
		os.Exit(1)
	}
	if err := cfg.ValidateSegments(*segments); err != nil {
		fmt.Fprintln(os.Stderr, "ucpsim:", err)
		os.Exit(1)
	}
	boundary := sim.BoundaryWarm{
		DetailedInsts: *segWarm,
		FFInsts:       *segFF,
		CacheInsts:    *segCache,
		BPInsts:       *segBP,
	}
	if *segments > 1 && *sample && boundary != (sim.BoundaryWarm{}) {
		// Sampled+segmented runs derive every window's boundary warm from
		// the sampling geometry (-sample-warm and friends); a seg-* flag
		// here would be silently ignored, so reject it instead.
		fmt.Fprintln(os.Stderr, "ucpsim: -seg-* boundary flags do not apply to sampled runs; the window boundary warm comes from the sampling geometry (-sample-warm, -sample-ffwarm, ...)")
		os.Exit(1)
	}
	if boundary == (sim.BoundaryWarm{}) {
		// Leave the zero value in place: the pool resolves it to
		// sim.DefaultBoundaryWarm, and the cache key normalizes both
		// spellings onto one record.
	} else if boundary.DetailedInsts == 0 {
		boundary.DetailedInsts = sim.DefaultBoundaryWarm().DetailedInsts
	}

	pool := runq.New(runq.Options{
		Workers:      *jobs,
		CacheDir:     *cacheDir,
		UseArena:     *arena,
		CkptDir:      *ckptDir,
		CkptMaxBytes: *ckptMax,
		CkptNow:      func() int64 { return time.Now().UnixNano() }, //ucplint:ignore wallclock // checkpoint-pruning clock, injected only here
	})
	var exec runq.Runner = pool
	if *server != "" {
		if *file != "" {
			// A recorded trace is local state; its content digest cannot be
			// resolved against a remote server's filesystem.
			fmt.Fprintln(os.Stderr, "ucpsim: -file and -server are incompatible; recorded traces run in-process")
			os.Exit(1)
		}
		exec = client.New(*server)
	}
	if *file != "" {
		runFile(pool, cfg, *file, *warmup, *measure, *segments, boundary)
		return
	}
	var profiles []ucp.Profile
	switch *traceName {
	case "all":
		profiles = ucp.DefaultProfiles()
	case "quick":
		profiles = ucp.QuickProfiles()
	default:
		p, ok := ucp.ProfileByName(*traceName)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown profile %q; available:", *traceName)
			for _, pr := range ucp.DefaultProfiles() {
				fmt.Fprintf(os.Stderr, " %s", pr.Name)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(1)
		}
		profiles = []ucp.Profile{p}
	}
	if *compare {
		runCompare(exec, profiles, *warmup, *measure, *segments, boundary)
		return
	}
	jobList := make([]runq.Job, len(profiles))
	for i, p := range profiles {
		jobList[i] = runq.Job{Config: cfg, Profile: p, Warmup: *warmup, Measure: *measure,
			Segments: *segments, Boundary: boundary}
	}
	results := exec.RunAll(jobList)
	if !*jsonOut && !*digest {
		header()
	}
	for i, jr := range results {
		if jr.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", profiles[i].Name, jr.Err)
			os.Exit(1)
		}
		if *digest {
			fmt.Print(jr.Result.DeterminismDigest())
			continue
		}
		emit(jr.Result, *jsonOut, *hist)
	}
}

// runCompare runs the baseline and UCP over each profile
// (interleaved base/UCP job pairs) and reports the per-trace speedup.
func runCompare(exec runq.Runner, profiles []ucp.Profile, warmup, measure uint64, segments int, boundary sim.BoundaryWarm) {
	base := ucp.Baseline()
	withUCP := ucp.WithUCP(ucp.DefaultUCP())
	jobList := make([]runq.Job, 0, 2*len(profiles))
	for _, p := range profiles {
		jobList = append(jobList,
			runq.Job{Config: base, Profile: p, Warmup: warmup, Measure: measure, Segments: segments, Boundary: boundary},
			runq.Job{Config: withUCP, Profile: p, Warmup: warmup, Measure: measure, Segments: segments, Boundary: boundary})
	}
	results := exec.RunAll(jobList)
	fmt.Printf("%-10s %10s %10s %10s %9s %9s\n",
		"trace", "base IPC", "UCP IPC", "speedup%", "HR base%", "HR UCP%")
	for i, p := range profiles {
		b, u := results[2*i], results[2*i+1]
		if b.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", p.Name, b.Err)
			os.Exit(1)
		}
		if u.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", p.Name, u.Err)
			os.Exit(1)
		}
		fmt.Printf("%-10s %10.4f %10.4f %+10.2f %9.2f %9.2f\n",
			p.Name, b.Result.IPC, u.Result.IPC, 100*(u.Result.IPC/b.Result.IPC-1),
			b.Result.UopHitRate*100, u.Result.UopHitRate*100)
	}
}

// emit prints one result as a table row or JSON object.
func emit(r sim.Result, asJSON, withHist bool) {
	if asJSON {
		out := map[string]any{
			"trace":            r.Trace,
			"config":           r.Name,
			"instructions":     r.Insts,
			"cycles":           r.Cycles,
			"ipc":              r.IPC,
			"uopHitRate":       r.UopHitRate,
			"switchPKI":        r.SwitchPKI,
			"condMPKI":         r.CondMPKI,
			"prefetchAccuracy": r.PrefetchAccuracy,
			"ucp": map[string]any{
				"triggers":     r.UCP.Triggers,
				"fills":        r.UCP.FillsInserted,
				"prefetches":   r.UCP.PrefetchesIssued,
				"linesPerPath": safeDiv(r.UCP.LinesPrefetched, r.UCP.Triggers),
				"storageKB":    r.UCPStorageKB,
				"btbConflicts": r.UCP.BTBConflicts,
			},
		}
		if s := r.Sampled; s != nil {
			sampled := map[string]any{
				"windows":       s.Windows,
				"skippedInsts":  s.SkippedInsts,
				"ffInsts":       s.FFInsts,
				"detailedInsts": s.DetailedInsts,
				"measuredInsts": s.MeasuredInsts,
				"ipcMean":       s.IPCMean,
				"ipcCI95":       s.IPCCI95,
				"mpkiMean":      s.MPKIMean,
				"mpkiCI95":      s.MPKICI95,
			}
			if s.TargetCI > 0 {
				sampled["targetCI"] = s.TargetCI
				sampled["windowBudget"] = s.WindowBudget
				sampled["targetMet"] = s.TargetMet
			}
			out["sampled"] = sampled
		}
		if tp := r.TimePar; tp != nil {
			out["timepar"] = map[string]any{
				"segments":     tp.Segments,
				"boundaries":   tp.Boundaries,
				"segInsts":     tp.SegInsts,
				"segCycles":    tp.SegCycles,
				"segIPC":       tp.SegIPC,
				"skippedInsts": tp.SkippedInsts,
				"ffInsts":      tp.FFInsts,
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	row(r)
	if s := r.Sampled; s != nil {
		fmt.Printf("%-10s sampled: %d windows, IPC %.4f ±%.4f, MPKI %.3f ±%.3f (95%% CI); %d skipped / %d functional / %d detailed\n",
			r.Trace, s.Windows, s.IPCMean, s.IPCCI95, s.MPKIMean, s.MPKICI95,
			s.SkippedInsts, s.FFInsts, s.DetailedInsts)
		if s.TargetCI > 0 {
			verdict := "target met"
			if !s.TargetMet {
				verdict = "budget exhausted"
			}
			fmt.Printf("%-10s adaptive: %d/%d windows, target ±%.2f%% — %s\n",
				r.Trace, s.Windows, s.WindowBudget, s.TargetCI*100, verdict)
		}
	}
	if tp := r.TimePar; tp != nil {
		fmt.Printf("%-10s timepar: %d segments; %d skipped / %d functional at boundaries\n",
			r.Trace, tp.Segments, tp.SkippedInsts, tp.FFInsts)
	}
	if withHist {
		fmt.Println(r.StreamLens.Render())
		fmt.Println(r.RefillLat.Render())
	}
}

func safeDiv(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// runFile executes cfg over a recorded trace through the pool, which
// decodes the file once into a shared arena (with O(1) sampled-mode
// seeking via the tracegen sidecar index when present) and serves any
// repeat invocation from the result cache.
func runFile(pool *runq.Pool, cfg sim.Config, path string, warmup, measure uint64, segments int, boundary sim.BoundaryWarm) {
	rs := pool.RunAll([]runq.Job{{Config: cfg, TraceFile: path, Warmup: warmup, Measure: measure,
		Segments: segments, Boundary: boundary}})
	if rs[0].Err != nil {
		fmt.Fprintln(os.Stderr, rs[0].Err)
		os.Exit(1)
	}
	header()
	row(rs[0].Result)
}

func header() {
	fmt.Printf("%-10s %8s %8s %9s %9s %9s %10s %9s\n",
		"trace", "IPC", "uopHR%", "switchPKI", "condMPKI", "ucpTrig", "ucpFills", "prefAcc%")
}

func row(r sim.Result) {
	fmt.Printf("%-10s %8.4f %8.2f %9.2f %9.2f %9d %10d %9.2f\n",
		r.Trace, r.IPC, r.UopHitRate*100, r.SwitchPKI, r.CondMPKI,
		r.UCP.Triggers, r.UCP.FillsInserted, r.PrefetchAccuracy*100)
}
