// Custom workload: define your own synthetic workload profile — code
// footprint, branch difficulty mix, data working set — generate its
// instruction stream, and measure how the µ-op cache and UCP behave on
// it. This is the API a user reaches for when their workload is not
// covered by the default CVP-1-style trace set.
package main

import (
	"fmt"
	"log"

	"ucp"
)

func main() {
	// A medium-footprint service with a nasty H2P branch population:
	// 300 functions (~190KB of code), 6% of conditional branch sites
	// irreducibly noisy at a ~35% miss level, and an 8MB data working
	// set accessed mostly randomly.
	profile := ucp.Profile{
		Name: "myservice", Seed: 2024,
		Funcs: 300, AvgFuncInsts: 160, FlatFrac: 0.6,
		CondPatternFrac: 0.02, CondHistoryFrac: 0.12,
		CondRandomFrac: 0.06, RandomTakenP: 0.35,
		HistMaskBitsMin: 1, HistMaskBitsMax: 3,
		LoopTripMean: 6, FixedTripFrac: 0.5,
		IndirectFrac: 0.12, IndHistFrac: 0.4,
		DataWSS: 8 << 20, StreamFrac: 0.25,
		LoadFrac: 0.25, StoreFrac: 0.12,
	}

	prog, err := ucp.BuildProgram(profile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d static instructions (%.0fKB)\n",
		prog.StaticInsts(), float64(prog.StaticInsts())*4/1024)

	// Peek at the stream: the walker produces a control-flow-consistent
	// endless trace; Limit caps it.
	src := ucp.Limit(ucp.NewWalker(prog), 10)
	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		fmt.Printf("  pc=%#x %v\n", in.PC, in.Class)
	}

	for _, mk := range []struct {
		name string
		cfg  ucp.Config
	}{
		{"baseline", ucp.Baseline()},
		{"UCP", ucp.WithUCP(ucp.DefaultUCP())},
		{"UCP-NoInd", ucp.WithUCP(ucp.NoIndUCP())},
	} {
		cfg := mk.cfg
		cfg.WarmupInsts, cfg.MeasureInsts = 500_000, 400_000
		res, err := ucp.RunProfile(cfg, profile)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s IPC=%.4f  µopHR=%.1f%%  switchPKI=%.2f  condMPKI=%.2f\n",
			mk.name, res.IPC, res.UopHitRate*100, res.SwitchPKI, res.CondMPKI)
	}
}
