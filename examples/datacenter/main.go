// Datacenter sweep: reproduce the paper's headline experiment (Fig. 11)
// over the full synthetic workload set — UCP speedup per trace next to
// the trace's conditional branch MPKI, showing that traces with more
// hard-to-predict branches benefit more from alternate-path prefetching.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"ucp"
)

func main() {
	base := ucp.Baseline()
	withUCP := ucp.WithUCP(ucp.DefaultUCP())
	for _, c := range []*ucp.Config{&base, &withUCP} {
		c.WarmupInsts, c.MeasureInsts = 500_000, 400_000
	}

	type row struct {
		name     string
		speedup  float64
		condMPKI float64
		hitBase  float64
		hitUCP   float64
	}
	var rows []row
	logSum := 0.0
	for _, p := range ucp.DefaultProfiles() {
		b, err := ucp.RunProfile(base, p)
		if err != nil {
			log.Fatal(err)
		}
		u, err := ucp.RunProfile(withUCP, p)
		if err != nil {
			log.Fatal(err)
		}
		s := u.IPC / b.IPC
		logSum += math.Log(s)
		rows = append(rows, row{p.Name, (s - 1) * 100, b.CondMPKI,
			b.UopHitRate * 100, u.UopHitRate * 100})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].speedup < rows[j].speedup })

	fmt.Printf("%-10s %12s %10s %12s %12s\n",
		"trace", "speedup %", "cond MPKI", "µop HR base", "µop HR UCP")
	for _, r := range rows {
		fmt.Printf("%-10s %12.2f %10.2f %12.1f %12.1f\n",
			r.name, r.speedup, r.condMPKI, r.hitBase, r.hitUCP)
	}
	geo := (math.Exp(logSum/float64(len(rows))) - 1) * 100
	fmt.Printf("\ngeomean speedup: %+.2f%% (paper: +2%%, up to +12%% on high-MPKI traces)\n", geo)
}
