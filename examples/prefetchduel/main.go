// Prefetch duel: the paper's §III-C argument, runnable. State-of-the-art
// standalone L1I prefetchers raise the L1I hit rate but cannot touch the
// instructions that matter most — the not-predicted path after a branch
// misprediction. This example pits every implemented prefetcher (and
// UCP) against the baseline on one datacenter trace.
package main

import (
	"fmt"
	"log"

	"ucp"
)

func main() {
	profile, ok := ucp.ProfileByName("srv203")
	if !ok {
		log.Fatal("profile srv203 missing")
	}
	const warm, meas = 600_000, 500_000

	base := ucp.Baseline()
	base.WarmupInsts, base.MeasureInsts = warm, meas
	b, err := ucp.RunProfile(base, profile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline on %s: IPC=%.4f  µopHR=%.1f%%\n\n", profile.Name, b.IPC, b.UopHitRate*100)
	fmt.Printf("%-22s %12s %12s %10s\n", "frontend addition", "IPC", "speedup %", "µop HR %")

	for _, pf := range []string{"fnlmma", "fnlmma++", "djolt", "ep", "ep++"} {
		cfg := ucp.Baseline()
		cfg.L1IPrefetcher = pf
		cfg.WarmupInsts, cfg.MeasureInsts = warm, meas
		r, err := ucp.RunProfile(cfg, profile)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %12.4f %+12.2f %10.1f\n", pf, r.IPC, 100*(r.IPC/b.IPC-1), r.UopHitRate*100)
	}

	for _, v := range []struct {
		name string
		u    ucp.UCPConfig
	}{
		{"UCP (12.95KB)", ucp.DefaultUCP()},
		{"UCP-NoInd (8.95KB)", ucp.NoIndUCP()},
	} {
		cfg := ucp.WithUCP(v.u)
		cfg.WarmupInsts, cfg.MeasureInsts = warm, meas
		r, err := ucp.RunProfile(cfg, profile)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %12.4f %+12.2f %10.1f\n", v.name, r.IPC, 100*(r.IPC/b.IPC-1), r.UopHitRate*100)
	}
	fmt.Println("\nUCP outruns prefetchers an order of magnitude larger — the paper's Fig. 16 story.")
}
