// Quickstart: simulate one datacenter-style workload on the baseline
// Alder-Lake-like core and on the same core with UCP (alternate path
// µ-op cache prefetching), and report the headline numbers the paper
// cares about: IPC, µ-op cache hit rate, and the UCP speedup.
package main

import (
	"fmt"
	"log"

	"ucp"
)

func main() {
	profile, ok := ucp.ProfileByName("srv203")
	if !ok {
		log.Fatal("profile srv203 missing")
	}

	base := ucp.Baseline()
	base.WarmupInsts, base.MeasureInsts = 600_000, 500_000

	withUCP := ucp.WithUCP(ucp.DefaultUCP())
	withUCP.WarmupInsts, withUCP.MeasureInsts = 600_000, 500_000

	fmt.Printf("workload %s: ~%dKB static code, %d functions\n\n",
		profile.Name, profile.FootprintBytes()/1024, profile.Funcs)

	b, err := ucp.RunProfile(base, profile)
	if err != nil {
		log.Fatal(err)
	}
	u, err := ucp.RunProfile(withUCP, profile)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %10s %12s %12s\n", "config", "IPC", "µop hit %", "cond MPKI")
	fmt.Printf("%-22s %10.4f %12.2f %12.2f\n", "baseline (Table II)", b.IPC, b.UopHitRate*100, b.CondMPKI)
	fmt.Printf("%-22s %10.4f %12.2f %12.2f\n", "UCP (12.95KB extra)", u.IPC, u.UopHitRate*100, u.CondMPKI)
	fmt.Printf("\nUCP speedup: %+.2f%%  (alternate paths started: %d, µ-op entries prefetched: %d)\n",
		100*(u.IPC/b.IPC-1), u.UCP.Triggers, u.Uop.PrefetchInserts)
}
