// Streams: visualize WHY the µ-op cache stops paying off on datacenter
// code and HOW UCP helps. The paper's §III-A observes the µ-op cache is
// only beneficial with long streams of consecutive hits; its §VI shows
// UCP attacks the pipeline-refill latency after mispredictions. This
// example prints both distributions — consecutive-hit stream lengths and
// mispredict-to-first-µ-op refill latencies — for a small crypto kernel
// and a flat datacenter trace, with and without UCP.
package main

import (
	"fmt"
	"log"

	"ucp"
)

func main() {
	for _, traceName := range []string{"crypto02", "srv206"} {
		profile, ok := ucp.ProfileByName(traceName)
		if !ok {
			log.Fatalf("profile %s missing", traceName)
		}
		base := ucp.Baseline()
		base.WarmupInsts, base.MeasureInsts = 500_000, 400_000
		b, err := ucp.RunProfile(base, profile)
		if err != nil {
			log.Fatal(err)
		}
		withUCP := ucp.WithUCP(ucp.DefaultUCP())
		withUCP.WarmupInsts, withUCP.MeasureInsts = 500_000, 400_000
		u, err := ucp.RunProfile(withUCP, profile)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("=== %s (footprint %dKB, hit rate %.1f%%) ===\n\n",
			traceName, profile.FootprintBytes()/1024, b.UopHitRate*100)
		fmt.Println(b.StreamLens.Render())
		fmt.Printf("refill latency: baseline %s\n", b.RefillLat)
		fmt.Printf("refill latency: UCP      %s\n", u.RefillLat)
		fmt.Printf("IPC %.4f -> %.4f (%+.2f%%)\n\n",
			b.IPC, u.IPC, 100*(u.IPC/b.IPC-1))
	}
}
