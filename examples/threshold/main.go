// Threshold sweep: reproduce the paper's stopping-threshold sensitivity
// study (Fig. 15, §IV-E) on one trace. Small thresholds cut alternate
// paths short (missing prefetches); very large ones let long alternate
// paths thrash the 4Kops µ-op cache. The paper finds a plateau starting
// around 500 for µ-op cache prefetching.
package main

import (
	"fmt"
	"log"

	"ucp"
)

func main() {
	profile, ok := ucp.ProfileByName("srv205")
	if !ok {
		log.Fatal("profile srv205 missing")
	}

	base := ucp.Baseline()
	base.WarmupInsts, base.MeasureInsts = 600_000, 500_000
	b, err := ucp.RunProfile(base, profile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline IPC on %s: %.4f\n\n", profile.Name, b.IPC)
	fmt.Printf("%10s %14s %14s %16s\n", "threshold", "µ-op pf (%)", "L1I-only pf (%)", "entries filled")

	for _, th := range []int{16, 64, 256, 500, 1024, 4096} {
		uopCfg := ucp.DefaultUCP()
		uopCfg.StopThreshold = th
		cfgU := ucp.WithUCP(uopCfg)
		cfgU.WarmupInsts, cfgU.MeasureInsts = 600_000, 500_000
		u, err := ucp.RunProfile(cfgU, profile)
		if err != nil {
			log.Fatal(err)
		}

		l1iCfg := ucp.DefaultUCP()
		l1iCfg.StopThreshold = th
		l1iCfg.TillL1I = true
		cfgL := ucp.WithUCP(l1iCfg)
		cfgL.WarmupInsts, cfgL.MeasureInsts = 600_000, 500_000
		l, err := ucp.RunProfile(cfgL, profile)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%10d %14.2f %14.2f %16d\n", th,
			100*(u.IPC/b.IPC-1), 100*(l.IPC/b.IPC-1), u.UCP.FillsInserted)
	}
}
