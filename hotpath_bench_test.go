package ucp_test

// Hot-path regression benchmark. BenchmarkSimQuick runs the quick trace
// set end to end under both the baseline and UCP configurations — the
// same work the check.sh hotpath gate times — and reports simulated
// instructions per second plus allocations per simulated instruction.
// The steady-state simulation loop is allocation-free; the allocs/inst
// figure amortizes one-time construction (predictor tables, trace
// programs) over the run and should stay near zero. check.sh runs this
// with -benchtime=1x and records both metrics in BENCH_hotpath.json.

import (
	"runtime"
	"testing"

	"ucp"
)

func BenchmarkSimQuick(b *testing.B) {
	const quickWarmup, quickMeasure = 30_000, 30_000
	profiles := ucp.QuickProfiles()
	cfgs := []ucp.Config{ucp.Baseline(), ucp.WithUCP(ucp.DefaultUCP())}
	// Build trace programs outside the timed/counted region: they are
	// shared machinery, not per-simulation cost.
	for _, p := range profiles {
		program(b, p.Name)
	}
	var simulated uint64
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range profiles {
			for _, cfg := range cfgs {
				prof, prog := program(b, p.Name)
				cfg.WarmupInsts, cfg.MeasureInsts = quickWarmup, quickMeasure
				src := ucp.Limit(ucp.NewWalker(prog),
					int(cfg.WarmupInsts+cfg.MeasureInsts)+100_000)
				if _, err := ucp.Run(cfg, src, prog, prof.Name); err != nil {
					b.Fatal(err)
				}
				simulated += quickWarmup + quickMeasure
			}
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	b.ReportMetric(float64(simulated)/b.Elapsed().Seconds(), "insts/s")
	b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(simulated), "allocs/inst")
}
