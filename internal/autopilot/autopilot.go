// Package autopilot searches a simulation parameter grid with
// confidence-pruned successive refinement: every candidate first gets a
// cheap adaptive probe at a coarse CI target, then only the candidates
// whose confidence intervals still overlap the incumbent best are
// re-probed at progressively tighter targets until the final target is
// reached. Pruned candidates never get more windows, so a sweep whose
// configurations separate early spends a small fraction of what
// exhaustive enumeration at full precision would.
//
// Probes execute through any runq.Runner — the local pool or the sweepd
// client — and every probe is an ordinary content-addressed job, so
// reruns replay from cache and warm-checkpoint reuse makes each
// refinement round's fast-forward free. The search itself is
// deterministic: probe results are deterministic per job, rounds
// compare them in grid order, and ties break to the lowest grid index.
package autopilot

import (
	"fmt"
	"io"

	"ucp/internal/runq"
	"ucp/internal/sim"
)

// Options configures a Search.
type Options struct {
	// Exec executes probe batches (required): a *runq.Pool, the sweepd
	// client, or a test fake.
	Exec runq.Runner

	// Grid holds one candidate job per configuration (required,
	// non-empty). Every job must have sampling enabled — the search
	// works by overriding the adaptive fields (TargetCI, MinWindows,
	// MaxWindows) per round, and the rest of the job (geometry,
	// budgets, workload) is probed exactly as given.
	Grid []runq.Job

	// Baseline, when non-nil, is probed once at the final target and
	// reported as the Δ-reference for every candidate. It never
	// competes.
	Baseline *runq.Job

	// CoarseTargetCI is the first round's relative half-width target
	// (default 0.04): loose enough that the opening probe of the whole
	// grid is cheap, tight enough to separate clearly different
	// configurations immediately.
	CoarseTargetCI float64

	// TargetCI is the final round's target (default 0.01). Each round
	// halves the target until it reaches this; surviving candidates'
	// last probes carry intervals at this width.
	TargetCI float64

	// MinWindows/MaxWindows bound every probe's adaptive window count
	// (sim.SamplingConfig semantics; zero values keep the defaults).
	MinWindows int
	MaxWindows int

	// Log, when non-nil, receives one line per round (deterministic
	// content: round number, target, survivor count).
	Log io.Writer
}

// Candidate is one grid entry's standing after the search.
type Candidate struct {
	// Job is the grid job as submitted (without the per-round adaptive
	// overrides).
	Job runq.Job
	// Result is the candidate's last probe (its precision depends on
	// the round the candidate last ran in).
	Result sim.Result
	// Mean ± Half is the window-IPC interval estimate of that probe.
	Mean, Half float64
	// Windows is the last probe's measured window count; SpentInsts
	// totals the measured-region stream advance across all of the
	// candidate's probes (warmup excluded: checkpoint reuse shares it).
	Windows    int
	SpentInsts uint64
	// PrunedRound is the round after which the candidate was pruned
	// (0: survived to the final round).
	PrunedRound int
	// Winner marks the search's answer.
	Winner bool
}

// Report is the outcome of a Search (or an Exhaustive reference run).
type Report struct {
	// Candidates holds every grid entry's standing, in grid order.
	Candidates []Candidate
	// WinnerIndex is the winning candidate's grid index.
	WinnerIndex int
	// Baseline is the Δ-reference probe (nil without Options.Baseline);
	// BaselineSpentInsts is accounted separately from the candidates'
	// spend so search-vs-exhaustive comparisons, which pay it equally,
	// can exclude it.
	Baseline           *sim.Result
	BaselineSpentInsts uint64
	// Rounds is the number of probe rounds run.
	Rounds int
	// TotalSpentInsts sums the candidates' SpentInsts.
	TotalSpentInsts uint64
}

// spentInsts measures what a probe cost: the stream advance across the
// measured region (warming skip + functional warm + detailed), with the
// warmup region excluded — warm-checkpoint reuse pays it once per
// sweep, not per probe, and search-vs-exhaustive comparisons share it.
func spentInsts(r sim.Result, warmup uint64) uint64 {
	s := r.Sampled
	if s == nil {
		return r.Insts
	}
	adv := s.SkippedInsts + s.FFInsts + s.DetailedInsts
	if adv > warmup {
		return adv - warmup
	}
	return adv
}

// validate applies defaults and rejects unusable options.
func (o *Options) validate() error {
	if o.Exec == nil {
		return fmt.Errorf("autopilot: Options.Exec is required")
	}
	if len(o.Grid) == 0 {
		return fmt.Errorf("autopilot: empty grid")
	}
	if o.CoarseTargetCI == 0 {
		o.CoarseTargetCI = 0.04
	}
	if o.TargetCI == 0 {
		o.TargetCI = 0.01
	}
	if o.TargetCI <= 0 || o.CoarseTargetCI < o.TargetCI {
		return fmt.Errorf("autopilot: need CoarseTargetCI >= TargetCI > 0, got %g >= %g",
			o.CoarseTargetCI, o.TargetCI)
	}
	for i, j := range o.Grid {
		if !j.Config.Sampling.Enabled {
			return fmt.Errorf("autopilot: grid[%d] (%s) has sampling disabled; the search probes adaptively", i, j.Config.Name)
		}
	}
	if o.Baseline != nil && !o.Baseline.Config.Sampling.Enabled {
		return fmt.Errorf("autopilot: baseline (%s) has sampling disabled", o.Baseline.Config.Name)
	}
	return nil
}

// withTarget returns job with the adaptive fields overridden for one
// probe round.
func withTarget(job runq.Job, target float64, minW, maxW int) runq.Job {
	job.Config.Sampling.TargetCI = target
	job.Config.Sampling.MinWindows = minW
	job.Config.Sampling.MaxWindows = maxW
	return job
}

// Search runs the confidence-pruned refinement and returns the
// standings. The winner is the surviving candidate with the highest
// window-IPC mean at the final target (ties break to the lowest grid
// index); pruned candidates keep the interval from their last round.
func Search(opts Options) (*Report, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	rep := &Report{Candidates: make([]Candidate, len(opts.Grid))}
	for i, j := range opts.Grid {
		rep.Candidates[i] = Candidate{Job: j}
	}
	active := make([]int, len(opts.Grid))
	for i := range active {
		active[i] = i
	}

	target := opts.CoarseTargetCI
	for {
		rep.Rounds++
		jobs := make([]runq.Job, 0, len(active)+1)
		for _, i := range active {
			jobs = append(jobs, withTarget(opts.Grid[i], target, opts.MinWindows, opts.MaxWindows))
		}
		if rep.Rounds == 1 && opts.Baseline != nil {
			// The Δ-reference rides along in the first batch, already at
			// the final target: it is probed exactly once.
			jobs = append(jobs, withTarget(*opts.Baseline, opts.TargetCI, opts.MinWindows, opts.MaxWindows))
		}
		results := opts.Exec.RunAll(jobs)
		for bi, jr := range results {
			if jr.Err != nil {
				return nil, fmt.Errorf("autopilot: probe %s/%s: %w",
					jr.Job.Config.Name, jr.Job.Profile.Name, jr.Err)
			}
			if bi >= len(active) { // the baseline tail of round 1
				r := jr.Result
				rep.Baseline = &r
				rep.BaselineSpentInsts = spentInsts(r, jr.Job.Warmup)
				continue
			}
			c := &rep.Candidates[active[bi]]
			c.Result = jr.Result
			if s := jr.Result.Sampled; s != nil {
				c.Mean, c.Half = s.IPCMean, s.IPCCI95
				c.Windows = s.Windows
			} else {
				c.Mean = jr.Result.IPC
			}
			c.SpentInsts += spentInsts(jr.Result, jr.Job.Warmup)
		}

		best := active[0]
		for _, i := range active[1:] {
			if rep.Candidates[i].Mean > rep.Candidates[best].Mean {
				best = i
			}
		}
		if target <= opts.TargetCI {
			rep.WinnerIndex = best
			rep.Candidates[best].Winner = true
			break
		}
		// Prune every candidate whose interval has separated below the
		// incumbent best's: mean+half < bestMean-bestHalf means even the
		// optimistic edge of its interval loses, so no further precision
		// can change the answer at this confidence level.
		b := rep.Candidates[best]
		var next []int
		for _, i := range active {
			c := &rep.Candidates[i]
			if i != best && c.Mean+c.Half < b.Mean-b.Half {
				c.PrunedRound = rep.Rounds
				continue
			}
			next = append(next, i)
		}
		active = next
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "autopilot: round %d at ±%.2f%%: %d/%d candidates survive\n",
				rep.Rounds, target*100, len(active), len(rep.Candidates))
		}
		target = target / 2
		if target < opts.TargetCI {
			target = opts.TargetCI
		}
	}
	for i := range rep.Candidates {
		rep.TotalSpentInsts += rep.Candidates[i].SpentInsts
	}
	if opts.Log != nil {
		fmt.Fprintf(opts.Log, "autopilot: winner %s after %d rounds, %d insts spent\n",
			rep.Candidates[rep.WinnerIndex].Job.Config.Name, rep.Rounds, rep.TotalSpentInsts)
	}
	return rep, nil
}

// Exhaustive is the reference strategy the check.sh gate compares
// Search against: every grid candidate probed straight at the final
// target, no pruning. Same winner criterion, same spend accounting.
func Exhaustive(opts Options) (*Report, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	rep := &Report{Candidates: make([]Candidate, len(opts.Grid)), Rounds: 1}
	jobs := make([]runq.Job, 0, len(opts.Grid)+1)
	for _, j := range opts.Grid {
		jobs = append(jobs, withTarget(j, opts.TargetCI, opts.MinWindows, opts.MaxWindows))
	}
	if opts.Baseline != nil {
		jobs = append(jobs, withTarget(*opts.Baseline, opts.TargetCI, opts.MinWindows, opts.MaxWindows))
	}
	results := opts.Exec.RunAll(jobs)
	for bi, jr := range results {
		if jr.Err != nil {
			return nil, fmt.Errorf("autopilot: exhaustive probe %s/%s: %w",
				jr.Job.Config.Name, jr.Job.Profile.Name, jr.Err)
		}
		if bi >= len(opts.Grid) {
			r := jr.Result
			rep.Baseline = &r
			rep.BaselineSpentInsts = spentInsts(r, jr.Job.Warmup)
			continue
		}
		c := &rep.Candidates[bi]
		c.Job = opts.Grid[bi]
		c.Result = jr.Result
		if s := jr.Result.Sampled; s != nil {
			c.Mean, c.Half = s.IPCMean, s.IPCCI95
			c.Windows = s.Windows
		} else {
			c.Mean = jr.Result.IPC
		}
		c.SpentInsts = spentInsts(jr.Result, jr.Job.Warmup)
		rep.TotalSpentInsts += c.SpentInsts
	}
	best := 0
	for i := range rep.Candidates {
		if rep.Candidates[i].Mean > rep.Candidates[best].Mean {
			best = i
		}
	}
	rep.WinnerIndex = best
	rep.Candidates[best].Winner = true
	return rep, nil
}
