package autopilot

import (
	"math"
	"strings"
	"testing"

	"ucp/internal/runq"
	"ucp/internal/sim"
	"ucp/internal/trace"
)

// fakeRunner models probe outcomes analytically: each named config has
// a true mean and a relative window-to-window sd, and a probe at target
// t reports that mean with a half-width just under t·mean after
// ceil((2·relsd/t)²) windows. Deterministic, instant, and it counts
// probes per config so tests can assert pruned candidates never run
// again.
type fakeRunner struct {
	truth  map[string]fakeTruth
	probes map[string]int
}

type fakeTruth struct {
	mean   float64
	relsd  float64
	storKB float64
}

func (f *fakeRunner) RunAll(jobs []runq.Job) []runq.JobResult {
	out := make([]runq.JobResult, len(jobs))
	for i, j := range jobs {
		tr, ok := f.truth[j.Config.Name]
		if !ok {
			panic("fakeRunner: unknown config " + j.Config.Name)
		}
		if f.probes == nil {
			f.probes = make(map[string]int)
		}
		f.probes[j.Config.Name]++
		target := j.Config.Sampling.TargetCI
		n := int(math.Ceil(math.Pow(2*tr.relsd/target, 2)))
		if n < 2 {
			n = 2
		}
		period := j.Config.Sampling.PeriodInsts
		res := sim.Result{
			Name:         j.Config.Name,
			Trace:        j.Profile.Name,
			IPC:          tr.mean,
			UCPStorageKB: tr.storKB,
			Sampled: &sim.SampledStats{
				Windows:       n,
				SkippedInsts:  j.Warmup + uint64(n)*period - 2000*uint64(n),
				FFInsts:       1000 * uint64(n),
				DetailedInsts: 1000 * uint64(n),
				MeasuredInsts: 1000 * uint64(n),
				IPCMean:       tr.mean,
				IPCCI95:       0.9 * target * tr.mean,
				TargetCI:      target,
				TargetMet:     true,
			},
		}
		out[i] = runq.JobResult{Job: j, Result: res, Source: runq.SourceRun}
	}
	return out
}

func fakeJob(name string) runq.Job {
	cfg := sim.Baseline()
	cfg.Name = name
	cfg.Sampling = sim.SamplingConfig{
		Enabled:       true,
		PeriodInsts:   25_000,
		DetailedInsts: 1_000,
		WarmInsts:     1_000,
	}
	return runq.Job{
		Config:  cfg,
		Profile: trace.Profile{Name: "fake"},
		Warmup:  50_000,
		Measure: 500_000,
	}
}

func fakeFleet() *fakeRunner {
	return &fakeRunner{truth: map[string]fakeTruth{
		"slow":     {mean: 0.5, relsd: 0.02},
		"mid":      {mean: 1.0, relsd: 0.02},
		"good":     {mean: 2.0, relsd: 0.02, storKB: 4},
		"best":     {mean: 2.01, relsd: 0.02, storKB: 8},
		"baseline": {mean: 1.0, relsd: 0.02},
	}}
}

func fleetOpts(f *fakeRunner) Options {
	base := fakeJob("baseline")
	return Options{
		Exec:     f,
		Grid:     []runq.Job{fakeJob("slow"), fakeJob("mid"), fakeJob("good"), fakeJob("best")},
		Baseline: &base,
	}
}

// TestSearchPrunesAndFindsWinner pins the core behavior: clearly-worse
// candidates are pruned after the coarse round and never probed again,
// the two contenders refine to the final target, and the higher mean
// wins — spending less than exhaustive enumeration would.
func TestSearchPrunesAndFindsWinner(t *testing.T) {
	f := fakeFleet()
	rep, err := Search(fleetOpts(f))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Candidates[rep.WinnerIndex].Job.Config.Name; got != "best" {
		t.Fatalf("winner %q, want best", got)
	}
	for _, name := range []string{"slow", "mid"} {
		if f.probes[name] != 1 {
			t.Errorf("%s probed %d times, want 1 (pruned after the coarse round)", name, f.probes[name])
		}
	}
	for i, c := range rep.Candidates {
		name := c.Job.Config.Name
		switch name {
		case "slow", "mid":
			if c.PrunedRound != 1 {
				t.Errorf("%s PrunedRound = %d, want 1", name, c.PrunedRound)
			}
		case "good", "best":
			if c.PrunedRound != 0 {
				t.Errorf("%s pruned at round %d, want survivor", name, c.PrunedRound)
			}
			if f.probes[name] != rep.Rounds {
				t.Errorf("%s probed %d times over %d rounds", name, f.probes[name], rep.Rounds)
			}
		}
		if c.Winner != (i == rep.WinnerIndex) {
			t.Errorf("%s Winner flag inconsistent with WinnerIndex", name)
		}
	}
	if rep.Rounds != 3 { // 0.04 → 0.02 → 0.01
		t.Errorf("rounds = %d, want 3", rep.Rounds)
	}

	ex, err := Exhaustive(fleetOpts(fakeFleet()))
	if err != nil {
		t.Fatal(err)
	}
	if ex.WinnerIndex != rep.WinnerIndex {
		t.Fatalf("exhaustive winner %d, search winner %d", ex.WinnerIndex, rep.WinnerIndex)
	}
	if rep.TotalSpentInsts >= ex.TotalSpentInsts {
		t.Errorf("search spent %d insts, exhaustive %d — pruning saved nothing",
			rep.TotalSpentInsts, ex.TotalSpentInsts)
	}
}

// TestSearchBaselineProbedOnceAtFinalTarget pins the Δ-reference
// handling: exactly one probe, already at the final precision, with
// its spend accounted separately.
func TestSearchBaselineProbedOnceAtFinalTarget(t *testing.T) {
	f := fakeFleet()
	rep, err := Search(fleetOpts(f))
	if err != nil {
		t.Fatal(err)
	}
	if f.probes["baseline"] != 1 {
		t.Errorf("baseline probed %d times, want 1", f.probes["baseline"])
	}
	if rep.Baseline == nil {
		t.Fatal("report carries no baseline result")
	}
	if got := rep.Baseline.Sampled.TargetCI; got != 0.01 {
		t.Errorf("baseline probed at target %g, want the final 0.01", got)
	}
	if rep.BaselineSpentInsts == 0 {
		t.Error("baseline spend not accounted")
	}
	for _, c := range rep.Candidates {
		if c.Job.Config.Name == "baseline" {
			t.Error("baseline leaked into the candidate standings")
		}
	}
}

// TestSearchOptionValidation pins the rejection paths.
func TestSearchOptionValidation(t *testing.T) {
	f := fakeFleet()
	cases := []struct {
		name string
		mut  func(*Options)
	}{
		{"nil exec", func(o *Options) { o.Exec = nil }},
		{"empty grid", func(o *Options) { o.Grid = nil }},
		{"sampling disabled", func(o *Options) { o.Grid[0].Config.Sampling.Enabled = false }},
		{"coarse below final", func(o *Options) { o.CoarseTargetCI = 0.005; o.TargetCI = 0.01 }},
		{"negative final", func(o *Options) { o.TargetCI = -1 }},
		{"baseline sampling disabled", func(o *Options) { o.Baseline.Config.Sampling.Enabled = false }},
	}
	for _, tc := range cases {
		opts := fleetOpts(f)
		tc.mut(&opts)
		if _, err := Search(opts); err == nil {
			t.Errorf("%s: Search accepted invalid options", tc.name)
		}
	}
}

// TestWriteMarkdown sanity-checks the rendered standings: winner row
// marked, pruned rows labeled with their round, the Pareto frontier
// containing the cheap-and-fast config but not a dominated one.
func TestWriteMarkdown(t *testing.T) {
	rep, err := Search(fleetOpts(fakeFleet()))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	rep.WriteMarkdown(&sb)
	got := sb.String()
	for _, want := range []string{"**winner**", "pruned r1", "Baseline baseline: IPC 1.0000", "Rounds: 3"} {
		if !strings.Contains(got, want) {
			t.Errorf("markdown missing %q:\n%s", want, got)
		}
	}
	// "good" (IPC 2.00 at 4KB) and "best" (2.01 at 8KB) are both on the
	// IPC-vs-storage frontier; "mid" (1.0 at 0KB) also survives on the
	// storage axis, but "slow" (0.5 at 0KB) is dominated by mid.
	frontier := rep.paretoFrontier()
	wantFrontier := map[string]bool{"slow": false, "mid": true, "good": true, "best": true}
	for i, c := range rep.Candidates {
		if frontier[i] != wantFrontier[c.Job.Config.Name] {
			t.Errorf("%s frontier membership %v, want %v", c.Job.Config.Name, frontier[i], wantFrontier[c.Job.Config.Name])
		}
	}
}

// TestSearchRealSim drives the search end to end over a real pool on a
// tiny three-way grid whose ordering is unambiguous (no µ-op cache ≪
// baseline < ideal µ-op cache on crypto01), and pins that a second
// identical search — served from the pool's memo — returns the same
// winner with byte-identical winning digests.
func TestSearchRealSim(t *testing.T) {
	prof, ok := trace.ProfileByName("crypto01")
	if !ok {
		t.Fatal("missing crypto01 profile")
	}
	mk := func(cfg sim.Config) runq.Job {
		cfg.Sampling = sim.SamplingConfig{
			Enabled:       true,
			PeriodInsts:   25_000,
			DetailedInsts: 2_000,
			WarmInsts:     2_000,
			FFWarmInsts:   8_000,
		}
		return runq.Job{Config: cfg, Profile: prof, Warmup: 50_000, Measure: 500_000}
	}
	noUop := sim.Baseline()
	noUop.Name = "no-uop"
	noUop.Ideal.NoUopCache = true
	ideal := sim.Baseline()
	ideal.Name = "ideal-uop"
	ideal.Ideal.UopAlwaysHit = true

	pool := runq.New(runq.Options{Workers: 2, Checkpoints: true})
	opts := Options{
		Exec:           pool,
		Grid:           []runq.Job{mk(noUop), mk(sim.Baseline()), mk(ideal)},
		CoarseTargetCI: 0.05,
		TargetCI:       0.02,
		MinWindows:     4,
	}
	rep, err := Search(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Candidates[rep.WinnerIndex].Job.Config.Name; got != "ideal-uop" {
		t.Fatalf("winner %q, want ideal-uop", got)
	}
	rep2, err := Search(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.WinnerIndex != rep.WinnerIndex {
		t.Fatalf("second search picked %d, first %d", rep2.WinnerIndex, rep.WinnerIndex)
	}
	a := rep.Candidates[rep.WinnerIndex].Result.DeterminismDigest()
	b := rep2.Candidates[rep2.WinnerIndex].Result.DeterminismDigest()
	if a != b {
		t.Fatal("winning digests differ between identical searches")
	}
}
