package autopilot

import (
	"fmt"
	"io"
	"sort"
)

// WriteMarkdown renders the search standings as a markdown table:
// candidates sorted by mean IPC descending (ties by grid order), each
// with its interval, Δ vs the baseline probe, window/spend accounting,
// status (winner / survivor precision / pruned round), and a Pareto
// mark on the IPC-vs-UCP-storage frontier. The output is deterministic
// — cmd/experiments splices it into EXPERIMENTS_RESULTS.md between
// generated-section markers.
func (rep *Report) WriteMarkdown(w io.Writer) {
	order := make([]int, len(rep.Candidates))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return rep.Candidates[order[a]].Mean > rep.Candidates[order[b]].Mean
	})
	frontier := rep.paretoFrontier()

	var baseIPC float64
	if rep.Baseline != nil {
		if s := rep.Baseline.Sampled; s != nil {
			baseIPC = s.IPCMean
		} else {
			baseIPC = rep.Baseline.IPC
		}
	}

	fmt.Fprintf(w, "config | IPC (95%% CI) | Δ vs baseline | windows | spent Minsts | status | Pareto\n")
	fmt.Fprintf(w, "--- | --- | --- | --- | --- | --- | ---\n")
	for _, i := range order {
		c := &rep.Candidates[i]
		delta := "—"
		if baseIPC > 0 {
			delta = fmt.Sprintf("%+.2f%%", (c.Mean/baseIPC-1)*100)
		}
		status := "survivor"
		switch {
		case c.Winner:
			status = "**winner**"
		case c.PrunedRound > 0:
			status = fmt.Sprintf("pruned r%d", c.PrunedRound)
		}
		mark := ""
		if frontier[i] {
			mark = "◆"
		}
		fmt.Fprintf(w, "%s | %.4f ± %.4f | %s | %d | %.2f | %s | %s\n",
			c.Job.Config.Name, c.Mean, c.Half, delta, c.Windows,
			float64(c.SpentInsts)/1e6, status, mark)
	}
	if rep.Baseline != nil {
		fmt.Fprintf(w, "\nBaseline %s: IPC %.4f (probe excluded from the spend totals below).\n",
			rep.Baseline.Name, baseIPC)
	}
	fmt.Fprintf(w, "\nRounds: %d · total spend %.2f Minsts · Pareto axis: IPC vs UCP storage (KB).\n",
		rep.Rounds, float64(rep.TotalSpentInsts)/1e6)
}

// paretoFrontier marks the candidates on the (maximize IPC, minimize
// UCP storage) frontier: a candidate is dominated when another one has
// at least its IPC for at most its storage cost, with one inequality
// strict. Pruned candidates participate with their last-round
// estimates — the frontier is a map of the whole grid, not just of the
// survivors.
func (rep *Report) paretoFrontier() map[int]bool {
	frontier := make(map[int]bool, len(rep.Candidates))
	for i := range rep.Candidates {
		ci := &rep.Candidates[i]
		dominated := false
		for j := range rep.Candidates {
			if i == j {
				continue
			}
			cj := &rep.Candidates[j]
			if cj.Mean >= ci.Mean && cj.Result.UCPStorageKB <= ci.Result.UCPStorageKB &&
				(cj.Mean > ci.Mean || cj.Result.UCPStorageKB < ci.Result.UCPStorageKB) {
				dominated = true
				break
			}
		}
		if !dominated {
			frontier[i] = true
		}
	}
	return frontier
}
