// Package backend models the out-of-order execution engine of the
// baseline core (Table II): a 512-entry ROB, 6-wide dispatch, 10-wide
// issue and commit, 3 load + 2 store ports, with dependency tracking
// through a register ready-time scoreboard. Because the simulator never
// dispatches wrong-path µ-ops (the frontend stalls at a mispredicted
// branch), a "flush" reduces to resolving the branch and releasing the
// frontend — the refill cost UCP targets is then paid entirely in the
// frontend, which is exactly the effect under study.
package backend

import (
	"ucp/internal/cache"
	"ucp/internal/isa"
)

// Config sizes the backend.
type Config struct {
	ROB           int
	DispatchWidth int
	IssueWidth    int
	CommitWidth   int
	LoadPorts     int
	StorePorts    int
	// SchedWindow bounds how deep past the oldest unissued µ-op the
	// scheduler looks each cycle (reservation-station reach).
	SchedWindow int
	// Latencies per class.
	ALULat, MulLat, FPLat, BranchLat uint64
}

// DefaultConfig mirrors Table II.
func DefaultConfig() Config {
	return Config{
		ROB: 512, DispatchWidth: 6, IssueWidth: 10, CommitWidth: 10,
		LoadPorts: 3, StorePorts: 2, SchedWindow: 160,
		ALULat: 1, MulLat: 3, FPLat: 4, BranchLat: 1,
	}
}

// Uop is one micro-operation handed to the backend at dispatch.
type Uop struct {
	PC      uint64
	Class   isa.Class
	Dst     uint8
	Src1    uint8
	Src2    uint8
	MemAddr uint64
	// Mispredict marks a branch whose resolution redirects the frontend.
	Mispredict bool
}

type robEntry struct {
	uop  Uop
	done uint64
}

// Flush reports a resolved misprediction.
type Flush struct {
	// Cycle is when the branch resolved (frontend may restart at
	// Cycle+1).
	Cycle uint64
	// PC is the branch address.
	PC uint64
}

// DataPrefetcher observes issued loads (the IP-stride L1D prefetcher
// of Table II attaches here).
type DataPrefetcher interface {
	// OnLoad fires when a load issues.
	OnLoad(pc, addr uint64, now uint64)
}

// Backend is the out-of-order engine.
type Backend struct {
	cfg Config
	mem *cache.Hierarchy
	// DataPrefetcher is optional.
	DataPrefetcher DataPrefetcher
	rob            []robEntry
	// issuedF holds the per-entry issued flags densely, separate from
	// the entries themselves: the scheduler's scan-advance and
	// skip-issued paths then read one byte per entry instead of pulling
	// each ~48-byte robEntry through the cache.
	issuedF          []bool
	head, tail, used int
	// unissued lists the ring indices of not-yet-issued entries in
	// program order. The scheduler iterates it instead of walking ROB
	// slots, so interleaved already-issued entries cost nothing; the
	// SchedWindow bound is still enforced in slot distance from the
	// oldest unissued entry, preserving the slot-scan semantics exactly.
	unissued []int
	// dirty forces a scheduler scan; nextWake is the earliest cycle a
	// blocked µ-op can become ready when the window is quiescent. They
	// make memory-stall phases O(1) per cycle instead of O(window).
	dirty    bool
	nextWake uint64

	regReady [isa.RegCount]uint64

	// Stats.
	Committed   uint64
	Issued      uint64
	LoadsIssued uint64
	StoreIssued uint64
}

// New constructs a backend over the given memory hierarchy.
func New(cfg Config, mem *cache.Hierarchy) *Backend {
	return &Backend{cfg: cfg, mem: mem,
		rob:      make([]robEntry, cfg.ROB),
		issuedF:  make([]bool, cfg.ROB),
		unissued: make([]int, 0, cfg.ROB)}
}

// CanDispatch reports whether n more µ-ops fit in the ROB.
func (b *Backend) CanDispatch(n int) bool { return b.used+n <= b.cfg.ROB }

// Dispatch inserts a µ-op into the ROB. Callers must respect
// CanDispatch and the configured dispatch width.
func (b *Backend) Dispatch(u Uop) {
	b.rob[b.tail] = robEntry{uop: u}
	b.issuedF[b.tail] = false
	b.unissued = append(b.unissued, b.tail)
	b.tail++
	if b.tail == len(b.rob) {
		b.tail = 0
	}
	b.used++
	b.dirty = true
}

// DispatchWidth returns the per-cycle dispatch capacity.
func (b *Backend) DispatchWidth() int { return b.cfg.DispatchWidth }

// Cycle advances execution by one cycle: issues ready µ-ops oldest
// first, commits finished ones in order, and reports a resolved
// misprediction if one completed this cycle.
func (b *Backend) Cycle(now uint64) (committed int, flush *Flush) {
	issued, loads, stores := 0, 0, 0
	if b.dirty || now >= b.nextWake {
		issued, flush = b.issue(now)
	}
	_ = issued
	// Commit in order.
	for committed < b.cfg.CommitWidth && b.used > 0 {
		if !b.issuedF[b.head] || b.rob[b.head].done > now {
			break
		}
		b.head++
		if b.head == len(b.rob) {
			b.head = 0
		}
		b.used--
		committed++
		b.Committed++
	}
	if committed > 0 {
		b.dirty = true
	}
	_ = loads
	_ = stores
	return committed, flush
}

// issue runs one scheduler scan, returning the number of µ-ops issued
// and any resolved misprediction.
func (b *Backend) issue(now uint64) (issued int, flush *Flush) {
	// Iterate the unissued list (program order) instead of walking ROB
	// slots: already-issued entries between candidates cost nothing.
	// The candidate set is unchanged — the scheduler still only reaches
	// entries within SchedWindow ROB slots of the oldest unissued one,
	// and stops mid-window once the issue width is spent.
	list := b.unissued
	if len(list) == 0 {
		b.dirty = false
		b.nextWake = ^uint64(0)
		return 0, nil
	}
	rob := b.rob
	n := len(rob)
	issuedF := b.issuedF
	regReady := &b.regReady
	oldest := list[0]
	window := b.cfg.SchedWindow
	issueWidth := b.cfg.IssueWidth
	loads, stores := 0, 0
	portLimited := false
	wake := ^uint64(0)
	kept := list[:0]
	for li, cur := range list {
		if issued >= issueWidth {
			kept = append(kept, list[li:]...)
			break
		}
		dist := cur - oldest
		if dist < 0 {
			dist += n
		}
		if dist >= window {
			kept = append(kept, list[li:]...)
			break
		}
		e := &rob[cur]
		u := &e.uop
		if r1, r2 := regReady[u.Src1], regReady[u.Src2]; r1 > now || r2 > now {
			if r2 > r1 {
				r1 = r2
			}
			if r1 < wake {
				wake = r1
			}
			kept = append(kept, cur)
			continue
		}
		switch u.Class {
		case isa.Load:
			if loads >= b.cfg.LoadPorts {
				portLimited = true
				kept = append(kept, cur)
				continue
			}
			loads++
			e.done = b.mem.Load(u.MemAddr, now) + 1
			b.LoadsIssued++
			if b.DataPrefetcher != nil {
				b.DataPrefetcher.OnLoad(u.PC, u.MemAddr, now)
			}
		case isa.Store:
			if stores >= b.cfg.StorePorts {
				portLimited = true
				kept = append(kept, cur)
				continue
			}
			stores++
			b.mem.Store(u.MemAddr, now)
			e.done = now + 1
			b.StoreIssued++
		case isa.Mul:
			e.done = now + b.cfg.MulLat
		case isa.FP:
			e.done = now + b.cfg.FPLat
		default:
			if u.Class.IsBranch() {
				e.done = now + b.cfg.BranchLat
			} else {
				e.done = now + b.cfg.ALULat
			}
		}
		issuedF[cur] = true
		issued++
		b.Issued++
		if u.Dst != 0 {
			regReady[u.Dst] = e.done
		}
		if u.Class.IsBranch() && u.Mispredict {
			if flush == nil || e.done < flush.Cycle {
				flush = &Flush{Cycle: e.done, PC: u.PC}
			}
		}
	}
	b.unissued = kept
	// A scan that issued something (or hit a port limit) may unblock
	// more work next cycle; a quiescent scan sleeps until the earliest
	// source-ready time.
	b.dirty = issued > 0 || portLimited || issued == b.cfg.IssueWidth
	b.nextWake = wake
	return issued, flush
}

// Occupancy returns the live ROB entries.
func (b *Backend) Occupancy() int { return b.used }

// Drained reports an empty ROB.
func (b *Backend) Drained() bool { return b.used == 0 }
