package backend

import (
	"testing"
	"testing/quick"

	"ucp/internal/cache"
	"ucp/internal/isa"
)

func newBE() *Backend {
	return New(DefaultConfig(), cache.NewHierarchy(cache.DefaultHierarchyConfig()))
}

// drain advances until n µ-ops committed or the cycle bound trips.
func drain(t *testing.T, b *Backend, n int, bound uint64) uint64 {
	t.Helper()
	var now uint64
	total := 0
	for uint64(total) < uint64(n) {
		c, _ := b.Cycle(now)
		total += c
		now++
		if now > bound {
			t.Fatalf("backend did not commit %d µ-ops within %d cycles (%d done)", n, bound, total)
		}
	}
	return now
}

func TestSingleALUCommit(t *testing.T) {
	b := newBE()
	b.Dispatch(Uop{PC: 0x1000, Class: isa.ALU, Dst: 1})
	cycles := drain(t, b, 1, 10)
	if cycles > 3 {
		t.Fatalf("single ALU took %d cycles", cycles)
	}
	if !b.Drained() {
		t.Fatal("ROB not drained")
	}
}

func TestDependencyChainSerializes(t *testing.T) {
	// r1 <- r1 + ... chain of 20: must take ≥20 cycles despite 10-wide
	// issue.
	b := newBE()
	for i := 0; i < 20; i++ {
		b.Dispatch(Uop{PC: uint64(0x1000 + i*4), Class: isa.ALU, Dst: 1, Src1: 1})
	}
	cycles := drain(t, b, 20, 100)
	if cycles < 20 {
		t.Fatalf("20-deep dependency chain finished in %d cycles", cycles)
	}
}

func TestIndependentOpsParallel(t *testing.T) {
	// 20 independent ALU ops, 10-wide: ~2-4 cycles.
	b := newBE()
	for i := 0; i < 20; i++ {
		b.Dispatch(Uop{PC: uint64(0x1000 + i*4), Class: isa.ALU, Dst: uint8(1 + i%40)})
	}
	cycles := drain(t, b, 20, 100)
	if cycles > 8 {
		t.Fatalf("independent ops took %d cycles", cycles)
	}
}

func TestLoadPortLimit(t *testing.T) {
	// 9 independent loads at 3 ports: at least 3 issue cycles.
	b := newBE()
	for i := 0; i < 9; i++ {
		b.Dispatch(Uop{PC: 0x1000, Class: isa.Load, Dst: uint8(i + 1), MemAddr: uint64(1<<32 + i*8)})
	}
	if _, _ = b.Cycle(0); b.LoadsIssued > 3 {
		t.Fatalf("issued %d loads in one cycle (3 ports)", b.LoadsIssued)
	}
	b.Cycle(1)
	b.Cycle(2)
	if b.LoadsIssued != 9 {
		t.Fatalf("after 3 cycles issued %d loads, want 9", b.LoadsIssued)
	}
}

func TestLoadLatencyPropagates(t *testing.T) {
	// A dependent ALU must wait for the load's memory latency.
	b := newBE()
	b.Dispatch(Uop{PC: 0x1000, Class: isa.Load, Dst: 5, MemAddr: 1 << 32}) // cold: DRAM
	b.Dispatch(Uop{PC: 0x1004, Class: isa.ALU, Dst: 6, Src1: 5})
	cycles := drain(t, b, 2, 2000)
	if cycles < 100 {
		t.Fatalf("dependent pair finished in %d cycles despite a cold load", cycles)
	}
}

func TestCommitInOrder(t *testing.T) {
	// A slow head op blocks commit of already-finished younger ops.
	b := newBE()
	b.Dispatch(Uop{PC: 0x1000, Class: isa.Load, Dst: 1, MemAddr: 1 << 33})
	for i := 0; i < 5; i++ {
		b.Dispatch(Uop{PC: uint64(0x2000 + i*4), Class: isa.ALU, Dst: uint8(i + 2)})
	}
	committed := 0
	for now := uint64(0); now < 20; now++ {
		c, _ := b.Cycle(now)
		committed += c
	}
	if committed != 0 {
		t.Fatalf("%d µ-ops committed past an unfinished ROB head", committed)
	}
}

func TestCommitWidth(t *testing.T) {
	b := newBE()
	for i := 0; i < 30; i++ {
		b.Dispatch(Uop{PC: uint64(i * 4), Class: isa.ALU})
	}
	// Let everything execute.
	for now := uint64(0); now < 5; now++ {
		b.Cycle(now)
	}
	c, _ := b.Cycle(100)
	if c > 10 {
		t.Fatalf("committed %d in one cycle (10-wide)", c)
	}
}

func TestMispredictFlushReported(t *testing.T) {
	b := newBE()
	b.Dispatch(Uop{PC: 0x1000, Class: isa.CondBranch, Mispredict: true})
	_, flush := b.Cycle(5)
	if flush == nil {
		t.Fatal("no flush for mispredicted branch")
	}
	if flush.PC != 0x1000 || flush.Cycle != 5+DefaultConfig().BranchLat {
		t.Fatalf("flush %+v", flush)
	}
}

func TestNoFlushForCorrectBranch(t *testing.T) {
	b := newBE()
	b.Dispatch(Uop{PC: 0x1000, Class: isa.CondBranch})
	_, flush := b.Cycle(0)
	if flush != nil {
		t.Fatal("flush for correctly-predicted branch")
	}
}

func TestCanDispatchROBLimit(t *testing.T) {
	b := newBE()
	for i := 0; i < DefaultConfig().ROB; i++ {
		if !b.CanDispatch(1) {
			t.Fatalf("ROB refused entry %d", i)
		}
		b.Dispatch(Uop{Class: isa.ALU, Dst: 1, Src1: 1})
	}
	if b.CanDispatch(1) {
		t.Fatal("ROB overcommitted")
	}
	if b.Occupancy() != DefaultConfig().ROB {
		t.Fatalf("occupancy %d", b.Occupancy())
	}
}

func TestRegisterZeroNeverBlocks(t *testing.T) {
	// Register 0 is "no register": writes to it must not create
	// dependencies.
	b := newBE()
	b.Dispatch(Uop{PC: 0x1000, Class: isa.Load, Dst: 1, MemAddr: 1 << 34}) // slow producer of r1
	b.Dispatch(Uop{PC: 0x1004, Class: isa.ALU, Dst: 0, Src1: 0, Src2: 0})
	b.Cycle(0)
	c2, _ := b.Cycle(1)
	_ = c2
	// The ALU op must have issued by cycle 1 even though the load is
	// outstanding (no false dependency through reg 0).
	if b.Issued < 2 {
		t.Fatalf("issued %d, ALU blocked on register 0", b.Issued)
	}
}

func TestEverythingDispatchedCommits(t *testing.T) {
	// Property: any random program drains completely — no µ-op is ever
	// stranded by the scheduler's wake-up optimization.
	if err := quickCheck(func(seed uint64, n uint8) bool {
		b := newBE()
		x := seed
		dispatched := 0
		for i := 0; i < int(n)%200+20; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			u := Uop{PC: uint64(0x1000 + i*4)}
			switch x >> 62 {
			case 0:
				u.Class = isa.Load
				u.MemAddr = 1<<32 + x%(1<<20)
				u.Dst = uint8(1 + x>>8%40)
			case 1:
				u.Class = isa.Store
				u.MemAddr = 1<<32 + x%(1<<20)
				u.Src1 = uint8(1 + x>>8%40)
			case 2:
				u.Class = isa.Mul
				u.Dst = uint8(1 + x>>8%40)
				u.Src1 = uint8(1 + x>>16%40)
			default:
				u.Class = isa.ALU
				u.Dst = uint8(1 + x>>8%40)
				u.Src1 = uint8(1 + x>>16%40)
				u.Src2 = uint8(1 + x>>24%40)
			}
			if !b.CanDispatch(1) {
				break
			}
			b.Dispatch(u)
			dispatched++
		}
		committed := 0
		for now := uint64(0); now < 100_000 && committed < dispatched; now++ {
			c, _ := b.Cycle(now)
			committed += c
		}
		return committed == dispatched && b.Drained()
	}); err != nil {
		t.Fatal(err)
	}
}

// quickCheck adapts testing/quick with a bounded count.
func quickCheck(f func(seed uint64, n uint8) bool) error {
	return quick.Check(f, &quick.Config{MaxCount: 150})
}
