package backend

import "ucp/internal/isa"

// FunctionalCommit retires one instruction through the sampled-mode
// functional path: loads and stores warm their demand D-cache/DTLB
// state and the commit counter advances, but no ROB, scheduler, or
// latency modeling runs. The warm path bypasses the MSHR/latency model
// (the functional clock is denser than sustainable demand traffic), and
// the data prefetcher is not driven — it is a timing mechanism that
// re-trains during the detailed warm segment.
func (b *Backend) FunctionalCommit(in *isa.Inst, now uint64) {
	switch in.Class {
	case isa.Load:
		b.mem.WarmData(in.MemAddr, now)
		b.LoadsIssued++
	case isa.Store:
		b.mem.WarmData(in.MemAddr, now)
		b.StoreIssued++
	}
	b.Committed++
}
