package bpred

import (
	"testing"
	"testing/quick"

	"ucp/internal/rng"
	"ucp/internal/trace"
)

// runPredictor feeds n conditional-branch outcomes from a generated
// workload through p and returns the misprediction rate.
func runPredictor(t testing.TB, pred *TageSCL, profile string, n int) (missRate float64, stats map[Source][2]uint64) {
	t.Helper()
	prof, ok := trace.ProfileByName(profile)
	if !ok {
		t.Fatalf("no profile %s", profile)
	}
	prog, err := trace.BuildProgram(prof)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWalker(prog)
	stats = map[Source][2]uint64{}
	var cond, miss int
	for cond < n {
		in, _ := w.Next()
		if !in.Class.IsBranch() {
			continue
		}
		if in.Class.IsConditional() {
			p := pred.Predict(pred.Hist(), in.PC)
			pred.Update(in.PC, in.Taken, &p)
			s := stats[p.Source]
			s[0]++
			if p.Taken != in.Taken {
				s[1]++
				miss++
			}
			stats[p.Source] = s
			cond++
			pred.PushHistory(in.PC, in.Taken)
		}
	}
	return float64(miss) / float64(cond), stats
}

func TestTageLearnsBiasedBranch(t *testing.T) {
	pred := NewTageSCL(Config8KB())
	h := pred.Hist()
	miss := 0
	for i := 0; i < 2000; i++ {
		taken := i%16 != 0 // 94% taken
		p := pred.Predict(h, 0x4000)
		if i > 200 && p.Taken != taken && taken {
			miss++
		}
		pred.Update(0x4000, taken, &p)
		pred.PushHistory(0x4000, taken)
	}
	if miss > 40 {
		t.Fatalf("biased branch mispredicted %d/1800 taken instances", miss)
	}
}

func TestTageLearnsHistoryCorrelation(t *testing.T) {
	// Branch B repeats the outcome of branch A two steps earlier:
	// perfectly predictable from 2 bits of global history.
	pred := NewTageSCL(Config64KB())
	h := pred.Hist()
	r := rng.New(7)
	lastA := false
	miss, total := 0, 0
	for i := 0; i < 8000; i++ {
		a := r.Bool(0.5)
		pa := pred.Predict(h, 0x1000)
		pred.Update(0x1000, a, &pa)
		pred.PushHistory(0x1000, a)

		b := lastA
		pb := pred.Predict(h, 0x2000)
		if i > 2000 {
			total++
			if pb.Taken != b {
				miss++
			}
		}
		pred.Update(0x2000, b, &pb)
		pred.PushHistory(0x2000, b)
		lastA = a
	}
	rate := float64(miss) / float64(total)
	if rate > 0.08 {
		t.Fatalf("history-correlated branch miss rate %.3f, want < 0.08", rate)
	}
}

func TestLoopPredictorLearnsFixedTrips(t *testing.T) {
	lp := NewLoopPredictor(6)
	const trips = 7 // taken 6 times then not-taken, repeatedly
	miss, total := 0, 0
	for iter := 0; iter < 400; iter++ {
		for i := 0; i < trips; i++ {
			taken := i < trips-1
			var p Prediction
			p.loopHit = -1
			lp.predict(0x8000, &p)
			if iter > 100 {
				total++
				if !p.loopValid || p.loopTaken != taken {
					miss++
				}
			}
			// Feed "TAGE mispredicted" so allocation happens early on.
			lp.update(0x8000, taken, &p, !p.loopValid || p.loopTaken != taken)
		}
	}
	if rate := float64(miss) / float64(total); rate > 0.02 {
		t.Fatalf("loop predictor miss rate %.3f on fixed 7-trip loop", rate)
	}
}

func TestCompositeUsesLoopForFixedTrips(t *testing.T) {
	pred := NewTageSCL(Config64KB())
	h := pred.Hist()
	const trips = 23 // beyond most useful TAGE histories at this PC mix
	sawLoop := false
	for iter := 0; iter < 500; iter++ {
		for i := 0; i < trips; i++ {
			taken := i < trips-1
			p := pred.Predict(h, 0xbeef0)
			if iter > 300 && p.Source == SrcLoop {
				sawLoop = true
			}
			pred.Update(0xbeef0, taken, &p)
			pred.PushHistory(0xbeef0, taken)
		}
	}
	if !sawLoop {
		t.Fatal("loop predictor never provided on a fixed 23-trip loop")
	}
}

func TestPredictorAccuracyBands(t *testing.T) {
	if testing.Short() {
		t.Skip("workload run")
	}
	cases := []struct {
		profile  string
		min, max float64
	}{
		{"crypto02", 0.0, 0.035},
		{"int02", 0.01, 0.08},
		{"srv206", 0.03, 0.17},
	}
	for _, tc := range cases {
		pred := NewTageSCL(Config64KB())
		rate, _ := runPredictor(t, pred, tc.profile, 60000)
		if rate < tc.min || rate > tc.max {
			t.Errorf("%s: cond miss rate %.4f outside [%.3f, %.3f]",
				tc.profile, rate, tc.min, tc.max)
		}
	}
}

func TestSmallPredictorWorseThanLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("workload run")
	}
	big := NewTageSCL(Config64KB())
	small := NewTageSCL(Config8KB())
	bigRate, _ := runPredictor(t, big, "srv204", 50000)
	smallRate, _ := runPredictor(t, small, "srv204", 50000)
	if smallRate < bigRate*0.95 {
		t.Fatalf("8KB predictor (%.4f) should not beat 64KB (%.4f)", smallRate, bigRate)
	}
}

func TestProviderTaxonomy(t *testing.T) {
	if testing.Short() {
		t.Skip("workload run")
	}
	pred := NewTageSCL(Config64KB())
	_, stats := runPredictor(t, pred, "srv203", 80000)
	var total uint64
	for _, s := range stats {
		total += s[0]
	}
	hit := stats[SrcHitBank][0]
	if hit == 0 || float64(hit)/float64(total) < 0.3 {
		t.Fatalf("HitBank provides only %d/%d predictions", hit, total)
	}
	for _, src := range []Source{SrcBimodal, SrcAltBank} {
		if stats[src][0] == 0 {
			t.Errorf("source %v never provided", src)
		}
	}
}

func TestConfidenceEstimators(t *testing.T) {
	if testing.Short() {
		t.Skip("workload run")
	}
	prof, _ := trace.ProfileByName("srv205")
	prog, err := trace.BuildProgram(prof)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWalker(prog)
	pred := NewTageSCL(Config64KB())
	var tageConf, ucpConf H2PStats
	cond := 0
	for cond < 150000 {
		in, _ := w.Next()
		if !in.Class.IsBranch() {
			continue
		}
		if in.Class.IsConditional() {
			p := pred.Predict(pred.Hist(), in.PC)
			miss := p.Taken != in.Taken
			tageConf.Record(TageConfH2P(&p), miss)
			ucpConf.Record(UCPConfH2P(&p), miss)
			pred.Update(in.PC, in.Taken, &p)
			cond++
			pred.PushHistory(in.PC, in.Taken)
		}
	}
	// The paper's central claim for UCP-Conf (Fig. 9): it covers more
	// mispredictions than TAGE-Conf without losing accuracy.
	if ucpConf.Coverage() <= tageConf.Coverage() {
		t.Errorf("UCP-Conf coverage %.3f <= TAGE-Conf %.3f",
			ucpConf.Coverage(), tageConf.Coverage())
	}
	if ucpConf.Coverage() < 0.5 {
		t.Errorf("UCP-Conf coverage %.3f, want >= 0.5", ucpConf.Coverage())
	}
	if ucpConf.Accuracy() < 0.05 {
		t.Errorf("UCP-Conf accuracy %.3f implausibly low", ucpConf.Accuracy())
	}
	t.Logf("TAGE-Conf cov=%.3f acc=%.3f | UCP-Conf cov=%.3f acc=%.3f",
		tageConf.Coverage(), tageConf.Accuracy(), ucpConf.Coverage(), ucpConf.Accuracy())
}

func TestH2PStatsMath(t *testing.T) {
	var s H2PStats
	s.Record(true, true)
	s.Record(true, false)
	s.Record(false, true)
	s.Record(false, false)
	if s.Coverage() != 0.5 {
		t.Fatalf("coverage %v", s.Coverage())
	}
	if s.Accuracy() != 0.5 {
		t.Fatalf("accuracy %v", s.Accuracy())
	}
	var empty H2PStats
	if empty.Coverage() != 0 || empty.Accuracy() != 0 {
		t.Fatal("empty stats must be 0")
	}
}

func TestEstimatorSwitch(t *testing.T) {
	p := &Prediction{Source: SrcSC, TageSource: SrcHitBank, ProviderSat: true}
	if !EstimatorUCPConf.H2P(p) {
		t.Fatal("UCP-Conf must flag SC-provided as H2P")
	}
	if EstimatorTageConf.H2P(p) {
		t.Fatal("TAGE-Conf ignores SC; saturated HitBank is high confidence")
	}
	if EstimatorUCPConf.String() != "UCP-Conf" || EstimatorTageConf.String() != "TAGE-Conf" {
		t.Fatal("estimator names drifted")
	}
}

func TestUCPConfRules(t *testing.T) {
	cases := []struct {
		name string
		p    Prediction
		h2p  bool
	}{
		{"loop high conf", Prediction{Source: SrcLoop, TageSource: SrcHitBank}, false},
		{"sc low conf", Prediction{Source: SrcSC, TageSource: SrcHitBank, ProviderSat: true}, true},
		{"altbank always low", Prediction{Source: SrcAltBank, TageSource: SrcAltBank, ProviderSat: true}, true},
		{"hitbank saturated", Prediction{Source: SrcHitBank, TageSource: SrcHitBank, ProviderSat: true}, false},
		{"hitbank weak", Prediction{Source: SrcHitBank, TageSource: SrcHitBank, ProviderSat: false}, true},
		{"bimodal sat clean", Prediction{Source: SrcBimodal, TageSource: SrcBimodal, ProviderSat: true}, false},
		{"bimodal sat recent miss", Prediction{Source: SrcBimodal, TageSource: SrcBimodal, ProviderSat: true, BimodalRecentMiss: true}, true},
		{"bimodal weak", Prediction{Source: SrcBimodal, TageSource: SrcBimodal, ProviderSat: false}, true},
	}
	for _, tc := range cases {
		if got := UCPConfH2P(&tc.p); got != tc.h2p {
			t.Errorf("%s: UCPConfH2P = %v, want %v", tc.name, got, tc.h2p)
		}
	}
}

func TestHistCloneIndependence(t *testing.T) {
	pred := NewTageSCL(Config8KB())
	h := pred.Hist()
	for i := 0; i < 100; i++ {
		h.Push(uint64(0x1000+i*4), i%3 == 0)
	}
	clone := h.Clone()
	before := pred.Predict(h, 0x5000)
	for i := 0; i < 50; i++ {
		clone.Push(uint64(0x9000+i*4), i%2 == 0)
	}
	after := pred.Predict(h, 0x5000)
	if before.Taken != after.Taken || before.hitBank != after.hitBank {
		t.Fatal("mutating a clone changed primary-history predictions")
	}
	// CopyFrom must resynchronize.
	clone.CopyFrom(h)
	p1 := pred.Predict(clone, 0x5000)
	if p1.hitBank != after.hitBank || p1.Taken != after.Taken {
		t.Fatal("CopyFrom did not resynchronize the context")
	}
}

func TestFoldedHistoryConsistency(t *testing.T) {
	// Property: folding the same bit sequence through two paths (push
	// all at once vs. incrementally interleaved with reads) matches, and
	// folded state is a pure function of the last origLen bits.
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		shape := &histShape{lens: []int{7}, idxBits: []int{5}, tagBits: []int{6}}
		a, b := newHist(shape), newHist(shape)
		// Warm a with random prefix; b gets a different prefix.
		for i := 0; i < 200; i++ {
			a.Push(uint64(i*4), r.Bool(0.5))
		}
		for i := 0; i < 137; i++ {
			b.Push(uint64(i*8), r.Bool(0.5))
		}
		// Now push the same 7 (=origLen) suffix bits into both: folded
		// index state must converge since the window only spans 7 bits.
		for i := 0; i < 7; i++ {
			bit := r.Bool(0.5)
			a.Push(0x100, bit)
			b.Push(0x100, bit)
		}
		return a.folds[0].idx.comp == b.folds[0].idx.comp &&
			a.folds[0].tag1.comp == b.folds[0].tag1.comp
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStorageBudgets(t *testing.T) {
	big := NewTageSCL(Config64KB())
	small := NewTageSCL(Config8KB())
	double := NewTageSCL(Config128KB())
	bigKB, smallKB, doubleKB := big.StorageKB(), small.StorageKB(), double.StorageKB()
	if bigKB < 40 || bigKB > 80 {
		t.Errorf("64KB config computes %.1fKB", bigKB)
	}
	if smallKB < 5 || smallKB > 11 {
		t.Errorf("8KB config computes %.1fKB", smallKB)
	}
	if doubleKB < 1.5*bigKB {
		t.Errorf("128KB config (%.1fKB) should be ~2x the 64KB config (%.1fKB)", doubleKB, bigKB)
	}
}

func TestGeometricLens(t *testing.T) {
	lens := geometricLens(TageConfig{Tables: 12, MinHist: 4, MaxHist: 640})
	if lens[0] != 4 || lens[len(lens)-1] != 640 {
		t.Fatalf("endpoint lengths wrong: %v", lens)
	}
	for i := 1; i < len(lens); i++ {
		if lens[i] <= lens[i-1] {
			t.Fatalf("lengths not strictly increasing: %v", lens)
		}
	}
	if lens[len(lens)-1] > maxHistBits {
		t.Fatalf("max length exceeds history ring capacity")
	}
}

func TestDeterministicPredictor(t *testing.T) {
	run := func() []bool {
		pred := NewTageSCL(Config8KB())
		h := pred.Hist()
		r := rng.New(123)
		out := make([]bool, 0, 3000)
		for i := 0; i < 3000; i++ {
			pc := uint64(0x1000 + (i%37)*4)
			taken := r.Bool(0.6)
			p := pred.Predict(h, pc)
			out = append(out, p.Taken)
			pred.Update(pc, taken, &p)
			pred.PushHistory(pc, taken)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic prediction at %d", i)
		}
	}
}

func TestCentreredCounterRanges(t *testing.T) {
	// Property: provider counters stay within the documented Fig. 6a
	// ranges throughout a training run.
	pred := NewTageSCL(Config8KB())
	h := pred.Hist()
	r := rng.New(5)
	for i := 0; i < 20000; i++ {
		pc := uint64(0x1000 + (i%97)*4)
		taken := r.Bool(0.5)
		p := pred.Predict(h, pc)
		switch p.TageSource {
		case SrcBimodal:
			if p.ProviderCtr < -2 || p.ProviderCtr > 1 {
				t.Fatalf("bimodal centered counter %d out of [-2,1]", p.ProviderCtr)
			}
		default:
			if p.ProviderCtr < -4 || p.ProviderCtr > 3 {
				t.Fatalf("tagged centered counter %d out of [-4,3]", p.ProviderCtr)
			}
		}
		pred.Update(pc, taken, &p)
		pred.PushHistory(pc, taken)
	}
}

func BenchmarkTageSCL64KB(b *testing.B) {
	b.ReportAllocs()
	pred := NewTageSCL(Config64KB())
	h := pred.Hist()
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uint64(0x1000 + (i%997)*4)
		taken := r.Bool(0.5)
		p := pred.Predict(h, pc)
		pred.Update(pc, taken, &p)
		pred.PushHistory(pc, taken)
	}
}

func TestJRSLearnsConfidence(t *testing.T) {
	j := NewJRS(10, 8, 12)
	const pc = 0x1000
	// Fresh branches are low confidence.
	if !j.H2P(pc, 0) {
		t.Fatal("cold JRS entry must be low confidence")
	}
	// A long correct streak builds confidence.
	for i := 0; i < 20; i++ {
		j.Update(pc, 0, true)
	}
	if j.H2P(pc, 0) {
		t.Fatal("streak of correct predictions still low confidence")
	}
	// One miss resets.
	j.Update(pc, 0, false)
	if !j.H2P(pc, 0) {
		t.Fatal("resetting counter did not reset")
	}
}

func TestJRSHistoryIndexing(t *testing.T) {
	j := NewJRS(10, 8, 12)
	for i := 0; i < 20; i++ {
		j.Update(0x1000, 0xaa, true)
	}
	if j.H2P(0x1000, 0xaa) {
		t.Fatal("trained context low confidence")
	}
	// A different history context maps to a different counter.
	if !j.H2P(0x1000, 0x55) {
		t.Fatal("untrained context inherited confidence")
	}
}

func TestJRSCoverageAccuracyOnWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("workload run")
	}
	// JRS must do SOMETHING useful (nonzero coverage and accuracy above
	// the base rate) but the paper expects dedicated small tables to
	// trail the storage-free estimators on datacenter footprints.
	prof, _ := trace.ProfileByName("srv205")
	prog, err := trace.BuildProgram(prof)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWalker(prog)
	pred := NewTageSCL(Config64KB())
	jrs := DefaultJRS()
	var jstats, ustats H2PStats
	cond := 0
	for cond < 120000 {
		in, ok := w.Next()
		if !ok {
			break
		}
		if !in.Class.IsConditional() {
			continue
		}
		p := pred.Predict(pred.Hist(), in.PC)
		miss := p.Taken != in.Taken
		ghr := pred.Hist().GHR()
		jstats.Record(jrs.H2P(in.PC, ghr), miss)
		ustats.Record(UCPConfH2P(&p), miss)
		jrs.Update(in.PC, ghr, !miss)
		pred.Update(in.PC, in.Taken, &p)
		pred.PushHistory(in.PC, in.Taken)
		cond++
	}
	if jstats.Coverage() == 0 || jstats.Accuracy() == 0 {
		t.Fatalf("JRS inert: %+v", jstats)
	}
	t.Logf("JRS cov=%.3f acc=%.3f | UCP-Conf cov=%.3f acc=%.3f (0.5KB vs storage-free)",
		jstats.Coverage(), jstats.Accuracy(), ustats.Coverage(), ustats.Accuracy())
}

func TestJRSStorage(t *testing.T) {
	if got := DefaultJRS().StorageBits(); got != 4096 {
		t.Fatalf("JRS storage %d bits, want 4096 (0.5KB)", got)
	}
}

func TestSCCorrectsBiasedTage(t *testing.T) {
	// A branch whose outcome anti-correlates with a specific global
	// history context: the SC's history-indexed counters can catch what
	// a weakly-trained provider misses. We check the SC trains without
	// destabilizing: final accuracy must be high.
	pred := NewTageSCL(Config64KB())
	h := pred.Hist()
	r := rng.New(11)
	miss, total := 0, 0
	for i := 0; i < 12000; i++ {
		ctx := r.Bool(0.5)
		pc0 := uint64(0x9000)
		p0 := pred.Predict(h, pc0)
		pred.Update(pc0, ctx, &p0)
		pred.PushHistory(pc0, ctx)
		// Branch B: outcome == ctx (1-bit correlation).
		pb := pred.Predict(h, 0xa000)
		if i > 4000 {
			total++
			if pb.Taken != ctx {
				miss++
			}
		}
		pred.Update(0xa000, ctx, &pb)
		pred.PushHistory(0xa000, ctx)
	}
	if rate := float64(miss) / float64(total); rate > 0.05 {
		t.Fatalf("correlated branch missed at %.3f with SC active", rate)
	}
}

func TestUsefulnessReset(t *testing.T) {
	// The periodic u-bit decay must fire and halve usefulness, freeing
	// allocation victims. Drive >2^18 updates through a small TAGE.
	tg := NewTAGE(TageConfig{BimodalBits: 8, Tables: 4, MinHist: 2,
		MaxHist: 16, IdxBits: 6, TagBase: 7, CtrBits: 3})
	h := tg.NewHist()
	r := rng.New(3)
	for i := 0; i < (1<<18)+100; i++ {
		pc := uint64(0x1000 + (i%50)*4)
		taken := r.Bool(0.5)
		p := tg.Predict(h, pc)
		tg.Update(pc, taken, &p)
		h.Push(pc, taken)
	}
	// After the reset tick, at least some u bits must be low enough for
	// fresh allocations to land (indirectly: allocation must succeed).
	before := tg.tables[3][0]
	_ = before
	if tg.tick >= 1<<18 {
		t.Fatalf("tick %d never wrapped", tg.tick)
	}
}

func TestPredictionSourceAlwaysValid(t *testing.T) {
	pred := NewTageSCL(Config8KB())
	h := pred.Hist()
	r := rng.New(21)
	for i := 0; i < 30000; i++ {
		pc := uint64(0x1000 + (i%211)*4)
		taken := r.Bool(0.7)
		p := pred.Predict(h, pc)
		if p.Source >= NumSources || p.TageSource > SrcAltBank {
			t.Fatalf("invalid sources %v/%v", p.Source, p.TageSource)
		}
		pred.Update(pc, taken, &p)
		pred.PushHistory(pc, taken)
	}
}

func TestHistPushPure(t *testing.T) {
	// Property: CopyFrom then identical pushes yield identical state.
	pred := NewTageSCL(Config8KB())
	a := pred.Hist()
	r := rng.New(4)
	for i := 0; i < 300; i++ {
		a.Push(uint64(0x1000+i*4), r.Bool(0.5))
	}
	b := pred.NewHist()
	b.CopyFrom(a)
	for i := 0; i < 50; i++ {
		pc := uint64(0x9000 + i*4)
		bit := i%3 == 0
		a.Push(pc, bit)
		b.Push(pc, bit)
	}
	pa := pred.Predict(a, 0x7777c)
	pb := pred.Predict(b, 0x7777c)
	if pa.Taken != pb.Taken || pa.HitBankNum() != pb.HitBankNum() {
		t.Fatal("identical push sequences diverged after CopyFrom")
	}
}
