package bpred

import "ucp/internal/ckpt"

// Checkpoint hooks: the sampled-simulation fast-forward trains the
// direction predictor continuously (WarmCond / Update / PushHistory),
// so the entire mutable TAGE-SC-L state — tables, adaptive counters,
// allocation LFSR, and the demand history context — must serialize for
// a restored run to be byte-identical to an uninterrupted one.
// Construction-derived fields (shapes, masks, geometry) are rebuilt by
// the constructor and deliberately not serialized; slice lengths encode
// the configured geometry, so restoring into a differently-configured
// predictor fails the codec's length checks.

// SaveState serializes all mutable predictor state, including the
// primary history context.
func (t *TageSCL) SaveState(w *ckpt.Writer) {
	w.Section("tagescl")
	t.tage.saveState(w)
	t.loop.saveState(w)
	t.sc.saveState(w)
	t.hist.SaveState(w)
}

// LoadState restores state saved by SaveState into an identically
// configured predictor. Errors surface on the reader.
func (t *TageSCL) LoadState(r *ckpt.Reader) {
	r.Section("tagescl")
	t.tage.loadState(r)
	t.loop.loadState(r)
	t.sc.loadState(r)
	t.hist.LoadState(r)
}

func (t *TAGE) saveState(w *ckpt.Writer) {
	w.Section("tage")
	w.U8s(t.bimodal)
	for _, tbl := range t.tables {
		w.Uvarint(uint64(len(tbl)))
		for i := range tbl {
			w.Byte(tbl[i].ctr)
			w.Uvarint(uint64(tbl[i].tag))
			w.Byte(tbl[i].u)
		}
	}
	w.I8(t.useAltOn)
	w.Byte(t.bimHist)
	w.Uvarint(uint64(t.tick))
	w.Uvarint(uint64(t.lfsr))
}

func (t *TAGE) loadState(r *ckpt.Reader) {
	r.Section("tage")
	r.U8sInto(t.bimodal)
	for ti, tbl := range t.tables {
		n := r.Uvarint()
		if r.Err() != nil {
			return
		}
		if n != uint64(len(tbl)) {
			r.Failf("tage table %d: %d entries, want %d", ti, n, len(tbl))
			return
		}
		for i := range tbl {
			tbl[i].ctr = r.Byte()
			tbl[i].tag = uint16(r.Uvarint())
			tbl[i].u = r.Byte()
		}
	}
	t.useAltOn = r.I8()
	t.bimHist = r.Byte()
	t.tick = int(r.Uvarint())
	t.lfsr = uint32(r.Uvarint())
}

func (l *LoopPredictor) saveState(w *ckpt.Writer) {
	w.Section("loop")
	w.Uvarint(uint64(len(l.entries)))
	for i := range l.entries {
		e := &l.entries[i]
		w.Uvarint(uint64(e.tag))
		w.Uvarint(uint64(e.pastIter))
		w.Uvarint(uint64(e.currIter))
		w.Byte(e.conf)
		w.Byte(e.age)
		w.Bool(e.dir)
		w.Bool(e.valid)
	}
	w.I8(l.withLoop)
}

func (l *LoopPredictor) loadState(r *ckpt.Reader) {
	r.Section("loop")
	n := r.Uvarint()
	if r.Err() != nil {
		return
	}
	if n != uint64(len(l.entries)) {
		r.Failf("loop predictor: %d entries, want %d", n, len(l.entries))
		return
	}
	for i := range l.entries {
		e := &l.entries[i]
		e.tag = uint16(r.Uvarint())
		e.pastIter = uint16(r.Uvarint())
		e.currIter = uint16(r.Uvarint())
		e.conf = r.Byte()
		e.age = r.Byte()
		e.dir = r.Bool()
		e.valid = r.Bool()
	}
	l.withLoop = r.I8()
}

func (s *SC) saveState(w *ckpt.Writer) {
	w.Section("sc")
	w.I8s(s.bias)
	for i := range s.tables {
		w.I8s(s.tables[i])
	}
	w.Varint(int64(s.theta))
	w.I8(s.tc)
	w.Varint(int64(s.scale))
}

func (s *SC) loadState(r *ckpt.Reader) {
	r.Section("sc")
	r.I8sInto(s.bias)
	for i := range s.tables {
		r.I8sInto(s.tables[i])
	}
	s.theta = int32(r.Varint())
	s.tc = r.I8()
	s.scale = int32(r.Varint())
}

// SaveState serializes a history context: the direction ring, path and
// GHR mirrors, and each table's three folded-register values (the rest
// of a folded register is construction-derived).
func (h *Hist) SaveState(w *ckpt.Writer) {
	w.Section("hist")
	w.U64s(h.ring[:])
	w.Uvarint(uint64(h.pos))
	w.Uvarint(h.path)
	w.Uvarint(h.ghr)
	w.Uvarint(uint64(len(h.folds)))
	for i := range h.folds {
		f := &h.folds[i]
		w.Uvarint(uint64(f.idx.comp))
		w.Uvarint(uint64(f.tag1.comp))
		w.Uvarint(uint64(f.tag2.comp))
	}
}

// LoadState restores a history context saved by SaveState.
func (h *Hist) LoadState(r *ckpt.Reader) {
	r.Section("hist")
	r.U64sInto(h.ring[:])
	h.pos = int(r.Uvarint())
	h.path = r.Uvarint()
	h.ghr = r.Uvarint()
	n := r.Uvarint()
	if r.Err() != nil {
		return
	}
	if n != uint64(len(h.folds)) {
		r.Failf("hist: %d fold sets, want %d", n, len(h.folds))
		return
	}
	for i := range h.folds {
		f := &h.folds[i]
		f.idx.comp = uint32(r.Uvarint())
		f.tag1.comp = uint32(r.Uvarint())
		f.tag2.comp = uint32(r.Uvarint())
	}
}
