package bpred

// Branch confidence estimation (§IV-A). Both estimators are storage-free:
// they classify a prediction as hard-to-predict (H2P) from information
// the predictor already produced.

// TageConfH2P is Seznec's original storage-free TAGE confidence
// heuristic [67]: a prediction is high confidence when the providing
// counter is saturated, unless the bimodal provided and at least one of
// its last eight provided predictions missed. It predates SC and LP, so
// it considers only the TAGE provider.
func TageConfH2P(p *Prediction) bool {
	if !p.ProviderSat {
		return true
	}
	if p.TageSource == SrcBimodal && p.BimodalRecentMiss {
		return true
	}
	return false
}

// UCPConfH2P is the paper's extended estimator. A branch instance is H2P
// if its prediction comes from:
//  1. the bimodal table with a miss in its last 8 provided predictions,
//  2. the bimodal table or the HitBank with an unsaturated counter,
//  3. the AltBank (always low confidence, Fig. 6a), or
//  4. the statistical corrector (Fig. 6b),
//
// while loop-predictor provisions are always high confidence (Fig. 6b).
func UCPConfH2P(p *Prediction) bool {
	switch p.Source {
	case SrcLoop:
		return false
	case SrcSC:
		return true
	}
	switch p.TageSource {
	case SrcAltBank:
		return true
	case SrcBimodal:
		return p.BimodalRecentMiss || !p.ProviderSat
	default: // SrcHitBank
		return !p.ProviderSat
	}
}

// Estimator names an H2P classification function. It lets the simulator
// switch between the paper's UCP-Conf and the TAGE-Conf baseline
// (Fig. 12b).
type Estimator uint8

const (
	// EstimatorUCPConf is the paper's extended heuristic.
	EstimatorUCPConf Estimator = iota
	// EstimatorTageConf is Seznec's original heuristic.
	EstimatorTageConf
)

// H2P applies the selected estimator.
func (e Estimator) H2P(p *Prediction) bool {
	if e == EstimatorTageConf {
		return TageConfH2P(p)
	}
	return UCPConfH2P(p)
}

// String returns the estimator's paper name.
func (e Estimator) String() string {
	if e == EstimatorTageConf {
		return "TAGE-Conf"
	}
	return "UCP-Conf"
}

// H2PStats accumulates coverage/accuracy of an H2P classifier (Fig. 9).
type H2PStats struct {
	// Cond counts conditional branch predictions observed.
	Cond uint64
	// Mispred counts actual mispredictions.
	Mispred uint64
	// H2P counts branches classified hard-to-predict.
	H2P uint64
	// H2PMispred counts classified-H2P branches that indeed mispredicted.
	H2PMispred uint64
}

// Record accumulates one classified prediction outcome.
func (s *H2PStats) Record(h2p, mispredicted bool) {
	s.Cond++
	if mispredicted {
		s.Mispred++
	}
	if h2p {
		s.H2P++
		if mispredicted {
			s.H2PMispred++
		}
	}
}

// Coverage is the fraction of mispredictions that were classified H2P.
func (s *H2PStats) Coverage() float64 {
	if s.Mispred == 0 {
		return 0
	}
	return float64(s.H2PMispred) / float64(s.Mispred)
}

// Accuracy is the fraction of H2P-classified branches that mispredicted.
func (s *H2PStats) Accuracy() float64 {
	if s.H2P == 0 {
		return 0
	}
	return float64(s.H2PMispred) / float64(s.H2P)
}
