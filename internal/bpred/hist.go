// Package bpred implements the conditional branch prediction stack the
// paper builds on: a bimodal base predictor, TAGE tagged-geometric
// tables, a loop predictor, a GEHL-style statistical corrector, their
// TAGE-SC-L composition, and the two branch-confidence estimators the
// paper compares (Seznec's storage-free TAGE confidence, "TAGE-Conf",
// and the paper's extended estimator, "UCP-Conf", §IV-A).
//
// History handling: predictors separate *tables* (shared, trained once
// per branch) from *history contexts* (Hist). The primary Hist follows
// the demand path; UCP's alternate-path walker clones the Hist at an H2P
// branch, flips the direction, and predicts down the alternate path with
// the clone without disturbing demand-path state — exactly the dual-GHR
// arrangement of §IV-C.
package bpred

// maxHistBits is the capacity of the global history ring. It bounds the
// longest usable TAGE history length.
const maxHistBits = 1024

// folded is a cyclically-folded history register (Michaud/Seznec CSR),
// maintaining hash(h[0:origLen]) incrementally in compLen bits.
type folded struct {
	comp    uint32
	compLen int
	origLen int
}

func newFolded(origLen, compLen int) folded {
	return folded{compLen: compLen, origLen: origLen}
}

// update shifts in newBit and removes oldBit (the bit leaving the
// origLen-deep window).
func (f *folded) update(newBit, oldBit uint32) {
	f.comp = (f.comp << 1) | newBit
	f.comp ^= oldBit << uint(f.origLen%f.compLen)
	f.comp ^= f.comp >> uint(f.compLen)
	f.comp &= (1 << uint(f.compLen)) - 1
}

// histShape describes the folded registers a predictor needs; it is
// derived from the table configuration and shared by all Hist clones.
type histShape struct {
	lens     []int // history length per tagged table
	idxBits  []int // log2(table entries)
	tagBits  []int
	scGEHLen []int // statistical corrector history lengths
}

// Hist is a branch history context: the global direction history ring,
// a path history, and the folded registers for every tagged table. It
// is a value-copyable snapshot: Clone returns an independent context.
type Hist struct {
	shape *histShape

	ring [maxHistBits / 64]uint64
	pos  int // next write position (bits written so far, mod capacity)

	path uint64 // path history (low bits of branch PCs)

	// ghr mirrors the youngest 64 direction bits for cheap SC indexing.
	ghr uint64

	fIdx  []folded // per-table index folds
	fTag1 []folded // per-table tag folds (width tagBits)
	fTag2 []folded // per-table tag folds (width tagBits-1)
}

func newHist(shape *histShape) *Hist {
	h := &Hist{shape: shape}
	n := len(shape.lens)
	h.fIdx = make([]folded, n)
	h.fTag1 = make([]folded, n)
	h.fTag2 = make([]folded, n)
	for i := 0; i < n; i++ {
		l := shape.lens[i]
		h.fIdx[i] = newFolded(l, shape.idxBits[i])
		h.fTag1[i] = newFolded(l, shape.tagBits[i])
		h.fTag2[i] = newFolded(l, shape.tagBits[i]-1)
	}
	return h
}

// Clone returns an independent deep copy of the history context.
func (h *Hist) Clone() *Hist {
	c := &Hist{shape: h.shape, ring: h.ring, pos: h.pos, path: h.path, ghr: h.ghr}
	c.fIdx = append([]folded(nil), h.fIdx...)
	c.fTag1 = append([]folded(nil), h.fTag1...)
	c.fTag2 = append([]folded(nil), h.fTag2...)
	return c
}

// CopyFrom overwrites this context with src (both must share a shape).
func (h *Hist) CopyFrom(src *Hist) {
	h.ring = src.ring
	h.pos = src.pos
	h.path = src.path
	h.ghr = src.ghr
	copy(h.fIdx, src.fIdx)
	copy(h.fTag1, src.fTag1)
	copy(h.fTag2, src.fTag2)
}

// bitAt returns the direction bit written `age` updates ago (age 0 is
// the most recent).
func (h *Hist) bitAt(age int) uint32 {
	idx := (h.pos - 1 - age) & (maxHistBits - 1)
	return uint32(h.ring[idx/64]>>(uint(idx)%64)) & 1
}

// Push records the outcome of a conditional branch (or the taken-ness of
// any branch feeding history) into the context.
func (h *Hist) Push(pc uint64, taken bool) {
	var nb uint32
	if taken {
		nb = 1
	}
	// Collect outgoing bits before overwriting.
	for i := range h.shape.lens {
		l := h.shape.lens[i]
		ob := h.bitAt(l - 1)
		h.fIdx[i].update(nb, ob)
		h.fTag1[i].update(nb, ob)
		h.fTag2[i].update(nb, ob)
	}
	idx := h.pos & (maxHistBits - 1)
	if nb == 1 {
		h.ring[idx/64] |= 1 << (uint(idx) % 64)
	} else {
		h.ring[idx/64] &^= 1 << (uint(idx) % 64)
	}
	h.pos++
	h.path = (h.path << 3) ^ (pc >> 2)
	h.ghr = (h.ghr << 1) | uint64(nb)
}

// GHR returns the youngest 64 direction bits (bit 0 = most recent).
func (h *Hist) GHR() uint64 { return h.ghr }
