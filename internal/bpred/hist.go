// Package bpred implements the conditional branch prediction stack the
// paper builds on: a bimodal base predictor, TAGE tagged-geometric
// tables, a loop predictor, a GEHL-style statistical corrector, their
// TAGE-SC-L composition, and the two branch-confidence estimators the
// paper compares (Seznec's storage-free TAGE confidence, "TAGE-Conf",
// and the paper's extended estimator, "UCP-Conf", §IV-A).
//
// History handling: predictors separate *tables* (shared, trained once
// per branch) from *history contexts* (Hist). The primary Hist follows
// the demand path; UCP's alternate-path walker clones the Hist at an H2P
// branch, flips the direction, and predicts down the alternate path with
// the clone without disturbing demand-path state — exactly the dual-GHR
// arrangement of §IV-C.
package bpred

// maxHistBits is the capacity of the global history ring. It bounds the
// longest usable TAGE history length.
const maxHistBits = 1024

// folded is a cyclically-folded history register (Michaud/Seznec CSR),
// maintaining hash(h[0:origLen]) incrementally in compLen bits. The
// out-shift (origLen mod compLen) and width mask are precomputed at
// construction: update runs ~36 times per history push in the shipped
// configurations, and the integer division dominated it.
type folded struct {
	comp     uint32
	compLen  uint32
	outShift uint32 // origLen % compLen
	mask     uint32 // (1 << compLen) - 1
}

func newFolded(origLen, compLen int) folded {
	return folded{
		compLen:  uint32(compLen),
		outShift: uint32(origLen % compLen),
		mask:     (1 << uint(compLen)) - 1,
	}
}

// update shifts in newBit and removes oldBit (the bit leaving the
// origLen-deep window).
func (f *folded) update(newBit, oldBit uint32) {
	c := (f.comp << 1) | newBit
	c ^= oldBit << f.outShift
	c ^= c >> f.compLen
	f.comp = c & f.mask
}

// histShape describes the folded registers a predictor needs; it is
// derived from the table configuration and shared by all Hist clones.
type histShape struct {
	lens     []int // history length per tagged table
	idxBits  []int // log2(table entries)
	tagBits  []int
	scGEHLen []int // statistical corrector history lengths
}

// Hist is a branch history context: the global direction history ring,
// a path history, and the folded registers for every tagged table. It
// is a value-copyable snapshot: Clone returns an independent context.
type Hist struct {
	shape *histShape

	ring [maxHistBits / 64]uint64
	pos  int // next write position (bits written so far, mod capacity)

	path uint64 // path history (low bits of branch PCs)

	// ghr mirrors the youngest 64 direction bits for cheap SC indexing.
	ghr uint64

	// folds holds each table's three folded registers contiguously:
	// Push and the TAGE index/tag hashes touch all three per table, so
	// interleaving keeps each table's working set on one cache line
	// (three parallel slices cost three lines per table).
	folds []tableFolds
}

// tableFolds groups one tagged table's folded registers (index fold,
// tag fold of width tagBits, tag fold of width tagBits-1).
type tableFolds struct {
	idx, tag1, tag2 folded
}

func newHist(shape *histShape) *Hist {
	h := &Hist{shape: shape}
	n := len(shape.lens)
	h.folds = make([]tableFolds, n)
	for i := 0; i < n; i++ {
		l := shape.lens[i]
		h.folds[i] = tableFolds{
			idx:  newFolded(l, shape.idxBits[i]),
			tag1: newFolded(l, shape.tagBits[i]),
			tag2: newFolded(l, shape.tagBits[i]-1),
		}
	}
	return h
}

// Clone returns an independent deep copy of the history context.
func (h *Hist) Clone() *Hist {
	c := &Hist{shape: h.shape, ring: h.ring, pos: h.pos, path: h.path, ghr: h.ghr}
	c.folds = append([]tableFolds(nil), h.folds...)
	return c
}

// CopyFrom overwrites this context with src (both must share a shape).
func (h *Hist) CopyFrom(src *Hist) {
	h.ring = src.ring
	h.pos = src.pos
	h.path = src.path
	h.ghr = src.ghr
	copy(h.folds, src.folds)
}

// bitAt returns the direction bit written `age` updates ago (age 0 is
// the most recent).
func (h *Hist) bitAt(age int) uint32 {
	idx := (h.pos - 1 - age) & (maxHistBits - 1)
	return uint32(h.ring[idx/64]>>(uint(idx)%64)) & 1
}

// Push records the outcome of a conditional branch (or the taken-ness of
// any branch feeding history) into the context.
func (h *Hist) Push(pc uint64, taken bool) {
	var nb uint32
	if taken {
		nb = 1
	}
	// Collect outgoing bits before overwriting. bitAt is inlined with
	// pos and ring hoisted: the folds writes below cannot alias them,
	// but the compiler cannot prove that across the slice.
	folds := h.folds
	pos := h.pos
	ring := &h.ring
	for i, l := range h.shape.lens {
		bi := (pos - l) & (maxHistBits - 1)
		ob := uint32(ring[bi/64]>>(uint(bi)%64)) & 1
		f := &folds[i]
		f.idx.update(nb, ob)
		f.tag1.update(nb, ob)
		f.tag2.update(nb, ob)
	}
	idx := h.pos & (maxHistBits - 1)
	if nb == 1 {
		h.ring[idx/64] |= 1 << (uint(idx) % 64)
	} else {
		h.ring[idx/64] &^= 1 << (uint(idx) % 64)
	}
	h.pos++
	h.path = (h.path << 3) ^ (pc >> 2)
	h.ghr = (h.ghr << 1) | uint64(nb)
}

// GHR returns the youngest 64 direction bits (bit 0 = most recent).
func (h *Hist) GHR() uint64 { return h.ghr }
