package bpred

// JRS implements the Jacobsen/Rotenberg/Smith confidence estimator
// ("Assigning confidence to conditional branch predictions", MICRO'96),
// the classic *dedicated-structure* alternative to the storage-free
// TAGE-derived estimators (§VII-D): a table of resetting correctness
// counters indexed by PC ⊕ global history. A branch is low-confidence
// (H2P) until its counter accumulates enough consecutive correct
// predictions. The paper notes such tables struggle on datacenter
// footprints because they are small and thrash — which this
// implementation lets the harness quantify against UCP-Conf.
type JRS struct {
	table     []uint8
	idxBits   int
	histBits  int
	threshold uint8
}

// NewJRS builds an estimator with 2^idxBits counters, folding histBits
// of global history into the index, classifying as high confidence at
// counter >= threshold (the original uses 4-bit counters, threshold 15
// for "strong" confidence; smaller thresholds trade accuracy for
// coverage).
func NewJRS(idxBits, histBits int, threshold uint8) *JRS {
	if threshold > 15 {
		threshold = 15
	}
	return &JRS{
		table:     make([]uint8, 1<<idxBits),
		idxBits:   idxBits,
		histBits:  histBits,
		threshold: threshold,
	}
}

// DefaultJRS is a 1K-entry, 4-bit-counter configuration (0.5KB).
func DefaultJRS() *JRS { return NewJRS(10, 8, 12) }

func (j *JRS) index(pc, ghr uint64) int {
	h := ghr & ((1 << uint(j.histBits)) - 1)
	return int(((pc >> 2) ^ h) & uint64(len(j.table)-1))
}

// H2P classifies the branch as hard-to-predict (counter below the
// confidence threshold).
func (j *JRS) H2P(pc, ghr uint64) bool {
	return j.table[j.index(pc, ghr)] < j.threshold
}

// Update trains the counter: saturating increment on a correct
// prediction, reset on a misprediction (the "resetting counter" MDC).
func (j *JRS) Update(pc, ghr uint64, correct bool) {
	e := &j.table[j.index(pc, ghr)]
	if correct {
		if *e < 15 {
			*e++
		}
	} else {
		*e = 0
	}
}

// StorageBits returns the modeled hardware budget (4-bit counters).
func (j *JRS) StorageBits() int { return len(j.table) * 4 }
