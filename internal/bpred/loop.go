package bpred

// LoopPredictor captures branches with regular trip counts, following the
// L component of TAGE-SC-L: an entry learns the number of consecutive
// same-direction outcomes before a flip and, once confident, predicts the
// flip exactly. The paper (Fig. 6b) observes that confident loop
// predictions miss at <3%, so UCP-Conf treats them as high confidence.
type LoopPredictor struct {
	entries []loopEntry
	idxBits int
	// withLoop is the adaptive "trust the loop predictor" counter. nbits:4
	withLoop int8
}

type loopEntry struct {
	tag      uint16
	pastIter uint16 // learned same-direction run length
	currIter uint16
	conf     uint8 // [0,3]; provide only at 3. nbits:2
	age      uint8 // replacement age. nbits:8
	dir      bool  // direction during the run ("body" direction)
	valid    bool
}

// loopTagBits is the tag width of loop entries.
const loopTagBits = 14

// NewLoopPredictor returns a loop predictor with 2^idxBits entries.
func NewLoopPredictor(idxBits int) *LoopPredictor {
	return &LoopPredictor{
		entries: make([]loopEntry, 1<<idxBits),
		idxBits: idxBits,
	}
}

func (l *LoopPredictor) index(pc uint64) int32 {
	return int32((pc >> 2) & uint64(len(l.entries)-1))
}

func (l *LoopPredictor) tag(pc uint64) uint16 {
	return uint16((pc >> uint(2+l.idxBits)) & ((1 << loopTagBits) - 1))
}

// predict fills the loop fields of p.
func (l *LoopPredictor) predict(pc uint64, p *Prediction) {
	idx := l.index(pc)
	e := &l.entries[idx]
	if !e.valid || e.tag != l.tag(pc) {
		p.loopHit = -1
		return
	}
	p.loopHit = idx
	p.loopValid = e.conf >= 3 && l.withLoop >= 0
	if e.currIter+1 >= e.pastIter {
		p.loopTaken = !e.dir // the flip (loop exit) is due
	} else {
		p.loopTaken = e.dir
	}
}

// update trains the loop predictor. tageWrong reports whether the rest of
// the predictor mispredicted (allocation trigger).
func (l *LoopPredictor) update(pc uint64, taken bool, p *Prediction, tageWrong bool) {
	if p.loopHit >= 0 {
		e := &l.entries[p.loopHit]
		if p.loopValid {
			if p.loopTaken == taken {
				if l.withLoop < 7 {
					l.withLoop++
				}
				if e.age < 255 {
					e.age++
				}
			} else {
				if l.withLoop > -8 {
					l.withLoop--
				}
				// A confident miss invalidates the entry.
				*e = loopEntry{}
				return
			}
		}
		if taken == e.dir {
			e.currIter++
			if e.pastIter != 0 && e.currIter > e.pastIter {
				// Run longer than learned: the entry is stale.
				*e = loopEntry{}
			}
		} else {
			// Flip observed: check run-length stability.
			run := e.currIter + 1
			if e.pastIter == 0 {
				e.pastIter = run
			} else if e.pastIter == run {
				if e.conf < 3 {
					e.conf++
				}
			} else {
				e.pastIter = run
				e.conf = 0
			}
			e.currIter = 0
		}
		return
	}
	// Allocate on a misprediction elsewhere, and only when the outcome
	// is not-taken: loop exits fall through, so allocating at a taken
	// outcome would capture alternating branches as 1-trip "loops" and
	// churn. The body direction is the opposite of the exit (LTAGE
	// convention).
	if !tageWrong || taken {
		return
	}
	idx := l.index(pc)
	e := &l.entries[idx]
	if e.valid && e.age > 0 {
		e.age--
		return
	}
	*e = loopEntry{tag: l.tag(pc), dir: true, valid: true, age: 31}
}

// StorageBits returns the modeled hardware budget.
func (l *LoopPredictor) StorageBits() int {
	entryBits := loopTagBits + 16 + 16 + 2 + 8 + 1 + 1
	return len(l.entries)*entryBits + 4
}
