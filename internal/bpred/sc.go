package bpred

// Statistical corrector (SC): a GEHL-style perceptron-ish corrector that
// can revert the TAGE(-L) prediction when statistical evidence against it
// is strong. As in the paper's Fig. 6b, the absolute value of the SC
// output correlates with confidence but even saturated outputs miss
// around 10%, which is why UCP-Conf classifies SC-provided predictions
// as low confidence.

// scTables is the number of global-history GEHL tables (the bias table
// is separate).
const scTables = 4

// scHistLens are the global history lengths of the GEHL tables.
var scHistLens = [scTables]int{4, 11, 19, 34}

// SC is the statistical corrector component.
type SC struct {
	bias    []int8 // indexed by (pc, tagePred)
	tables  [scTables][]int8
	idxBits int

	// Adaptive use-threshold (O-GEHL style).
	theta int32
	tc    int8  // threshold-adaptation counter in [-8,7]. nbits:4
	scale int32 // weight of the TAGE direction inside the sum
}

// NewSC returns a statistical corrector with 2^idxBits counters per
// table and a 2^(idxBits+2)-entry bias table.
func NewSC(idxBits int) *SC {
	s := &SC{idxBits: idxBits, theta: 10, scale: 6}
	s.bias = make([]int8, 1<<(idxBits+2))
	for i := range s.tables {
		s.tables[i] = make([]int8, 1<<idxBits)
	}
	return s
}

func (s *SC) biasIndex(pc uint64, tageTaken bool) int32 {
	v := (pc >> 2) << 1
	if tageTaken {
		v |= 1
	}
	return int32(v & uint64(len(s.bias)-1))
}

func (s *SC) tableIndex(pc uint64, h *Hist, i int) int32 {
	hist := h.GHR() & ((1 << uint(scHistLens[i])) - 1)
	v := (pc >> 2) ^ hist ^ (hist << 5) ^ uint64(i)*0x9e37
	return int32(v & uint64((1<<s.idxBits)-1))
}

// compute evaluates the corrector against the incoming prediction
// (post-loop TAGE output) and fills the SC fields of p. It returns the
// possibly-reverted direction.
func (s *SC) compute(pc uint64, h *Hist, pre bool, p *Prediction) bool {
	p.scPreTaken = pre
	sum := int32(0)
	bi := s.biasIndex(pc, pre)
	p.scIndices[0] = bi
	sum += 2*int32(s.bias[bi]) + 1
	for i := 0; i < scTables; i++ {
		idx := s.tableIndex(pc, h, i)
		p.scIndices[i+1] = idx
		sum += 2*int32(s.tables[i][idx]) + 1
	}
	if pre {
		sum += s.scale
	} else {
		sum -= s.scale
	}
	p.SCSum = sum
	scTaken := sum >= 0
	if scTaken != pre && abs32(sum) >= s.theta {
		p.SCUsed = true
		return scTaken
	}
	return pre
}

// update trains the corrector toward the architectural outcome.
func (s *SC) update(taken bool, p *Prediction) {
	scTaken := p.SCSum >= 0
	mispredicted := scTaken != taken
	weak := abs32(p.SCSum) < s.theta
	if mispredicted || weak {
		s.bias[p.scIndices[0]] = bump6(s.bias[p.scIndices[0]], taken)
		for i := 0; i < scTables; i++ {
			idx := p.scIndices[i+1]
			s.tables[i][idx] = bump6(s.tables[i][idx], taken)
		}
	}
	// Threshold adaptation (O-GEHL): widen when the corrector commits
	// confident mistakes, narrow when weak sums are already correct.
	if mispredicted {
		s.tc++
		if s.tc == 7 {
			s.tc = 0
			if s.theta < 300 {
				s.theta++
			}
		}
	} else if weak {
		s.tc--
		if s.tc == -8 {
			s.tc = 0
			if s.theta > 4 {
				s.theta--
			}
		}
	}
}

func bump6(c int8, up bool) int8 {
	if up {
		if c < 31 {
			return c + 1
		}
		return c
	}
	if c > -32 {
		return c - 1
	}
	return c
}

func abs32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}

// StorageBits returns the modeled hardware budget.
func (s *SC) StorageBits() int {
	bits := len(s.bias) * 6
	for i := range s.tables {
		bits += len(s.tables[i]) * 6
	}
	return bits + 16
}
