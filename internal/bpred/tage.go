package bpred

import (
	"fmt"
	"math"
)

// TAGE: a TAgged GEometric history length predictor (Seznec & Michaud),
// the main component of TAGE-SC-L. The implementation keeps the pieces
// the paper's confidence estimator depends on explicit: the HitBank (the
// matching table with the longest history), the AltBank (second
// longest), the provider counter value, and the bimodal >1-in-8 recent
// miss heuristic.

// maxTables bounds the number of tagged tables a configuration may use.
const maxTables = 16

// Source identifies which TAGE-SC-L component provided the final
// direction prediction (the paper's Fig. 6/7 taxonomy).
type Source uint8

const (
	// SrcBimodal: the bimodal base table provided.
	SrcBimodal Source = iota
	// SrcHitBank: the longest-history matching tagged table provided.
	SrcHitBank
	// SrcAltBank: the alternate (second longest) tagged table provided.
	SrcAltBank
	// SrcLoop: the loop predictor provided.
	SrcLoop
	// SrcSC: the statistical corrector reverted the prediction.
	SrcSC
	// NumSources is the number of provider kinds.
	NumSources
)

var sourceNames = [NumSources]string{"Bimodal", "HitBank", "AltBank", "Loop", "SC"}

// String returns the provider name.
func (s Source) String() string {
	if int(s) < len(sourceNames) {
		return sourceNames[s]
	}
	return "?"
}

// Prediction carries a direction prediction plus everything needed to
// update the predictor and estimate confidence.
type Prediction struct {
	// Taken is the final predicted direction.
	Taken bool
	// Source is the component that determined Taken.
	Source Source
	// TageSource is the TAGE-internal provider (SrcBimodal, SrcHitBank,
	// or SrcAltBank), preserved even when loop/SC determine Taken.
	TageSource Source

	// TageTaken is the TAGE-only prediction (pre loop/SC).
	TageTaken bool

	// Provider counter, centered: for a b-bit counter with raw range
	// [0,2^b), the centered value is raw - 2^(b-1), so a 3-bit counter
	// spans [-4,3] and the 2-bit bimodal spans [-2,1] (Fig. 6a x-axis).
	// Saturated means raw==0 or raw==2^b-1.
	ProviderCtr       int8 // nbits:3 (tagged-table counters; bimodal uses [-2,1])
	ProviderSat       bool
	BimodalRecentMiss bool // ≥1 miss in the bimodal's last 8 provisions

	hitBank, altBank int // 1-based table numbers; 0 = none/bimodal
	altTaken         bool
	pseudoNewAlloc   bool
	bimIdx           int32
	indices          [maxTables]int32
	tags             [maxTables]uint16

	// Loop predictor state.
	loopHit   int32 // entry index, -1 if miss
	loopValid bool  // confident enough to provide
	loopTaken bool

	// Statistical corrector state.
	SCSum      int32
	SCUsed     bool // SC reverted the prediction (Source == SrcSC)
	scIndices  [scTables + 1]int32
	scPreTaken bool // prediction SC was applied to
}

// HitBankNum returns the 1-based hit bank (0 if the bimodal provided).
func (p *Prediction) HitBankNum() int { return p.hitBank }

// AltBankNum returns the 1-based alternate bank (0 if bimodal).
func (p *Prediction) AltBankNum() int { return p.altBank }

// TageConfig sizes a TAGE instance.
//
//ucplint:config
type TageConfig struct {
	BimodalBits int // log2 entries of the bimodal table
	Tables      int // number of tagged tables
	MinHist     int // shortest tagged history length
	MaxHist     int // longest tagged history length
	IdxBits     int // log2 entries per tagged table
	TagBase     int // tag width of table 1; grows by 1 every 2 tables
	CtrBits     int // prediction counter width (3 in the literature)
}

// Validate rejects TAGE geometries outside the modeled hardware: the
// Prediction bookkeeping arrays hold maxTables banks, tags are uint16,
// counters are uint8, and the centered provider counter must fit int8.
func (c TageConfig) Validate() error {
	if c.BimodalBits <= 0 || c.BimodalBits > 26 {
		return fmt.Errorf("bpred: BimodalBits must be in [1,26], got %d", c.BimodalBits)
	}
	if c.Tables <= 0 || c.Tables > maxTables {
		return fmt.Errorf("bpred: Tables must be in [1,%d], got %d", maxTables, c.Tables)
	}
	if c.MinHist <= 0 {
		return fmt.Errorf("bpred: MinHist must be positive, got %d", c.MinHist)
	}
	if c.MaxHist < c.MinHist {
		return fmt.Errorf("bpred: MaxHist %d below MinHist %d", c.MaxHist, c.MinHist)
	}
	if c.IdxBits <= 0 || c.IdxBits > 26 {
		return fmt.Errorf("bpred: IdxBits must be in [1,26], got %d", c.IdxBits)
	}
	if c.TagBase <= 0 || c.TagBase > 15 {
		return fmt.Errorf("bpred: TagBase must be in [1,15], got %d", c.TagBase)
	}
	if c.CtrBits <= 0 || c.CtrBits > 8 {
		return fmt.Errorf("bpred: CtrBits must be in [1,8], got %d", c.CtrBits)
	}
	return nil
}

type tageEntry struct {
	ctr uint8 // [0, 2^CtrBits); nbits:3 in every shipped config
	tag uint16
	u   uint8 // usefulness [0,3]. nbits:2
}

// TAGE is the tagged-geometric predictor core.
type TAGE struct {
	cfg      TageConfig
	shape    histShape
	bimodal  []uint8 // 2-bit counters
	tables   [][]tageEntry
	tagBits  []int
	lens     []int
	useAltOn int8  // USE_ALT_ON_NA in [-8,7]. nbits:4
	bimHist  uint8 // correctness of last 8 bimodal-provided predictions (1=miss). nbits:8
	tick     int
	lfsr     uint32 // allocation randomness (deterministic)

	// Per-table index/tag hashing constants, precomputed at construction
	// so the predict path does no divisions or shift reconstruction.
	idxMask   uint64
	pcShifts  [maxTables]uint
	pathMasks [maxTables]uint64
	tagMasks  [maxTables]uint64
}

// geometricLens computes Tables history lengths between MinHist and
// MaxHist in geometric progression.
func geometricLens(cfg TageConfig) []int {
	lens := make([]int, cfg.Tables)
	for i := range lens {
		if cfg.Tables == 1 {
			lens[i] = cfg.MinHist
			continue
		}
		ratio := float64(cfg.MaxHist) / float64(cfg.MinHist)
		exp := float64(i) / float64(cfg.Tables-1)
		l := int(float64(cfg.MinHist)*math.Pow(ratio, exp) + 0.5)
		if i > 0 && l <= lens[i-1] {
			l = lens[i-1] + 1
		}
		lens[i] = l
	}
	return lens
}

// NewTAGE constructs a TAGE predictor from cfg.
func NewTAGE(cfg TageConfig) *TAGE {
	if cfg.Tables > maxTables {
		panic("bpred: too many TAGE tables")
	}
	t := &TAGE{cfg: cfg, lfsr: 0xace1}
	t.lens = geometricLens(cfg)
	t.bimodal = make([]uint8, 1<<cfg.BimodalBits)
	for i := range t.bimodal {
		t.bimodal[i] = 2 // weakly taken
	}
	t.tables = make([][]tageEntry, cfg.Tables)
	t.tagBits = make([]int, cfg.Tables)
	idxBits := make([]int, cfg.Tables)
	for i := range t.tables {
		t.tables[i] = make([]tageEntry, 1<<cfg.IdxBits)
		t.tagBits[i] = cfg.TagBase + i/2
		if t.tagBits[i] > 15 {
			t.tagBits[i] = 15
		}
		idxBits[i] = cfg.IdxBits
	}
	t.shape = histShape{lens: t.lens, idxBits: idxBits, tagBits: t.tagBits}
	t.idxMask = uint64(1<<cfg.IdxBits) - 1
	for i := 0; i < cfg.Tables; i++ {
		t.pcShifts[i] = uint(2 + ((i + 3) % 7))
		pl := t.lens[i]
		if pl > 16 {
			pl = 16
		}
		t.pathMasks[i] = (1 << uint(pl)) - 1
		t.tagMasks[i] = uint64(1<<t.tagBits[i]) - 1
	}
	return t
}

// Shape exposes the history shape so composites can build Hist contexts.
func (t *TAGE) Shape() *histShape { return &t.shape }

// NewHist returns a history context compatible with this predictor.
func (t *TAGE) NewHist() *Hist { return newHist(&t.shape) }

func (t *TAGE) rand() uint32 {
	// 16-bit Galois LFSR: cheap deterministic allocation randomness.
	lsb := t.lfsr & 1
	t.lfsr >>= 1
	if lsb != 0 {
		t.lfsr ^= 0xb400
	}
	return t.lfsr
}

func (t *TAGE) bimIndex(pc uint64) int32 {
	return int32((pc >> 2) & uint64(len(t.bimodal)-1))
}

func (t *TAGE) tableIndex(h *Hist, pc uint64, i int) int32 {
	v := (pc >> 2) ^ (pc >> t.pcShifts[i]) ^ uint64(h.folds[i].idx.comp)
	v ^= h.path & t.pathMasks[i]
	return int32(v & t.idxMask)
}

func (t *TAGE) tableTag(h *Hist, pc uint64, i int) uint16 {
	f := &h.folds[i]
	v := (pc >> 2) ^ uint64(f.tag1.comp) ^ (uint64(f.tag2.comp) << 1)
	return uint16(v & t.tagMasks[i])
}

func ctrTaken(ctr uint8, bits int) bool { return ctr >= 1<<(bits-1) }

func ctrSaturated(ctr uint8, bits int) bool {
	return ctr == 0 || ctr == uint8(1<<bits)-1
}

func bump(ctr uint8, up bool, bits int) uint8 {
	if up {
		if ctr < uint8(1<<bits)-1 {
			return ctr + 1
		}
		return ctr
	}
	if ctr > 0 {
		return ctr - 1
	}
	return 0
}

// Predict computes the TAGE prediction for pc under history context h.
// It fills the TAGE portion of a Prediction; callers must not reuse a
// Prediction across different Predict calls.
func (t *TAGE) Predict(h *Hist, pc uint64) Prediction {
	var p Prediction
	t.PredictInto(&p, h, pc)
	return p
}

// PredictInto is Predict writing into caller-owned storage, so hot
// paths can reuse one long-lived Prediction instead of letting a fresh
// one escape to the heap at every branch. p is fully overwritten.
func (t *TAGE) PredictInto(p *Prediction, h *Hist, pc uint64) {
	*p = Prediction{}
	p.loopHit = -1
	p.bimIdx = t.bimIndex(pc)
	for i := 0; i < t.cfg.Tables; i++ {
		p.indices[i] = t.tableIndex(h, pc, i)
		p.tags[i] = t.tableTag(h, pc, i)
	}
	p.hitBank, p.altBank = 0, 0
	for i := t.cfg.Tables - 1; i >= 0; i-- {
		if t.tables[i][p.indices[i]].tag == p.tags[i] {
			if p.hitBank == 0 {
				p.hitBank = i + 1
			} else {
				p.altBank = i + 1
				break
			}
		}
	}
	bimTaken := ctrTaken(t.bimodal[p.bimIdx], 2)
	if p.hitBank == 0 {
		// Bimodal provides.
		p.TageTaken = bimTaken
		p.Source = SrcBimodal
		p.TageSource = SrcBimodal
		p.ProviderCtr = int8(t.bimodal[p.bimIdx]) - 2
		p.ProviderSat = ctrSaturated(t.bimodal[p.bimIdx], 2)
		p.BimodalRecentMiss = t.bimHist != 0
		p.altTaken = bimTaken
		p.Taken = p.TageTaken
		return
	}
	hit := &t.tables[p.hitBank-1][p.indices[p.hitBank-1]]
	hitTaken := ctrTaken(hit.ctr, t.cfg.CtrBits)
	var altTaken bool
	var altCtr uint8
	var altBits int
	if p.altBank != 0 {
		alt := &t.tables[p.altBank-1][p.indices[p.altBank-1]]
		altTaken = ctrTaken(alt.ctr, t.cfg.CtrBits)
		altCtr, altBits = alt.ctr, t.cfg.CtrBits
	} else {
		altTaken = bimTaken
		altCtr, altBits = t.bimodal[p.bimIdx], 2
	}
	p.altTaken = altTaken
	// Newly allocated entries (weak counter, useless bit clear) are less
	// trustworthy than the alternate prediction when USE_ALT_ON_NA says so.
	mid := uint8(1 << (t.cfg.CtrBits - 1))
	p.pseudoNewAlloc = hit.u == 0 && (hit.ctr == mid || hit.ctr == mid-1)
	useAlt := p.pseudoNewAlloc && t.useAltOn >= 0
	if useAlt {
		p.TageTaken = altTaken
		if p.altBank != 0 {
			p.Source = SrcAltBank
			p.TageSource = SrcAltBank
			p.ProviderCtr = int8(altCtr) - int8(1<<(altBits-1))
			p.ProviderSat = ctrSaturated(altCtr, altBits)
		} else {
			p.Source = SrcBimodal
			p.TageSource = SrcBimodal
			p.ProviderCtr = int8(t.bimodal[p.bimIdx]) - 2
			p.ProviderSat = ctrSaturated(t.bimodal[p.bimIdx], 2)
			p.BimodalRecentMiss = t.bimHist != 0
		}
	} else {
		p.TageTaken = hitTaken
		p.Source = SrcHitBank
		p.TageSource = SrcHitBank
		p.ProviderCtr = int8(hit.ctr) - int8(mid)
		p.ProviderSat = ctrSaturated(hit.ctr, t.cfg.CtrBits)
	}
	p.Taken = p.TageTaken
}

// Update trains the TAGE tables given the architectural outcome. The
// Prediction must come from a Predict call against the history context
// that was current at prediction time.
func (t *TAGE) Update(pc uint64, taken bool, p *Prediction) {
	correct := p.TageTaken == taken
	// USE_ALT_ON_NA training.
	if p.hitBank > 0 && p.pseudoNewAlloc {
		hit := &t.tables[p.hitBank-1][p.indices[p.hitBank-1]]
		hitTaken := ctrTaken(hit.ctr, t.cfg.CtrBits)
		if hitTaken != p.altTaken {
			if p.altTaken == taken {
				if t.useAltOn < 7 {
					t.useAltOn++
				}
			} else if t.useAltOn > -8 {
				t.useAltOn--
			}
		}
	}
	// Allocate on a TAGE misprediction if a longer history could help.
	if !correct && p.hitBank < t.cfg.Tables {
		t.allocate(taken, p)
	}
	// Train the provider chain.
	if p.hitBank > 0 {
		hit := &t.tables[p.hitBank-1][p.indices[p.hitBank-1]]
		hitTaken := ctrTaken(hit.ctr, t.cfg.CtrBits)
		// Usefulness: the hit entry proved better (or worse) than alt.
		if hitTaken != p.altTaken {
			if hitTaken == taken {
				if hit.u < 3 {
					hit.u++
				}
			} else if hit.u > 0 {
				hit.u--
			}
		}
		hit.ctr = bump(hit.ctr, taken, t.cfg.CtrBits)
		// When the provider was a fresh allocation, also train the alt.
		if hit.u == 0 && p.pseudoNewAlloc {
			if p.altBank > 0 {
				alt := &t.tables[p.altBank-1][p.indices[p.altBank-1]]
				alt.ctr = bump(alt.ctr, taken, t.cfg.CtrBits)
			} else {
				t.bimodal[p.bimIdx] = bump(t.bimodal[p.bimIdx], taken, 2)
			}
		}
	} else {
		t.bimodal[p.bimIdx] = bump(t.bimodal[p.bimIdx], taken, 2)
	}
	// Track bimodal-provided correctness for the >1-in-8 heuristic.
	if p.TageSource == SrcBimodal {
		miss := uint8(0)
		if p.TageTaken != taken {
			miss = 1
		}
		t.bimHist = t.bimHist<<1 | miss
	}
	// Periodic graceful reset of usefulness bits.
	t.tick++
	if t.tick >= 1<<18 {
		t.tick = 0
		for i := range t.tables {
			for j := range t.tables[i] {
				t.tables[i][j].u >>= 1
			}
		}
	}
}

// allocate installs up to two new entries in tables with longer history
// than the provider, Seznec-style (decaying u on failure).
func (t *TAGE) allocate(taken bool, p *Prediction) {
	start := p.hitBank // 0-based index of first candidate table
	if t.rand()&3 == 0 && start+1 < t.cfg.Tables {
		start++
	}
	allocated := 0
	for i := start; i < t.cfg.Tables && allocated < 2; i++ {
		e := &t.tables[i][p.indices[i]]
		if e.u == 0 {
			e.tag = p.tags[i]
			if taken {
				e.ctr = uint8(1 << (t.cfg.CtrBits - 1))
			} else {
				e.ctr = uint8(1<<(t.cfg.CtrBits-1)) - 1
			}
			e.u = 0
			allocated++
			i++ // skip the adjacent table to spread allocations
		} else {
			e.u--
		}
	}
}

// StorageBits returns the modeled hardware budget of the TAGE tables.
func (t *TAGE) StorageBits() int {
	bits := len(t.bimodal) * 2
	for i := range t.tables {
		entryBits := t.cfg.CtrBits + 2 + t.tagBits[i]
		bits += len(t.tables[i]) * entryBits
	}
	bits += 4 + 8 // USE_ALT_ON_NA + bimodal miss history
	return bits
}
