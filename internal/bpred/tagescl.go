package bpred

import "fmt"

// TAGE-SC-L composite: TAGE provides the base prediction, the loop
// predictor overrides for confidently-captured regular loops, and the
// statistical corrector may revert the result. This mirrors the 64KB
// TAGE-SC-L the paper uses as its baseline predictor (Table II) and the
// 8KB version used as UCP's alternate-path predictor (Alt-BP, §IV-C).

// Config sizes a TAGE-SC-L instance.
//
//ucplint:config
type Config struct {
	Tage        TageConfig
	LoopIdxBits int
	SCIdxBits   int
}

// Config64KB approximates the storage budget of the paper's 64KB
// TAGE-SC-L baseline predictor.
func Config64KB() Config {
	return Config{
		Tage: TageConfig{
			BimodalBits: 14, Tables: 12, MinHist: 4, MaxHist: 640,
			IdxBits: 11, TagBase: 8, CtrBits: 3,
		},
		LoopIdxBits: 6,
		SCIdxBits:   11,
	}
}

// Config8KB approximates the 8KB TAGE-SC-L used as UCP's Alt-BP.
func Config8KB() Config {
	return Config{
		Tage: TageConfig{
			BimodalBits: 11, Tables: 10, MinHist: 4, MaxHist: 256,
			IdxBits: 8, TagBase: 8, CtrBits: 3,
		},
		LoopIdxBits: 5,
		SCIdxBits:   8,
	}
}

// Config128KB doubles the baseline budget ("TAGE-SC-Lx2" in Fig. 16).
func Config128KB() Config {
	return Config{
		Tage: TageConfig{
			BimodalBits: 14, Tables: 12, MinHist: 4, MaxHist: 1000,
			IdxBits: 12, TagBase: 9, CtrBits: 3,
		},
		LoopIdxBits: 7,
		SCIdxBits:   12,
	}
}

// Validate rejects TAGE-SC-L geometries the constructors would build
// incorrectly (zero-width tables index nothing; oversized index widths
// explode the modeled budget).
func (c Config) Validate() error {
	if err := c.Tage.Validate(); err != nil {
		return err
	}
	if c.LoopIdxBits <= 0 || c.LoopIdxBits > 20 {
		return fmt.Errorf("bpred: LoopIdxBits must be in [1,20], got %d", c.LoopIdxBits)
	}
	if c.SCIdxBits <= 0 || c.SCIdxBits > 24 {
		return fmt.Errorf("bpred: SCIdxBits must be in [1,24], got %d", c.SCIdxBits)
	}
	return nil
}

// TageSCL is the composed predictor.
type TageSCL struct {
	tage *TAGE
	loop *LoopPredictor
	sc   *SC
	hist *Hist
}

// NewTageSCL constructs the composite from cfg.
func NewTageSCL(cfg Config) *TageSCL {
	t := &TageSCL{
		tage: NewTAGE(cfg.Tage),
		loop: NewLoopPredictor(cfg.LoopIdxBits),
		sc:   NewSC(cfg.SCIdxBits),
	}
	t.hist = t.tage.NewHist()
	return t
}

// Hist returns the primary (demand-path) history context.
func (t *TageSCL) Hist() *Hist { return t.hist }

// NewHist returns a fresh compatible history context (all zeros).
func (t *TageSCL) NewHist() *Hist { return t.tage.NewHist() }

// Predict produces the composite prediction for pc under history h.
// Passing a cloned Hist predicts down an alternate path without touching
// demand state; tables are shared in both cases (read-only here).
func (t *TageSCL) Predict(h *Hist, pc uint64) Prediction {
	var p Prediction
	t.PredictInto(&p, h, pc)
	return p
}

// PredictInto is Predict writing into caller-owned storage (see
// TAGE.PredictInto); p is fully overwritten.
func (t *TageSCL) PredictInto(p *Prediction, h *Hist, pc uint64) {
	t.tage.PredictInto(p, h, pc)
	t.loop.predict(pc, p)
	mid := p.TageTaken
	src := p.Source
	if p.loopValid {
		mid = p.loopTaken
		src = SrcLoop
	}
	final := t.sc.compute(pc, h, mid, p)
	if p.SCUsed {
		src = SrcSC
	}
	p.Taken = final
	p.Source = src
}

// Update trains all components with the architectural outcome. The
// caller is responsible for pushing the outcome into history contexts
// (PushHistory) afterwards.
func (t *TageSCL) Update(pc uint64, taken bool, p *Prediction) {
	wrong := p.Taken != taken
	t.loop.update(pc, taken, p, wrong)
	t.sc.update(taken, p)
	t.tage.Update(pc, taken, p)
}

// PushHistory records a branch outcome into the primary history context.
// Conditional branches push their direction; unconditional control flow
// pushes a taken bit so path context is preserved.
func (t *TageSCL) PushHistory(pc uint64, taken bool) {
	t.hist.Push(pc, taken)
}

// StorageBits returns the composite's modeled hardware budget.
func (t *TageSCL) StorageBits() int {
	return t.tage.StorageBits() + t.loop.StorageBits() + t.sc.StorageBits()
}

// StorageKB returns the budget in kilobytes.
func (t *TageSCL) StorageKB() float64 {
	return float64(t.StorageBits()) / 8 / 1024
}
