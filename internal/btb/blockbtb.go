package btb

// Block-based BTB (Perais & Sheikh, MICRO'23 — discussed in §IV-C as an
// alternative organization): one entry covers an aligned code *block*
// and records up to N taken-at-least-once branches inside it, so a
// single lookup returns every branch of the block. Both the demand and
// alternate paths can then be served with far fewer banks, since one
// access per block replaces one access per branch. UCP is agnostic of
// the organization (§IV-C); this implementation lets the ablation
// benchmarks quantify that claim.

// BlockConfig sizes a block-based BTB.
type BlockConfig struct {
	// Blocks is the total number of block entries (power of two).
	Blocks int
	// Ways is the set associativity.
	Ways int
	// BlockBytes is the aligned code region one entry covers.
	BlockBytes int
	// BranchesPerBlock bounds the taken branches recorded per entry.
	BranchesPerBlock int
	// Banks is the number of lookup banks.
	Banks int
}

// DefaultBlockConfig matches the reach of the 64K-entry instruction BTB
// with 8K 64-byte blocks × up to 8 branches.
func DefaultBlockConfig() BlockConfig {
	return BlockConfig{Blocks: 8192, Ways: 4, BlockBytes: 64, BranchesPerBlock: 8, Banks: 4}
}

type blockBranch struct {
	valid  bool
	offset uint8 // (pc - blockBase) / 4
	target uint64
	kind   BranchKind // nbits:2
}

type blockEntry struct {
	valid    bool
	tag      uint64
	lru      uint64
	branches [16]blockBranch
}

// BlockBTB is a block-organized branch target buffer.
type BlockBTB struct {
	cfg   BlockConfig
	sets  int
	data  []blockEntry
	clock uint64
	stats Stats
}

// NewBlock constructs a block-based BTB.
func NewBlock(cfg BlockConfig) *BlockBTB {
	if cfg.BranchesPerBlock > 16 {
		cfg.BranchesPerBlock = 16
	}
	sets := cfg.Blocks / cfg.Ways
	if sets < 1 {
		sets = 1
	}
	return &BlockBTB{cfg: cfg, sets: sets, data: make([]blockEntry, sets*cfg.Ways)}
}

func (b *BlockBTB) blockOf(pc uint64) uint64 { return pc / uint64(b.cfg.BlockBytes) }

func (b *BlockBTB) setOf(pc uint64) int { return int(b.blockOf(pc) % uint64(b.sets)) }

func (b *BlockBTB) tagOf(pc uint64) uint64 { return b.blockOf(pc) / uint64(b.sets) }

// BankOf returns the lookup bank for pc's block.
func (b *BlockBTB) BankOf(pc uint64) int { return b.setOf(pc) & (b.cfg.Banks - 1) }

// Banks returns the bank count.
func (b *BlockBTB) Banks() int { return b.cfg.Banks }

func (b *BlockBTB) find(pc uint64, touch bool) (*blockEntry, *blockBranch) {
	set := b.setOf(pc)
	tag := b.tagOf(pc)
	base := set * b.cfg.Ways
	off := uint8((pc % uint64(b.cfg.BlockBytes)) / 4)
	for w := 0; w < b.cfg.Ways; w++ {
		e := &b.data[base+w]
		if e.valid && e.tag == tag {
			if touch {
				b.clock++
				e.lru = b.clock
			}
			for i := 0; i < b.cfg.BranchesPerBlock; i++ {
				br := &e.branches[i]
				if br.valid && br.offset == off {
					return e, br
				}
			}
			return e, nil
		}
	}
	return nil, nil
}

// Lookup returns the target and kind of a branch at pc.
func (b *BlockBTB) Lookup(pc uint64) (target uint64, kind BranchKind, hit bool) {
	b.stats.Lookups++
	_, br := b.find(pc, true)
	if br == nil {
		return 0, 0, false
	}
	b.stats.Hits++
	return br.target, br.kind, true
}

// Probe checks for a branch at pc without LRU or statistics effects.
func (b *BlockBTB) Probe(pc uint64) (target uint64, kind BranchKind, hit bool) {
	_, br := b.find(pc, false)
	if br == nil {
		return 0, 0, false
	}
	return br.target, br.kind, true
}

// Insert installs or refreshes the branch at pc.
func (b *BlockBTB) Insert(pc, target uint64, kind BranchKind) {
	b.stats.Inserts++
	e, br := b.find(pc, true)
	if br != nil {
		br.target = target
		br.kind = kind
		return
	}
	if e == nil {
		e = b.allocateBlock(pc)
	}
	off := uint8((pc % uint64(b.cfg.BlockBytes)) / 4)
	// Free slot, else replace the first branch (FIFO within the block).
	for i := 0; i < b.cfg.BranchesPerBlock; i++ {
		if !e.branches[i].valid {
			e.branches[i] = blockBranch{valid: true, offset: off, target: target, kind: kind}
			return
		}
	}
	copy(e.branches[:b.cfg.BranchesPerBlock-1], e.branches[1:b.cfg.BranchesPerBlock])
	e.branches[b.cfg.BranchesPerBlock-1] = blockBranch{valid: true, offset: off, target: target, kind: kind}
}

func (b *BlockBTB) allocateBlock(pc uint64) *blockEntry {
	set := b.setOf(pc)
	base := set * b.cfg.Ways
	victim, oldest := 0, ^uint64(0)
	for w := 0; w < b.cfg.Ways; w++ {
		e := &b.data[base+w]
		if !e.valid {
			victim, oldest = w, 0
			break
		}
		if e.lru < oldest {
			victim, oldest = w, e.lru
		}
	}
	if b.data[base+victim].valid {
		b.stats.Evictions++
	}
	b.clock++
	b.data[base+victim] = blockEntry{valid: true, tag: b.tagOf(pc), lru: b.clock}
	return &b.data[base+victim]
}

// Stats returns a copy of the traffic counters.
func (b *BlockBTB) Stats() Stats { return b.stats }

// StorageBits returns the modeled hardware budget: per block a tag plus
// BranchesPerBlock × (valid, offset, compressed target, kind).
func (b *BlockBTB) StorageBits() int {
	perBranch := 1 + 4 + 32 + 2
	perBlock := 16 + 3 + b.cfg.BranchesPerBlock*perBranch
	return b.sets * b.cfg.Ways * perBlock
}

// StorageKB returns the budget in kilobytes.
func (b *BlockBTB) StorageKB() float64 { return float64(b.StorageBits()) / 8 / 1024 }
