// Package btb implements the banked instruction Branch Target Buffer of
// the baseline frontend (Table II: 64K entries, 16 banks, LRU). UCP
// doubles the bank count to 32 so the demand and alternate paths can
// look up targets concurrently, arbitrating conflicts with a 3-bit
// starvation counter (§IV-C). The bank-conflict policy itself lives with
// the consumer; this package exposes the geometry (BankOf) and a plain
// lookup/insert interface.
package btb

import (
	"fmt"

	"ucp/internal/ckpt"
	"ucp/internal/isa"
)

// BranchKind compresses the branch classes a BTB entry distinguishes.
type BranchKind uint8

const (
	// KindCond is a conditional direct branch.
	KindCond BranchKind = iota
	// KindDirect is an unconditional direct branch or call.
	KindDirect
	// KindIndirect is an indirect jump or call (target from ITTAGE).
	KindIndirect
	// KindReturn is a return (target from the RAS).
	KindReturn
)

// KindOf maps an instruction class to its BTB kind.
func KindOf(c isa.Class) BranchKind {
	switch c {
	case isa.CondBranch:
		return KindCond
	case isa.DirectJump, isa.Call:
		return KindDirect
	case isa.Return:
		return KindReturn
	default:
		return KindIndirect
	}
}

// TargetBuffer is the interface both BTB organizations (the baseline
// instruction BTB and the block-based BTB of §IV-C) implement, so the
// frontend and UCP are agnostic of the organization.
type TargetBuffer interface {
	// Lookup returns the predicted target and kind for a branch at pc.
	Lookup(pc uint64) (target uint64, kind BranchKind, hit bool)
	// Probe is a side-effect-free Lookup (alternate-path walking).
	Probe(pc uint64) (target uint64, kind BranchKind, hit bool)
	// Insert installs or refreshes the entry for a taken branch.
	Insert(pc, target uint64, kind BranchKind)
	// BankOf maps a PC to its lookup bank; Banks is the bank count.
	BankOf(pc uint64) int
	Banks() int
	// StorageKB is the modeled hardware budget.
	StorageKB() float64
	// SaveState / LoadState serialize all mutable state for functional-
	// warm checkpoints (internal/ckpt); load errors surface on the
	// reader.
	SaveState(w *ckpt.Writer)
	LoadState(r *ckpt.Reader)
}

// Config sizes a BTB.
//
//ucplint:config
type Config struct {
	Entries int // total entries (power of two)
	Ways    int
	Banks   int // power of two
}

// Validate rejects BTB geometries the indexing cannot address: setOf
// and BankOf mask with sets-1 and Banks-1, so both must be powers of
// two.
func (c Config) Validate() error {
	if c.Entries <= 0 || !isPow2(c.Entries) {
		return fmt.Errorf("btb: Entries must be a positive power of two, got %d", c.Entries)
	}
	if c.Ways <= 0 || !isPow2(c.Ways) {
		return fmt.Errorf("btb: Ways must be a positive power of two, got %d", c.Ways)
	}
	if c.Ways > c.Entries {
		return fmt.Errorf("btb: Ways %d exceeds Entries %d", c.Ways, c.Entries)
	}
	if c.Banks <= 0 || !isPow2(c.Banks) {
		return fmt.Errorf("btb: Banks must be a positive power of two, got %d", c.Banks)
	}
	return nil
}

func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// DefaultConfig is the paper's baseline: 64K entries, 16 banks.
func DefaultConfig() Config { return Config{Entries: 64 * 1024, Ways: 8, Banks: 16} }

// UCPConfig doubles the banks for dual-path lookups (§IV-C).
func UCPConfig() Config { return Config{Entries: 64 * 1024, Ways: 8, Banks: 32} }

type entry struct {
	target uint64
	kind   BranchKind // one of the four branch classes. nbits:2
	lru    uint32
}

// BTB is a set-associative, banked branch target buffer.
type BTB struct {
	cfg      Config
	sets     int
	tagShift uint // 2 + log2(sets), precomputed off the lookup path
	// tags packs each way's valid bit and tag as valid<<32|tag (zero =
	// invalid), separate from the payload entries: a whole 8-way set's
	// tag match then reads one cache line, and Probe — which runs every
	// alternate-path walk step and usually misses — never touches the
	// payload array at all.
	tags  []uint64 // sets × ways
	data  []entry  // sets × ways
	clock uint32
	stats Stats
}

// validBit marks a live way in the packed tag array.
const validBit = uint64(1) << 32

// Stats counts BTB traffic.
type Stats struct {
	Lookups, Hits, Inserts, Evictions uint64
}

// New constructs a BTB.
func New(cfg Config) *BTB {
	sets := cfg.Entries / cfg.Ways
	if sets < 1 {
		sets = 1
	}
	return &BTB{cfg: cfg, sets: sets, tagShift: 2 + log2(sets),
		tags: make([]uint64, sets*cfg.Ways),
		data: make([]entry, sets*cfg.Ways)}
}

func (b *BTB) setOf(pc uint64) int {
	return int((pc >> 2) & uint64(b.sets-1))
}

func (b *BTB) tagOf(pc uint64) uint32 {
	return uint32(pc >> b.tagShift)
}

func log2(v int) uint {
	n := uint(0)
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// BankOf returns the bank a PC's set maps to; concurrent lookups to the
// same bank in one cycle conflict.
func (b *BTB) BankOf(pc uint64) int {
	return b.setOf(pc) & (b.cfg.Banks - 1)
}

// Banks returns the number of banks.
func (b *BTB) Banks() int { return b.cfg.Banks }

// Lookup returns the predicted target and kind for a branch at pc.
func (b *BTB) Lookup(pc uint64) (target uint64, kind BranchKind, hit bool) {
	b.stats.Lookups++
	b.clock++
	base := b.setOf(pc) * b.cfg.Ways
	want := validBit | uint64(b.tagOf(pc))
	for w, tv := range b.tags[base : base+b.cfg.Ways] {
		if tv == want {
			e := &b.data[base+w]
			e.lru = b.clock
			b.stats.Hits++
			return e.target, e.kind, true
		}
	}
	return 0, 0, false
}

// Probe checks for a branch at pc without touching LRU or statistics.
// UCP's alternate-path walker uses it to discover taken-at-least-once
// branches along a never-fetched path (§IV-C).
func (b *BTB) Probe(pc uint64) (target uint64, kind BranchKind, hit bool) {
	base := b.setOf(pc) * b.cfg.Ways
	want := validBit | uint64(b.tagOf(pc))
	for w, tv := range b.tags[base : base+b.cfg.Ways] {
		if tv == want {
			e := &b.data[base+w]
			return e.target, e.kind, true
		}
	}
	return 0, 0, false
}

// Insert installs or refreshes the entry for a taken branch at pc.
func (b *BTB) Insert(pc, target uint64, kind BranchKind) {
	b.stats.Inserts++
	b.clock++
	base := b.setOf(pc) * b.cfg.Ways
	want := validBit | uint64(b.tagOf(pc))
	victim, oldest := 0, ^uint32(0)
	for w, tv := range b.tags[base : base+b.cfg.Ways] {
		if tv == want {
			e := &b.data[base+w]
			e.target = target
			e.kind = kind
			e.lru = b.clock
			return
		}
		if tv == 0 {
			victim, oldest = w, 0
			break
		}
		if e := &b.data[base+w]; e.lru < oldest {
			victim, oldest = w, e.lru
		}
	}
	if b.tags[base+victim] != 0 {
		b.stats.Evictions++
	}
	b.tags[base+victim] = want
	b.data[base+victim] = entry{target: target, kind: kind, lru: b.clock}
}

// Stats returns a copy of the traffic counters.
func (b *BTB) Stats() Stats { return b.stats }

// StorageBits returns the modeled hardware budget (32-bit targets,
// partial tags as in commercial BTBs).
func (b *BTB) StorageBits() int {
	entryBits := 1 + 16 + 32 + 2 + 3 // valid, partial tag, target, kind, lru
	return len(b.data) * entryBits
}

// StorageKB returns the budget in kilobytes.
func (b *BTB) StorageKB() float64 { return float64(b.StorageBits()) / 8 / 1024 }
