package btb

import (
	"testing"
	"testing/quick"

	"ucp/internal/isa"
)

func small() *BTB { return New(Config{Entries: 64, Ways: 4, Banks: 8}) }

func TestInsertLookup(t *testing.T) {
	b := small()
	b.Insert(0x1000, 0x2000, KindCond)
	target, kind, hit := b.Lookup(0x1000)
	if !hit || target != 0x2000 || kind != KindCond {
		t.Fatalf("lookup = %#x %v %v", target, kind, hit)
	}
	if _, _, hit := b.Lookup(0x1004); hit {
		t.Fatal("phantom hit")
	}
}

func TestUpdateExistingEntry(t *testing.T) {
	b := small()
	b.Insert(0x1000, 0x2000, KindCond)
	b.Insert(0x1000, 0x3000, KindCond)
	target, _, hit := b.Lookup(0x1000)
	if !hit || target != 0x3000 {
		t.Fatalf("update failed: %#x %v", target, hit)
	}
	if s := b.Stats(); s.Evictions != 0 {
		t.Fatalf("in-place update must not evict (%d)", s.Evictions)
	}
}

func TestLRUEviction(t *testing.T) {
	b := small() // 16 sets, 4 ways
	// Five PCs mapping to the same set: stride = sets*4 bytes.
	stride := uint64(16 * 4)
	for i := 0; i < 4; i++ {
		b.Insert(0x1000+uint64(i)*stride, 0x9000, KindDirect)
	}
	// Touch the first entry so it is MRU.
	if _, _, hit := b.Lookup(0x1000); !hit {
		t.Fatal("expected hit")
	}
	// Insert a fifth entry: victim must be the LRU (second inserted).
	b.Insert(0x1000+4*stride, 0x9000, KindDirect)
	if _, _, hit := b.Lookup(0x1000); !hit {
		t.Fatal("MRU entry was evicted")
	}
	if _, _, hit := b.Lookup(0x1000 + stride); hit {
		t.Fatal("LRU entry survived")
	}
}

func TestBankMapping(t *testing.T) {
	b := New(DefaultConfig())
	if b.Banks() != 16 {
		t.Fatalf("banks = %d", b.Banks())
	}
	u := New(UCPConfig())
	if u.Banks() != 32 {
		t.Fatalf("UCP banks = %d", u.Banks())
	}
	// Property: bank is stable and within range.
	if err := quick.Check(func(pc uint64) bool {
		bank := u.BankOf(pc)
		return bank >= 0 && bank < 32 && bank == u.BankOf(pc)
	}, nil); err != nil {
		t.Fatal(err)
	}
	// Consecutive sets must map to different banks (interleaving).
	if u.BankOf(0x1000) == u.BankOf(0x1004) {
		t.Fatal("adjacent PCs map to the same bank; interleaving broken")
	}
}

func TestKindOf(t *testing.T) {
	cases := map[isa.Class]BranchKind{
		isa.CondBranch:   KindCond,
		isa.DirectJump:   KindDirect,
		isa.Call:         KindDirect,
		isa.IndirectJump: KindIndirect,
		isa.IndirectCall: KindIndirect,
		isa.Return:       KindReturn,
	}
	for c, want := range cases {
		if got := KindOf(c); got != want {
			t.Errorf("KindOf(%v) = %v, want %v", c, got, want)
		}
	}
}

func TestCapacityProperty(t *testing.T) {
	// Inserting arbitrarily many entries never loses the ability to
	// retrieve the most recent insertion.
	if err := quick.Check(func(pcs []uint32) bool {
		b := small()
		for _, pc32 := range pcs {
			pc := uint64(pc32) &^ 3
			b.Insert(pc, pc+4, KindDirect)
			if tgt, _, hit := b.Lookup(pc); !hit || tgt != pc+4 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	b := small()
	b.Insert(0x1000, 0x2000, KindCond)
	b.Lookup(0x1000)
	b.Lookup(0x2000)
	s := b.Stats()
	if s.Lookups != 2 || s.Hits != 1 || s.Inserts != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestStorage(t *testing.T) {
	b := New(DefaultConfig())
	kb := b.StorageKB()
	// 64K entries at ~54 bits each ≈ 432KB: the "large frontend
	// structure" the paper says UCP must not replicate.
	if kb < 300 || kb > 600 {
		t.Fatalf("BTB storage %.0fKB implausible", kb)
	}
}

func TestBlockBTBBasics(t *testing.T) {
	b := NewBlock(BlockConfig{Blocks: 64, Ways: 2, BlockBytes: 64, BranchesPerBlock: 4, Banks: 4})
	b.Insert(0x1004, 0x2000, KindCond)
	b.Insert(0x1010, 0x3000, KindDirect)
	tgt, kind, hit := b.Lookup(0x1004)
	if !hit || tgt != 0x2000 || kind != KindCond {
		t.Fatalf("lookup %#x %v %v", tgt, kind, hit)
	}
	if _, _, hit := b.Lookup(0x1008); hit {
		t.Fatal("phantom branch inside block")
	}
	// Same block, second branch.
	if tgt, _, hit := b.Probe(0x1010); !hit || tgt != 0x3000 {
		t.Fatal("second branch in block missing")
	}
}

func TestBlockBTBBranchCap(t *testing.T) {
	b := NewBlock(BlockConfig{Blocks: 64, Ways: 2, BlockBytes: 64, BranchesPerBlock: 2, Banks: 4})
	b.Insert(0x1000, 0xa000, KindCond)
	b.Insert(0x1004, 0xb000, KindCond)
	b.Insert(0x1008, 0xc000, KindCond) // third branch: FIFO-replaces the first
	if _, _, hit := b.Probe(0x1000); hit {
		t.Fatal("oldest branch survived past the per-block cap")
	}
	if _, _, hit := b.Probe(0x1008); !hit {
		t.Fatal("newest branch missing")
	}
}

func TestBlockBTBUpdateInPlace(t *testing.T) {
	b := NewBlock(DefaultBlockConfig())
	b.Insert(0x2000, 0x9000, KindCond)
	b.Insert(0x2000, 0x9100, KindCond)
	tgt, _, _ := b.Lookup(0x2000)
	if tgt != 0x9100 {
		t.Fatalf("in-place update failed: %#x", tgt)
	}
}

func TestBlockBTBOneAccessPerBlock(t *testing.T) {
	// The organization's point: fewer banks suffice because one access
	// covers a whole block. All PCs in one block map to the same bank.
	b := NewBlock(DefaultBlockConfig())
	bank := b.BankOf(0x4000)
	for pc := uint64(0x4000); pc < 0x4040; pc += 4 {
		if b.BankOf(pc) != bank {
			t.Fatal("intra-block PCs straddle banks")
		}
	}
	if b.Banks() != 4 {
		t.Fatalf("banks %d", b.Banks())
	}
}

func TestBlockBTBImplementsTargetBuffer(t *testing.T) {
	var _ TargetBuffer = NewBlock(DefaultBlockConfig())
	var _ TargetBuffer = New(DefaultConfig())
}

func TestBlockBTBStorage(t *testing.T) {
	kb := NewBlock(DefaultBlockConfig()).StorageKB()
	// 8K blocks × ~331 bits ≈ 330KB: comparable reach to the 64K-entry
	// instruction BTB at similar cost.
	if kb < 150 || kb > 500 {
		t.Fatalf("block BTB storage %.0fKB implausible", kb)
	}
}

func TestBlockBTBEviction(t *testing.T) {
	b := NewBlock(BlockConfig{Blocks: 4, Ways: 2, BlockBytes: 64, BranchesPerBlock: 2, Banks: 2})
	// 2 sets × 2 ways; blocks mapping to set 0 stride 128 bytes.
	b.Insert(0x0000, 1, KindCond)
	b.Insert(0x0080, 2, KindCond)
	b.Lookup(0x0000) // MRU
	b.Insert(0x0100, 3, KindCond)
	if _, _, hit := b.Probe(0x0000); !hit {
		t.Fatal("MRU block evicted")
	}
	if _, _, hit := b.Probe(0x0080); hit {
		t.Fatal("LRU block survived")
	}
}

func TestBlockBTBInsertProbeProperty(t *testing.T) {
	// Property: a just-inserted branch is always retrievable with its
	// exact target and kind, at any PC and under arbitrary history.
	if err := quick.Check(func(pcs []uint32) bool {
		b := NewBlock(BlockConfig{Blocks: 256, Ways: 4, BlockBytes: 64, BranchesPerBlock: 8, Banks: 4})
		for _, pc32 := range pcs {
			pc := uint64(pc32) &^ 3
			b.Insert(pc, pc+64, KindCond)
			tgt, kind, hit := b.Probe(pc)
			if !hit || tgt != pc+64 || kind != KindCond {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
