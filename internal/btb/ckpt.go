package btb

import "ucp/internal/ckpt"

// Checkpoint hooks: the sampled fast-forward inserts every taken
// branch's target (FunctionalCommit), so tags, payloads, LRU clocks,
// and traffic stats all carry across a checkpoint. Both organizations
// serialize behind the TargetBuffer interface so the frontend and UCP
// stay agnostic of which one is configured.

func saveStats(w *ckpt.Writer, s *Stats) {
	w.Uvarint(s.Lookups)
	w.Uvarint(s.Hits)
	w.Uvarint(s.Inserts)
	w.Uvarint(s.Evictions)
}

func loadStats(r *ckpt.Reader, s *Stats) {
	s.Lookups = r.Uvarint()
	s.Hits = r.Uvarint()
	s.Inserts = r.Uvarint()
	s.Evictions = r.Uvarint()
}

// SaveState implements TargetBuffer.
func (b *BTB) SaveState(w *ckpt.Writer) {
	w.Section("btb")
	w.U64s(b.tags)
	w.Uvarint(uint64(len(b.data)))
	for i := range b.data {
		w.Uvarint(b.data[i].target)
		w.Byte(byte(b.data[i].kind))
		w.Uvarint(uint64(b.data[i].lru))
	}
	w.Uvarint(uint64(b.clock))
	saveStats(w, &b.stats)
}

// LoadState implements TargetBuffer.
func (b *BTB) LoadState(r *ckpt.Reader) {
	r.Section("btb")
	r.U64sInto(b.tags)
	n := r.Uvarint()
	if r.Err() != nil {
		return
	}
	if n != uint64(len(b.data)) {
		r.Failf("btb: %d entries, want %d", n, len(b.data))
		return
	}
	for i := range b.data {
		b.data[i].target = r.Uvarint()
		b.data[i].kind = BranchKind(r.Byte())
		b.data[i].lru = uint32(r.Uvarint())
	}
	b.clock = uint32(r.Uvarint())
	loadStats(r, &b.stats)
}

// SaveState implements TargetBuffer.
func (b *BlockBTB) SaveState(w *ckpt.Writer) {
	w.Section("blockbtb")
	w.Uvarint(uint64(len(b.data)))
	for i := range b.data {
		e := &b.data[i]
		w.Bool(e.valid)
		w.Uvarint(e.tag)
		w.Uvarint(e.lru)
		for j := range e.branches {
			br := &e.branches[j]
			w.Bool(br.valid)
			w.Byte(br.offset)
			w.Uvarint(br.target)
			w.Byte(byte(br.kind))
		}
	}
	w.Uvarint(b.clock)
	saveStats(w, &b.stats)
}

// LoadState implements TargetBuffer.
func (b *BlockBTB) LoadState(r *ckpt.Reader) {
	r.Section("blockbtb")
	n := r.Uvarint()
	if r.Err() != nil {
		return
	}
	if n != uint64(len(b.data)) {
		r.Failf("blockbtb: %d entries, want %d", n, len(b.data))
		return
	}
	for i := range b.data {
		e := &b.data[i]
		e.valid = r.Bool()
		e.tag = r.Uvarint()
		e.lru = r.Uvarint()
		for j := range e.branches {
			br := &e.branches[j]
			br.valid = r.Bool()
			br.offset = r.Byte()
			br.target = r.Uvarint()
			br.kind = BranchKind(r.Byte())
		}
	}
	b.clock = r.Uvarint()
	loadStats(r, &b.stats)
}
