// Package buildinfo renders the -version output shared by every
// binary: the simulator model version and each persistent-format
// schema stamp, plus the VCS revision baked in by the Go toolchain.
// When a cache replay, a checkpoint restore, or a sweepd submission
// misbehaves, the first diagnostic question is "are the two sides the
// same model?" — this is the surface that answers it.
package buildinfo

import (
	"fmt"
	"io"
	"runtime/debug"

	"ucp/internal/runq"
	"ucp/internal/sim"
	"ucp/internal/sweepd"
)

// Fprint writes the version report for the named binary.
func Fprint(w io.Writer, binary string) {
	fmt.Fprintf(w, "%s (ucp)\n", binary)
	fmt.Fprintf(w, "  model version:     %s\n", sim.ModelVersion)
	fmt.Fprintf(w, "  result schema:     %s\n", runq.SchemaVersion)
	fmt.Fprintf(w, "  checkpoint schema: %s\n", sim.WarmKeySchema)
	fmt.Fprintf(w, "  sweepd protocol:   %s\n", sweepd.ProtocolVersion)
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	fmt.Fprintf(w, "  go:                %s\n", bi.GoVersion)
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = " (modified)"
			}
		}
	}
	if rev != "" {
		fmt.Fprintf(w, "  vcs revision:      %s%s\n", rev, modified)
	}
}
