// Package cache implements the memory hierarchy of the baseline core
// (Table II): set-associative LRU caches with MSHRs (L1I, L1D, L2, LLC),
// TLBs (ITLB, DTLB, STLB), and a fixed-latency DRAM backend. The model
// is functional-with-latency: an access returns the cycle its data is
// available, misses allocate MSHRs and fill the line, and a full MSHR
// file delays the access until an outstanding miss retires — enough
// fidelity for the frontend questions the paper asks without modeling
// per-bank DRAM timing.
package cache

// LineBytes is the cache line size throughout the hierarchy.
const LineBytes = 64

// Config sizes one cache level.
type Config struct {
	Name       string
	SizeBytes  int
	Ways       int
	HitLatency uint64
	MSHRs      int
}

// Stats counts per-level traffic.
type Stats struct {
	Accesses, Hits, Misses uint64
	Prefetches             uint64
	PrefetchDropped        uint64
	Evictions              uint64
	MSHRStalls             uint64
}

// validBit marks a live way in a packed tag array. Tags are line
// addresses shifted right by ≥6 bits, so bit 63 is never part of a tag.
const validBit = uint64(1) << 63

// mshrEntry is one in-flight miss: the line address and its
// fill-complete cycle.
type mshrEntry struct {
	la    uint64
	ready uint64
}

// Cache is one set-associative level backed by a lower Level.
type Cache struct {
	cfg  Config
	sets int
	ways int
	// tags packs each way's valid bit and tag as validBit|tag (zero =
	// invalid), with the LRU stamps in a parallel array: the hit loop
	// then scans one cache line per 8-way set instead of three.
	tags  []uint64 // sets × ways
	lrus  []uint64 // sets × ways
	lower Level
	clock uint64
	stats Stats

	// Set/tag extraction constants: when sets is a power of two (every
	// shipped configuration) the per-access divisions reduce to masks.
	setsPow2 bool
	setMask  uint64
	tagShift uint

	// OnEvict, when set, observes every line eviction (used to keep the
	// µ-op cache inclusive of the L1I, §IV-G2).
	OnEvict func(lineAddr uint64)

	// mshr holds in-flight line addresses with their fill-complete
	// cycles, in allocation order. The file is small (Config.MSHRs), so
	// a flat slice beats a map: lookups are a short linear scan and
	// purge/victim selection do not pay map-iteration overhead.
	mshr []mshrEntry
}

// Level is anything that can serve a line fetch.
type Level interface {
	// FetchLine returns the cycle at which the line containing addr is
	// available, issuing the request at cycle now.
	FetchLine(addr uint64, now uint64) uint64
	// WarmLine installs the line without engaging the MSHR/latency
	// model (warm.go).
	WarmLine(addr uint64)
}

// FixedLatency is a Level with a constant access time (the DRAM model:
// tRP+tRCD+tCAS at 12.5ns each ≈ 150 cycles at 4GHz, Table II).
type FixedLatency struct {
	Latency  uint64
	Accesses uint64
}

// FetchLine implements Level.
func (f *FixedLatency) FetchLine(_ uint64, now uint64) uint64 {
	f.Accesses++
	return now + f.Latency
}

// New constructs a cache level on top of lower.
func New(cfg Config, lower Level) *Cache {
	lines := cfg.SizeBytes / LineBytes
	sets := lines / cfg.Ways
	if sets < 1 {
		sets = 1
	}
	c := &Cache{
		cfg:   cfg,
		sets:  sets,
		ways:  cfg.Ways,
		tags:  make([]uint64, sets*cfg.Ways),
		lrus:  make([]uint64, sets*cfg.Ways),
		lower: lower,
		mshr:  make([]mshrEntry, 0, cfg.MSHRs+1),
	}
	if sets&(sets-1) == 0 {
		c.setsPow2 = true
		c.setMask = uint64(sets - 1)
		shift := uint(0)
		for 1<<shift < sets {
			shift++
		}
		c.tagShift = 6 + shift // log2(LineBytes) + log2(sets)
	}
	return c
}

func (c *Cache) lineAddr(addr uint64) uint64 { return addr &^ (LineBytes - 1) }

func (c *Cache) setOf(la uint64) int {
	if c.setsPow2 {
		return int((la >> 6) & c.setMask)
	}
	return int((la / LineBytes) % uint64(c.sets))
}

func (c *Cache) tagOf(la uint64) uint64 {
	if c.setsPow2 {
		return la >> c.tagShift
	}
	return la / LineBytes / uint64(c.sets)
}

// purge drops completed MSHR entries, preserving allocation order.
func (c *Cache) purge(now uint64) {
	kept := c.mshr[:0]
	for _, e := range c.mshr {
		if e.ready > now {
			kept = append(kept, e)
		}
	}
	c.mshr = kept
}

// mshrFind returns the index of la's in-flight entry, or -1.
func (c *Cache) mshrFind(la uint64) int {
	for i := range c.mshr {
		if c.mshr[i].la == la {
			return i
		}
	}
	return -1
}

// mshrDelete removes entry i, preserving allocation order.
func (c *Cache) mshrDelete(i int) {
	c.mshr = append(c.mshr[:i], c.mshr[i+1:]...)
}

// Contains reports whether the line holding addr is resident (no state
// update, no timing effect). Used by the L1I-Hits ideal configuration.
func (c *Cache) Contains(addr uint64) bool {
	la := c.lineAddr(addr)
	base := c.setOf(la) * c.ways
	want := validBit | c.tagOf(la)
	for _, tv := range c.tags[base : base+c.ways] {
		if tv == want {
			return true
		}
	}
	return false
}

// FetchLine implements Level: demand access issued at cycle `now`,
// returning the data-ready cycle.
func (c *Cache) FetchLine(addr uint64, now uint64) uint64 {
	return c.access(addr, now, false)
}

// Prefetch brings a line in without charging a consumer. It returns the
// fill-complete cycle and whether the line was already resident.
func (c *Cache) Prefetch(addr uint64, now uint64) (done uint64, resident bool) {
	la := c.lineAddr(addr)
	if c.Contains(la) {
		return now, true
	}
	c.stats.Prefetches++
	return c.access(addr, now, true), false
}

func (c *Cache) access(addr uint64, now uint64, isPrefetch bool) uint64 {
	la := c.lineAddr(addr)
	c.clock++
	if !isPrefetch {
		c.stats.Accesses++
	}
	base := c.setOf(la) * c.ways
	want := validBit | c.tagOf(la)
	for w, tv := range c.tags[base : base+c.ways] {
		if tv == want {
			c.lrus[base+w] = c.clock
			if !isPrefetch {
				c.stats.Hits++
			}
			return now + c.cfg.HitLatency
		}
	}
	if !isPrefetch {
		c.stats.Misses++
	}
	// Merge with an outstanding miss for the same line. Entries whose
	// fill already completed are stale (purged lazily): drop them and
	// treat this as a fresh miss.
	if i := c.mshrFind(la); i >= 0 {
		ready := c.mshr[i].ready
		if ready > now {
			if ready < now+c.cfg.HitLatency {
				return now + c.cfg.HitLatency
			}
			return ready
		}
		c.mshrDelete(i)
	}
	issue := now
	if len(c.mshr) >= c.cfg.MSHRs {
		c.purge(now)
	}
	if len(c.mshr) >= c.cfg.MSHRs {
		// MSHR file full: the request waits for the earliest outstanding
		// fill to retire.
		earliest := ^uint64(0)
		victim := 0
		for i := range c.mshr {
			if c.mshr[i].ready < earliest {
				earliest, victim = c.mshr[i].ready, i
			}
		}
		c.stats.MSHRStalls++
		c.mshrDelete(victim)
		if earliest > issue {
			issue = earliest
		}
	}
	ready := c.lower.FetchLine(la, issue+c.cfg.HitLatency)
	c.mshr = append(c.mshr, mshrEntry{la: la, ready: ready})
	c.fill(la)
	return ready
}

// fill installs la, evicting LRU. (The timing of availability is carried
// by the returned ready cycle; the directory state updates eagerly,
// which is the standard trace-simulator simplification.)
func (c *Cache) fill(la uint64) {
	base := c.setOf(la) * c.ways
	victim, oldest := 0, ^uint64(0)
	for w, tv := range c.tags[base : base+c.ways] {
		if tv == 0 {
			victim, oldest = w, 0
			break
		}
		if l := c.lrus[base+w]; l < oldest {
			victim, oldest = w, l
		}
	}
	if tv := c.tags[base+victim]; tv != 0 {
		c.stats.Evictions++
		if c.OnEvict != nil {
			set := c.setOf(la)
			evicted := ((tv&^validBit)*uint64(c.sets) + uint64(set)) * LineBytes
			c.OnEvict(evicted)
		}
	}
	c.tags[base+victim] = validBit | c.tagOf(la)
	c.lrus[base+victim] = c.clock
}

// Stats returns a copy of the traffic counters.
func (c *Cache) Stats() Stats { return c.stats }

// Sets returns the number of sets (for bank interleaving by consumers).
func (c *Cache) Sets() int { return c.sets }

// HitLatency returns the configured hit latency.
func (c *Cache) HitLatency() uint64 { return c.cfg.HitLatency }
