// Package cache implements the memory hierarchy of the baseline core
// (Table II): set-associative LRU caches with MSHRs (L1I, L1D, L2, LLC),
// TLBs (ITLB, DTLB, STLB), and a fixed-latency DRAM backend. The model
// is functional-with-latency: an access returns the cycle its data is
// available, misses allocate MSHRs and fill the line, and a full MSHR
// file delays the access until an outstanding miss retires — enough
// fidelity for the frontend questions the paper asks without modeling
// per-bank DRAM timing.
package cache

// LineBytes is the cache line size throughout the hierarchy.
const LineBytes = 64

// Config sizes one cache level.
type Config struct {
	Name       string
	SizeBytes  int
	Ways       int
	HitLatency uint64
	MSHRs      int
}

// Stats counts per-level traffic.
type Stats struct {
	Accesses, Hits, Misses uint64
	Prefetches             uint64
	PrefetchDropped        uint64
	Evictions              uint64
	MSHRStalls             uint64
}

type line struct {
	valid bool
	tag   uint64
	lru   uint64
}

// Cache is one set-associative level backed by a lower Level.
type Cache struct {
	cfg   Config
	sets  int
	ways  int
	data  []line
	lower Level
	clock uint64
	stats Stats

	// OnEvict, when set, observes every line eviction (used to keep the
	// µ-op cache inclusive of the L1I, §IV-G2).
	OnEvict func(lineAddr uint64)

	// mshr maps in-flight line addresses to their fill-complete cycle.
	mshr map[uint64]uint64
}

// Level is anything that can serve a line fetch.
type Level interface {
	// FetchLine returns the cycle at which the line containing addr is
	// available, issuing the request at cycle now.
	FetchLine(addr uint64, now uint64) uint64
}

// FixedLatency is a Level with a constant access time (the DRAM model:
// tRP+tRCD+tCAS at 12.5ns each ≈ 150 cycles at 4GHz, Table II).
type FixedLatency struct {
	Latency  uint64
	Accesses uint64
}

// FetchLine implements Level.
func (f *FixedLatency) FetchLine(_ uint64, now uint64) uint64 {
	f.Accesses++
	return now + f.Latency
}

// New constructs a cache level on top of lower.
func New(cfg Config, lower Level) *Cache {
	lines := cfg.SizeBytes / LineBytes
	sets := lines / cfg.Ways
	if sets < 1 {
		sets = 1
	}
	return &Cache{
		cfg:   cfg,
		sets:  sets,
		ways:  cfg.Ways,
		data:  make([]line, sets*cfg.Ways),
		lower: lower,
		mshr:  make(map[uint64]uint64),
	}
}

func (c *Cache) lineAddr(addr uint64) uint64 { return addr &^ (LineBytes - 1) }

func (c *Cache) setOf(la uint64) int { return int((la / LineBytes) % uint64(c.sets)) }

func (c *Cache) tagOf(la uint64) uint64 { return la / LineBytes / uint64(c.sets) }

// purge drops completed MSHR entries.
func (c *Cache) purge(now uint64) {
	for la, ready := range c.mshr {
		if ready <= now {
			delete(c.mshr, la)
		}
	}
}

// Contains reports whether the line holding addr is resident (no state
// update, no timing effect). Used by the L1I-Hits ideal configuration.
func (c *Cache) Contains(addr uint64) bool {
	la := c.lineAddr(addr)
	base := c.setOf(la) * c.ways
	tag := c.tagOf(la)
	for w := 0; w < c.ways; w++ {
		e := &c.data[base+w]
		if e.valid && e.tag == tag {
			return true
		}
	}
	return false
}

// FetchLine implements Level: demand access issued at cycle `now`,
// returning the data-ready cycle.
func (c *Cache) FetchLine(addr uint64, now uint64) uint64 {
	return c.access(addr, now, false)
}

// Prefetch brings a line in without charging a consumer. It returns the
// fill-complete cycle and whether the line was already resident.
func (c *Cache) Prefetch(addr uint64, now uint64) (done uint64, resident bool) {
	la := c.lineAddr(addr)
	if c.Contains(la) {
		return now, true
	}
	c.stats.Prefetches++
	return c.access(addr, now, true), false
}

func (c *Cache) access(addr uint64, now uint64, isPrefetch bool) uint64 {
	la := c.lineAddr(addr)
	c.clock++
	if !isPrefetch {
		c.stats.Accesses++
	}
	base := c.setOf(la) * c.ways
	tag := c.tagOf(la)
	for w := 0; w < c.ways; w++ {
		e := &c.data[base+w]
		if e.valid && e.tag == tag {
			e.lru = c.clock
			if !isPrefetch {
				c.stats.Hits++
			}
			return now + c.cfg.HitLatency
		}
	}
	if !isPrefetch {
		c.stats.Misses++
	}
	// Merge with an outstanding miss for the same line. Entries whose
	// fill already completed are stale (purged lazily): drop them and
	// treat this as a fresh miss.
	if ready, ok := c.mshr[la]; ok {
		if ready > now {
			if ready < now+c.cfg.HitLatency {
				return now + c.cfg.HitLatency
			}
			return ready
		}
		delete(c.mshr, la)
	}
	issue := now
	if len(c.mshr) >= c.cfg.MSHRs {
		c.purge(now)
	}
	if len(c.mshr) >= c.cfg.MSHRs {
		// MSHR file full: the request waits for the earliest outstanding
		// fill to retire.
		earliest := ^uint64(0)
		var victim uint64
		for a, ready := range c.mshr {
			if ready < earliest {
				earliest, victim = ready, a
			}
		}
		c.stats.MSHRStalls++
		delete(c.mshr, victim)
		if earliest > issue {
			issue = earliest
		}
	}
	ready := c.lower.FetchLine(la, issue+c.cfg.HitLatency)
	c.mshr[la] = ready
	c.fill(la)
	return ready
}

// fill installs la, evicting LRU. (The timing of availability is carried
// by the returned ready cycle; the directory state updates eagerly,
// which is the standard trace-simulator simplification.)
func (c *Cache) fill(la uint64) {
	base := c.setOf(la) * c.ways
	tag := c.tagOf(la)
	victim, oldest := 0, ^uint64(0)
	for w := 0; w < c.ways; w++ {
		e := &c.data[base+w]
		if !e.valid {
			victim, oldest = w, 0
			break
		}
		if e.lru < oldest {
			victim, oldest = w, e.lru
		}
	}
	if v := &c.data[base+victim]; v.valid {
		c.stats.Evictions++
		if c.OnEvict != nil {
			set := c.setOf(la)
			evicted := (v.tag*uint64(c.sets) + uint64(set)) * LineBytes
			c.OnEvict(evicted)
		}
	}
	c.data[base+victim] = line{valid: true, tag: tag, lru: c.clock}
}

// Stats returns a copy of the traffic counters.
func (c *Cache) Stats() Stats { return c.stats }

// Sets returns the number of sets (for bank interleaving by consumers).
func (c *Cache) Sets() int { return c.sets }

// HitLatency returns the configured hit latency.
func (c *Cache) HitLatency() uint64 { return c.cfg.HitLatency }
