package cache

import (
	"testing"
	"testing/quick"
)

func twoLevel() (*Cache, *FixedLatency) {
	dram := &FixedLatency{Latency: 100}
	l1 := New(Config{Name: "L1", SizeBytes: 1024, Ways: 2, HitLatency: 4, MSHRs: 4}, dram)
	return l1, dram
}

func TestMissThenHit(t *testing.T) {
	l1, dram := twoLevel()
	done := l1.FetchLine(0x1000, 0)
	if done != 4+100 {
		t.Fatalf("miss latency %d, want 104", done)
	}
	if dram.Accesses != 1 {
		t.Fatalf("dram accesses %d", dram.Accesses)
	}
	done = l1.FetchLine(0x1008, 200) // same line
	if done != 204 {
		t.Fatalf("hit latency %d, want 204", done)
	}
	if dram.Accesses != 1 {
		t.Fatal("hit went to DRAM")
	}
}

func TestMSHRMerge(t *testing.T) {
	l1, dram := twoLevel()
	d1 := l1.FetchLine(0x2000, 0)
	d2 := l1.FetchLine(0x2010, 1) // same line, still in flight
	if dram.Accesses != 1 {
		t.Fatalf("merged miss issued %d DRAM accesses", dram.Accesses)
	}
	if d2 > d1 {
		t.Fatalf("merged access completes at %d, after the fill %d", d2, d1)
	}
}

func TestMSHRFullDelays(t *testing.T) {
	l1, _ := twoLevel()
	var last uint64
	for i := 0; i < 4; i++ {
		last = l1.FetchLine(uint64(0x10000+i*64), 0)
	}
	// Fifth concurrent miss must wait for an outstanding fill.
	d := l1.FetchLine(0x20000, 0)
	if d <= last-100 {
		t.Fatalf("MSHR-full access completed too early: %d", d)
	}
	if l1.Stats().MSHRStalls != 1 {
		t.Fatalf("MSHR stalls = %d", l1.Stats().MSHRStalls)
	}
}

func TestLRUWithinSet(t *testing.T) {
	// 1KB, 2 ways, 64B lines → 8 sets. Lines mapping to set 0: stride 512.
	l1, dram := twoLevel()
	l1.FetchLine(0, 0)
	l1.FetchLine(512, 1000)
	l1.FetchLine(0, 2000)    // touch: 0 becomes MRU
	l1.FetchLine(1024, 3000) // evicts 512
	if dram.Accesses != 3 {
		t.Fatalf("setup DRAM accesses %d", dram.Accesses)
	}
	l1.FetchLine(0, 4000)
	if dram.Accesses != 3 {
		t.Fatal("MRU line was evicted")
	}
	l1.FetchLine(512, 5000)
	if dram.Accesses != 4 {
		t.Fatal("LRU line was not evicted")
	}
}

func TestContains(t *testing.T) {
	l1, _ := twoLevel()
	if l1.Contains(0x3000) {
		t.Fatal("empty cache contains line")
	}
	l1.FetchLine(0x3000, 0)
	if !l1.Contains(0x3004) {
		t.Fatal("line not resident after fetch")
	}
}

func TestPrefetchResident(t *testing.T) {
	l1, dram := twoLevel()
	l1.FetchLine(0x4000, 0)
	_, resident := l1.Prefetch(0x4000, 10)
	if !resident {
		t.Fatal("prefetch of resident line must be a no-op")
	}
	if dram.Accesses != 1 {
		t.Fatal("resident prefetch hit DRAM")
	}
	done, resident := l1.Prefetch(0x5000, 10)
	if resident || done != 10+4+100 {
		t.Fatalf("prefetch miss done=%d resident=%v", done, resident)
	}
}

func TestCapacityProperty(t *testing.T) {
	// A line just fetched is always resident, regardless of history.
	if err := quick.Check(func(addrs []uint32) bool {
		l1, _ := twoLevel()
		now := uint64(0)
		for _, a := range addrs {
			now += 200
			l1.FetchLine(uint64(a), now)
			if !l1.Contains(uint64(a)) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTLBHierarchy(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	// First touch: ITLB miss → STLB miss → walk.
	d1 := h.ITLB.Translate(0x100000, 0)
	if d1 < 100 {
		t.Fatalf("cold translation too fast: %d", d1)
	}
	// Second touch: ITLB hit.
	d2 := h.ITLB.Translate(0x100040, 1000)
	if d2 != 1001 {
		t.Fatalf("warm translation %d, want 1001", d2)
	}
	// A different page in the same STLB: ITLB miss, STLB hit after the
	// first page's walk populated only that page — so this walks too.
	d3 := h.ITLB.Translate(0x200000, 2000)
	if d3 < 2100 {
		t.Fatalf("new page should walk: %d", d3)
	}
}

func TestHierarchyInstFetch(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	cold := h.FetchInst(0x100000, 0)
	// ITLB walk + L1I miss + L2 miss + LLC miss + DRAM.
	if cold < 200 {
		t.Fatalf("cold fetch %d cycles, implausibly fast", cold)
	}
	warm := h.FetchInst(0x100000, 10000)
	if warm != 10000+1+4 {
		t.Fatalf("warm fetch %d, want ITLB(1)+L1I(4)", warm)
	}
}

func TestHierarchyPQ(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.L1IPQEntries = 2
	h := NewHierarchy(cfg)
	// Two prefetches at the same cycle fill the PQ; the third drops.
	if _, ok := h.PrefetchInst(0x10000, 5); !ok {
		t.Fatal("first prefetch rejected")
	}
	if _, ok := h.PrefetchInst(0x20000, 5); !ok {
		t.Fatal("second prefetch rejected")
	}
	if _, ok := h.PrefetchInst(0x30000, 5); ok {
		t.Fatal("third prefetch should drop (PQ full)")
	}
	if h.PQDropped != 1 {
		t.Fatalf("PQDropped = %d", h.PQDropped)
	}
	// After the queue drains, prefetches are accepted again.
	if _, ok := h.PrefetchInst(0x40000, 100); !ok {
		t.Fatal("prefetch after drain rejected")
	}
	// Prefetch of a resident line does not consume a PQ slot.
	h.FetchInst(0x50000, 200)
	before := h.PQIssued
	if _, ok := h.PrefetchInst(0x50000, 300); !ok {
		t.Fatal("resident prefetch rejected")
	}
	if h.PQIssued != before {
		t.Fatal("resident prefetch consumed a PQ slot")
	}
}

func TestLoadStorePaths(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	cold := h.Load(1<<32, 0)
	if cold < 150 {
		t.Fatalf("cold load %d", cold)
	}
	warm := h.Load(1<<32, 5000)
	if warm != 5000+1+5 {
		t.Fatalf("warm load %d, want DTLB(1)+L1D(5)", warm)
	}
	// Stores allocate too.
	h.Store((1<<32)+128, 6000)
	if !h.L1D.Contains((1 << 32) + 128) {
		t.Fatal("store did not allocate")
	}
}

func TestStatsAccounting(t *testing.T) {
	l1, _ := twoLevel()
	l1.FetchLine(0x100, 0)
	l1.FetchLine(0x100, 10)
	s := l1.Stats()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestTLBStats(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.ITLB.Translate(0x1000, 0)
	h.ITLB.Translate(0x1000, 10)
	s := h.ITLB.Stats()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("ITLB stats %+v", s)
	}
}

func TestTLBCapacityEviction(t *testing.T) {
	// Touch more pages than the ITLB holds; early pages must re-miss.
	cfg := DefaultHierarchyConfig()
	h := NewHierarchy(cfg)
	pages := cfg.ITLB.Entries + 64
	for i := 0; i < pages; i++ {
		h.ITLB.Translate(uint64(i)<<12, uint64(i*10))
	}
	before := h.ITLB.Stats().Misses
	h.ITLB.Translate(0, 1<<20)
	if h.ITLB.Stats().Misses != before+1 {
		t.Fatal("evicted page did not re-miss")
	}
}

func TestPrefetchSharesMSHRPath(t *testing.T) {
	// A demand access right after a prefetch of the same line must merge
	// (no second DRAM trip) and complete no later than the prefetch.
	l1, dram := twoLevel()
	pfDone, _ := l1.Prefetch(0x9000, 0)
	demand := l1.FetchLine(0x9000, 1)
	if dram.Accesses != 1 {
		t.Fatalf("demand after prefetch hit DRAM again (%d)", dram.Accesses)
	}
	if demand > pfDone {
		t.Fatalf("demand (%d) slower than the outstanding prefetch (%d)", demand, pfDone)
	}
}

func TestEvictionCallback(t *testing.T) {
	l1, _ := twoLevel() // 1KB, 2 ways → 8 sets; same-set stride 512
	var evicted []uint64
	l1.OnEvict = func(la uint64) { evicted = append(evicted, la) }
	l1.FetchLine(0, 0)
	l1.FetchLine(512, 100)
	l1.FetchLine(1024, 200) // evicts line 0 (LRU)
	if len(evicted) != 1 || evicted[0] != 0 {
		t.Fatalf("evictions %v, want [0]", evicted)
	}
}

func TestMSHRStress(t *testing.T) {
	// Hammering one level with misses must neither grow the MSHR map
	// unboundedly nor lose correctness.
	l1, _ := twoLevel()
	now := uint64(0)
	for i := 0; i < 5000; i++ {
		l1.FetchLine(uint64(i)*64*17, now)
		now += 3
	}
	if len(l1.mshr) > l1.cfg.MSHRs+1 {
		t.Fatalf("MSHR map grew to %d (cap %d)", len(l1.mshr), l1.cfg.MSHRs)
	}
}
