package cache

import "ucp/internal/ckpt"

// Checkpoint hooks: the sampled fast-forward routes every fetch line
// and data reference through the WarmLine path (warm.go), mutating
// tags, LRU stamps, recency clocks, and stats at every level plus the
// TLBs and the DRAM access counter. The MSHR files are deliberately not
// serialized: warming never allocates an MSHR, so at the capture point
// — the end of the initial fast-forward, before any detailed window —
// they are empty in the running machine and empty in a freshly
// constructed one alike.

func saveStats(w *ckpt.Writer, s *Stats) {
	w.Uvarint(s.Accesses)
	w.Uvarint(s.Hits)
	w.Uvarint(s.Misses)
	w.Uvarint(s.Prefetches)
	w.Uvarint(s.PrefetchDropped)
	w.Uvarint(s.Evictions)
	w.Uvarint(s.MSHRStalls)
}

func loadStats(r *ckpt.Reader, s *Stats) {
	s.Accesses = r.Uvarint()
	s.Hits = r.Uvarint()
	s.Misses = r.Uvarint()
	s.Prefetches = r.Uvarint()
	s.PrefetchDropped = r.Uvarint()
	s.Evictions = r.Uvarint()
	s.MSHRStalls = r.Uvarint()
}

// SaveState serializes one cache level's warm-mutable state.
func (c *Cache) SaveState(w *ckpt.Writer) {
	w.Section("cache")
	w.U64s(c.tags)
	w.U64s(c.lrus)
	w.Uvarint(c.clock)
	saveStats(w, &c.stats)
}

// LoadState restores state saved by SaveState into an identically
// configured level. Errors surface on the reader.
func (c *Cache) LoadState(r *ckpt.Reader) {
	r.Section("cache")
	r.U64sInto(c.tags)
	r.U64sInto(c.lrus)
	c.clock = r.Uvarint()
	loadStats(r, &c.stats)
}

// SaveState serializes one TLB's warm-mutable state.
func (t *TLB) SaveState(w *ckpt.Writer) {
	w.Section("tlb")
	w.U64s(t.tags)
	w.U64s(t.lrus)
	w.Uvarint(t.clock)
	saveStats(w, &t.stats)
}

// LoadState restores state saved by SaveState.
func (t *TLB) LoadState(r *ckpt.Reader) {
	r.Section("tlb")
	r.U64sInto(t.tags)
	r.U64sInto(t.lrus)
	t.clock = r.Uvarint()
	loadStats(r, &t.stats)
}

// SaveState serializes the whole hierarchy: the four cache levels, the
// DRAM access counter, the three TLBs, and the warm-path duplicate
// filters (part of the functional machine state — dropping them would
// re-warm one line/page after restore and skew recency).
func (h *Hierarchy) SaveState(w *ckpt.Writer) {
	w.Section("hierarchy")
	h.L1I.SaveState(w)
	h.L1D.SaveState(w)
	h.L2.SaveState(w)
	h.LLC.SaveState(w)
	w.Uvarint(h.DRAM.Accesses)
	h.ITLB.SaveState(w)
	h.DTLB.SaveState(w)
	h.STLB.SaveState(w)
	w.Uvarint(h.warmIPage)
	w.Uvarint(h.warmDPage)
	w.Uvarint(h.warmDLine)
	w.Bool(h.warmIValid)
	w.Bool(h.warmDPValid)
	w.Bool(h.warmDLValid)
}

// LoadState restores state saved by SaveState into an identically
// configured hierarchy. Errors surface on the reader.
func (h *Hierarchy) LoadState(r *ckpt.Reader) {
	r.Section("hierarchy")
	h.L1I.LoadState(r)
	h.L1D.LoadState(r)
	h.L2.LoadState(r)
	h.LLC.LoadState(r)
	h.DRAM.Accesses = r.Uvarint()
	h.ITLB.LoadState(r)
	h.DTLB.LoadState(r)
	h.STLB.LoadState(r)
	h.warmIPage = r.Uvarint()
	h.warmDPage = r.Uvarint()
	h.warmDLine = r.Uvarint()
	h.warmIValid = r.Bool()
	h.warmDPValid = r.Bool()
	h.warmDLValid = r.Bool()
}
