package cache

// Hierarchy wires the Table II memory system: split L1s over a shared
// L2, LLC, and DRAM, plus the TLBs. Instruction fetches go through
// ITLB→(STLB)→L1I→L2→LLC→DRAM; data accesses through DTLB and L1D.
type Hierarchy struct {
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	LLC  *Cache
	DRAM *FixedLatency

	ITLB *TLB
	DTLB *TLB
	STLB *TLB

	// Consecutive-duplicate filters for the functional warm path
	// (warm.go): repeated warms within one page/line short-circuit.
	warmIPage, warmDPage, warmDLine      uint64
	warmIValid, warmDPValid, warmDLValid bool

	// L1I prefetch queue: issued L1I prefetches drain one per cycle.
	pqCap      int
	pqFreeAt   uint64
	pqOccupied int
	pqLastNow  uint64
	PQIssued   uint64
	PQDropped  uint64
}

// HierarchyConfig sizes the memory system.
type HierarchyConfig struct {
	L1I, L1D, L2, LLC Config
	DRAMLatency       uint64
	ITLB, DTLB, STLB  TLBConfig
	WalkLatency       uint64
	L1IPQEntries      int
}

// DefaultHierarchyConfig mirrors Table II (Alder Lake P-core).
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:          Config{Name: "L1I", SizeBytes: 32 << 10, Ways: 8, HitLatency: 4, MSHRs: 16},
		L1D:          Config{Name: "L1D", SizeBytes: 48 << 10, Ways: 12, HitLatency: 5, MSHRs: 16},
		L2:           Config{Name: "L2", SizeBytes: 1280 << 10, Ways: 20, HitLatency: 10, MSHRs: 32},
		LLC:          Config{Name: "LLC", SizeBytes: 30 << 20, Ways: 12, HitLatency: 40, MSHRs: 64},
		DRAMLatency:  150, // tRP+tRCD+tCAS = 37.5ns ≈ 150 cycles at 4GHz
		ITLB:         TLBConfig{Entries: 256, Ways: 8, HitLatency: 1, PageBits: 12},
		DTLB:         TLBConfig{Entries: 96, Ways: 6, HitLatency: 1, PageBits: 12},
		STLB:         TLBConfig{Entries: 2048, Ways: 16, HitLatency: 8, PageBits: 12},
		WalkLatency:  120,
		L1IPQEntries: 32,
	}
}

// NewHierarchy builds the memory system from cfg.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	dram := &FixedLatency{Latency: cfg.DRAMLatency}
	llc := New(cfg.LLC, dram)
	l2 := New(cfg.L2, llc)
	h := &Hierarchy{
		L1I:   New(cfg.L1I, l2),
		L1D:   New(cfg.L1D, l2),
		L2:    l2,
		LLC:   llc,
		DRAM:  dram,
		ITLB:  NewTLB(cfg.ITLB, nil),
		DTLB:  NewTLB(cfg.DTLB, nil),
		STLB:  NewTLB(cfg.STLB, nil),
		pqCap: cfg.L1IPQEntries,
	}
	h.ITLB.stlb = h.STLB
	h.DTLB.stlb = h.STLB
	h.ITLB.walkLatency = cfg.WalkLatency
	h.DTLB.walkLatency = cfg.WalkLatency
	h.STLB.walkLatency = cfg.WalkLatency
	return h
}

// FetchInst returns the cycle at which the instruction line containing
// addr is available, including address translation.
func (h *Hierarchy) FetchInst(addr uint64, now uint64) uint64 {
	ready := h.ITLB.Translate(addr, now)
	return h.L1I.FetchLine(addr, ready)
}

// PrefetchInst issues an instruction prefetch through the L1I prefetch
// queue. It returns the fill-complete cycle and whether the request was
// accepted (the PQ drops requests when full, as real PQs do).
func (h *Hierarchy) PrefetchInst(addr uint64, now uint64) (done uint64, accepted bool) {
	if h.L1I.Contains(addr) {
		return now, true
	}
	// Drain the PQ model: one issue slot per cycle.
	if now > h.pqLastNow {
		drained := int(now - h.pqLastNow)
		if drained > h.pqOccupied {
			drained = h.pqOccupied
		}
		h.pqOccupied -= drained
		h.pqLastNow = now
	}
	if h.pqOccupied >= h.pqCap {
		h.PQDropped++
		return 0, false
	}
	h.pqOccupied++
	h.PQIssued++
	ready := h.ITLB.Translate(addr, now)
	done, _ = h.L1I.Prefetch(addr, ready)
	return done, true
}

// Load returns the data-ready cycle for a load issued at now.
func (h *Hierarchy) Load(addr uint64, now uint64) uint64 {
	ready := h.DTLB.Translate(addr, now)
	return h.L1D.FetchLine(addr, ready)
}

// Store models a store issued at now; write-allocate, completion hidden
// by the store buffer, so the returned cycle is only used for stats.
func (h *Hierarchy) Store(addr uint64, now uint64) uint64 {
	ready := h.DTLB.Translate(addr, now)
	return h.L1D.FetchLine(addr, ready)
}

// TLBConfig sizes a TLB.
type TLBConfig struct {
	Entries    int
	Ways       int
	HitLatency uint64
	PageBits   int
}

// TLB is a set-associative translation cache. A miss consults the STLB
// (when present), and an STLB miss pays the page-walk latency.
type TLB struct {
	cfg  TLBConfig
	sets int
	// tags packs each way's valid bit and tag as validBit|tag (zero =
	// invalid), LRU stamps parallel — same layout as Cache, so the hit
	// loop reads one cache line per set.
	tags        []uint64
	lrus        []uint64
	clock       uint64
	stlb        *TLB
	walkLatency uint64
	stats       Stats
}

// NewTLB constructs a TLB; stlb may be nil (then misses walk directly).
func NewTLB(cfg TLBConfig, stlb *TLB) *TLB {
	sets := cfg.Entries / cfg.Ways
	if sets < 1 {
		sets = 1
	}
	return &TLB{cfg: cfg, sets: sets,
		tags: make([]uint64, sets*cfg.Ways),
		lrus: make([]uint64, sets*cfg.Ways), stlb: stlb}
}

// Translate returns the cycle at which the translation of addr is
// available.
func (t *TLB) Translate(addr uint64, now uint64) uint64 {
	page := addr >> uint(t.cfg.PageBits)
	t.clock++
	t.stats.Accesses++
	base := int(page%uint64(t.sets)) * t.cfg.Ways
	want := validBit | page/uint64(t.sets)
	for w, tv := range t.tags[base : base+t.cfg.Ways] {
		if tv == want {
			t.lrus[base+w] = t.clock
			t.stats.Hits++
			return now + t.cfg.HitLatency
		}
	}
	t.stats.Misses++
	ready := now + t.cfg.HitLatency
	if t.stlb != nil {
		ready = t.stlb.Translate(addr, ready)
	} else {
		ready += t.walkLatency
	}
	t.insert(page)
	return ready
}

func (t *TLB) insert(page uint64) {
	base := int(page%uint64(t.sets)) * t.cfg.Ways
	victim, oldest := 0, ^uint64(0)
	for w, tv := range t.tags[base : base+t.cfg.Ways] {
		if tv == 0 {
			victim, oldest = w, 0
			break
		}
		if l := t.lrus[base+w]; l < oldest {
			victim, oldest = w, l
		}
	}
	t.tags[base+victim] = validBit | page/uint64(t.sets)
	t.lrus[base+victim] = t.clock
}

// Stats returns a copy of the TLB counters.
func (t *TLB) Stats() Stats { return t.stats }
