package cache

// Functional warming for the sampled simulation mode: WarmLine performs
// a demand fill's *state* effects — tag/LRU update on a hit, fill with
// LRU eviction (and the OnEvict inclusive-µ-op-cache callback) on a
// miss, recursing into lower levels — without touching the MSHR file or
// producing a ready cycle. The fast-forward path issues memory traffic
// at one instruction per nominal cycle, far denser than the detailed
// machine could sustain; routing it through FetchLine would grow an
// unbounded MSHR backlog that stalls the next detailed window.

// WarmLine implements Level: residency and recency update only. Unlike
// the access/fill demand pair it resolves the hit and the victim in a
// single pass over the set — the warm path runs once per skipped memory
// reference, so the second scan is measurable.
func (c *Cache) WarmLine(addr uint64) {
	la := c.lineAddr(addr)
	c.clock++
	c.stats.Accesses++
	base := c.setOf(la) * c.ways
	want := validBit | c.tagOf(la)
	empty, victim, oldest := -1, 0, ^uint64(0)
	for w, tv := range c.tags[base : base+c.ways] {
		if tv == want {
			c.lrus[base+w] = c.clock
			c.stats.Hits++
			return
		}
		if tv == 0 {
			if empty < 0 {
				empty = w
			}
			continue
		}
		if l := c.lrus[base+w]; l < oldest {
			victim, oldest = w, l
		}
	}
	c.stats.Misses++
	c.lower.WarmLine(la)
	if empty >= 0 {
		victim = empty
	} else {
		c.stats.Evictions++
		if c.OnEvict != nil {
			tv := c.tags[base+victim]
			evicted := ((tv&^validBit)*uint64(c.sets) + uint64(c.setOf(la))) * LineBytes
			c.OnEvict(evicted)
		}
	}
	c.tags[base+victim] = want
	c.lrus[base+victim] = c.clock
}

// WarmLine implements Level for the DRAM backend.
func (f *FixedLatency) WarmLine(uint64) { f.Accesses++ }

// WarmFetchInst is FetchInst's functional counterpart: ITLB/STLB state
// advances (Translate has no latency-model state beyond its return
// value) and the L1I path is warmed. Consecutive calls within one page
// skip the redundant translation — warming cares about residency, not
// per-access recency, and the warm path's throughput bounds the whole
// sampled mode.
func (h *Hierarchy) WarmFetchInst(addr uint64, now uint64) {
	if pg := addr >> uint(h.ITLB.cfg.PageBits); !h.warmIValid || pg != h.warmIPage {
		h.warmIPage, h.warmIValid = pg, true
		h.ITLB.Translate(addr, now)
	}
	h.L1I.WarmLine(addr)
}

// WarmData is Load/Store's functional counterpart on the DTLB/L1D path,
// with the same consecutive-duplicate filtering per line and per page.
func (h *Hierarchy) WarmData(addr uint64, now uint64) {
	la := addr &^ (LineBytes - 1)
	if h.warmDLValid && la == h.warmDLine {
		return
	}
	h.warmDLine, h.warmDLValid = la, true
	if pg := addr >> uint(h.DTLB.cfg.PageBits); !h.warmDPValid || pg != h.warmDPage {
		h.warmDPage, h.warmDPValid = pg, true
		h.DTLB.Translate(addr, now)
	}
	h.L1D.WarmLine(la)
}
