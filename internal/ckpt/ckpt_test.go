package ckpt

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func sealed(t *testing.T) []byte {
	t.Helper()
	w := NewWriter()
	w.Section("hdr")
	w.Uvarint(42)
	w.Varint(-7)
	w.Byte(0xab)
	w.Bool(true)
	w.I8(-3)
	w.U64s([]uint64{0, 1, 1 << 62, 12345})
	w.U8s([]uint8{9, 8, 7})
	w.I8s([]int8{-1, 0, 1})
	w.Section("tail")
	return w.Seal()
}

func TestCodecRoundTrip(t *testing.T) {
	blob := sealed(t)
	r, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	r.Section("hdr")
	if v := r.Uvarint(); v != 42 {
		t.Fatalf("Uvarint = %d", v)
	}
	if v := r.Varint(); v != -7 {
		t.Fatalf("Varint = %d", v)
	}
	if v := r.Byte(); v != 0xab {
		t.Fatalf("Byte = %#x", v)
	}
	if !r.Bool() {
		t.Fatal("Bool = false")
	}
	if v := r.I8(); v != -3 {
		t.Fatalf("I8 = %d", v)
	}
	u64 := make([]uint64, 4)
	r.U64sInto(u64)
	if u64[2] != 1<<62 || u64[3] != 12345 {
		t.Fatalf("U64sInto = %v", u64)
	}
	u8 := make([]uint8, 3)
	r.U8sInto(u8)
	if u8[0] != 9 || u8[2] != 7 {
		t.Fatalf("U8sInto = %v", u8)
	}
	i8 := make([]int8, 3)
	r.I8sInto(i8)
	if i8[0] != -1 || i8[2] != 1 {
		t.Fatalf("I8sInto = %v", i8)
	}
	r.Section("tail")
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCodecDeterministic pins byte-for-byte reproducibility: identical
// writes must seal to identical blobs (checkpoint reuse depends on it).
func TestCodecDeterministic(t *testing.T) {
	if !bytes.Equal(sealed(t), sealed(t)) {
		t.Fatal("identical writes sealed to different blobs")
	}
}

// TestOpenRejectsCorruption flips every byte of a sealed blob and
// truncates it at every length: Open must reject all of them (the
// trailing digest covers the entire envelope and payload).
func TestOpenRejectsCorruption(t *testing.T) {
	blob := sealed(t)
	for i := range blob {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0xff
		if _, err := Open(bad); err == nil {
			t.Fatalf("blob with byte %d flipped opened without error", i)
		}
	}
	for cut := 0; cut < len(blob); cut++ {
		if _, err := Open(blob[:cut]); err == nil {
			t.Fatalf("blob truncated to %d/%d bytes opened without error", cut, len(blob))
		}
	}
}

// TestOpenRejectsVersionSkew rebuilds the envelope with a bumped
// version (and a correct digest): Open must reject it by version, the
// way a blob written by a future format revision would present.
func TestOpenRejectsVersionSkew(t *testing.T) {
	blob := append([]byte(nil), sealed(t)...)
	blob[4]++ // version byte (little-endian u32 at offset 4)
	body := blob[:len(blob)-32]
	w := &Writer{buf: append([]byte(nil), body...)}
	reSealed := w.Seal()
	_, err := Open(reSealed)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version-skewed blob: err = %v", err)
	}
}

// TestReaderStickyErrors checks section skew and length mismatches fail
// descriptively and stick.
func TestReaderStickyErrors(t *testing.T) {
	w := NewWriter()
	w.Section("bp")
	w.U64s([]uint64{1, 2, 3})
	r, err := Open(w.Seal())
	if err != nil {
		t.Fatal(err)
	}
	r.Section("cache") // skew: blob holds "bp"
	if r.Err() == nil || !strings.Contains(r.Err().Error(), `section "cache"`) {
		t.Fatalf("section skew err = %v", r.Err())
	}
	// Sticky: further reads keep the first error.
	_ = r.Uvarint()
	if !strings.Contains(r.Err().Error(), `section "cache"`) {
		t.Fatalf("error not sticky: %v", r.Err())
	}

	r2, err := Open(sealedU64s([]uint64{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]uint64, 4) // geometry mismatch
	r2.U64sInto(dst)
	if r2.Err() == nil || !strings.Contains(r2.Err().Error(), "length 3, want 4") {
		t.Fatalf("length mismatch err = %v", r2.Err())
	}
}

func sealedU64s(v []uint64) []byte {
	w := NewWriter()
	w.U64s(v)
	return w.Seal()
}

// TestCloseRejectsTrailing pins the exact-consumption contract.
func TestCloseRejectsTrailing(t *testing.T) {
	r, err := Open(sealedU64s([]uint64{5}))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("Close with unread payload: err = %v", err)
	}
}

func testKey(i int) string {
	return fmt.Sprintf("%02x%060x", i, i)
}

// TestStoreSingleFlight hammers one key from many goroutines: exactly
// one leader computes, everyone observes the same blob.
func TestStoreSingleFlight(t *testing.T) {
	s := NewStore("")
	key := testKey(1)
	var computes atomic.Int32
	const goroutines = 16
	blobs := make([][]byte, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			blob, ok, release := s.Acquire(key)
			if !ok {
				computes.Add(1)
				w := NewWriter()
				w.Uvarint(777)
				blob = w.Seal()
				release(blob)
			}
			blobs[g] = blob
		}(g)
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("%d leaders computed, want 1", n)
	}
	for g := range blobs {
		if !bytes.Equal(blobs[g], blobs[0]) {
			t.Fatalf("goroutine %d observed a different blob", g)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("store holds %d blobs, want 1", s.Len())
	}
}

// TestStoreAbortHandsOver: a leader that releases nil must hand
// leadership to a waiter instead of wedging or caching nothing forever.
func TestStoreAbortHandsOver(t *testing.T) {
	s := NewStore("")
	key := testKey(2)

	_, ok, release := s.Acquire(key)
	if ok {
		t.Fatal("fresh store reported a hit")
	}

	got := make(chan []byte)
	go func() {
		blob, ok2, release2 := s.Acquire(key) // blocks until the abort
		if !ok2 {
			w := NewWriter()
			w.Uvarint(1)
			blob = w.Seal()
			release2(blob)
		}
		got <- blob
	}()

	release(nil) // abort: the waiter takes over
	blob := <-got
	if blob == nil {
		t.Fatal("successor produced no blob")
	}
	if b, ok3, _ := s.Acquire(key); !ok3 || !bytes.Equal(b, blob) {
		t.Fatal("successor's blob was not published")
	}

	// Double release must be a no-op, not a double-close panic.
	release(nil)
}

// TestStoreDisk checks persistence across Store instances, rejection of
// corrupt files, and atomic-write file hygiene.
func TestStoreDisk(t *testing.T) {
	dir := t.TempDir()
	key := testKey(3)
	w := NewWriter()
	w.Uvarint(99)
	blob := w.Seal()

	s1 := NewStore(dir)
	if _, ok, release := s1.Acquire(key); ok {
		t.Fatal("fresh dir reported a hit")
	} else {
		release(blob)
	}

	// A new store over the same dir must hit from disk.
	s2 := NewStore(dir)
	got, ok, _ := s2.Acquire(key)
	if !ok || !bytes.Equal(got, blob) {
		t.Fatal("persisted blob not served to a second store")
	}

	// Corrupt the file: a third store must miss, not serve garbage.
	path := s2.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 1
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s3 := NewStore(dir)
	if _, ok, release := s3.Acquire(key); ok {
		t.Fatal("corrupt blob served as a hit")
	} else {
		release(blob) // heals the file
	}
	s4 := NewStore(dir)
	if _, ok, _ := s4.Acquire(key); !ok {
		t.Fatal("healed blob not served")
	}

	// No temp-file litter.
	entries, err := filepath.Glob(filepath.Join(dir, key[:2], ".*tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

// pruneBlob returns a sealed blob of fixed size so the byte-budget
// arithmetic in the prune tests is exact.
func pruneBlob() []byte {
	w := NewWriter()
	w.U64s(make([]uint64, 32))
	return w.Seal()
}

// TestStorePruneRacesCapture hammers a byte-bounded shared directory
// from many stores at once — every capture triggers a prune, every
// restore is a disk load racing those prunes (run under -race by
// check.sh). The contract under test: a prune racing a single-flight
// capture or a concurrent reader must degrade to a miss that heals
// through the ordinary leader path, never to a torn or corrupt blob.
func TestStorePruneRacesCapture(t *testing.T) {
	dir := t.TempDir()
	blob := pruneBlob()
	// Room for two blobs: with eight keys in flight, almost every
	// publish pushes the directory over budget and prunes under the
	// other goroutines' feet.
	budget := 2*int64(len(blob)) + int64(len(blob))/2

	const keys = 8
	const workers = 4
	const rounds = 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// A fresh store every round shares only the directory, so
				// each hit is a disk load + verify racing the other
				// stores' prunes rather than an in-memory memo hit.
				s := NewStoreLimit(dir, budget, nil)
				key := testKey(30 + (w+r)%keys)
				b, ok, release := s.Acquire(key)
				if ok {
					if err := Verify(b); err != nil {
						t.Errorf("hit served a corrupt blob: %v", err)
					}
					continue
				}
				release(pruneBlob())
			}
		}(w)
	}
	wg.Wait()

	// Whatever the interleaving, the directory holds only intact blobs:
	// every key either misses (and heals through a new leader) or
	// serves a blob that verifies.
	fresh := NewStoreLimit(dir, 0, nil)
	for i := 30; i < 30+keys; i++ {
		if b, ok, release := fresh.Acquire(testKey(i)); ok {
			if err := Verify(b); err != nil {
				t.Errorf("key %d corrupt after the race: %v", i, err)
			}
		} else {
			release(nil)
		}
	}
}

// storeBlob publishes blob under key through the normal leader path.
func storeBlob(t *testing.T, s *Store, key string, blob []byte) {
	t.Helper()
	_, ok, release := s.Acquire(key)
	if ok {
		t.Fatalf("key %s unexpectedly present before store", key[:8])
	}
	release(blob)
}

// TestStorePruneEvictsLeastRecentlyVerified: with a byte budget, the
// store evicts the blob whose verify-stamp is oldest — a blob that
// recently proved its worth on a disk load survives over an older,
// never-reloaded one.
func TestStorePruneEvictsLeastRecentlyVerified(t *testing.T) {
	dir := t.TempDir()
	var clock int64
	now := func() int64 { clock++; return clock * int64(1e9) }
	blob := pruneBlob()
	budget := 3*int64(len(blob)) + int64(len(blob))/2 // room for 3 blobs

	s := NewStoreLimit(dir, budget, now)
	for i := 10; i <= 12; i++ {
		storeBlob(t, s, testKey(i), pruneBlob())
	}

	// Re-verify key 10 from a second store: its stamp moves past keys
	// 11 and 12, so it must survive the next prune.
	s2 := NewStoreLimit(dir, budget, now)
	if _, ok, _ := s2.Acquire(testKey(10)); !ok {
		t.Fatal("persisted blob not served before prune")
	}

	// A fourth blob pushes the directory over budget: exactly one blob
	// — key 11, the least recently verified — must go.
	storeBlob(t, s2, testKey(13), pruneBlob())

	fresh := NewStoreLimit(dir, 0, nil)
	for _, i := range []int{10, 12, 13} {
		if _, ok, release := fresh.Acquire(testKey(i)); !ok {
			release(nil)
			t.Errorf("key %d evicted, want survivor", i)
		}
	}
	if _, ok, release := fresh.Acquire(testKey(11)); ok {
		t.Error("least-recently-verified blob survived the prune")
	} else {
		release(nil)
	}
}

// TestStorePruneUnboundedAndMiss: a zero budget never prunes, a pruned
// key is an ordinary miss (Acquire elects a leader and the key heals),
// and a survivor corrupted after the prune is also just a miss.
func TestStorePruneUnboundedAndMiss(t *testing.T) {
	dir := t.TempDir()
	blob := pruneBlob()

	unbounded := NewStoreLimit(dir, 0, nil)
	for i := 20; i < 26; i++ {
		storeBlob(t, unbounded, testKey(i), pruneBlob())
	}
	check := NewStoreLimit(dir, 0, nil)
	for i := 20; i < 26; i++ {
		if _, ok, release := check.Acquire(testKey(i)); !ok {
			release(nil)
			t.Fatalf("unbounded store evicted key %d", i)
		}
	}

	// Shrink the budget to one blob: the next write prunes all but the
	// newest.
	tight := NewStoreLimit(dir, int64(len(blob))+int64(len(blob))/2, nil)
	storeBlob(t, tight, testKey(26), pruneBlob())

	after := NewStoreLimit(dir, 0, nil)
	_, survivorOK, _ := after.Acquire(testKey(26))
	if !survivorOK {
		t.Fatal("newest blob evicted by its own prune")
	}
	// A pruned key heals through the ordinary leader path.
	if b, ok, release := after.Acquire(testKey(20)); ok {
		t.Fatalf("pruned key served a blob: %d bytes", len(b))
	} else {
		release(pruneBlob())
	}

	// Corrupting the survivor after the prune degrades it to a miss,
	// exactly like pre-prune corruption.
	path := after.path(testKey(26))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 1
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	post := NewStoreLimit(dir, 0, nil)
	if _, ok, release := post.Acquire(testKey(26)); ok {
		t.Fatal("corrupt post-prune blob served as a hit")
	} else {
		release(nil)
	}
}
