// Package ckpt serializes functional-warm simulator state so a sweep
// can pay each sampling fast-forward once instead of once per config.
//
// The codec is deliberately dumb: a flat append-only byte stream of
// varints (the same encoding family as the trace codec) wrapped in a
// versioned, digest-stamped envelope. There is no reflection and no
// schema — each simulator structure writes and reads its own fields in
// a fixed order, and section tags give corruption and skew errors a
// name instead of a byte offset. Determinism is load-bearing: the same
// state must serialize to the same bytes on every run, so nothing here
// may iterate a map or consult time.
package ckpt

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	// envMagic brands checkpoint blobs (UCPC = µ-op Cache Prefetching
	// Checkpoint).
	envMagic = "UCPC"
	// envVersion is the blob format version. Bump it whenever any
	// structure's field order or meaning changes; stale blobs are then
	// rejected at Open instead of silently misread. (Model-level changes
	// are already keyed out by sim.ModelVersion in the checkpoint key.)
	envVersion = 1
)

// Writer accumulates a checkpoint payload. The zero value is ready to
// use; Seal wraps the payload in the envelope and returns the blob.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the envelope header pre-allocated.
func NewWriter() *Writer {
	w := &Writer{buf: make([]byte, 0, 1<<16)}
	w.buf = append(w.buf, envMagic...)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, envVersion)
	return w
}

// Section writes a named boundary marker. Readers consume it with the
// same name, so a writer/reader skew fails with "section X: got Y"
// instead of decoding garbage numbers.
func (w *Writer) Section(name string) {
	w.Uvarint(uint64(len(name)))
	w.buf = append(w.buf, name...)
}

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Varint appends a signed (zigzag) varint.
func (w *Writer) Varint(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Byte appends one raw byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// I8 appends a signed 8-bit counter as one raw byte.
func (w *Writer) I8(v int8) { w.buf = append(w.buf, byte(v)) }

// U64s appends a length-prefixed []uint64 (each element a uvarint —
// tag and valid-bit words compress well, dense bitmaps stay bounded).
func (w *Writer) U64s(s []uint64) {
	w.Uvarint(uint64(len(s)))
	for _, v := range s {
		w.Uvarint(v)
	}
}

// U8s appends a length-prefixed []uint8 verbatim.
func (w *Writer) U8s(s []uint8) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// I8s appends a length-prefixed []int8 verbatim.
func (w *Writer) I8s(s []int8) {
	w.Uvarint(uint64(len(s)))
	for _, v := range s {
		w.buf = append(w.buf, byte(v))
	}
}

// Len returns the current payload size (envelope included).
func (w *Writer) Len() int { return len(w.buf) }

// Seal stamps the SHA-256 of everything written so far onto the end and
// returns the finished blob. The Writer must not be used afterwards.
func (w *Writer) Seal() []byte {
	sum := sha256.Sum256(w.buf)
	w.buf = append(w.buf, sum[:]...)
	blob := w.buf
	w.buf = nil
	return blob
}

// Verify checks a blob's envelope (magic, version, digest) without
// decoding the payload. It is what the store uses to decide whether an
// on-disk file is a usable checkpoint or a miss.
func Verify(blob []byte) error {
	const hdr = len(envMagic) + 4
	if len(blob) < hdr+sha256.Size {
		return errors.New("ckpt: blob truncated")
	}
	if string(blob[:4]) != envMagic {
		return errors.New("ckpt: bad magic")
	}
	if v := binary.LittleEndian.Uint32(blob[4:8]); v != envVersion {
		return fmt.Errorf("ckpt: unsupported version %d", v)
	}
	body, tail := blob[:len(blob)-sha256.Size], blob[len(blob)-sha256.Size:]
	if sha256.Sum256(body) != [sha256.Size]byte(tail) {
		return errors.New("ckpt: digest mismatch")
	}
	return nil
}

// Reader decodes a sealed blob. All read methods are sticky on error:
// after the first failure every subsequent read returns zero values, so
// restore code can decode straight through and check Err once.
type Reader struct {
	data []byte
	off  int
	err  error
}

// Open verifies the envelope and returns a Reader positioned at the
// first payload byte.
func Open(blob []byte) (*Reader, error) {
	if err := Verify(blob); err != nil {
		return nil, err
	}
	return &Reader{data: blob[:len(blob)-sha256.Size], off: len(envMagic) + 4}, nil
}

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Failf records a caller-detected decode failure (e.g. a geometry
// mismatch the caller checks itself) with the usual sticky semantics.
func (r *Reader) Failf(format string, args ...any) {
	r.fail(fmt.Errorf("ckpt: "+format, args...))
}

// Section consumes a boundary marker, failing if the stream holds a
// different name (field-order skew between save and load code).
func (r *Reader) Section(name string) {
	n := r.Uvarint()
	if r.err != nil {
		return
	}
	if n > uint64(len(r.data)-r.off) {
		r.fail(fmt.Errorf("ckpt: section %q: truncated name", name))
		return
	}
	got := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	if got != name {
		r.fail(fmt.Errorf("ckpt: section %q: got %q", name, got))
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail(errors.New("ckpt: truncated uvarint"))
		return 0
	}
	r.off += n
	return v
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail(errors.New("ckpt: truncated varint"))
		return 0
	}
	r.off += n
	return v
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.data) {
		r.fail(errors.New("ckpt: truncated byte"))
		return 0
	}
	b := r.data[r.off]
	r.off++
	return b
}

// Bool reads a bool, rejecting bytes other than 0/1.
func (r *Reader) Bool() bool {
	b := r.Byte()
	if r.err == nil && b > 1 {
		r.fail(fmt.Errorf("ckpt: bad bool byte %d", b))
	}
	return b == 1
}

// I8 reads a signed 8-bit counter.
func (r *Reader) I8() int8 { return int8(r.Byte()) }

// U64sInto fills dst from a length-prefixed []uint64, failing on a
// length mismatch — the caller's slice length encodes the configured
// geometry, so a mismatch means the blob belongs to a different config.
func (r *Reader) U64sInto(dst []uint64) {
	n := r.Uvarint()
	if r.err != nil {
		return
	}
	if n != uint64(len(dst)) {
		r.fail(fmt.Errorf("ckpt: []uint64 length %d, want %d", n, len(dst)))
		return
	}
	// Restore-path hot loop (large tag/target arrays): decode in place
	// with a single-byte fast path instead of one sticky-error method
	// call per element.
	data, off := r.data, r.off
	for i := range dst {
		if off < len(data) && data[off] < 0x80 {
			dst[i] = uint64(data[off])
			off++
			continue
		}
		v, w := binary.Uvarint(data[off:])
		if w <= 0 {
			r.fail(errors.New("ckpt: truncated uvarint"))
			return
		}
		dst[i] = v
		off += w
	}
	r.off = off
}

// U8sInto fills dst from a length-prefixed []uint8 with the same
// length check as U64sInto.
func (r *Reader) U8sInto(dst []uint8) {
	n := r.Uvarint()
	if r.err != nil {
		return
	}
	if n != uint64(len(dst)) {
		r.fail(fmt.Errorf("ckpt: []uint8 length %d, want %d", n, len(dst)))
		return
	}
	if int(n) > len(r.data)-r.off {
		r.fail(errors.New("ckpt: truncated []uint8"))
		return
	}
	copy(dst, r.data[r.off:r.off+int(n)])
	r.off += int(n)
}

// I8sInto fills dst from a length-prefixed []int8 with the same length
// check as U64sInto.
func (r *Reader) I8sInto(dst []int8) {
	n := r.Uvarint()
	if r.err != nil {
		return
	}
	if n != uint64(len(dst)) {
		r.fail(fmt.Errorf("ckpt: []int8 length %d, want %d", n, len(dst)))
		return
	}
	if int(n) > len(r.data)-r.off {
		r.fail(errors.New("ckpt: truncated []int8"))
		return
	}
	for i := range dst {
		dst[i] = int8(r.data[r.off+i])
	}
	r.off += int(n)
}

// Close fails unless the payload was consumed exactly: trailing bytes
// mean the reader and writer disagree about the format.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return fmt.Errorf("ckpt: %d trailing payload bytes", len(r.data)-r.off)
	}
	return nil
}
