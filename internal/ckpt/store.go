package ckpt

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Store is a content-addressed checkpoint cache with single-flight
// admission: when N sweep jobs sharing a warm key start together,
// exactly one runs the fast-forward and publishes the blob; the others
// block on Acquire until it lands and then restore from it. Blobs are
// memoized in memory for the life of the Store and, when dir is
// non-empty, persisted to dir (sharded like the runq result cache) so
// later processes reuse them.
//
// A Store is safe for concurrent use by any number of goroutines.
type Store struct {
	dir string

	// maxBytes bounds the on-disk footprint (0: unbounded); now is the
	// injected wall clock (unix nanoseconds) that stamps blob files on
	// every successful verify, so pruning evicts the least-recently-
	// verified blobs first. The clock is injected from cmd/ — internal
	// packages never read wall time (ucplint wallclock rule) — and a nil
	// clock degrades to least-recently-written order (file mtimes).
	maxBytes int64
	now      func() int64

	mu      sync.Mutex
	mem     map[string][]byte
	flights map[string]chan struct{}
	hits    int
	misses  int

	// pruneMu serializes pruning passes; pruning walks the directory
	// and must not run under mu (disk latency would serialize every
	// unrelated Acquire).
	pruneMu sync.Mutex
}

// NewStore returns a store persisting to dir; an empty dir keeps
// checkpoints in memory only (still deduplicated within the process).
// The on-disk footprint is unbounded; see NewStoreLimit.
func NewStore(dir string) *Store {
	return NewStoreLimit(dir, 0, nil)
}

// NewStoreLimit is NewStore with an on-disk size bound: after every
// persisted blob, least-recently-verified blobs are removed until the
// directory's checkpoint bytes fit within maxBytes (0: unbounded).
// "Recently verified" is tracked by re-stamping a blob file's mtime
// from the injected now clock (unix nanoseconds) each time a disk load
// verifies; with a nil clock, eviction falls back to write order. The
// in-memory memo is unaffected — a pruned blob simply reads as a miss
// in later processes, exactly like a corrupt one.
func NewStoreLimit(dir string, maxBytes int64, now func() int64) *Store {
	return &Store{
		dir:      dir,
		maxBytes: maxBytes,
		now:      now,
		mem:      make(map[string][]byte),
		flights:  make(map[string]chan struct{}),
	}
}

// path maps a key to its blob file, sharded by the leading digest byte.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".ckpt")
}

// Acquire looks up key. Three outcomes:
//
//   - hit: returns (blob, true, nil) — restore from blob.
//   - leader: returns (nil, false, release) — the caller must run the
//     fast-forward, then call release(blob) to publish the sealed blob,
//     or release(nil) to abort (on error or cancellation) so a waiter
//     can take over leadership.
//   - follower: blocks until the leader releases, then resolves to one
//     of the above.
//
// The blob returned on a hit is shared; callers must treat it as
// read-only (Reader never mutates it).
func (s *Store) Acquire(key string) (blob []byte, ok bool, release func([]byte)) {
	for {
		s.mu.Lock()
		if b, hit := s.mem[key]; hit {
			s.hits++
			s.mu.Unlock()
			return b, true, nil
		}
		if b, hit := s.loadDisk(key); hit {
			s.mem[key] = b
			s.hits++
			s.mu.Unlock()
			return b, true, nil
		}
		flight, inFlight := s.flights[key]
		if !inFlight {
			done := make(chan struct{})
			s.flights[key] = done
			s.misses++
			s.mu.Unlock()
			var once sync.Once
			return nil, false, func(b []byte) {
				once.Do(func() { s.release(key, done, b) })
			}
		}
		s.mu.Unlock()
		<-flight
	}
}

// release publishes the leader's blob (or aborts on nil) and wakes all
// waiters. Waiters re-run the Acquire loop: after a publish they hit
// the memo; after an abort one of them becomes the new leader.
func (s *Store) release(key string, done chan struct{}, blob []byte) {
	s.mu.Lock()
	if blob != nil {
		s.mem[key] = blob
	}
	delete(s.flights, key)
	s.mu.Unlock()
	close(done)
	if blob != nil {
		// Persist outside the lock: disk latency must not serialize
		// unrelated keys. Write failures are non-fatal — the in-memory
		// memo already serves this process.
		s.storeDisk(key, blob)
	}
}

// loadDisk fetches a persisted blob, verifying the envelope; corrupt or
// foreign files are misses (and later overwritten). Called with s.mu
// held — file reads under the lock are acceptable here because misses
// are the common case and hits immediately memoize.
func (s *Store) loadDisk(key string) ([]byte, bool) {
	if s.dir == "" || len(key) < 2 {
		return nil, false
	}
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	if Verify(b) != nil {
		return nil, false
	}
	if s.now != nil {
		// Touch on verify: the blob proved its worth, so it moves to the
		// back of the pruning order. Best-effort — a failed Chtimes only
		// costs eviction priority.
		t := time.Unix(0, s.now())
		os.Chtimes(s.path(key), t, t)
	}
	return b, true
}

// storeDisk persists a blob atomically (temp + rename) so concurrent
// readers — or a second process sharing the directory — never observe a
// torn checkpoint.
func (s *Store) storeDisk(key string, blob []byte) {
	if s.dir == "" || len(key) < 2 {
		return
	}
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key+".tmp-")
	if err != nil {
		return
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if s.now != nil {
		t := time.Unix(0, s.now())
		os.Chtimes(path, t, t)
	}
	if s.maxBytes > 0 {
		s.prune()
	}
}

// prune removes least-recently-verified checkpoint blobs until the
// directory's .ckpt bytes fit within maxBytes. Boundary-checkpoint
// capture (internal/tpar) writes one blob per segment boundary per
// distinct warm config, so an unbounded store grows with every sweep;
// the bound turns it into an LRU tier. Concurrent writers both prune;
// pruneMu keeps the walk-and-delete passes from interleaving, and a
// blob deleted under a concurrent reader's feet is indistinguishable
// from a miss (ReadFile fails, Acquire elects a leader).
func (s *Store) prune() {
	s.pruneMu.Lock()
	defer s.pruneMu.Unlock()
	type blob struct {
		path string
		size int64
		mod  time.Time
	}
	var blobs []blob
	var total int64
	filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".ckpt") {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		blobs = append(blobs, blob{path: path, size: info.Size(), mod: info.ModTime()})
		total += info.Size()
		return nil
	})
	if total <= s.maxBytes {
		return
	}
	// Oldest verify-stamp first; ties break on path so two stores
	// pruning the same directory converge on the same victims.
	sort.Slice(blobs, func(i, j int) bool {
		if !blobs[i].mod.Equal(blobs[j].mod) {
			return blobs[i].mod.Before(blobs[j].mod)
		}
		return blobs[i].path < blobs[j].path
	})
	for _, b := range blobs {
		if total <= s.maxBytes {
			break
		}
		if os.Remove(b.path) == nil {
			total -= b.size
		}
	}
}

// Len reports how many checkpoints are memoized in memory (testing and
// progress reporting).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// Hits reports how many Acquire calls resolved to an existing blob
// (memory or disk) over the store's lifetime.
func (s *Store) Hits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

// Misses reports how many Acquire calls found no blob and elected a
// leader to compute one (aborted flights count once per re-election).
// Together with Hits it is the shared-tier hit-rate surface sweepd's
// /v1/statz reports.
func (s *Store) Misses() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.misses
}

// KeyError annotates a checkpoint failure with its key for diagnostics.
func KeyError(key string, err error) error {
	return fmt.Errorf("ckpt %s: %w", key[:min(12, len(key))], err)
}
