package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Store is a content-addressed checkpoint cache with single-flight
// admission: when N sweep jobs sharing a warm key start together,
// exactly one runs the fast-forward and publishes the blob; the others
// block on Acquire until it lands and then restore from it. Blobs are
// memoized in memory for the life of the Store and, when dir is
// non-empty, persisted to dir (sharded like the runq result cache) so
// later processes reuse them.
//
// A Store is safe for concurrent use by any number of goroutines.
type Store struct {
	dir string

	mu      sync.Mutex
	mem     map[string][]byte
	flights map[string]chan struct{}
	hits    int
	misses  int
}

// NewStore returns a store persisting to dir; an empty dir keeps
// checkpoints in memory only (still deduplicated within the process).
func NewStore(dir string) *Store {
	return &Store{
		dir:     dir,
		mem:     make(map[string][]byte),
		flights: make(map[string]chan struct{}),
	}
}

// path maps a key to its blob file, sharded by the leading digest byte.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".ckpt")
}

// Acquire looks up key. Three outcomes:
//
//   - hit: returns (blob, true, nil) — restore from blob.
//   - leader: returns (nil, false, release) — the caller must run the
//     fast-forward, then call release(blob) to publish the sealed blob,
//     or release(nil) to abort (on error or cancellation) so a waiter
//     can take over leadership.
//   - follower: blocks until the leader releases, then resolves to one
//     of the above.
//
// The blob returned on a hit is shared; callers must treat it as
// read-only (Reader never mutates it).
func (s *Store) Acquire(key string) (blob []byte, ok bool, release func([]byte)) {
	for {
		s.mu.Lock()
		if b, hit := s.mem[key]; hit {
			s.hits++
			s.mu.Unlock()
			return b, true, nil
		}
		if b, hit := s.loadDisk(key); hit {
			s.mem[key] = b
			s.hits++
			s.mu.Unlock()
			return b, true, nil
		}
		flight, inFlight := s.flights[key]
		if !inFlight {
			done := make(chan struct{})
			s.flights[key] = done
			s.misses++
			s.mu.Unlock()
			var once sync.Once
			return nil, false, func(b []byte) {
				once.Do(func() { s.release(key, done, b) })
			}
		}
		s.mu.Unlock()
		<-flight
	}
}

// release publishes the leader's blob (or aborts on nil) and wakes all
// waiters. Waiters re-run the Acquire loop: after a publish they hit
// the memo; after an abort one of them becomes the new leader.
func (s *Store) release(key string, done chan struct{}, blob []byte) {
	s.mu.Lock()
	if blob != nil {
		s.mem[key] = blob
	}
	delete(s.flights, key)
	s.mu.Unlock()
	close(done)
	if blob != nil {
		// Persist outside the lock: disk latency must not serialize
		// unrelated keys. Write failures are non-fatal — the in-memory
		// memo already serves this process.
		s.storeDisk(key, blob)
	}
}

// loadDisk fetches a persisted blob, verifying the envelope; corrupt or
// foreign files are misses (and later overwritten). Called with s.mu
// held — file reads under the lock are acceptable here because misses
// are the common case and hits immediately memoize.
func (s *Store) loadDisk(key string) ([]byte, bool) {
	if s.dir == "" || len(key) < 2 {
		return nil, false
	}
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	if Verify(b) != nil {
		return nil, false
	}
	return b, true
}

// storeDisk persists a blob atomically (temp + rename) so concurrent
// readers — or a second process sharing the directory — never observe a
// torn checkpoint.
func (s *Store) storeDisk(key string, blob []byte) {
	if s.dir == "" || len(key) < 2 {
		return
	}
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key+".tmp-")
	if err != nil {
		return
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}

// Len reports how many checkpoints are memoized in memory (testing and
// progress reporting).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// Hits reports how many Acquire calls resolved to an existing blob
// (memory or disk) over the store's lifetime.
func (s *Store) Hits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

// Misses reports how many Acquire calls found no blob and elected a
// leader to compute one (aborted flights count once per re-election).
// Together with Hits it is the shared-tier hit-rate surface sweepd's
// /v1/statz reports.
func (s *Store) Misses() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.misses
}

// KeyError annotates a checkpoint failure with its key for diagnostics.
func KeyError(key string, err error) error {
	return fmt.Errorf("ckpt %s: %w", key[:min(12, len(key))], err)
}
