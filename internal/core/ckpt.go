package core

import "ucp/internal/ckpt"

// Checkpoint hooks: during the sampled fast-forward the engine only
// shadow-trains (FunctionalObserve / WarmCond) — Alt-BP with its
// demand-path history (altBPHist is the predictor's own history, so
// saving the predictor covers it) and Alt-Ind with its own history.
// Walk state (altHist, altIndWalk, the Alt-FTQ, counters) is touched
// only when a walk starts on the detailed path, so at the capture
// point it equals freshly constructed state.

// SaveWarmState serializes the alternate-path predictor state the
// functional fast-forward mutates.
func (e *Engine) SaveWarmState(w *ckpt.Writer) {
	w.Section("ucp-engine")
	e.altBP.SaveState(w)
	w.Bool(e.altInd != nil)
	if e.altInd != nil {
		e.altInd.SaveState(w)
	}
}

// LoadWarmState restores state saved by SaveWarmState into an
// identically configured engine. Errors surface on the reader.
func (e *Engine) LoadWarmState(r *ckpt.Reader) {
	r.Section("ucp-engine")
	e.altBP.LoadState(r)
	has := r.Bool()
	if r.Err() != nil {
		return
	}
	if has != (e.altInd != nil) {
		r.Failf("ucp-engine: checkpoint altInd presence %v, machine %v", has, e.altInd != nil)
		return
	}
	if e.altInd != nil {
		e.altInd.LoadState(r)
	}
}
