// Package core implements UCP — alternate path µ-op cache prefetching —
// the paper's primary contribution (§IV). When the branch prediction
// unit classifies a conditional branch as hard-to-predict (H2P), the
// engine starts generating addresses along the path *opposite* to the
// prediction using a small dedicated predictor stack (Alt-BP, Alt-Ind,
// Alt-RAS) and the shared banked BTB, prefetches the corresponding
// lines, decodes them with dedicated decoders, and installs the µ-ops
// into the µ-op cache so a likely upcoming pipeline refill hits there.
package core

import (
	"fmt"

	"ucp/internal/bpred"
	"ucp/internal/ittage"
)

// Config selects a UCP variant and sizes its structures (§IV-F).
// Validate rejects geometries the modeled hardware could not build;
// ucplint's configbounds rule proves it covers every numeric field.
//
//ucplint:config
type Config struct {
	// Estimator selects the H2P classifier: the paper's UCP-Conf or the
	// TAGE-Conf baseline (Fig. 12b).
	Estimator bpred.Estimator
	// AltBP sizes the dedicated alternate conditional predictor (8KB).
	AltBP bpred.Config
	// UseAltInd enables the dedicated 4KB ITTAGE for alternate-path
	// indirect branches; without it the path stops at indirect branches
	// (UCP-NoIND, Fig. 12a).
	UseAltInd bool
	// AltInd sizes the alternate indirect predictor.
	AltInd ittage.Config
	// AltRASEntries sizes the alternate return address stack (16).
	AltRASEntries int
	// AltFTQEntries bounds the alternate fetch target queue (24 µ-op
	// entry addresses).
	AltFTQEntries int
	// UopMSHRs bounds in-flight µ-op cache prefetches (32).
	UopMSHRs int
	// AltDecodeQueue bounds prefetched entries awaiting decode (32).
	AltDecodeQueue int
	// AltDecodeWidth is the dedicated decoder throughput (6 µ-ops).
	AltDecodeWidth int
	// StopThreshold is the stop-heuristic saturation value (500; §IV-E,
	// Fig. 15). The paper describes the counter as "6-bit saturated" yet
	// uses thresholds up to 10000 in the sweep — we implement a wide
	// counter and keep the separate 6-bit no-branch instruction counter.
	StopThreshold int
	// MaxNoBranchInsts stops a path after this many instructions without
	// any BTB-known branch (the 6-bit counter of §IV-E).
	MaxNoBranchInsts int
	// WalkWidth is how many alternate-path instructions are scanned per
	// cycle (one 16-address prediction window).
	WalkWidth int

	// TillL1I prefetches only into the L1I, with no decode or µ-op
	// cache fill (UCP-TillL1I; §VI-E).
	TillL1I bool
	// SharedDecoders reuses the demand decoders: alternate-path decode
	// proceeds only while the demand path streams from the µ-op cache
	// (UCP-SharedDecoders; §VI-F).
	SharedDecoders bool
	// IdealBTBBanking removes BTB bank conflicts between the demand and
	// alternate paths (UCP-NoBTBConflict; §VI-F).
	IdealBTBBanking bool
}

// DefaultConfig is the paper's main proposal: UCP with a 4KB Alt-Ind,
// UCP-Conf, and a stop threshold of 500 (12.95KB total overhead).
func DefaultConfig() Config {
	return Config{
		Estimator:        bpred.EstimatorUCPConf,
		AltBP:            bpred.Config8KB(),
		UseAltInd:        true,
		AltInd:           ittage.Config4KB(),
		AltRASEntries:    16,
		AltFTQEntries:    24,
		UopMSHRs:         32,
		AltDecodeQueue:   32,
		AltDecodeWidth:   6,
		StopThreshold:    500,
		MaxNoBranchInsts: 63,
		WalkWidth:        16,
	}
}

// NoIndConfig is UCP without the dedicated indirect predictor (8.95KB).
func NoIndConfig() Config {
	c := DefaultConfig()
	c.UseAltInd = false
	return c
}

// Validate rejects impossible UCP geometries: zero or negative queue
// and decoder widths, thresholds outside the stop heuristic's modeled
// range, and no-branch limits wider than the 6-bit hardware counter of
// §IV-E. Sub-predictor configurations are validated recursively.
func (c Config) Validate() error {
	if c.Estimator != bpred.EstimatorUCPConf && c.Estimator != bpred.EstimatorTageConf {
		return fmt.Errorf("core: unknown estimator %d", c.Estimator)
	}
	if err := c.AltBP.Validate(); err != nil {
		return fmt.Errorf("core: AltBP: %w", err)
	}
	if err := c.AltInd.Validate(); err != nil {
		return fmt.Errorf("core: AltInd: %w", err)
	}
	if c.AltRASEntries <= 0 {
		return fmt.Errorf("core: AltRASEntries must be positive, got %d", c.AltRASEntries)
	}
	if c.AltFTQEntries < 4 {
		// The walker reserves room for one 4-spec prediction window.
		return fmt.Errorf("core: AltFTQEntries must be at least 4, got %d", c.AltFTQEntries)
	}
	if c.UopMSHRs <= 0 {
		return fmt.Errorf("core: UopMSHRs must be positive, got %d", c.UopMSHRs)
	}
	if c.AltDecodeQueue <= 0 {
		return fmt.Errorf("core: AltDecodeQueue must be positive, got %d", c.AltDecodeQueue)
	}
	if c.AltDecodeWidth <= 0 {
		return fmt.Errorf("core: AltDecodeWidth must be positive, got %d", c.AltDecodeWidth)
	}
	if c.StopThreshold <= 0 || c.StopThreshold > 1_000_000 {
		return fmt.Errorf("core: StopThreshold must be in [1,1000000], got %d", c.StopThreshold)
	}
	if c.MaxNoBranchInsts <= 0 || c.MaxNoBranchInsts > 63 {
		return fmt.Errorf("core: MaxNoBranchInsts must fit the 6-bit counter [1,63], got %d", c.MaxNoBranchInsts)
	}
	if c.WalkWidth <= 0 || c.WalkWidth > 64 {
		return fmt.Errorf("core: WalkWidth must be in [1,64], got %d", c.WalkWidth)
	}
	return nil
}

// Stats aggregates UCP engine counters.
type Stats struct {
	// Triggers counts alternate paths started.
	Triggers uint64
	// TriggersBlocked counts H2P branches whose alternate path could not
	// start (predicted not-taken with a BTB target miss).
	TriggersBlocked uint64
	// Stop reasons.
	StopThreshold uint64
	StopNoBranch  uint64
	StopIndirect  uint64
	StopRASEmpty  uint64
	StopNewH2P    uint64
	// Walked instructions and generated entry addresses.
	WalkedInsts      uint64
	EntriesGenerated uint64
	// Tag-check outcomes on the Alt-FTQ (§IV-D).
	TagChecks    uint64
	TagCheckHits uint64
	// Prefetch traffic.
	PrefetchesIssued uint64
	PrefetchDropped  uint64
	LinesPrefetched  uint64
	FillsInserted    uint64
	// Conflicts.
	BTBConflicts     uint64
	BTBStolenCycles  uint64
	UopBankConflicts uint64
	MSHRFull         uint64
	AltFTQFull       uint64
	DecodeQFull      uint64
}
