package core

import (
	"strings"
	"testing"

	"ucp/internal/bpred"
)

func TestValidateAcceptsShippedConfigs(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), NoIndConfig()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("shipped config rejected: %v", err)
		}
	}
}

// TestValidateRejectsInvalidConfigs drives Validate through every
// numeric bound: zero/negative widths, counters wider than their
// declared bit budgets, thresholds out of range, and broken
// sub-predictor geometries.
func TestValidateRejectsInvalidConfigs(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantSub string
	}{
		{"unknown estimator", func(c *Config) { c.Estimator = 99 }, "estimator"},
		{"zero alt-RAS", func(c *Config) { c.AltRASEntries = 0 }, "AltRASEntries"},
		{"negative alt-RAS", func(c *Config) { c.AltRASEntries = -4 }, "AltRASEntries"},
		{"tiny alt-FTQ", func(c *Config) { c.AltFTQEntries = 2 }, "AltFTQEntries"},
		{"zero MSHRs", func(c *Config) { c.UopMSHRs = 0 }, "UopMSHRs"},
		{"negative decode queue", func(c *Config) { c.AltDecodeQueue = -1 }, "AltDecodeQueue"},
		{"zero decode width", func(c *Config) { c.AltDecodeWidth = 0 }, "AltDecodeWidth"},
		{"zero stop threshold", func(c *Config) { c.StopThreshold = 0 }, "StopThreshold"},
		{"huge stop threshold", func(c *Config) { c.StopThreshold = 2_000_000 }, "StopThreshold"},
		{"no-branch counter overflow", func(c *Config) { c.MaxNoBranchInsts = 64 }, "6-bit"},
		{"zero no-branch limit", func(c *Config) { c.MaxNoBranchInsts = 0 }, "6-bit"},
		{"zero walk width", func(c *Config) { c.WalkWidth = 0 }, "WalkWidth"},
		{"huge walk width", func(c *Config) { c.WalkWidth = 128 }, "WalkWidth"},
		{"broken Alt-BP tables", func(c *Config) { c.AltBP.Tage.Tables = 99 }, "Tables"},
		{"broken Alt-BP counter width", func(c *Config) { c.AltBP.Tage.CtrBits = 9 }, "CtrBits"},
		{"broken Alt-BP history order", func(c *Config) { c.AltBP.Tage.MaxHist = 2; c.AltBP.Tage.MinHist = 8 }, "MaxHist"},
		{"zero Alt-BP loop table", func(c *Config) { c.AltBP.LoopIdxBits = 0 }, "LoopIdxBits"},
		{"broken Alt-Ind tag width", func(c *Config) { c.AltInd.TagBits = 20 }, "TagBits"},
		{"zero Alt-Ind base", func(c *Config) { c.AltInd.BaseBits = 0 }, "BaseBits"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("Validate accepted an invalid config")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestValidateEstimators(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Estimator = bpred.EstimatorTageConf
	if err := cfg.Validate(); err != nil {
		t.Fatalf("TAGE-Conf estimator rejected: %v", err)
	}
}
