package core

import (
	"testing"

	"ucp/internal/bpred"
	"ucp/internal/btb"
	"ucp/internal/cache"
	"ucp/internal/frontend"
	"ucp/internal/isa"
	"ucp/internal/ittage"
	"ucp/internal/ras"
	"ucp/internal/trace"
	"ucp/internal/uopcache"
)

// fakeCode is a map-backed CodeInfo.
type fakeCode map[uint64]isa.Class

func (f fakeCode) ClassAt(pc uint64) (isa.Class, bool) {
	c, ok := f[pc]
	return c, ok
}

// rig builds an engine over an idle frontend whose structures we can
// populate directly.
func rig(cfg Config, code CodeInfo) (*Engine, *frontend.Frontend) {
	mem := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	pred := bpred.NewTageSCL(bpred.Config8KB())
	b := btb.New(btb.UCPConfig())
	r := ras.New(64)
	ind := ittage.New(ittage.Config4KB())
	u := uopcache.New(uopcache.DefaultConfig())
	fe := frontend.New(frontend.DefaultConfig(), trace.NewSliceSource(nil),
		pred, b, r, ind, u, mem, frontend.Ideal{})
	e := New(cfg, fe, code)
	fe.SetHook(e)
	return e, fe
}

// h2pPrediction returns a Prediction that UCP-Conf classifies as H2P.
func h2pPrediction() bpred.Prediction {
	return bpred.Prediction{
		Taken:      false,
		Source:     bpred.SrcHitBank,
		TageSource: bpred.SrcHitBank,
		// Unsaturated HitBank counter → hard to predict.
		ProviderCtr: 0,
		ProviderSat: false,
	}
}

// highConfPrediction returns a Prediction UCP-Conf trusts.
func highConfPrediction() bpred.Prediction {
	return bpred.Prediction{
		Taken:       true,
		Source:      bpred.SrcHitBank,
		TageSource:  bpred.SrcHitBank,
		ProviderCtr: 3,
		ProviderSat: true,
	}
}

// straightCode fills a fakeCode with ALU instructions over [base, end).
func straightCode(base, end uint64) fakeCode {
	f := fakeCode{}
	for pc := base; pc < end; pc += 4 {
		f[pc] = isa.ALU
	}
	return f
}

func TestTriggerOnH2PPredictedTaken(t *testing.T) {
	code := straightCode(0x1000, 0x2000)
	e, _ := rig(DefaultConfig(), code)
	p := h2pPrediction()
	p.Taken = true
	// Predicted taken → alternate path is the fall-through; no BTB
	// target needed.
	e.OnCond(0x1000, &p, true, 0, false, 0)
	if e.Stats().Triggers != 1 {
		t.Fatalf("triggers %d", e.Stats().Triggers)
	}
	if !e.active || e.altPC != 0x1004 {
		t.Fatalf("alternate path at %#x active=%v, want 0x1004", e.altPC, e.active)
	}
}

func TestTriggerBlockedWithoutBTBTarget(t *testing.T) {
	e, _ := rig(DefaultConfig(), straightCode(0x1000, 0x2000))
	p := h2pPrediction()
	p.Taken = false
	// Predicted not-taken → alternate is the taken target, unknown here.
	e.OnCond(0x1000, &p, false, 0, false, 0)
	if e.Stats().Triggers != 0 || e.Stats().TriggersBlocked != 1 {
		t.Fatalf("stats %+v", e.Stats())
	}
}

func TestNoTriggerOnHighConfidence(t *testing.T) {
	e, _ := rig(DefaultConfig(), straightCode(0x1000, 0x2000))
	p := highConfPrediction()
	e.OnCond(0x1000, &p, true, 0x5000, true, 0)
	if e.Stats().Triggers != 0 {
		t.Fatal("high-confidence branch triggered an alternate path")
	}
}

func TestWalkPrefetchesAndFills(t *testing.T) {
	// Straight-line alternate path: the engine must generate entries,
	// prefetch their lines, and insert prefetched entries.
	code := straightCode(0x1000, 0x1400)
	e, fe := rig(DefaultConfig(), code)
	p := h2pPrediction()
	p.Taken = true
	e.OnCond(0x1000, &p, true, 0, false, 0)
	for now := uint64(1); now < 600; now++ {
		e.Cycle(now)
	}
	s := e.Stats()
	if s.EntriesGenerated == 0 || s.PrefetchesIssued == 0 {
		t.Fatalf("no prefetch traffic: %+v", s)
	}
	if s.FillsInserted == 0 {
		t.Fatal("no µ-op cache fills")
	}
	// The fall-through region entry must be resident and marked
	// prefetched.
	if !fe.Uop.Probe(0x1004) {
		t.Fatal("alternate-path entry not in the µ-op cache")
	}
	if fe.Uop.Stats().PrefetchInserts == 0 {
		t.Fatal("fills not marked as prefetched")
	}
}

func TestStopOnNoBranchCounter(t *testing.T) {
	// An empty BTB: the path must stop after MaxNoBranchInsts (§IV-E).
	e, _ := rig(DefaultConfig(), straightCode(0x1000, 0x10000))
	p := h2pPrediction()
	p.Taken = true
	e.OnCond(0x1000, &p, true, 0, false, 0)
	for now := uint64(1); now < 100; now++ {
		e.Cycle(now)
	}
	s := e.Stats()
	if s.StopNoBranch != 1 {
		t.Fatalf("StopNoBranch=%d stats=%+v", s.StopNoBranch, s)
	}
	if e.active {
		t.Fatal("path still active after the no-branch stop")
	}
	if s.WalkedInsts > uint64(DefaultConfig().MaxNoBranchInsts)+1 {
		t.Fatalf("walked %d insts past the 6-bit counter", s.WalkedInsts)
	}
}

func TestStopOnIndirectWithoutAltInd(t *testing.T) {
	code := straightCode(0x1000, 0x2000)
	code[0x1010] = isa.IndirectJump
	e, fe := rig(NoIndConfig(), code)
	fe.BTB.Insert(0x1010, 0x3000, btb.KindIndirect)
	p := h2pPrediction()
	p.Taken = true
	e.OnCond(0x1000, &p, true, 0, false, 0)
	e.Cycle(1)
	if e.Stats().StopIndirect != 1 {
		t.Fatalf("StopIndirect=%d", e.Stats().StopIndirect)
	}
}

func TestAltIndContinuesThroughIndirect(t *testing.T) {
	code := straightCode(0x1000, 0x2000)
	code[0x1010] = isa.IndirectJump
	e, fe := rig(DefaultConfig(), code)
	fe.BTB.Insert(0x1010, 0x3000, btb.KindIndirect)
	// Train the Alt-Ind shadow so it knows the target.
	for i := 0; i < 8; i++ {
		e.OnUncond(0x1010, isa.IndirectJump, 0x1800, uint64(i))
	}
	p := h2pPrediction()
	p.Taken = true
	e.OnCond(0x1000, &p, true, 0, false, 100)
	e.Cycle(101)
	if e.Stats().StopIndirect != 0 {
		t.Fatal("path stopped at a predictable indirect despite Alt-Ind")
	}
	if !e.active {
		t.Fatal("path not active after the indirect")
	}
	if e.altPC != 0x1800 {
		t.Fatalf("altPC %#x, want the Alt-Ind target 0x1800", e.altPC)
	}
}

func TestFollowsBTBDirectJump(t *testing.T) {
	code := straightCode(0x1000, 0x9000)
	code[0x100c] = isa.DirectJump
	e, fe := rig(DefaultConfig(), code)
	fe.BTB.Insert(0x100c, 0x8000, btb.KindDirect)
	p := h2pPrediction()
	p.Taken = true
	e.OnCond(0x1000, &p, true, 0, false, 0)
	e.Cycle(1)
	if e.altPC != 0x8000 {
		t.Fatalf("altPC %#x, want direct target 0x8000", e.altPC)
	}
}

func TestNewH2PRestartsPath(t *testing.T) {
	e, _ := rig(DefaultConfig(), straightCode(0x1000, 0x20000))
	p := h2pPrediction()
	p.Taken = true
	e.OnCond(0x1000, &p, true, 0, false, 0)
	e.Cycle(1) // generate some Alt-FTQ occupancy
	p2 := h2pPrediction()
	p2.Taken = true
	e.OnCond(0x4000, &p2, true, 0, false, 2)
	s := e.Stats()
	if s.Triggers != 2 || s.StopNewH2P != 1 {
		t.Fatalf("stats %+v", s)
	}
	if e.altPC != 0x4004 {
		t.Fatalf("altPC %#x after restart", e.altPC)
	}
	if e.ftqUsed != 0 {
		t.Fatal("Alt-FTQ not flushed on restart")
	}
}

func TestTillL1IDoesNotFill(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TillL1I = true
	code := straightCode(0x1000, 0x1400)
	e, fe := rig(cfg, code)
	p := h2pPrediction()
	p.Taken = true
	e.OnCond(0x1000, &p, true, 0, false, 0)
	for now := uint64(1); now < 400; now++ {
		e.Cycle(now)
	}
	s := e.Stats()
	if s.PrefetchesIssued == 0 {
		t.Fatal("TillL1I issued no prefetches")
	}
	if s.FillsInserted != 0 {
		t.Fatal("TillL1I filled the µ-op cache")
	}
	if fe.Uop.Probe(0x1004) {
		t.Fatal("µ-op entry present under TillL1I")
	}
	if !fe.Mem.L1I.Contains(0x1004) {
		t.Fatal("L1I line not prefetched")
	}
}

func TestTagCheckSkipsResidentEntries(t *testing.T) {
	code := straightCode(0x1000, 0x1400)
	e, fe := rig(DefaultConfig(), code)
	// Pre-fill the first alternate entry.
	fe.Uop.Insert(0x1004, 7, 0, false, false)
	p := h2pPrediction()
	p.Taken = true
	e.OnCond(0x1000, &p, true, 0, false, 0)
	for now := uint64(1); now < 200; now++ {
		e.Cycle(now)
	}
	s := e.Stats()
	if s.TagCheckHits == 0 {
		t.Fatal("resident entry not filtered by the tag check")
	}
}

func TestHighConfidenceBranchExtendsThreshold(t *testing.T) {
	// A path through well-predicted branches raises the stop budget
	// (§IV-E: threshold++ on high-confidence branches).
	code := straightCode(0x1000, 0x8000)
	for pc := uint64(0x1040); pc < 0x8000; pc += 0x40 {
		code[pc] = isa.CondBranch
	}
	e, fe := rig(DefaultConfig(), code)
	for pc := uint64(0x1040); pc < 0x8000; pc += 0x40 {
		fe.BTB.Insert(pc, pc+0x400, btb.KindCond)
	}
	// Train the Alt-BP to be confident not-taken on everything.
	for i := 0; i < 3000; i++ {
		pc := uint64(0x1040) + uint64(i%16)*0x40
		p := e.altBP.Predict(e.altBPHist, pc)
		e.altBP.Update(pc, false, &p)
		e.altBPHist.Push(pc, false)
	}
	p := h2pPrediction()
	p.Taken = true
	e.OnCond(0x1000, &p, true, 0, false, 0)
	start := e.threshold
	for now := uint64(1); now < 50 && e.active; now++ {
		e.Cycle(now)
	}
	if e.threshold <= start {
		t.Fatalf("threshold %d did not grow from %d", e.threshold, start)
	}
}

func TestStorageBudgets(t *testing.T) {
	e, _ := rig(DefaultConfig(), nil)
	if kb := e.StorageKB(); kb < 11 || kb > 15 {
		t.Errorf("UCP storage %.2fKB, paper says 12.95KB", kb)
	}
	n, _ := rig(NoIndConfig(), nil)
	if kb := n.StorageKB(); kb < 7 || kb > 11 {
		t.Errorf("UCP-NoInd storage %.2fKB, paper says 8.95KB", kb)
	}
	cfg := DefaultConfig()
	cfg.TillL1I = true
	l, _ := rig(cfg, nil)
	if l.StorageKB() >= e.StorageKB() {
		t.Error("TillL1I must cost less than full UCP")
	}
}

func TestTableIWeights(t *testing.T) {
	mk := func(src, tageSrc bpred.Source, ctr int8, sat, recentMiss bool, scSum int32) *bpred.Prediction {
		return &bpred.Prediction{
			Source: src, TageSource: tageSrc,
			ProviderCtr: ctr, ProviderSat: sat,
			BimodalRecentMiss: recentMiss, SCSum: scSum,
		}
	}
	cases := []struct {
		name string
		p    *bpred.Prediction
		want int
	}{
		{"bimodal saturated", mk(bpred.SrcBimodal, bpred.SrcBimodal, -2, true, false, 0), 1},
		{"bimodal weak", mk(bpred.SrcBimodal, bpred.SrcBimodal, 0, false, false, 0), 2},
		{"bimodal>1in8 saturated", mk(bpred.SrcBimodal, bpred.SrcBimodal, 1, true, true, 0), 2},
		{"bimodal>1in8 weak", mk(bpred.SrcBimodal, bpred.SrcBimodal, -1, false, true, 0), 6},
		{"hitbank -4&3", mk(bpred.SrcHitBank, bpred.SrcHitBank, 3, true, false, 0), 1},
		{"hitbank -3&2", mk(bpred.SrcHitBank, bpred.SrcHitBank, -3, false, false, 0), 3},
		{"hitbank -2&1", mk(bpred.SrcHitBank, bpred.SrcHitBank, 1, false, false, 0), 4},
		{"hitbank -1&0", mk(bpred.SrcHitBank, bpred.SrcHitBank, 0, false, false, 0), 6},
		{"altbank saturated", mk(bpred.SrcAltBank, bpred.SrcAltBank, -4, true, false, 0), 5},
		{"altbank middle", mk(bpred.SrcAltBank, bpred.SrcAltBank, 1, false, false, 0), 7},
		{"loop", mk(bpred.SrcLoop, bpred.SrcHitBank, 0, false, false, 0), 1},
		{"sc 128+", mk(bpred.SrcSC, bpred.SrcHitBank, 0, false, false, 200), 3},
		{"sc 64..127", mk(bpred.SrcSC, bpred.SrcHitBank, 0, false, false, -90), 6},
		{"sc 32..63", mk(bpred.SrcSC, bpred.SrcHitBank, 0, false, false, 40), 8},
		{"sc 0..31", mk(bpred.SrcSC, bpred.SrcHitBank, 0, false, false, -5), 10},
	}
	for _, tc := range cases {
		if got := condWeight(tc.p); got != tc.want {
			t.Errorf("%s: weight %d, want %d (Table I)", tc.name, got, tc.want)
		}
	}
}

func TestThresholdStops(t *testing.T) {
	// Force tiny threshold: even a single weak branch stops the path.
	cfg := DefaultConfig()
	cfg.StopThreshold = 1
	code := straightCode(0x1000, 0x4000)
	code[0x1020] = isa.CondBranch
	e, fe := rig(cfg, code)
	fe.BTB.Insert(0x1020, 0x2000, btb.KindCond)
	p := h2pPrediction()
	p.Taken = true
	e.OnCond(0x1000, &p, true, 0, false, 0)
	e.Cycle(1)
	if e.Stats().StopThreshold != 1 {
		t.Fatalf("threshold stop not taken: %+v", e.Stats())
	}
}

func TestSharedDecodersGateOnBuildMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SharedDecoders = true
	code := straightCode(0x1000, 0x1400)
	e, fe := rig(cfg, code)
	p := h2pPrediction()
	p.Taken = true
	e.OnCond(0x1000, &p, true, 0, false, 0)
	// The idle frontend starts in build mode, so shared decoders are
	// busy: no fills may happen.
	for now := uint64(1); now < 400; now++ {
		e.Cycle(now)
	}
	if fe.InStreamMode() {
		t.Skip("frontend unexpectedly in stream mode")
	}
	if e.Stats().FillsInserted != 0 {
		t.Fatal("shared decoders filled while the demand path owned them")
	}
}

func TestWalkCrossesRegionBoundaries(t *testing.T) {
	// A straight alternate path spanning several 32B regions must
	// produce one entry per region, each starting at the path's entry
	// point into that region.
	code := straightCode(0x1000, 0x1100)
	e, fe := rig(DefaultConfig(), code)
	p := h2pPrediction()
	p.Taken = true
	e.OnCond(0x1008, &p, true, 0, false, 0) // alt path starts at 0x100c
	for now := uint64(1); now < 400; now++ {
		e.Cycle(now)
	}
	if !fe.Uop.Probe(0x100c) {
		t.Fatal("first (mid-region) entry missing")
	}
	if !fe.Uop.Probe(0x1020) || !fe.Uop.Probe(0x1040) {
		t.Fatal("subsequent region entries missing")
	}
	if fe.Uop.Probe(0x1000) {
		t.Fatal("entry before the alternate start present")
	}
}

func TestAltPathFollowsPredictedTakenCond(t *testing.T) {
	// Alt-BP trained strongly taken on a BTB-resident conditional: the
	// walker must follow its target and prefetch there.
	code := straightCode(0x1000, 0x9000)
	code[0x1010] = isa.CondBranch
	e, fe := rig(DefaultConfig(), code)
	fe.BTB.Insert(0x1010, 0x8000, btb.KindCond)
	for i := 0; i < 3000; i++ {
		ap := e.altBP.Predict(e.altBPHist, 0x1010)
		e.altBP.Update(0x1010, true, &ap)
		e.altBPHist.Push(0x1010, true)
	}
	p := h2pPrediction()
	p.Taken = true
	e.OnCond(0x1000, &p, true, 0, false, 0)
	// Keep cycling after the path stops so in-flight fills drain.
	for now := uint64(1); now < 800; now++ {
		e.Cycle(now)
	}
	if !fe.Uop.Probe(0x8000) {
		t.Fatal("taken-path target region never prefetched")
	}
}

func TestAltRASFollowsReturns(t *testing.T) {
	// A call on the alternate path pushes Alt-RAS; a later return must
	// come back to the call site's successor.
	code := straightCode(0x1000, 0x9000)
	code[0x1008] = isa.Call
	code[0x8004] = isa.Return
	e, fe := rig(DefaultConfig(), code)
	fe.BTB.Insert(0x1008, 0x8000, btb.KindDirect) // call target
	fe.BTB.Insert(0x8004, 0, btb.KindReturn)
	p := h2pPrediction()
	p.Taken = true
	e.OnCond(0x1000, &p, true, 0, false, 0)
	for now := uint64(1); now < 800; now++ {
		e.Cycle(now)
	}
	// The fall-through after the call (0x100c region) must be reachable
	// again via the return.
	if !fe.Uop.Probe(0x8000) {
		t.Fatal("callee never prefetched")
	}
	if e.Stats().StopRASEmpty != 0 {
		t.Fatal("Alt-RAS lost the pushed return address")
	}
}

func TestEngineStatsConsistency(t *testing.T) {
	// Invariants over a real workload: fills ≤ prefetches issued,
	// tag-check hits ≤ tag checks, triggers == sum of terminal events +
	// possibly one active path.
	code := straightCode(0x1000, 0x40000)
	for pc := uint64(0x1100); pc < 0x40000; pc += 0x100 {
		code[pc] = isa.CondBranch
	}
	e, fe := rig(DefaultConfig(), code)
	for pc := uint64(0x1100); pc < 0x40000; pc += 0x100 {
		fe.BTB.Insert(pc, pc+0x400, btb.KindCond)
	}
	r := rngLike{state: 12345}
	for now := uint64(0); now < 20000; now++ {
		if now%37 == 0 {
			p := h2pPrediction()
			p.Taken = true
			pc := 0x1000 + (r.next()%0x3e000)&^3
			e.OnCond(pc, &p, true, 0, false, now)
		}
		e.Cycle(now)
	}
	s := e.Stats()
	if s.FillsInserted > s.PrefetchesIssued {
		t.Fatalf("fills %d > prefetches %d", s.FillsInserted, s.PrefetchesIssued)
	}
	if s.TagCheckHits > s.TagChecks {
		t.Fatalf("tag hits %d > checks %d", s.TagCheckHits, s.TagChecks)
	}
	stops := s.StopThreshold + s.StopNoBranch + s.StopIndirect + s.StopRASEmpty + s.StopNewH2P
	active := uint64(0)
	if e.active {
		active = 1
	}
	if s.Triggers != stops+active {
		t.Fatalf("triggers %d != stops %d + active %d", s.Triggers, stops, active)
	}
}

type rngLike struct{ state uint64 }

func (r *rngLike) next() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state >> 16
}
