package core

import (
	"ucp/internal/bpred"
	"ucp/internal/btb"
	"ucp/internal/cache"
	"ucp/internal/frontend"
	"ucp/internal/isa"
	"ucp/internal/ittage"
	"ucp/internal/ras"
	"ucp/internal/uopcache"
)

// CodeInfo gives the engine post-decode knowledge of instruction classes
// along prefetched lines, standing in for the alternate decoders'
// inspection of fetched bytes. trace.Program implements it; file-driven
// runs use a learned map.
type CodeInfo interface {
	// ClassAt returns the instruction class at pc (ok=false if pc is
	// outside known code).
	ClassAt(pc uint64) (isa.Class, bool)
}

type fillJob struct {
	spec    uopcache.EntrySpec
	readyAt uint64
}

// Engine is the UCP alternate-path prefetcher (Fig. 8).
type Engine struct {
	cfg Config

	fe   *frontend.Frontend
	btb  btb.TargetBuffer
	uop  *uopcache.UopCache
	mem  *cache.Hierarchy
	code CodeInfo

	altBP      *bpred.TageSCL
	altBPHist  *bpred.Hist // shadow of the demand path
	altHist    *bpred.Hist // alternate-path clone
	altInd     *ittage.Predictor
	altIndWalk ittage.Hist
	altRAS     *ras.Stack

	// Walk state.
	active    bool
	altPC     uint64
	stopCtr   int
	threshold int
	// noBranchCtr is the 6-bit no-branch instruction counter of §IV-E
	// (bounded by cfg.MaxNoBranchInsts, itself capped at 63). nbits:6
	noBranchCtr uint8
	// conflictCtr is the 3-bit BTB-bank starvation counter of §IV-C.
	// nbits:3
	conflictCtr uint8
	pathLines   *lineSet

	// Alt-FTQ of entry specs awaiting µ-op tag check.
	altFTQ  []uopcache.EntrySpec
	ftqHead int
	ftqUsed int

	// In-flight prefetches and entries awaiting the alternate decoders
	// (a ring over a fixed backing array bounded by cfg.AltDecodeQueue).
	mshrCount int
	decodeQ   []fillJob
	dqHead    int
	dqUsed    int

	// Per-cycle scratch, reused so the steady-state walk allocates
	// nothing: the window's instruction metas, the entry specs Split
	// produces from them, and the alternate predictor's output.
	walkMetas   []uopcache.InstMeta
	specScratch []uopcache.EntrySpec
	predScratch bpred.Prediction
	uopCfg      uopcache.Config

	stats Stats
}

// New wires a UCP engine to the shared frontend structures. code may be
// nil only with cfg.TillL1I (no µ-op fill without class knowledge).
func New(cfg Config, fe *frontend.Frontend, code CodeInfo) *Engine {
	e := &Engine{
		cfg:         cfg,
		fe:          fe,
		btb:         fe.BTB,
		uop:         fe.Uop,
		mem:         fe.Mem,
		code:        code,
		altBP:       bpred.NewTageSCL(cfg.AltBP),
		altRAS:      ras.New(cfg.AltRASEntries),
		altFTQ:      make([]uopcache.EntrySpec, cfg.AltFTQEntries),
		pathLines:   newLineSet(64),
		decodeQ:     make([]fillJob, cfg.AltDecodeQueue),
		walkMetas:   make([]uopcache.InstMeta, 0, cfg.WalkWidth),
		specScratch: make([]uopcache.EntrySpec, 0, cfg.WalkWidth),
		uopCfg:      fe.Uop.Config(),
	}
	e.altBPHist = e.altBP.Hist()
	e.altHist = e.altBP.NewHist()
	if cfg.UseAltInd {
		e.altInd = ittage.New(cfg.AltInd)
	}
	return e
}

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// OnCond implements frontend.UCPHook: shadow-train Alt-BP, classify the
// branch, and (re)start the alternate path on H2P (§IV-B).
func (e *Engine) OnCond(pc uint64, p *bpred.Prediction, actualTaken bool, takenTarget uint64, btbHit bool, now uint64) {
	// Alt-BP trains alongside the main predictor (§IV-C).
	ap := &e.predScratch
	e.altBP.PredictInto(ap, e.altBPHist, pc)
	e.altBP.Update(pc, actualTaken, ap)

	if e.cfg.Estimator.H2P(p) {
		e.start(pc, p.Taken, takenTarget, btbHit, now)
	}
	// The demand-path shadow history advances with the main predictor's
	// *prediction* (speculative update; trace-correct except at the
	// mispredicted branch where fetch stalls anyway).
	e.altBPHist.Push(pc, p.Taken)
}

// OnUncond implements frontend.UCPHook: shadow-train Alt-Ind.
func (e *Engine) OnUncond(pc uint64, class isa.Class, target uint64, now uint64) {
	if e.altInd != nil && class.IsIndirect() && class != isa.Return {
		l := e.altInd.Predict(e.altInd.Hist(), pc)
		e.altInd.Update(pc, target, &l)
	}
	if e.altInd != nil {
		e.altInd.Hist().Push(pc, target, true)
	}
}

// OnMispredictResolved implements frontend.UCPHook.
func (e *Engine) OnMispredictResolved(now uint64) {}

// start begins a new alternate path at the opposite of the predicted
// direction. A currently active path is abandoned and the Alt-FTQ
// flushed (§IV-E case 1).
func (e *Engine) start(pc uint64, predTaken bool, takenTarget uint64, btbHit bool, now uint64) {
	var alt uint64
	if predTaken {
		alt = pc + isa.InstBytes // alternate = fall-through
	} else {
		if !btbHit || takenTarget == 0 {
			e.stats.TriggersBlocked++
			return
		}
		alt = takenTarget
	}
	if e.active {
		e.stats.StopNewH2P++
		e.ftqUsed = 0 // flush the Alt-FTQ
		e.ftqHead = 0
	}
	e.stats.Triggers++
	e.active = true
	e.altPC = alt
	e.stopCtr = 0
	e.threshold = e.cfg.StopThreshold
	e.noBranchCtr = 0
	e.conflictCtr = 0
	e.pathLines.Reset()
	// Clone histories at the pre-H2P point and push the opposite
	// direction (§IV-C).
	e.altHist.CopyFrom(e.altBPHist)
	e.altHist.Push(pc, !predTaken)
	if e.altInd != nil {
		e.altIndWalk = *e.altInd.Hist()
		e.altIndWalk.Push(pc, alt, !predTaken)
	}
	e.altRAS.CopyFrom(e.fe.RAS)
}

func (e *Engine) stop(reason *uint64) {
	e.active = false
	*reason++
}

// Cycle advances the engine: one walk window, one Alt-FTQ tag check,
// and the alternate decoders (§IV-C/D).
func (e *Engine) Cycle(now uint64) {
	e.drainDecodeQ(now)
	e.tagCheck(now)
	e.walk(now)
}

// walk advances alternate-path address generation by one prediction
// window, arbitrating BTB banks against the demand path.
func (e *Engine) walk(now uint64) {
	if !e.active {
		return
	}
	if e.ftqUsed+4 > len(e.altFTQ) {
		e.stats.AltFTQFull++
		return // leave room for the specs this window may produce
	}
	// BTB bank arbitration (§IV-C): demand priority with a 3-bit
	// starvation counter.
	if !e.cfg.IdealBTBBanking {
		bank := e.btb.BankOf(e.altPC)
		if e.fe.BTBBankBusy(now, bank) {
			e.stats.BTBConflicts++
			e.conflictCtr++
			if e.conflictCtr < 7 {
				return // delayed this cycle
			}
			// Starved: the alternate path wins, demand retries.
			e.conflictCtr = 0
			e.fe.StealBTBCycle(now)
			e.stats.BTBStolenCycles++
		} else {
			e.conflictCtr = 0
		}
	}

	metas := e.walkMetas[:0]
	pc := e.altPC
	stopped := false
	for i := 0; i < e.cfg.WalkWidth; i++ {
		e.stats.WalkedInsts++
		target, kind, hit := e.btb.Probe(pc)
		class := isa.ALU
		if c, ok := e.classAt(pc); ok {
			class = c
		}
		if !hit {
			// No BTB-known branch here: straight-line code as far as
			// the frontend can tell.
			metas = append(metas, uopcache.InstMeta{PC: pc, Class: class})
			pc += isa.InstBytes
			e.noBranchCtr++
			if int(e.noBranchCtr) >= e.cfg.MaxNoBranchInsts {
				e.flushWindow(metas, now)
				e.stop(&e.stats.StopNoBranch)
				return
			}
			continue
		}
		e.noBranchCtr = 0
		next, taken, w, ok := e.predictAltBranch(pc, target, kind)
		metas = append(metas, uopcache.InstMeta{PC: pc, Class: class, PredTaken: taken})
		if !ok {
			stopped = true
			e.flushWindow(metas, now)
			return // stop reason recorded inside predictAltBranch
		}
		e.stopCtr += w
		if e.stopCtr >= e.threshold {
			e.flushWindow(metas, now)
			e.stop(&e.stats.StopThreshold)
			return
		}
		if taken {
			pc = next
			e.flushWindow(metas, now)
			metas = metas[:0]
			e.altPC = pc
			// A taken branch ends the prediction window.
			break
		}
		pc += isa.InstBytes
	}
	if !stopped {
		e.flushWindow(metas, now)
		e.altPC = pc
	}
}

// predictAltBranch resolves one BTB-known branch on the alternate path,
// returning the successor, whether it is taken, the Table I weight, and
// ok=false when the path must stop.
func (e *Engine) predictAltBranch(pc, target uint64, kind btb.BranchKind) (next uint64, taken bool, weight int, ok bool) {
	switch kind {
	case btb.KindCond:
		ap := &e.predScratch
		e.altBP.PredictInto(ap, e.altHist, pc)
		e.altHist.Push(pc, ap.Taken)
		if e.altInd != nil {
			nt := pc + isa.InstBytes
			if ap.Taken {
				nt = target
			}
			e.altIndWalk.Push(pc, nt, ap.Taken)
		}
		w := condWeight(ap)
		// High-confidence alternate branches extend the budget (§IV-E).
		if !e.cfg.Estimator.H2P(ap) {
			e.threshold++
		}
		if ap.Taken {
			return target, true, w, true
		}
		return pc + isa.InstBytes, false, w, true
	case btb.KindDirect:
		if e.altInd != nil {
			e.altIndWalk.Push(pc, target, true)
		}
		return target, true, 0, true
	case btb.KindReturn:
		t := e.altRAS.Pop()
		if t == 0 {
			e.stop(&e.stats.StopRASEmpty)
			return 0, true, weightReturn, false
		}
		if e.altInd != nil {
			e.altIndWalk.Push(pc, t, true)
		}
		return t, true, weightReturn, true
	default: // indirect jump or call
		if e.altInd == nil {
			e.stop(&e.stats.StopIndirect)
			return 0, true, WeightInfinite, false
		}
		l := e.altInd.Predict(&e.altIndWalk, pc)
		if l.Target == 0 {
			e.stop(&e.stats.StopIndirect)
			return 0, true, WeightInfinite, false
		}
		e.altIndWalk.Push(pc, l.Target, true)
		// Calls seen via the BTB: push a plausible return address.
		if cl, okc := e.classAt(pc); okc && cl.IsCall() {
			e.altRAS.Push(pc + isa.InstBytes)
		}
		return l.Target, true, weightIndirect, true
	}
}

func (e *Engine) classAt(pc uint64) (isa.Class, bool) {
	if e.code == nil {
		return isa.ALU, false
	}
	return e.code.ClassAt(pc)
}

// flushWindow converts a walked instruction run into µ-op entry specs
// and enqueues them on the Alt-FTQ.
func (e *Engine) flushWindow(metas []uopcache.InstMeta, now uint64) {
	if len(metas) == 0 {
		return
	}
	// Direct calls push the alternate RAS as they are walked.
	for i := range metas {
		if metas[i].Class == isa.Call {
			e.altRAS.Push(metas[i].PC + isa.InstBytes)
		}
	}
	specs := uopcache.SplitInto(e.specScratch[:0], metas, e.uopCfg)
	e.specScratch = specs[:0]
	for _, s := range specs {
		if e.ftqUsed == len(e.altFTQ) {
			e.stats.AltFTQFull++
			return
		}
		tail := e.ftqHead + e.ftqUsed
		if tail >= len(e.altFTQ) {
			tail -= len(e.altFTQ)
		}
		e.altFTQ[tail] = s
		e.ftqUsed++
		e.stats.EntriesGenerated++
	}
}

// tagCheck pops the Alt-FTQ head, checks the µ-op cache (demand-priority
// banked tag check), and issues a prefetch on a miss (§IV-D).
func (e *Engine) tagCheck(now uint64) {
	if e.ftqUsed == 0 {
		return
	}
	spec := e.altFTQ[e.ftqHead]
	bank := e.uop.BankOf(spec.StartPC)
	if e.fe.UopBankBusy(now, bank) {
		e.stats.UopBankConflicts++
		return // demand priority; retry next cycle
	}
	e.stats.TagChecks++
	if e.uop.Probe(spec.StartPC) {
		e.stats.TagCheckHits++
		e.popFTQ()
		return
	}
	if !e.cfg.TillL1I && e.mshrCount >= e.cfg.UopMSHRs {
		e.stats.MSHRFull++
		return
	}
	if !e.cfg.TillL1I && e.dqUsed >= e.cfg.AltDecodeQueue {
		e.stats.DecodeQFull++
		return
	}
	line := spec.StartPC &^ (isa.LineBytes - 1)
	done, accepted := e.mem.PrefetchInst(line, now)
	if !accepted {
		e.stats.PrefetchDropped++
		e.popFTQ() // the PQ dropped it; don't spin on the head
		return
	}
	e.stats.PrefetchesIssued++
	if e.pathLines.Add(line) {
		e.stats.LinesPrefetched++
	}
	if e.cfg.TillL1I {
		e.popFTQ()
		return
	}
	e.mshrCount++
	tail := e.dqHead + e.dqUsed
	if tail >= len(e.decodeQ) {
		tail -= len(e.decodeQ)
	}
	e.decodeQ[tail] = fillJob{spec: spec, readyAt: done}
	e.dqUsed++
	e.popFTQ()
}

func (e *Engine) popFTQ() {
	e.ftqHead++
	if e.ftqHead == len(e.altFTQ) {
		e.ftqHead = 0
	}
	e.ftqUsed--
}

// drainDecodeQ runs the alternate decoders: entries whose lines have
// arrived are decoded (AltDecodeWidth µ-ops per cycle) and installed
// into the µ-op cache (§IV-D).
func (e *Engine) drainDecodeQ(now uint64) {
	if e.dqUsed == 0 {
		return
	}
	if e.cfg.SharedDecoders && !e.fe.InStreamMode() {
		return // demand path owns the decoders this cycle
	}
	budget := e.cfg.AltDecodeWidth
	for e.dqUsed > 0 && budget > 0 {
		job := &e.decodeQ[e.dqHead]
		if job.readyAt > now {
			break
		}
		if int(job.spec.Ops) > budget && budget < e.cfg.AltDecodeWidth {
			break // finish this entry next cycle
		}
		budget -= int(job.spec.Ops)
		e.uop.Insert(job.spec.StartPC, job.spec.Ops, job.spec.Branches, job.spec.EndsTaken, true)
		e.stats.FillsInserted++
		e.mshrCount--
		e.dqHead++
		if e.dqHead == len(e.decodeQ) {
			e.dqHead = 0
		}
		e.dqUsed--
	}
}

// StorageKB returns UCP's hardware overhead (§IV-F): Alt-BP, optional
// Alt-Ind, Alt-RAS, Alt-FTQ, µ-op MSHR, L1I PQ share, and the alternate
// decode queue.
func (e *Engine) StorageKB() float64 {
	kb := e.altBP.StorageKB()
	if e.altInd != nil {
		kb += e.altInd.StorageKB()
	}
	kb += float64(e.cfg.AltRASEntries) * 32 / 8 / 1024 // Alt-RAS (0.06KB)
	kb += float64(e.cfg.AltFTQEntries) * 48 / 8 / 1024 // Alt-FTQ (0.14KB)
	kb += 0.25                                         // L1I PQ (§IV-F)
	if !e.cfg.TillL1I {
		kb += float64(e.cfg.UopMSHRs) * 48 / 8 / 1024       // µ-op MSHR (0.19KB)
		kb += float64(e.cfg.AltDecodeQueue) * 30 / 8 / 1024 // decode queue (0.12KB)
	}
	return kb
}
