package core

import "ucp/internal/isa"

// FunctionalObserve is the sampled-mode counterpart of the OnCond and
// OnUncond hooks: during functional fast-forward it keeps the
// alternate-path predictors and the demand-path shadow history training
// on the committed stream, so a detailed window opens with Alt-BP and
// Alt-Ind state consistent with the instructions that flowed past. It
// never classifies H2P branches or starts walks — alternate-path
// prefetching is a timing mechanism, and fast-forwarded stretches have
// no timing to improve. predTaken is the demand predictor's predicted
// direction for conditional branches (the shadow history advances on
// predictions, mirroring OnCond); it is ignored for other classes.
func (e *Engine) FunctionalObserve(in *isa.Inst, predTaken bool) {
	switch {
	case in.Class == isa.CondBranch:
		e.WarmCond(in.PC, in.Taken, predTaken)
	case in.Class.IsBranch():
		if e.altInd != nil {
			if in.Class.IsIndirect() && in.Class != isa.Return {
				l := e.altInd.Predict(e.altInd.Hist(), in.PC)
				e.altInd.Update(in.PC, in.Target, &l)
			}
			e.altInd.Hist().Push(in.PC, in.Target, true)
		}
	}
}

// WarmCond is FunctionalObserve's conditional-branch case for the
// warming-skip tier, where outcomes arrive without a materialized
// isa.Inst. The Alt-Ind history is not advanced — targets are unknown
// during a skip — and refills during the functional-warm horizon.
func (e *Engine) WarmCond(pc uint64, taken, predTaken bool) {
	ap := &e.predScratch
	e.altBP.PredictInto(ap, e.altBPHist, pc)
	e.altBP.Update(pc, taken, ap)
	e.altBPHist.Push(pc, predTaken)
}
