package core

import "math/bits"

// lineSet is a small open-addressed hash set of cache-line addresses.
// It replaces the former map[uint64]bool walk state: membership and
// insert are a couple of cache lines of probing with no hashing
// allocation, and Reset clears only the slots actually used (O(used),
// not O(capacity)), which matters because the set is flushed at every
// alternate-path (re)start.
//
// The zero line address is representable (tracked out of band) so the
// key array can use 0 as its empty sentinel.
type lineSet struct {
	keys    []uint64 // power-of-two table; 0 = empty slot
	filled  []uint32 // indices of occupied slots, for O(used) reset
	mask    uint32
	hasZero bool
}

// newLineSet returns a set sized for at least capHint lines before the
// first grow. The table keeps load factor <= 1/2.
func newLineSet(capHint int) *lineSet {
	n := 16
	for n < capHint*2 {
		n <<= 1
	}
	return &lineSet{
		keys:   make([]uint64, n),
		filled: make([]uint32, 0, n/2),
		mask:   uint32(n - 1),
	}
}

// slotOf hashes line into the table (Fibonacci hashing; the low bits of
// line addresses are all zero, so plain masking would cluster).
func (s *lineSet) slotOf(line uint64) uint32 {
	const phi = 0x9E3779B97F4A7C15
	return uint32((line*phi)>>(64-uint(bits.Len32(s.mask)))) & s.mask
}

// Add inserts line and reports whether it was newly inserted.
//
//ucplint:hotpath
func (s *lineSet) Add(line uint64) bool {
	if line == 0 {
		if s.hasZero {
			return false
		}
		s.hasZero = true
		return true
	}
	if len(s.filled) >= len(s.keys)/2 {
		//ucplint:ignore hotalloc // cold branch: amortized doubling, load factor ≤ 1/2
		s.grow()
	}
	i := s.slotOf(line)
	for {
		k := s.keys[i]
		if k == line {
			return false
		}
		if k == 0 {
			s.keys[i] = line
			//ucplint:ignore hotalloc // never grows: filled has cap len(keys)/2 and grow() just ran
			s.filled = append(s.filled, i)
			return true
		}
		i = (i + 1) & s.mask
	}
}

// Has reports whether line is in the set.
//
//ucplint:hotpath
func (s *lineSet) Has(line uint64) bool {
	if line == 0 {
		return s.hasZero
	}
	i := s.slotOf(line)
	for {
		k := s.keys[i]
		if k == line {
			return true
		}
		if k == 0 {
			return false
		}
		i = (i + 1) & s.mask
	}
}

// Len returns the number of distinct lines inserted since the last Reset.
func (s *lineSet) Len() int {
	n := len(s.filled)
	if s.hasZero {
		n++
	}
	return n
}

// Reset empties the set, touching only the occupied slots.
func (s *lineSet) Reset() {
	for _, i := range s.filled {
		s.keys[i] = 0
	}
	s.filled = s.filled[:0]
	s.hasZero = false
}

// grow doubles the table and reinserts the live keys.
func (s *lineSet) grow() {
	old := s.keys
	oldFilled := s.filled
	n := len(old) * 2
	s.keys = make([]uint64, n)
	s.filled = make([]uint32, 0, n/2)
	s.mask = uint32(n - 1)
	for _, i := range oldFilled {
		line := old[i]
		j := s.slotOf(line)
		for s.keys[j] != 0 {
			j = (j + 1) & s.mask
		}
		s.keys[j] = line
		s.filled = append(s.filled, j)
	}
}
