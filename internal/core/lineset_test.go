package core

import (
	"testing"

	"ucp/internal/rng"
)

// TestLineSetMatchesMap drives a lineSet and a reference map[uint64]bool
// through the same randomized Add/Has/Reset stream and requires
// identical answers throughout. Line addresses are 64-byte aligned (as
// in the walk state the set replaces), which is also the worst case for
// the hash: the low six bits carry no entropy.
func TestLineSetMatchesMap(t *testing.T) {
	r := rng.New(7)
	s := newLineSet(4) // small hint so the test crosses several grows
	ref := make(map[uint64]bool)
	// A modest address pool forces repeat insertions and positive Has
	// hits; include 0, the out-of-band sentinel key.
	pool := make([]uint64, 400)
	for i := range pool {
		pool[i] = (r.Uint64() % 4096) * 64
	}
	pool[0] = 0
	for step := 0; step < 20000; step++ {
		line := pool[r.Uint64()%uint64(len(pool))]
		switch {
		case step%1000 == 999:
			s.Reset()
			ref = make(map[uint64]bool)
		case r.Bool(0.5):
			fresh := s.Add(line)
			if fresh == ref[line] {
				t.Fatalf("step %d: Add(%#x) fresh=%v but map had=%v", step, line, fresh, ref[line])
			}
			ref[line] = true
		default:
			if got, want := s.Has(line), ref[line]; got != want {
				t.Fatalf("step %d: Has(%#x)=%v, want %v", step, line, got, want)
			}
		}
		if s.Len() != len(ref) {
			t.Fatalf("step %d: Len=%d, map has %d", step, s.Len(), len(ref))
		}
	}
}

// TestLineSetGrow inserts well past the initial capacity so the table
// doubles repeatedly (>64 distinct lines from a 16-slot start), then
// verifies membership, absence, and that Reset restores an empty set
// usable for a second filling.
func TestLineSetGrow(t *testing.T) {
	s := newLineSet(1)
	const n = 300
	for i := 0; i < n; i++ {
		line := uint64(i) * 64
		if !s.Add(line) {
			t.Fatalf("Add(%#x) reported duplicate on first insert", line)
		}
		if s.Add(line) {
			t.Fatalf("Add(%#x) reported fresh on second insert", line)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len=%d after %d distinct inserts", s.Len(), n)
	}
	for i := 0; i < n; i++ {
		if !s.Has(uint64(i) * 64) {
			t.Fatalf("Has(%#x) false after insert", uint64(i)*64)
		}
	}
	for i := n; i < 2*n; i++ {
		if s.Has(uint64(i) * 64) {
			t.Fatalf("Has(%#x) true for never-inserted line", uint64(i)*64)
		}
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Len=%d after Reset", s.Len())
	}
	for i := 0; i < n; i++ {
		if s.Has(uint64(i) * 64) {
			t.Fatalf("Has(%#x) true after Reset", uint64(i)*64)
		}
	}
	// The table must stay fully usable after Reset.
	for i := 0; i < n; i++ {
		if !s.Add(uint64(i)*64 + 64*1024) {
			t.Fatalf("re-fill Add reported duplicate at %d", i)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len=%d after post-Reset refill", s.Len())
	}
}
