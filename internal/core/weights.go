package core

import "ucp/internal/bpred"

// Table I: weights added to the stop-heuristic saturating counter for
// each branch encountered on the alternate path, derived from the
// average miss rate of the providing predictor component (≈1 unit per
// extra 5% miss rate). Higher accumulated weight means the alternate
// path is less likely to become the correct path.

// Target-prediction weights (Table I, bottom rows). WeightInfinite
// forces an immediate stop (BTB miss; indirect without Alt-Ind).
const (
	weightIndirect = 1
	weightReturn   = 1
	// WeightInfinite marks an immediate-stop event.
	WeightInfinite = 1 << 20
)

// condWeight maps an alternate-path conditional prediction to its
// Table I weight. It runs for every branch on every alternate-path
// walk.
//
//ucplint:hotpath
func condWeight(p *bpred.Prediction) int {
	switch p.Source {
	case bpred.SrcLoop:
		return 1
	case bpred.SrcSC:
		s := p.SCSum
		if s < 0 {
			s = -s
		}
		switch {
		case s >= 128:
			return 3
		case s >= 64:
			return 6
		case s >= 32:
			return 8
		default:
			return 10
		}
	}
	// TAGE providers, bucketed by centered counter magnitude: for a
	// 3-bit counter the pairs are (-4,3) (-3,2) (-2,1) (-1,0), and for
	// the 2-bit bimodal (-2,1) (-1,0).
	m := int(p.ProviderCtr)
	if m < 0 {
		m = -m - 1
	}
	switch p.TageSource {
	case bpred.SrcAltBank:
		if p.ProviderSat {
			return 5
		}
		return 7
	case bpred.SrcBimodal:
		saturated := m >= 1
		if p.BimodalRecentMiss {
			if saturated {
				return 2
			}
			return 6
		}
		if saturated {
			return 1
		}
		return 2
	default: // SrcHitBank
		switch m {
		case 3:
			return 1
		case 2:
			return 3
		case 1:
			return 4
		default:
			return 6
		}
	}
}
