package frontend

import (
	"ucp/internal/bpred"
	"ucp/internal/btb"
	"ucp/internal/isa"
)

// generate runs the branch prediction unit: up to WindowsPerCycle fetch
// windows are predicted and enqueued into the FTQ per cycle, stopping at
// mispredicted branches (stall until execute) and decode resteers
// (stall until delivery).
func (f *Frontend) generate(now uint64) {
	if f.paused {
		// Sampled-mode drain: no new windows, and the quiet cycles are
		// not BPU stalls (they fall outside measured windows anyway).
		return
	}
	if f.srcDone || f.waitingFlush || f.waitingDeliver {
		f.stats.BPUStallCycles++
		return
	}
	if now < f.bpuStallUntil {
		f.stats.BPUStallCycles++
		return
	}
	for w := 0; w < f.cfg.WindowsPerCycle; w++ {
		if f.ftqUsed == len(f.ftq) {
			return
		}
		// Build directly into the FTQ tail slot; the entry only becomes
		// visible when pushWindow bumps ftqUsed. This avoids copying the
		// ~900-byte window value twice per window on the hot path.
		tail := f.ftqHead + f.ftqUsed
		if tail >= len(f.ftq) {
			tail -= len(f.ftq)
		}
		win := &f.ftq[tail]
		*win = window{}
		if f.ideal.UopAlwaysHit || f.brCondCredit > 0 {
			win.forceHit = true
		}
		for win.n < f.cfg.WindowInsts {
			in, ok := f.nextInst()
			if !ok {
				f.srcDone = true
				break
			}
			predTaken, mispred, resteer := f.predictBranch(&in, now)
			win.insts[win.n] = windowInst{inst: in, predTaken: predTaken, mispredict: mispred}
			win.n++
			if mispred {
				win.mispredict = true
				f.waitingFlush = true
				f.startWrongPath(&in, predTaken)
				break
			}
			if resteer {
				win.resteer = true
				f.waitingDeliver = true
				break
			}
			if in.Class.IsBranch() && predTaken {
				break // the window ends at a predicted-taken branch
			}
		}
		if win.n > 0 {
			f.pushWindow(win, now)
		}
		if win.mispredict || win.resteer || f.srcDone {
			return
		}
	}
}

func (f *Frontend) pushWindow(win *window, now uint64) {
	// Fetch-directed prefetching (§V): the L1I access for an FTQ entry
	// is initiated as soon as the address is generated, so the FTQ
	// run-ahead hides instruction misses. A window whose first entry is
	// already in the µ-op cache will likely be stream-served and skips
	// the L1I (the FTQ "queries either or both" structures, §II).
	if !f.ideal.UopAlwaysHit && !win.forceHit {
		if f.ideal.NoUopCache || !f.Uop.Probe(win.insts[0].inst.PC) {
			firstLine := win.insts[0].inst.LineAddr()
			lastLine := win.insts[win.n-1].inst.LineAddr()
			win.l1iResident = true
			for line := firstLine; ; line += isa.LineBytes {
				resident := f.Mem.L1I.Contains(line)
				if !resident {
					win.l1iResident = false
				}
				if done := f.Mem.FetchInst(line, now); done > win.lineReady {
					win.lineReady = done
				}
				if f.L1IPrefetcher != nil {
					f.L1IPrefetcher.OnFetch(line, resident, now)
				}
				if line >= lastLine {
					break
				}
			}
		} else {
			// Expected to stream from the µ-op cache: if it were not
			// cached there, its line would very likely be L1I-resident.
			win.l1iResident = true
		}
	}
	// win already is the FTQ tail slot (see generate); publish it.
	f.ftqUsed++
	f.stats.Windows++
}

// predictBranch runs the BPU for one instruction: direction prediction,
// target prediction, predictor training, history maintenance, BTB fill,
// H2P classification, and UCP hook dispatch. It returns the direction
// the fetch engine follows, whether the instruction is an
// execute-resolved misprediction, and whether it is a decode-resolved
// resteer.
func (f *Frontend) predictBranch(in *isa.Inst, now uint64) (predTaken, mispred, resteer bool) {
	switch {
	case in.Class == isa.CondBranch:
		f.stats.CondBranches++
		// The Prediction is written into long-lived scratch: passing a
		// stack value's address through the UCPHook interface would force
		// a heap allocation per conditional branch.
		p := &f.predScratch
		f.Pred.PredictInto(p, f.Pred.Hist(), in.PC)
		f.markBanks(now, in.PC)
		target, _, btbHit := f.BTB.Lookup(in.PC)
		miss := p.Taken != in.Taken
		if miss {
			f.stats.CondMispredicts++
			f.stats.Mispredicts++
			if f.ideal.BRCondN > 0 {
				f.brCondCredit = f.ideal.BRCondN
			}
		} else if f.brCondCredit > 0 {
			f.brCondCredit--
		}
		// Confidence classification (both estimators, for Fig. 9/12b).
		f.stats.H2PTage.Record(bpred.TageConfH2P(p), miss)
		f.stats.H2PUCP.Record(bpred.UCPConfH2P(p), miss)
		// Train and advance history with the architectural outcome (the
		// trace-driven equivalent of speculative update + repair).
		f.Pred.Update(in.PC, in.Taken, p)
		f.Pred.PushHistory(in.PC, in.Taken)
		f.Ind.Hist().Push(in.PC, in.NextPC(), in.Taken)
		if in.Taken {
			f.BTB.Insert(in.PC, in.Target, btb.KindCond)
		}
		if f.hook != nil {
			f.hook.OnCond(in.PC, p, in.Taken, target, btbHit, now)
		}
		if miss {
			return p.Taken, true, false
		}
		// Correct direction, but a predicted-taken branch with no BTB
		// target cannot steer fetch until decode computes it.
		if in.Taken && !btbHit {
			f.stats.Resteers++
			return true, false, true
		}
		return in.Taken, false, false

	case in.Class == isa.DirectJump || in.Class == isa.Call:
		f.markBanks(now, in.PC)
		_, _, btbHit := f.BTB.Lookup(in.PC)
		f.BTB.Insert(in.PC, in.Target, btb.KindDirect)
		if in.Class == isa.Call {
			f.RAS.Push(in.PC + isa.InstBytes)
		}
		f.Ind.Hist().Push(in.PC, in.Target, true)
		if f.hook != nil {
			f.hook.OnUncond(in.PC, in.Class, in.Target, now)
		}
		if !btbHit {
			f.stats.Resteers++
			return true, false, true
		}
		return true, false, false

	case in.Class == isa.IndirectJump || in.Class == isa.IndirectCall:
		l := f.Ind.Predict(f.Ind.Hist(), in.PC)
		miss := l.Target != in.Target
		f.Ind.Update(in.PC, in.Target, &l)
		f.markBanks(now, in.PC)
		f.BTB.Insert(in.PC, in.Target, btb.KindIndirect)
		if in.Class == isa.IndirectCall {
			f.RAS.Push(in.PC + isa.InstBytes)
		}
		f.Ind.Hist().Push(in.PC, in.Target, true)
		if f.hook != nil {
			f.hook.OnUncond(in.PC, in.Class, in.Target, now)
		}
		if miss {
			f.stats.Mispredicts++
			return true, true, false
		}
		return true, false, false

	case in.Class == isa.Return:
		predTarget := f.RAS.Pop()
		miss := predTarget != in.Target
		f.markBanks(now, in.PC)
		f.BTB.Insert(in.PC, in.Target, btb.KindReturn)
		f.Ind.Hist().Push(in.PC, in.Target, true)
		if f.hook != nil {
			f.hook.OnUncond(in.PC, in.Class, in.Target, now)
		}
		if miss {
			f.stats.Mispredicts++
			return true, true, false
		}
		return true, false, false

	default:
		return false, false, false
	}
}
