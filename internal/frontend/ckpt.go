package frontend

import "ucp/internal/ckpt"

// Checkpoint hooks: the functional-commit path (functional.go) touches
// the owned predictors and caches, the µ-op cache builder, and the
// once-per-line fill filter — and nothing else. Frontend counters, the
// stream/refill histograms, the FTQ/µ-op queue, and all fetch-engine
// state are untouched during a fast-forward, so a freshly constructed
// frontend already holds their checkpoint values.

// SaveWarmState serializes every structure the functional fast-forward
// mutates, in a fixed order.
func (f *Frontend) SaveWarmState(w *ckpt.Writer) {
	w.Section("frontend")
	f.Pred.SaveState(w)
	f.BTB.SaveState(w)
	f.RAS.SaveState(w)
	f.Ind.SaveState(w)
	f.Uop.SaveState(w)
	f.Mem.SaveState(w)
	f.builder.SaveState(w)
	w.Uvarint(f.ffLastLine)
	w.Bool(f.ffLineValid)
}

// LoadWarmState restores state saved by SaveWarmState into an
// identically configured frontend. Errors surface on the reader.
func (f *Frontend) LoadWarmState(r *ckpt.Reader) {
	r.Section("frontend")
	f.Pred.LoadState(r)
	f.BTB.LoadState(r)
	f.RAS.LoadState(r)
	f.Ind.LoadState(r)
	f.Uop.LoadState(r)
	f.Mem.LoadState(r)
	f.builder.LoadState(r)
	f.ffLastLine = r.Uvarint()
	f.ffLineValid = r.Bool()
}
