package frontend

import (
	"ucp/internal/isa"
	"ucp/internal/uopcache"
)

// fetch consumes FTQ windows: stream mode reads the µ-op cache, build
// mode reads the L1I and decodes, and the machine switches between the
// two with a one-cycle penalty (§II, §V).
func (f *Frontend) fetch(now uint64) {
	if now < f.fetchStall {
		return
	}
	for processed := 0; processed < 2 && f.ftqUsed > 0; processed++ {
		win := &f.ftq[f.ftqHead]
		if f.uopqUsed+win.n > len(f.uopq) {
			return // backpressure from the µ-op queue
		}
		if !f.fetchWindow(now, win) {
			return // mode switch consumed the slot; window retries
		}
		f.ftqHead = (f.ftqHead + 1) % len(f.ftq)
		f.ftqUsed--
		if now < f.fetchStall {
			return
		}
	}
}

// fetchWindow serves one window. It returns false when the cycle was
// spent on a mode switch and the window must be retried.
func (f *Frontend) fetchWindow(now uint64, win *window) bool {
	if f.ideal.NoUopCache {
		f.decodePath(now, win, false)
		return true
	}
	hit := f.windowHit(now, win)
	if f.mode == 0 { // stream mode: µ-op cache only
		if hit {
			f.deliver(win, f.ordered(now+f.cfg.StreamLat), true)
			return true
		}
		f.mode = 1
		f.stats.ModeSwitches++
		f.consecHits = 0
		f.fetchStall = now + f.cfg.ModeSwitchPenalty
		return false
	}
	// Build mode: µ-op cache and L1I are queried in parallel.
	if hit {
		f.consecHits++
		f.deliver(win, f.ordered(now+f.cfg.StreamLat), true)
		if f.consecHits >= f.cfg.StreamSwitchHits {
			f.mode = 0
			f.stats.ModeSwitches++
			f.fetchStall = now + f.cfg.ModeSwitchPenalty
		}
		return true
	}
	f.consecHits = 0
	f.decodePath(now, win, true)
	return true
}

// decodePath serves a window through the L1I and the decoders. The L1I
// access was normally initiated at FTQ-insertion time (FDP); when the
// window was expected to stream from the µ-op cache and missed anyway,
// the access starts now.
func (f *Frontend) decodePath(now uint64, win *window, build bool) {
	ready := win.lineReady
	if ready == 0 {
		firstLine := win.insts[0].inst.LineAddr()
		lastLine := win.insts[win.n-1].inst.LineAddr()
		for line := firstLine; ; line += isa.LineBytes {
			resident := f.Mem.L1I.Contains(line)
			if done := f.Mem.FetchInst(line, now); done > ready {
				ready = done
			}
			if f.L1IPrefetcher != nil {
				f.L1IPrefetcher.OnFetch(line, resident, now)
			}
			if line >= lastLine {
				break
			}
		}
		win.lineReady = ready
	}
	if ready < now {
		ready = now
	}
	f.deliver(win, f.ordered(ready+f.cfg.DecodePipeLat), false)
	if build {
		// Build µ-op cache entries as the instructions decode.
		for i := 0; i < win.n; i++ {
			wi := &win.insts[i]
			f.builder.Add(wi.inst.PC, wi.inst.Class, wi.predTaken)
		}
	}
}

// ordered enforces in-order µ-op delivery across windows.
func (f *Frontend) ordered(desired uint64) uint64 {
	if desired <= f.lastDeliver {
		return f.lastDeliver + 1
	}
	return desired
}

// deliver places the window's µ-ops into the µ-op queue starting at
// cycle first, at the path's width (8/cycle from the µ-op cache,
// DecodeWidth/cycle from the decoders). An MRC fast-deliver credit
// overrides the path latency entirely.
func (f *Frontend) deliver(win *window, first uint64, fromUop bool) {
	width := f.cfg.DecodeWidth
	if fromUop {
		width = f.cfg.WindowInsts
	}
	if f.fastCredit >= win.n {
		f.fastCredit -= win.n
		first = f.lastDeliver + 1
		width = f.cfg.WindowInsts
	} else {
		f.fastCredit = 0
	}
	if fromUop {
		f.curStreamLen += uint64(win.n)
	} else if f.curStreamLen > 0 {
		f.StreamLens.Add(f.curStreamLen)
		f.curStreamLen = 0
	}
	var last uint64
	for i := 0; i < win.n; i++ {
		ready := first + uint64(i/width)
		tail := (f.uopqHead + f.uopqUsed) % len(f.uopq)
		f.uopq[tail] = DeliveredUop{
			Inst:         win.insts[i].inst,
			Mispredict:   win.insts[i].mispredict,
			ReadyAt:      ready,
			FromUopCache: fromUop,
		}
		f.uopqUsed++
		last = ready
		f.stats.FetchedInsts++
		if fromUop {
			f.stats.UopsFromUopCache++
		} else {
			f.stats.UopsFromDecode++
		}
	}
	f.lastDeliver = last
	if f.resumedAt != 0 && first >= f.resumedAt {
		f.RefillLat.Add(first - f.resumedAt)
		f.resumedAt = 0
	}
	if win.resteer {
		// Decode-time redirect: the BPU resumes once the target is
		// computed at the end of this window's delivery.
		f.waitingDeliver = false
		if resume := last + 1 + f.cfg.ResteerPenalty; resume > f.bpuStallUntil {
			f.bpuStallUntil = resume
		}
	}
}

// windowHit determines whether the window is served by the µ-op cache,
// performing the tag checks (and their statistics) for each entry the
// window maps to. Entry keys follow the build-side termination rules,
// with a carry so that a window continuing a sequential run looks up
// the entry that run opened, not a phantom entry at the window start.
func (f *Frontend) windowHit(now uint64, win *window) bool {
	if win.forceHit {
		return true
	}
	if f.ideal.L1IHits {
		// Residency was sampled when the address was generated, before
		// fetch-directed prefetching brought the line in (§III-C: "all
		// L1I hits are µ-op cache hits").
		return win.l1iResident
	}
	var metas [16]uopcache.InstMeta
	for i := 0; i < win.n; i++ {
		metas[i] = uopcache.InstMeta{
			PC:        win.insts[i].inst.PC,
			Class:     win.insts[i].inst.Class,
			PredTaken: win.insts[i].predTaken,
		}
	}
	specs := uopcache.SplitInto(f.specScratch[:0], metas[:win.n], f.uopCfg)
	f.specScratch = specs[:0]
	allHit := true
	firstKey := uint64(0)
	for i := range specs {
		key := specs[i].StartPC
		if i == 0 && f.carryValid && key == f.carryNext &&
			uopcache.RegionOf(key) == uopcache.RegionOf(f.carryPC) {
			key = f.carryPC
		}
		if i == 0 {
			firstKey = key
		}
		f.markUopBank(now, key)
		if _, ok := f.Uop.Lookup(key); !ok {
			allHit = false
		}
	}
	// Update the carry from the final spec: the run stays open if it
	// neither ended taken nor reached the region boundary.
	lastInst := &win.insts[win.n-1]
	last := specs[len(specs)-1]
	endPC := last.StartPC + uint64(last.Ops-1)*isa.InstBytes
	nextPC := endPC + isa.InstBytes
	open := !last.EndsTaken &&
		!(lastInst.inst.Class.IsBranch() && lastInst.predTaken) &&
		int(last.Ops) < f.uopCfg.OpsPerEntry &&
		uopcache.RegionOf(nextPC) == uopcache.RegionOf(last.StartPC)
	if open {
		f.carryValid = true
		f.carryNext = nextPC
		if len(specs) == 1 {
			f.carryPC = firstKey
		} else {
			f.carryPC = last.StartPC
		}
	} else {
		f.carryValid = false
	}
	return allHit
}
