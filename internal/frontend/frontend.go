// Package frontend models the decoupled frontend of Fig. 1: a branch
// prediction unit generating up to 16 addresses (2 fetch windows) per
// cycle into a fetch target queue, and a fetch engine that serves FTQ
// windows either from the µ-op cache (stream mode, 8 µ-ops/cycle, short
// pipe) or from the L1I + decoders (build mode, 6 µ-ops/cycle, long
// pipe), switching modes with a 1-cycle penalty (§II, §V).
//
// The simulator is trace-driven and does not fetch wrong-path
// instructions: when the BPU's prediction disagrees with the trace, the
// BPU stalls at the offending branch until the backend resolves it
// (execute-time for direction/target mispredictions) or until decode
// discovers the target (BTB-miss resteers). The refill that follows —
// FTQ regeneration plus µ-op-cache-vs-decoder delivery — is exactly the
// window UCP accelerates.
package frontend

import (
	"ucp/internal/bpred"
	"ucp/internal/btb"
	"ucp/internal/cache"
	"ucp/internal/isa"
	"ucp/internal/ittage"
	"ucp/internal/ras"
	"ucp/internal/stats"
	"ucp/internal/trace"
	"ucp/internal/uopcache"
)

// Config sizes the frontend.
type Config struct {
	// FTQWindows is the FTQ capacity in fetch windows (24 windows × 8
	// addresses ≈ the 192-entry FTQ of Table II).
	FTQWindows int
	// WindowsPerCycle bounds BPU window generation (2 → 16 addresses).
	WindowsPerCycle int
	// WindowInsts is the fetch window size (8).
	WindowInsts int
	// UopQueue is the µ-op queue capacity between fetch and dispatch.
	// It covers the 32-entry decode buffer plus the pipeline-stage
	// registers of the in-flight fetch/decode stages (µ-ops occupy a
	// slot from fetch-issue to dispatch in this model).
	UopQueue int
	// DecodeWidth is the decoder throughput per cycle (6).
	DecodeWidth int
	// StreamLat is the µ-op-cache path delivery latency (short pipe).
	StreamLat uint64
	// DecodePipeLat is the additional decode-pipe latency after the L1I
	// line is available (long pipe).
	DecodePipeLat uint64
	// StreamSwitchHits is the number of consecutive µ-op-cache window
	// hits in build mode before switching back to stream mode.
	StreamSwitchHits int
	// ModeSwitchPenalty is the bubble paid on each mode switch.
	ModeSwitchPenalty uint64
	// ResteerPenalty is the extra bubble after a decode-time resteer.
	ResteerPenalty uint64
	// WrongPathFetch models fetch continuing down the wrong path while
	// a misprediction is unresolved (cache pollution; off by default,
	// matching ChampSim's develop branch — DESIGN.md).
	WrongPathFetch bool
}

// DefaultConfig mirrors Table II and §V.
func DefaultConfig() Config {
	return Config{
		FTQWindows:        24,
		WindowsPerCycle:   2,
		WindowInsts:       8,
		UopQueue:          128,
		DecodeWidth:       6,
		StreamLat:         2,
		DecodePipeLat:     4,
		StreamSwitchHits:  3,
		ModeSwitchPenalty: 1,
		ResteerPenalty:    1,
	}
}

// Ideal selects the paper's idealized study configurations (§III).
type Ideal struct {
	// UopAlwaysHit models the ideal µ-op cache (Fig. 4's blue line).
	UopAlwaysHit bool
	// L1IHits treats every window whose lines are L1I-resident as µ-op
	// cache hits (Fig. 5's L1I-Hits configuration).
	L1IHits bool
	// BRCondN > 0 marks all windows as µ-op hits after a conditional
	// misprediction until N conditional branches have been fetched
	// (Fig. 5's IdealBRCond-8/16).
	BRCondN int
	// NoUopCache removes the µ-op cache entirely: every window takes
	// the L1I + decoder path and there is no mode switching (the Fig. 2
	// baseline).
	NoUopCache bool
}

// L1IPrefetcher observes demand instruction fetches; implementations
// issue prefetches through the hierarchy's PrefetchInst.
type L1IPrefetcher interface {
	// OnFetch fires once per demand-fetched line with its residency.
	OnFetch(lineAddr uint64, hit bool, now uint64)
}

// UCPHook lets the UCP engine observe prediction-time events. A nil
// hook disables UCP.
type UCPHook interface {
	// OnCond fires for every conditional branch at prediction time,
	// after the predictor was updated. takenTarget is the BTB's target
	// (valid when btbHit), used to start a not-taken→taken alternate
	// path.
	OnCond(pc uint64, p *bpred.Prediction, actualTaken bool, takenTarget uint64, btbHit bool, now uint64)
	// OnUncond fires for unconditional control flow (Alt-Ind/Alt-RAS
	// shadow training).
	OnUncond(pc uint64, class isa.Class, target uint64, now uint64)
	// OnMispredictResolved fires when the backend redirects the
	// frontend.
	OnMispredictResolved(now uint64)
}

type windowInst struct {
	inst       isa.Inst
	predTaken  bool
	mispredict bool
}

type window struct {
	insts      [16]windowInst
	n          int
	mispredict bool // BPU stalled behind this window until execute
	resteer    bool // BPU stalled until this window's delivery (decode)
	forceHit   bool // ideal-mode override
	// lineReady is the cycle the window's L1I lines are available,
	// initiated at FTQ-insertion time (fetch-directed prefetching); 0
	// when no L1I access was started.
	lineReady uint64
	// l1iResident records whether all of the window's lines were L1I-
	// resident when the address was generated (the L1I-Hits ideal).
	l1iResident bool
}

// DeliveredUop is one µ-op handed to dispatch.
type DeliveredUop struct {
	Inst         isa.Inst
	Mispredict   bool
	ReadyAt      uint64
	FromUopCache bool
}

// Stats aggregates frontend counters.
type Stats struct {
	Windows          uint64
	FetchedInsts     uint64
	UopsFromUopCache uint64
	UopsFromDecode   uint64
	EntryLookups     uint64
	EntryHits        uint64
	ModeSwitches     uint64
	CondBranches     uint64
	CondMispredicts  uint64
	Mispredicts      uint64 // all execute-resolved redirects
	Resteers         uint64 // decode-resolved redirects
	BPUStallCycles   uint64
	WrongPathInsts   uint64
	H2PTage          bpred.H2PStats
	H2PUCP           bpred.H2PStats
}

// Frontend is the decoupled fetch engine.
type Frontend struct {
	cfg   Config
	ideal Ideal

	src     trace.Source
	srcDone bool

	// Batched trace delivery (trace.BatchSource fast path): when the
	// source supports it, instructions are pulled many-at-a-time into
	// batch, amortizing the per-Next interface dispatch. batchSrc is nil
	// for scalar-only sources and the consumption order is identical
	// either way.
	batchSrc trace.BatchSource
	batch    []isa.Inst
	batchPos int
	batchLen int

	Pred *bpred.TageSCL
	BTB  btb.TargetBuffer
	RAS  *ras.Stack
	Ind  *ittage.Predictor
	Uop  *uopcache.UopCache
	Mem  *cache.Hierarchy

	builder *uopcache.Builder
	hook    UCPHook

	// L1IPrefetcher observes demand instruction fetches (standalone
	// prefetcher baselines attach here).
	L1IPrefetcher L1IPrefetcher

	ftq     []window
	ftqHead int
	ftqUsed int

	uopq     []DeliveredUop
	uopqHead int
	uopqUsed int

	mode        int // 0 = stream, 1 = build
	consecHits  int
	fetchStall  uint64
	lastDeliver uint64

	// Entry-run carry across windows (see fetchWindow).
	carryValid bool
	carryPC    uint64
	carryNext  uint64
	carryHit   bool

	// BPU stall state.
	bpuStallUntil  uint64 // resume at this cycle (resteer/flush)
	waitingFlush   bool
	waitingDeliver bool

	// Sampled-mode state (functional.go): window generation gate and the
	// last L1I line touched by the functional-commit path.
	paused      bool
	ffLastLine  uint64
	ffLineValid bool

	brCondCredit int // remaining forced-hit conditional branches
	fastCredit   int // µ-ops streamed by the MRC (bypass fetch latency)
	wp           wrongPath

	// Distribution instrumentation (§III-A: stream lengths decide
	// whether the µ-op cache pays; refill latency is what UCP attacks).
	StreamLens   *stats.Histogram
	RefillLat    *stats.Histogram
	curStreamLen uint64
	resumedAt    uint64 // pending refill-latency measurement, 0 = none

	// Per-cycle bank usage (for UCP conflict modeling).
	bankCycle    uint64
	btbBanksUsed uint64
	uopBanksUsed uint64
	stolenCycles uint64 // demand cycles lost to alternate-path BTB wins

	// Hot-path scratch, reused so steady-state fetch allocates nothing:
	// the BPU's Prediction (which would otherwise escape through the
	// UCPHook interface at every conditional branch), the entry specs
	// windowHit derives, and the µ-op cache geometry.
	predScratch bpred.Prediction
	specScratch []uopcache.EntrySpec
	uopCfg      uopcache.Config

	stats Stats
}

// New wires a frontend. All structures are owned by the caller so UCP
// and the harness can share them.
func New(cfg Config, src trace.Source, pred *bpred.TageSCL, b btb.TargetBuffer,
	r *ras.Stack, ind *ittage.Predictor, u *uopcache.UopCache,
	mem *cache.Hierarchy, ideal Ideal) *Frontend {
	f := &Frontend{
		cfg:         cfg,
		ideal:       ideal,
		src:         src,
		Pred:        pred,
		BTB:         b,
		RAS:         r,
		Ind:         ind,
		Uop:         u,
		Mem:         mem,
		builder:     uopcache.NewBuilder(u, false),
		ftq:         make([]window, cfg.FTQWindows),
		uopq:        make([]DeliveredUop, cfg.UopQueue),
		mode:        1, // cold caches start on the build path
		StreamLens:  newStreamLens(),
		RefillLat:   newRefillLat(),
		specScratch: make([]uopcache.EntrySpec, 0, cfg.WindowInsts),
		uopCfg:      u.Config(),
	}
	// One-time type assertion: sources with a batch fast path are drained
	// through a read-ahead buffer instead of per-instruction dispatch.
	if bs, ok := src.(trace.BatchSource); ok {
		f.batchSrc = bs
		f.batch = make([]isa.Inst, 128)
	}
	return f
}

// nextInst pulls the next trace instruction, refilling the read-ahead
// buffer through the batch fast path when the source has one.
func (f *Frontend) nextInst() (isa.Inst, bool) {
	if f.batchPos < f.batchLen {
		in := f.batch[f.batchPos]
		f.batchPos++
		return in, true
	}
	if f.batchSrc != nil {
		n := f.batchSrc.NextBatch(f.batch)
		if n > 0 {
			f.batchPos, f.batchLen = 1, n
			return f.batch[0], true
		}
		return isa.Inst{}, false
	}
	return f.src.Next()
}

// Histogram constructors are shared between New and ResetHistograms so
// each stat name has exactly one registration site (ucplint statname).
func newStreamLens() *stats.Histogram {
	return stats.NewHistogram("µ-op cache stream length (µ-ops)")
}

func newRefillLat() *stats.Histogram {
	return stats.NewHistogram("mispredict-to-first-µ-op refill latency (cycles)")
}

// SetHook attaches the UCP engine.
func (f *Frontend) SetHook(h UCPHook) { f.hook = h }

// Stats returns a copy of the counters.
func (f *Frontend) Stats() Stats { return f.stats }

// Done reports whether the trace is exhausted and all buffered work
// drained.
func (f *Frontend) Done() bool {
	return f.srcDone && f.ftqUsed == 0 && f.uopqUsed == 0
}

// Mode returns 0 for stream mode, 1 for build mode.
func (f *Frontend) Mode() int { return f.mode }

// InStreamMode reports whether the decoders are idle this cycle
// (UCP-SharedDecoders gate).
func (f *Frontend) InStreamMode() bool { return f.mode == 0 }

// BTBBankBusy reports whether the demand path used the given BTB bank
// during the current cycle.
func (f *Frontend) BTBBankBusy(now uint64, bank int) bool {
	return f.bankCycle == now && f.btbBanksUsed&(1<<uint(bank)) != 0
}

// UopBankBusy reports whether the demand path tag-checked the given
// µ-op cache bank during the current cycle.
func (f *Frontend) UopBankBusy(now uint64, bank int) bool {
	return f.bankCycle == now && f.uopBanksUsed&(1<<uint(bank)) != 0
}

// StealBTBCycle models the alternate path winning a conflicted BTB bank:
// the demand path retries next cycle (§IV-C).
func (f *Frontend) StealBTBCycle(now uint64) {
	f.stolenCycles++
	if f.bpuStallUntil < now+2 && !f.waitingFlush && !f.waitingDeliver {
		f.bpuStallUntil = now + 2
	}
}

func (f *Frontend) markBanks(now uint64, pc uint64) {
	if f.bankCycle != now {
		f.bankCycle = now
		f.btbBanksUsed, f.uopBanksUsed = 0, 0
	}
	f.btbBanksUsed |= 1 << uint(f.BTB.BankOf(pc))
}

func (f *Frontend) markUopBank(now uint64, pc uint64) {
	if f.bankCycle != now {
		f.bankCycle = now
		f.btbBanksUsed, f.uopBanksUsed = 0, 0
	}
	f.uopBanksUsed |= 1 << uint(f.Uop.BankOf(pc))
}

// GrantFastDeliver lets the next n µ-ops bypass fetch/decode latency
// (MRC streaming on a misprediction-recovery hit, §VI-F).
func (f *Frontend) GrantFastDeliver(n int) { f.fastCredit = n }

// ResumeAt redirects the frontend after the backend resolved the stalled
// misprediction.
func (f *Frontend) ResumeAt(cycle uint64) {
	if f.waitingFlush {
		f.waitingFlush = false
		f.bpuStallUntil = cycle
		f.resumedAt = cycle
		f.stopWrongPath()
		if f.hook != nil {
			f.hook.OnMispredictResolved(cycle)
		}
	}
}

// ResetHistograms clears the distribution instrumentation (called at
// the warmup boundary so distributions cover the measured window only).
func (f *Frontend) ResetHistograms() {
	f.StreamLens = newStreamLens()
	f.RefillLat = newRefillLat()
}

// PopUop hands the next ready µ-op to dispatch, if any.
func (f *Frontend) PopUop(now uint64) (DeliveredUop, bool) {
	if f.uopqUsed == 0 {
		return DeliveredUop{}, false
	}
	u := f.uopq[f.uopqHead]
	if u.ReadyAt > now {
		return DeliveredUop{}, false
	}
	f.uopqHead = (f.uopqHead + 1) % len(f.uopq)
	f.uopqUsed--
	return u, true
}

// Cycle advances the frontend: fetch first (consuming last cycle's FTQ),
// then BPU window generation; a pending misprediction optionally keeps
// fetching down the wrong path.
func (f *Frontend) Cycle(now uint64) {
	f.fetch(now)
	f.generate(now)
	f.wrongPathCycle(now)
}
