package frontend

import (
	"testing"

	"ucp/internal/bpred"
	"ucp/internal/btb"
	"ucp/internal/cache"
	"ucp/internal/isa"
	"ucp/internal/ittage"
	"ucp/internal/ras"
	"ucp/internal/trace"
	"ucp/internal/uopcache"
)

// build constructs a frontend over the given instruction slice.
func build(insts []isa.Inst, ideal Ideal) *Frontend {
	mem := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	pred := bpred.NewTageSCL(bpred.Config8KB())
	b := btb.New(btb.Config{Entries: 4096, Ways: 4, Banks: 16})
	r := ras.New(64)
	ind := ittage.New(ittage.Config4KB())
	u := uopcache.New(uopcache.DefaultConfig())
	return New(DefaultConfig(), trace.NewSliceSource(insts), pred, b, r, ind, u, mem, ideal)
}

// drain runs the frontend for up to maxCycles, collecting delivered
// µ-ops (resolving mispredict stalls immediately, like an ideal
// backend).
func drain(t *testing.T, f *Frontend, maxCycles uint64) []DeliveredUop {
	t.Helper()
	var out []DeliveredUop
	for now := uint64(0); now < maxCycles; now++ {
		f.Cycle(now)
		for {
			u, ok := f.PopUop(now)
			if !ok {
				break
			}
			out = append(out, u)
			if u.Mispredict {
				f.ResumeAt(now + 2)
			}
		}
		if f.Done() {
			break
		}
	}
	return out
}

// straightLine builds n sequential ALU instructions from base.
func straightLine(base uint64, n int) []isa.Inst {
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = isa.Inst{PC: base + uint64(i)*4, Class: isa.ALU}
	}
	return insts
}

// loopTrace builds iters iterations of a body of bodyLen instructions
// ending in a backward conditional branch (taken except the last).
func loopTrace(base uint64, bodyLen, iters int) []isa.Inst {
	var insts []isa.Inst
	for it := 0; it < iters; it++ {
		for i := 0; i < bodyLen-1; i++ {
			insts = append(insts, isa.Inst{PC: base + uint64(i)*4, Class: isa.ALU})
		}
		brPC := base + uint64(bodyLen-1)*4
		taken := it < iters-1
		insts = append(insts, isa.Inst{
			PC: brPC, Class: isa.CondBranch, Taken: taken, Target: base,
		})
	}
	return insts
}

func TestStraightLineDeliversAll(t *testing.T) {
	insts := straightLine(0x10000, 100)
	f := build(insts, Ideal{})
	out := drain(t, f, 10_000)
	if len(out) != 100 {
		t.Fatalf("delivered %d µ-ops, want 100", len(out))
	}
	for i, u := range out {
		if u.Inst.PC != insts[i].PC {
			t.Fatalf("µ-op %d out of order: %#x", i, u.Inst.PC)
		}
	}
	if f.Stats().Mispredicts != 0 {
		t.Fatal("phantom mispredictions on straight-line code")
	}
}

func TestDeliveryOrderAcrossPaths(t *testing.T) {
	// A loop re-executes the same code: later iterations hit the µ-op
	// cache while the first goes through decode. Order must hold.
	insts := loopTrace(0x20000, 16, 30)
	f := build(insts, Ideal{})
	out := drain(t, f, 100_000)
	if len(out) != len(insts) {
		t.Fatalf("delivered %d, want %d", len(out), len(insts))
	}
	for i := range out {
		if out[i].Inst.PC != insts[i].PC {
			t.Fatalf("order violated at %d", i)
		}
	}
	s := f.Stats()
	if s.UopsFromUopCache == 0 {
		t.Fatal("loop never hit the µ-op cache")
	}
	if s.UopsFromDecode == 0 {
		t.Fatal("cold code never used the decoders")
	}
}

func TestLoopEntersStreamMode(t *testing.T) {
	insts := loopTrace(0x30000, 24, 50)
	f := build(insts, Ideal{})
	drain(t, f, 100_000)
	if f.Stats().ModeSwitches == 0 {
		t.Fatal("frontend never switched modes on a hot loop")
	}
	// The final mode after a long hot loop should be stream.
	if f.Mode() != 0 {
		t.Fatalf("mode %d after hot loop, want stream(0)", f.Mode())
	}
}

func TestMispredictStallsBPU(t *testing.T) {
	// An alternating branch mispredicts under a cold predictor; the BPU
	// must stall behind it until ResumeAt, so without resumption the
	// frontend makes no progress past the branch.
	insts := []isa.Inst{
		{PC: 0x1000, Class: isa.ALU},
		{PC: 0x1004, Class: isa.CondBranch, Taken: true, Target: 0x2000},
		{PC: 0x2000, Class: isa.ALU},
		{PC: 0x2004, Class: isa.ALU},
	}
	f := build(insts, Ideal{})
	// Cold predictors predict not-taken; taken branch without BTB entry
	// is a resteer; to force a mispredict train... simply check: either
	// a mispredict or resteer stall occurs and, once delivered/resumed,
	// all µ-ops arrive.
	out := drain(t, f, 10_000)
	if len(out) != 4 {
		t.Fatalf("delivered %d, want 4", len(out))
	}
	s := f.Stats()
	if s.Mispredicts+s.Resteers == 0 {
		t.Fatal("cold taken branch must mispredict or resteer")
	}
}

func TestResteerResumesWithoutBackend(t *testing.T) {
	// BTB-miss direct jumps resteer at decode: the frontend must make
	// progress without any backend ResumeAt call.
	insts := []isa.Inst{
		{PC: 0x1000, Class: isa.DirectJump, Taken: true, Target: 0x5000},
		{PC: 0x5000, Class: isa.ALU},
	}
	f := build(insts, Ideal{})
	var out []DeliveredUop
	for now := uint64(0); now < 1000 && !f.Done(); now++ {
		f.Cycle(now)
		for {
			u, ok := f.PopUop(now)
			if !ok {
				break
			}
			out = append(out, u) // never call ResumeAt
		}
	}
	if len(out) != 2 {
		t.Fatalf("resteer did not self-resume: %d µ-ops", len(out))
	}
	if f.Stats().Resteers != 1 {
		t.Fatalf("resteers = %d, want 1", f.Stats().Resteers)
	}
}

func TestIdealUopAlwaysHit(t *testing.T) {
	insts := straightLine(0x40000, 200)
	f := build(insts, Ideal{UopAlwaysHit: true})
	out := drain(t, f, 10_000)
	if len(out) != 200 {
		t.Fatalf("delivered %d", len(out))
	}
	s := f.Stats()
	if s.UopsFromDecode != 0 {
		t.Fatalf("ideal µ-op cache used decoders for %d µ-ops", s.UopsFromDecode)
	}
}

func TestNoUopCacheNeverHits(t *testing.T) {
	insts := loopTrace(0x50000, 16, 20)
	f := build(insts, Ideal{NoUopCache: true})
	drain(t, f, 100_000)
	s := f.Stats()
	if s.UopsFromUopCache != 0 {
		t.Fatal("NoUopCache delivered from the µ-op cache")
	}
	if s.ModeSwitches != 0 {
		t.Fatal("NoUopCache must not switch modes")
	}
}

func TestWindowEndsAtTakenBranch(t *testing.T) {
	// body of 4 with taken back-branch: windows must be 4 long, so
	// #windows ≈ #insts/4.
	insts := loopTrace(0x60000, 4, 40)
	f := build(insts, Ideal{})
	drain(t, f, 100_000)
	s := f.Stats()
	if s.Windows < 35 {
		t.Fatalf("only %d windows for 40 four-inst iterations", s.Windows)
	}
}

func TestPopUopRespectsReadyAt(t *testing.T) {
	insts := straightLine(0x70000, 8)
	f := build(insts, Ideal{})
	f.Cycle(0)
	f.Cycle(1)
	// Cold code goes through ITLB walk + memory: nothing can be ready
	// at cycle 2.
	if _, ok := f.PopUop(2); ok {
		t.Fatal("µ-op delivered before its ReadyAt")
	}
}

func TestHitRateAccounting(t *testing.T) {
	insts := loopTrace(0x80000, 32, 100)
	f := build(insts, Ideal{})
	drain(t, f, 200_000)
	s := f.Stats()
	total := s.UopsFromUopCache + s.UopsFromDecode
	if total != uint64(len(insts)) {
		t.Fatalf("accounted %d µ-ops, want %d", total, len(insts))
	}
	hr := float64(s.UopsFromUopCache) / float64(total)
	if hr < 0.7 {
		t.Fatalf("hot loop hit rate %.2f, want > 0.7", hr)
	}
}

func TestMispredictResolutionViaHook(t *testing.T) {
	// The hook must see OnMispredictResolved exactly when ResumeAt
	// releases a waiting flush.
	insts := loopTrace(0x90000, 6, 60)
	f := build(insts, Ideal{})
	h := &recordingHook{}
	f.SetHook(h)
	drain(t, f, 100_000)
	if f.Stats().Mispredicts > 0 && h.resolved == 0 {
		t.Fatal("hook never notified of resolutions")
	}
	if h.conds == 0 {
		t.Fatal("hook never saw conditional branches")
	}
}

type recordingHook struct {
	conds    int
	unconds  int
	resolved int
}

func (h *recordingHook) OnCond(pc uint64, p *bpred.Prediction, taken bool, target uint64, hit bool, now uint64) {
	h.conds++
}
func (h *recordingHook) OnUncond(pc uint64, class isa.Class, target uint64, now uint64) {
	h.unconds++
}
func (h *recordingHook) OnMispredictResolved(now uint64) { h.resolved++ }

func TestBankTracking(t *testing.T) {
	insts := loopTrace(0xa0000, 8, 10)
	f := build(insts, Ideal{})
	sawBTB := false
	for now := uint64(0); now < 1000 && !f.Done(); now++ {
		f.Cycle(now)
		for b := 0; b < 16; b++ {
			if f.BTBBankBusy(now, b) {
				sawBTB = true
			}
		}
		for {
			u, ok := f.PopUop(now)
			if !ok {
				break
			}
			if u.Mispredict {
				f.ResumeAt(now + 2)
			}
		}
	}
	if !sawBTB {
		t.Fatal("demand BTB bank usage never observed")
	}
}

func TestGrantFastDeliver(t *testing.T) {
	// With a huge fast-deliver credit, cold straight-line code must
	// deliver far faster than without.
	slow := build(straightLine(0xb0000, 400), Ideal{})
	slowOut := drain(t, slow, 100_000)
	fast := build(straightLine(0xb0000, 400), Ideal{})
	fast.GrantFastDeliver(1 << 30)
	fastOut := drain(t, fast, 100_000)
	if len(slowOut) != 400 || len(fastOut) != 400 {
		t.Fatalf("deliveries %d/%d", len(slowOut), len(fastOut))
	}
	if fastOut[399].ReadyAt >= slowOut[399].ReadyAt {
		t.Fatalf("fast-deliver not faster: %d vs %d",
			fastOut[399].ReadyAt, slowOut[399].ReadyAt)
	}
}

func TestWrongPathFetchPollutes(t *testing.T) {
	// With wrong-path fetch enabled, unresolved mispredictions touch
	// instruction lines the correct path never fetches.
	insts := loopTrace(0xc0000, 6, 80)
	mem := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	pred := bpred.NewTageSCL(bpred.Config8KB())
	b := btb.New(btb.DefaultConfig())
	r := ras.New(64)
	ind := ittage.New(ittage.Config4KB())
	u := uopcache.New(uopcache.DefaultConfig())
	cfg := DefaultConfig()
	cfg.WrongPathFetch = true
	f := New(cfg, trace.NewSliceSource(insts), pred, b, r, ind, u, mem, Ideal{})
	// Drain with a slow "backend": resolve flushes 30 cycles late so the
	// wrong path has time to run.
	resolveAt := uint64(0)
	for now := uint64(0); now < 100_000 && !f.Done(); now++ {
		f.Cycle(now)
		if resolveAt != 0 && now >= resolveAt {
			f.ResumeAt(now + 1)
			resolveAt = 0
		}
		for {
			uop, ok := f.PopUop(now)
			if !ok {
				break
			}
			if uop.Mispredict && resolveAt == 0 {
				resolveAt = now + 30
			}
		}
	}
	if f.Stats().Mispredicts == 0 {
		t.Skip("no mispredictions to exercise the wrong path")
	}
	if f.Stats().WrongPathInsts == 0 {
		t.Fatal("wrong-path fetch never walked")
	}
}

func TestWrongPathOffByDefault(t *testing.T) {
	insts := loopTrace(0xd0000, 6, 40)
	f := build(insts, Ideal{})
	drain(t, f, 100_000)
	if f.Stats().WrongPathInsts != 0 {
		t.Fatal("wrong-path fetch active without opt-in")
	}
}
