package frontend

import (
	"ucp/internal/btb"
	"ucp/internal/isa"
)

// This file is the frontend's functional-commit path: the sampled
// simulation mode (sim.SamplingConfig) fast-forwards between detailed
// windows by committing instructions in program order and updating only
// the state-carrying structures — branch predictors with architectural
// outcomes, the BTB, the RAS, ITTAGE, the µ-op cache build path, and
// L1I/ITLB demand fills — while skipping the cycle-accurate FTQ, fetch,
// and delivery machinery entirely. Frontend counters and the
// stream/refill histograms are NOT touched: measured statistics come
// only from detailed windows.

// Pause stops BPU window generation so the in-flight FTQ/µ-op-queue
// contents can drain through fetch and dispatch. The sampled controller
// pauses before leaving a detailed window; full-detail runs never pause.
func (f *Frontend) Pause() { f.paused = true }

// Unpause resumes window generation after a fast-forward segment. The
// entry-run carry and any pending refill-latency measurement are
// cleared: both describe fetch state from before the fast-forward and
// no longer correspond to the stream position.
func (f *Frontend) Unpause() {
	f.paused = false
	f.carryValid = false
	f.resumedAt = 0
}

// Empty reports whether no fetched work remains buffered (the FTQ and
// µ-op queue are drained). Together with Backend.Drained it defines the
// quiescent point where detailed execution can hand the stream position
// to the functional path.
func (f *Frontend) Empty() bool { return f.ftqUsed == 0 && f.uopqUsed == 0 }

// WarmCond trains the direction predictor on one conditional branch
// outcome reported by the warming skip, exactly as the demand and
// functional paths train it, and returns the direction it would have
// predicted (consumed by the core's shadow history). The ITTAGE path
// history is not advanced — branch targets are unknown during a skip —
// and refills during the functional-warm horizon.
func (f *Frontend) WarmCond(pc uint64, taken bool) bool {
	p := &f.predScratch
	f.Pred.PredictInto(p, f.Pred.Hist(), pc)
	f.Pred.Update(pc, taken, p)
	f.Pred.PushHistory(pc, taken)
	return p.Taken
}

// FunctionalCommit retires one instruction through the functional path:
// it trains the direction predictor with the architectural outcome,
// maintains both global histories, inserts branch targets into the BTB,
// tracks calls/returns on the RAS, feeds the µ-op cache builder, and
// issues the L1I/ITLB demand fill once per line crossing. It performs
// no cycle accounting — the caller supplies a nominal now that must be
// non-decreasing across the run. For conditional branches the return
// value is the direction the demand predictor would have predicted
// (the core's shadow history advances on predictions, not outcomes);
// it is false for every other class.
func (f *Frontend) FunctionalCommit(in *isa.Inst, now uint64) (predTaken bool) {
	switch in.Class {
	case isa.CondBranch:
		// Train and advance history with the architectural outcome,
		// exactly as the demand path does after predicting.
		p := &f.predScratch
		f.Pred.PredictInto(p, f.Pred.Hist(), in.PC)
		predTaken = p.Taken
		f.Pred.Update(in.PC, in.Taken, p)
		f.Pred.PushHistory(in.PC, in.Taken)
		f.Ind.Hist().Push(in.PC, in.NextPC(), in.Taken)
		if in.Taken {
			f.BTB.Insert(in.PC, in.Target, btb.KindCond)
		}

	case isa.DirectJump, isa.Call:
		f.BTB.Insert(in.PC, in.Target, btb.KindDirect)
		if in.Class == isa.Call {
			f.RAS.Push(in.PC + isa.InstBytes)
		}
		f.Ind.Hist().Push(in.PC, in.Target, true)

	case isa.IndirectJump, isa.IndirectCall:
		l := f.Ind.Predict(f.Ind.Hist(), in.PC)
		f.Ind.Update(in.PC, in.Target, &l)
		f.BTB.Insert(in.PC, in.Target, btb.KindIndirect)
		if in.Class == isa.IndirectCall {
			f.RAS.Push(in.PC + isa.InstBytes)
		}
		f.Ind.Hist().Push(in.PC, in.Target, true)

	case isa.Return:
		f.RAS.Pop()
		f.BTB.Insert(in.PC, in.Target, btb.KindReturn)
		f.Ind.Hist().Push(in.PC, in.Target, true)
	}

	// µ-op cache fill along the architectural path. The builder sees the
	// actual direction where the demand build path sees the predicted
	// one; with the predictor trained on the same stream the two almost
	// always agree, and entry shapes only differ transiently.
	if !f.ideal.NoUopCache {
		f.builder.Add(in.PC, in.Class, in.Class.IsBranch() && in.Taken)
	}

	// L1I/ITLB demand fill, once per line-boundary crossing (ideal
	// always-hit machines never touch the L1I on the demand path). The
	// warm path skips the MSHR/latency model — the functional clock is
	// far denser than sustainable demand traffic — and for the same
	// reason the standalone L1I prefetcher is NOT driven here: it is a
	// timing mechanism and re-trains during the detailed warm segment.
	if !f.ideal.UopAlwaysHit {
		if la := in.LineAddr(); !f.ffLineValid || la != f.ffLastLine {
			f.ffLastLine, f.ffLineValid = la, true
			f.Mem.WarmFetchInst(la, now)
		}
	}
	return predTaken
}
