package frontend

import (
	"ucp/internal/btb"
	"ucp/internal/isa"
)

// Wrong-path fetch modeling (optional, off by default — see DESIGN.md).
//
// While a misprediction is unresolved, real hardware keeps fetching down
// the wrong path, touching the L1I and µ-op cache and occupying fetch
// bandwidth. The trace contains only the correct path, so the wrong path
// is reconstructed the same way UCP reconstructs alternate paths: by
// walking the BTB from the mispredicted branch's predicted successor.
// Fetched wrong-path lines perturb L1I and µ-op cache LRU state (the
// pollution effect); the µ-ops themselves are squashed at resolution and
// never delivered.

// wrongPath holds the walker state while a flush is pending.
type wrongPath struct {
	active bool
	pc     uint64
	walked int
}

// maxWrongPathInsts bounds one wrong-path excursion.
const maxWrongPathInsts = 128

// startWrongPath begins a wrong-path excursion at the predicted (wrong)
// successor of the mispredicted branch. For a branch wrongly predicted
// taken, the wrong path starts at the BTB target (if known); wrongly
// predicted not-taken starts at the fall-through.
func (f *Frontend) startWrongPath(in *isa.Inst, predTaken bool) {
	if !f.cfg.WrongPathFetch {
		return
	}
	var pc uint64
	if predTaken {
		target, _, hit := f.BTB.Probe(in.PC)
		if !hit {
			return
		}
		pc = target
	} else {
		pc = in.PC + isa.InstBytes
	}
	f.wp = wrongPath{active: true, pc: pc}
}

// stopWrongPath squashes the excursion (at flush resolution).
func (f *Frontend) stopWrongPath() { f.wp.active = false }

// wrongPathCycle advances the excursion by one fetch window, touching
// the caches the demand path would have touched.
func (f *Frontend) wrongPathCycle(now uint64) {
	if !f.wp.active || !f.waitingFlush {
		return
	}
	pc := f.wp.pc
	for i := 0; i < f.cfg.WindowInsts; i++ {
		if f.wp.walked >= maxWrongPathInsts {
			f.wp.active = false
			return
		}
		f.wp.walked++
		f.stats.WrongPathInsts++
		// Tag-check the µ-op cache (LRU perturbation) and, on a miss,
		// fetch the line (L1I pollution + MSHR/bandwidth use).
		if f.ideal.NoUopCache || !f.Uop.Probe(pc) {
			f.Mem.FetchInst(pc&^(isa.LineBytes-1), now)
		}
		target, kind, hit := f.BTB.Probe(pc)
		if hit {
			switch kind {
			case btb.KindCond:
				// Approximation: wrong-path conditionals follow their
				// fall-through (no second predictor context is spent on
				// an already-doomed path).
				pc += isa.InstBytes
			case btb.KindReturn:
				// The RAS must not be perturbed; stop the excursion.
				f.wp.active = false
				f.wp.pc = pc
				return
			default:
				pc = target
			}
		} else {
			pc += isa.InstBytes
		}
	}
	f.wp.pc = pc
}
