package harness

import (
	"fmt"

	"ucp/internal/bpred"
	"ucp/internal/core"
	"ucp/internal/prefetch"
	"ucp/internal/sim"
	"ucp/internal/uopcache"
)

// Named machine configurations for the experiments. Every distinct
// configuration must have a distinct Name — it keys the result cache.

// NoUop removes the µ-op cache (the Fig. 2/10 reference point).
func NoUop() sim.Config {
	c := sim.Baseline()
	c.Name = "no-uop-cache"
	c.Ideal.NoUopCache = true
	return c
}

// BaselineCfg is the Table II machine.
func BaselineCfg() sim.Config { return sim.Baseline() }

// UopSize scales the µ-op cache capacity (Fig. 4).
func UopSize(ops int) sim.Config {
	c := sim.Baseline()
	c.Name = fmt.Sprintf("uop-%dK", ops/1024)
	c.Uop = uopcache.ConfigOps(ops)
	return c
}

// IdealUop is the perfect µ-op cache (Fig. 4's blue line).
func IdealUop() sim.Config {
	c := sim.Baseline()
	c.Name = "uop-ideal"
	c.Ideal.UopAlwaysHit = true
	return c
}

// Prefetcher attaches a standalone L1I prefetcher; mode selects the
// Fig. 5 idealization ("base", "l1ihits", "brcond8", "brcond16").
func Prefetcher(name, mode string) sim.Config {
	if name == "" && mode == "base" {
		// Identical to the Table II baseline: share its cached results.
		return sim.Baseline()
	}
	c := sim.Baseline()
	label := name
	if label == "" {
		label = "none"
	}
	c.Name = "pf-" + label + "-" + mode
	c.L1IPrefetcher = name
	switch mode {
	case "base":
	case "l1ihits":
		c.Ideal.L1IHits = true
	case "brcond8":
		c.Ideal.BRCondN = 8
	case "brcond16":
		c.Ideal.BRCondN = 16
	default:
		panic("harness: unknown prefetcher mode " + mode)
	}
	return c
}

// UCP is the main proposal (with Alt-Ind, threshold 500).
func UCP() sim.Config { return sim.WithUCP(core.DefaultConfig()) }

// UCPNoInd drops the dedicated indirect predictor (Fig. 12a).
func UCPNoInd() sim.Config {
	c := sim.WithUCP(core.NoIndConfig())
	c.Name = "UCP-NoIND"
	return c
}

// UCPTageConf swaps in Seznec's original confidence estimator (Fig. 12b).
func UCPTageConf() sim.Config {
	u := core.DefaultConfig()
	u.Estimator = bpred.EstimatorTageConf
	c := sim.WithUCP(u)
	c.Name = "UCP-TAGE-Conf"
	return c
}

// UCPThreshold sweeps the stop threshold (Fig. 15); tillL1I selects the
// L1I-only flavor.
func UCPThreshold(threshold int, tillL1I bool) sim.Config {
	if threshold == 500 && !tillL1I {
		return UCP() // the default configuration; share its cache entry
	}
	u := core.DefaultConfig()
	u.StopThreshold = threshold
	u.TillL1I = tillL1I
	c := sim.WithUCP(u)
	kind := "uop"
	if tillL1I {
		kind = "l1i"
	}
	c.Name = fmt.Sprintf("UCP-%s-T%d", kind, threshold)
	return c
}

// UCPSharedDecoders shares the demand decoders (§VI-F).
func UCPSharedDecoders() sim.Config {
	u := core.DefaultConfig()
	u.SharedDecoders = true
	c := sim.WithUCP(u)
	c.Name = "UCP-SharedDecoders"
	return c
}

// UCPIdealBTB removes BTB bank conflicts (§VI-F).
func UCPIdealBTB() sim.Config {
	u := core.DefaultConfig()
	u.IdealBTBBanking = true
	c := sim.WithUCP(u)
	c.Name = "UCP-IdealBTBBanking"
	return c
}

// MRCCfg is the misprediction recovery cache baseline at a given budget.
func MRCCfg(kb float64) sim.Config {
	c := sim.Baseline()
	c.Name = fmt.Sprintf("MRC-%.1fKB", kb)
	m := prefetch.MRCConfigKB(kb)
	c.MRC = &m
	return c
}

// DoublePredictor doubles the conditional predictor budget (Fig. 16's
// TAGE-SC-Lx2 point).
func DoublePredictor() sim.Config {
	c := sim.Baseline()
	c.Name = "TAGE-SC-Lx2"
	c.Pred = bpred.Config128KB()
	return c
}
