package harness

import (
	"fmt"
	"sort"

	"ucp/internal/prefetch"
	"ucp/internal/sim"
)

// Every figure method returns an error instead of panicking: a bad
// configuration fails its own figure and the caller decides whether the
// rest of the evaluation continues (cmd/experiments does).

// Fig2 reproduces Fig. 2: IPC improvement of the 4Kops µ-op cache over
// no µ-op cache, per trace, sorted. The paper reports gains for 80.7%
// of traces and slowdowns for the rest.
func (r *Runner) Fig2() error {
	base, err := r.Sweep(NoUop())
	if err != nil {
		return err
	}
	uop, err := r.Sweep(BaselineCfg())
	if err != nil {
		return err
	}
	r.section("Fig. 2 — µ-op cache IPC impact vs no µ-op cache",
		"Per-trace IPC improvement (%) of the 4Kops µ-op cache, sorted ascending.")
	r.tableHeader("trace", "IPC improvement (%)")
	benefit := 0
	for _, tv := range improvements(base, uop) {
		fmt.Fprintf(r.opts.Out, "%s | %.2f\n", tv.trace, tv.value)
		if tv.value > 0 {
			benefit++
		}
	}
	fmt.Fprintf(r.opts.Out, "\n- geomean improvement: %.2f%%\n", Geomean(base, uop))
	fmt.Fprintf(r.opts.Out, "- traces benefiting: %.1f%% (paper: 80.7%%)\n",
		100*float64(benefit)/float64(len(base)))
	return nil
}

// Fig3 reproduces Fig. 3: per-instruction µ-op cache hit rate and mode
// switches per kilo-instruction, per trace, sorted by hit rate.
func (r *Runner) Fig3() error {
	rs, err := r.Sweep(BaselineCfg())
	if err != nil {
		return err
	}
	sorted := append([]sim.Result(nil), rs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].UopHitRate < sorted[j].UopHitRate })
	r.section("Fig. 3 — µ-op cache hit rate and switch PKI",
		"Baseline 4Kops µ-op cache, sorted by hit rate.")
	r.tableHeader("trace", "hit rate (%)", "switch PKI")
	for _, res := range sorted {
		fmt.Fprintf(r.opts.Out, "%s | %.1f | %.2f\n", res.Trace, res.UopHitRate*100, res.SwitchPKI)
	}
	fmt.Fprintf(r.opts.Out, "\n- amean hit rate: %.1f%% (paper: 71.6%%)\n",
		100*Amean(rs, func(x sim.Result) float64 { return x.UopHitRate }))
	fmt.Fprintf(r.opts.Out, "- amean switch PKI: %.2f\n",
		Amean(rs, func(x sim.Result) float64 { return x.SwitchPKI }))
	return nil
}

// Fig4 reproduces Fig. 4: µ-op cache size sweep (speedup over the 4Kops
// baseline and hit rate), plus the ideal µ-op cache.
func (r *Runner) Fig4() error {
	base, err := r.Sweep(BaselineCfg())
	if err != nil {
		return err
	}
	r.section("Fig. 4 — increasing the µ-op cache size",
		"Speedup over the 4Kops baseline and amean hit rate per size; 'ideal' is the always-hit µ-op cache (paper: 10.8% avg).")
	r.tableHeader("µ-op cache", "speedup vs 4Kops (%)", "hit rate (%)")
	fmt.Fprintf(r.opts.Out, "4Kops | 0.00 | %.1f\n",
		100*Amean(base, func(x sim.Result) float64 { return x.UopHitRate }))
	for _, ops := range []int{8192, 16384, 32768, 65536} {
		rs, err := r.Sweep(UopSize(ops))
		if err != nil {
			return err
		}
		fmt.Fprintf(r.opts.Out, "%dKops | %.2f | %.1f\n", ops/1024,
			Geomean(base, rs), 100*Amean(rs, func(x sim.Result) float64 { return x.UopHitRate }))
	}
	ideal, err := r.Sweep(IdealUop())
	if err != nil {
		return err
	}
	fmt.Fprintf(r.opts.Out, "ideal | %.2f | 100.0\n", Geomean(base, ideal))
	return nil
}

// Fig5 reproduces Fig. 5: state-of-the-art L1I prefetchers under the
// Base / L1I-Hits / IdealBRCond-8 / IdealBRCond-16 µ-op idealizations.
func (r *Runner) Fig5() error {
	base, err := r.HeavySweep(Prefetcher("", "base"))
	if err != nil {
		return err
	}
	r.section("Fig. 5 — L1I prefetchers versus alternate path",
		"IPC improvement (%) over no-prefetcher baseline, and amean µ-op cache hit rate (%). Modes: Base, L1I-Hits, IdealBRCond-8/16. Reduced trace subset.")
	r.tableHeader("prefetcher", "base", "l1ihits", "brcond8", "brcond16", "HR base", "HR l1ihits", "HR brcond8", "HR brcond16")
	for _, pf := range []string{"", "fnlmma", "fnlmma++", "djolt", "ep", "ep++"} {
		label := pf
		if label == "" {
			label = "NONE"
		}
		var imps, hrs []string
		for _, mode := range []string{"base", "l1ihits", "brcond8", "brcond16"} {
			rs, err := r.HeavySweep(Prefetcher(pf, mode))
			if err != nil {
				return err
			}
			imps = append(imps, fmt.Sprintf("%.2f", Geomean(base, rs)))
			hrs = append(hrs, fmt.Sprintf("%.1f", 100*Amean(rs, func(x sim.Result) float64 { return x.UopHitRate })))
		}
		fmt.Fprintf(r.opts.Out, "%s | %s | %s | %s | %s | %s | %s | %s | %s\n",
			label, imps[0], imps[1], imps[2], imps[3], hrs[0], hrs[1], hrs[2], hrs[3])
	}
	return nil
}

// Fig9 reproduces Fig. 9: coverage and accuracy of the H2P classifiers
// (TAGE-Conf vs UCP-Conf) measured in the full frontend.
func (r *Runner) Fig9() error {
	rs, err := r.Sweep(BaselineCfg())
	if err != nil {
		return err
	}
	var tCov, tAcc, uCov, uAcc float64
	for _, res := range rs {
		tCov += res.FE.H2PTage.Coverage()
		tAcc += res.FE.H2PTage.Accuracy()
		uCov += res.FE.H2PUCP.Coverage()
		uAcc += res.FE.H2PUCP.Accuracy()
	}
	n := float64(len(rs))
	r.section("Fig. 9 — H2P predictor coverage and accuracy",
		"Coverage: mispredictions classified H2P. Accuracy: H2P-classified branches that mispredict. Paper: TAGE-Conf 48.5%/12%, UCP-Conf 70%/14.66%.")
	r.tableHeader("estimator", "coverage (%)", "accuracy (%)")
	fmt.Fprintf(r.opts.Out, "TAGE-Conf | %.1f | %.1f\n", 100*tCov/n, 100*tAcc/n)
	fmt.Fprintf(r.opts.Out, "UCP-Conf | %.1f | %.1f\n", 100*uCov/n, 100*uAcc/n)
	return nil
}

// Fig10 reproduces Fig. 10: IPC of the baseline µ-op cache and of UCP,
// both relative to no µ-op cache, per trace sorted.
func (r *Runner) Fig10() error {
	none, err := r.Sweep(NoUop())
	if err != nil {
		return err
	}
	base, err := r.Sweep(BaselineCfg())
	if err != nil {
		return err
	}
	ucp, err := r.Sweep(UCP())
	if err != nil {
		return err
	}
	r.section("Fig. 10 — UCP and baseline relative to no µ-op cache",
		"Per-trace IPC improvement (%) over the no-µ-op-cache machine.")
	r.tableHeader("trace", "4K-µops (%)", "UCP (%)")
	type row struct {
		trace string
		b, u  float64
	}
	rows := make([]row, len(none))
	benefit := 0
	for i := range none {
		rows[i] = row{
			trace: none[i].Trace,
			b:     (base[i].IPC/none[i].IPC - 1) * 100,
			u:     (ucp[i].IPC/none[i].IPC - 1) * 100,
		}
		if rows[i].u > 0 {
			benefit++
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].u < rows[j].u })
	for _, x := range rows {
		fmt.Fprintf(r.opts.Out, "%s | %.2f | %.2f\n", x.trace, x.b, x.u)
	}
	fmt.Fprintf(r.opts.Out, "\n- traces where the µ-op cache pays off under UCP: %.1f%% (paper: 90%%, from 80.7%%)\n",
		100*float64(benefit)/float64(len(none)))
	return nil
}

// Fig11 reproduces Fig. 11: UCP speedup over the baseline, per trace
// sorted, alongside the conditional branch MPKI.
func (r *Runner) Fig11() error {
	base, err := r.Sweep(BaselineCfg())
	if err != nil {
		return err
	}
	ucp, err := r.Sweep(UCP())
	if err != nil {
		return err
	}
	type row struct {
		trace string
		imp   float64
		mpki  float64
	}
	rows := make([]row, len(base))
	for i := range base {
		rows[i] = row{base[i].Trace, (ucp[i].IPC/base[i].IPC - 1) * 100, base[i].CondMPKI}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].imp < rows[j].imp })
	r.section("Fig. 11 — UCP speedup and conditional MPKI",
		"Per-trace UCP IPC improvement (%) over baseline, with the trace's conditional branch MPKI. Paper: 2% avg, up to 12%.")
	r.tableHeader("trace", "IPC improvement (%)", "cond MPKI")
	for _, x := range rows {
		fmt.Fprintf(r.opts.Out, "%s | %.2f | %.2f\n", x.trace, x.imp, x.mpki)
	}
	min, max := MinMax(base, ucp)
	fmt.Fprintf(r.opts.Out, "\n- geomean %.2f%% (min %.2f%%, max %.2f%%); amean MPKI %.2f\n",
		Geomean(base, ucp), min, max,
		Amean(base, func(x sim.Result) float64 { return x.CondMPKI }))
	return nil
}

// Fig12 reproduces Fig. 12: (a) UCP with and without the dedicated
// indirect predictor; (b) UCP-Conf vs TAGE-Conf confidence estimation.
func (r *Runner) Fig12() error {
	base, err := r.Sweep(BaselineCfg())
	if err != nil {
		return err
	}
	ucp, err := r.Sweep(UCP())
	if err != nil {
		return err
	}
	noind, err := r.Sweep(UCPNoInd())
	if err != nil {
		return err
	}
	tconf, err := r.Sweep(UCPTageConf())
	if err != nil {
		return err
	}
	r.section("Fig. 12 — UCP variants",
		"Geomean IPC improvement (%) over baseline. Paper: UCP 2%, UCP-NoIND 1.9%, TAGE-Conf 1.8%.")
	r.tableHeader("variant", "improvement (%)", "min (%)", "max (%)")
	for _, x := range []struct {
		name string
		rs   []sim.Result
	}{
		{"UCP", ucp}, {"UCP-NoIND", noind}, {"UCP with TAGE-Conf", tconf},
	} {
		min, max := MinMax(base, x.rs)
		fmt.Fprintf(r.opts.Out, "%s | %.2f | %.2f | %.2f\n", x.name, Geomean(base, x.rs), min, max)
	}
	return nil
}

// Fig13 reproduces Fig. 13: the µ-op cache hit rate under UCP.
func (r *Runner) Fig13() error {
	base, err := r.Sweep(BaselineCfg())
	if err != nil {
		return err
	}
	ucp, err := r.Sweep(UCP())
	if err != nil {
		return err
	}
	sorted := append([]sim.Result(nil), ucp...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].UopHitRate < sorted[j].UopHitRate })
	r.section("Fig. 13 — µ-op cache hit rate under UCP",
		"Paper: amean rises modestly, 71.4% → 74%.")
	r.tableHeader("trace", "hit rate (%)")
	for _, res := range sorted {
		fmt.Fprintf(r.opts.Out, "%s | %.1f\n", res.Trace, res.UopHitRate*100)
	}
	fmt.Fprintf(r.opts.Out, "\n- amean hit rate: baseline %.1f%% → UCP %.1f%%\n",
		100*Amean(base, func(x sim.Result) float64 { return x.UopHitRate }),
		100*Amean(ucp, func(x sim.Result) float64 { return x.UopHitRate }))
	fmt.Fprintf(r.opts.Out, "- amean lines prefetched per alternate path: %.1f (paper: ~10)\n",
		Amean(ucp, func(x sim.Result) float64 {
			if x.UCP.Triggers == 0 {
				return 0
			}
			return float64(x.UCP.LinesPrefetched) / float64(x.UCP.Triggers)
		}))
	return nil
}

// Fig14 reproduces Fig. 14: UCP prefetch accuracy at µ-op cache entry
// granularity.
func (r *Runner) Fig14() error {
	ucp, err := r.Sweep(UCP())
	if err != nil {
		return err
	}
	sorted := append([]sim.Result(nil), ucp...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].PrefetchAccuracy < sorted[j].PrefetchAccuracy })
	r.section("Fig. 14 — prefetch accuracy",
		"Prefetched µ-op cache entries used at least once before eviction. Paper: 67.7% avg.")
	r.tableHeader("trace", "accuracy (%)")
	for _, res := range sorted {
		fmt.Fprintf(r.opts.Out, "%s | %.1f\n", res.Trace, res.PrefetchAccuracy*100)
	}
	fmt.Fprintf(r.opts.Out, "\n- amean accuracy: %.1f%%\n",
		100*Amean(ucp, func(x sim.Result) float64 { return x.PrefetchAccuracy }))
	return nil
}

// Fig15 reproduces Fig. 15: stop-threshold sensitivity for UCP
// (prefetching to the µ-op cache) and UCP-L1I (prefetching to the L1I
// only).
func (r *Runner) Fig15() error {
	base, err := r.HeavySweep(BaselineCfg())
	if err != nil {
		return err
	}
	r.section("Fig. 15 — stopping threshold sensitivity",
		"Geomean IPC improvement (%) per saturation value (reduced trace subset). Paper: µ-op flavor plateaus ≥500, thrashes past ~1000; L1I flavor peaks at 1000.")
	r.tableHeader("threshold", "UCP µ-op prefetch (%)", "UCP L1I prefetch (%)")
	for _, th := range []int{16, 64, 256, 500, 1024, 4096} {
		uop, err := r.HeavySweep(UCPThreshold(th, false))
		if err != nil {
			return err
		}
		l1i, err := r.HeavySweep(UCPThreshold(th, true))
		if err != nil {
			return err
		}
		fmt.Fprintf(r.opts.Out, "%d | %.2f | %.2f\n", th, Geomean(base, uop), Geomean(base, l1i))
	}
	return nil
}

// Fig16 reproduces Fig. 16: IPC improvement versus invested storage for
// UCP flavors, L1I prefetchers, larger µ-op caches, MRC sizes, and a
// doubled branch predictor.
func (r *Runner) Fig16() error {
	base, err := r.HeavySweep(BaselineCfg())
	if err != nil {
		return err
	}
	r.section("Fig. 16 — cost/benefit (storage vs speedup)",
		"Geomean IPC improvement (%) over baseline and added storage (KB). Paper: both UCP flavors sit on the Pareto front.")
	r.tableHeader("design", "storage (KB)", "improvement (%)")
	type point struct {
		name    string
		storage float64
		rs      []sim.Result
	}
	ucpRes, err := r.HeavySweep(UCP())
	if err != nil {
		return err
	}
	noindRes, err := r.HeavySweep(UCPNoInd())
	if err != nil {
		return err
	}
	points := []point{
		{"UCP-ITTAGE", ucpRes[0].UCPStorageKB, ucpRes},
		{"UCP-NoIndirect", noindRes[0].UCPStorageKB, noindRes},
	}
	shared, err := r.HeavySweep(UCPSharedDecoders())
	if err != nil {
		return err
	}
	points = append(points, point{"UCP-SharedDecoders", shared[0].UCPStorageKB, shared})
	l1i, err := r.HeavySweep(UCPThreshold(1000, true))
	if err != nil {
		return err
	}
	points = append(points, point{"UCP-L1I(T=1000)", l1i[0].UCPStorageKB, l1i})
	noconf, err := r.HeavySweep(UCPIdealBTB())
	if err != nil {
		return err
	}
	points = append(points, point{"UCP-NoBTBConflict", noconf[0].UCPStorageKB, noconf})
	for _, pf := range []string{"fnlmma", "fnlmma++", "djolt", "ep", "ep++"} {
		rs, err := r.HeavySweep(Prefetcher(pf, "base"))
		if err != nil {
			return err
		}
		points = append(points, point{pf, prefetch.StorageKBOf(pf), rs})
	}
	for _, ops := range []int{8192, 16384, 32768} {
		cfg := UopSize(ops)
		added := float64(ops-4096) * 36 / 8 / 1024
		rs, err := r.HeavySweep(cfg)
		if err != nil {
			return err
		}
		points = append(points, point{cfg.Name, added, rs})
	}
	for _, kb := range []float64{16.5, 33, 66, 132} {
		rs, err := r.HeavySweep(MRCCfg(kb))
		if err != nil {
			return err
		}
		points = append(points, point{fmt.Sprintf("MRC-%.1fKB", kb), kb, rs})
	}
	dbl, err := r.HeavySweep(DoublePredictor())
	if err != nil {
		return err
	}
	points = append(points, point{"TAGE-SC-Lx2", 64, dbl})
	sort.Slice(points, func(i, j int) bool { return points[i].storage < points[j].storage })
	for _, p := range points {
		fmt.Fprintf(r.opts.Out, "%s | %.1f | %.2f\n", p.name, p.storage, Geomean(base, p.rs))
	}
	return nil
}

// ArtifactTable reproduces the artifact's summary table (threshold 500).
func (r *Runner) ArtifactTable() error {
	base, err := r.HeavySweep(BaselineCfg())
	if err != nil {
		return err
	}
	r.section("Artifact table — UCP variant IPC improvement",
		"Paper: UCP 2%, UCP-TillL1I 1.6%, UCP-SharedDecoders 1.8%, UCP-IdealBTBBanking 2.2%.")
	r.tableHeader("variant", "IPC improvement (%)")
	for _, x := range []struct {
		name string
		cfg  sim.Config
	}{
		{"UCP", UCP()},
		{"UCP-TillL1I", UCPThreshold(500, true)},
		{"UCP-SharedDecoders", UCPSharedDecoders()},
		{"UCP-IdealBTBBanking", UCPIdealBTB()},
	} {
		rs, err := r.HeavySweep(x.cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(r.opts.Out, "%s | %.2f\n", x.name, Geomean(base, rs))
	}
	return nil
}

// Distributions reports the stream-length and refill-latency
// distributions behind the paper's §III-A argument and UCP's mechanism:
// the µ-op cache pays off only with long consecutive-hit streams, and
// UCP's benefit is a shorter mispredict-to-first-µ-op refill.
func (r *Runner) Distributions() error {
	base, err := r.Sweep(BaselineCfg())
	if err != nil {
		return err
	}
	ucp, err := r.Sweep(UCP())
	if err != nil {
		return err
	}
	r.section("Distributions — hit streams and refill latency",
		"Consecutive µ-op cache hit stream lengths (µ-ops) and mispredict-resolve→first-µ-op latency (cycles), baseline vs UCP.")
	r.tableHeader("trace", "stream mean", "stream p90≤", "refill mean base", "refill mean UCP", "refill p90≤ base", "refill p90≤ UCP")
	for i := range base {
		b, u := base[i], ucp[i]
		fmt.Fprintf(r.opts.Out, "%s | %.1f | %d | %.1f | %.1f | %d | %d\n",
			b.Trace, b.StreamLens.Mean(), b.StreamLens.Percentile(90),
			b.RefillLat.Mean(), u.RefillLat.Mean(),
			b.RefillLat.Percentile(90), u.RefillLat.Percentile(90))
	}
	var bSum, uSum float64
	for i := range base {
		bSum += base[i].RefillLat.Mean()
		uSum += ucp[i].RefillLat.Mean()
	}
	n := float64(len(base))
	fmt.Fprintf(r.opts.Out, "\n- amean refill latency: baseline %.1f → UCP %.1f cycles\n", bSum/n, uSum/n)
	return nil
}
