// Package harness runs the paper's experiments: for every table and
// figure in the evaluation (§III, §VI) it builds the relevant machine
// configurations, sweeps them over the synthetic CVP-1-substitute trace
// set, and prints the same rows/series the paper reports. Results are
// cached per (config, trace) within a process so figures can share runs.
package harness

import (
	"fmt"
	"io"
	"math"
	"sort"

	"ucp/internal/sim"
	"ucp/internal/trace"
)

// Options controls an experiment sweep.
type Options struct {
	// Profiles is the trace set (DefaultProfiles when empty).
	Profiles []trace.Profile
	// Warmup/Measure override the per-run instruction counts.
	Warmup, Measure uint64
	// Out receives the rendered tables (must be non-nil).
	Out io.Writer
	// Verbose prints one line per completed run.
	Verbose bool
}

// DefaultOptions returns a laptop-scale sweep: the full trace set at
// 800K warmup + 700K measured instructions.
func DefaultOptions(out io.Writer) Options {
	return Options{
		Profiles: trace.DefaultProfiles(),
		Warmup:   800_000,
		Measure:  700_000,
		Out:      out,
	}
}

// Runner executes and caches simulation runs.
type Runner struct {
	opts  Options
	progs map[string]*trace.Program
	cache map[string]sim.Result
}

// NewRunner builds a runner; programs are constructed lazily.
func NewRunner(opts Options) *Runner {
	if len(opts.Profiles) == 0 {
		opts.Profiles = trace.DefaultProfiles()
	}
	return &Runner{
		opts:  opts,
		progs: make(map[string]*trace.Program),
		cache: make(map[string]sim.Result),
	}
}

// Out returns the report writer.
func (r *Runner) Out() io.Writer { return r.opts.Out }

// Profiles returns the trace set.
func (r *Runner) Profiles() []trace.Profile { return r.opts.Profiles }

func (r *Runner) program(p trace.Profile) *trace.Program {
	if prog, ok := r.progs[p.Name]; ok {
		return prog
	}
	prog, err := trace.BuildProgram(p)
	if err != nil {
		panic(fmt.Sprintf("harness: building %s: %v", p.Name, err))
	}
	r.progs[p.Name] = prog
	return prog
}

// Run executes cfg over one named trace (cached by cfg.Name+trace).
func (r *Runner) Run(cfg sim.Config, prof trace.Profile) sim.Result {
	key := cfg.Name + "/" + prof.Name
	if res, ok := r.cache[key]; ok {
		return res
	}
	prog := r.program(prof)
	cfg.WarmupInsts = r.opts.Warmup
	cfg.MeasureInsts = r.opts.Measure
	src := trace.NewLimit(trace.NewWalker(prog), int(cfg.WarmupInsts+cfg.MeasureInsts)+200_000)
	res, err := sim.Run(cfg, src, prog, prof.Name)
	if err != nil {
		panic(fmt.Sprintf("harness: %s on %s: %v", cfg.Name, prof.Name, err))
	}
	r.cache[key] = res
	if r.opts.Verbose {
		fmt.Fprintf(r.opts.Out, "# run %-24s %-9s IPC=%.4f HR=%.3f\n",
			cfg.Name, prof.Name, res.IPC, res.UopHitRate)
	}
	return res
}

// Sweep runs cfg over the whole trace set.
func (r *Runner) Sweep(cfg sim.Config) []sim.Result {
	out := make([]sim.Result, 0, len(r.opts.Profiles))
	for _, p := range r.opts.Profiles {
		out = append(out, r.Run(cfg, p))
	}
	return out
}

// heavyProfiles is the reduced subset used by the configuration-heavy
// sweeps (Fig. 5's 24 combinations, Fig. 15's threshold sweep, and
// Fig. 16's MRC points) to keep single-machine runtimes reasonable. It
// preserves the category mix of the full set.
func (r *Runner) heavyProfiles() []trace.Profile {
	if len(r.opts.Profiles) <= 10 {
		return r.opts.Profiles
	}
	keep := map[string]bool{
		"crypto02": true, "fp02": true, "int02": true, "int04": true,
		"srv201": true, "srv203": true, "srv205": true, "srv206": true,
		"srv208": true, "srv209": true,
	}
	var out []trace.Profile
	for _, p := range r.opts.Profiles {
		if keep[p.Name] {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return r.opts.Profiles
	}
	return out
}

// HeavySweep runs cfg over the reduced subset (cache-compatible with
// full sweeps: results are keyed per trace).
func (r *Runner) HeavySweep(cfg sim.Config) []sim.Result {
	profs := r.heavyProfiles()
	out := make([]sim.Result, 0, len(profs))
	for _, p := range profs {
		out = append(out, r.Run(cfg, p))
	}
	return out
}

// Geomean returns the geometric mean of per-trace speedups of exp over
// base (aligned by index), as a percentage improvement.
func Geomean(base, exp []sim.Result) float64 {
	if len(base) != len(exp) || len(base) == 0 {
		return 0
	}
	sum := 0.0
	for i := range base {
		sum += math.Log(exp[i].IPC / base[i].IPC)
	}
	return (math.Exp(sum/float64(len(base))) - 1) * 100
}

// MinMax returns the minimum and maximum per-trace improvement (%).
func MinMax(base, exp []sim.Result) (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for i := range base {
		v := (exp[i].IPC/base[i].IPC - 1) * 100
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Amean averages f over results.
func Amean(rs []sim.Result, f func(sim.Result) float64) float64 {
	if len(rs) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range rs {
		s += f(r)
	}
	return s / float64(len(rs))
}

// improvements returns per-trace improvement (%) of exp over base,
// sorted ascending (the paper's "sorted traces" x-axis).
func improvements(base, exp []sim.Result) []traceValue {
	out := make([]traceValue, len(base))
	for i := range base {
		out[i] = traceValue{
			trace: base[i].Trace,
			value: (exp[i].IPC/base[i].IPC - 1) * 100,
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].value < out[j].value })
	return out
}

type traceValue struct {
	trace string
	value float64
}

// section prints a figure heading.
func (r *Runner) section(title, caption string) {
	fmt.Fprintf(r.opts.Out, "\n## %s\n\n%s\n\n", title, caption)
}

func (r *Runner) tableHeader(cols ...string) {
	w := r.opts.Out
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(w, " | ")
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
	for i := range cols {
		if i > 0 {
			fmt.Fprint(w, " | ")
		}
		fmt.Fprint(w, "---")
	}
	fmt.Fprintln(w)
}
