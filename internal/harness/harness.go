// Package harness runs the paper's experiments: for every table and
// figure in the evaluation (§III, §VI) it builds the relevant machine
// configurations, sweeps them over the synthetic CVP-1-substitute trace
// set, and prints the same rows/series the paper reports. Runs execute
// on an internal/runq worker pool and are memoized by content digest —
// in-process always, on disk when Options.CacheDir is set — so figures
// share runs and repeated invocations replay instead of recompute.
package harness

import (
	"fmt"
	"io"
	"math"
	"sort"

	"ucp/internal/runq"
	"ucp/internal/sim"
	"ucp/internal/trace"
)

// Options controls an experiment sweep.
type Options struct {
	// Profiles is the trace set (DefaultProfiles when empty).
	Profiles []trace.Profile
	// Warmup/Measure override the per-run instruction counts.
	Warmup, Measure uint64
	// Sampling, when Enabled, runs every sweep in sampled mode with this
	// geometry (sim.ConservativeSampling is the safe choice). Sampled
	// and full-detail results hash to different runq cache keys, so the
	// two kinds of sweep never contaminate each other's cache entries.
	Sampling sim.SamplingConfig
	// Segments > 1 runs every sweep job time-parallel. Full-detail
	// sweeps split the measured region into that many boundary-warmed
	// trace segments (internal/tpar) simulated concurrently and merged
	// deterministically; Boundary tunes the per-boundary warming
	// geometry (zero value: sim.DefaultBoundaryWarm). Sampled sweeps
	// (Sampling.Enabled) instead shard per measured window
	// (internal/wpar) — the window plan and boundary warm come from the
	// sampling geometry and Boundary is ignored; the combination is
	// validated by sim.Config.ValidateSegments. Like Sampling,
	// parallel results hash to their own runq cache keys.
	Segments int
	Boundary sim.BoundaryWarm
	// Out receives the rendered tables (must be non-nil).
	Out io.Writer
	// Verbose prints one line per completed run.
	Verbose bool
	// Jobs bounds concurrent simulations (GOMAXPROCS when 0). Reports
	// are byte-identical at every worker count: results always come
	// back in submission order.
	Jobs int
	// CacheDir enables runq's content-addressed on-disk result cache.
	CacheDir string
	// UseArena decodes each workload once per pool into a shared
	// trace.Arena instead of walking the generator per job (runq
	// Options.UseArena); results are byte-identical either way.
	UseArena bool
	// Checkpoints enables warm-checkpoint reuse across sampled jobs
	// sharing a warm key (runq Options.Checkpoints); CkptDir persists
	// the checkpoints on disk and implies Checkpoints.
	Checkpoints bool
	CkptDir     string
	// Clock supplies elapsed time for progress/ETA lines (nil: none).
	// Wire a real clock only from cmd/ — internal packages must stay
	// wall-clock-free (ucplint wallclock rule).
	Clock runq.Clock
	// Progress receives scheduler progress lines (nil: silent). Must
	// not alias Out: progress output is completion-ordered and timed,
	// so it would break report determinism.
	Progress io.Writer
	// Exec, when non-nil, executes sweeps instead of the local pool —
	// the sweepd client implements it, which is how every figure runs
	// against a remote server behind -server with byte-identical
	// reports. Figures that walk programs locally (predictor profiling)
	// still use the local pool, so the trace set is built either way.
	Exec runq.Runner
}

// DefaultOptions returns a laptop-scale sweep: the full trace set at
// 800K warmup + 700K measured instructions.
func DefaultOptions(out io.Writer) Options {
	return Options{
		Profiles: trace.DefaultProfiles(),
		Warmup:   800_000,
		Measure:  700_000,
		Out:      out,
	}
}

// Runner executes simulation runs on a runq pool and renders figures.
type Runner struct {
	opts Options
	pool *runq.Pool
	exec runq.Runner
}

// NewRunner builds a runner; programs are constructed lazily.
func NewRunner(opts Options) *Runner {
	if len(opts.Profiles) == 0 {
		opts.Profiles = trace.DefaultProfiles()
	}
	r := &Runner{
		opts: opts,
		pool: runq.New(runq.Options{
			Workers:     opts.Jobs,
			CacheDir:    opts.CacheDir,
			Clock:       opts.Clock,
			Progress:    opts.Progress,
			UseArena:    opts.UseArena,
			Checkpoints: opts.Checkpoints,
			CkptDir:     opts.CkptDir,
		}),
	}
	r.exec = r.pool
	if opts.Exec != nil {
		r.exec = opts.Exec
	}
	return r
}

// Out returns the report writer.
func (r *Runner) Out() io.Writer { return r.opts.Out }

// Profiles returns the trace set.
func (r *Runner) Profiles() []trace.Profile { return r.opts.Profiles }

// SchedulerStats exposes the pool's run/cache counters.
func (r *Runner) SchedulerStats() runq.Stats { return r.pool.Stats() }

// program returns the built program for p (shared with the pool's
// simulation workers; predictor-profiling figures walk it directly).
func (r *Runner) program(p trace.Profile) (*trace.Program, error) {
	return r.pool.Program(p)
}

// Run executes cfg over one named trace.
func (r *Runner) Run(cfg sim.Config, prof trace.Profile) (sim.Result, error) {
	rs, err := r.sweep(cfg, []trace.Profile{prof})
	if err != nil {
		return sim.Result{}, err
	}
	return rs[0], nil
}

// sweep schedules cfg over profs on the pool and collects results in
// trace order. Any failed run aborts the sweep with its error — the
// figure asking for it fails, the process (and the other figures) keep
// going.
func (r *Runner) sweep(cfg sim.Config, profs []trace.Profile) ([]sim.Result, error) {
	if r.opts.Sampling.Enabled {
		cfg.Sampling = r.opts.Sampling
	}
	jobs := make([]runq.Job, len(profs))
	for i, p := range profs {
		jobs[i] = runq.Job{
			Config:   cfg,
			Profile:  p,
			Warmup:   r.opts.Warmup,
			Measure:  r.opts.Measure,
			Segments: r.opts.Segments,
			Boundary: r.opts.Boundary,
		}
	}
	out := make([]sim.Result, len(jobs))
	for i, jr := range r.exec.RunAll(jobs) {
		if jr.Err != nil {
			return nil, fmt.Errorf("harness: %w", jr.Err)
		}
		out[i] = jr.Result
		if r.opts.Verbose && jr.Source != runq.SourceMemo {
			fmt.Fprintf(r.opts.Out, "# run %-24s %-9s IPC=%.4f HR=%.3f\n",
				cfg.Name, profs[i].Name, jr.Result.IPC, jr.Result.UopHitRate)
		}
	}
	return out, nil
}

// Sweep runs cfg over the whole trace set.
func (r *Runner) Sweep(cfg sim.Config) ([]sim.Result, error) {
	return r.sweep(cfg, r.opts.Profiles)
}

// heavyProfiles is the reduced subset used by the configuration-heavy
// sweeps (Fig. 5's 24 combinations, Fig. 15's threshold sweep, and
// Fig. 16's MRC points) to keep single-machine runtimes reasonable. It
// preserves the category mix of the full set.
func (r *Runner) heavyProfiles() []trace.Profile {
	if len(r.opts.Profiles) <= 10 {
		return r.opts.Profiles
	}
	keep := map[string]bool{
		"crypto02": true, "fp02": true, "int02": true, "int04": true,
		"srv201": true, "srv203": true, "srv205": true, "srv206": true,
		"srv208": true, "srv209": true,
	}
	var out []trace.Profile
	for _, p := range r.opts.Profiles {
		if keep[p.Name] {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return r.opts.Profiles
	}
	return out
}

// HeavySweep runs cfg over the reduced subset (cache-compatible with
// full sweeps: results are keyed per trace).
func (r *Runner) HeavySweep(cfg sim.Config) ([]sim.Result, error) {
	return r.sweep(cfg, r.heavyProfiles())
}

// Geomean returns the geometric mean of per-trace speedups of exp over
// base (aligned by index), as a percentage improvement. Empty or
// mismatched slices yield 0.
func Geomean(base, exp []sim.Result) float64 {
	if len(base) != len(exp) || len(base) == 0 {
		return 0
	}
	sum := 0.0
	for i := range base {
		sum += math.Log(exp[i].IPC / base[i].IPC)
	}
	return (math.Exp(sum/float64(len(base))) - 1) * 100
}

// MinMax returns the minimum and maximum per-trace improvement (%).
// Empty or mismatched slices yield (0, 0).
func MinMax(base, exp []sim.Result) (min, max float64) {
	if len(base) != len(exp) || len(base) == 0 {
		return 0, 0
	}
	min, max = math.Inf(1), math.Inf(-1)
	for i := range base {
		v := (exp[i].IPC/base[i].IPC - 1) * 100
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Amean averages f over results.
func Amean(rs []sim.Result, f func(sim.Result) float64) float64 {
	if len(rs) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range rs {
		s += f(r)
	}
	return s / float64(len(rs))
}

// improvements returns per-trace improvement (%) of exp over base,
// sorted ascending (the paper's "sorted traces" x-axis).
func improvements(base, exp []sim.Result) []traceValue {
	out := make([]traceValue, len(base))
	for i := range base {
		out[i] = traceValue{
			trace: base[i].Trace,
			value: (exp[i].IPC/base[i].IPC - 1) * 100,
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].value < out[j].value })
	return out
}

type traceValue struct {
	trace string
	value float64
}

// section prints a figure heading.
func (r *Runner) section(title, caption string) {
	fmt.Fprintf(r.opts.Out, "\n## %s\n\n%s\n\n", title, caption)
}

func (r *Runner) tableHeader(cols ...string) {
	w := r.opts.Out
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(w, " | ")
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
	for i := range cols {
		if i > 0 {
			fmt.Fprint(w, " | ")
		}
		fmt.Fprint(w, "---")
	}
	fmt.Fprintln(w)
}
