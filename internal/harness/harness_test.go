package harness

import (
	"bytes"
	"strings"
	"testing"

	"ucp/internal/sim"
	"ucp/internal/trace"
)

func tinyRunner(buf *bytes.Buffer) *Runner {
	return NewRunner(Options{
		Profiles: trace.QuickProfiles(),
		Warmup:   60_000,
		Measure:  60_000,
		Out:      buf,
	})
}

func TestRunCaching(t *testing.T) {
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	p := r.Profiles()[0]
	a := r.Run(BaselineCfg(), p)
	b := r.Run(BaselineCfg(), p)
	if a != b {
		t.Fatal("cached result differs")
	}
	if len(r.cache) != 1 {
		t.Fatalf("cache has %d entries, want 1", len(r.cache))
	}
}

func TestGeomeanMath(t *testing.T) {
	base := []sim.Result{{IPC: 1}, {IPC: 2}}
	exp := []sim.Result{{IPC: 1.1}, {IPC: 2.2}}
	if g := Geomean(base, exp); g < 9.99 || g > 10.01 {
		t.Fatalf("geomean %.4f, want 10", g)
	}
	min, max := MinMax(base, exp)
	if min < 9.99 || max > 10.01 {
		t.Fatalf("minmax %v %v", min, max)
	}
	if Geomean(nil, nil) != 0 {
		t.Fatal("empty geomean must be 0")
	}
}

func TestAmean(t *testing.T) {
	rs := []sim.Result{{UopHitRate: 0.5}, {UopHitRate: 1.0}}
	if a := Amean(rs, func(r sim.Result) float64 { return r.UopHitRate }); a != 0.75 {
		t.Fatalf("amean %v", a)
	}
}

func TestConfigNamesUnique(t *testing.T) {
	cfgs := []sim.Config{
		NoUop(), BaselineCfg(), UopSize(8192), UopSize(16384), IdealUop(),
		Prefetcher("fnlmma", "base"), Prefetcher("fnlmma", "l1ihits"),
		Prefetcher("ep", "brcond8"), Prefetcher("", "brcond16"),
		UCP(), UCPNoInd(), UCPTageConf(), UCPThreshold(64, false),
		UCPThreshold(64, true), UCPSharedDecoders(), UCPIdealBTB(),
		MRCCfg(33), MRCCfg(66), DoublePredictor(),
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		if c.Name == "" {
			t.Fatal("config with empty name")
		}
		if seen[c.Name] {
			t.Fatalf("duplicate config name %q", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestConfigAliases(t *testing.T) {
	// Shared cache entries: the no-prefetcher base mode IS the baseline,
	// and threshold 500 µ-op flavor IS the default UCP.
	if Prefetcher("", "base").Name != BaselineCfg().Name {
		t.Fatal("pf-none-base must alias the baseline")
	}
	if UCPThreshold(500, false).Name != UCP().Name {
		t.Fatal("UCP-T500 must alias the default UCP")
	}
}

func TestFig9Output(t *testing.T) {
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	r.Fig9()
	out := buf.String()
	if !strings.Contains(out, "TAGE-Conf") || !strings.Contains(out, "UCP-Conf") {
		t.Fatalf("Fig9 output incomplete:\n%s", out)
	}
}

func TestFig6and7Output(t *testing.T) {
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	r.Fig6and7()
	out := buf.String()
	for _, want := range []string{"Fig. 6a", "Fig. 6b", "Fig. 7", "HitBank", "AltBank", "Loop"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig6/7 output missing %q:\n%s", want, out)
		}
	}
}

func TestArtifactTableOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config sweep")
	}
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	r.ArtifactTable()
	out := buf.String()
	for _, want := range []string{"UCP", "UCP-TillL1I", "UCP-SharedDecoders", "UCP-IdealBTBBanking"} {
		if !strings.Contains(out, want) {
			t.Fatalf("artifact table missing %q:\n%s", want, out)
		}
	}
}

func TestHeavyProfilesSubset(t *testing.T) {
	var buf bytes.Buffer
	full := NewRunner(Options{Out: &buf, Warmup: 1, Measure: 1})
	hp := full.heavyProfiles()
	if len(hp) >= len(full.Profiles()) {
		t.Fatalf("heavy subset (%d) not smaller than full set (%d)", len(hp), len(full.Profiles()))
	}
	// A small configured set is used as-is.
	small := tinyRunner(&buf)
	if len(small.heavyProfiles()) != len(small.Profiles()) {
		t.Fatal("small trace sets must not be reduced further")
	}
}
