package harness

import (
	"bytes"
	"strings"
	"testing"

	"ucp/internal/sim"
	"ucp/internal/trace"
)

func tinyRunner(buf *bytes.Buffer) *Runner {
	return NewRunner(Options{
		Profiles: trace.QuickProfiles(),
		Warmup:   60_000,
		Measure:  60_000,
		Out:      buf,
	})
}

func TestRunCaching(t *testing.T) {
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	p := r.Profiles()[0]
	a, err := r.Run(BaselineCfg(), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(BaselineCfg(), p)
	if err != nil {
		t.Fatal(err)
	}
	if a.DeterminismDigest() != b.DeterminismDigest() {
		t.Fatal("cached result differs")
	}
	st := r.SchedulerStats()
	if st.Runs != 1 || st.MemoHits != 1 {
		t.Fatalf("scheduler stats %+v, want 1 run + 1 memo hit", st)
	}
}

func TestRunErrorPropagation(t *testing.T) {
	// A config that fails validation must surface as an error from Run,
	// not a panic, and must not poison later healthy runs.
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	bad := BaselineCfg()
	bad.RASEntries = 0
	if _, err := r.Run(bad, r.Profiles()[0]); err == nil {
		t.Fatal("invalid config did not error")
	} else if !strings.Contains(err.Error(), "RASEntries") {
		t.Fatalf("error lost the cause: %v", err)
	}
	if _, err := r.Run(BaselineCfg(), r.Profiles()[0]); err != nil {
		t.Fatalf("healthy run after a failure: %v", err)
	}
}

func TestGeomeanMath(t *testing.T) {
	base := []sim.Result{{IPC: 1}, {IPC: 2}}
	exp := []sim.Result{{IPC: 1.1}, {IPC: 2.2}}
	if g := Geomean(base, exp); g < 9.99 || g > 10.01 {
		t.Fatalf("geomean %.4f, want 10", g)
	}
	min, max := MinMax(base, exp)
	if min < 9.99 || max > 10.01 {
		t.Fatalf("minmax %v %v", min, max)
	}
}

func TestGeomeanEdgeCases(t *testing.T) {
	base := []sim.Result{{IPC: 1}, {IPC: 2}}
	if Geomean(nil, nil) != 0 {
		t.Fatal("empty geomean must be 0")
	}
	if Geomean(base, base[:1]) != 0 {
		t.Fatal("length-mismatched geomean must be 0")
	}
	if Geomean(nil, base) != 0 {
		t.Fatal("nil-base geomean must be 0")
	}
}

func TestMinMaxEdgeCases(t *testing.T) {
	base := []sim.Result{{IPC: 1}, {IPC: 2}}
	if min, max := MinMax(nil, nil); min != 0 || max != 0 {
		t.Fatalf("empty MinMax = (%v, %v), want (0, 0)", min, max)
	}
	if min, max := MinMax(base, base[:1]); min != 0 || max != 0 {
		t.Fatalf("mismatched MinMax = (%v, %v), want (0, 0)", min, max)
	}
}

func TestAmean(t *testing.T) {
	rs := []sim.Result{{UopHitRate: 0.5}, {UopHitRate: 1.0}}
	if a := Amean(rs, func(r sim.Result) float64 { return r.UopHitRate }); a != 0.75 {
		t.Fatalf("amean %v", a)
	}
	if a := Amean(nil, func(r sim.Result) float64 { return r.IPC }); a != 0 {
		t.Fatal("empty amean must be 0")
	}
}

// TestFigureBytesAcrossWorkerCounts is the harness-level half of the
// parallel-determinism contract: the same figures rendered through a
// 1-worker and an 8-worker pool must be byte-identical.
func TestFigureBytesAcrossWorkerCounts(t *testing.T) {
	render := func(jobs int) string {
		var buf bytes.Buffer
		r := NewRunner(Options{
			Profiles: trace.QuickProfiles(),
			Warmup:   20_000,
			Measure:  20_000,
			Out:      &buf,
			Jobs:     jobs,
		})
		if err := r.Fig3(); err != nil {
			t.Fatalf("Fig3 with %d jobs: %v", jobs, err)
		}
		if err := r.Fig2(); err != nil {
			t.Fatalf("Fig2 with %d jobs: %v", jobs, err)
		}
		return buf.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatalf("figure bytes diverge between 1 and 8 workers:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", serial, parallel)
	}
}

func TestConfigNamesUnique(t *testing.T) {
	cfgs := []sim.Config{
		NoUop(), BaselineCfg(), UopSize(8192), UopSize(16384), IdealUop(),
		Prefetcher("fnlmma", "base"), Prefetcher("fnlmma", "l1ihits"),
		Prefetcher("ep", "brcond8"), Prefetcher("", "brcond16"),
		UCP(), UCPNoInd(), UCPTageConf(), UCPThreshold(64, false),
		UCPThreshold(64, true), UCPSharedDecoders(), UCPIdealBTB(),
		MRCCfg(33), MRCCfg(66), DoublePredictor(),
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		if c.Name == "" {
			t.Fatal("config with empty name")
		}
		if seen[c.Name] {
			t.Fatalf("duplicate config name %q", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestConfigAliases(t *testing.T) {
	// Shared cache entries: the no-prefetcher base mode IS the baseline,
	// and threshold 500 µ-op flavor IS the default UCP.
	if Prefetcher("", "base").Name != BaselineCfg().Name {
		t.Fatal("pf-none-base must alias the baseline")
	}
	if UCPThreshold(500, false).Name != UCP().Name {
		t.Fatal("UCP-T500 must alias the default UCP")
	}
}

func TestFig9Output(t *testing.T) {
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	if err := r.Fig9(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "TAGE-Conf") || !strings.Contains(out, "UCP-Conf") {
		t.Fatalf("Fig9 output incomplete:\n%s", out)
	}
}

func TestFig6and7Output(t *testing.T) {
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	if err := r.Fig6and7(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig. 6a", "Fig. 6b", "Fig. 7", "HitBank", "AltBank", "Loop"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig6/7 output missing %q:\n%s", want, out)
		}
	}
}

func TestArtifactTableOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config sweep")
	}
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	if err := r.ArtifactTable(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"UCP", "UCP-TillL1I", "UCP-SharedDecoders", "UCP-IdealBTBBanking"} {
		if !strings.Contains(out, want) {
			t.Fatalf("artifact table missing %q:\n%s", want, out)
		}
	}
}

func TestHeavyProfilesSubset(t *testing.T) {
	var buf bytes.Buffer
	full := NewRunner(Options{Out: &buf, Warmup: 1, Measure: 1})
	hp := full.heavyProfiles()
	if len(hp) >= len(full.Profiles()) {
		t.Fatalf("heavy subset (%d) not smaller than full set (%d)", len(hp), len(full.Profiles()))
	}
	// A small configured set is used as-is.
	small := tinyRunner(&buf)
	if len(small.heavyProfiles()) != len(small.Profiles()) {
		t.Fatal("small trace sets must not be reduced further")
	}
}
