package harness

import (
	"fmt"

	"ucp/internal/bpred"
	"ucp/internal/trace"
)

// Fig9JRS extends the Fig. 9 comparison with the classic JRS resetting-
// counter estimator (a dedicated 0.5KB structure, §VII-D) measured over
// the same predictor stream as the storage-free estimators.
func (r *Runner) Fig9JRS() error {
	var jrsStats, tageStats, ucpStats bpred.H2PStats
	branches := int(r.opts.Measure)
	for _, prof := range r.opts.Profiles {
		prog, err := r.program(prof)
		if err != nil {
			return err
		}
		w := trace.NewWalker(prog)
		pred := bpred.NewTageSCL(bpred.Config64KB())
		jrs := bpred.DefaultJRS()
		seen := 0
		for seen < branches {
			in, ok := w.Next()
			if !ok {
				break
			}
			if !in.Class.IsConditional() {
				continue
			}
			p := pred.Predict(pred.Hist(), in.PC)
			miss := p.Taken != in.Taken
			ghr := pred.Hist().GHR()
			jrsStats.Record(jrs.H2P(in.PC, ghr), miss)
			tageStats.Record(bpred.TageConfH2P(&p), miss)
			ucpStats.Record(bpred.UCPConfH2P(&p), miss)
			jrs.Update(in.PC, ghr, !miss)
			pred.Update(in.PC, in.Taken, &p)
			pred.PushHistory(in.PC, in.Taken)
			seen++
		}
	}
	r.section("Fig. 9 (extended) — JRS dedicated-structure baseline",
		"Same stream, three classifiers. JRS (Jacobsen et al., §VII-D) spends 0.5KB; the paper argues such tables thrash on datacenter footprints, trailing the storage-free estimators in accuracy.")
	r.tableHeader("estimator", "storage", "coverage (%)", "accuracy (%)")
	fmt.Fprintf(r.opts.Out, "JRS (1K×4b) | 0.5KB | %.1f | %.1f\n",
		100*jrsStats.Coverage(), 100*jrsStats.Accuracy())
	fmt.Fprintf(r.opts.Out, "TAGE-Conf | free | %.1f | %.1f\n",
		100*tageStats.Coverage(), 100*tageStats.Accuracy())
	fmt.Fprintf(r.opts.Out, "UCP-Conf | free | %.1f | %.1f\n",
		100*ucpStats.Coverage(), 100*ucpStats.Accuracy())
	return nil
}

// Fig6and7 reproduces Fig. 6 and Fig. 7 by profiling a standalone 64KB
// TAGE-SC-L over the trace set: per-component misprediction rates as a
// function of the providing counter value (Fig. 6) and each component's
// share of total mispredictions (Fig. 7).
func (r *Runner) Fig6and7() error {
	type bucket struct{ n, miss uint64 }
	// TAGE provider counters, centered: index by value+4 (range -4..3).
	var hitBank, altBank, bimodal, bimodalBad [8]bucket
	var scBuckets [4]bucket // |sum| buckets: 0-31, 32-63, 64-127, 128+
	var loop bucket
	var srcMiss [bpred.NumSources]uint64
	var totalMiss uint64

	branches := int(r.opts.Measure) // per trace, same budget as the sim runs
	for _, prof := range r.opts.Profiles {
		prog, err := r.program(prof)
		if err != nil {
			return err
		}
		w := trace.NewWalker(prog)
		pred := bpred.NewTageSCL(bpred.Config64KB())
		seen := 0
		for seen < branches {
			in, ok := w.Next()
			if !ok {
				break
			}
			if !in.Class.IsConditional() {
				continue
			}
			p := pred.Predict(pred.Hist(), in.PC)
			miss := p.Taken != in.Taken
			if miss {
				srcMiss[p.Source]++
				totalMiss++
			}
			m := uint64(0)
			if miss {
				m = 1
			}
			switch p.Source {
			case bpred.SrcLoop:
				loop.n++
				loop.miss += m
			case bpred.SrcSC:
				s := p.SCSum
				if s < 0 {
					s = -s
				}
				idx := 0
				switch {
				case s >= 128:
					idx = 3
				case s >= 64:
					idx = 2
				case s >= 32:
					idx = 1
				}
				scBuckets[idx].n++
				scBuckets[idx].miss += m
			default:
				ctr := int(p.ProviderCtr) + 4
				switch p.TageSource {
				case bpred.SrcHitBank:
					hitBank[ctr].n++
					hitBank[ctr].miss += m
				case bpred.SrcAltBank:
					altBank[ctr].n++
					altBank[ctr].miss += m
				default:
					if p.BimodalRecentMiss {
						bimodalBad[ctr].n++
						bimodalBad[ctr].miss += m
					} else {
						bimodal[ctr].n++
						bimodal[ctr].miss += m
					}
				}
			}
			seen++
			pred.Update(in.PC, in.Taken, &p)
			pred.PushHistory(in.PC, in.Taken)
		}
	}

	rate := func(b bucket) float64 {
		if b.n == 0 {
			return 0
		}
		return 100 * float64(b.miss) / float64(b.n)
	}
	r.section("Fig. 6a — misprediction rate per TAGE component and counter value",
		"64KB TAGE-SC-L; centered provider counters (3-bit tagged: -4..3, 2-bit bimodal: -2..1). Paper: saturated HitBank/bimodal ≈0%, AltBank high regardless of counter, bimodal(>1in8) >6% even saturated.")
	r.tableHeader("counter", "HitBank (%)", "AltBank (%)", "bimodal (%)", "bimodal>1in8 (%)")
	for c := -4; c <= 3; c++ {
		i := c + 4
		fmt.Fprintf(r.opts.Out, "%d | %.1f | %.1f | %.1f | %.1f\n",
			c, rate(hitBank[i]), rate(altBank[i]), rate(bimodal[i]), rate(bimodalBad[i]))
	}

	r.section("Fig. 6b — SC output magnitude and loop predictor",
		"Paper: SC misses 10–50% depending on |output|; confident LP misses <3%.")
	r.tableHeader("component", "miss rate (%)")
	labels := []string{"SC |sum| 0-31", "SC |sum| 32-63", "SC |sum| 64-127", "SC |sum| 128+"}
	for i, l := range labels {
		fmt.Fprintf(r.opts.Out, "%s | %.1f\n", l, rate(scBuckets[i]))
	}
	fmt.Fprintf(r.opts.Out, "Loop predictor | %.1f\n", rate(loop))

	r.section("Fig. 7 — misprediction contribution per component",
		"Share of total mispredictions. Paper: HitBank 66.7%, SC 11.1%, AltBank 8.1%, bimodal(>1in8) 7.5%, bimodal 6.2%, LP 0.1%.")
	r.tableHeader("component", "share (%)")
	// Split bimodal share by the >1-in-8 state using the bucket totals.
	var bimMiss, bimBadMiss uint64
	for i := range bimodal {
		bimMiss += bimodal[i].miss
		bimBadMiss += bimodalBad[i].miss
	}
	share := func(m uint64) float64 {
		if totalMiss == 0 {
			return 0
		}
		return 100 * float64(m) / float64(totalMiss)
	}
	fmt.Fprintf(r.opts.Out, "HitBank | %.1f\n", share(srcMiss[bpred.SrcHitBank]))
	fmt.Fprintf(r.opts.Out, "AltBank | %.1f\n", share(srcMiss[bpred.SrcAltBank]))
	fmt.Fprintf(r.opts.Out, "bimodal | %.1f\n", share(bimMiss))
	fmt.Fprintf(r.opts.Out, "bimodal(>1in8) | %.1f\n", share(bimBadMiss))
	fmt.Fprintf(r.opts.Out, "SC | %.1f\n", share(srcMiss[bpred.SrcSC]))
	fmt.Fprintf(r.opts.Out, "Loop | %.1f\n", share(srcMiss[bpred.SrcLoop]))
	return nil
}
