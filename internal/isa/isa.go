// Package isa defines the architectural instruction model used by the
// simulator. Following the paper's methodology (§III-A), the modeled ISA
// is ARMv8-like: instructions are fixed-size (4 bytes), aligned, and each
// architectural instruction decodes to exactly one µ-op. A µ-op cache
// entry covers 32 bytes (8 instructions).
package isa

import "fmt"

// InstBytes is the fixed architectural instruction size in bytes.
const InstBytes = 4

// LineBytes is the instruction cache line size in bytes.
const LineBytes = 64

// EntryBytes is the code region covered by one µ-op cache entry.
const EntryBytes = 32

// EntryOps is the maximum number of µ-ops held by a µ-op cache entry.
const EntryOps = EntryBytes / InstBytes

// Class enumerates instruction classes. The control-flow classes mirror
// ChampSim's branch taxonomy, which the paper's frontend model relies on.
type Class uint8

const (
	// ALU is a simple integer operation (1-cycle latency).
	ALU Class = iota
	// Mul is a multi-cycle integer operation.
	Mul
	// FP is a floating-point operation.
	FP
	// Load reads memory.
	Load
	// Store writes memory.
	Store
	// CondBranch is a conditional direct branch.
	CondBranch
	// DirectJump is an unconditional direct branch.
	DirectJump
	// IndirectJump is an unconditional indirect branch.
	IndirectJump
	// Call is a direct call (pushes a return address).
	Call
	// IndirectCall is an indirect call.
	IndirectCall
	// Return pops the return address stack.
	Return
	numClasses
)

// NumClasses is the number of distinct instruction classes.
const NumClasses = int(numClasses)

var classNames = [NumClasses]string{
	"ALU", "Mul", "FP", "Load", "Store", "CondBranch", "DirectJump",
	"IndirectJump", "Call", "IndirectCall", "Return",
}

// String returns the class mnemonic.
func (c Class) String() string {
	if int(c) < NumClasses {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// IsBranch reports whether the class is any control-flow instruction.
func (c Class) IsBranch() bool {
	return c >= CondBranch
}

// IsConditional reports whether the class is a conditional branch.
func (c Class) IsConditional() bool { return c == CondBranch }

// IsIndirect reports whether the branch target comes from a register
// (i.e. must be predicted by an indirect target predictor or the RAS).
func (c Class) IsIndirect() bool {
	return c == IndirectJump || c == IndirectCall || c == Return
}

// IsCall reports whether the class pushes a return address.
func (c Class) IsCall() bool { return c == Call || c == IndirectCall }

// IsUncondTaken reports whether the class is always taken when executed.
func (c Class) IsUncondTaken() bool {
	return c == DirectJump || c == IndirectJump || c == Call ||
		c == IndirectCall || c == Return
}

// Inst is one dynamic architectural instruction as it appears in a trace.
// For branches, Taken and Target record the architecturally correct
// outcome; the simulator's predictors may of course disagree.
type Inst struct {
	// PC is the instruction address (4-byte aligned).
	PC uint64
	// Class is the instruction class.
	Class Class
	// Taken records the architectural direction (always true for
	// unconditional branches, false for non-branches).
	Taken bool
	// Target is the architectural next PC when Taken (undefined
	// otherwise; non-branches fall through to PC+4).
	Target uint64
	// MemAddr is the effective address for loads and stores.
	MemAddr uint64
	// Dst is the destination register (0 means none).
	Dst uint8
	// Src1 and Src2 are source registers (0 means none).
	Src1, Src2 uint8
}

// NextPC returns the architecturally correct successor address.
func (in *Inst) NextPC() uint64 {
	if in.Class.IsBranch() && in.Taken {
		return in.Target
	}
	return in.PC + InstBytes
}

// LineAddr returns the 64-byte cache line address containing PC.
func (in *Inst) LineAddr() uint64 { return in.PC &^ (LineBytes - 1) }

// RegCount is the number of architectural registers modeled (register 0
// is the hardwired "no register" marker, as in the CVP-1 trace format).
const RegCount = 64
