package isa

import "testing"

func TestClassPredicates(t *testing.T) {
	cases := []struct {
		c                                   Class
		branch, cond, indirect, call, taken bool
	}{
		{ALU, false, false, false, false, false},
		{Mul, false, false, false, false, false},
		{FP, false, false, false, false, false},
		{Load, false, false, false, false, false},
		{Store, false, false, false, false, false},
		{CondBranch, true, true, false, false, false},
		{DirectJump, true, false, false, false, true},
		{IndirectJump, true, false, true, false, true},
		{Call, true, false, false, true, true},
		{IndirectCall, true, false, true, true, true},
		{Return, true, false, true, false, true},
	}
	for _, tc := range cases {
		if got := tc.c.IsBranch(); got != tc.branch {
			t.Errorf("%v.IsBranch() = %v", tc.c, got)
		}
		if got := tc.c.IsConditional(); got != tc.cond {
			t.Errorf("%v.IsConditional() = %v", tc.c, got)
		}
		if got := tc.c.IsIndirect(); got != tc.indirect {
			t.Errorf("%v.IsIndirect() = %v", tc.c, got)
		}
		if got := tc.c.IsCall(); got != tc.call {
			t.Errorf("%v.IsCall() = %v", tc.c, got)
		}
		if got := tc.c.IsUncondTaken(); got != tc.taken {
			t.Errorf("%v.IsUncondTaken() = %v", tc.c, got)
		}
	}
}

func TestNextPC(t *testing.T) {
	in := Inst{PC: 0x1000, Class: ALU}
	if got := in.NextPC(); got != 0x1004 {
		t.Fatalf("ALU NextPC = %#x", got)
	}
	in = Inst{PC: 0x1000, Class: CondBranch, Taken: false, Target: 0x2000}
	if got := in.NextPC(); got != 0x1004 {
		t.Fatalf("not-taken NextPC = %#x", got)
	}
	in.Taken = true
	if got := in.NextPC(); got != 0x2000 {
		t.Fatalf("taken NextPC = %#x", got)
	}
}

func TestLineAddr(t *testing.T) {
	in := Inst{PC: 0x107c}
	if got := in.LineAddr(); got != 0x1040 {
		t.Fatalf("LineAddr = %#x, want 0x1040", got)
	}
}

func TestClassString(t *testing.T) {
	if CondBranch.String() != "CondBranch" {
		t.Fatalf("String = %q", CondBranch.String())
	}
	if Class(200).String() == "" {
		t.Fatal("out-of-range class must still format")
	}
}

func TestEntryGeometry(t *testing.T) {
	if EntryOps != 8 {
		t.Fatalf("EntryOps = %d, want 8 (paper §III-A)", EntryOps)
	}
	if EntryBytes != 32 || LineBytes != 64 || InstBytes != 4 {
		t.Fatal("geometry constants drifted from the paper's model")
	}
}
