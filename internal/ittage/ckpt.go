package ittage

import "ucp/internal/ckpt"

// Checkpoint hooks: the fast-forward trains indirect targets on every
// indirect transfer (Predict + Update + history pushes), so the base
// table, tagged tables, usefulness tick, allocation LFSR, and the
// history context all carry across a checkpoint.

// SaveState serializes all mutable predictor state.
func (p *Predictor) SaveState(w *ckpt.Writer) {
	w.Section("ittage")
	w.U64s(p.base)
	for _, tbl := range p.tables {
		w.Uvarint(uint64(len(tbl)))
		for i := range tbl {
			e := &tbl[i]
			w.Bool(e.valid)
			w.Uvarint(uint64(e.tag))
			w.Uvarint(e.target)
			w.Byte(e.ctr)
			w.Byte(e.u)
		}
	}
	w.Uvarint(p.hist.ghr)
	w.Uvarint(p.hist.path)
	w.Uvarint(uint64(p.tick))
	w.Uvarint(uint64(p.lfsr))
}

// LoadState restores state saved by SaveState into an identically
// configured predictor. Errors surface on the reader.
func (p *Predictor) LoadState(r *ckpt.Reader) {
	r.Section("ittage")
	r.U64sInto(p.base)
	for ti, tbl := range p.tables {
		n := r.Uvarint()
		if r.Err() != nil {
			return
		}
		if n != uint64(len(tbl)) {
			r.Failf("ittage table %d: %d entries, want %d", ti, n, len(tbl))
			return
		}
		for i := range tbl {
			e := &tbl[i]
			e.valid = r.Bool()
			e.tag = uint16(r.Uvarint())
			e.target = r.Uvarint()
			e.ctr = r.Byte()
			e.u = r.Byte()
		}
	}
	p.hist.ghr = r.Uvarint()
	p.hist.path = r.Uvarint()
	p.tick = int(r.Uvarint())
	p.lfsr = uint32(r.Uvarint())
}
