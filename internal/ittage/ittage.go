// Package ittage implements the ITTAGE indirect branch target predictor
// (Seznec, "A 64-Kbytes ITTAGE indirect branch predictor"). The paper's
// baseline frontend uses a 64KB ITTAGE (Table II) and UCP optionally adds
// a dedicated 4KB instance (Alt-Ind) so alternate-path generation can
// continue past indirect branches (§IV-C).
//
// History contexts are tiny value types (Hist), so UCP can snapshot the
// demand-path history and walk an alternate path without perturbing it.
package ittage

import "fmt"

// Hist is the predictor's history context: a 64-bit direction/target
// history and a path register. It is copied by value for alternate-path
// walks.
type Hist struct {
	ghr  uint64
	path uint64
}

// Push records a taken control transfer (or conditional outcome) into
// the context. Target bits enrich the history so same-direction paths
// with different targets diverge.
func (h *Hist) Push(pc, target uint64, taken bool) {
	bit := uint64(0)
	if taken {
		bit = 1
	}
	h.ghr = h.ghr<<2 | (bit << 1) | ((target >> 2) & 1)
	h.path = h.path<<3 ^ (pc >> 2)
}

// Config sizes an ITTAGE instance.
//
//ucplint:config
type Config struct {
	BaseBits int // log2 entries of the tagless base target cache
	Tables   int
	MinHist  int
	MaxHist  int // capped at 32 (two bits of context per transfer)
	IdxBits  int // log2 entries per tagged table
	TagBits  int
}

// Validate rejects ITTAGE geometries outside the modeled hardware: the
// Lookup bookkeeping arrays hold 16 banks and tags are uint16.
func (c Config) Validate() error {
	if c.BaseBits <= 0 || c.BaseBits > 24 {
		return fmt.Errorf("ittage: BaseBits must be in [1,24], got %d", c.BaseBits)
	}
	if c.Tables <= 0 || c.Tables > 16 {
		return fmt.Errorf("ittage: Tables must be in [1,16], got %d", c.Tables)
	}
	if c.MinHist <= 0 {
		return fmt.Errorf("ittage: MinHist must be positive, got %d", c.MinHist)
	}
	if c.MaxHist < c.MinHist {
		return fmt.Errorf("ittage: MaxHist %d below MinHist %d", c.MaxHist, c.MinHist)
	}
	if c.IdxBits <= 0 || c.IdxBits > 24 {
		return fmt.Errorf("ittage: IdxBits must be in [1,24], got %d", c.IdxBits)
	}
	if c.TagBits <= 0 || c.TagBits > 16 {
		return fmt.Errorf("ittage: TagBits must be in [1,16], got %d", c.TagBits)
	}
	return nil
}

// Config64KB approximates the paper's 64KB baseline ITTAGE.
func Config64KB() Config {
	return Config{BaseBits: 12, Tables: 8, MinHist: 2, MaxHist: 32, IdxBits: 10, TagBits: 10}
}

// Config4KB approximates UCP's 4KB Alt-Ind predictor.
func Config4KB() Config {
	return Config{BaseBits: 8, Tables: 4, MinHist: 2, MaxHist: 16, IdxBits: 7, TagBits: 9}
}

type entry struct {
	valid  bool
	tag    uint16
	target uint64
	ctr    uint8 // confidence [0,3]. nbits:2
	u      uint8 // usefulness [0,3]. nbits:2
}

// Predictor is an ITTAGE indirect target predictor.
type Predictor struct {
	cfg    Config
	base   []uint64
	tables [][]entry
	lens   []int
	hist   Hist
	tick   int
	lfsr   uint32
}

// New constructs a predictor from cfg.
func New(cfg Config) *Predictor {
	if cfg.MaxHist > 32 {
		cfg.MaxHist = 32
	}
	p := &Predictor{cfg: cfg, lfsr: 0x1d87}
	p.base = make([]uint64, 1<<cfg.BaseBits)
	p.tables = make([][]entry, cfg.Tables)
	p.lens = make([]int, cfg.Tables)
	for i := range p.tables {
		p.tables[i] = make([]entry, 1<<cfg.IdxBits)
		// Geometric-ish spacing between MinHist and MaxHist.
		p.lens[i] = cfg.MinHist + (cfg.MaxHist-cfg.MinHist)*i*i/((cfg.Tables-1)*(cfg.Tables-1)+1)
		if i > 0 && p.lens[i] <= p.lens[i-1] {
			p.lens[i] = p.lens[i-1] + 1
		}
	}
	return p
}

// Hist returns a pointer to the primary (demand-path) history context.
func (p *Predictor) Hist() *Hist { return &p.hist }

func fold(v uint64, bits int) uint32 {
	r := uint32(0)
	for v != 0 {
		r ^= uint32(v) & ((1 << uint(bits)) - 1)
		v >>= uint(bits)
	}
	return r
}

func (p *Predictor) index(h *Hist, pc uint64, i int) int32 {
	histBits := 2 * p.lens[i]
	hv := h.ghr
	if histBits < 64 {
		hv &= (1 << uint(histBits)) - 1
	}
	v := uint64(fold(hv, p.cfg.IdxBits)) ^ (pc >> 2) ^ (pc >> uint(3+i)) ^ (h.path & 0x3ff)
	return int32(v & uint64((1<<p.cfg.IdxBits)-1))
}

func (p *Predictor) tag(h *Hist, pc uint64, i int) uint16 {
	histBits := 2 * p.lens[i]
	hv := h.ghr
	if histBits < 64 {
		hv &= (1 << uint(histBits)) - 1
	}
	v := uint64(fold(hv, p.cfg.TagBits)) ^ (pc >> 2) ^ (pc >> uint(p.cfg.IdxBits+i))
	return uint16(v & uint64((1<<p.cfg.TagBits)-1))
}

// Lookup is the bookkeeping a prediction needs to be updated later.
type Lookup struct {
	// Target is the predicted target (0 if the predictor has never seen
	// this branch).
	Target uint64
	// Confident reports a saturated provider counter.
	Confident bool

	hitBank int // 1-based provider, 0 = base
	altBank int // 1-based alternate match, 0 = base
	usedAlt bool
	indices [16]int32
	tags    [16]uint16
	baseIdx int32
}

// Predict returns the target prediction for the indirect branch at pc.
// As in Seznec's ITTAGE, the longest matching table provides unless its
// confidence counter is weak, in which case the alternate (next longest
// match, or the base table) provides.
func (p *Predictor) Predict(h *Hist, pc uint64) Lookup {
	var l Lookup
	l.baseIdx = int32((pc >> 2) & uint64(len(p.base)-1))
	for i := 0; i < p.cfg.Tables; i++ {
		l.indices[i] = p.index(h, pc, i)
		l.tags[i] = p.tag(h, pc, i)
	}
	for i := p.cfg.Tables - 1; i >= 0; i-- {
		e := &p.tables[i][l.indices[i]]
		if e.valid && e.tag == l.tags[i] {
			if l.hitBank == 0 {
				l.hitBank = i + 1
			} else {
				l.altBank = i + 1
				break
			}
		}
	}
	if l.hitBank == 0 {
		l.Target = p.base[l.baseIdx]
		l.Confident = l.Target != 0
		return l
	}
	prov := &p.tables[l.hitBank-1][l.indices[l.hitBank-1]]
	if prov.ctr >= 1 {
		l.Target = prov.target
		l.Confident = prov.ctr >= 2
		return l
	}
	// Weak provider (fresh allocation or alias churn): trust the
	// alternate prediction.
	l.usedAlt = true
	if l.altBank != 0 {
		alt := &p.tables[l.altBank-1][l.indices[l.altBank-1]]
		l.Target = alt.target
		l.Confident = alt.ctr >= 2
	} else {
		l.Target = p.base[l.baseIdx]
		l.Confident = false
	}
	return l
}

// Update trains the predictor with the architectural target.
func (p *Predictor) Update(pc, target uint64, l *Lookup) {
	correct := l.Target == target
	if l.hitBank > 0 {
		e := &p.tables[l.hitBank-1][l.indices[l.hitBank-1]]
		if e.target == target {
			if e.ctr < 3 {
				e.ctr++
			}
			if e.u < 3 {
				e.u++
			}
		} else {
			if e.ctr > 0 {
				e.ctr--
			} else {
				e.target = target
				e.ctr = 1
			}
			if e.u > 0 {
				e.u--
			}
		}
		// When the provider was weak, also train whoever provided.
		if l.usedAlt && l.altBank > 0 {
			a := &p.tables[l.altBank-1][l.indices[l.altBank-1]]
			if a.target == target {
				if a.ctr < 3 {
					a.ctr++
				}
			} else if a.ctr > 0 {
				a.ctr--
			}
		} else if l.usedAlt {
			p.base[l.baseIdx] = target
		}
	} else {
		p.base[l.baseIdx] = target
	}
	if !correct && l.hitBank < p.cfg.Tables {
		p.allocate(target, l)
	}
	p.tick++
	if p.tick >= 1<<17 {
		p.tick = 0
		for i := range p.tables {
			for j := range p.tables[i] {
				p.tables[i][j].u >>= 1
			}
		}
	}
}

func (p *Predictor) allocate(target uint64, l *Lookup) {
	start := l.hitBank
	p.lfsr = p.lfsr*1103515245 + 12345
	if p.lfsr>>16&3 == 0 && start+1 < p.cfg.Tables {
		start++
	}
	for i := start; i < p.cfg.Tables; i++ {
		e := &p.tables[i][l.indices[i]]
		if !e.valid || e.u == 0 {
			*e = entry{valid: true, tag: l.tags[i], target: target, ctr: 1}
			return
		}
		e.u--
	}
}

// StorageBits returns the modeled hardware budget. Targets are accounted
// as 32-bit offsets, as hardware would store compressed targets.
func (p *Predictor) StorageBits() int {
	bits := len(p.base) * 32
	for range p.tables {
		bits += (1 << p.cfg.IdxBits) * (32 + p.cfg.TagBits + 2 + 2)
	}
	return bits
}

// StorageKB returns the budget in kilobytes.
func (p *Predictor) StorageKB() float64 { return float64(p.StorageBits()) / 8 / 1024 }
