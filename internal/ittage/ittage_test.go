package ittage

import (
	"testing"

	"ucp/internal/rng"
)

func TestLearnsMonomorphicTarget(t *testing.T) {
	p := New(Config4KB())
	const pc, target = 0x1000, 0x9000
	miss := 0
	for i := 0; i < 500; i++ {
		l := p.Predict(p.Hist(), pc)
		if i > 10 && l.Target != target {
			miss++
		}
		p.Update(pc, target, &l)
		p.Hist().Push(pc, target, true)
	}
	if miss > 0 {
		t.Fatalf("monomorphic target mispredicted %d times after warmup", miss)
	}
}

func TestLearnsHistoryCorrelatedTargets(t *testing.T) {
	// The indirect target is determined by the direction of the previous
	// conditional branch — classic ITTAGE territory.
	p := New(Config64KB())
	r := rng.New(3)
	miss, total := 0, 0
	for i := 0; i < 6000; i++ {
		dir := r.Bool(0.5)
		p.Hist().Push(0x2000, boolTarget(dir), dir)
		want := uint64(0x8000)
		if dir {
			want = 0x9000
		}
		l := p.Predict(p.Hist(), 0x3000)
		if i > 2000 {
			total++
			if l.Target != want {
				miss++
			}
		}
		p.Update(0x3000, want, &l)
		p.Hist().Push(0x3000, want, true)
	}
	if rate := float64(miss) / float64(total); rate > 0.05 {
		t.Fatalf("history-correlated target miss rate %.3f", rate)
	}
}

func boolTarget(b bool) uint64 {
	if b {
		return 0x111000
	}
	return 0x222000
}

func TestRandomTargetsAreHard(t *testing.T) {
	// A uniformly random 8-target switch cannot be predicted; the miss
	// rate must stay high (sanity check on the difficulty model).
	p := New(Config64KB())
	r := rng.New(9)
	miss, total := 0, 0
	for i := 0; i < 4000; i++ {
		want := uint64(0x4000 + r.Intn(8)*0x100)
		l := p.Predict(p.Hist(), 0x7000)
		if i > 1000 {
			total++
			if l.Target != want {
				miss++
			}
		}
		p.Update(0x7000, want, &l)
		p.Hist().Push(0x7000, want, true)
	}
	if rate := float64(miss) / float64(total); rate < 0.5 {
		t.Fatalf("random 8-target switch predicted at %.3f miss — too good to be true", rate)
	}
}

func TestHistSnapshotIsolation(t *testing.T) {
	p := New(Config4KB())
	for i := 0; i < 50; i++ {
		p.Hist().Push(uint64(0x100+i*4), uint64(0x200+i*8), i%2 == 0)
	}
	snap := *p.Hist() // value copy = alternate-path context
	before := p.Predict(p.Hist(), 0x5000)
	snap.Push(0xaaaa, 0xbbbb, true)
	snap.Push(0xcccc, 0xdddd, false)
	after := p.Predict(p.Hist(), 0x5000)
	if before.Target != after.Target || before.hitBank != after.hitBank {
		t.Fatal("mutating a snapshot affected the primary history")
	}
}

func TestColdPredictIsUnconfident(t *testing.T) {
	p := New(Config4KB())
	l := p.Predict(p.Hist(), 0xf00)
	if l.Target != 0 || l.Confident {
		t.Fatalf("cold lookup: target=%#x confident=%v", l.Target, l.Confident)
	}
}

func TestStorageBudgets(t *testing.T) {
	big := New(Config64KB())
	small := New(Config4KB())
	if kb := big.StorageKB(); kb < 40 || kb > 80 {
		t.Errorf("64KB config computes %.1fKB", kb)
	}
	if kb := small.StorageKB(); kb < 2 || kb > 6 {
		t.Errorf("4KB config computes %.1fKB", kb)
	}
}

func TestTableLengthsMonotone(t *testing.T) {
	p := New(Config64KB())
	for i := 1; i < len(p.lens); i++ {
		if p.lens[i] <= p.lens[i-1] {
			t.Fatalf("history lengths not increasing: %v", p.lens)
		}
	}
}

func BenchmarkITTAGE(b *testing.B) {
	p := New(Config64KB())
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		pc := uint64(0x1000 + (i%61)*4)
		want := uint64(0x8000 + r.Intn(4)*0x40)
		l := p.Predict(p.Hist(), pc)
		p.Update(pc, want, &l)
		p.Hist().Push(pc, want, true)
	}
}
