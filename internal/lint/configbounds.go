package lint

import (
	"go/ast"
	"go/types"
)

// newConfigBoundsAnalyzer proves that configuration structs are
// validated. A struct opts in with a marker in its doc comment:
//
//	//ucplint:config
//	type Config struct { … }
//
// The analyzer then requires a Validate() error method on the type (or
// its pointer) in the same package, and requires that method's body to
// reference every numeric field of the struct — a field a Validate
// method never looks at is a field nobody bounds-checks, which is how
// impossible hardware geometries (zero-width tables, non-power-of-two
// associativities) sneak into published numbers.
func newConfigBoundsAnalyzer() *Analyzer {
	const rule = "configbounds"
	return &Analyzer{
		Name: rule,
		Doc:  "ucplint:config structs need a Validate() covering every numeric field",
		CheckPackage: func(p *Package, r *Reporter) {
			for _, spec := range markedConfigSpecs(p) {
				checkConfigSpec(p, spec, r)
			}
		},
	}
}

// markedConfigSpecs returns the type specs carrying a ucplint:config
// marker in their own or their GenDecl's doc comment.
func markedConfigSpecs(p *Package) []*ast.TypeSpec {
	var out []*ast.TypeSpec
	hasMarker := func(cg *ast.CommentGroup) bool {
		return hasDirective("config", cg)
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, s := range gd.Specs {
				ts, ok := s.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if _, isStruct := ts.Type.(*ast.StructType); !isStruct {
					continue
				}
				if hasMarker(ts.Doc) || (len(gd.Specs) == 1 && hasMarker(gd.Doc)) {
					out = append(out, ts)
				}
			}
		}
	}
	return out
}

func checkConfigSpec(p *Package, ts *ast.TypeSpec, r *Reporter) {
	const rule = "configbounds"
	named, ok := p.Info.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	st, ok := named.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	validate := findValidateMethod(p, ts.Name.Name)
	if validate == nil {
		r.Report(p, ts.Pos(), rule,
			"config struct %s has no Validate() error method", ts.Name.Name)
		return
	}
	// Which numeric fields does the Validate body reference?
	covered := make(map[types.Object]bool)
	ast.Inspect(validate.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if obj := p.Info.Uses[sel.Sel]; obj != nil {
			covered[obj] = true
		}
		return true
	})
	structAST, _ := ts.Type.(*ast.StructType)
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		basic, ok := field.Type().Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsNumeric == 0 {
			continue
		}
		if covered[field] {
			continue
		}
		pos := ts.Pos()
		if fieldAST := fieldDeclOf(structAST, field.Name()); fieldAST != nil {
			pos = fieldAST.Pos()
		}
		r.Report(p, pos, rule,
			"%s.Validate() does not check numeric field %s", ts.Name.Name, field.Name())
	}
}

// findValidateMethod locates func (x T) Validate() error or the pointer
// variant in the package.
func findValidateMethod(p *Package, typeName string) *ast.FuncDecl {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Validate" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if len(fd.Recv.List) != 1 {
				continue
			}
			t := fd.Recv.List[0].Type
			if star, ok := t.(*ast.StarExpr); ok {
				t = star.X
			}
			id, ok := t.(*ast.Ident)
			if !ok || id.Name != typeName {
				continue
			}
			// Require the () error shape.
			ft := fd.Type
			if ft.Params.NumFields() != 0 || ft.Results.NumFields() != 1 {
				continue
			}
			return fd
		}
	}
	return nil
}

// fieldDeclOf finds the AST field declaring name inside a struct type.
func fieldDeclOf(st *ast.StructType, name string) *ast.Field {
	if st == nil {
		return nil
	}
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				return f
			}
		}
	}
	return nil
}
