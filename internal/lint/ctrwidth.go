package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// newCtrWidthAnalyzer enforces declared saturating-counter widths.
// Hardware counters modeled by the simulator are annotated at their
// field declaration with a marker comment:
//
//	ctr uint8 // confidence counter. nbits:2
//
// meaning the field models a 2-bit counter: [0,3] for unsigned field
// types, [-2,1] for signed ones (centered counters). The analyzer then
// proves every constant comparison with and assignment to the field —
// including composite-literal initialization — stays inside that range,
// so a config tweak or refactor cannot silently widen a structure past
// its declared hardware budget.
func newCtrWidthAnalyzer() *Analyzer {
	const rule = "ctrwidth"
	return &Analyzer{
		Name: rule,
		Doc:  "constant uses of nbits:-annotated counter fields must stay in range",
		CheckPackage: func(p *Package, r *Reporter) {
			fields := collectNbitsFields(p, r)
			if len(fields) == 0 {
				return
			}
			for _, f := range p.Files {
				checkCtrUses(p, f, fields, r)
			}
		},
	}
}

// bitRange is the value range a declared counter width allows.
type bitRange struct {
	bits     int
	min, max int64
}

// collectNbitsFields finds every struct field in the package annotated
// with an nbits: marker and computes its allowed range from the marker
// width and the field type's signedness.
func collectNbitsFields(p *Package, r *Reporter) map[types.Object]bitRange {
	const rule = "ctrwidth"
	fields := make(map[types.Object]bitRange)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				bits, ok := fieldMarker(field, "nbits")
				if !ok {
					continue
				}
				for _, name := range field.Names {
					obj, ok := p.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					basic, ok := obj.Type().Underlying().(*types.Basic)
					if !ok || basic.Info()&types.IsInteger == 0 {
						r.Report(p, name.Pos(), rule,
							"nbits: marker on %s, which is not an integer field", name.Name)
						continue
					}
					unsigned := basic.Info()&types.IsUnsigned != 0
					if w := typeBitWidth(basic); w > 0 && bits > w {
						r.Report(p, name.Pos(), rule,
							"field %s declares nbits:%d, wider than its %s storage", name.Name, bits, basic.Name())
						continue
					}
					br := bitRange{bits: bits}
					if unsigned {
						br.min, br.max = 0, int64(1)<<uint(bits)-1
					} else {
						br.min = -(int64(1) << uint(bits-1))
						br.max = int64(1)<<uint(bits-1) - 1
					}
					fields[obj] = br
				}
			}
			return true
		})
	}
	return fields
}

// typeBitWidth returns the storage width of a basic integer type
// (0 for implementation-sized int/uint/uintptr, which we don't bound).
func typeBitWidth(b *types.Basic) int {
	switch b.Kind() {
	case types.Int8, types.Uint8:
		return 8
	case types.Int16, types.Uint16:
		return 16
	case types.Int32, types.Uint32:
		return 32
	case types.Int64, types.Uint64:
		return 64
	}
	return 0
}

// constIntValue returns the expression's compile-time integer value.
func constIntValue(p *Package, e ast.Expr) (int64, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// annotatedField resolves e to an nbits-annotated field object, if it
// is a selector (or composite-literal key) referring to one.
func annotatedField(p *Package, fields map[types.Object]bitRange, e ast.Expr) (types.Object, bitRange, bool) {
	obj := refObject(p, e)
	if obj == nil {
		return nil, bitRange{}, false
	}
	br, ok := fields[obj]
	return obj, br, ok
}

func checkCtrUses(p *Package, f *ast.File, fields map[types.Object]bitRange, r *Reporter) {
	const rule = "ctrwidth"
	report := func(pos token.Pos, verb string, obj types.Object, br bitRange, v int64) {
		r.Report(p, pos, rule,
			"%s %d is outside the declared %d-bit range [%d,%d] of field %s",
			verb, v, br.bits, br.min, br.max, obj.Name())
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			default:
				return true
			}
			for _, pair := range [2][2]ast.Expr{{n.X, n.Y}, {n.Y, n.X}} {
				if obj, br, ok := annotatedField(p, fields, pair[0]); ok {
					if v, ok := constIntValue(p, pair[1]); ok && (v < br.min || v > br.max) {
						report(n.Pos(), "comparison with", obj, br, v)
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.ASSIGN {
				return true
			}
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if obj, br, ok := annotatedField(p, fields, lhs); ok {
					if v, ok := constIntValue(p, n.Rhs[i]); ok && (v < br.min || v > br.max) {
						report(n.Pos(), "assignment of", obj, br, v)
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				if obj, br, ok := annotatedField(p, fields, key); ok {
					if v, ok := constIntValue(p, kv.Value); ok && (v < br.min || v > br.max) {
						report(kv.Pos(), "initialization with", obj, br, v)
					}
				}
			}
		}
		return true
	})
}
