// Package dataflow is the interprocedural half of ucplint: a
// module-wide static call graph over the type-checked packages the
// linter loads, plus per-function summaries and taint closures built on
// it. The intraprocedural rules in internal/lint answer "what does this
// statement do"; this package answers "what can this function reach" —
// which randomness sources a seed expression derives from, whether a
// merge method is reachable from the result-aggregation paths, where a
// goroutine's writes can land, whether a hot function's callees
// allocate.
//
// Like the rest of ucplint it is deliberately stdlib-only (go/ast +
// go/types): no golang.org/x/tools, no SSA. The graph is therefore an
// approximation — static calls are resolved exactly, interface calls
// are expanded to every module type implementing the interface
// (class-hierarchy analysis), and calls through function values are not
// followed. For the determinism invariants ucplint enforces this
// over-approximation errs on the side of reporting, and every rule has
// a per-line escape hatch.
//
// Everything the package returns is deterministically ordered: nodes by
// (package path, source position), edges in source order, closures by
// breadth-first worklist over that order. Two runs over the same tree
// produce byte-identical findings — the linter holds itself to the same
// bar it enforces.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Source is one type-checked package contributed to the graph. It
// mirrors the fields of internal/lint's Package without importing it
// (lint imports dataflow, not the reverse).
type Source struct {
	Path  string
	Files []*ast.File
	Info  *types.Info
	Pkg   *types.Package
}

// Call is one resolved static call site.
type Call struct {
	// Callee is the invoked function. It may belong to the module (a
	// Node exists for it) or be external (stdlib); external callees
	// carry no body but are still classified by closures.
	Callee *types.Func
	// Pos is the call expression's position.
	Pos token.Pos
	// Iface marks an edge synthesized by class-hierarchy analysis: the
	// source called an interface method and Callee is one module
	// implementation of it.
	Iface bool
}

// Node is one module function with a body.
type Node struct {
	Fn      *types.Func
	Decl    *ast.FuncDecl
	PkgPath string
	Src     *Source
	// Calls lists the resolved static calls of the body (including
	// calls inside nested function literals, which are attributed to
	// the enclosing declaration) in source order, followed by CHA
	// edges.
	Calls []Call
}

// Graph is the module-wide call graph.
type Graph struct {
	Fset  *token.FileSet
	nodes map[*types.Func]*Node
	order []*Node // deterministic iteration order

	// callers is the reverse adjacency: callee -> calls into it, each
	// paired with its calling node.
	callers map[*types.Func][]edge

	// externals are callees with no Node (stdlib or bodyless), sorted.
	externals []*types.Func

	emitOnce       bool
	emits          map[*types.Func]EmitMask
	stateOnce      bool
	state          map[*types.Func]*StateSummary
	allocOnce      bool
	allocs         map[*types.Func][]Alloc
	allocReachOnce bool
	allocReach     map[*types.Func]*Taint
}

type edge struct {
	caller *Node
	call   Call
}

// Build constructs the graph over the given packages. All packages must
// share fset.
func Build(fset *token.FileSet, srcs []*Source) *Graph {
	g := &Graph{
		Fset:    fset,
		nodes:   make(map[*types.Func]*Node),
		callers: make(map[*types.Func][]edge),
	}
	// Pass 1: one node per function declaration with a body.
	for _, src := range srcs {
		for _, f := range src.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := src.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[fn] = &Node{Fn: fn, Decl: fd, PkgPath: src.Path, Src: src}
			}
		}
	}
	// Pass 2: resolve call sites.
	for _, src := range srcs {
		for _, f := range src.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := src.Info.Defs[fd.Name].(*types.Func)
				n := g.nodes[fn]
				if n == nil {
					continue
				}
				ast.Inspect(fd.Body, func(x ast.Node) bool {
					call, ok := x.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := calleeOf(src.Info, call); callee != nil {
						n.Calls = append(n.Calls, Call{Callee: callee, Pos: call.Pos()})
					}
					return true
				})
			}
		}
	}
	// Deterministic node order: package path, then position. Established
	// before interface expansion so CHA edges append in stable order.
	for _, n := range g.nodes {
		g.order = append(g.order, n)
	}
	sort.Slice(g.order, func(i, j int) bool {
		a, b := g.order[i], g.order[j]
		if a.PkgPath != b.PkgPath {
			return a.PkgPath < b.PkgPath
		}
		return a.Decl.Pos() < b.Decl.Pos()
	})
	g.expandInterfaceCalls(srcs)
	// Reverse adjacency and the external callee set.
	seenExt := make(map[*types.Func]bool)
	for _, n := range g.order {
		for _, c := range n.Calls {
			g.callers[c.Callee] = append(g.callers[c.Callee], edge{caller: n, call: c})
			if g.nodes[c.Callee] == nil && !seenExt[c.Callee] {
				seenExt[c.Callee] = true
				g.externals = append(g.externals, c.Callee)
			}
		}
	}
	sort.Slice(g.externals, func(i, j int) bool {
		return funcKey(g.externals[i]) < funcKey(g.externals[j])
	})
	return g
}

// funcKey is a stable sort key for a function object.
func funcKey(fn *types.Func) string {
	return pkgPath(fn) + "\x00" + fn.FullName()
}

// pkgPath returns the import path of fn's package ("" for builtins).
func pkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// calleeOf resolves a call expression to its static callee, or nil for
// calls through function values, builtins, and type conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// expandInterfaceCalls adds class-hierarchy edges: a call to an
// interface method also targets every module method implementing it.
func (g *Graph) expandInterfaceCalls(srcs []*Source) {
	// Collect the module's named types once, in deterministic order.
	var named []*types.Named
	for _, src := range srcs {
		if src.Pkg == nil {
			continue
		}
		scope := src.Pkg.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if nt, ok := tn.Type().(*types.Named); ok {
				named = append(named, nt)
			}
		}
	}
	for _, n := range g.order {
		for _, c := range n.Calls {
			ifaceFn := c.Callee
			sig, ok := ifaceFn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				continue
			}
			if _, ok := sig.Recv().Type().Underlying().(*types.Interface); !ok {
				continue
			}
			iface := sig.Recv().Type().Underlying().(*types.Interface)
			for _, nt := range named {
				impl := implementation(nt, iface, ifaceFn.Name())
				if impl == nil || g.nodes[impl] == nil || impl == ifaceFn {
					continue
				}
				n.Calls = append(n.Calls, Call{Callee: impl, Pos: c.Pos, Iface: true})
			}
		}
	}
}

// implementation returns nt's (or *nt's) method named name if the type
// implements iface, else nil.
func implementation(nt *types.Named, iface *types.Interface, name string) *types.Func {
	var t types.Type = nt
	if !types.Implements(t, iface) {
		t = types.NewPointer(nt)
		if !types.Implements(t, iface) {
			return nil
		}
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nt.Obj().Pkg(), name)
	fn, _ := obj.(*types.Func)
	return fn
}

// Nodes returns every module function in deterministic order.
func (g *Graph) Nodes() []*Node { return g.order }

// NodeOf returns the node for fn, or nil when fn is external.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.nodes[fn] }

// Taint records why a function is in a closure, as a linked chain back
// to the base function that seeded it.
type Taint struct {
	Fn *types.Func
	// Why explains this link: the base reason for seed functions, or
	// "calls <next>" / "called by <prev>" for propagated ones.
	Why string
	// Pos is the call site that propagated the taint (the base
	// function's taint has no position).
	Pos token.Pos
	// From is the next hop toward the base function (nil at the base).
	From *Taint
}

// Chain renders the taint path as "a → b → c (reason)" using positions
// from fset for module hops.
func (t *Taint) Chain(fset *token.FileSet) string {
	out := ""
	for cur := t; cur != nil; cur = cur.From {
		if out != "" {
			out += " → "
		}
		out += cur.Fn.FullName()
		if cur.From == nil {
			out += " (" + cur.Why + ")"
		}
	}
	return out
}

// ReachesSink computes the set of module functions that can reach — via
// any chain of static calls — a function for which base returns a
// reason. base is consulted for every callee, external or module. The
// result maps each tainted module function to a chain ending at the
// base function.
func (g *Graph) ReachesSink(base func(fn *types.Func) (string, bool)) map[*types.Func]*Taint {
	taint := make(map[*types.Func]*Taint)
	var queue []*types.Func
	seed := func(fn *types.Func) {
		if _, ok := taint[fn]; ok {
			return
		}
		if why, ok := base(fn); ok {
			taint[fn] = &Taint{Fn: fn, Why: why}
			queue = append(queue, fn)
		}
	}
	// Seed from externals first, then module nodes, in stable order.
	for _, fn := range g.externals {
		seed(fn)
	}
	for _, n := range g.order {
		seed(n.Fn)
	}
	// Propagate up the reverse edges breadth-first.
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, e := range g.callers[fn] {
			if _, ok := taint[e.caller.Fn]; ok {
				continue
			}
			taint[e.caller.Fn] = &Taint{
				Fn:   e.caller.Fn,
				Why:  "calls " + fn.FullName(),
				Pos:  e.call.Pos,
				From: taint[fn],
			}
			queue = append(queue, e.caller.Fn)
		}
	}
	return taint
}

// ReachableFrom computes the set of module functions reachable — via
// any chain of static calls — from a function for which root returns a
// reason. The result maps each reached function to a chain back to its
// root.
func (g *Graph) ReachableFrom(root func(fn *types.Func) (string, bool)) map[*types.Func]*Taint {
	reach := make(map[*types.Func]*Taint)
	var queue []*Node
	for _, n := range g.order {
		if why, ok := root(n.Fn); ok {
			reach[n.Fn] = &Taint{Fn: n.Fn, Why: why}
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Calls {
			cn := g.nodes[c.Callee]
			if cn == nil {
				continue
			}
			if _, ok := reach[c.Callee]; ok {
				continue
			}
			reach[c.Callee] = &Taint{
				Fn:   c.Callee,
				Why:  "called by " + n.Fn.FullName(),
				Pos:  c.Pos,
				From: reach[n.Fn],
			}
			queue = append(queue, cn)
		}
	}
	return reach
}

// RootChain renders a ReachableFrom chain root-first:
// "root (reason) → … → fn".
func RootChain(t *Taint) string {
	var parts []string
	for cur := t; cur != nil; cur = cur.From {
		name := cur.Fn.FullName()
		if cur.From == nil {
			name += " (" + cur.Why + ")"
		}
		parts = append(parts, name)
	}
	out := ""
	for i := len(parts) - 1; i >= 0; i-- {
		if out != "" {
			out += " → "
		}
		out += parts[i]
	}
	return out
}
