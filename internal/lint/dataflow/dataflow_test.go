package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseSrc type-checks one synthetic package and wraps it as a Source.
func parseSrc(t *testing.T, fset *token.FileSet, path, src string) *Source {
	t.Helper()
	f, err := parser.ParseFile(fset, strings.ReplaceAll(path, "/", "_")+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", path, err)
	}
	return &Source{Path: path, Files: []*ast.File{f}, Info: info, Pkg: pkg}
}

const graphSrc = `package p

import "time"

func leaf() int64 { return time.Now().UnixNano() }

func mid() int64 { return leaf() }

func top() int64 { return mid() }

func clean() int { return 42 }

type emitter interface{ Emit() }

type impl struct{}

func (impl) Emit() {}

func callIface(e emitter) { e.Emit() }
`

func buildTestGraph(t *testing.T) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	return Build(fset, []*Source{parseSrc(t, fset, "test/p", graphSrc)})
}

func TestReachesSinkFollowsChains(t *testing.T) {
	g := buildTestGraph(t)
	tainted := g.ReachesSink(func(fn *types.Func) (string, bool) {
		if fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" {
			return "wall clock", true
		}
		return "", false
	})
	byName := map[string]*Taint{}
	for fn, taint := range tainted {
		byName[fn.Name()] = taint
	}
	for _, want := range []string{"leaf", "mid", "top"} {
		if byName[want] == nil {
			t.Errorf("%s should be tainted, is not", want)
		}
	}
	if byName["clean"] != nil {
		t.Errorf("clean should not be tainted: %s", byName["clean"].Chain(g.Fset))
	}
	if taint := byName["top"]; taint != nil {
		chain := taint.Chain(g.Fset)
		for _, hop := range []string{"top", "mid", "leaf", "wall clock"} {
			if !strings.Contains(chain, hop) {
				t.Errorf("chain %q missing hop %q", chain, hop)
			}
		}
	}
}

func TestInterfaceCallsExpandToImplementations(t *testing.T) {
	g := buildTestGraph(t)
	reach := g.ReachableFrom(func(fn *types.Func) (string, bool) {
		if fn.Name() == "callIface" {
			return "root", true
		}
		return "", false
	})
	found := false
	for fn := range reach {
		if fn.Name() == "Emit" && fn.Pkg().Path() == "test/p" {
			found = true
		}
	}
	if !found {
		t.Error("CHA edge missing: impl.Emit not reachable from callIface")
	}
}

// TestBuildIsDeterministic guards the linter's own reproducibility: two
// builds over the same sources must present identical node and call
// orders.
func TestBuildIsDeterministic(t *testing.T) {
	shape := func() string {
		g := buildTestGraph(t)
		var sb strings.Builder
		for _, n := range g.Nodes() {
			sb.WriteString(n.Fn.FullName())
			for _, c := range n.Calls {
				sb.WriteString(" ")
				sb.WriteString(c.Callee.FullName())
			}
			sb.WriteString("\n")
		}
		return sb.String()
	}
	a, b := shape(), shape()
	if a != b {
		t.Errorf("graph shape differs between builds:\n%s\nvs\n%s", a, b)
	}
}

const summarySrc = `package s

import "fmt"

var global int

type box struct{ n int }

func (b *box) set(v int) { b.n = v }

func writeGlobal() { global++ }

func emitParam(sb *fmt.Stringer) {}

func printer() { fmt.Println("x") }

func viaHelper() { printer() }

func allocates() []int { return make([]int, 4) }

func callsAllocator() []int { return allocates() }

func pure(a, b int) int { return a + b }
`

func TestSummaries(t *testing.T) {
	fset := token.NewFileSet()
	g := Build(fset, []*Source{parseSrc(t, fset, "test/s", summarySrc)})
	find := func(name string) *types.Func {
		for _, n := range g.Nodes() {
			if n.Fn.Name() == name {
				return n.Fn
			}
		}
		t.Fatalf("function %s not found", name)
		return nil
	}

	emits := g.EmitSummaries()
	if m := emits[find("printer")]; m&EmitStdout == 0 {
		t.Errorf("printer mask = %s, want stdout", m.Describe())
	}
	if m := emits[find("viaHelper")]; m&EmitStdout == 0 {
		t.Errorf("viaHelper mask = %s, want stdout inherited through printer", m.Describe())
	}
	if m := emits[find("pure")]; m != 0 {
		t.Errorf("pure mask = %s, want nothing", m.Describe())
	}

	state := g.StateSummaries()
	if s := state[find("writeGlobal")]; len(s.Globals) != 1 || s.Globals[0].Name() != "global" {
		t.Errorf("writeGlobal globals = %v, want [global]", s.Globals)
	}
	if s := state[find("set")]; !s.MutatesReceiver {
		t.Error("box.set should mutate its receiver")
	}
	if s := state[find("pure")]; s.MutatesReceiver || len(s.Globals) != 0 {
		t.Error("pure should have an empty state summary")
	}

	allocs := g.AllocSummaries()
	if len(allocs[find("allocates")]) == 0 {
		t.Error("allocates should have an allocation site (make)")
	}
	if len(allocs[find("pure")]) != 0 {
		t.Errorf("pure should not allocate: %v", allocs[find("pure")])
	}
	reach := g.AllocReach(allocs)
	if reach[find("callsAllocator")] == nil {
		t.Error("callsAllocator should transitively allocate")
	}
	if reach[find("pure")] != nil {
		t.Error("pure should not be in the alloc closure")
	}
}
