package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// RefClass classifies the storage an expression ultimately refers to,
// relative to the enclosing function: its receiver, one of its
// parameters, a package-level variable, or a local.
type RefClass struct {
	Kind  RefKind
	Param int // parameter index when Kind == RefParam
}

// RefKind enumerates the storage classes ClassifyRef distinguishes.
type RefKind int

// Reference storage classes, from least to most escaping.
const (
	RefUnknown RefKind = iota
	RefLocal
	RefParam
	RefReceiver
	RefGlobal
)

// rootIdent strips selectors, indexing, derefs, address-ofs, and parens
// down to the base identifier of an lvalue-ish expression.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			// A call result is a fresh value; treat as local.
			return nil
		default:
			return nil
		}
	}
}

// ClassifyRef resolves e's root storage relative to node n. Expressions
// whose root cannot be determined (call results, literals) classify as
// RefLocal: they denote fresh values that cannot outlive the function.
func (g *Graph) ClassifyRef(n *Node, e ast.Expr) RefClass {
	id := rootIdent(e)
	if id == nil {
		return RefClass{Kind: RefLocal}
	}
	obj := n.Src.Info.Uses[id]
	if obj == nil {
		obj = n.Src.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return RefClass{Kind: RefLocal}
	}
	return g.classifyVar(n, v)
}

func (g *Graph) classifyVar(n *Node, v *types.Var) RefClass {
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return RefClass{Kind: RefGlobal}
	}
	sig, _ := n.Fn.Type().(*types.Signature)
	if sig != nil {
		if recv := sig.Recv(); recv != nil && recv == v {
			return RefClass{Kind: RefReceiver}
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if sig.Params().At(i) == v {
				return RefClass{Kind: RefParam, Param: i}
			}
		}
	}
	return RefClass{Kind: RefLocal}
}

// EmitMask is a bitset of the places a function can emit ordered output
// to: implicit process stdout/stderr, package-level storage, its
// receiver, or one of its parameters (bit paramBit0+i for parameter i).
// A function whose mask is zero only ever writes function-local
// buffers, which cannot leak iteration order to a caller.
type EmitMask uint64

// EmitMask bits.
const (
	EmitStdout EmitMask = 1 << iota
	EmitGlobal
	EmitReceiver
	paramBit0 = 8 // bits 8.. are per-parameter
)

// Param reports whether the mask includes emission into parameter i.
func (m EmitMask) Param(i int) bool {
	if i > 55 {
		return true // conservatively escaping beyond the bitset width
	}
	return m&(1<<(paramBit0+i)) != 0
}

func paramMask(i int) EmitMask {
	if i > 55 {
		return EmitGlobal // saturate: treat as escaping
	}
	return 1 << (paramBit0 + i)
}

// Describe renders the mask for diagnostics.
func (m EmitMask) Describe() string {
	var parts []string
	if m&EmitStdout != 0 {
		parts = append(parts, "stdout")
	}
	if m&EmitGlobal != 0 {
		parts = append(parts, "package state")
	}
	if m&EmitReceiver != 0 {
		parts = append(parts, "its receiver")
	}
	for i := 0; i <= 55; i++ {
		if m&(1<<(paramBit0+i)) != 0 {
			parts = append(parts, "a caller-supplied writer")
			break
		}
	}
	if len(parts) == 0 {
		return "nothing"
	}
	return strings.Join(parts, ", ")
}

// isFmtPrint reports whether fn is a printing function of package fmt
// and, if so, whether it takes an explicit writer first argument.
func isFmtPrint(fn *types.Func) (explicitWriter, ok bool) {
	if pkgPath(fn) != "fmt" {
		return false, false
	}
	name := fn.Name()
	switch {
	case strings.HasPrefix(name, "Fprint"):
		return true, true
	case strings.HasPrefix(name, "Print"):
		return false, true
	}
	return false, false
}

// isWriterWrite reports whether the call is a Write*-shaped method on a
// writer-ish receiver: strings.Builder, bytes.Buffer, or anything
// satisfying io.Writer's method name shape.
func isWriterWrite(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	if !strings.HasPrefix(fn.Name(), "Write") {
		return false
	}
	switch pkgPath(fn) {
	case "strings", "bytes", "bufio", "io", "os":
		return true
	}
	// Interface method named Write* on any io.Writer-like interface.
	_, isIface := sig.Recv().Type().Underlying().(*types.Interface)
	return isIface
}

// EmitSummaries computes, for every module function, where its emitted
// output can land, propagated through call chains: a helper that
// Fprintf's into its own parameter makes its caller emit into whatever
// the caller passed. The fixpoint is monotone over a finite lattice, so
// iteration terminates.
func (g *Graph) EmitSummaries() map[*types.Func]EmitMask {
	if g.emitOnce {
		return g.emits
	}
	g.emitOnce = true
	g.emits = make(map[*types.Func]EmitMask)
	for changed := true; changed; {
		changed = false
		for _, n := range g.order {
			m := g.emitOf(n)
			if m != g.emits[n.Fn] {
				g.emits[n.Fn] = m
				changed = true
			}
		}
	}
	return g.emits
}

// emitOf evaluates one function's mask under the current fixpoint state.
func (g *Graph) emitOf(n *Node) EmitMask {
	var mask EmitMask
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(n.Src.Info, call)
		if callee == nil {
			return true
		}
		mask |= g.emitAtSite(n, call, callee)
		return true
	})
	return mask
}

// emitAtSite resolves the emission of one call site into the enclosing
// function's frame: the callee's sinks are mapped through the site's
// receiver/argument expressions.
func (g *Graph) emitAtSite(n *Node, call *ast.CallExpr, callee *types.Func) EmitMask {
	classify := func(e ast.Expr) EmitMask {
		switch rc := g.ClassifyRef(n, e); rc.Kind {
		case RefGlobal:
			return EmitGlobal
		case RefReceiver:
			return EmitReceiver
		case RefParam:
			return paramMask(rc.Param)
		}
		return 0 // local: invisible to callers
	}
	// Base cases: fmt printing and writer Write methods.
	if explicitWriter, ok := isFmtPrint(callee); ok {
		if !explicitWriter {
			return EmitStdout
		}
		if len(call.Args) > 0 {
			return classify(call.Args[0])
		}
		return 0
	}
	if isWriterWrite(callee) {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return classify(sel.X)
		}
		return 0
	}
	// Module callee: map its sinks through this site.
	cm, ok := g.emits[callee]
	if !ok {
		return 0
	}
	var mask EmitMask
	if cm&EmitStdout != 0 {
		mask |= EmitStdout
	}
	if cm&EmitGlobal != 0 {
		mask |= EmitGlobal
	}
	if cm&EmitReceiver != 0 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			mask |= classify(sel.X)
		}
	}
	for i := 0; i < len(call.Args); i++ {
		if cm.Param(i) {
			mask |= classify(call.Args[i])
		}
	}
	return mask
}

// StateSummary describes a function's direct mutations of state that
// outlives it.
type StateSummary struct {
	// Globals are the package-level variables the body assigns to
	// (directly or via ++/--/compound assignment), sorted by name.
	Globals []*types.Var
	// MutatesReceiver is set when the body writes a field of its
	// receiver (or the receiver itself through a pointer).
	MutatesReceiver bool
	// Locks is set when the body contains a direct sync acquisition:
	// Mutex/RWMutex Lock/RLock, Once.Do, or WaitGroup.Wait.
	Locks bool
}

// StateSummaries computes direct state mutation per module function.
func (g *Graph) StateSummaries() map[*types.Func]*StateSummary {
	if g.stateOnce {
		return g.state
	}
	g.stateOnce = true
	g.state = make(map[*types.Func]*StateSummary)
	for _, n := range g.order {
		g.state[n.Fn] = g.stateOf(n)
	}
	return g.state
}

func (g *Graph) stateOf(n *Node) *StateSummary {
	s := &StateSummary{}
	globals := make(map[*types.Var]bool)
	noteWrite := func(e ast.Expr) {
		id := rootIdent(e)
		if id == nil {
			return
		}
		obj, _ := n.Src.Info.Uses[id].(*types.Var)
		if obj == nil {
			obj, _ = n.Src.Info.Defs[id].(*types.Var)
		}
		if obj == nil {
			return
		}
		switch rc := g.classifyVar(n, obj); rc.Kind {
		case RefGlobal:
			globals[obj] = true
		case RefReceiver:
			// Writing the receiver variable itself only mutates shared
			// state through a pointer field path (x.f = …); plain
			// `recv = …` rebinds the local copy.
			if _, isIdent := e.(*ast.Ident); !isIdent {
				s.MutatesReceiver = true
			}
		}
	}
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				noteWrite(lhs)
			}
		case *ast.IncDecStmt:
			noteWrite(x.X)
		case *ast.CallExpr:
			callee := calleeOf(n.Src.Info, x)
			if callee != nil && isSyncAcquire(callee) {
				s.Locks = true
			}
		}
		return true
	})
	for v := range globals {
		s.Globals = append(s.Globals, v)
	}
	sort.Slice(s.Globals, func(i, j int) bool {
		return s.Globals[i].Name() < s.Globals[j].Name()
	})
	return s
}

// isSyncAcquire reports whether fn is a sync-package acquisition:
// Mutex/RWMutex (R)Lock, Once.Do, WaitGroup.Wait.
func isSyncAcquire(fn *types.Func) bool {
	if pkgPath(fn) != "sync" {
		return false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Do", "Wait":
		return true
	}
	return false
}

// IsSyncType reports whether t is (or points to / derives from) a
// synchronization primitive: a channel, or a named type from sync or
// sync/atomic.
func IsSyncType(t types.Type) bool {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
			continue
		case *types.Named:
			if pkg := x.Obj().Pkg(); pkg != nil {
				p := pkg.Path()
				if p == "sync" || p == "sync/atomic" {
					return true
				}
			}
			t = x.Underlying()
			continue
		case *types.Chan:
			return true
		}
		return false
	}
}

// Alloc is one allocating construct in a function body.
type Alloc struct {
	Pos  token.Pos
	What string
}

// allocPkgs are stdlib packages whose every call is assumed to
// allocate; a hot path must not call into them.
var allocPkgs = map[string]bool{
	"fmt": true, "errors": true, "sort": true, "strings": true,
	"strconv": true, "bytes": true, "os": true, "io": true,
	"encoding/json": true, "encoding/binary": true, "encoding/hex": true,
	"reflect": true,
}

// AllocSummaries computes the direct allocating constructs of every
// module function: map/slice composite literals, make/new, append
// (growth is not statically bounded), closures, and interface boxing of
// call arguments.
func (g *Graph) AllocSummaries() map[*types.Func][]Alloc {
	if g.allocOnce {
		return g.allocs
	}
	g.allocOnce = true
	g.allocs = make(map[*types.Func][]Alloc)
	for _, n := range g.order {
		g.allocs[n.Fn] = g.allocOf(n)
	}
	return g.allocs
}

func (g *Graph) allocOf(n *Node) []Alloc {
	var out []Alloc
	info := n.Src.Info
	add := func(pos token.Pos, what string) { out = append(out, Alloc{Pos: pos, What: what}) }
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CompositeLit:
			tv, ok := info.Types[x]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				add(x.Pos(), "allocates a map literal")
			case *types.Slice:
				add(x.Pos(), "allocates a slice literal")
			}
		case *ast.FuncLit:
			add(x.Pos(), "creates a closure")
			return false // the literal's body is its own problem
		case *ast.CallExpr:
			fun := ast.Unparen(x.Fun)
			if id, ok := fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make":
						add(x.Pos(), "calls make")
					case "new":
						add(x.Pos(), "calls new")
					case "append":
						add(x.Pos(), "append may grow its backing array")
					}
					return true
				}
			}
			callee := calleeOf(info, x)
			if callee != nil && allocPkgs[pkgPath(callee)] {
				add(x.Pos(), "calls "+callee.FullName()+", which allocates")
				return true
			}
			// Interface boxing of concrete arguments.
			if callee != nil {
				g.noteBoxing(n, x, callee, add)
			}
		}
		return true
	})
	return out
}

// AllocReach computes the reverse closure of AllocSummaries: every
// module function that allocates directly or through any module call
// chain, mapped to a chain ending at the direct allocation. Memoized —
// the allocs argument must be the graph's own AllocSummaries result.
func (g *Graph) AllocReach(allocs map[*types.Func][]Alloc) map[*types.Func]*Taint {
	if g.allocReachOnce {
		return g.allocReach
	}
	g.allocReachOnce = true
	g.allocReach = g.ReachesSink(func(fn *types.Func) (string, bool) {
		if as := allocs[fn]; len(as) > 0 {
			return as[0].What, true
		}
		return "", false
	})
	return g.allocReach
}

// noteBoxing flags call arguments whose concrete value is converted to
// a non-empty parameter interface at the call site (boxing allocates
// unless the value is pointer-shaped; we flag value types only).
func (g *Graph) noteBoxing(n *Node, call *ast.CallExpr, callee *types.Func, add func(token.Pos, string)) {
	sig, _ := callee.Type().(*types.Signature)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic():
			st, _ := params.At(params.Len() - 1).Type().(*types.Slice)
			if st == nil {
				continue
			}
			pt = st.Elem()
		default:
			continue
		}
		if _, ok := pt.Underlying().(*types.Interface); !ok {
			continue
		}
		at, ok := n.Src.Info.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		switch at.Type.Underlying().(type) {
		case *types.Interface, *types.Pointer, *types.Signature, *types.Chan, *types.Map, *types.Slice:
			continue // already a pointer-shaped word, no box
		}
		if at.IsNil() {
			continue
		}
		add(arg.Pos(), "boxes a "+at.Type.String()+" into an interface argument")
	}
}
