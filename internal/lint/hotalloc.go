package lint

import (
	"go/types"

	"ucp/internal/lint/dataflow"
)

// newHotAllocAnalyzer protects the cycle-engine hot path won in the
// 2.2x optimization PR: functions annotated //ucplint:hotpath are
// promises that the per-cycle inner loop stays allocation-free, and
// this rule turns the promise into a build gate. A hotpath function
// may not, in its own body:
//
//   - build map or slice composite literals,
//   - call make/new, or append without guaranteed capacity
//     (any append counts — proving capacity statically is out of
//     scope, so hot paths pre-size in setup code instead),
//   - define closures (the FuncLit itself allocates when it captures),
//   - box a concrete value into an interface parameter,
//   - call into allocating stdlib packages (fmt, sort, strings, ...),
//
// nor may it call a module function whose transitive closure does any
// of the above. The escape hatch for a deliberate cold branch inside a
// hot function (error paths, lazy growth) is a named line-level
// //ucplint:ignore hotalloc.
func newHotAllocAnalyzer() *Analyzer {
	const rule = "hotalloc"
	return &Analyzer{
		Name: rule,
		Doc:  "//ucplint:hotpath functions must not allocate, directly or through any module callee",
		CheckModule: func(u *Universe, r *Reporter) {
			g := u.Graph
			allocs := g.AllocSummaries()

			for _, n := range g.Nodes() {
				if !funcMarked(n.Decl, "hotpath") {
					continue
				}
				// Own-body allocation sites, reported individually so
				// the fix target is exact.
				for _, a := range allocs[n.Fn] {
					u.Report(r, a.Pos, rule,
						"allocation in //ucplint:hotpath function %s: %s", n.Fn.Name(), a.What)
				}
				// Calls whose transitive closure allocates. Walk this
				// function's call sites; for each module callee, ask
				// the graph for a chain to an allocation.
				for _, c := range n.Calls {
					cn := g.NodeOf(c.Callee)
					if cn == nil {
						continue // external callees covered by allocPkgs in own-body pass
					}
					if funcMarked(cn.Decl, "hotpath") {
						continue // callee is independently gated; avoid double reports
					}
					if chain := allocChain(g, allocs, c.Callee); chain != "" {
						u.Report(r, c.Pos, rule,
							"//ucplint:hotpath function %s calls %s, which allocates: %s",
							n.Fn.Name(), c.Callee.Name(), chain)
					}
				}
			}
		},
	}
}

// allocChain returns a human-readable call chain from fn to its
// nearest transitive allocation site, or "" if fn's closure is
// allocation-free. Results come from a reverse-reachability pass over
// the graph seeded at directly-allocating functions.
func allocChain(g *dataflow.Graph, allocs map[*types.Func][]dataflow.Alloc, fn *types.Func) string {
	t := g.AllocReach(allocs)[fn]
	if t == nil {
		return ""
	}
	return t.Chain(g.Fset)
}
