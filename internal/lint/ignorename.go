package lint

// newIgnoreNameAnalyzer polices the escape hatch itself. An ignore
// directive must name the rule(s) it suppresses: a bare
// //ucplint:ignore is a blanket waiver that silently swallows findings
// of rules added later, so it suppresses nothing and is reported. An
// ignore naming a rule that does not exist is a typo that suppresses
// nothing the author intended, so it is reported too.
func newIgnoreNameAnalyzer(known []string) *Analyzer {
	const rule = "ignorename"
	valid := make(map[string]bool, len(known))
	for _, n := range known {
		valid[n] = true
	}
	return &Analyzer{
		Name: rule,
		Doc:  "ucplint:ignore directives must name existing rules (bare ignores suppress nothing)",
		CheckPackage: func(p *Package, r *Reporter) {
			for _, f := range p.Files {
				for _, cg := range f.Comments {
					for _, d := range directives(cg) {
						if d.Name != "ignore" {
							continue
						}
						if len(d.Args) == 0 {
							r.Report(p, d.Pos, rule,
								"bare //ucplint:ignore suppresses nothing: name the rule(s) it waives")
							continue
						}
						for _, arg := range d.Args {
							if !valid[arg] {
								r.Report(p, d.Pos, rule,
									"//ucplint:ignore names unknown rule %q", arg)
							}
						}
					}
				}
			}
		},
	}
}
