// Package lint implements ucplint, the repository's custom static
// analysis pass. The simulator's results are only meaningful if every
// run is bit-for-bit reproducible and every modeled structure respects
// its declared hardware budget, so this package mechanically enforces
// the invariants reviewers would otherwise have to police by hand:
// no wall-clock or global-randomness sources, no map-iteration-ordered
// output, saturating counters staying inside their declared bit widths,
// globally unique statistics names, config structs whose Validate
// methods cover every numeric field, and no direct trace decoding
// outside the arena/codec entry points (sweep paths share one decoded
// arena per batch).
//
// Since the interprocedural engine landed (internal/lint/dataflow), the
// pass also proves module-wide dataflow invariants: every random value
// derives from a config seed (seedflow), merge methods on the
// result-aggregation paths are order-insensitive or dynamically proven
// commutative (mergeorder), goroutine fan-out never shares unguarded
// mutable state (sharedstate), map-iteration order cannot taint a
// digest or report through any call chain (mapemit), and
// //ucplint:hotpath functions stay allocation-free (hotalloc). These
// are exactly the preconditions the time-parallel single-run refactor
// (ROADMAP item 1) needs: a cross-worker merge the linter cannot prove
// order-independent is a merge that will eventually produce two
// different reports from one seed.
//
// The implementation is deliberately stdlib-only (go/ast, go/parser,
// go/token, go/types): the repository must keep building with nothing
// but the Go toolchain.
//
// Individual findings can be suppressed with a comment on the flagged
// line or the line directly above it:
//
//	//ucplint:ignore <rule> [<rule>...]   suppress the named rules
//
// A bare //ucplint:ignore (no rule names) suppresses nothing and is
// itself a finding (rule ignorename): blanket suppressions hide future
// findings of rules that did not exist when they were written.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"ucp/internal/lint/dataflow"
)

// Package is one type-checked package under analysis.
type Package struct {
	// Path is the import path ("ucp/internal/core", or a synthetic
	// "fixture/..." path for testdata packages).
	Path string
	// Dir is the directory the files were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// ignores maps filename -> line -> rules suppressed on that line
	// ("*" suppresses everything).
	ignores map[string]map[int][]string
}

// buildIgnores scans the package's comments for //ucplint:ignore
// directives. A directive suppresses findings reported on its own line
// and on the line immediately below it (so it can trail a statement or
// sit above one). A bare ignore with no rule names suppresses nothing;
// the ignorename analyzer reports it.
func (p *Package) buildIgnores() {
	p.ignores = make(map[string]map[int][]string)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, d := range directives(cg) {
				if d.Name != "ignore" || len(d.Args) == 0 {
					continue
				}
				pos := p.Fset.Position(d.Pos)
				m := p.ignores[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					p.ignores[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], d.Args...)
			}
		}
	}
}

// suppressed reports whether a finding for rule at pos is covered by an
// ignore directive.
func (p *Package) suppressed(pos token.Position, rule string) bool {
	m := p.ignores[pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, r := range m[line] {
			if r == rule {
				return true
			}
		}
	}
	return false
}

// Finding is one rule violation.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Rule, f.Msg)
}

// Reporter collects findings, applying per-line suppression.
type Reporter struct {
	findings []Finding
}

// Report records a finding unless an ignore directive covers it.
func (r *Reporter) Report(p *Package, pos token.Pos, rule, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(position, rule) {
		return
	}
	r.findings = append(r.findings, Finding{
		Pos:  position,
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Findings returns the collected findings sorted by position.
func (r *Reporter) Findings() []Finding {
	sort.Slice(r.findings, func(i, j int) bool {
		a, b := r.findings[i].Pos, r.findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return r.findings[i].Rule < r.findings[j].Rule
	})
	return r.findings
}

// Analyzer is one ucplint rule. Some analyzers carry cross-package
// state (e.g. repo-wide stat-name uniqueness), so a fresh set from
// NewAnalyzers must be used for each run. A rule implements
// CheckPackage (intraprocedural, called once per package),
// CheckModule (interprocedural, called once over the whole Universe
// after the call graph is built), or both.
type Analyzer struct {
	Name string
	Doc  string
	// CheckPackage inspects one package. Packages are presented in
	// sorted import-path order, so cross-package state is deterministic.
	CheckPackage func(p *Package, r *Reporter)
	// CheckModule inspects the whole loaded package set at once, with
	// the module call graph available. It runs after every
	// CheckPackage pass.
	CheckModule func(u *Universe, r *Reporter)
}

// Universe is the full loaded package set plus the interprocedural
// machinery built over it: the call graph and file-to-package index
// that module-wide rules report through.
type Universe struct {
	// Pkgs is sorted by import path.
	Pkgs  []*Package
	Graph *dataflow.Graph

	byFile map[string]*Package
	byPath map[string]*Package
}

// newUniverse builds the graph over the sorted package set.
func newUniverse(pkgs []*Package) *Universe {
	u := &Universe{
		Pkgs:   pkgs,
		byFile: make(map[string]*Package),
		byPath: make(map[string]*Package),
	}
	var srcs []*dataflow.Source
	var fset *token.FileSet
	for _, p := range pkgs {
		fset = p.Fset
		srcs = append(srcs, &dataflow.Source{
			Path:  p.Path,
			Files: p.Files,
			Info:  p.Info,
			Pkg:   p.Types,
		})
		u.byPath[p.Path] = p
		for _, f := range p.Files {
			u.byFile[p.Fset.Position(f.Pos()).Filename] = p
		}
	}
	if fset == nil {
		fset = token.NewFileSet()
	}
	u.Graph = dataflow.Build(fset, srcs)
	return u
}

// PkgAt resolves the package owning a source position, so graph-level
// rules can report findings with per-line suppression intact. Returns
// nil for positions outside the loaded set.
func (u *Universe) PkgAt(pos token.Pos) *Package {
	if len(u.Pkgs) == 0 {
		return nil
	}
	return u.byFile[u.Pkgs[0].Fset.Position(pos).Filename]
}

// Report files a finding at pos through the owning package's
// suppression table. Findings at unresolvable positions are dropped —
// every rule reports at AST nodes of loaded files, so this only guards
// against bugs.
func (u *Universe) Report(r *Reporter, pos token.Pos, rule, format string, args ...any) {
	if p := u.PkgAt(pos); p != nil {
		r.Report(p, pos, rule, format, args...)
	}
}

// NewAnalyzers returns a fresh instance of every ucplint rule.
func NewAnalyzers() []*Analyzer {
	as := []*Analyzer{
		newWallclockAnalyzer(),
		newMapEmitAnalyzer(),
		newCtrWidthAnalyzer(),
		newStatNameAnalyzer(),
		newConfigBoundsAnalyzer(),
		newPprofImportAnalyzer(),
		newTraceOpenAnalyzer(),
		newSeedflowAnalyzer(),
		newMergeOrderAnalyzer(),
		newSharedStateAnalyzer(),
		newHotAllocAnalyzer(),
	}
	names := make([]string, 0, len(as)+1)
	for _, a := range as {
		names = append(names, a.Name)
	}
	names = append(names, "ignorename")
	return append(as, newIgnoreNameAnalyzer(names))
}

// Run applies the analyzers to every package and returns the sorted
// findings. Packages are sorted by import path first so analyzers with
// cross-package state behave deterministically; module-wide analyzers
// then run over the call graph built from the same sorted set.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	sorted := make([]*Package, len(pkgs))
	copy(sorted, pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	r := &Reporter{}
	for _, p := range sorted {
		for _, a := range analyzers {
			if a.CheckPackage != nil {
				a.CheckPackage(p, r)
			}
		}
	}
	u := newUniverse(sorted)
	for _, a := range analyzers {
		if a.CheckModule != nil {
			a.CheckModule(u, r)
		}
	}
	return r.Findings()
}

// pkgPathOf returns the import path of the package an object belongs
// to, or "" for builtins and universe-scope objects.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// walkWithStack traverses the AST keeping a stack of ancestor nodes;
// fn receives the node and its ancestors (outermost first). Returning
// false prunes the subtree.
func walkWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(n, stack)
		stack = append(stack, n)
		if !keep {
			// Still push/pop symmetrically: Inspect will not descend,
			// so pop now and skip.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}
