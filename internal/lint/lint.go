// Package lint implements ucplint, the repository's custom static
// analysis pass. The simulator's results are only meaningful if every
// run is bit-for-bit reproducible and every modeled structure respects
// its declared hardware budget, so this package mechanically enforces
// the invariants reviewers would otherwise have to police by hand:
// no wall-clock or global-randomness sources, no map-iteration-ordered
// output, saturating counters staying inside their declared bit widths,
// globally unique statistics names, config structs whose Validate
// methods cover every numeric field, and no direct trace decoding
// outside the arena/codec entry points (sweep paths share one decoded
// arena per batch).
//
// The implementation is deliberately stdlib-only (go/ast, go/parser,
// go/token, go/types): the repository must keep building with nothing
// but the Go toolchain.
//
// Individual findings can be suppressed with a comment on the flagged
// line or the line directly above it:
//
//	//ucplint:ignore <rule> [<rule>...]   suppress the named rules
//	//ucplint:ignore                      suppress every rule
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Package is one type-checked package under analysis.
type Package struct {
	// Path is the import path ("ucp/internal/core", or a synthetic
	// "fixture/..." path for testdata packages).
	Path string
	// Dir is the directory the files were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// ignores maps filename -> line -> rules suppressed on that line
	// ("*" suppresses everything).
	ignores map[string]map[int][]string
}

// buildIgnores scans the package's comments for //ucplint:ignore
// directives. A directive suppresses findings reported on its own line
// and on the line immediately below it (so it can trail a statement or
// sit above one).
func (p *Package) buildIgnores() {
	p.ignores = make(map[string]map[int][]string)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "ucplint:ignore") {
					continue
				}
				rules := strings.Fields(strings.TrimPrefix(text, "ucplint:ignore"))
				if len(rules) == 0 {
					rules = []string{"*"}
				}
				pos := p.Fset.Position(c.Pos())
				m := p.ignores[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					p.ignores[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], rules...)
			}
		}
	}
}

// suppressed reports whether a finding for rule at pos is covered by an
// ignore directive.
func (p *Package) suppressed(pos token.Position, rule string) bool {
	m := p.ignores[pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, r := range m[line] {
			if r == "*" || r == rule {
				return true
			}
		}
	}
	return false
}

// Finding is one rule violation.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Rule, f.Msg)
}

// Reporter collects findings, applying per-line suppression.
type Reporter struct {
	findings []Finding
}

// Report records a finding unless an ignore directive covers it.
func (r *Reporter) Report(p *Package, pos token.Pos, rule, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(position, rule) {
		return
	}
	r.findings = append(r.findings, Finding{
		Pos:  position,
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Findings returns the collected findings sorted by position.
func (r *Reporter) Findings() []Finding {
	sort.Slice(r.findings, func(i, j int) bool {
		a, b := r.findings[i].Pos, r.findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return r.findings[i].Rule < r.findings[j].Rule
	})
	return r.findings
}

// Analyzer is one ucplint rule. Some analyzers carry cross-package
// state (e.g. repo-wide stat-name uniqueness), so a fresh set from
// NewAnalyzers must be used for each run.
type Analyzer struct {
	Name string
	Doc  string
	// CheckPackage inspects one package. Packages are presented in
	// sorted import-path order, so cross-package state is deterministic.
	CheckPackage func(p *Package, r *Reporter)
}

// NewAnalyzers returns a fresh instance of every ucplint rule.
func NewAnalyzers() []*Analyzer {
	return []*Analyzer{
		newWallclockAnalyzer(),
		newMapEmitAnalyzer(),
		newCtrWidthAnalyzer(),
		newStatNameAnalyzer(),
		newConfigBoundsAnalyzer(),
		newPprofImportAnalyzer(),
		newTraceOpenAnalyzer(),
	}
}

// Run applies the analyzers to every package and returns the sorted
// findings. Packages are sorted by import path first so analyzers with
// cross-package state behave deterministically.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	sorted := make([]*Package, len(pkgs))
	copy(sorted, pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	r := &Reporter{}
	for _, p := range sorted {
		for _, a := range analyzers {
			a.CheckPackage(p, r)
		}
	}
	return r.Findings()
}

// pkgPathOf returns the import path of the package an object belongs
// to, or "" for builtins and universe-scope objects.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// walkWithStack traverses the AST keeping a stack of ancestor nodes;
// fn receives the node and its ancestors (outermost first). Returning
// false prunes the subtree.
func walkWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(n, stack)
		stack = append(stack, n)
		if !keep {
			// Still push/pop symmetrically: Inspect will not descend,
			// so pop now and skip.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}
