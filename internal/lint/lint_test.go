package lint

import (
	"bufio"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe extracts the expectation regex from a `// want "…"` trailing
// comment in a fixture file.
var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// expectation is a single `// want` comment: the finding the fixture
// promises the analyzers will produce on that line.
type expectation struct {
	file string // base name of the fixture file
	line int
	re   *regexp.Regexp
	hit  bool
}

// loadExpectations scans every .go file in dir for want comments.
func loadExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("open fixture: %v", err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regex %q: %v", e.Name(), line, m[1], err)
			}
			wants = append(wants, &expectation{file: e.Name(), line: line, re: re})
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("scan fixture: %v", err)
		}
		f.Close()
	}
	return wants
}

// TestFixtures runs all analyzers over each golden fixture directory
// and checks the findings against the `// want` comments: every want
// must be matched by exactly one finding on its line, and no finding
// may lack a want.
func TestFixtures(t *testing.T) {
	root := filepath.Join("testdata")
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("read testdata: %v", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		t.Run(e.Name(), func(t *testing.T) {
			loader, err := NewLoader(dir)
			if err != nil {
				t.Fatalf("NewLoader: %v", err)
			}
			pkg, err := loader.LoadFixture(dir)
			if err != nil {
				t.Fatalf("LoadFixture: %v", err)
			}
			findings := Run([]*Package{pkg}, NewAnalyzers())
			wants := loadExpectations(t, dir)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want comments", dir)
			}
			for _, f := range findings {
				base := filepath.Base(f.Pos.Filename)
				matched := false
				for _, w := range wants {
					if w.hit || w.file != base || w.line != f.Pos.Line {
						continue
					}
					if w.re.MatchString(f.Msg) {
						w.hit = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected finding %s", f)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestFixturesCoverEveryRule guards against a fixture directory being
// deleted or renamed: each analyzer must have at least one golden
// directory named after its rule.
func TestFixturesCoverEveryRule(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatalf("read testdata: %v", err)
	}
	have := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() {
			have[e.Name()] = true
		}
	}
	var missing []string
	for _, a := range NewAnalyzers() {
		if !have[a.Name] {
			missing = append(missing, a.Name)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		t.Fatalf("analyzers without a golden fixture dir: %v", missing)
	}
}

// TestCommutativeAnnotationsAreShuffleTested pins the set of
// //ucplint:commutative annotations in the module to the set of merges
// the dynamic shuffle-merge harness (stats.CheckCommutative) actually
// verifies. Annotating a new merge method makes this test fail until
// the method is added here — alongside a shuffle-merge test backing the
// claim.
func TestCommutativeAnnotationsAreShuffleTested(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	verified := map[string]bool{
		// stats.TestHistogramMergeCommutes
		"ucp/internal/stats.Histogram.Merge": true,
		// stats.TestRunningMergeCommutes
		"ucp/internal/stats.Running.Merge": true,
		// tpar.TestAccumMergeCommutes
		"ucp/internal/tpar.Accum.Merge": true,
		// wpar.TestAccumMergeCommutes
		"ucp/internal/wpar.Accum.Merge": true,
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(wd)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	annotated := map[string]bool{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !funcMarked(fd, "commutative") {
					continue
				}
				name := fd.Name.Name
				if fd.Recv != nil && len(fd.Recv.List) == 1 {
					rt := fd.Recv.List[0].Type
					if star, ok := rt.(*ast.StarExpr); ok {
						rt = star.X
					}
					if id, ok := rt.(*ast.Ident); ok {
						name = id.Name + "." + name
					}
				}
				annotated[p.Path+"."+name] = true
			}
		}
	}
	for name := range annotated {
		if !verified[name] {
			t.Errorf("%s is annotated //ucplint:commutative but has no shuffle-merge test registered here", name)
		}
	}
	for name := range verified {
		if !annotated[name] {
			t.Errorf("%s is listed as shuffle-verified but carries no //ucplint:commutative annotation", name)
		}
	}
}

// TestRepoIsClean is the self-check: running every analyzer over the
// real module must produce zero findings, i.e. `ucplint ./...` stays
// green for the tree this test ships with.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(wd)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	findings := Run(pkgs, NewAnalyzers())
	for _, f := range findings {
		t.Errorf("repo not lint-clean: %s", f)
	}
}
