package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of the enclosing module using
// only the standard library. Module-internal imports are resolved by
// walking the module tree; everything else (the standard library) is
// type-checked from source via go/importer.
type Loader struct {
	fset     *token.FileSet
	std      types.Importer
	mod      string // module path from go.mod
	root     string // absolute module root directory
	pkgs     map[string]*Package
	checking map[string]bool
	typeErrs []error
}

// FindModuleRoot walks upward from dir until it finds a go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	mod := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			mod = strings.TrimSpace(rest)
			break
		}
	}
	if mod == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:     fset,
		std:      importer.ForCompiler(fset, "source", nil),
		mod:      mod,
		root:     root,
		pkgs:     make(map[string]*Package),
		checking: make(map[string]bool),
	}, nil
}

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.mod }

// Root returns the absolute module root directory.
func (l *Loader) Root() string { return l.root }

// loaderImporter resolves imports during type checking: module-internal
// paths recurse into the loader; everything else goes to the source
// importer.
type loaderImporter struct{ l *Loader }

func (i loaderImporter) Import(path string) (*types.Package, error) {
	l := i.l
	if path == l.mod || strings.HasPrefix(path, l.mod+"/") {
		p, err := l.loadImportPath(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) dirForImportPath(path string) string {
	if path == l.mod {
		return l.root
	}
	rel := strings.TrimPrefix(path, l.mod+"/")
	return filepath.Join(l.root, filepath.FromSlash(rel))
}

func (l *Loader) loadImportPath(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)
	p, err := l.loadDir(l.dirForImportPath(path), path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// loadDir parses and type-checks the non-test Go files of one directory
// as the package importPath.
func (l *Loader) loadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var firstErr error
	conf := types.Config{
		Importer: loaderImporter{l},
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
			l.typeErrs = append(l.typeErrs, err)
		},
	}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, firstErr)
	}
	p := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	p.buildIgnores()
	return p, nil
}

// LoadModule loads every package of the module (skipping testdata,
// hidden and underscore-prefixed directories) in sorted import-path
// order.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root &&
			(name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") &&
				!strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, ".") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return nil, err
		}
		importPath := l.mod
		if rel != "." {
			importPath = l.mod + "/" + filepath.ToSlash(rel)
		}
		p, err := l.loadImportPath(importPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadFixture loads a standalone directory (typically under testdata)
// as a synthetic package. Imports of the enclosing module resolve
// normally, so fixtures may import e.g. ucp/internal/stats. By default
// the package path is "fixture/<dirname>"; a fixture exercising a rule
// that keys on import paths (seedflow's internal/rng purity, the
// mergeorder aggregation roots) can declare its own with a
//
//	//ucplint:importpath ucp/internal/rng
//
// directive in any of its files.
func (l *Loader) LoadFixture(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := "fixture/" + filepath.Base(abs)
	if declared, ok := l.fixtureImportPath(abs); ok {
		path = declared
	}
	return l.loadDir(abs, path)
}

// fixtureImportPath pre-scans a fixture directory for a
// //ucplint:importpath directive. The sniff parse uses a throwaway
// FileSet so the real load still owns the positions.
func (l *Loader) fixtureImportPath(dir string) (string, bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", false
	}
	sniff := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(sniff, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			continue
		}
		if d, ok := fileDirective(f, "importpath"); ok && len(d.Args) == 1 {
			return d.Args[0], true
		}
	}
	return "", false
}
