package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ucp/internal/lint/dataflow"
)

// newMapEmitAnalyzer flags `for … range` loops over maps whose bodies
// let Go's randomized iteration order reach anything that outlives the
// loop. The local layer (inherited from ucplint v1) catches direct
// emission in the loop body: fmt printing, strings.Builder writes, and
// appends into a slice that escapes the loop without a subsequent sort.
// The interprocedural layer closes the laundering hole: a loop body
// that calls a helper — in this or any other package — whose emit
// summary says output lands somewhere that outlives the iteration
// (stdout, package state, a receiver, or a caller-supplied buffer
// declared outside the loop) is just as order-tainted as one that
// prints directly. Helpers that only fill function-local buffers stay
// clean, as does accumulation into loop-local state.
func newMapEmitAnalyzer() *Analyzer {
	const rule = "mapemit"
	return &Analyzer{
		Name: rule,
		Doc:  "map iteration must not order emitted output or accumulated results, through any call chain",
		CheckModule: func(u *Universe, r *Reporter) {
			g := u.Graph
			emits := g.EmitSummaries()
			for _, n := range g.Nodes() {
				p := u.PkgAt(n.Decl.Pos())
				if p == nil {
					continue
				}
				decl := n.Decl
				walkWithStack(decl.Body, func(x ast.Node, stack []ast.Node) bool {
					rs, ok := x.(*ast.RangeStmt)
					if !ok {
						return true
					}
					tv, ok := p.Info.Types[rs.X]
					if !ok {
						return true
					}
					if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
						return true
					}
					fn := enclosingFunc(stack)
					if fn == nil {
						fn = decl
					}
					if reason := mapEmitReason(p, rs, fn); reason != "" {
						r.Report(p, rs.Pos(), rule,
							"map iteration order is nondeterministic but the body %s; sort the keys first", reason)
					}
					reportEmittingCallees(u, r, g, n, p, rs, emits)
					return true
				})
			}
		},
	}
}

// reportEmittingCallees flags calls, inside a map-range body, to module
// functions whose transitive emit summary escapes the loop.
func reportEmittingCallees(u *Universe, r *Reporter, g *dataflow.Graph, n *dataflow.Node, p *Package, rs *ast.RangeStmt, emits map[*types.Func]dataflow.EmitMask) {
	const rule = "mapemit"
	loopLocal := func(e ast.Expr) bool {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.UnaryExpr:
				if x.Op != token.AND {
					return false
				}
				e = x.X
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.Ident:
				obj := p.Info.Uses[x]
				if obj == nil {
					obj = p.Info.Defs[x]
				}
				return obj != nil && obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()
			default:
				return false
			}
		}
	}
	ast.Inspect(rs.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(p.Info, call)
		if callee == nil || g.NodeOf(callee) == nil {
			return true // direct stdlib emission is the local layer's job
		}
		m := emits[callee]
		if m == 0 {
			return true
		}
		switch {
		case m&dataflow.EmitStdout != 0:
			u.Report(r, call.Pos(), rule,
				"map iteration order is nondeterministic but the body calls %s, which emits to stdout through its call chain; sort the keys first",
				callee.Name())
		case m&dataflow.EmitGlobal != 0:
			u.Report(r, call.Pos(), rule,
				"map iteration order is nondeterministic but the body calls %s, which writes package state through its call chain; sort the keys first",
				callee.Name())
		case m&dataflow.EmitReceiver != 0:
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if ok && !loopLocal(sel.X) {
				u.Report(r, call.Pos(), rule,
					"map iteration order is nondeterministic but the body calls %s, which writes into its receiver, and the receiver outlives the loop; sort the keys first",
					callee.Name())
			}
		default:
			for i, arg := range call.Args {
				if m.Param(i) && !loopLocal(arg) {
					u.Report(r, call.Pos(), rule,
						"map iteration order is nondeterministic but the body calls %s, which writes into argument %d, and that value outlives the loop; sort the keys first",
						callee.Name(), i)
					break
				}
			}
		}
		return true
	})
}

// enclosingFunc returns the innermost function literal or declaration
// in the ancestor stack (nil at package scope).
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// mapEmitReason inspects a map-range body and describes the first
// order-sensitive emission it performs ("" when the body is clean).
func mapEmitReason(p *Package, rs *ast.RangeStmt, fn ast.Node) string {
	reason := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := fmtPrintCall(p, n); ok {
				reason = "calls fmt." + name
				return false
			}
			if name, ok := builderWriteCall(p, n); ok {
				reason = "writes via strings.Builder." + name
				return false
			}
			if obj, ok := escapingAppend(p, n, rs); ok {
				if fn != nil && sortedInFunc(p, fn, obj) {
					return true // accumulated slice is sorted afterwards
				}
				reason = "appends to " + obj.Name() + ", which escapes the loop unsorted"
				return false
			}
		}
		return true
	})
	return reason
}

// fmtPrintCall reports whether call is a printing function of package
// fmt (Print, Fprintf, Sprintln, Appendf, …).
func fmtPrintCall(p *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := p.Info.Uses[sel.Sel]
	if pkgPathOf(obj) != "fmt" {
		return "", false
	}
	name := sel.Sel.Name
	lower := strings.ToLower(name)
	if strings.Contains(lower, "print") || strings.HasPrefix(lower, "append") {
		return name, true
	}
	return "", false
}

// builderWriteCall reports whether call is a Write* method on a
// strings.Builder (or *strings.Builder) receiver.
func builderWriteCall(p *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "Write") {
		return "", false
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok {
		return "", false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Builder" || pkgPathOf(named.Obj()) != "strings" {
		return "", false
	}
	return sel.Sel.Name, true
}

// escapingAppend reports whether call is append(target, …) where target
// is declared outside the range statement, i.e. the accumulated slice
// escapes the loop carrying map-iteration order.
func escapingAppend(p *Package, call *ast.CallExpr, rs *ast.RangeStmt) (types.Object, bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return nil, false
	}
	if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil, false
	}
	obj := refObject(p, call.Args[0])
	if obj == nil {
		return nil, false
	}
	if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
		return nil, false // loop-local accumulator
	}
	return obj, true
}

// refObject resolves an identifier or field selector to its object.
func refObject(p *Package, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return p.Info.Uses[e]
	case *ast.SelectorExpr:
		return p.Info.Uses[e.Sel]
	}
	return nil
}

// sortedInFunc reports whether fn contains a call into package sort (or
// a slices.Sort* call) taking obj as an argument — the canonical
// "collect then sort" determinism fix.
func sortedInFunc(p *Package, fn ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		callee := p.Info.Uses[sel.Sel]
		path := pkgPathOf(callee)
		isSort := path == "sort" ||
			(path == "slices" && strings.HasPrefix(sel.Sel.Name, "Sort"))
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			if refObject(p, arg) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
