package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// newMapEmitAnalyzer flags `for … range` loops over maps whose bodies
// emit output (fmt printing, strings.Builder writes) or accumulate into
// a slice that outlives the loop without a subsequent sort. Go's map
// iteration order is deliberately randomized, so any report or stat
// emission driven directly by it differs between runs.
func newMapEmitAnalyzer() *Analyzer {
	const rule = "mapemit"
	return &Analyzer{
		Name: rule,
		Doc:  "flag map iteration that emits output or accumulates unsorted results",
		CheckPackage: func(p *Package, r *Reporter) {
			for _, f := range p.Files {
				walkWithStack(f, func(n ast.Node, stack []ast.Node) bool {
					rs, ok := n.(*ast.RangeStmt)
					if !ok {
						return true
					}
					tv, ok := p.Info.Types[rs.X]
					if !ok {
						return true
					}
					if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
						return true
					}
					fn := enclosingFunc(stack)
					if reason := mapEmitReason(p, rs, fn); reason != "" {
						r.Report(p, rs.Pos(), rule,
							"map iteration order is nondeterministic but the body %s; sort the keys first", reason)
					}
					return true
				})
			}
		},
	}
}

// enclosingFunc returns the innermost function literal or declaration
// in the ancestor stack (nil at package scope).
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// mapEmitReason inspects a map-range body and describes the first
// order-sensitive emission it performs ("" when the body is clean).
func mapEmitReason(p *Package, rs *ast.RangeStmt, fn ast.Node) string {
	reason := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := fmtPrintCall(p, n); ok {
				reason = "calls fmt." + name
				return false
			}
			if name, ok := builderWriteCall(p, n); ok {
				reason = "writes via strings.Builder." + name
				return false
			}
			if obj, ok := escapingAppend(p, n, rs); ok {
				if fn != nil && sortedInFunc(p, fn, obj) {
					return true // accumulated slice is sorted afterwards
				}
				reason = "appends to " + obj.Name() + ", which escapes the loop unsorted"
				return false
			}
		}
		return true
	})
	return reason
}

// fmtPrintCall reports whether call is a printing function of package
// fmt (Print, Fprintf, Sprintln, Appendf, …).
func fmtPrintCall(p *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := p.Info.Uses[sel.Sel]
	if pkgPathOf(obj) != "fmt" {
		return "", false
	}
	name := sel.Sel.Name
	lower := strings.ToLower(name)
	if strings.Contains(lower, "print") || strings.HasPrefix(lower, "append") {
		return name, true
	}
	return "", false
}

// builderWriteCall reports whether call is a Write* method on a
// strings.Builder (or *strings.Builder) receiver.
func builderWriteCall(p *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "Write") {
		return "", false
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok {
		return "", false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Builder" || pkgPathOf(named.Obj()) != "strings" {
		return "", false
	}
	return sel.Sel.Name, true
}

// escapingAppend reports whether call is append(target, …) where target
// is declared outside the range statement, i.e. the accumulated slice
// escapes the loop carrying map-iteration order.
func escapingAppend(p *Package, call *ast.CallExpr, rs *ast.RangeStmt) (types.Object, bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return nil, false
	}
	if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil, false
	}
	obj := refObject(p, call.Args[0])
	if obj == nil {
		return nil, false
	}
	if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
		return nil, false // loop-local accumulator
	}
	return obj, true
}

// refObject resolves an identifier or field selector to its object.
func refObject(p *Package, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return p.Info.Uses[e]
	case *ast.SelectorExpr:
		return p.Info.Uses[e.Sel]
	}
	return nil
}

// sortedInFunc reports whether fn contains a call into package sort (or
// a slices.Sort* call) taking obj as an argument — the canonical
// "collect then sort" determinism fix.
func sortedInFunc(p *Package, fn ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		callee := p.Info.Uses[sel.Sel]
		path := pkgPathOf(callee)
		isSort := path == "sort" ||
			(path == "slices" && strings.HasPrefix(sel.Sel.Name, "Sort"))
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			if refObject(p, arg) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
