package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// This file is the single parser for ucplint's marker comments. Every
// rule that reads a directive — ignores, config/commutative/hotpath/
// guarded annotations, fixture import paths, nbits: field markers —
// goes through these helpers, so the accepted syntax cannot drift
// between rules.
//
// Directive syntax:
//
//	//ucplint:<name> [arg ...]
//
// recognized anywhere a comment is (doc comments, trailing comments,
// free-standing lines). Field markers use the older key:value form
// inside an ordinary comment (e.g. "// confidence counter. nbits:2").

// Directive is one parsed //ucplint:<name> marker.
type Directive struct {
	Name string
	Args []string
	Pos  token.Pos
}

// parseDirective parses a single comment as a ucplint directive. An
// embedded "//" ends the directive, so markers can carry a trailing
// explanation: "//ucplint:ignore hotalloc // cold branch, grows once".
func parseDirective(c *ast.Comment) (Directive, bool) {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	rest, ok := strings.CutPrefix(text, "ucplint:")
	if !ok {
		return Directive{}, false
	}
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return Directive{}, false
	}
	return Directive{Name: fields[0], Args: fields[1:], Pos: c.Pos()}, true
}

// directives yields every directive in a comment group.
func directives(cg *ast.CommentGroup) []Directive {
	if cg == nil {
		return nil
	}
	var out []Directive
	for _, c := range cg.List {
		if d, ok := parseDirective(c); ok {
			out = append(out, d)
		}
	}
	return out
}

// hasDirective reports whether any of the comment groups carries the
// named directive.
func hasDirective(name string, cgs ...*ast.CommentGroup) bool {
	for _, cg := range cgs {
		for _, d := range directives(cg) {
			if d.Name == name {
				return true
			}
		}
	}
	return false
}

// fileDirective returns the first occurrence of the named directive in
// any comment of the file (not just doc comments).
func fileDirective(f *ast.File, name string) (Directive, bool) {
	for _, cg := range f.Comments {
		for _, d := range directives(cg) {
			if d.Name == name {
				return d, true
			}
		}
	}
	return Directive{}, false
}

// funcMarked reports whether a function declaration's doc comment
// carries the named directive (e.g. "hotpath", "guarded").
func funcMarked(fd *ast.FuncDecl, name string) bool {
	return fd != nil && hasDirective(name, fd.Doc)
}

// fieldMarkerRe matches the key:value field markers ("nbits: 2").
var fieldMarkerRe = regexp.MustCompile(`(\w+):\s*(\d+)`)

// fieldMarker extracts an integer key:value marker (such as nbits:N)
// from a struct field's doc or trailing comment.
func fieldMarker(field *ast.Field, key string) (int, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, m := range fieldMarkerRe.FindAllStringSubmatch(cg.Text(), -1) {
			if m[1] != key {
				continue
			}
			n, err := strconv.Atoi(m[2])
			if err == nil && n > 0 {
				return n, true
			}
		}
	}
	return 0, false
}
