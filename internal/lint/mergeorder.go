package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ucp/internal/lint/dataflow"
)

// newMergeOrderAnalyzer guards the precondition of time-parallel
// simulation (ROADMAP item 1): when one run is sharded into segments
// simulated concurrently, per-segment statistics are combined by merge
// methods, and the combined result must be byte-identical at any worker
// count — which requires every merge on that path to be
// order-insensitive. Integer addition and min/max are; floating-point
// accumulation is not (float addition is non-associative, so merging
// A∪B then C can differ in the low bits from A∪(B∪C)).
//
// The rule finds every merge-shaped method — named Merge or Add with
// exactly one parameter of the receiver's own type — that is reachable
// through the call graph from the result-aggregation packages
// (internal/runq, internal/sim, internal/tpar — the time-parallel
// segment merge — and internal/wpar — the window-parallel sampled
// merge), and flags order-sensitive float accumulation in its body. The
// escape hatch is the annotation
//
//	//ucplint:commutative
//
// on the method's doc comment, which asserts the accumulation is exact
// in practice (e.g. float64 sums of integer-valued samples below 2^53
// never round, so any merge order produces identical bits). Every
// annotation must be backed by a dynamic shuffle-merge test built on
// stats.CheckCommutative; the lint test suite cross-checks that the
// annotated set and the dynamically verified set stay in sync.
func newMergeOrderAnalyzer() *Analyzer {
	const rule = "mergeorder"
	return &Analyzer{
		Name: rule,
		Doc:  "merge methods reachable from runq/sim aggregation must be order-insensitive or //ucplint:commutative",
		CheckModule: func(u *Universe, r *Reporter) {
			g := u.Graph
			reach := g.ReachableFrom(func(fn *types.Func) (string, bool) {
				n := g.NodeOf(fn)
				if n == nil {
					return "", false
				}
				if strings.HasSuffix(n.PkgPath, "internal/runq") {
					return "runq aggregation", true
				}
				if strings.HasSuffix(n.PkgPath, "internal/sim") {
					return "sim aggregation", true
				}
				if strings.HasSuffix(n.PkgPath, "internal/tpar") {
					return "tpar aggregation", true
				}
				if strings.HasSuffix(n.PkgPath, "internal/wpar") {
					return "wpar aggregation", true
				}
				return "", false
			})
			for _, n := range g.Nodes() {
				if !isMergeMethod(n) {
					continue
				}
				t, reachable := reach[n.Fn]
				if !reachable {
					continue
				}
				if funcMarked(n.Decl, "commutative") {
					continue
				}
				for _, acc := range floatAccumulations(n) {
					u.Report(r, acc, rule,
						"order-sensitive float accumulation in merge method %s, reachable from %s; make it exact or annotate //ucplint:commutative and add a shuffle-merge test",
						n.Fn.Name(), dataflow.RootChain(t))
				}
			}
		},
	}
}

// isMergeMethod reports whether n is merge-shaped: a method named Merge
// or Add taking exactly one parameter of the receiver's own type (the
// combine-two-aggregates signature cross-worker merges use).
func isMergeMethod(n *dataflow.Node) bool {
	if n.Decl.Recv == nil {
		return false
	}
	name := n.Fn.Name()
	if name != "Merge" && name != "Add" {
		return false
	}
	sig, _ := n.Fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil || sig.Params().Len() != 1 {
		return false
	}
	return types.Identical(deref(sig.Recv().Type()), deref(sig.Params().At(0).Type()))
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// floatAccumulations returns the positions of order-sensitive
// floating-point accumulation statements in n's body: compound
// assignment (x += y, x -= y, x *= y, x /= y) on a float lvalue, and
// plain assignment x = x ⊕ … whose right side reuses the left object.
func floatAccumulations(n *dataflow.Node) []token.Pos {
	info := n.Src.Info
	var out []token.Pos
	isFloat := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}
	obj := func(e ast.Expr) types.Object {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[e]
		case *ast.SelectorExpr:
			return info.Uses[e.Sel]
		}
		return nil
	}
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		as, ok := x.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, lhs := range as.Lhs {
				if isFloat(lhs) {
					out = append(out, as.Pos())
					break
				}
			}
		case token.ASSIGN:
			if len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				if !isFloat(lhs) {
					continue
				}
				lo := obj(lhs)
				if lo == nil {
					continue
				}
				bin, ok := as.Rhs[i].(*ast.BinaryExpr)
				if !ok {
					continue
				}
				switch bin.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
					if obj(bin.X) == lo || obj(bin.Y) == lo {
						out = append(out, as.Pos())
					}
				}
			}
		}
		return true
	})
	return out
}
