package lint

import "strconv"

// newPprofImportAnalyzer confines profiling to the binaries. Importing
// runtime/pprof (or net/http/pprof, which starts a sampling server as
// an import side effect) from library code would let profiling hooks
// leak into the simulated model, where their timers and goroutines
// perturb exactly the hot paths being measured. The cmd/ entry points
// own all profiling flags; everything else must stay instrumentation
// free.
func newPprofImportAnalyzer() *Analyzer {
	const rule = "pprofimport"
	forbidden := map[string]bool{
		"runtime/pprof":  true,
		"net/http/pprof": true,
	}
	return &Analyzer{
		Name: rule,
		Doc:  "forbid runtime/pprof and net/http/pprof imports outside cmd/",
		CheckPackage: func(p *Package, r *Reporter) {
			if isCmdPackage(p.Path) {
				return
			}
			for _, f := range p.Files {
				for _, imp := range f.Imports {
					path, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						continue
					}
					if forbidden[path] {
						r.Report(p, imp.Pos(), rule,
							"import of %s is forbidden outside cmd/: profiling hooks belong in the binaries, not the model", path)
					}
				}
			}
		},
	}
}

// isCmdPackage reports whether importPath names a main-package tree
// under the module's cmd/ directory.
func isCmdPackage(importPath string) bool {
	for i := 0; i+4 <= len(importPath); i++ {
		if importPath[i:i+4] == "cmd/" && (i == 0 || importPath[i-1] == '/') {
			return true
		}
	}
	return false
}
