package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"ucp/internal/lint/dataflow"
)

// newSeedflowAnalyzer proves, interprocedurally, that every random
// value in the module derives from a configuration seed through
// internal/rng. The wallclock rule already forbids importing math/rand
// and calling time.Now at the use site; seedflow closes the two holes
// an intraprocedural rule cannot see:
//
//  1. A seed laundered through a call chain: rng.New(helper()) where
//     helper — possibly in another package — bottoms out in the wall
//     clock, crypto/rand, or math/rand's global state. The taint
//     closure over the call graph follows the chain however deep.
//  2. internal/rng itself, which is exempt from wallclock (it is the
//     sanctioned randomness provider): any function in it that can
//     reach a wall-clock or ambient-randomness source would silently
//     unseed every consumer, so seedflow pins the package seed-pure.
//
// The invariant this preserves is the paper's: a trace-driven
// evaluation is only comparable across configurations because every
// stream regenerates bit-identically from its seed.
func newSeedflowAnalyzer() *Analyzer {
	const rule = "seedflow"
	return &Analyzer{
		Name: rule,
		Doc:  "rng seeds must not derive from wall-clock or ambient randomness, through any call chain",
		CheckModule: func(u *Universe, r *Reporter) {
			g := u.Graph
			tainted := g.ReachesSink(unseededBase)
			// Hole 2: internal/rng must stay seed-pure.
			for _, n := range g.Nodes() {
				if !strings.HasSuffix(n.PkgPath, "internal/rng") {
					continue
				}
				if t, ok := tainted[n.Fn]; ok {
					u.Report(r, n.Decl.Pos(), rule,
						"internal/rng must stay seed-pure: %s reaches ambient randomness (%s)",
						n.Fn.Name(), t.Chain(g.Fset))
				}
			}
			// Hole 1: seeds flowing into rng constructors.
			for _, n := range g.Nodes() {
				checkSeedArgs(u, r, g, n, tainted)
			}
		},
	}
}

// unseededBase classifies functions that produce values not derived
// from a config seed.
func unseededBase(fn *types.Func) (string, bool) {
	switch pkgPathOfFunc(fn) {
	case "math/rand", "math/rand/v2":
		return "math/rand's global or unseeded state", true
	case "crypto/rand":
		return "crypto/rand is ambient randomness", true
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "reads the wall clock", true
		}
	}
	return "", false
}

func pkgPathOfFunc(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isRNGConstructor reports whether fn is internal/rng's seed-taking
// entry point.
func isRNGConstructor(fn *types.Func) bool {
	return fn != nil && fn.Name() == "New" &&
		strings.HasSuffix(pkgPathOfFunc(fn), "internal/rng")
}

// checkSeedArgs walks one function body looking for rng.New calls whose
// seed expression contains a tainted call — directly, or via a local
// variable assigned from one earlier in the same function.
func checkSeedArgs(u *Universe, r *Reporter, g *dataflow.Graph, n *dataflow.Node, tainted map[*types.Func]*dataflow.Taint) {
	const rule = "seedflow"
	info := n.Src.Info

	// taintOfExpr finds the first tainted (or base-unseeded) call
	// inside e.
	taintOfExpr := func(e ast.Expr) *dataflow.Taint {
		var found *dataflow.Taint
		ast.Inspect(e, func(x ast.Node) bool {
			if found != nil {
				return false
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(info, call)
			if callee == nil {
				return true
			}
			if t, ok := tainted[callee]; ok {
				found = t
				return false
			}
			if why, ok := unseededBase(callee); ok {
				found = &dataflow.Taint{Fn: callee, Why: why}
				return false
			}
			return true
		})
		return found
	}

	// localDefs maps local objects to the expressions assigned to them,
	// so a seed staged through a local is still traced one level back.
	localDefs := make(map[types.Object][]ast.Expr)
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						obj := info.Defs[id]
						if obj == nil {
							obj = info.Uses[id]
						}
						if obj != nil {
							localDefs[obj] = append(localDefs[obj], x.Rhs[i])
						}
					}
				}
			}
		}
		return true
	})

	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isRNGConstructor(calleeFunc(info, call)) || len(call.Args) == 0 {
			return true
		}
		seed := call.Args[0]
		t := taintOfExpr(seed)
		if t == nil {
			// One level through locals: rng.New(seed) where
			// seed := taintedCall().
			ast.Inspect(seed, func(y ast.Node) bool {
				if t != nil {
					return false
				}
				id, ok := y.(*ast.Ident)
				if !ok {
					return true
				}
				for _, def := range localDefs[info.Uses[id]] {
					if dt := taintOfExpr(def); dt != nil {
						t = dt
						return false
					}
				}
				return true
			})
		}
		if t != nil {
			u.Report(r, seed.Pos(), rule,
				"seed for rng.New derives from ambient randomness: %s; seeds must come from the experiment config",
				t.Chain(g.Fset))
		}
		return true
	})
}

// calleeFunc resolves a call's static callee (shared with dataflow's
// resolution rules).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
