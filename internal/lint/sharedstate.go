package lint

import (
	"go/ast"
	"go/types"
	"sort"

	"ucp/internal/lint/dataflow"
)

// newSharedStateAnalyzer is the guardrail for goroutine fan-out — the
// pattern the time-parallel segment workers (ROADMAP item 1) will lean
// on. It flags mutable state reachable from more than one goroutine
// instance without a synchronization handoff:
//
//   - A variable captured by a goroutine launched in a loop (or by two
//     distinct go statements) and written inside a goroutine body —
//     directly (v = …, v.f = …, v++) — races with its siblings.
//   - A method called on such a captured value races if it (or
//     anything it transitively calls in the module) mutates receiver
//     fields or package-level variables.
//
// Sanctioned patterns stay silent by construction:
//
//   - Channels and sync/atomic values are exempt: they ARE the handoff.
//   - Element writes through an index (results[i] = …) are exempt:
//     index-disjoint sharding is the sanctioned fan-out shape, and the
//     check.sh race-detector gate covers accidental overlap.
//   - Methods annotated //ucplint:guarded are trusted to serialize
//     internally; the annotation is verified — a guarded method whose
//     body never acquires a sync primitive is itself a finding.
func newSharedStateAnalyzer() *Analyzer {
	const rule = "sharedstate"
	return &Analyzer{
		Name: rule,
		Doc:  "no unguarded mutable state shared across goroutine instances; //ucplint:guarded escape is verified",
		CheckModule: func(u *Universe, r *Reporter) {
			g := u.Graph
			state := g.StateSummaries()

			// Verify every guarded annotation actually guards.
			guarded := make(map[*types.Func]bool)
			for _, n := range g.Nodes() {
				if !funcMarked(n.Decl, "guarded") {
					continue
				}
				guarded[n.Fn] = true
				if s := state[n.Fn]; s == nil || !s.Locks {
					u.Report(r, n.Decl.Pos(), rule,
						"%s is annotated //ucplint:guarded but never acquires a sync primitive", n.Fn.Name())
				}
			}

			// unsafe[fn] is the chain by which fn (transitively)
			// mutates receiver fields or globals, with chains that
			// cross a verified guarded function dropped.
			unsafe := reachesUnguarded(g, state, guarded)

			for _, n := range g.Nodes() {
				checkSpawns(u, r, g, n, unsafe)
			}
		},
	}
}

// reachesUnguarded is ReachesSink over "mutates outliving state", with
// guarded functions removed from the graph entirely: a call that goes
// through a verified lock acquisition is a handoff, not a race.
func reachesUnguarded(g *dataflow.Graph, state map[*types.Func]*dataflow.StateSummary, guarded map[*types.Func]bool) map[*types.Func]*dataflow.Taint {
	base := g.ReachesSink(func(fn *types.Func) (string, bool) {
		if guarded[fn] {
			return "", false
		}
		s := state[fn]
		if s == nil {
			return "", false
		}
		if s.MutatesReceiver {
			return "writes receiver fields", true
		}
		if len(s.Globals) > 0 {
			return "writes package-level " + s.Globals[0].Name(), true
		}
		return "", false
	})
	// Remove functions whose taint chain crosses a guarded hop: walk
	// each chain; if any hop is guarded the mutation is serialized.
	out := make(map[*types.Func]*dataflow.Taint, len(base))
	for fn, t := range base {
		crossesGuard := false
		for cur := t; cur != nil; cur = cur.From {
			if guarded[cur.Fn] {
				crossesGuard = true
				break
			}
		}
		if !crossesGuard {
			out[fn] = t
		}
	}
	return out
}

// checkSpawns inspects one function's go statements.
func checkSpawns(u *Universe, r *Reporter, g *dataflow.Graph, n *dataflow.Node, unsafe map[*types.Func]*dataflow.Taint) {
	const rule = "sharedstate"
	info := n.Src.Info

	type spawn struct {
		stmt *ast.GoStmt
		loop bool
	}
	var spawns []spawn
	walkWithStack(n.Decl.Body, func(x ast.Node, stack []ast.Node) bool {
		gs, ok := x.(*ast.GoStmt)
		if !ok {
			return true
		}
		loop := false
		for _, anc := range stack {
			switch anc.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loop = true
			}
		}
		spawns = append(spawns, spawn{stmt: gs, loop: loop})
		return true
	})
	if len(spawns) == 0 {
		return
	}

	// capturesOf collects the enclosing function's variables a
	// goroutine literal captures (objects declared outside the literal).
	capturesOf := func(lit *ast.FuncLit) map[*types.Var][]ast.Expr {
		caps := make(map[*types.Var][]ast.Expr)
		ast.Inspect(lit.Body, func(x ast.Node) bool {
			id, ok := x.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := info.Uses[id].(*types.Var)
			if !ok || v.IsField() {
				return true
			}
			// Declared inside the literal (including params): not a capture.
			if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
				return true
			}
			// Package-level variables are handled via summaries.
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return true
			}
			caps[v] = append(caps[v], id)
			return true
		})
		return caps
	}

	// Count how many spawn sites capture each variable; a loop spawn
	// counts as many.
	capCount := make(map[*types.Var]int)
	litOf := make(map[*ast.GoStmt]*ast.FuncLit)
	for _, sp := range spawns {
		lit, ok := ast.Unparen(sp.stmt.Call.Fun).(*ast.FuncLit)
		if !ok {
			continue
		}
		litOf[sp.stmt] = lit
		for v := range capturesOf(lit) {
			capCount[v]++
			if sp.loop {
				capCount[v]++ // loop spawn alone makes it multi-instance
			}
		}
	}

	for _, sp := range spawns {
		lit := litOf[sp.stmt]
		if lit == nil {
			// go f(args): a named spawn shares only globals.
			callee := calleeFunc(info, sp.stmt.Call)
			if callee == nil || !sp.loop {
				continue
			}
			if t, bad := unsafe[callee]; bad {
				u.Report(r, sp.stmt.Pos(), rule,
					"loop-spawned goroutine mutates shared state without synchronization: %s", t.Chain(g.Fset))
			}
			continue
		}
		caps := capturesOf(lit)
		for _, v := range sortedVars(caps) {
			if capCount[v] < 2 {
				continue // single goroutine instance: host handoff via wg etc.
			}
			if dataflow.IsSyncType(v.Type()) {
				continue
			}
			reportCaptureWrites(u, r, g, n, lit, v, caps[v], unsafe)
		}
	}
}

// sortedVars returns the captured variables in source-position order so
// findings are deterministic.
func sortedVars(caps map[*types.Var][]ast.Expr) []*types.Var {
	out := make([]*types.Var, 0, len(caps))
	for v := range caps {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// reportCaptureWrites flags writes to (and unguarded mutating calls on)
// one shared captured variable inside a goroutine body.
func reportCaptureWrites(u *Universe, r *Reporter, g *dataflow.Graph, n *dataflow.Node, lit *ast.FuncLit, v *types.Var, _ []ast.Expr, unsafe map[*types.Func]*dataflow.Taint) {
	const rule = "sharedstate"
	info := n.Src.Info
	rootVar := func(e ast.Expr) *types.Var {
		for {
			switch x := e.(type) {
			case *ast.Ident:
				rv, _ := info.Uses[x].(*types.Var)
				return rv
			case *ast.SelectorExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			default:
				return nil // index writes (v[i] = …) are sanctioned sharding
			}
		}
	}
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if rootVar(lhs) == v {
					u.Report(r, x.Pos(), rule,
						"write to %s, which is shared across goroutine instances without synchronization", v.Name())
				}
			}
		case *ast.IncDecStmt:
			if rootVar(x.X) == v {
				u.Report(r, x.Pos(), rule,
					"write to %s, which is shared across goroutine instances without synchronization", v.Name())
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok || rootVar(sel.X) != v {
				return true
			}
			callee := calleeFunc(info, x)
			if callee == nil {
				return true
			}
			if t, bad := unsafe[callee]; bad {
				u.Report(r, x.Pos(), rule,
					"call on shared %s mutates state without synchronization: %s; serialize it or annotate the method //ucplint:guarded",
					v.Name(), t.Chain(g.Fset))
			}
		}
		return true
	})
}
