package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// newStatNameAnalyzer enforces stat-registration hygiene: every
// stats.NewHistogram / stats.NewCounter call must pass a compile-time
// constant string name, and that name must be unique across the whole
// repository. Duplicate or dynamic names make aggregated reports
// ambiguous and un-diffable between runs. The uniqueness map spans
// packages, so the analyzer instance must be fresh per Run.
func newStatNameAnalyzer() *Analyzer {
	const rule = "statname"
	constructors := map[string]bool{
		"NewHistogram": true,
		"NewCounter":   true,
	}
	seen := make(map[string]string) // name -> first position
	return &Analyzer{
		Name: rule,
		Doc:  "stats constructors take unique constant string names",
		CheckPackage: func(p *Package, r *Reporter) {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok || !constructors[sel.Sel.Name] {
						return true
					}
					fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
					if !ok || !strings.HasSuffix(pkgPathOf(fn), "internal/stats") {
						return true
					}
					if len(call.Args) == 0 {
						return true
					}
					tv, ok := p.Info.Types[call.Args[0]]
					if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
						r.Report(p, call.Args[0].Pos(), rule,
							"stats.%s name must be a constant string literal so uniqueness is checkable", sel.Sel.Name)
						return true
					}
					name := constant.StringVal(tv.Value)
					if first, dup := seen[name]; dup {
						r.Report(p, call.Args[0].Pos(), rule,
							"duplicate stat name %q (first registered at %s)", name, first)
						return true
					}
					seen[name] = p.Fset.Position(call.Args[0].Pos()).String()
					return true
				})
			}
		},
	}
}
