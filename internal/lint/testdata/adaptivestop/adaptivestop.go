// Package fixture pins the determinism contract of adaptive-sampling
// stop decisions: the choice to stop adding measurement windows must be
// a pure function of the window statistics. A controller that cuts a
// run off on a wall-clock deadline (or jitters its evaluation schedule
// with randomness) produces window counts that vary run to run — which
// breaks two-pass digest equality, runq cache-key semantics, and the
// autopilot search's reproducibility all at once. The wallclock
// analyzer is what stands between the codebase and that bug class.
package fixture

import (
	"math/rand" // want "import of math/rand is forbidden"
	"time"
)

// windowStats is the running interval estimate a stop rule may consult.
type windowStats struct {
	n    int
	mean float64
	half float64
}

// deadlineStop is the forbidden shape: stop refining when the run has
// used up a time budget. Two passes over the same trace then measure
// different window counts on a loaded vs idle machine.
func deadlineStop(s windowStats, start time.Time, budget time.Duration) bool {
	if time.Since(start) > budget { // want "time.Since reads the wall clock"
		return true
	}
	return s.half <= 0.01*s.mean
}

// jitteredSchedule is the other forbidden shape: randomizing which
// window counts get a stop check. The evaluation schedule must be
// pinned, or the sequential looks (and therefore the stop point) differ
// between passes.
func jitteredSchedule(n int) int {
	return n + rand.Intn(4)
}

// pureStop is the required shape — the decision reads nothing but the
// window-mean statistics and a fixed target, like
// sim.runSampled's controller.
func pureStop(s windowStats, target float64) bool {
	return s.n >= 2 && s.mean > 0 && s.half <= target*s.mean
}

// pinnedSchedule is the required evaluation schedule shape: the next
// look depends only on the current look.
func pinnedSchedule(n int) int {
	step := n / 4
	if step < 1 {
		step = 1
	}
	return n + step
}
