// Package fixture exercises the configbounds analyzer: structs marked
// ucplint:config need a Validate() error method covering every numeric
// field.
package fixture

import "errors"

// Complete is fully validated.
//
//ucplint:config
type Complete struct {
	Width int
	Ways  int
	Name  string // non-numeric: exempt
	Fast  bool   // non-numeric: exempt
}

// Validate bounds every numeric field of Complete.
func (c Complete) Validate() error {
	if c.Width <= 0 {
		return errors.New("width")
	}
	if c.Ways <= 0 || c.Ways&(c.Ways-1) != 0 {
		return errors.New("ways")
	}
	return nil
}

// Partial forgets one of its numeric fields.
//
//ucplint:config
type Partial struct {
	Width int
	Ratio float64 // want "does not check numeric field Ratio"
}

// Validate covers Width only.
func (p *Partial) Validate() error {
	if p.Width <= 0 {
		return errors.New("width")
	}
	return nil
}

// Missing has no Validate method at all.
//
//ucplint:config
type Missing struct { // want "no Validate"
	Width int
}

// Unmarked structs are not configuration and need nothing.
type Unmarked struct {
	Whatever int
}
