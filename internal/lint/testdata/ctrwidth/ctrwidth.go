// Package fixture exercises the ctrwidth analyzer: constant uses of
// nbits:-annotated counter fields must stay inside the declared range.
package fixture

type counters struct {
	u    uint8 // usefulness. nbits:2
	ctr  uint8 // confidence. nbits:3
	bias int8  // centered counter. nbits:4
	wide uint8 // nbits:9 // want "wider than its uint8 storage"
}

// Bad violates each declared width.
func Bad(c *counters) {
	if c.u < 5 { // want "comparison with 5 is outside"
		c.u = 4 // want "assignment of 4 is outside"
	}
	if c.bias > 8 { // want "comparison with 8 is outside"
		c.bias = -9 // want "assignment of -9 is outside"
	}
	_ = counters{ctr: 9} // want "initialization with 9 is outside"
}

// Good stays within every range, including saturation idioms.
func Good(c *counters) {
	if c.u < 3 {
		c.u++
	}
	if c.bias > -8 {
		c.bias--
	}
	c.ctr = 7
	c.bias = -8
	_ = counters{ctr: 1, u: 3, bias: 7}
}

// Suppressed shows the escape hatch for a deliberate out-of-range use.
func Suppressed(c *counters) {
	c.u = 200 //ucplint:ignore ctrwidth
}
