// Package fixture exercises the hotalloc analyzer: functions annotated
// //ucplint:hotpath must stay allocation-free, directly and through
// every module callee.
package fixture

// Lookup is a hot inner-loop function that allocates three ways.
//
//ucplint:hotpath
func Lookup(table []uint64, key uint64) uint64 {
	seen := map[uint64]bool{} // want "allocation in //ucplint:hotpath function Lookup: allocates a map literal"
	buf := make([]uint64, 8)  // want "allocation in //ucplint:hotpath function Lookup: calls make"
	buf[0] = key
	seen[key] = true
	grow(buf) // want "calls grow, which allocates"
	return table[key%uint64(len(table))]
}

func grow(xs []uint64) []uint64 {
	return appendOne(xs)
}

func appendOne(xs []uint64) []uint64 {
	return append(xs, 0)
}

// boxer takes an interface; handing it a concrete value boxes.
type boxer struct{}

func (boxer) accept(v any) {}

// Boxes passes a concrete int into an interface parameter.
//
//ucplint:hotpath
func Boxes(b boxer, key int) {
	b.accept(key) // want "boxes a int into an interface argument"
}

// Closes returns a capturing closure.
//
//ucplint:hotpath
func Closes(x int) func() int {
	return func() int { return x } // want "creates a closure"
}

// Clean is a genuinely allocation-free hot function.
//
//ucplint:hotpath
func Clean(table []uint64, i int) uint64 {
	if i < 0 || i >= len(table) {
		return 0
	}
	return table[i]
}

// ColdBranch documents a sanctioned allocation with a named ignore.
//
//ucplint:hotpath
func ColdBranch(table []uint64) []uint64 {
	//ucplint:ignore hotalloc // deliberate: grows once on the cold path
	return append(table, 0)
}
