// Package fixture exercises the ignorename analyzer: ignore directives
// must name real rules, and bare ignores suppress nothing.
package fixture

import "fmt"

// BareIgnore shows that a blanket waiver does not waive: the mapemit
// finding below still fires.
func BareIgnore(m map[string]int) {
	//ucplint:ignore // want "bare //ucplint:ignore suppresses nothing"
	for k, v := range m { // want "calls fmt.Println"
		fmt.Println(k, v)
	}
}

// Typo names a rule that does not exist, so nothing is suppressed.
func Typo(m map[string]int) {
	//ucplint:ignore mapemits // want "names unknown rule \"mapemits\""
	for k, v := range m { // want "calls fmt.Println"
		fmt.Println(k, v)
	}
}

// Valid names the rule it waives; the directive itself is clean and the
// finding below is suppressed.
func Valid(m map[string]int) {
	//ucplint:ignore mapemit
	for k := range m {
		fmt.Println(k)
	}
}
