package fixture

import (
	"fmt"
	"strings"
)

// This file exercises the interprocedural layer of mapemit: helpers
// that launder emission through a call chain.

// BadHelperStdout prints through a two-hop helper chain; the emit
// summary follows it to stdout.
func BadHelperStdout(m map[string]int) {
	for k := range m {
		printKey(k) // want "calls printKey, which emits to stdout through its call chain"
	}
}

func printKey(k string) { emitLine(k) }

func emitLine(s string) { fmt.Println(s) }

// BadHelperBuffer writes into a caller-owned buffer that outlives the
// loop.
func BadHelperBuffer(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		appendTo(&sb, k) // want "calls appendTo, which writes into argument 0"
	}
	return sb.String()
}

func appendTo(b *strings.Builder, s string) { b.WriteString(s) }

// GoodHelperLocal calls a helper whose emission never leaves its own
// frame: order cannot leak.
func GoodHelperLocal(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += localOnly(v)
	}
	return total
}

func localOnly(v int) int {
	var b strings.Builder
	b.WriteString("x")
	return v + b.Len()
}

// GoodLoopLocalSink hands the helper a buffer created inside the loop
// body; the ordered content dies with each iteration.
func GoodLoopLocalSink(m map[string]int) {
	for k := range m {
		var b strings.Builder
		appendTo(&b, k)
	}
}
