// Package fixture exercises the mapemit analyzer: map iteration whose
// body emits output or accumulates unsorted results is flagged.
package fixture

import (
	"fmt"
	"sort"
	"strings"
)

// BadPrint emits directly from map order.
func BadPrint(m map[string]int) {
	for k, v := range m { // want "calls fmt.Println"
		fmt.Println(k, v)
	}
}

// BadBuilder renders a report in map order.
func BadBuilder(m map[string]int) string {
	var sb strings.Builder
	for k := range m { // want "writes via strings.Builder.WriteString"
		sb.WriteString(k)
	}
	return sb.String()
}

// BadAppend accumulates keys that escape unsorted.
func BadAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want "appends to out"
		out = append(out, k)
	}
	return out
}

// GoodSorted is the canonical fix: collect, sort, then emit.
func GoodSorted(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// GoodAggregate folds over the map; order cannot matter.
func GoodAggregate(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// GoodSlice ranges over a slice, which is ordered.
func GoodSlice(xs []string) {
	for _, x := range xs {
		fmt.Println(x)
	}
}

// Suppressed documents a sanctioned exception.
func Suppressed(m map[string]int) {
	//ucplint:ignore mapemit
	for k := range m {
		fmt.Println(k)
	}
}
