// Package fixture exercises the mergeorder analyzer. The importpath
// directive plants it in internal/runq, one of the two aggregation
// roots, so every merge-shaped method here is on the cross-worker
// combine path.
//
//ucplint:importpath ucp/internal/runq
package fixture

// floaty accumulates a float sum the order-sensitive way.
type floaty struct {
	n   uint64
	sum float64
}

// Merge combines two floaty aggregates.
func (a *floaty) Merge(b *floaty) {
	a.n += b.n
	a.sum += b.sum // want "order-sensitive float accumulation in merge method Merge"
}

// exact only accumulates integers; integer addition commutes exactly.
type exact struct{ n uint64 }

// Merge combines two exact aggregates.
func (e *exact) Merge(o *exact) { e.n += o.n }

// blessed carries a float sum that is exact in practice (integer-valued
// samples below 2^53), asserted by annotation and a shuffle-merge test.
type blessed struct{ sum float64 }

// Merge combines two blessed aggregates.
//
//ucplint:commutative
func (b *blessed) Merge(o *blessed) { b.sum += o.sum }

// rebind exercises the x = x + y spelling of accumulation.
type rebind struct{ mean float64 }

// Merge combines two rebind aggregates.
func (r *rebind) Merge(o *rebind) {
	r.mean = r.mean + o.mean // want "order-sensitive float accumulation in merge method Merge"
}

// scalarAdd is Add-shaped but takes a sample, not a peer aggregate, so
// it is not a merge method and stays out of scope.
type scalarAdd struct{ sum float64 }

// Add records one sample.
func (s *scalarAdd) Add(v float64) { s.sum += v }
