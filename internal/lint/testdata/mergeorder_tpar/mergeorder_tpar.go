// Package fixture exercises the mergeorder analyzer's third root: the
// importpath directive plants it in internal/tpar, the time-parallel
// segment-merge package, so merge-shaped methods here sit on the
// cross-worker combine path even without a call edge from runq or sim.
//
//ucplint:importpath ucp/internal/tpar
package fixture

// segAccum mimics a per-worker segment accumulator that (incorrectly)
// folds a float rate during the merge instead of deferring it to a
// segment-ordered reduction.
type segAccum struct {
	insts  uint64
	cycles uint64
	ipc    float64
}

// Merge combines two per-worker accumulators.
func (a *segAccum) Merge(b *segAccum) {
	a.insts += b.insts
	a.cycles += b.cycles
	a.ipc += b.ipc // want "order-sensitive float accumulation in merge method Merge"
}

// cellUnion is the correct shape: a disjoint index union with no
// arithmetic at all, like tpar.Accum.Merge.
type cellUnion struct{ cells []*segAccum }

// Merge folds b's cells into a; cell sets are disjoint by construction.
func (a *cellUnion) Merge(b *cellUnion) {
	for i, c := range b.cells {
		if c != nil {
			a.cells[i] = c
		}
	}
}
