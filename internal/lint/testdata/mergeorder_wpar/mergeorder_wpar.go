// Package fixture exercises the mergeorder analyzer's wpar root: the
// importpath directive plants it in internal/wpar, the window-parallel
// sampled-merge package, so merge-shaped methods here sit on the
// cross-worker combine path even without a call edge from runq or sim.
//
//ucplint:importpath ucp/internal/wpar
package fixture

// winAccum mimics a per-worker window accumulator that (incorrectly)
// folds a float IPC during the merge instead of deferring it to a
// window-ordered reduction.
type winAccum struct {
	insts  uint64
	cycles uint64
	ipc    float64
}

// Merge combines two per-worker accumulators.
func (a *winAccum) Merge(b *winAccum) {
	a.insts += b.insts
	a.cycles += b.cycles
	a.ipc += b.ipc // want "order-sensitive float accumulation in merge method Merge"
}

// cellUnion is the correct shape: a disjoint index union with no
// arithmetic at all, like wpar.Accum.Merge.
type cellUnion struct{ cells []*winAccum }

// Merge folds b's cells into a; window sets are disjoint by construction.
func (a *cellUnion) Merge(b *cellUnion) {
	for i, c := range b.cells {
		if c != nil {
			a.cells[i] = c
		}
	}
}
