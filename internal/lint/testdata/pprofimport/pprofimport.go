// Package fixture exercises the pprofimport analyzer: profiling
// packages may only be imported by the cmd/ binaries.
package fixture

import (
	"os"
	"runtime/pprof" // want "import of runtime/pprof is forbidden outside cmd/"

	//ucplint:ignore pprofimport
	rpprof "runtime/pprof"
)

// Bad starts a CPU profile from library code, which would perturb the
// very hot paths the simulator measures.
func Bad(f *os.File) error {
	defer pprof.StopCPUProfile()
	return pprof.StartCPUProfile(f)
}

// Suppressed uses the ignore-directive escape hatch above: the aliased
// import is deliberate and produces no finding.
func Suppressed(f *os.File) error {
	return rpprof.WriteHeapProfile(f)
}
