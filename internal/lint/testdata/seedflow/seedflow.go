// Package fixture exercises the seedflow analyzer. The importpath
// directive makes this package pose as internal/rng itself: wallclock
// exempts the sanctioned randomness provider, and seedflow takes over —
// the package must stay seed-pure, and seeds handed to its constructor
// must not derive from ambient randomness.
//
//ucplint:importpath ucp/internal/rng
package fixture

import "time"

// New is the seeded constructor shape seedflow keys on.
func New(seed uint64) uint64 { return seed*6364136223846793005 + 1442695040888963407 }

// GoodDerived threads a config seed straight through: clean.
func GoodDerived(configSeed uint64) uint64 {
	return New(configSeed)
}

// clockSeed bottoms out in the wall clock.
func clockSeed() uint64 { // want "internal/rng must stay seed-pure: clockSeed reaches ambient randomness"
	return uint64(time.Now().UnixNano())
}

// laundered hides the clock behind one more hop.
func laundered() uint64 { // want "internal/rng must stay seed-pure: laundered reaches ambient randomness"
	return clockSeed()
}

// BadDirect seeds the constructor from the laundering chain.
func BadDirect() uint64 { // want "internal/rng must stay seed-pure: BadDirect reaches ambient randomness"
	return New(laundered()) // want "seed for rng.New derives from ambient randomness"
}

// BadStaged stages the tainted seed through a local first.
func BadStaged() uint64 { // want "internal/rng must stay seed-pure: BadStaged reaches ambient randomness"
	seed := clockSeed()
	return New(seed) // want "seed for rng.New derives from ambient randomness"
}
