// Package fixture exercises the sharedstate analyzer: mutable values
// reachable from more than one goroutine instance without a
// synchronization handoff.
package fixture

import "sync"

// counter mutates its receiver with no internal serialization.
type counter struct{ n int }

func (c *counter) bump() { c.n++ }

// guardedCounter serializes internally and says so.
type guardedCounter struct {
	mu sync.Mutex
	n  int
}

// bump is serialized by mu.
//
//ucplint:guarded
func (g *guardedCounter) bump() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

// lies claims to guard but never acquires anything.
//
//ucplint:guarded
func (g *guardedCounter) lies() { // want "annotated //ucplint:guarded but never acquires a sync primitive"
	g.n++
}

// FanOut is the worker-pool shape: some captures race, some are
// sanctioned.
func FanOut() int {
	var wg sync.WaitGroup
	total := 0
	c := &counter{}
	g := &guardedCounter{}
	results := make([]int, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			total++        // want "write to total, which is shared across goroutine instances"
			c.bump()       // want "call on shared c mutates state without synchronization"
			g.bump()       // clean: verified guarded
			results[i] = i // clean: index-disjoint sharding
		}(i)
	}
	wg.Wait()
	return total
}

// hits is package state a named spawn mutates.
var hits int

func work() { hits++ }

// NamedSpawn launches an unguarded global-mutating worker per loop
// iteration.
func NamedSpawn() {
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go work() // want "loop-spawned goroutine mutates shared state without synchronization"
	}
}

// SingleWorker spawns exactly one goroutine; the host handoff (wg.Wait)
// makes its captures single-owner, so writes are clean.
func SingleWorker() int {
	var wg sync.WaitGroup
	sum := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		sum = 42
	}()
	wg.Wait()
	return sum
}
