// Package fixture exercises the statname analyzer: stats constructors
// need unique, constant string names.
package fixture

import "ucp/internal/stats"

// Build registers histograms with every kind of name mistake.
func Build(dynamic string) []*stats.Histogram {
	return []*stats.Histogram{
		stats.NewHistogram("refill latency"),
		stats.NewHistogram("stream length"),
		stats.NewHistogram("refill latency"), // want "duplicate stat name"
		stats.NewHistogram(dynamic),          // want "must be a constant string"
	}
}

// constName is fine: constants are still compile-time strings.
const constName = "queue depth"

// BuildConst registers via a named constant.
func BuildConst() *stats.Histogram {
	return stats.NewHistogram(constName)
}

// Suppressed re-registers deliberately (e.g. a reset path).
func Suppressed() *stats.Histogram {
	return stats.NewHistogram("stream length") //ucplint:ignore statname
}
