// Package fixture pins the lint contract the sweepd server code is
// written against: a simulation service mutates one registry from
// executor goroutines and HTTP handler goroutines at once, and it
// reports elapsed time — the two easiest ways for a server to break
// the repository's determinism rules. The dirty shapes here are the
// bugs sharedstate/wallclock must keep catching; the clean shapes are
// the idiom internal/sweepd actually uses (guarded methods acquiring
// the mutex directly, an injected Clock instead of time.Now).
package fixture

import (
	"sync"
	"time"
)

// clock is the injected-elapsed-time seam (runq.Clock's shape): the
// server reports ETAs without ever reading the wall clock itself.
type clock func() time.Duration

// job is one queued simulation's lifecycle record.
type job struct {
	id    string
	state string
}

// badServer is the naive shape: executors mutate the registry with no
// serialization, and progress timestamps come straight from the wall
// clock.
type badServer struct {
	jobs map[string]*job
	done int
}

// finish mutates shared registry state with no synchronization.
func (s *badServer) finish(j *job) {
	j.state = "done"
	s.done++
}

// Serve fans jobs out to executor goroutines, each mutating the
// registry concurrently.
func (s *badServer) Serve(queue []*job) time.Duration {
	start := time.Now() // want "time.Now reads the wall clock"
	var wg sync.WaitGroup
	for _, j := range queue {
		wg.Add(1)
		go func(j *job) {
			defer wg.Done()
			s.finish(j) // want "call on shared s mutates state without synchronization"
			s.done++    // want "write to s, which is shared across goroutine instances"
		}(j)
	}
	wg.Wait()
	return time.Since(start) // want "time.Since reads the wall clock"
}

// server is the shape internal/sweepd uses: every registry touch goes
// through a guarded method that acquires the mutex in its own body,
// and elapsed time comes from the injected clock.
type server struct {
	now clock

	mu   sync.Mutex
	jobs map[string]*job
	done int
}

// finish is serialized by mu.
//
//ucplint:guarded
func (s *server) finish(j *job, elapsed time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.state = "done"
	s.done++
}

// Serve is the clean executor fan-out: guarded mutation, injected
// elapsed-time readings.
func (s *server) Serve(queue []*job) time.Duration {
	start := s.now()
	var wg sync.WaitGroup
	for _, j := range queue {
		wg.Add(1)
		go func(j *job) {
			defer wg.Done()
			s.finish(j, s.now()-start)
		}(j)
	}
	wg.Wait()
	return s.now() - start
}
