// Package fixture exercises the traceopen analyzer: the raw trace
// decoders may only be called from internal/trace itself and from
// cmd/tracegen — sweep code shares one decoded arena per batch.
package fixture

import (
	"os"

	"ucp/internal/trace"
)

// Bad decodes a trace file directly, materializing a private []isa.Inst
// per call — the per-job redundancy the shared arena eliminates.
func Bad(f *os.File) error {
	if _, err := trace.Read(f); err != nil { // want "direct trace decode via trace.Read is forbidden"
		return err
	}
	_, err := trace.ReadAny(f) // want "direct trace decode via trace.ReadAny is forbidden"
	return err
}

// Good loads through the arena entry point: one decode, shared cursors,
// content-addressed identity.
func Good(path string) (*trace.Arena, error) {
	return trace.LoadArena(path)
}

// Suppressed uses the ignore-directive escape hatch: a deliberate
// one-off decode (e.g. a validation tool) produces no finding.
func Suppressed(f *os.File) error {
	_, err := trace.Read(f) //ucplint:ignore traceopen
	return err
}
