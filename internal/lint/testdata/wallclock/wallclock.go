// Package fixture exercises the wallclock analyzer: wall-clock reads
// and math/rand are forbidden outside internal/rng.
package fixture

import (
	"math/rand" // want "import of math/rand is forbidden"
	"time"
)

// Bad reads the wall clock three different ways and consumes global
// randomness.
func Bad() time.Duration {
	start := time.Now() // want "time.Now reads the wall clock"
	_ = rand.Intn(4)
	return time.Since(start) // want "time.Since reads the wall clock"
}

// Suppressed shows the escape hatch: an explicit ignore on the line.
func Suppressed() time.Time {
	return time.Now() //ucplint:ignore wallclock
}

// Fine uses time for constants only, which is allowed.
const tick = 2 * time.Millisecond
