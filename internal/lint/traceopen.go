package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// newTraceOpenAnalyzer keeps sweep paths on the shared-arena plan.
// trace.Read and trace.ReadAny decode a whole trace into a fresh
// []isa.Inst (48 bytes/inst) on every call — exactly the per-job
// redundancy the decode-once trace.Arena exists to eliminate. Sweep
// code must go through the arena entry points (trace.LoadArena, or
// runq's Pool.FileArena which shares one arena per batch); the raw
// decoders are reserved for the trace codec itself and for
// cmd/tracegen's generate/inspect tooling.
func newTraceOpenAnalyzer() *Analyzer {
	const rule = "traceopen"
	forbidden := map[string]bool{"Read": true, "ReadAny": true}
	allowedPkg := func(path string) bool {
		return strings.HasSuffix(path, "internal/trace") ||
			strings.HasSuffix(path, "cmd/tracegen")
	}
	return &Analyzer{
		Name: rule,
		Doc:  "forbid direct trace decoding (trace.Read/ReadAny) outside internal/trace and cmd/tracegen; sweep paths share a decoded arena",
		CheckPackage: func(p *Package, r *Reporter) {
			if allowedPkg(p.Path) {
				return
			}
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok || !forbidden[sel.Sel.Name] {
						return true
					}
					fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
					if !ok || fn.Type().(*types.Signature).Recv() != nil {
						return true
					}
					if !strings.HasSuffix(pkgPathOf(fn), "internal/trace") {
						return true
					}
					r.Report(p, call.Pos(), rule,
						"direct trace decode via trace.%s is forbidden outside internal/trace and cmd/tracegen: route sweep code through a shared trace.Arena (LoadArena / Pool.FileArena)", sel.Sel.Name)
					return true
				})
			}
		},
	}
}
