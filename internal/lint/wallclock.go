package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// newWallclockAnalyzer forbids wall-clock time and global randomness.
// Simulated time must be derived from cycle counts and all randomness
// must flow through internal/rng's seeded generators, or two runs of
// the same experiment stop being comparable.
func newWallclockAnalyzer() *Analyzer {
	const rule = "wallclock"
	forbiddenImports := map[string]bool{
		"math/rand":    true,
		"math/rand/v2": true,
	}
	forbiddenTimeFuncs := map[string]bool{
		"Now":   true,
		"Since": true,
		"Until": true,
	}
	return &Analyzer{
		Name: rule,
		Doc:  "forbid time.Now/time.Since and math/rand outside internal/rng",
		CheckPackage: func(p *Package, r *Reporter) {
			// internal/rng is the one sanctioned randomness provider.
			if strings.HasSuffix(p.Path, "internal/rng") {
				return
			}
			for _, f := range p.Files {
				for _, imp := range f.Imports {
					path, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						continue
					}
					if forbiddenImports[path] {
						r.Report(p, imp.Pos(), rule,
							"import of %s is forbidden: route randomness through internal/rng so runs stay seed-reproducible", path)
					}
				}
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					id, ok := sel.X.(*ast.Ident)
					if !ok {
						return true
					}
					pkgName, ok := p.Info.Uses[id].(*types.PkgName)
					if !ok || pkgName.Imported().Path() != "time" {
						return true
					}
					if forbiddenTimeFuncs[sel.Sel.Name] {
						r.Report(p, sel.Pos(), rule,
							"time.%s reads the wall clock: simulator time must come from cycle counts", sel.Sel.Name)
					}
					return true
				})
			}
		},
	}
}
