package prefetch

import "ucp/internal/cache"

// DJOLT reimplements the Distant Jolt Prefetcher (IPC-1): it correlates
// a "distant" signature — the miss observed several misses in the past —
// with the set of upcoming miss lines, letting it jump far ahead of the
// fetch stream. It is the largest of the IPC-1 baselines (~125KB, §VII-A).
type DJOLT struct {
	mem *cache.Hierarchy

	distance int
	fanout   int
	bits     int
	table    [][]uint64

	missRing []uint64
	ringPos  int
}

// NewDJOLT constructs the prefetcher.
func NewDJOLT(mem *cache.Hierarchy) *DJOLT {
	d := &DJOLT{mem: mem, distance: 8, fanout: 4, bits: 13}
	d.table = make([][]uint64, 1<<d.bits)
	d.missRing = make([]uint64, 16)
	return d
}

// OnFetch implements the prefetcher interface.
func (d *DJOLT) OnFetch(line uint64, hit bool, now uint64) {
	if hit {
		return
	}
	// Train: the miss `distance` misses ago predicts this line.
	sigLine := d.missRing[(d.ringPos-d.distance+len(d.missRing)*2)%len(d.missRing)]
	if sigLine != 0 {
		idx := lineHash(sigLine, d.bits)
		row := d.table[idx]
		found := false
		for _, l := range row {
			if l == line {
				found = true
				break
			}
		}
		if !found {
			if len(row) >= d.fanout {
				row = row[1:]
			}
			d.table[idx] = append(row, line)
		}
	}
	d.missRing[d.ringPos%len(d.missRing)] = line
	d.ringPos++
	// Prefetch everything this miss is known to lead to, far ahead.
	for _, tgt := range d.table[lineHash(line, d.bits)] {
		d.mem.PrefetchInst(tgt, now)
	}
}

// StorageKB implements the prefetcher interface (~125KB as published).
func (d *DJOLT) StorageKB() float64 {
	return float64(len(d.table)) * float64(d.fanout) * 30 / 8 / 1024
}
