package prefetch

import "ucp/internal/cache"

// Entangling reimplements Ros & Jimborean's Entangling Instruction
// Prefetcher (EP): when a line misses, it is "entangled" with a source
// line that was fetched early enough that prefetching the destination
// at the source's fetch would have hidden the miss latency. Future
// fetches of the source then prefetch its entangled destinations. The
// "++" flavor (wrong-path-aware EP, TC'24) adds capacity and fanout.
type Entangling struct {
	mem *cache.Hierarchy

	bits   int
	fanout int
	table  [][]uint64

	// Recent fetch history with timestamps to find timely sources.
	ring     []histEntry
	ringPos  int
	coverLat uint64
	plus     bool
}

type histEntry struct {
	line uint64
	at   uint64
}

// NewEntangling constructs the prefetcher; plus selects EP++.
func NewEntangling(mem *cache.Hierarchy, plus bool) *Entangling {
	e := &Entangling{mem: mem, bits: 12, fanout: 2, coverLat: 120, plus: plus}
	if plus {
		e.fanout = 3
		e.coverLat = 80 // wrong-path-aware flavor entangles more eagerly
	}
	e.table = make([][]uint64, 1<<e.bits)
	e.ring = make([]histEntry, 64)
	return e
}

// OnFetch implements the prefetcher interface.
func (e *Entangling) OnFetch(line uint64, hit bool, now uint64) {
	// Prefetch the destinations entangled with this line.
	for _, tgt := range e.table[lineHash(line, e.bits)] {
		e.mem.PrefetchInst(tgt, now)
	}
	if !hit {
		// Find the youngest source old enough to have hidden the miss.
		var src uint64
		for i := 1; i <= len(e.ring); i++ {
			h := e.ring[(e.ringPos-i+len(e.ring)*2)%len(e.ring)]
			if h.line == 0 {
				break
			}
			if now-h.at >= e.coverLat {
				src = h.line
				break
			}
		}
		if src != 0 && src != line {
			idx := lineHash(src, e.bits)
			row := e.table[idx]
			dup := false
			for _, l := range row {
				if l == line {
					dup = true
					break
				}
			}
			if !dup {
				if len(row) >= e.fanout {
					row = row[1:]
				}
				e.table[idx] = append(row, line)
			}
		}
	}
	e.ring[e.ringPos%len(e.ring)] = histEntry{line: line, at: now}
	e.ringPos++
}

// StorageKB implements the prefetcher interface (EP ~40KB, EP++ ~60KB,
// matching the published budgets' order).
func (e *Entangling) StorageKB() float64 {
	return float64(len(e.table)) * float64(e.fanout) * 30 / 8 / 1024
}
