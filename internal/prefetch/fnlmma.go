package prefetch

import "ucp/internal/cache"

// FNLMMA is a reimplementation of Seznec's FNL+MMA (IPC-1 winner):
// a Footprint Next Line prefetcher that learns whether the next
// sequential line is worth prefetching, combined with a Multiple Miss
// Ahead predictor that replays the miss stream several misses ahead.
// The "++" flavor deepens the MMA lookahead and enlarges the tables.
type FNLMMA struct {
	mem *cache.Hierarchy

	// FNL: 2-bit "next line useful" counters.
	nl       []uint8
	nlBits   int
	lastLine uint64

	// MMA: miss(n) → miss(n+depth) correlation table.
	mma      []uint64
	mmaBits  int
	depth    int
	missRing []uint64
	ringPos  int

	plus bool
}

// NewFNLMMA constructs the prefetcher; plus selects FNL+MMA++.
func NewFNLMMA(mem *cache.Hierarchy, plus bool) *FNLMMA {
	f := &FNLMMA{mem: mem, plus: plus, nlBits: 14, mmaBits: 12, depth: 2}
	if plus {
		f.mmaBits = 13
		f.depth = 3
	}
	f.nl = make([]uint8, 1<<f.nlBits)
	f.mma = make([]uint64, 1<<f.mmaBits)
	f.missRing = make([]uint64, 8)
	return f
}

// OnFetch implements the prefetcher interface.
func (f *FNLMMA) OnFetch(line uint64, hit bool, now uint64) {
	// FNL training: a sequential advance strengthens the previous
	// line's next-line counter; a jump weakens it.
	if f.lastLine != 0 {
		idx := lineHash(f.lastLine, f.nlBits)
		if line == f.lastLine+lineBytes {
			if f.nl[idx] < 3 {
				f.nl[idx]++
			}
		} else if f.nl[idx] > 0 {
			f.nl[idx]--
		}
	}
	f.lastLine = line

	// FNL prefetch: next line(s) when the footprint says so.
	nlDepth := 1
	if f.plus {
		nlDepth = 2
	}
	next := line
	for d := 0; d < nlDepth; d++ {
		if f.nl[lineHash(next, f.nlBits)] < 2 {
			break
		}
		next += lineBytes
		f.mem.PrefetchInst(next, now)
	}

	if hit {
		return
	}
	// MMA: train miss(n-depth) → miss(n), then prefetch the lines this
	// miss historically leads to.
	prev := f.missRing[(f.ringPos-f.depth+len(f.missRing)*2)%len(f.missRing)]
	if prev != 0 {
		f.mma[lineHash(prev, f.mmaBits)] = line
	}
	f.missRing[f.ringPos%len(f.missRing)] = line
	f.ringPos++
	if tgt := f.mma[lineHash(line, f.mmaBits)]; tgt != 0 {
		f.mem.PrefetchInst(tgt, now)
		if f.plus {
			if t2 := f.mma[lineHash(tgt, f.mmaBits)]; t2 != 0 {
				f.mem.PrefetchInst(t2, now)
			}
		}
	}
}

// StorageKB implements the prefetcher interface. FNL+MMA reported
// ~27KB at IPC-1; the ++ flavor grows to ~40KB.
func (f *FNLMMA) StorageKB() float64 {
	kb := float64(len(f.nl))*2/8/1024 + float64(len(f.mma))*36/8/1024
	return kb
}
