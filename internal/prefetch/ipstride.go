package prefetch

import "ucp/internal/cache"

// IPStride is the Table II baseline L1D prefetcher: a per-PC stride
// detector with confidence, prefetching ahead once a stride repeats.
type IPStride struct {
	mem    *cache.Hierarchy
	table  []ipEntry
	bits   int
	degree int
}

type ipEntry struct {
	tag    uint32
	last   uint64
	stride int64
	conf   uint8
}

// NewIPStride constructs the prefetcher.
func NewIPStride(mem *cache.Hierarchy) *IPStride {
	s := &IPStride{mem: mem, bits: 8, degree: 2}
	s.table = make([]ipEntry, 1<<s.bits)
	return s
}

// OnLoad observes an issued load and may prefetch ahead.
func (s *IPStride) OnLoad(pc, addr uint64, now uint64) {
	idx := int((pc >> 2) & uint64(len(s.table)-1))
	tag := uint32(pc >> uint(2+s.bits))
	e := &s.table[idx]
	if e.tag != tag {
		*e = ipEntry{tag: tag, last: addr}
		return
	}
	stride := int64(addr) - int64(e.last)
	if stride == e.stride && stride != 0 {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 0
	}
	e.last = addr
	if e.conf >= 2 {
		for d := 1; d <= s.degree; d++ {
			target := uint64(int64(addr) + e.stride*int64(d))
			s.mem.L1D.Prefetch(target, now)
		}
	}
}

// StorageKB returns the modeled hardware budget.
func (s *IPStride) StorageKB() float64 {
	return float64(len(s.table)) * 80 / 8 / 1024
}
