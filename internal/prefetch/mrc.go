package prefetch

import "fmt"

// MRC is the Misprediction Recovery Cache baseline (Nanda et al.,
// §VI-F): a fully-associative cache of decoded-µ-op streams tagged by
// the corrected branch target. On a misprediction, a tag hit streams up
// to OpsPerEntry µ-ops straight to the execution engine, skipping the
// fetch/decode refill; an entry is (re)recorded after every
// misprediction. The simulator models the entry directory and LRU here;
// the streamed µ-ops themselves are the trace's correct path, so only
// their accelerated delivery needs modeling (frontend fast-deliver
// credit).
type MRC struct {
	cfg   MRCConfig
	lru   map[uint64]uint64
	clock uint64
	hits  uint64
	looks uint64
}

// MRCConfig sizes the MRC. The paper evaluates 64 µ-ops per entry at
// 16.5, 33, 66, and 132KB total.
//
//ucplint:config
type MRCConfig struct {
	Entries     int
	OpsPerEntry int
}

// Validate rejects empty or absurd MRC geometries.
func (c MRCConfig) Validate() error {
	if c.Entries <= 0 {
		return fmt.Errorf("prefetch: MRC Entries must be positive, got %d", c.Entries)
	}
	if c.OpsPerEntry <= 0 || c.OpsPerEntry > 1024 {
		return fmt.Errorf("prefetch: MRC OpsPerEntry must be in [1,1024], got %d", c.OpsPerEntry)
	}
	return nil
}

// MRCConfigKB returns a configuration of roughly the given storage
// (64 µ-ops ≈ 258B per entry including tag and LRU).
func MRCConfigKB(kb float64) MRCConfig {
	entries := int(kb * 1024 / 258)
	if entries < 1 {
		entries = 1
	}
	return MRCConfig{Entries: entries, OpsPerEntry: 64}
}

// NewMRC constructs an MRC.
func NewMRC(cfg MRCConfig) *MRC {
	if cfg.OpsPerEntry == 0 {
		cfg.OpsPerEntry = 64
	}
	return &MRC{cfg: cfg, lru: make(map[uint64]uint64, cfg.Entries)}
}

// Lookup checks for a stream tagged with the corrected target.
func (m *MRC) Lookup(tag uint64) bool {
	m.looks++
	m.clock++
	if _, ok := m.lru[tag]; ok {
		m.lru[tag] = m.clock
		m.hits++
		return true
	}
	return false
}

// Record installs (or refreshes) the stream for the corrected target.
func (m *MRC) Record(tag uint64) {
	m.clock++
	if _, ok := m.lru[tag]; ok {
		m.lru[tag] = m.clock
		return
	}
	if len(m.lru) >= m.cfg.Entries {
		var victim uint64
		oldest := ^uint64(0)
		for t, at := range m.lru {
			if at < oldest {
				victim, oldest = t, at
			}
		}
		delete(m.lru, victim)
	}
	m.lru[tag] = m.clock
}

// OpsPerEntry returns the streamable µ-ops per hit.
func (m *MRC) OpsPerEntry() int { return m.cfg.OpsPerEntry }

// HitRate returns hits over lookups.
func (m *MRC) HitRate() float64 {
	if m.looks == 0 {
		return 0
	}
	return float64(m.hits) / float64(m.looks)
}

// StorageKB returns the modeled hardware budget.
func (m *MRC) StorageKB() float64 {
	return float64(m.cfg.Entries) * 258 / 1024
}
