// Package prefetch implements the baseline prefetchers the paper
// compares against (§III-C, §VI-F): the IPC-1 L1I prefetchers FNL+MMA,
// D-JOLT, and the Entangling Prefetcher (each in its base and improved
// flavor), the Misprediction Recovery Cache (MRC), and the IP-stride
// L1D prefetcher of the Table II baseline. The L1I prefetchers are
// faithful-in-spirit reimplementations at the original storage budgets;
// championship-exact replication is out of scope (DESIGN.md).
package prefetch

import "ucp/internal/cache"

// L1I is the instruction prefetcher interface; it matches
// frontend.L1IPrefetcher structurally.
type L1I interface {
	// OnFetch observes one demand-fetched line and its L1I residency.
	OnFetch(lineAddr uint64, hit bool, now uint64)
	// StorageKB is the modeled hardware budget (Fig. 16 x-axis).
	StorageKB() float64
}

// NewL1I builds a named prefetcher bound to mem. Known names: "fnlmma",
// "fnlmma++", "djolt", "ep", "ep++"; "" returns nil (no prefetcher).
func NewL1I(name string, mem *cache.Hierarchy) L1I {
	switch name {
	case "":
		return nil
	case "fnlmma":
		return NewFNLMMA(mem, false)
	case "fnlmma++":
		return NewFNLMMA(mem, true)
	case "djolt":
		return NewDJOLT(mem)
	case "ep":
		return NewEntangling(mem, false)
	case "ep++":
		return NewEntangling(mem, true)
	default:
		panic("prefetch: unknown L1I prefetcher " + name)
	}
}

const lineBytes = 64

func lineHash(line uint64, bits int) int {
	v := line / lineBytes
	v ^= v >> 13
	v *= 0x9e3779b97f4a7c15
	return int((v >> 40) & uint64((1<<bits)-1))
}

// StorageKBOf returns the modeled budget of a named prefetcher without
// wiring it to a hierarchy (Fig. 16 x-axis).
func StorageKBOf(name string) float64 {
	p := NewL1I(name, nil)
	if p == nil {
		return 0
	}
	return p.StorageKB()
}
