package prefetch

import (
	"testing"

	"ucp/internal/cache"
)

func mem() *cache.Hierarchy {
	return cache.NewHierarchy(cache.DefaultHierarchyConfig())
}

func TestFactory(t *testing.T) {
	m := mem()
	if NewL1I("", m) != nil {
		t.Fatal("empty name must return nil")
	}
	for _, n := range []string{"fnlmma", "fnlmma++", "djolt", "ep", "ep++"} {
		if NewL1I(n, m) == nil {
			t.Fatalf("prefetcher %q not constructed", n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown name must panic")
		}
	}()
	NewL1I("bogus", m)
}

func TestFNLMMANextLine(t *testing.T) {
	m := mem()
	f := NewFNLMMA(m, false)
	// Sequential fetch stream trains the next-line footprint.
	base := uint64(0x100000)
	for rep := 0; rep < 4; rep++ {
		for i := uint64(0); i < 16; i++ {
			line := base + i*64
			f.OnFetch(line, m.L1I.Contains(line), uint64(rep*100)+i)
		}
	}
	// After training, fetching line k should have prefetched k+1.
	if !m.L1I.Contains(base + 8*64) {
		t.Fatal("next-line prefetch did not fill L1I")
	}
}

func TestFNLMMAMissAhead(t *testing.T) {
	m := mem()
	f := NewFNLMMA(m, false)
	// A repeating miss sequence A,B,C,D...: MMA learns miss(n-2)→miss(n).
	seq := []uint64{0x200000, 0x310000, 0x420000, 0x530000, 0x640000}
	for rep := 0; rep < 6; rep++ {
		for i, line := range seq {
			f.OnFetch(line, false, uint64(rep*1000+i*10))
		}
	}
	issued := m.PQIssued
	if issued == 0 {
		t.Fatal("MMA issued no prefetches on a repeating miss stream")
	}
}

func TestDJOLTLearnsDistantMisses(t *testing.T) {
	m := mem()
	d := NewDJOLT(m)
	seq := make([]uint64, 12)
	for i := range seq {
		seq[i] = uint64(0x10000000 + i*0x10000)
	}
	for rep := 0; rep < 5; rep++ {
		for i, line := range seq {
			d.OnFetch(line, false, uint64(rep*1000+i))
		}
	}
	if m.PQIssued == 0 {
		t.Fatal("D-JOLT issued no prefetches")
	}
	// The distant table must have associated seq[0] with seq[8].
	found := false
	for _, tgt := range d.table[lineHash(seq[0], d.bits)] {
		if tgt == seq[8] {
			found = true
		}
	}
	if !found {
		t.Fatal("distance-8 correlation not learned")
	}
}

func TestEntanglingAssociatesTimelySource(t *testing.T) {
	m := mem()
	e := NewEntangling(m, false)
	// Source S fetched 200 cycles before destination D misses.
	const S, D = 0x40000000, 0x50000000
	for rep := 0; rep < 4; rep++ {
		now := uint64(rep * 10000)
		e.OnFetch(S, true, now)
		e.OnFetch(D, false, now+200)
	}
	row := e.table[lineHash(uint64(S), e.bits)]
	found := false
	for _, tgt := range row {
		if tgt == D {
			found = true
		}
	}
	if !found {
		t.Fatal("entangling pair not learned")
	}
	// Now fetching S prefetches D.
	before := m.PQIssued
	e.OnFetch(S, true, 100000)
	if m.PQIssued == before && !m.L1I.Contains(D) {
		t.Fatal("entangled destination not prefetched")
	}
}

func TestMRCBasics(t *testing.T) {
	m := NewMRC(MRCConfig{Entries: 2, OpsPerEntry: 64})
	if m.Lookup(0x1000) {
		t.Fatal("hit in empty MRC")
	}
	m.Record(0x1000)
	if !m.Lookup(0x1000) {
		t.Fatal("recorded tag misses")
	}
	m.Record(0x2000)
	m.Lookup(0x1000) // make 0x1000 MRU
	m.Record(0x3000) // evicts 0x2000
	if m.Lookup(0x2000) {
		t.Fatal("LRU victim survived")
	}
	if !m.Lookup(0x1000) || !m.Lookup(0x3000) {
		t.Fatal("resident tags lost")
	}
	if m.OpsPerEntry() != 64 {
		t.Fatalf("ops per entry %d", m.OpsPerEntry())
	}
}

func TestMRCConfigKB(t *testing.T) {
	for _, kb := range []float64{16.5, 33, 66, 132} {
		cfg := MRCConfigKB(kb)
		got := NewMRC(cfg).StorageKB()
		if got < kb*0.9 || got > kb*1.1 {
			t.Errorf("MRCConfigKB(%.1f) → %.1fKB", kb, got)
		}
	}
}

func TestIPStrideDetectsStride(t *testing.T) {
	m := mem()
	s := NewIPStride(m)
	const pc = 0x1000
	base := uint64(1 << 32)
	for i := uint64(0); i < 8; i++ {
		s.OnLoad(pc, base+i*256, i*10)
	}
	// The +2-ahead prefetch for the last access lands at base+10*256.
	if !m.L1D.Contains(base + 9*256) {
		t.Fatal("stride prefetch did not fill L1D")
	}
}

func TestIPStrideIgnoresRandom(t *testing.T) {
	m := mem()
	s := NewIPStride(m)
	addrs := []uint64{1 << 32, 1<<32 + 8192, 1<<32 + 64, 1<<32 + 99840, 1<<32 + 16}
	for i, a := range addrs {
		s.OnLoad(0x2000, a, uint64(i*10))
	}
	if got := m.L1D.Stats().Prefetches; got != 0 {
		t.Fatalf("random pattern triggered %d prefetches", got)
	}
}

func TestStorageBudgets(t *testing.T) {
	cases := map[string][2]float64{
		"fnlmma":   {15, 40},
		"fnlmma++": {30, 60},
		"djolt":    {100, 160},
		"ep":       {20, 45},
		"ep++":     {35, 70},
	}
	for name, band := range cases {
		kb := StorageKBOf(name)
		if kb < band[0] || kb > band[1] {
			t.Errorf("%s storage %.1fKB outside [%v,%v]", name, kb, band[0], band[1])
		}
	}
	// D-JOLT must be the largest (§VII-A: "up to 125KB").
	if StorageKBOf("djolt") <= StorageKBOf("ep++") {
		t.Error("D-JOLT should be the largest prefetcher")
	}
	if StorageKBOf("") != 0 {
		t.Error("no prefetcher must cost 0KB")
	}
}
