package ras

import "ucp/internal/ckpt"

// Checkpoint hooks: calls and returns commit functionally during the
// sampled fast-forward, so the stack contents, write position, and live
// depth carry across a checkpoint.

// SaveState serializes all mutable stack state.
func (s *Stack) SaveState(w *ckpt.Writer) {
	w.Section("ras")
	w.U64s(s.entries)
	w.Uvarint(uint64(s.top))
	w.Uvarint(uint64(s.depth))
}

// LoadState restores state saved by SaveState into a stack of the same
// capacity. Errors surface on the reader.
func (s *Stack) LoadState(r *ckpt.Reader) {
	r.Section("ras")
	r.U64sInto(s.entries)
	s.top = int(r.Uvarint())
	s.depth = int(r.Uvarint())
}
