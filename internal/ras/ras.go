// Package ras implements a return address stack. The baseline frontend
// uses a 64-entry RAS (Table II); UCP adds a 16-entry Alt-RAS that is
// copied from the main RAS when alternate-path generation starts and is
// then updated speculatively while walking the alternate path (§IV-C).
package ras

// Stack is a circular return address stack. Overflow silently wraps
// (oldest entries are overwritten), underflow returns 0 — both mirror
// hardware behavior rather than erroring.
type Stack struct {
	entries []uint64
	top     int // index of the next push slot
	depth   int // live entries, ≤ len(entries)
}

// New returns a stack with the given capacity.
func New(capacity int) *Stack {
	if capacity < 1 {
		capacity = 1
	}
	return &Stack{entries: make([]uint64, capacity)}
}

// Push records a return address (on a call).
func (s *Stack) Push(addr uint64) {
	s.entries[s.top] = addr
	s.top = (s.top + 1) % len(s.entries)
	if s.depth < len(s.entries) {
		s.depth++
	}
}

// Pop predicts the target of a return. It returns 0 when empty.
func (s *Stack) Pop() uint64 {
	if s.depth == 0 {
		return 0
	}
	s.top = (s.top - 1 + len(s.entries)) % len(s.entries)
	s.depth--
	return s.entries[s.top]
}

// Peek returns the top entry without popping (0 when empty).
func (s *Stack) Peek() uint64 {
	if s.depth == 0 {
		return 0
	}
	return s.entries[(s.top-1+len(s.entries))%len(s.entries)]
}

// Depth returns the number of live entries.
func (s *Stack) Depth() int { return s.depth }

// Capacity returns the stack capacity.
func (s *Stack) Capacity() int { return len(s.entries) }

// CopyFrom overwrites this stack with the youngest entries of src,
// truncating to this stack's capacity (the Alt-RAS is smaller than the
// main RAS, so only the youngest frames are retained).
func (s *Stack) CopyFrom(src *Stack) {
	n := src.depth
	if n > len(s.entries) {
		n = len(s.entries)
	}
	for i := 0; i < n; i++ {
		// i-th youngest entry of src.
		idx := (src.top - 1 - i + len(src.entries)*2) % len(src.entries)
		s.entries[(n-1-i+len(s.entries))%len(s.entries)] = src.entries[idx]
	}
	s.top = n % len(s.entries)
	s.depth = n
}

// Reset empties the stack.
func (s *Stack) Reset() {
	s.top, s.depth = 0, 0
}

// StorageBits returns the modeled hardware budget (32-bit addresses).
func (s *Stack) StorageBits() int { return len(s.entries) * 32 }
