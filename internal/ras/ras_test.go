package ras

import (
	"testing"
	"testing/quick"
)

func TestPushPopLIFO(t *testing.T) {
	s := New(8)
	for i := 1; i <= 5; i++ {
		s.Push(uint64(i * 0x100))
	}
	for i := 5; i >= 1; i-- {
		if got := s.Pop(); got != uint64(i*0x100) {
			t.Fatalf("Pop = %#x, want %#x", got, i*0x100)
		}
	}
	if s.Depth() != 0 {
		t.Fatalf("depth %d after draining", s.Depth())
	}
}

func TestUnderflowReturnsZero(t *testing.T) {
	s := New(4)
	if got := s.Pop(); got != 0 {
		t.Fatalf("empty Pop = %#x", got)
	}
	if got := s.Peek(); got != 0 {
		t.Fatalf("empty Peek = %#x", got)
	}
}

func TestOverflowWraps(t *testing.T) {
	s := New(4)
	for i := 1; i <= 6; i++ {
		s.Push(uint64(i))
	}
	if s.Depth() != 4 {
		t.Fatalf("depth %d, want 4", s.Depth())
	}
	// Youngest 4 survive: 6,5,4,3.
	for _, want := range []uint64{6, 5, 4, 3} {
		if got := s.Pop(); got != want {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
	}
	if got := s.Pop(); got != 0 {
		t.Fatalf("wrapped stack must underflow to 0, got %d", got)
	}
}

func TestPeekDoesNotPop(t *testing.T) {
	s := New(4)
	s.Push(42)
	if s.Peek() != 42 || s.Peek() != 42 || s.Depth() != 1 {
		t.Fatal("Peek must not modify the stack")
	}
}

func TestCopyFromTruncatesToYoungest(t *testing.T) {
	main := New(64)
	for i := 1; i <= 20; i++ {
		main.Push(uint64(i))
	}
	alt := New(16)
	alt.CopyFrom(main)
	if alt.Depth() != 16 {
		t.Fatalf("alt depth %d, want 16", alt.Depth())
	}
	for want := uint64(20); want >= 5; want-- {
		if got := alt.Pop(); got != want {
			t.Fatalf("alt Pop = %d, want %d", got, want)
		}
	}
	// The main stack is untouched.
	if main.Depth() != 20 || main.Peek() != 20 {
		t.Fatal("CopyFrom modified the source")
	}
}

func TestCopyFromSmallerSource(t *testing.T) {
	main := New(64)
	main.Push(7)
	main.Push(9)
	alt := New(16)
	alt.Push(1) // stale state must be replaced
	alt.CopyFrom(main)
	if alt.Depth() != 2 || alt.Pop() != 9 || alt.Pop() != 7 {
		t.Fatal("CopyFrom with small source failed")
	}
}

func TestCopyFromFullSameCapacity(t *testing.T) {
	a := New(8)
	for i := 1; i <= 8; i++ {
		a.Push(uint64(i))
	}
	b := New(8)
	b.CopyFrom(a)
	for want := uint64(8); want >= 1; want-- {
		if got := b.Pop(); got != want {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
	}
}

func TestReset(t *testing.T) {
	s := New(4)
	s.Push(1)
	s.Reset()
	if s.Depth() != 0 || s.Pop() != 0 {
		t.Fatal("Reset did not empty the stack")
	}
}

func TestDepthNeverExceedsCapacity(t *testing.T) {
	if err := quick.Check(func(ops []uint8) bool {
		s := New(16)
		for _, op := range ops {
			if op%3 == 0 {
				s.Pop()
			} else {
				s.Push(uint64(op))
			}
			if s.Depth() < 0 || s.Depth() > s.Capacity() {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCopyFromMatchesPopSequence(t *testing.T) {
	// Property: after CopyFrom, popping alt yields the same sequence as
	// popping main (up to alt's capacity).
	if err := quick.Check(func(vals []uint16) bool {
		main := New(32)
		for _, v := range vals {
			main.Push(uint64(v) + 1)
		}
		ref := New(32)
		ref.CopyFrom(main)
		alt := New(8)
		alt.CopyFrom(main)
		for i := 0; i < alt.Depth(); i++ {
			if alt.Pop() != ref.Pop() {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
