// Package rng provides a small, fast, deterministic pseudo-random number
// generator (xoshiro256**) used throughout the simulator and the synthetic
// workload generator. Determinism across runs and platforms is a hard
// requirement: every experiment in this repository must be exactly
// reproducible from a seed, so we do not use math/rand's global state.
package rng

import "math"

// Rand is a xoshiro256** generator. The zero value is invalid; use New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed using splitmix64,
// which guarantees a well-distributed non-zero internal state for any
// seed, including zero.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Fork derives an independent generator from this one. Forked streams are
// used so that adding randomness consumption in one subsystem does not
// perturb another subsystem's stream.
func (r *Rand) Fork() *Rand {
	return New(r.Uint64())
}

// Geometric returns a sample from a geometric distribution with mean m
// (m >= 1), i.e. the number of trials until first success with p = 1/m.
// Useful for run lengths and trip counts.
func (r *Rand) Geometric(m float64) int {
	if m <= 1 {
		return 1
	}
	p := 1.0 / m
	n := 1
	for !r.Bool(p) && n < 1<<20 {
		n++
	}
	return n
}

// Zipf returns a value in [0, n) following an approximate Zipf(s=1)
// distribution, biased toward small values. It is used to pick "hot"
// functions and branch targets so synthetic code has realistic skew.
func (r *Rand) Zipf(n int) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF approximation for s=1: P(X <= k) ~ ln(k+1)/ln(n+1).
	u := r.Float64()
	k := int(math.Exp(u*math.Log(float64(n+1)))) - 1
	if k < 0 {
		k = 0
	}
	if k >= n {
		k = n - 1
	}
	return k
}
