package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	// splitmix64 seeding must not leave the all-zero state.
	if r.s == [4]uint64{} {
		t.Fatal("zero seed produced zero state")
	}
	if x, y := r.Uint64(), r.Uint64(); x == 0 && y == 0 {
		t.Fatal("suspicious zero outputs")
	}
}

func TestIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(99)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if got < 0.28 || got > 0.32 {
		t.Fatalf("Bool(0.3) frequency = %v, want ~0.3", got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(5)
	n, sum := 20000, 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(8)
	}
	mean := float64(sum) / float64(n)
	if mean < 7 || mean > 9 {
		t.Fatalf("Geometric(8) mean = %v, want ~8", mean)
	}
}

func TestGeometricDegenerate(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if g := r.Geometric(0.5); g != 1 {
			t.Fatalf("Geometric(0.5) = %d, want 1", g)
		}
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := New(3)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		v := r.Zipf(100)
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Low indices must be much hotter than high ones.
	low := counts[0] + counts[1] + counts[2]
	high := counts[97] + counts[98] + counts[99]
	if low <= high*3 {
		t.Fatalf("Zipf not skewed: low=%d high=%d", low, high)
	}
	if r.Zipf(1) != 0 {
		t.Fatal("Zipf(1) must be 0")
	}
}

func TestFork(t *testing.T) {
	a := New(42)
	f := a.Fork()
	if f.Uint64() == a.Uint64() {
		t.Fatal("forked stream mirrors parent")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
