package runq

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"ucp/internal/sim"
)

// record is one cached run on disk: the result plus enough identity
// metadata to reject records written by a different schema or model
// revision (belt-and-braces — the version stamps are already folded
// into the file's content-addressed name).
type record struct {
	Key     string     `json:"key"`
	Schema  string     `json:"schema"`
	Model   string     `json:"model"`
	Config  string     `json:"config"`
	Trace   string     `json:"trace"`
	Warmup  uint64     `json:"warmup"`
	Measure uint64     `json:"measure"`
	Result  sim.Result `json:"result"`
}

// cachePath maps a key to its record file, sharding by the first byte
// of the digest so no single directory grows unboundedly.
func (p *Pool) cachePath(key string) string {
	return filepath.Join(p.opts.CacheDir, key[:2], key+".json")
}

// loadDisk returns the cached result for key, if a valid record exists.
// Unreadable or mismatched records are treated as misses (and later
// overwritten by storeDisk), never as errors: the cache is purely an
// accelerator.
func (p *Pool) loadDisk(key string) (sim.Result, bool) {
	if p.opts.CacheDir == "" {
		return sim.Result{}, false
	}
	b, err := os.ReadFile(p.cachePath(key))
	if err != nil {
		return sim.Result{}, false
	}
	var rec record
	if err := json.Unmarshal(b, &rec); err != nil {
		return sim.Result{}, false
	}
	if rec.Key != key || rec.Schema != SchemaVersion || rec.Model != sim.ModelVersion {
		return sim.Result{}, false
	}
	return rec.Result, true
}

// storeDisk writes the record atomically (temp file + rename) so a
// concurrent reader — or a second runq process sharing the directory —
// never observes a torn record. Cache write failures are reported but
// non-fatal: the computed result is still returned to the caller.
func (p *Pool) storeDisk(key string, job Job, res sim.Result) error {
	if p.opts.CacheDir == "" {
		return nil
	}
	path := p.cachePath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("runq: cache dir: %w", err)
	}
	b, err := json.Marshal(record{
		Key:     key,
		Schema:  SchemaVersion,
		Model:   sim.ModelVersion,
		Config:  job.Config.Name,
		Trace:   job.Profile.Name,
		Warmup:  job.Warmup,
		Measure: job.Measure,
		Result:  res,
	})
	if err != nil {
		return fmt.Errorf("runq: encoding cache record: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key+".tmp-")
	if err != nil {
		return fmt.Errorf("runq: cache temp file: %w", err)
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runq: writing cache record: write=%v close=%v", werr, cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runq: committing cache record: %w", err)
	}
	return nil
}
