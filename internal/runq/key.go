package runq

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"ucp/internal/sim"
	"ucp/internal/trace"
)

// SchemaVersion stamps the cache record layout. Bumping it (or
// sim.ModelVersion, which is folded into every key alongside it)
// orphans all previously written records: they are simply never looked
// up again, so no explicit invalidation pass is needed.
const SchemaVersion = "runq-1"

// keyPayload is the canonical serialized identity of a job. It contains
// everything that determines a run's measured numbers: the full machine
// configuration (not just its display name), the complete synthetic
// workload parameterization, the instruction budgets, and the model +
// schema version stamps. Two jobs share a cache entry exactly when all
// of it matches — same-named configs with different contents, or the
// same sweep at different instruction counts, hash apart.
type keyPayload struct {
	Schema  string
	Model   string
	Config  sim.Config
	Profile trace.Profile
	Warmup  uint64
	Measure uint64
}

// Key returns the hex SHA-256 content digest addressing job's result.
// The digest is computed over the deterministic JSON encoding of the
// job's full identity; encoding/json emits struct fields in declaration
// order and contains no maps here, so the bytes are stable.
func Key(job Job) (string, error) {
	cfg := job.Config
	cfg.WarmupInsts, cfg.MeasureInsts = job.Warmup, job.Measure
	b, err := json.Marshal(keyPayload{
		Schema:  SchemaVersion,
		Model:   sim.ModelVersion,
		Config:  cfg,
		Profile: job.Profile,
		Warmup:  job.Warmup,
		Measure: job.Measure,
	})
	if err != nil {
		return "", fmt.Errorf("runq: hashing %s/%s: %w", job.Config.Name, job.Profile.Name, err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// profileKey identifies a workload parameterization for the in-process
// program cache. Profiles with equal names but different parameters map
// to different programs, so the key covers every field.
func profileKey(p trace.Profile) (string, error) {
	b, err := json.Marshal(p)
	if err != nil {
		return "", fmt.Errorf("runq: hashing profile %s: %w", p.Name, err)
	}
	return string(b), nil
}
