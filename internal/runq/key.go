package runq

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"ucp/internal/sim"
	"ucp/internal/trace"
)

// SchemaVersion stamps the cache record layout. Bumping it (or
// sim.ModelVersion, which is folded into every key alongside it)
// orphans all previously written records: they are simply never looked
// up again, so no explicit invalidation pass is needed.
const SchemaVersion = "runq-5"

// keyPayload is the canonical serialized identity of a job. It contains
// everything that determines a run's measured numbers: the full machine
// configuration (not just its display name), the complete workload
// identity — the synthetic parameterization, or a recorded trace's
// content digest — the instruction budgets, and the model + schema
// version stamps. Two jobs share a cache entry exactly when all of it
// matches — same-named configs with different contents, or the same
// sweep at different instruction counts, hash apart. Recorded traces
// are keyed by content, never by path, so a renamed (or re-recorded)
// file behaves correctly.
type keyPayload struct {
	Schema      string
	Model       string
	Config      sim.Config
	Profile     trace.Profile
	TraceDigest string
	Warmup      uint64
	Measure     uint64
	Segments    int
	Boundary    sim.BoundaryWarm
	// WindowParallel marks sampled jobs executed per-window through
	// internal/wpar. The window plan is fully determined by the sampling
	// geometry already inside Config, so the flag alone identifies the
	// mode; Segments and Boundary are normalized away for such jobs.
	WindowParallel bool
}

// Key returns the hex SHA-256 content digest addressing job's result.
// The digest is computed over the deterministic JSON encoding of the
// job's full identity; encoding/json emits struct fields in declaration
// order and contains no maps here, so the bytes are stable.
//
// Recorded-trace jobs cannot be keyed without reading the file (their
// identity is the trace content); submit them through Pool.RunAll,
// which resolves the digest against the pool's shared arena.
func Key(job Job) (string, error) {
	if job.TraceFile != "" {
		return "", fmt.Errorf("runq: %s: recorded-trace jobs are keyed by content; submit through Pool.RunAll", job.TraceFile)
	}
	return keyWith(job, "")
}

// keyWith computes the digest with the job's trace-content identity
// already resolved ("" for synthetic-profile jobs).
func keyWith(job Job, traceDigest string) (string, error) {
	cfg := job.Config
	cfg.WarmupInsts, cfg.MeasureInsts = job.Warmup, job.Measure
	// Normalize the time-parallel identity so equivalent jobs share a
	// record: the serial forms (0 and 1 segments) collapse to one key,
	// and an unset boundary warm collapses onto the default it resolves
	// to. Segmented sampled jobs run window-parallel (wpar), where the
	// geometry lives in Config.Sampling and Job.Boundary is ignored, so
	// they collapse onto WindowParallel=true with Segments and Boundary
	// zeroed — any segment count maps to the same wpar execution. The
	// parallel mode stays in the key even though the merged numbers are
	// meant to approximate the serial run — boundary warming and window
	// independence change the measured bytes, so cached results must not
	// cross those lines.
	segments := job.Segments
	boundary := job.Boundary
	windowParallel := false
	if segments <= 1 {
		segments, boundary = 0, sim.BoundaryWarm{}
	} else if cfg.Sampling.Enabled {
		windowParallel = true
		segments, boundary = 0, sim.BoundaryWarm{}
	} else if boundary == (sim.BoundaryWarm{}) {
		boundary = sim.DefaultBoundaryWarm()
	}
	b, err := json.Marshal(keyPayload{
		Schema:         SchemaVersion,
		Model:          sim.ModelVersion,
		Config:         cfg,
		Profile:        job.Profile,
		TraceDigest:    traceDigest,
		Warmup:         job.Warmup,
		Measure:        job.Measure,
		Segments:       segments,
		Boundary:       boundary,
		WindowParallel: windowParallel,
	})
	if err != nil {
		return "", fmt.Errorf("runq: hashing %s/%s: %w", job.Config.Name, job.traceLabel(), err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// profileKey identifies a workload parameterization for the in-process
// program cache. Profiles with equal names but different parameters map
// to different programs, so the key covers every field.
func profileKey(p trace.Profile) (string, error) {
	b, err := json.Marshal(p)
	if err != nil {
		return "", fmt.Errorf("runq: hashing profile %s: %w", p.Name, err)
	}
	return string(b), nil
}
