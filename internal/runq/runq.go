// Package runq schedules simulation runs across a worker pool and
// memoizes their results in a content-addressed cache — in-process
// always, on disk when a cache directory is configured.
//
// The experiment harness submits batches of (config, trace, budget)
// jobs; runq fans them out over Workers goroutines and returns results
// in submission order, so any report rendered from them is byte-for-byte
// identical at every worker count. Each distinct job is keyed by a
// SHA-256 digest of its full identity (see Key), executed at most once
// per key, and — with a cache directory — never recomputed across
// process restarts until the model or schema version stamp changes.
//
// Workers recover panics into per-job errors and retry a failed job
// once, so one broken configuration fails its own figure instead of
// taking down the whole evaluation. Progress and ETA reporting flow
// through an injected Clock: runq itself never reads the wall clock
// (the ucplint wallclock rule), the real clock is wired only in cmd/.
package runq

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"ucp/internal/ckpt"
	"ucp/internal/core"
	"ucp/internal/sim"
	"ucp/internal/tpar"
	"ucp/internal/trace"
	"ucp/internal/wpar"
)

// Job is one simulation to run: cfg over a workload at the given
// instruction budgets. The workload is the synthetic Profile, or — when
// TraceFile is non-empty — a recorded .ucpt trace, which the pool
// decodes once into a shared trace.Arena regardless of how many jobs
// reference it. Warmup/Measure override the config's own
// WarmupInsts/MeasureInsts fields.
type Job struct {
	Config    sim.Config
	Profile   trace.Profile
	TraceFile string
	Warmup    uint64
	Measure   uint64

	// Segments > 1 runs the job time-parallel. Full-detail jobs split
	// the measured region into that many trace segments (internal/tpar)
	// simulated concurrently on the pool's shared segment gate and
	// merged in segment order; sampled jobs (Config.Sampling.Enabled)
	// instead shard per measured window (internal/wpar), where the
	// window plan and boundary warm come from the sampling geometry and
	// Segments is only the opt-in switch. Parallel results differ from
	// serial ones (counter blocks become measured-region deltas and a
	// bounded boundary-warming or window-independence error applies; see
	// EXPERIMENTS.md), so the parallel mode is part of the cache key.
	// 0 and 1 are the serial engine.
	Segments int
	// Boundary overrides the boundary-warming geometry for segmented
	// full-detail runs (zero value: sim.DefaultBoundaryWarm). Sampled
	// window-parallel runs ignore it.
	Boundary sim.BoundaryWarm
}

// traceLabel names the job's workload in errors and reports.
func (j Job) traceLabel() string {
	if j.TraceFile != "" {
		return j.TraceFile
	}
	return j.Profile.Name
}

// Result provenance values for JobResult.Source.
const (
	// SourceRun marks a freshly executed simulation.
	SourceRun = "run"
	// SourceDisk marks a result replayed from the on-disk cache.
	SourceDisk = "disk"
	// SourceMemo marks a result served from the in-process memo (or
	// copied from an identical job earlier in the same batch).
	SourceMemo = "memo"
)

// JobResult pairs a job with its outcome. Exactly one of Result/Err is
// meaningful: Err != nil means the job failed (after the retry).
type JobResult struct {
	Job    Job
	Key    string
	Result sim.Result
	Err    error
	// Source records where the result came from: SourceRun, SourceDisk,
	// or SourceMemo.
	Source string
	// Attempts counts executions of this job (0 when served from a
	// cache, 2 when the first attempt panicked or errored).
	Attempts int
}

// Clock returns elapsed time since an origin chosen by the caller. It
// exists so progress/ETA reporting works without runq ever touching the
// wall clock; cmd/ wires time.Since behind it.
type Clock func() time.Duration

// Options configures a Pool.
type Options struct {
	// Workers bounds concurrent simulations (GOMAXPROCS when <= 0).
	Workers int
	// CacheDir enables the on-disk result cache when non-empty.
	CacheDir string
	// Clock supplies elapsed time for ETA estimates (nil: no ETA).
	Clock Clock
	// Progress receives scheduler progress lines (nil: silent). It must
	// not alias the report writer: progress output is nondeterministic
	// by nature (completion-ordered, timed).
	Progress io.Writer
	// UseArena decodes each synthetic workload once per (profile,
	// budget) into a shared trace.Arena and runs jobs over cheap
	// cursors, instead of walking the generator per job. Recorded-trace
	// jobs always go through a shared arena. Results are byte-identical
	// either way.
	UseArena bool
	// Checkpoints enables functional-warm checkpoint reuse for sampled
	// jobs (sim.WarmCheckpoints): jobs sharing a warm key pay the
	// sampling fast-forward once per pool instead of once per job, with
	// byte-identical results. In-memory unless CkptDir is also set.
	Checkpoints bool
	// CkptDir persists checkpoints next to the result cache so later
	// processes reuse them (implies Checkpoints).
	CkptDir string
	// CkptMaxBytes bounds CkptDir's on-disk footprint: after each
	// persisted checkpoint, least-recently-verified blobs are pruned
	// until the directory fits (0: unbounded). Boundary checkpoints
	// from time-parallel runs accumulate one blob per segment boundary,
	// so long-lived services (sweepd) should set a bound.
	CkptMaxBytes int64
	// CkptNow supplies wall time (unix nanoseconds) for the pruning
	// order's verify-stamps. Like Clock it is injected from cmd/ only;
	// nil degrades pruning to least-recently-written order.
	CkptNow func() int64
	// RunJob overrides the job execution body (nil: the real
	// simulation). It is the seam sweepd's tests use to inject slow,
	// failing, or panicking jobs; the pool still wraps it with panic
	// recovery, the retry, the memo, and the caches.
	RunJob func(Job, sim.ProgressFunc) (sim.Result, error)
}

// Stats counts what the pool did, cumulatively over its lifetime.
type Stats struct {
	// Runs counts simulations actually executed (including failed ones,
	// excluding retries).
	Runs int
	// MemoHits counts jobs served from the in-process memo.
	MemoHits int
	// DiskHits counts jobs replayed from the on-disk cache.
	DiskHits int
	// Retries counts second attempts after a panic or error.
	Retries int
	// Failures counts jobs that still failed after their retry.
	Failures int
}

// Pool executes jobs. RunAll is not reentrant — call it from one
// goroutine at a time — but RunOne is safe from any number of
// goroutines concurrently (the sweepd server's executors lean on
// this), and either may run while the other is in flight: every key is
// still executed at most once, enforced by the per-key single-flight.
type Pool struct {
	opts Options

	mu      sync.Mutex
	memo    map[string]memoEntry
	flights map[string]chan struct{}
	progs   map[string]*progEntry
	arenas  map[string]*arenaEntry
	stats   Stats
	done    int // jobs completed in the current RunAll, for progress

	// ckpts is the warm-checkpoint store shared by every sampled job
	// and every time-parallel boundary (nil when checkpoints are
	// disabled).
	ckpts *ckpt.Store

	// segGate bounds detailed-simulation concurrency across every
	// time-parallel job on this pool: each in-flight segment holds one
	// slot, so a -segments job cooperates with the worker pool instead
	// of multiplying it (workers × segments goroutines would
	// oversubscribe the host).
	segGate chan struct{}

	// runJob is the execution seam; Options.RunJob (or tests)
	// substitute failure modes.
	runJob func(Job, sim.ProgressFunc) (sim.Result, error)
}

type memoEntry struct {
	res sim.Result
	err error
}

type progEntry struct {
	once sync.Once
	prog *trace.Program
	err  error
}

type arenaEntry struct {
	once  sync.Once
	arena *trace.Arena
	err   error
}

// New builds a pool.
func New(opts Options) *Pool {
	p := &Pool{
		opts:    opts,
		memo:    make(map[string]memoEntry),
		flights: make(map[string]chan struct{}),
		progs:   make(map[string]*progEntry),
		arenas:  make(map[string]*arenaEntry),
	}
	if opts.Checkpoints || opts.CkptDir != "" {
		p.ckpts = ckpt.NewStoreLimit(opts.CkptDir, opts.CkptMaxBytes, opts.CkptNow)
	}
	p.segGate = make(chan struct{}, p.workers())
	p.runJob = p.simulate
	if opts.RunJob != nil {
		p.runJob = opts.RunJob
	}
	return p
}

// Runner is the job-execution surface the experiment harness depends
// on. A local *Pool implements it; so does the sweepd client, which is
// how every existing sweep runs remote behind a -server flag.
type Runner interface {
	// RunAll executes the batch and returns one JobResult per job in
	// submission order (see Pool.RunAll for the contract).
	RunAll(jobs []Job) []JobResult
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// CheckpointStats reports warm-checkpoint store activity: blobs held
// (one per distinct warm key exercised) and restore hits. Both are zero
// when checkpoints are disabled.
func (p *Pool) CheckpointStats() (captured, restored int) {
	if p.ckpts == nil {
		return 0, 0
	}
	return p.ckpts.Len(), p.ckpts.Hits()
}

// ArenaCount reports how many shared decoded trace arenas the pool
// holds (one per distinct recorded file or materialized synthetic
// workload) — the sweepd statz surface exposes it as the shared-tier
// footprint.
func (p *Pool) ArenaCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.arenas)
}

func (p *Pool) workers() int {
	if p.opts.Workers > 0 {
		return p.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Program returns the built program for prof, constructing it at most
// once per parameterization. Programs are immutable once built (all
// walk state lives in trace.Walker), so one instance is shared by every
// concurrent run over the same workload.
func (p *Pool) Program(prof trace.Profile) (*trace.Program, error) {
	key, err := profileKey(prof)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	e := p.progs[key]
	if e == nil {
		e = &progEntry{}
		p.progs[key] = e
	}
	p.mu.Unlock()
	e.once.Do(func() { e.prog, e.err = trace.BuildProgram(prof) })
	return e.prog, e.err
}

// arena returns the once-guarded entry for an arena cache key.
func (p *Pool) arena(key string, build func() (*trace.Arena, error)) (*trace.Arena, error) {
	p.mu.Lock()
	e := p.arenas[key]
	if e == nil {
		e = &arenaEntry{}
		p.arenas[key] = e
	}
	p.mu.Unlock()
	e.once.Do(func() { e.arena, e.err = build() })
	return e.arena, e.err
}

// FileArena returns the shared decoded arena for a recorded trace file,
// reading and decoding it at most once per pool however many jobs
// reference it. Cursors handed out by the arena are independent, so
// concurrent workers share one copy of the decoded stream.
func (p *Pool) FileArena(path string) (*trace.Arena, error) {
	return p.arena("file\x00"+path, func() (*trace.Arena, error) {
		return trace.LoadArena(path)
	})
}

// profileArena materializes a synthetic workload's stream into a shared
// arena, once per (profile parameterization, budget).
func (p *Pool) profileArena(prof trace.Profile, budget int) (*trace.Arena, error) {
	pk, err := profileKey(prof)
	if err != nil {
		return nil, err
	}
	return p.arena(fmt.Sprintf("prof\x00%s\x00%d", pk, budget), func() (*trace.Arena, error) {
		prog, err := p.Program(prof)
		if err != nil {
			return nil, err
		}
		return trace.ArenaFromSource(trace.NewLimit(trace.NewWalker(prog), budget), budget), nil
	})
}

// jobKey resolves a job's cache key, reading the trace file's content
// digest through the shared arena for recorded-trace jobs.
func (p *Pool) jobKey(job Job) (string, error) {
	if job.TraceFile == "" {
		return keyWith(job, "")
	}
	a, err := p.FileArena(job.TraceFile)
	if err != nil {
		return "", err
	}
	return keyWith(job, a.ID())
}

// RunAll executes the batch and returns one JobResult per job, in
// submission order regardless of completion order or worker count.
// Jobs with identical keys are executed once; duplicates receive a copy
// of the leader's outcome. RunAll never panics on a bad job — failures
// come back in JobResult.Err.
func (p *Pool) RunAll(jobs []Job) []JobResult {
	results := make([]JobResult, len(jobs))
	// Resolve keys; the first job with each key leads, later duplicates
	// in the same batch copy its outcome after the barrier.
	dupOf := make([]int, len(jobs))
	leader := make(map[string]int, len(jobs))
	var queue []int
	for i, j := range jobs {
		dupOf[i] = -1
		results[i] = JobResult{Job: j}
		key, err := p.jobKey(j)
		if err != nil {
			results[i].Err = err
			continue
		}
		results[i].Key = key
		if li, dup := leader[key]; dup {
			dupOf[i] = li
			continue
		}
		leader[key] = i
		queue = append(queue, i)
	}

	p.mu.Lock()
	p.done = 0
	p.mu.Unlock()
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < p.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				results[i] = p.execute(results[i])
				p.noteProgress(len(queue))
			}
		}()
	}
	for _, i := range queue {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	for i, li := range dupOf {
		if li < 0 {
			continue
		}
		results[i].Result = results[li].Result
		results[i].Err = results[li].Err
		results[i].Source = SourceMemo
	}
	return results
}

// RunOne resolves a single job with an optional per-run progress hook.
// Unlike RunAll it is safe to call from any number of goroutines
// concurrently: callers racing on the same key coalesce onto one
// execution through the pool's single-flight, and every later call is
// a memo hit. The hook observes the winning execution only — a
// coalesced caller returns when the leader publishes, without
// re-observing its stages.
func (p *Pool) RunOne(job Job, hook sim.ProgressFunc) JobResult {
	jr := JobResult{Job: job}
	key, err := p.jobKey(job)
	if err != nil {
		jr.Err = err
		return jr
	}
	jr.Key = key
	return p.executeHooked(jr, hook)
}

// execute resolves one unique job on the RunAll path (no hook).
func (p *Pool) execute(jr JobResult) JobResult {
	return p.executeHooked(jr, nil)
}

// executeHooked resolves one job: memo, then the per-key single-flight
// gate, then disk, then simulation with panic recovery and a single
// retry. RunAll's loop-spawned workers and any number of concurrent
// RunOne callers go through it; every touch of shared pool state is
// under p.mu. The single-flight extends ckpt.Store's admission pattern
// to whole jobs: the first arrival for a key becomes the leader and
// executes; everyone else blocks until the leader publishes the memo
// entry (result or error), then returns it as a memo hit.
//
//ucplint:guarded
func (p *Pool) executeHooked(jr JobResult, hook sim.ProgressFunc) JobResult {
	for {
		p.mu.Lock()
		if e, ok := p.memo[jr.Key]; ok {
			p.stats.MemoHits++
			p.mu.Unlock()
			jr.Result, jr.Err, jr.Source = e.res, e.err, SourceMemo
			return jr
		}
		flight, inFlight := p.flights[jr.Key]
		if !inFlight {
			p.flights[jr.Key] = make(chan struct{})
			p.mu.Unlock()
			break // leader: this call executes the job
		}
		p.mu.Unlock()
		<-flight
		// The leader always publishes a memo entry (even on failure)
		// before closing the flight, so the next lap resolves.
	}
	defer func() {
		p.mu.Lock()
		done := p.flights[jr.Key]
		delete(p.flights, jr.Key)
		p.mu.Unlock()
		close(done)
	}()

	if res, ok := p.loadDisk(jr.Key); ok {
		jr.Result, jr.Source = res, SourceDisk
		p.mu.Lock()
		p.stats.DiskHits++
		p.memo[jr.Key] = memoEntry{res: res}
		p.mu.Unlock()
		return jr
	}

	var res sim.Result
	var err error
	for attempt := 1; attempt <= 2; attempt++ {
		jr.Attempts = attempt
		res, err = recoverRun(p.runJob, jr.Job, hook)
		if err == nil {
			break
		}
		if attempt == 1 {
			p.mu.Lock()
			p.stats.Retries++
			p.mu.Unlock()
		}
	}
	jr.Source = SourceRun
	if err != nil {
		jr.Err = fmt.Errorf("%s on %s: %w", jr.Job.Config.Name, jr.Job.traceLabel(), err)
	} else {
		jr.Result = res
		if serr := p.storeDisk(jr.Key, jr.Job, res); serr != nil && p.opts.Progress != nil {
			fmt.Fprintf(p.opts.Progress, "runq: cache write failed: %v\n", serr)
		}
	}
	p.mu.Lock()
	p.stats.Runs++
	if err != nil {
		p.stats.Failures++
	}
	p.memo[jr.Key] = memoEntry{res: jr.Result, err: jr.Err}
	p.mu.Unlock()
	return jr
}

// recoverRun invokes run, converting a panic into an error so one bad
// configuration cannot take down the process.
func recoverRun(run func(Job, sim.ProgressFunc) (sim.Result, error), job Job, hook sim.ProgressFunc) (res sim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return run(job, hook)
}

// simulate is the real job body: resolve the workload stream (shared
// arena or per-job walker), apply the instruction budgets, and run the
// machine — serially, or parallel when Job.Segments > 1 (per-segment
// through tpar for full-detail jobs, per-window through wpar for
// sampled ones) — with warm-checkpoint reuse when the pool has a store.
func (p *Pool) simulate(job Job, hook sim.ProgressFunc) (sim.Result, error) {
	cfg := job.Config
	cfg.WarmupInsts, cfg.MeasureInsts = job.Warmup, job.Measure
	budget := int(cfg.WarmupInsts+cfg.MeasureInsts) + 200_000
	windowPar := job.Segments > 1 && cfg.Sampling.Enabled
	timePar := job.Segments > 1 && !windowPar

	var (
		newSource func() trace.Source
		code      core.CodeInfo
		traceID   string
	)
	if job.TraceFile != "" {
		a, err := p.FileArena(job.TraceFile)
		if err != nil {
			return sim.Result{}, err
		}
		newSource = func() trace.Source { return a.Cursor() }
		traceID = "file:" + a.ID()
	} else {
		prog, err := p.Program(job.Profile)
		if err != nil {
			return sim.Result{}, err
		}
		code = prog
		pk, err := profileKey(job.Profile)
		if err != nil {
			return sim.Result{}, err
		}
		// The warm-checkpoint trace identity deliberately excludes the
		// budget: the stream prefix a checkpoint replays is independent
		// of where the run's limit lies.
		traceID = "profile:" + pk
		if p.opts.UseArena || timePar || windowPar {
			// Time-parallel jobs (segment- or window-sharded) always run
			// over the shared arena, whatever Options.UseArena says:
			// segment boundaries lean on the cursor's O(1) seek, and
			// per-segment generator walks would turn every boundary
			// placement into an O(position) replay.
			a, err := p.profileArena(job.Profile, budget)
			if err != nil {
				return sim.Result{}, err
			}
			newSource = func() trace.Source { return a.Cursor() }
		} else {
			newSource = func() trace.Source { return trace.NewLimit(trace.NewWalker(prog), budget) }
		}
	}
	if windowPar {
		// Sampled jobs shard per measured window: wpar derives the window
		// plan and its boundary warm from the sampling geometry, so
		// Job.Segments is only the opt-in switch and Job.Boundary is
		// ignored (the key normalizes both away).
		return wpar.Run(cfg, newSource, code, job.traceLabel(), wpar.Options{
			Workers:     p.workers(),
			Checkpoints: p.ckpts,
			TraceID:     traceID,
			Gate:        p.segGate,
			Hook:        hook,
		})
	}
	if timePar {
		return tpar.Run(cfg, newSource, code, job.traceLabel(), tpar.Options{
			Segments:    job.Segments,
			Workers:     p.workers(),
			Warm:        job.Boundary,
			Checkpoints: p.ckpts,
			TraceID:     traceID,
			Gate:        p.segGate,
			Hook:        hook,
		})
	}
	var wc *sim.WarmCheckpoints
	if p.ckpts != nil {
		wc = &sim.WarmCheckpoints{Store: p.ckpts, TraceID: traceID}
	}
	return sim.RunHooked(cfg, newSource(), code, job.traceLabel(), wc, hook)
}

// noteProgress emits a progress/ETA line roughly every 5% of the batch
// (and at the end). Progress is observability only — it goes to the
// injected writer, never the report, and needs no determinism. Workers
// call it concurrently; the whole body runs under p.mu.
//
//ucplint:guarded
func (p *Pool) noteProgress(total int) {
	if p.opts.Progress == nil || total == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	stride := total / 20
	if stride < 1 {
		stride = 1
	}
	if p.done != total && p.done%stride != 0 {
		return
	}
	line := fmt.Sprintf("runq: %d/%d jobs (%.0f%%)", p.done, total, 100*float64(p.done)/float64(total))
	if p.opts.Clock != nil {
		elapsed := p.opts.Clock()
		line += fmt.Sprintf(" elapsed %s", elapsed.Round(100*time.Millisecond))
		if p.done < total && p.done > 0 {
			eta := time.Duration(float64(elapsed) / float64(p.done) * float64(total-p.done))
			line += fmt.Sprintf(" eta %s", eta.Round(100*time.Millisecond))
		}
	}
	fmt.Fprintln(p.opts.Progress, line)
}
