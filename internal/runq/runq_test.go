package runq

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ucp/internal/sim"
	"ucp/internal/trace"
)

func quickJobs(warm, meas uint64) []Job {
	profs := trace.QuickProfiles()
	jobs := make([]Job, len(profs))
	for i, p := range profs {
		jobs[i] = Job{Config: sim.Baseline(), Profile: p, Warmup: warm, Measure: meas}
	}
	return jobs
}

func TestKeyDistinguishesContents(t *testing.T) {
	prof := trace.QuickProfiles()[0]
	base := Job{Config: sim.Baseline(), Profile: prof, Warmup: 1000, Measure: 1000}
	k1, err := Key(base)
	if err != nil {
		t.Fatal(err)
	}
	if k2, _ := Key(base); k2 != k1 {
		t.Fatal("same job hashed to different keys")
	}

	// Same config name, different contents: the old cfg.Name+"/"+trace
	// key collided here; the digest must not.
	bigger := base
	bigger.Config.Uop.Ops = 8192
	if k2, _ := Key(bigger); k2 == k1 {
		t.Fatal("config contents not in the key")
	}

	// Different instruction budgets must hash apart.
	longer := base
	longer.Measure = 2000
	if k2, _ := Key(longer); k2 == k1 {
		t.Fatal("measure count not in the key")
	}
	warmer := base
	warmer.Warmup = 2000
	if k2, _ := Key(warmer); k2 == k1 {
		t.Fatal("warmup count not in the key")
	}

	// Different workload parameters under the same trace name too.
	tweaked := base
	tweaked.Profile.Seed++
	if k2, _ := Key(tweaked); k2 == k1 {
		t.Fatal("profile parameters not in the key")
	}

	// Sampling parameters change the measured numbers, so every field of
	// the sampling geometry must hash apart from the full-detail run and
	// from each other.
	sampled := base
	sampled.Config.Sampling = sim.SamplingConfig{
		Enabled: true, PeriodInsts: 500, DetailedInsts: 100, WarmInsts: 100,
	}
	ks, _ := Key(sampled)
	if ks == k1 {
		t.Fatal("sampling params not in the key")
	}
	regeo := sampled
	regeo.Config.Sampling.FFWarmInsts = 250
	if k2, _ := Key(regeo); k2 == ks {
		t.Fatal("sampling warm horizon not in the key")
	}

	// The adaptive fields change how many windows run, so probes of the
	// same geometry at different targets (or bounds) must hash apart —
	// a cached coarse probe must never answer for a tight one.
	adaptive := sampled
	adaptive.Config.Sampling.TargetCI = 0.02
	ka, _ := Key(adaptive)
	if ka == ks {
		t.Fatal("adaptive target not in the key")
	}
	tighter := adaptive
	tighter.Config.Sampling.TargetCI = 0.01
	if k2, _ := Key(tighter); k2 == ka {
		t.Fatal("adaptive target value not in the key")
	}
	bounded := adaptive
	bounded.Config.Sampling.MaxWindows = 16
	if k2, _ := Key(bounded); k2 == ka {
		t.Fatal("adaptive window bounds not in the key")
	}
}

func TestRunAllDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := quickJobs(20_000, 20_000)
	serial := New(Options{Workers: 1}).RunAll(jobs)
	parallel := New(Options{Workers: 8}).RunAll(jobs)
	if len(serial) != len(jobs) || len(parallel) != len(jobs) {
		t.Fatalf("result count: %d and %d, want %d", len(serial), len(parallel), len(jobs))
	}
	for i := range jobs {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("job %d failed: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Job.Profile.Name != jobs[i].Profile.Name {
			t.Fatalf("job %d out of submission order", i)
		}
		a, b := serial[i].Result.DeterminismDigest(), parallel[i].Result.DeterminismDigest()
		if a != b {
			t.Fatalf("job %d digests diverge between 1 and 8 workers:\n%s\nvs\n%s", i, a, b)
		}
	}
}

// TestAdaptiveJobsWorkerCountInvariant is the adaptive analogue of the
// worker-count test: adaptive stop decisions are per-run pure functions
// of the window-mean sequence, so a batch of adaptive jobs (sharing
// warm checkpoints) produces byte-identical reports at 1 and 8 workers.
func TestAdaptiveJobsWorkerCountInvariant(t *testing.T) {
	profs := trace.QuickProfiles()
	var jobs []Job
	for _, target := range []float64{0.05, 0.02} {
		for _, p := range profs[:2] {
			cfg := sim.Baseline()
			cfg.Sampling = sim.SamplingConfig{
				Enabled:       true,
				PeriodInsts:   25_000,
				DetailedInsts: 2_000,
				WarmInsts:     2_000,
				FFWarmInsts:   8_000,
				TargetCI:      target,
				MinWindows:    4,
			}
			jobs = append(jobs, Job{Config: cfg, Profile: p, Warmup: 50_000, Measure: 400_000})
		}
	}
	serial := New(Options{Workers: 1, Checkpoints: true}).RunAll(jobs)
	parallel := New(Options{Workers: 8, Checkpoints: true}).RunAll(jobs)
	for i := range jobs {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("job %d failed: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		a, b := serial[i].Result.DeterminismDigest(), parallel[i].Result.DeterminismDigest()
		if a != b {
			t.Fatalf("adaptive job %d digests diverge between 1 and 8 workers:\n%s\nvs\n%s", i, a, b)
		}
		if serial[i].Result.Sampled == nil || serial[i].Result.Sampled.TargetCI == 0 {
			t.Fatalf("adaptive job %d carries no adaptive provenance", i)
		}
	}
}

func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jobs := quickJobs(20_000, 20_000)[:1]

	cold := New(Options{Workers: 2, CacheDir: dir}).RunAll(jobs)
	if cold[0].Err != nil {
		t.Fatal(cold[0].Err)
	}
	if cold[0].Source != SourceRun {
		t.Fatalf("cold source = %q, want %q", cold[0].Source, SourceRun)
	}

	// A fresh pool (fresh process, in effect) must replay from disk and
	// reproduce the exact determinism digest, histograms included.
	warm := New(Options{Workers: 2, CacheDir: dir}).RunAll(jobs)
	if warm[0].Err != nil {
		t.Fatal(warm[0].Err)
	}
	if warm[0].Source != SourceDisk {
		t.Fatalf("warm source = %q, want %q", warm[0].Source, SourceDisk)
	}
	if warm[0].Result.DeterminismDigest() != cold[0].Result.DeterminismDigest() {
		t.Fatal("disk round trip changed the result")
	}
}

func TestMemoAndBatchDedup(t *testing.T) {
	p := New(Options{Workers: 4})
	jobs := quickJobs(10_000, 10_000)[:1]
	// Two identical jobs in one batch: one execution, one copy.
	batch := append(append([]Job(nil), jobs...), jobs...)
	rs := p.RunAll(batch)
	if rs[0].Err != nil || rs[1].Err != nil {
		t.Fatalf("errs: %v %v", rs[0].Err, rs[1].Err)
	}
	if rs[1].Source != SourceMemo {
		t.Fatalf("duplicate source = %q, want %q", rs[1].Source, SourceMemo)
	}
	if got := p.Stats().Runs; got != 1 {
		t.Fatalf("%d runs for two identical jobs, want 1", got)
	}
	// A later batch hits the in-process memo.
	again := p.RunAll(jobs)
	if again[0].Source != SourceMemo {
		t.Fatalf("repeat source = %q, want %q", again[0].Source, SourceMemo)
	}
	if got := p.Stats(); got.Runs != 1 || got.MemoHits != 1 {
		t.Fatalf("stats after repeat: %+v", got)
	}
	if again[0].Result.DeterminismDigest() != rs[0].Result.DeterminismDigest() {
		t.Fatal("memo changed the result")
	}
}

func TestBadConfigFailsItsJobOnly(t *testing.T) {
	jobs := quickJobs(10_000, 10_000)[:2]
	jobs[0].Config.RASEntries = 0 // rejected by sim.Config.Validate
	rs := New(Options{Workers: 2}).RunAll(jobs)
	if rs[0].Err == nil {
		t.Fatal("invalid config did not fail")
	}
	if !strings.Contains(rs[0].Err.Error(), "RASEntries") {
		t.Fatalf("error lost the cause: %v", rs[0].Err)
	}
	if rs[0].Attempts != 2 {
		t.Fatalf("failed job ran %d times, want 2 (retry-once)", rs[0].Attempts)
	}
	if rs[1].Err != nil {
		t.Fatalf("healthy sibling job failed: %v", rs[1].Err)
	}
}

func TestPanicRecoveryAndRetry(t *testing.T) {
	jobs := quickJobs(10_000, 10_000)[:1]

	// Panic on the first attempt, succeed on the second.
	p := New(Options{Workers: 1})
	real := p.runJob
	calls := 0
	p.runJob = func(j Job, hook sim.ProgressFunc) (sim.Result, error) {
		calls++
		if calls == 1 {
			panic("transient fault")
		}
		return real(j, hook)
	}
	rs := p.RunAll(jobs)
	if rs[0].Err != nil {
		t.Fatalf("retry did not rescue the job: %v", rs[0].Err)
	}
	if rs[0].Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", rs[0].Attempts)
	}
	if st := p.Stats(); st.Retries != 1 || st.Failures != 0 {
		t.Fatalf("stats: %+v", st)
	}

	// Panic on both attempts: a per-job error, not a process crash.
	p2 := New(Options{Workers: 1})
	p2.runJob = func(Job, sim.ProgressFunc) (sim.Result, error) { panic("hard fault") }
	rs2 := p2.RunAll(jobs)
	if rs2[0].Err == nil || !strings.Contains(rs2[0].Err.Error(), "panic: hard fault") {
		t.Fatalf("panic not converted to error: %v", rs2[0].Err)
	}
	if st := p2.Stats(); st.Failures != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestProgressReporting(t *testing.T) {
	var sb strings.Builder
	var fake time.Duration
	p := New(Options{
		Workers:  2,
		Clock:    func() time.Duration { fake += time.Second; return fake },
		Progress: &sb,
	})
	p.runJob = func(Job, sim.ProgressFunc) (sim.Result, error) { return sim.Result{Name: "x"}, nil }
	profs := trace.QuickProfiles()
	var jobs []Job
	for i := 0; i < 4; i++ {
		j := Job{Config: sim.Baseline(), Profile: profs[i%len(profs)], Warmup: uint64(i), Measure: 1}
		jobs = append(jobs, j)
	}
	p.RunAll(jobs)
	out := sb.String()
	if !strings.Contains(out, "4/4 jobs (100%)") {
		t.Fatalf("no completion line:\n%s", out)
	}
	if !strings.Contains(out, "elapsed") {
		t.Fatalf("no elapsed time despite injected clock:\n%s", out)
	}
	if !strings.Contains(out, "eta") {
		t.Fatalf("no eta on intermediate lines:\n%s", out)
	}
}

func TestErrorMemoization(t *testing.T) {
	p := New(Options{Workers: 1})
	calls := 0
	wantErr := errors.New("boom")
	p.runJob = func(Job, sim.ProgressFunc) (sim.Result, error) { calls++; return sim.Result{}, wantErr }
	jobs := quickJobs(10, 10)[:1]
	first := p.RunAll(jobs)
	second := p.RunAll(jobs)
	if first[0].Err == nil || second[0].Err == nil {
		t.Fatal("error not propagated")
	}
	if calls != 2 { // one job, retried once; the repeat batch memo-hits
		t.Fatalf("runJob called %d times, want 2", calls)
	}
	if second[0].Source != SourceMemo {
		t.Fatalf("repeat failure source = %q, want memo", second[0].Source)
	}
}
