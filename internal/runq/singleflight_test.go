package runq

import (
	"sync"
	"sync/atomic"
	"testing"

	"ucp/internal/sim"
)

// TestRunOneSingleFlight pins the pool-level single-flight: N
// goroutines racing RunOne on the same key must produce exactly one
// execution, with everyone else coalescing onto the leader's published
// result. This is the in-process half of the sweepd cross-client dedup
// contract (the HTTP half lives in internal/sweepd's tests).
func TestRunOneSingleFlight(t *testing.T) {
	const callers = 16
	var execs atomic.Int32
	gate := make(chan struct{})
	p := New(Options{
		RunJob: func(Job, sim.ProgressFunc) (sim.Result, error) {
			execs.Add(1)
			<-gate // hold the flight open until every caller has arrived
			return sim.Result{Name: "sf", IPC: 1.5}, nil
		},
	})
	jobs := quickJobs(1000, 1000)[:1]

	var started, finished sync.WaitGroup
	results := make([]JobResult, callers)
	for i := 0; i < callers; i++ {
		started.Add(1)
		finished.Add(1)
		go func(i int) {
			defer finished.Done()
			started.Done()
			results[i] = p.RunOne(jobs[0], nil)
		}(i)
	}
	started.Wait()
	close(gate)
	finished.Wait()

	if n := execs.Load(); n != 1 {
		t.Fatalf("runJob executed %d times under %d concurrent RunOne calls, want 1", n, callers)
	}
	for i, jr := range results {
		if jr.Err != nil {
			t.Fatalf("caller %d: %v", i, jr.Err)
		}
		if jr.Result.Name != "sf" || jr.Result.IPC != 1.5 {
			t.Fatalf("caller %d got a different result: %+v", i, jr.Result)
		}
	}
	st := p.Stats()
	if st.Runs != 1 {
		t.Fatalf("stats.Runs = %d, want 1", st.Runs)
	}
	if st.MemoHits != callers-1 {
		t.Fatalf("stats.MemoHits = %d, want %d", st.MemoHits, callers-1)
	}
}

// TestRunOneFailurePublishes pins that a leader failing (after its
// retry) still releases coalesced waiters with the memoized error
// instead of deadlocking the flight.
func TestRunOneFailurePublishes(t *testing.T) {
	var execs atomic.Int32
	p := New(Options{
		RunJob: func(Job, sim.ProgressFunc) (sim.Result, error) {
			execs.Add(1)
			panic("injected fault")
		},
	})
	jobs := quickJobs(1000, 1000)[:1]

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = p.RunOne(jobs[0], nil).Err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("caller %d: expected the memoized failure, got nil", i)
		}
	}
	// One leader, two attempts; everyone else memo-hits the error.
	if n := execs.Load(); n != 2 {
		t.Fatalf("runJob executed %d times, want 2 (one leader, one retry)", n)
	}
}

// TestRunOneProgressHook pins that a real (tiny) simulation drives the
// warming → measuring stage sequence through the hook.
func TestRunOneProgressHook(t *testing.T) {
	p := New(Options{})
	jobs := quickJobs(5_000, 5_000)[:1]
	var stages []string
	jr := p.RunOne(jobs[0], func(pr sim.Progress) {
		if n := len(stages); n == 0 || stages[n-1] != pr.Stage {
			stages = append(stages, pr.Stage)
		}
	})
	if jr.Err != nil {
		t.Fatalf("RunOne: %v", jr.Err)
	}
	want := []string{sim.StageWarming, sim.StageMeasuring}
	if len(stages) != len(want) || stages[0] != want[0] || stages[1] != want[1] {
		t.Fatalf("stage sequence %v, want %v", stages, want)
	}
}
