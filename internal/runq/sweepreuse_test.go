package runq

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ucp/internal/sim"
	"ucp/internal/trace"
)

// sampledJobs builds a small sweep of sampled jobs over one profile
// whose configs differ only in measurement-phase parameters, so they
// all share one warm-checkpoint key.
func sampledJobs(n int) []Job {
	prof := trace.QuickProfiles()[0]
	jobs := make([]Job, n)
	for i := range jobs {
		cfg := sim.Baseline()
		cfg.Name = strings.Repeat("v", i+1)
		cfg.Backend.ROB += i * 32
		cfg.Sampling = sim.SamplingConfig{
			Enabled: true, PeriodInsts: 25_000, DetailedInsts: 2_000,
			WarmInsts: 4_000, FFWarmInsts: 8_000,
		}
		jobs[i] = Job{Config: cfg, Profile: prof, Warmup: 50_000, Measure: 50_000}
	}
	return jobs
}

// digests runs jobs on a pool and returns their determinism digests,
// failing the test on any job error.
func digests(t *testing.T, p *Pool, jobs []Job) []string {
	t.Helper()
	rs := p.RunAll(jobs)
	out := make([]string, len(rs))
	for i, r := range rs {
		if r.Err != nil {
			t.Fatalf("job %d failed: %v", i, r.Err)
		}
		out[i] = r.Result.DeterminismDigest()
	}
	return out
}

// TestArenaResultsMatchWalker pins that routing synthetic workloads
// through a shared arena is outcome-neutral: every digest matches the
// per-job walker path, for full-detail and sampled jobs alike.
func TestArenaResultsMatchWalker(t *testing.T) {
	jobs := append(quickJobs(20_000, 20_000), sampledJobs(2)...)
	walked := digests(t, New(Options{Workers: 2}), jobs)
	arena := New(Options{Workers: 2, UseArena: true})
	for i, d := range digests(t, arena, jobs) {
		if d != walked[i] {
			t.Errorf("job %d: arena digest diverges from walker digest", i)
		}
	}
	// The two sampled jobs share (profile, budget), and the full-detail
	// quick jobs cover distinct profiles: one arena per distinct stream.
	want := len(trace.QuickProfiles()) + 1
	if got := len(arena.arenas); got != want {
		t.Errorf("pool built %d arenas, want %d (one per distinct stream)", got, want)
	}
}

// TestCheckpointReuseAcrossJobs pins the sweep-reuse guarantee at the
// pool level: a sweep of configs sharing a warm key produces digests
// byte-identical to a pool without checkpoints, while capturing the
// fast-forward exactly once.
func TestCheckpointReuseAcrossJobs(t *testing.T) {
	jobs := sampledJobs(3)
	cold := digests(t, New(Options{Workers: 2}), jobs)
	p := New(Options{Workers: 2, UseArena: true, Checkpoints: true})
	for i, d := range digests(t, p, jobs) {
		if d != cold[i] {
			t.Errorf("job %d: checkpointed digest diverges from cold digest", i)
		}
	}
	if got := p.ckpts.Len(); got != 1 {
		t.Errorf("sweep captured %d checkpoints, want 1 (shared warm key)", got)
	}
}

// TestFileTraceJobs covers recorded-trace jobs end to end: the pool
// decodes the file once into a shared arena however many jobs reference
// it, keys results by trace content (not path), and refuses to key such
// jobs without the pool's arena.
func TestFileTraceJobs(t *testing.T) {
	prog, err := trace.BuildProgram(trace.QuickProfiles()[0])
	if err != nil {
		t.Fatal(err)
	}
	insts := trace.Collect(trace.NewWalker(prog), 60_000)
	dir := t.TempDir()
	path := filepath.Join(dir, "t.ucpt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCompact(f, insts); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	mk := func(name string) Job {
		cfg := sim.Baseline()
		cfg.Name = name
		return Job{Config: cfg, TraceFile: path, Warmup: 10_000, Measure: 20_000}
	}
	if _, err := Key(mk("a")); err == nil {
		t.Error("Key accepted a recorded-trace job without its content digest")
	}

	p := New(Options{Workers: 2})
	ds := digests(t, p, []Job{mk("a"), mk("b")})
	if ds[0] == ds[1] {
		// Name differs, so the digests differ; equality would mean the
		// second job aliased the first's result.
		t.Error("distinct configs over one file returned one result")
	}
	if got := len(p.arenas); got != 1 {
		t.Errorf("two file jobs built %d arenas, want 1", got)
	}

	// Content keying: the same bytes under another path share a key.
	path2 := filepath.Join(dir, "renamed.ucpt")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path2, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	j1, j2 := mk("a"), mk("a")
	j2.TraceFile = path2
	k1, err := p.jobKey(j1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := p.jobKey(j2)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("identical trace content keyed apart under different paths")
	}
}
