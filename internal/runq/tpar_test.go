package runq

import (
	"testing"

	"ucp/internal/sim"
	"ucp/internal/trace"
)

// TestKeyNormalizesTimeParIdentity pins the cache-key contract for
// time-parallel jobs: both serial spellings (0 and 1 segments) share
// one key, an unset boundary warm keys like the default it resolves to,
// and a segmented job never shares a record with its serial twin —
// boundary warming changes the measured bytes.
func TestKeyNormalizesTimeParIdentity(t *testing.T) {
	base := Job{Config: sim.Baseline(), Profile: trace.QuickProfiles()[0], Warmup: 1000, Measure: 1000}
	k0, err := Key(base)
	if err != nil {
		t.Fatal(err)
	}
	one := base
	one.Segments = 1
	if k1, _ := Key(one); k1 != k0 {
		t.Error("Segments=1 keys apart from Segments=0; both are the serial engine")
	}
	strayBoundary := base
	strayBoundary.Boundary = sim.DefaultBoundaryWarm()
	if kb, _ := Key(strayBoundary); kb != k0 {
		t.Error("Boundary on a serial job leaks into the key")
	}

	seg := base
	seg.Segments = 4
	ks, _ := Key(seg)
	if ks == k0 {
		t.Error("segmented job shares a key with its serial twin")
	}
	segDefault := seg
	segDefault.Boundary = sim.DefaultBoundaryWarm()
	if kd, _ := Key(segDefault); kd != ks {
		t.Error("zero Boundary keys apart from the default it resolves to")
	}
	segOther := seg
	segOther.Boundary = sim.BoundaryWarm{DetailedInsts: 2_000, FFInsts: 8_000}
	if ko, _ := Key(segOther); ko == ks {
		t.Error("boundary-warm geometry not in the key")
	}
	segMore := seg
	segMore.Segments = 8
	if km, _ := Key(segMore); km == ks {
		t.Error("segment count not in the key")
	}
}

// TestSegmentedJobsDeterministicAcrossWorkerCounts is the pool-level
// tentpole bar: segmented jobs must produce byte-identical digests
// whether the pool runs one worker or eight — worker goroutines and
// segment goroutines both reorder freely underneath.
func TestSegmentedJobsDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := quickJobs(20_000, 20_000)
	for i := range jobs {
		jobs[i].Segments = 4
		jobs[i].Boundary = sim.BoundaryWarm{DetailedInsts: 2_000, FFInsts: 8_000}
	}
	serial := New(Options{Workers: 1}).RunAll(jobs)
	parallel := New(Options{Workers: 8}).RunAll(jobs)
	for i := range jobs {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("job %d failed: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Result.TimePar == nil || serial[i].Result.TimePar.Segments != 4 {
			t.Fatalf("job %d is not time-parallel: TimePar = %+v", i, serial[i].Result.TimePar)
		}
		a, b := serial[i].Result.DeterminismDigest(), parallel[i].Result.DeterminismDigest()
		if a != b {
			t.Fatalf("job %d digests diverge between 1 and 8 workers:\n%s\nvs\n%s", i, a, b)
		}
	}
}

// TestSegmentedDiskCacheRoundTrip: a segmented result — TimePar block,
// summed histograms and all — must survive the on-disk result cache and
// replay byte-identically in a fresh pool.
func TestSegmentedDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jobs := quickJobs(20_000, 20_000)[:1]
	jobs[0].Segments = 4
	jobs[0].Boundary = sim.BoundaryWarm{DetailedInsts: 2_000, FFInsts: 8_000}

	cold := New(Options{Workers: 2, CacheDir: dir}).RunAll(jobs)
	if cold[0].Err != nil {
		t.Fatal(cold[0].Err)
	}
	if cold[0].Source != SourceRun {
		t.Fatalf("cold source = %q, want %q", cold[0].Source, SourceRun)
	}
	warm := New(Options{Workers: 2, CacheDir: dir}).RunAll(jobs)
	if warm[0].Err != nil {
		t.Fatal(warm[0].Err)
	}
	if warm[0].Source != SourceDisk {
		t.Fatalf("warm source = %q, want %q", warm[0].Source, SourceDisk)
	}
	if warm[0].Result.DeterminismDigest() != cold[0].Result.DeterminismDigest() {
		t.Fatal("disk round trip changed the segmented result")
	}
}
