package runq

import (
	"testing"

	"ucp/internal/sim"
)

// sampledQuickJobs builds quick-profile jobs with a cheap 4-window
// sampled geometry over the given budgets.
func sampledQuickJobs(warm, meas uint64) []Job {
	jobs := quickJobs(warm, meas)
	for i := range jobs {
		jobs[i].Config.Sampling = sim.SamplingConfig{
			Enabled:       true,
			PeriodInsts:   meas / 4,
			DetailedInsts: 2_000,
			WarmInsts:     2_000,
			FFWarmInsts:   5_000,
		}
	}
	return jobs
}

// TestKeyNormalizesWindowParIdentity pins the cache-key contract for
// sampled parallel jobs: any Segments > 1 collapses onto the one
// window-parallel execution (the window plan lives in Config.Sampling),
// a stray Boundary is ignored, and window-parallel never shares a
// record with the serial sampled run — window independence changes the
// measured bytes.
func TestKeyNormalizesWindowParIdentity(t *testing.T) {
	base := sampledQuickJobs(1000, 8000)[0]
	k0, err := Key(base)
	if err != nil {
		t.Fatal(err)
	}
	wp := base
	wp.Segments = 4
	kw, _ := Key(wp)
	if kw == k0 {
		t.Error("window-parallel sampled job shares a key with its serial twin")
	}
	wpMore := wp
	wpMore.Segments = 8
	if km, _ := Key(wpMore); km != kw {
		t.Error("segment count leaks into the window-parallel key; the window plan comes from the sampling geometry")
	}
	wpBoundary := wp
	wpBoundary.Boundary = sim.DefaultBoundaryWarm()
	if kb, _ := Key(wpBoundary); kb != kw {
		t.Error("Boundary on a window-parallel job leaks into the key; wpar ignores it")
	}
	geom := wp
	geom.Config.Sampling.DetailedInsts = 1_000
	geom.Config.Sampling.WarmInsts = 1_000
	if kg, _ := Key(geom); kg == kw {
		t.Error("sampling geometry not in the window-parallel key")
	}
}

// TestSampledSegmentedJobsDeterministicAcrossWorkerCounts is the
// pool-level tentpole bar for the sampled composition: sampled jobs
// with Segments > 1 route through wpar and must produce byte-identical
// digests whether the pool runs one worker or eight.
func TestSampledSegmentedJobsDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := sampledQuickJobs(10_000, 40_000)
	for i := range jobs {
		jobs[i].Segments = 4
	}
	serial := New(Options{Workers: 1}).RunAll(jobs)
	parallel := New(Options{Workers: 8}).RunAll(jobs)
	for i := range jobs {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("job %d failed: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Result.Sampled == nil || serial[i].Result.Sampled.Windows != 4 {
			t.Fatalf("job %d is not window-parallel sampled: Sampled = %+v", i, serial[i].Result.Sampled)
		}
		if serial[i].Result.TimePar == nil || serial[i].Result.TimePar.Segments != 4 {
			t.Fatalf("job %d carries no window provenance: TimePar = %+v", i, serial[i].Result.TimePar)
		}
		a, b := serial[i].Result.DeterminismDigest(), parallel[i].Result.DeterminismDigest()
		if a != b {
			t.Fatalf("job %d digests diverge between 1 and 8 workers:\n%s\nvs\n%s", i, a, b)
		}
	}
}

// TestSampledSegmentedDiskCacheRoundTrip: a window-parallel result —
// Sampled and TimePar blocks both populated — must survive the on-disk
// result cache and replay byte-identically in a fresh pool.
func TestSampledSegmentedDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jobs := sampledQuickJobs(10_000, 40_000)[:1]
	jobs[0].Segments = 4

	cold := New(Options{Workers: 2, CacheDir: dir}).RunAll(jobs)
	if cold[0].Err != nil {
		t.Fatal(cold[0].Err)
	}
	if cold[0].Source != SourceRun {
		t.Fatalf("cold source = %q, want %q", cold[0].Source, SourceRun)
	}
	warm := New(Options{Workers: 2, CacheDir: dir}).RunAll(jobs)
	if warm[0].Err != nil {
		t.Fatal(warm[0].Err)
	}
	if warm[0].Source != SourceDisk {
		t.Fatalf("warm source = %q, want %q", warm[0].Source, SourceDisk)
	}
	if warm[0].Result.DeterminismDigest() != cold[0].Result.DeterminismDigest() {
		t.Fatal("disk round trip changed the window-parallel result")
	}
}

// TestSerialSampledUnaffectedBySegmentsField: Segments <= 1 on a
// sampled job stays on the serial sampled engine regardless of the
// trace source mode.
func TestSerialSampledUnaffectedBySegmentsField(t *testing.T) {
	jobs := sampledQuickJobs(10_000, 40_000)[:1]
	r0 := New(Options{Workers: 1}).RunAll(jobs)
	jobs[0].Segments = 1
	r1 := New(Options{Workers: 1}).RunAll(jobs)
	if r0[0].Err != nil || r1[0].Err != nil {
		t.Fatalf("serial sampled runs failed: %v / %v", r0[0].Err, r1[0].Err)
	}
	if r0[0].Result.TimePar != nil {
		t.Fatalf("serial sampled run grew a TimePar block: %+v", r0[0].Result.TimePar)
	}
	if r0[0].Result.DeterminismDigest() != r1[0].Result.DeterminismDigest() {
		t.Fatal("Segments=1 changed the serial sampled result")
	}
}
