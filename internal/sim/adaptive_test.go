package sim_test

import (
	"strings"
	"testing"

	"ucp/internal/core"
	"ucp/internal/sim"
)

// adaptiveQuick is quickSampling with the confidence-targeted stop rule
// on: a loose 10% relative target that crypto-class traces hit within a
// few windows, leaving plenty of budget to stop early against.
func adaptiveQuick(target float64) sim.SamplingConfig {
	s := quickSampling()
	s.TargetCI = target
	s.MinWindows = 4
	return s
}

// TestAdaptiveDeterministic pins the adaptive analogue of
// TestSampledDeterministic: the stop decision is a pure function of the
// window-mean sequence, so two passes produce byte-identical digests —
// including the adaptive provenance line.
func TestAdaptiveDeterministic(t *testing.T) {
	mk := func() string {
		cfg := sim.WithUCP(core.DefaultConfig())
		cfg.WarmupInsts = 50_000
		cfg.MeasureInsts = 500_000
		cfg.Sampling = adaptiveQuick(0.10)
		return runOnce(t, "crypto01", cfg).DeterminismDigest()
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("adaptive digests differ:\n%s\n---\n%s", a, b)
	}
	if !strings.Contains(a, "sampled adaptive target=") {
		t.Errorf("adaptive digest missing the adaptive provenance line:\n%s", a)
	}
}

// TestAdaptiveStopsEarly is the point of the mode: on a low-variance
// trace a loose target stops well short of the fixed schedule, and the
// windows it did measure are a strict prefix of the fixed-geometry run
// (same geometry, same stream — adaptive only decides when to stop).
func TestAdaptiveStopsEarly(t *testing.T) {
	cfg := sim.Baseline()
	cfg.WarmupInsts = 50_000
	cfg.MeasureInsts = 500_000
	cfg.Sampling = quickSampling()
	fixed := runOnce(t, "crypto01", cfg)

	cfg.Sampling = adaptiveQuick(0.10)
	adaptive := runOnce(t, "crypto01", cfg)

	fs, as := fixed.Sampled, adaptive.Sampled
	if fs == nil || as == nil {
		t.Fatal("missing SampledStats")
	}
	if as.Windows >= fs.Windows {
		t.Fatalf("adaptive ran %d windows, fixed %d — expected an early stop", as.Windows, fs.Windows)
	}
	if !as.TargetMet {
		t.Errorf("adaptive stopped early without reporting TargetMet")
	}
	if as.WindowBudget != fs.Windows {
		t.Errorf("WindowBudget %d, fixed schedule ran %d", as.WindowBudget, fs.Windows)
	}
	if as.IPCCI95 > as.TargetCI*as.IPCMean {
		t.Errorf("claimed half-width %.6f exceeds target %.6f·mean(%.4f)", as.IPCCI95, as.TargetCI, as.IPCMean)
	}
	if as.Windows < 4 {
		t.Errorf("stopped below MinWindows: %d windows", as.Windows)
	}
	for i, v := range as.WindowIPC {
		if fs.WindowIPC[i] != v {
			t.Fatalf("window %d IPC %.9f differs from fixed run's %.9f — adaptive must be a prefix", i, v, fs.WindowIPC[i])
		}
	}
	if fixed.Sampled.TargetCI != 0 || fixed.Sampled.WindowBudget != 0 {
		t.Errorf("fixed-geometry run carries adaptive provenance: %+v", fs)
	}
}

// TestAdaptiveUnmeetableTargetExhaustsBudget pins the other stop path:
// a target no real trace meets runs the whole fixed schedule (or the
// MaxWindows cap) and reports TargetMet=false with an honest (wide)
// interval.
func TestAdaptiveUnmeetableTargetExhaustsBudget(t *testing.T) {
	cfg := sim.Baseline()
	cfg.WarmupInsts = 50_000
	cfg.MeasureInsts = 250_000
	s := quickSampling()
	s.TargetCI = 0.0001
	s.MinWindows = 2
	cfg.Sampling = s
	r := runOnce(t, "srv203", cfg)
	if r.Sampled.TargetMet {
		t.Errorf("0.01%% target reported met at %d windows", r.Sampled.Windows)
	}
	if r.Sampled.Windows != r.Sampled.WindowBudget {
		t.Errorf("exhausted run measured %d of %d budget windows", r.Sampled.Windows, r.Sampled.WindowBudget)
	}

	s.MaxWindows = 3
	s.MinWindows = 2
	cfg.Sampling = s
	r = runOnce(t, "srv203", cfg)
	if r.Sampled.Windows != 3 {
		t.Errorf("MaxWindows=3 run measured %d windows", r.Sampled.Windows)
	}
}

// TestTrailingRemainderWindow pins the geometry fix: a MeasureInsts
// that is not a multiple of PeriodInsts gets one extra trailing window
// over the remainder when the remainder can hold warm+measure, and is
// rejected by Validate when it cannot — never silently dropped.
func TestTrailingRemainderWindow(t *testing.T) {
	cfg := sim.Baseline()
	cfg.WarmupInsts = 50_000
	cfg.MeasureInsts = 200_000
	cfg.Sampling = quickSampling() // 25k period: 8 aligned windows
	aligned := runOnce(t, "crypto01", cfg)
	if got := aligned.Sampled.Windows; got != 8 {
		t.Fatalf("aligned run measured %d windows, want 8", got)
	}

	// 10k remainder ≥ warm+measure (4k+2k): a 9th trailing window.
	cfg.MeasureInsts = 210_000
	trailing := runOnce(t, "crypto01", cfg)
	if got := trailing.Sampled.Windows; got != 9 {
		t.Fatalf("remainder run measured %d windows, want 9", got)
	}
	if trailing.Sampled.MeasuredInsts <= aligned.Sampled.MeasuredInsts {
		t.Errorf("trailing window added no measured instructions: %d vs %d",
			trailing.Sampled.MeasuredInsts, aligned.Sampled.MeasuredInsts)
	}

	// 1k remainder < warm+measure: rejected, not dropped.
	cfg.MeasureInsts = 201_000
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted a remainder too short for a trailing window")
	} else if !strings.Contains(err.Error(), "remainder") {
		t.Errorf("unexpected error for short remainder: %v", err)
	}
}

// TestAdaptiveValidate pins the adaptive config bounds.
func TestAdaptiveValidate(t *testing.T) {
	base := func() sim.Config {
		cfg := sim.Baseline()
		cfg.WarmupInsts = 10_000
		cfg.MeasureInsts = 100_000
		cfg.Sampling = sim.SamplingConfig{
			Enabled:       true,
			PeriodInsts:   20_000,
			DetailedInsts: 2_000,
			WarmInsts:     2_000,
			TargetCI:      0.02,
			MinWindows:    2,
		}
		return cfg
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid adaptive config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*sim.Config)
	}{
		{"negative target", func(c *sim.Config) { c.Sampling.TargetCI = -0.01 }},
		{"implausibly loose target", func(c *sim.Config) { c.Sampling.TargetCI = 0.6 }},
		{"min windows of one", func(c *sim.Config) { c.Sampling.MinWindows = 1 }},
		{"negative min windows", func(c *sim.Config) { c.Sampling.MinWindows = -1 }},
		{"negative max windows", func(c *sim.Config) { c.Sampling.MaxWindows = -1 }},
		{"min exceeds max", func(c *sim.Config) {
			c.Sampling.MinWindows = 6
			c.Sampling.MaxWindows = 5
		}},
		{"bounds without target", func(c *sim.Config) {
			c.Sampling.TargetCI = 0
			c.Sampling.MinWindows = 4
		}},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid adaptive config", tc.name)
		}
	}
}
