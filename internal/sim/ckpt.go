package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"ucp/internal/backend"
	"ucp/internal/ckpt"
	"ucp/internal/core"
	"ucp/internal/frontend"
	"ucp/internal/trace"
)

// This file connects the sampled controller to internal/ckpt: the end
// state of the initial fast-forward (the WarmupInsts region, which a
// config sweep repeats per variant even though most variants share it)
// is captured once per warm key and restored everywhere else. The warm
// key hashes exactly the inputs the fast-forward depends on — trace
// identity, sampling warming geometry, and the config subset the
// functional path touches — so two configs that differ only in
// measurement-phase parameters (measurement length, backend sizing, a
// UCP walk threshold) share one checkpoint, and restored runs are
// byte-identical to cold ones.

// WarmCheckpoints attaches a checkpoint store to a run. TraceID must
// identify the instruction stream exactly: generated traces use the
// profile identity, file traces the trace digest (trace.Arena.ID).
type WarmCheckpoints struct {
	Store   *ckpt.Store
	TraceID string
}

// WarmKeySchema versions the warm-checkpoint key derivation itself.
// Bump it when the normalization below changes, so old on-disk
// checkpoints become unreachable rather than wrongly shared. Exported
// so the cmd binaries' -version output can stamp it (debugging
// checkpoint compatibility across sweepd servers and clients).
const WarmKeySchema = "ucp-ckpt-1"

// warmConfig strips cfg down to the fields the initial fast-forward can
// observe. Everything zeroed here is provably untouched on the
// functional-warm path (frontend/functional.go, backend/functional.go,
// core/functional.go, cache/warm.go):
//
//   - Name, MeasureInsts: labeling and measurement length.
//   - Frontend: FTQ/queue/width sizing — the fetch engine never runs.
//   - Backend: ROB/port sizing — functional commit only counts.
//   - L1IPrefetcher, MRC: timing mechanisms, explicitly not driven.
//   - Sampling period geometry: only the warming horizons shape the
//     fast-forward; the per-window fields govern the measured region.
//
// The UCP config reduces to the alternate predictors that shadow-train
// during warming (AltBP, UseAltInd, AltInd) plus engine presence;
// walk-path parameters (Estimator, StopThreshold, queue sizing, ...)
// only matter once detailed windows start.
func warmConfig(cfg Config) Config {
	cfg.Name = ""
	cfg.MeasureInsts = 0
	cfg.Frontend = frontend.Config{}
	cfg.Backend = backend.Config{}
	cfg.L1IPrefetcher = ""
	cfg.MRC = nil
	cfg.Sampling.PeriodInsts = 0
	cfg.Sampling.DetailedInsts = 0
	cfg.Sampling.WarmInsts = 0
	// The adaptive stop rule only governs how many measured windows
	// run; the initial fast-forward is identical at every target, so
	// refinement probes at progressively tighter TargetCI all share one
	// warm checkpoint — that sharing is what makes autopilot refinement
	// rounds nearly free.
	cfg.Sampling.TargetCI = 0
	cfg.Sampling.MinWindows = 0
	cfg.Sampling.MaxWindows = 0
	if cfg.UCP != nil {
		cfg.UCP = &core.Config{
			AltBP:     cfg.UCP.AltBP,
			UseAltInd: cfg.UCP.UseAltInd,
			AltInd:    cfg.UCP.AltInd,
		}
	}
	return cfg
}

// WarmKey derives the content address of cfg's functional-warm
// checkpoint over the given trace. Keys are hex SHA-256, compatible
// with the store's sharded layout.
func WarmKey(cfg Config, traceID string) string {
	env := struct {
		Schema string
		Model  string
		Trace  string
		Config Config
	}{WarmKeySchema, ModelVersion, traceID, warmConfig(cfg)}
	b, err := json.Marshal(env)
	if err != nil {
		// Config is a plain data struct; Marshal cannot fail on it.
		panic("sim: warm key marshal: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// captureWarm serializes the machine's functional-warm state at the end
// of the initial fast-forward: the stream position split (skipped vs
// functionally committed), the backend's commit counters, and every
// structure the warm path mutates. State not saved here is exactly the
// state the fast-forward never touches, which a freshly constructed
// machine already holds.
func (m *Machine) captureWarm(skipped, ffTotal uint64) []byte {
	w := ckpt.NewWriter()
	w.Section("machine")
	w.Uvarint(skipped)
	w.Uvarint(ffTotal)
	w.Uvarint(m.cycle)
	w.Uvarint(m.be.Committed)
	w.Uvarint(m.be.LoadsIssued)
	w.Uvarint(m.be.StoreIssued)
	m.fe.SaveWarmState(w)
	w.Bool(m.ucp != nil)
	if m.ucp != nil {
		m.ucp.SaveWarmState(w)
	}
	return w.Seal()
}

// restoreWarm rebuilds the capture-point state on a freshly constructed
// machine: it replays the trace to the captured position (relearning
// LearnedCode through the observing wrapper on recorded traces — an
// arena cursor or generator fast path makes this a seek), then loads
// every serialized structure. The restored machine is bit-equal to one
// that ran the fast-forward itself, so all downstream results are
// byte-identical.
func (m *Machine) restoreWarm(blob []byte) (skipped, ffTotal uint64, err error) {
	r, err := ckpt.Open(blob)
	if err != nil {
		return 0, 0, err
	}
	r.Section("machine")
	skipped = r.Uvarint()
	ffTotal = r.Uvarint()
	cycle := r.Uvarint()
	committed := r.Uvarint()
	loads := r.Uvarint()
	stores := r.Uvarint()
	if err := r.Err(); err != nil {
		return 0, 0, err
	}
	pos := skipped + committed
	if got := uint64(trace.SkipN(m.src, int(pos))); got != pos {
		return 0, 0, fmt.Errorf("sim: trace ended replaying checkpoint position (%d of %d)", got, pos)
	}
	m.fe.LoadWarmState(r)
	hasUCP := r.Bool()
	if r.Err() == nil && hasUCP != (m.ucp != nil) {
		r.Failf("machine: checkpoint UCP presence %v, machine %v", hasUCP, m.ucp != nil)
	}
	if m.ucp != nil && r.Err() == nil {
		m.ucp.LoadWarmState(r)
	}
	if err := r.Close(); err != nil {
		return 0, 0, err
	}
	m.cycle = cycle
	m.be.Committed = committed
	m.be.LoadsIssued = loads
	m.be.StoreIssued = stores
	return skipped, ffTotal, nil
}
