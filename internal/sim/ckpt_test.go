package sim_test

import (
	"testing"

	"ucp/internal/backend"
	"ucp/internal/bpred"
	"ucp/internal/ckpt"
	"ucp/internal/core"
	"ucp/internal/prefetch"
	"ucp/internal/sim"
	"ucp/internal/trace"
)

// ckptConfig is a sampled configuration small enough for unit tests but
// with every warming tier engaged, so a checkpoint carries non-trivial
// state through all of them.
func ckptConfig(withUCP bool) sim.Config {
	cfg := sim.Baseline()
	if withUCP {
		cfg = sim.WithUCP(core.DefaultConfig())
	}
	cfg.WarmupInsts = 50_000
	cfg.MeasureInsts = 100_000
	cfg.Sampling = quickSampling()
	return cfg
}

// ckptSource builds a fresh generated source for one run. code is nil
// for UCP configs so the restore path exercises the observing wrapper
// (LearnedCode must be relearned during position replay).
func ckptSource(t *testing.T, cfg sim.Config, withUCP bool) (trace.Source, core.CodeInfo) {
	t.Helper()
	prof, ok := trace.ProfileByName("srv203")
	if !ok {
		t.Fatal("profile srv203 missing")
	}
	prog, err := trace.BuildProgram(prof)
	if err != nil {
		t.Fatalf("building program: %v", err)
	}
	budget := int(cfg.WarmupInsts+cfg.MeasureInsts) + 200_000
	src := trace.NewLimit(trace.NewWalker(prog), budget)
	if withUCP {
		return src, nil
	}
	return src, prog
}

// TestCkptRestoredMatchesCold pins the central reuse guarantee: a run
// that restores the warmup fast-forward from a checkpoint produces a
// determinism digest byte-identical to a run that pays it, for both the
// baseline machine and a UCP machine on the learned-code path.
func TestCkptRestoredMatchesCold(t *testing.T) {
	for _, withUCP := range []bool{false, true} {
		cfg := ckptConfig(withUCP)
		run := func(wc *sim.WarmCheckpoints) string {
			src, code := ckptSource(t, cfg, withUCP)
			res, err := sim.RunCkpt(cfg, src, code, "srv203", wc)
			if err != nil {
				t.Fatalf("ucp=%v: run failed: %v", withUCP, err)
			}
			return res.DeterminismDigest()
		}
		cold := run(nil)
		store := ckpt.NewStore("")
		wc := &sim.WarmCheckpoints{Store: store, TraceID: "srv203-test"}
		leader := run(wc)
		if store.Len() != 1 {
			t.Fatalf("ucp=%v: store holds %d checkpoints, want 1", withUCP, store.Len())
		}
		restored := run(wc)
		if leader != cold {
			t.Errorf("ucp=%v: leader (capturing) digest differs from cold run", withUCP)
		}
		if restored != cold {
			t.Errorf("ucp=%v: restored digest differs from cold run:\n%s\n---\n%s", withUCP, restored, cold)
		}
	}
}

// TestCkptDiskRoundTrip pins that a checkpoint persisted by one store
// restores identically through a second store on the same directory —
// the cross-process sweep case.
func TestCkptDiskRoundTrip(t *testing.T) {
	cfg := ckptConfig(true)
	dir := t.TempDir()
	run := func(store *ckpt.Store) string {
		src, code := ckptSource(t, cfg, true)
		res, err := sim.RunCkpt(cfg, src, code, "srv203",
			&sim.WarmCheckpoints{Store: store, TraceID: "srv203-test"})
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		return res.DeterminismDigest()
	}
	first := run(ckpt.NewStore(dir))
	second := ckpt.NewStore(dir)
	if got := run(second); got != first {
		t.Errorf("disk-restored digest differs from capturing run")
	}
	if second.Len() != 1 {
		t.Errorf("second store memoized %d checkpoints, want 1 (disk hit)", second.Len())
	}
}

// TestWarmKeyNormalization pins which config fields share a warm key.
// Measurement-phase parameters must not split keys (that is the whole
// point of the reuse), and anything the fast-forward can observe must.
func TestWarmKeyNormalization(t *testing.T) {
	base := ckptConfig(true)
	key := sim.WarmKey(base, "tr")

	shared := map[string]func(*sim.Config){
		"Name":              func(c *sim.Config) { c.Name = "other" },
		"MeasureInsts":      func(c *sim.Config) { c.MeasureInsts *= 2 },
		"Backend":           func(c *sim.Config) { c.Backend = backend.Config{ROB: 1} },
		"L1IPrefetcher":     func(c *sim.Config) { c.L1IPrefetcher = "fnlmma" },
		"MRC":               func(c *sim.Config) { c.MRC = &prefetch.MRCConfig{} },
		"UCP.StopThreshold": func(c *sim.Config) { u := *c.UCP; u.StopThreshold++; c.UCP = &u },
		"UCP.Estimator":     func(c *sim.Config) { u := *c.UCP; u.Estimator = bpred.EstimatorTageConf; c.UCP = &u },
		"Sampling.Period":   func(c *sim.Config) { c.Sampling.PeriodInsts *= 2 },
	}
	for name, mut := range shared {
		c := base
		mut(&c)
		if sim.WarmKey(c, "tr") != key {
			t.Errorf("changing %s split the warm key; the fast-forward cannot observe it", name)
		}
	}

	split := map[string]func(*sim.Config){
		"Pred":                 func(c *sim.Config) { c.Pred = bpred.Config8KB() },
		"WarmupInsts":          func(c *sim.Config) { c.WarmupInsts++ },
		"Sampling.FFWarmInsts": func(c *sim.Config) { c.Sampling.FFWarmInsts *= 2 },
		"UCP presence":         func(c *sim.Config) { c.UCP = nil },
		"UCP.AltBP":            func(c *sim.Config) { u := *c.UCP; u.AltBP = bpred.Config64KB(); c.UCP = &u },
		"InclusiveUop":         func(c *sim.Config) { c.InclusiveUop = true },
	}
	for name, mut := range split {
		c := base
		mut(&c)
		if sim.WarmKey(c, "tr") == key {
			t.Errorf("changing %s kept the warm key; the fast-forward observes it", name)
		}
	}
	if sim.WarmKey(base, "other-trace") == key {
		t.Error("different trace IDs share a warm key")
	}
}

// TestCkptForeignBlobRejected plants a structurally valid checkpoint
// captured under one machine geometry beneath another geometry's key
// (simulating a key-derivation bug or a tampered cache directory) and
// pins that the restore fails loudly instead of loading skewed state.
func TestCkptForeignBlobRejected(t *testing.T) {
	cfgA := ckptConfig(false)
	store := ckpt.NewStore("")
	wcA := &sim.WarmCheckpoints{Store: store, TraceID: "srv203-test"}
	src, code := ckptSource(t, cfgA, false)
	if _, err := sim.RunCkpt(cfgA, src, code, "srv203", wcA); err != nil {
		t.Fatalf("capturing run failed: %v", err)
	}
	blobA, hit, _ := store.Acquire(sim.WarmKey(cfgA, wcA.TraceID))
	if !hit {
		t.Fatal("capturing run published nothing")
	}

	// A different predictor geometry has differently sized tables, so
	// loading blobA must fail the length checks.
	cfgB := ckptConfig(false)
	cfgB.Pred = bpred.Config8KB()
	keyB := sim.WarmKey(cfgB, wcA.TraceID)
	_, hit, release := store.Acquire(keyB)
	if hit {
		t.Fatal("foreign key unexpectedly present")
	}
	release(blobA)

	src, code = ckptSource(t, cfgB, false)
	if _, err := sim.RunCkpt(cfgB, src, code, "srv203", wcA); err == nil {
		t.Fatal("restore from a foreign-geometry checkpoint succeeded; want geometry error")
	}
}
