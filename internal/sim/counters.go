package sim

import (
	"fmt"
	"reflect"
)

// Counter-block arithmetic for the time-parallel merge path: segment
// results carry measured-region deltas of the flat uint64 stats blocks
// (frontend.Stats, uopcache.Stats, core.Stats, cache.Stats), and the
// merge sums them back together. Both helpers walk the struct by
// reflection so a newly added counter field is picked up automatically;
// any non-uint64, non-struct field is a programming error and panics at
// first use (the sim package's own tests exercise every block).

// SubCounters returns the field-wise difference b−a over every uint64
// counter in T, recursing into nested structs (bpred.H2PStats inside
// frontend.Stats). T must consist exclusively of uint64 fields and
// nested structs of the same shape.
func SubCounters[T any](a, b T) T {
	var out T
	subCounters(reflect.ValueOf(&out).Elem(), reflect.ValueOf(a), reflect.ValueOf(b))
	return out
}

func subCounters(dst, a, b reflect.Value) {
	switch a.Kind() {
	case reflect.Uint64:
		dst.SetUint(b.Uint() - a.Uint())
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			subCounters(dst.Field(i), a.Field(i), b.Field(i))
		}
	default:
		panic(fmt.Sprintf("sim: SubCounters: unsupported field kind %s in %s", a.Kind(), a.Type()))
	}
}

// AddCounters adds src into dst field-wise over every uint64 counter in
// T, with the same shape contract as SubCounters. Integer addition is
// exact and commutative, so accumulating per-segment deltas in any
// grouping produces identical bits — the property the time-parallel
// merge relies on (and the ucplint mergeorder rule checks for floats).
func AddCounters[T any](dst *T, src T) {
	addCounters(reflect.ValueOf(dst).Elem(), reflect.ValueOf(src))
}

func addCounters(dst, src reflect.Value) {
	switch src.Kind() {
	case reflect.Uint64:
		dst.SetUint(dst.Uint() + src.Uint())
	case reflect.Struct:
		for i := 0; i < src.NumField(); i++ {
			addCounters(dst.Field(i), src.Field(i))
		}
	default:
		panic(fmt.Sprintf("sim: AddCounters: unsupported field kind %s in %s", src.Kind(), src.Type()))
	}
}
