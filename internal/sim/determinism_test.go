package sim_test

import (
	"strings"
	"testing"

	"ucp/internal/core"
	"ucp/internal/sim"
	"ucp/internal/trace"
)

// digestOnce regenerates the synthetic program from the profile seed
// and runs a short seeded simulation, returning the full stats digest.
func digestOnce(t *testing.T, profName string, insts uint64) string {
	t.Helper()
	prof, ok := trace.ProfileByName(profName)
	if !ok {
		t.Fatalf("unknown profile %q", profName)
	}
	prog, err := trace.BuildProgram(prof)
	if err != nil {
		t.Fatalf("building %s: %v", profName, err)
	}
	cfg := sim.WithUCP(core.DefaultConfig())
	cfg.WarmupInsts = insts / 2
	cfg.MeasureInsts = insts - insts/2
	src := trace.NewLimit(trace.NewWalker(prog), int(insts)+100_000)
	res, err := sim.Run(cfg, src, prog, profName)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return res.DeterminismDigest()
}

// TestDeterministicDigest is the in-process version of the
// `ucplint -determinism` harness: two complete simulations from the
// same seed must produce byte-identical stats digests. Any wall-clock,
// global-rand, or map-order dependence anywhere in the pipeline breaks
// this test.
func TestDeterministicDigest(t *testing.T) {
	const insts = 30_000
	a := digestOnce(t, "srv203", insts)
	b := digestOnce(t, "srv203", insts)
	if a != b {
		al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
		n := min(len(al), len(bl))
		for i := 0; i < n; i++ {
			if al[i] != bl[i] {
				t.Fatalf("digests diverge at line %d:\n  run1: %s\n  run2: %s", i+1, al[i], bl[i])
			}
		}
		t.Fatalf("digests differ in length: %d vs %d lines", len(al), len(bl))
	}
	if len(a) == 0 {
		t.Fatal("digest is empty; Result.DeterminismDigest renders nothing")
	}
}

// TestDigestCoversHistograms guards the digest's coverage: the two
// frontend histograms must appear, otherwise a nondeterministic render
// path could slip past the harness.
func TestDigestCoversHistograms(t *testing.T) {
	d := digestOnce(t, "srv203", 20_000)
	for _, want := range []string{"stream length", "refill latency", "ipc=", "insts="} {
		if !strings.Contains(d, want) {
			t.Errorf("digest missing %q section", want)
		}
	}
}
