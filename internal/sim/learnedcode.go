package sim

import "ucp/internal/isa"

// LearnedCode is a CodeInfo that learns instruction classes from the
// dynamic stream. It backs UCP's alternate decode path when a run is
// driven by a recorded trace file rather than a generated Program
// (hardware inspects real bytes; a trace file only reveals a static
// instruction once it has been fetched at least once).
type LearnedCode struct {
	classes map[uint64]isa.Class
}

// NewLearnedCode returns an empty map.
func NewLearnedCode() *LearnedCode {
	return &LearnedCode{classes: make(map[uint64]isa.Class, 1<<16)}
}

// Observe records one dynamic instruction.
func (l *LearnedCode) Observe(in *isa.Inst) {
	l.classes[in.PC] = in.Class
}

// ClassAt implements core.CodeInfo.
func (l *LearnedCode) ClassAt(pc uint64) (isa.Class, bool) {
	c, ok := l.classes[pc]
	if !ok {
		return isa.ALU, false
	}
	return c, true
}

// Known returns the number of learned static instructions.
func (l *LearnedCode) Known() int { return len(l.classes) }

// observingSource wraps a trace source, feeding every instruction into
// a LearnedCode before handing it to the consumer.
//
// It must NOT implement trace.BatchSource: the frontend would then read
// whole batches ahead of the simulated fetch stream, and every
// batched-ahead instruction would reach LearnedCode.Observe cycles
// early. Observe timing is architecturally visible (it gates when the
// µ-op splitter first knows an instruction's class), so an early
// Observe changes simulated outcomes and breaks the determinism
// digest. Keeping this wrapper scalar-only makes the frontend fall back
// to per-instruction Next, which observes in exact fetch order.
type observingSource struct {
	src interface {
		Next() (isa.Inst, bool)
		Reset()
	}
	code *LearnedCode
}

// Next implements trace.Source.
func (o *observingSource) Next() (isa.Inst, bool) {
	in, ok := o.src.Next()
	if ok {
		o.code.Observe(&in)
	}
	return in, ok
}

// Reset implements trace.Source.
func (o *observingSource) Reset() { o.src.Reset() }
