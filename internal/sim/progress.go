package sim

// Run-stage names reported through ProgressFunc. A run moves
// warming → measuring; schedulers layer their own queued/done states
// around it (internal/sweepd's job lifecycle).
const (
	// StageWarming covers the warmup region: the initial fast-forward
	// in sampled mode, the detailed warmup loop in full-detail mode.
	StageWarming = "warming"
	// StageMeasuring covers the measured region. In sampled mode the
	// window counters advance once per completed measurement window;
	// full-detail runs report a single 0/1 → 1/1 window.
	StageMeasuring = "measuring"
	// StageRefining covers the adaptive tail of a sampled run: the
	// controller has reached its minimum window count and is adding
	// windows only until the confidence target is met, reporting the
	// current relative half-width alongside the window counters.
	StageRefining = "refining"
)

// Progress is one observability-only stage notification from a running
// simulation. Hooks must never feed back into simulated outcomes (runs
// are byte-identical with and without a hook — the stop decision in
// adaptive mode is a pure function of the window-mean sequence, never
// of anything a hook does); they exist so long-running jobs can stream
// queued → warming → measuring → refining transitions, window counts,
// and the shrinking half-width to a caller (progress bars, the sweepd
// event stream).
type Progress struct {
	// Stage is StageWarming, StageMeasuring, or StageRefining.
	Stage string
	// WindowsDone / WindowsTotal count completed measurement windows.
	// Full-detail runs report totals of 1; sampled runs report the
	// window budget from the sampling geometry (in adaptive mode the
	// run may stop well short of the total).
	WindowsDone int
	// WindowsTotal is 0 while it cannot be known yet.
	WindowsTotal int
	// HalfWidth is the current relative 95% half-width of the window
	// IPC mean (half / mean), reported only in StageRefining; 0
	// elsewhere.
	HalfWidth float64
}

// ProgressFunc receives stage notifications. Hooks run synchronously on
// the simulating goroutine — keep them cheap and never block.
type ProgressFunc func(Progress)

// note emits a notification through a possibly-nil hook.
func (hook ProgressFunc) note(stage string, done, total int) {
	if hook != nil {
		hook(Progress{Stage: stage, WindowsDone: done, WindowsTotal: total})
	}
}

// noteHalf is note with the refining stage's relative half-width.
func (hook ProgressFunc) noteHalf(stage string, done, total int, half float64) {
	if hook != nil {
		hook(Progress{Stage: stage, WindowsDone: done, WindowsTotal: total, HalfWidth: half})
	}
}
