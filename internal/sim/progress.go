package sim

// Run-stage names reported through ProgressFunc. A run moves
// warming → measuring; schedulers layer their own queued/done states
// around it (internal/sweepd's job lifecycle).
const (
	// StageWarming covers the warmup region: the initial fast-forward
	// in sampled mode, the detailed warmup loop in full-detail mode.
	StageWarming = "warming"
	// StageMeasuring covers the measured region. In sampled mode the
	// window counters advance once per completed measurement window;
	// full-detail runs report a single 0/1 → 1/1 window.
	StageMeasuring = "measuring"
)

// Progress is one observability-only stage notification from a running
// simulation. It carries no measured quantities: hooks must never feed
// back into simulated outcomes (runs are byte-identical with and
// without a hook), they exist so long-running jobs can stream
// queued → warming → measuring transitions and window counts to a
// caller (progress bars, the sweepd event stream).
type Progress struct {
	// Stage is StageWarming or StageMeasuring.
	Stage string
	// WindowsDone / WindowsTotal count completed measurement windows.
	// Full-detail runs report totals of 1; sampled runs report the
	// period count from the sampling geometry.
	WindowsDone int
	// WindowsTotal is 0 while it cannot be known yet.
	WindowsTotal int
}

// ProgressFunc receives stage notifications. Hooks run synchronously on
// the simulating goroutine — keep them cheap and never block.
type ProgressFunc func(Progress)

// note emits a notification through a possibly-nil hook.
func (hook ProgressFunc) note(stage string, done, total int) {
	if hook != nil {
		hook(Progress{Stage: stage, WindowsDone: done, WindowsTotal: total})
	}
}
