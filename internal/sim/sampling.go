package sim

import (
	"fmt"
	"math"

	"ucp/internal/ckpt"
	"ucp/internal/core"
	"ucp/internal/stats"
	"ucp/internal/trace"
)

// This file is the sampled simulation mode (SMARTS-style): instead of
// cycle-simulating the whole warmup + measurement region, the
// controller alternates
//
//	warming skip → functional-warm → detailed-warm → measured window
//
// once per PeriodInsts. The warming skip (trace.SkipWarmN) covers the
// bulk of each gap: the trace generator advances its own state machine
// without materializing instructions, reporting only fetch-line
// crossings and load/store addresses so cache and TLB residency stays
// current — the large, slow-to-warm state that dominates sampling bias.
// The functional path (FunctionalCommit on frontend/backend,
// FunctionalObserve on the UCP engine) then commits the last
// FFWarmInsts instructions before each window in program order,
// retraining the small fast-warming structures — branch predictors with
// architectural outcomes, BTB, RAS, ITTAGE, the µ-op cache build path —
// at a fraction of detailed cost. IPC/MPKI are estimated from the
// measured windows with Student-t 95% confidence intervals.

// SamplingConfig configures the sampled simulation mode. All counts are
// instructions. Each period of PeriodInsts ends with WarmInsts of
// detailed (unmeasured) pipeline warming followed by DetailedInsts of
// measured detailed execution; the rest of the period is fast-forwarded.
//
//ucplint:config
type SamplingConfig struct {
	// Enabled turns sampling on. Off by default: full-detail runs are
	// byte-identical to a build without this mode.
	Enabled bool

	// PeriodInsts is the sampling period: one measured window per
	// period, so MeasureInsts/PeriodInsts windows per run.
	PeriodInsts uint64

	// DetailedInsts is the measured window length.
	DetailedInsts uint64

	// WarmInsts precede every measured window in detailed-but-unmeasured
	// mode, refilling pipeline/queue timing state that the functional
	// path does not model.
	WarmInsts uint64

	// FFWarmInsts bounds the functional-warming horizon: only the last
	// FFWarmInsts instructions before each detailed segment run through
	// the functional path, and everything earlier in the gap goes
	// through the warming skip (trace.SkipWarmN) — the direction
	// predictor trains on every conditional outcome, cache/TLB demand
	// state advances inside the CacheWarmInsts horizon, and the BTB,
	// RAS, ITTAGE, and µ-op cache do not advance at all. 0 means no
	// skipping: the entire gap is functionally warmed (most accurate,
	// but bounded to ~2× over full detail since the functional path
	// still materializes and trains on every instruction).
	FFWarmInsts uint64

	// CacheWarmInsts bounds the cache-warming horizon of the skip: only
	// the last CacheWarmInsts skipped instructions before the
	// functional-warm horizon report their memory footprint (fetch
	// lines, load/store addresses) into the cache/TLB hierarchy.
	// 0 means the entire skipped span is cache-warmed — required when
	// the trace's working set turns over structures with long rebuild
	// times (the LLC in particular: its residency reflects roughly a
	// million instructions of history). Ignored when FFWarmInsts is 0
	// (nothing is skipped).
	CacheWarmInsts uint64

	// BPWarmInsts bounds the direction-predictor training horizon of
	// the skip: only the last BPWarmInsts skipped instructions before
	// the functional-warm horizon train the direction predictor(s);
	// anything earlier is skipped outright with no model updates at
	// all, at trace-generator speed. 0 means the whole skipped span
	// trains the predictor — required when predictor accuracy is still
	// converging at the measured scale (large-footprint server traces);
	// small-footprint traces whose tables converge early can bound this
	// and gain another several× of speedup, since per-branch training
	// dominates the skip cost. When both horizons are bounded the
	// cache-warm zone must fit inside the predictor-training zone.
	BPWarmInsts uint64

	// TargetCI, when positive, switches the controller to adaptive
	// window counts: instead of always measuring every window of the
	// fixed MeasureInsts/PeriodInsts schedule, the run stops as soon as
	// the relative 95% half-width of the window-IPC mean (Student-t,
	// half/mean) drops to TargetCI or below. The fixed schedule is the
	// budget — adaptive runs never measure more windows than fixed
	// geometry would, only fewer — so MeasureInsts should over-provision
	// the region when a tight target matters. The stop decision is
	// evaluated on a pinned geometric schedule (first at MinWindows,
	// then every ~25% more windows, adaptiveSchedule below) and is a
	// pure function of the window-IPC sequence, so digests stay
	// deterministic at every worker count.
	TargetCI float64

	// MinWindows is the first stop-evaluation point (adaptive only):
	// no run terminates with fewer measured windows. 0 means the
	// DefaultMinWindows floor; 1 is rejected by Validate — a single
	// window has an infinite half-width and can never satisfy a target,
	// so terminating there would always be a bug.
	MinWindows int

	// MaxWindows, when positive, caps the adaptive window count below
	// the fixed schedule's budget (adaptive only). 0 means the full
	// MeasureInsts/PeriodInsts budget.
	MaxWindows int
}

// DefaultMinWindows is the adaptive controller's floor on measured
// windows when MinWindows is 0: early stop evaluations on a handful of
// windows see an unstable variance estimate, and the pinned schedule's
// sequential-look correction argument (DESIGN.md) assumes the first
// look already has a few degrees of freedom behind it.
const DefaultMinWindows = 8

// ConservativeSampling returns a sampling geometry that is safe on
// every workload: the whole gap outside the functional-warm horizon
// goes through the warming skip with unbounded cache warming and
// predictor training (CacheWarmInsts = BPWarmInsts = 0), so no
// long-history state is ever dropped. Measured ~3-6× over full detail
// at under 2% IPC error on the large-footprint server traces.
func ConservativeSampling() SamplingConfig {
	return SamplingConfig{
		Enabled:       true,
		PeriodInsts:   500_000,
		DetailedInsts: 5_000,
		WarmInsts:     5_000,
		FFWarmInsts:   50_000,
	}
}

// FastSampling returns the bounded-horizon geometry for small-footprint
// traces whose working set fits well inside the LLC and whose predictor
// tables converge early (the crypto profiles): beyond the warming
// horizons the skip runs at trace-generator speed. Measured ≥10× over
// full detail at well under 1% IPC error on crypto01 — the check.sh
// sampling gate pins exactly this geometry — but biased by up to tens
// of percent on traces with LLC-scale data reuse; prefer
// ConservativeSampling when unsure.
func FastSampling() SamplingConfig {
	return SamplingConfig{
		Enabled:        true,
		PeriodInsts:    833_000,
		DetailedInsts:  5_000,
		WarmInsts:      5_000,
		FFWarmInsts:    25_000,
		CacheWarmInsts: 50_000,
		BPWarmInsts:    100_000,
	}
}

// Validate bounds the sampling geometry. The cross-field constraint
// against MeasureInsts (at least one full period) lives in
// Config.Validate.
func (s SamplingConfig) Validate() error {
	if !s.Enabled {
		return nil
	}
	if s.PeriodInsts == 0 {
		return fmt.Errorf("sim: Sampling.PeriodInsts must be positive")
	}
	if s.PeriodInsts > 1<<40 {
		return fmt.Errorf("sim: Sampling.PeriodInsts %d is implausibly large", s.PeriodInsts)
	}
	if s.DetailedInsts < 1000 {
		return fmt.Errorf("sim: Sampling.DetailedInsts must be at least 1000 (window boundaries are commit-based; shorter windows are dominated by in-flight transients), got %d", s.DetailedInsts)
	}
	if s.WarmInsts+s.DetailedInsts > s.PeriodInsts {
		return fmt.Errorf("sim: Sampling.WarmInsts+DetailedInsts (%d+%d) exceed PeriodInsts %d",
			s.WarmInsts, s.DetailedInsts, s.PeriodInsts)
	}
	if s.FFWarmInsts > 1<<40 {
		return fmt.Errorf("sim: Sampling.FFWarmInsts %d is implausibly large", s.FFWarmInsts)
	}
	if s.CacheWarmInsts > 1<<40 {
		return fmt.Errorf("sim: Sampling.CacheWarmInsts %d is implausibly large", s.CacheWarmInsts)
	}
	if s.BPWarmInsts > 1<<40 {
		return fmt.Errorf("sim: Sampling.BPWarmInsts %d is implausibly large", s.BPWarmInsts)
	}
	if s.BPWarmInsts > 0 && (s.CacheWarmInsts == 0 || s.CacheWarmInsts > s.BPWarmInsts) {
		return fmt.Errorf("sim: Sampling.CacheWarmInsts (%d) must be bounded within BPWarmInsts (%d): an unwarmed cache zone inside the predictor-training zone inverts the warming pyramid",
			s.CacheWarmInsts, s.BPWarmInsts)
	}
	if s.TargetCI < 0 {
		return fmt.Errorf("sim: Sampling.TargetCI must be non-negative, got %g", s.TargetCI)
	}
	if s.TargetCI > 0.5 {
		return fmt.Errorf("sim: Sampling.TargetCI %g is implausibly loose (a ±50%% interval bounds nothing useful)", s.TargetCI)
	}
	if s.TargetCI == 0 && (s.MinWindows != 0 || s.MaxWindows != 0) {
		return fmt.Errorf("sim: Sampling.MinWindows/MaxWindows require TargetCI (adaptive mode); fixed geometry derives its window count from MeasureInsts")
	}
	if s.MinWindows < 0 || s.MaxWindows < 0 {
		return fmt.Errorf("sim: Sampling.MinWindows/MaxWindows must be non-negative, got %d/%d", s.MinWindows, s.MaxWindows)
	}
	if s.TargetCI > 0 && s.MinWindows == 1 {
		return fmt.Errorf("sim: Sampling.MinWindows must be at least 2 (a single window has an infinite half-width and can never meet a target), got 1")
	}
	if s.MaxWindows > 0 && s.MinWindows > s.MaxWindows {
		return fmt.Errorf("sim: Sampling.MinWindows %d exceeds MaxWindows %d", s.MinWindows, s.MaxWindows)
	}
	return nil
}

// Adaptive reports whether the confidence-targeted controller is on.
func (s SamplingConfig) Adaptive() bool { return s.Enabled && s.TargetCI > 0 }

// adaptiveSchedule returns the next pinned stop-evaluation point after
// a look at n windows: roughly 25% more windows, at least one. Pinning
// the evaluation points (a group-sequential design, DESIGN.md) bounds
// the number of sequential looks to O(log n) so the optional-stopping
// inflation of the claimed CI stays small; evaluating after every
// window would inflate it far more.
func adaptiveSchedule(n int) int { return n + max(1, n/4) }

// SampleWindows returns the measured-window schedule of the sampling
// geometry over [WarmupInsts, WarmupInsts+MeasureInsts): one spec per
// full period whose [Start, End) is the measured span (the WarmInsts of
// detailed warming precede Start and are not part of the span), plus a
// trailing window over the remainder when MeasureInsts is not
// period-aligned (Config.Validate rejects remainders too short to hold
// the warm+measure tail). The serial sampled controller and the
// window-parallel executor (internal/wpar) both derive their window
// positions from this one function, so the schedule cannot drift
// between them.
func (c Config) SampleWindows() []SegmentSpec {
	s := c.Sampling
	budget := int(c.MeasureInsts / s.PeriodInsts)
	rem := c.MeasureInsts % s.PeriodInsts
	if rem > 0 {
		budget++
	}
	specs := make([]SegmentSpec, budget)
	for k := range specs {
		end := c.WarmupInsts + uint64(k+1)*s.PeriodInsts
		if rem > 0 && k == budget-1 {
			end = c.WarmupInsts + c.MeasureInsts
		}
		specs[k] = SegmentSpec{Index: k, Start: end - s.DetailedInsts, End: end}
	}
	return specs
}

// BoundaryWarm maps the sampling geometry's warming horizons onto the
// per-boundary warming geometry RunSegment applies: the per-window
// detailed warm becomes the boundary's detailed warm and the
// functional/cache/predictor horizons carry over unchanged. This is the
// bridge the window-parallel executor crosses — a sampled window is
// exactly a RunSegment over the measured span with this warm — and it
// also makes window boundaries share checkpoint content addresses
// (sim.BoundaryKey) with full-detail segment boundaries placed at the
// same position under the same horizons.
func (s SamplingConfig) BoundaryWarm() BoundaryWarm {
	return BoundaryWarm{
		DetailedInsts: s.WarmInsts,
		FFInsts:       s.FFWarmInsts,
		CacheInsts:    s.CacheWarmInsts,
		BPInsts:       s.BPWarmInsts,
	}
}

// AdaptiveStop is the confidence-targeted controller's stop rule: a
// one-pass Welford accumulator over the window IPCs, evaluated only at
// the pinned group-sequential schedule points. It is a pure function of
// the window-(insts, cycles) sequence observed in window-index order —
// no machine state, no wall clock — which is precisely why the serial
// sampled controller and the window-parallel executor (internal/wpar,
// which observes speculatively simulated windows through a reorder
// buffer) stop at exactly the same window. Both use this one type.
type AdaptiveStop struct {
	s        SamplingConfig
	minW     int
	run      stats.Running
	nextEval int
	seen     int
}

// NewAdaptiveStop builds the stop rule for a run capped at maxW
// windows. For non-adaptive geometries Observe never stops; the
// accumulator still runs so callers can report interval estimates.
func NewAdaptiveStop(s SamplingConfig, maxW int) *AdaptiveStop {
	minW := s.MinWindows
	if minW == 0 {
		minW = DefaultMinWindows
	}
	if minW > maxW {
		minW = maxW
	}
	return &AdaptiveStop{s: s, minW: minW, nextEval: minW}
}

// Min returns the first stop-evaluation point (the MinWindows floor
// clamped to the window cap).
func (a *AdaptiveStop) Min() int { return a.minW }

// Rel returns the current relative 95% half-width of the window-IPC
// mean (+Inf while undefined) without observing a window — progress
// reporting for executors that fold windows out of band.
func (a *AdaptiveStop) Rel() float64 {
	mean, half := a.run.CI95()
	if mean > 0 && !math.IsInf(half, 1) {
		return half / mean
	}
	return math.Inf(1)
}

// Observe folds one measured window — strictly the next one in window
// order — and returns the current relative 95% half-width of the
// window-IPC mean (+Inf while undefined) plus whether the pinned
// schedule says to stop after this window. Zero-cycle windows
// contribute no IPC observation, matching the serial controller.
func (a *AdaptiveStop) Observe(insts, cycles uint64) (rel float64, stop bool) {
	a.seen++
	if cycles > 0 {
		a.run.Add(float64(insts) / float64(cycles))
	}
	rel = math.Inf(1)
	if !a.s.Adaptive() || a.seen < a.minW {
		return rel, false
	}
	mean, half := a.run.CI95()
	if mean > 0 && !math.IsInf(half, 1) {
		rel = half / mean
	}
	if a.run.N() >= a.nextEval {
		if rel <= a.s.TargetCI {
			return rel, true
		}
		for a.nextEval <= a.run.N() {
			a.nextEval = adaptiveSchedule(a.nextEval)
		}
	}
	return rel, false
}

// SampledStats reports what the sampling controller did and what it
// estimated. It is folded into the determinism digest, so every field
// must be deterministic for a given (seed, config).
type SampledStats struct {
	// Windows is the number of measured windows.
	Windows int
	// SkippedInsts went through the warming skip (cache/TLB residency
	// and predictor training advance per the CacheWarmInsts/BPWarmInsts
	// horizons, no µ-op or BTB updates); FFInsts were functionally
	// committed; DetailedInsts were cycle-accurately committed (warm +
	// measured + inter-window drain); MeasuredInsts is the measured
	// subset of DetailedInsts.
	SkippedInsts  uint64
	FFInsts       uint64
	DetailedInsts uint64
	MeasuredInsts uint64

	// WindowIPC / WindowMPKI are the per-window observations behind the
	// interval estimates.
	WindowIPC  []float64
	WindowMPKI []float64

	// IPCMean ± IPCCI95 and MPKIMean ± MPKICI95 are Student-t 95%
	// interval estimates over the windows. The half-widths are 0 when
	// fewer than two windows exist (a single observation bounds
	// nothing, and Result must stay JSON-serializable for the runq
	// cache, which rules out storing +Inf).
	IPCMean  float64
	IPCCI95  float64
	MPKIMean float64
	MPKICI95 float64

	// Adaptive-mode provenance, zero for fixed-geometry runs (their
	// digests are unchanged): TargetCI echoes the configured relative
	// half-width target, WindowBudget is the fixed schedule's window
	// count the run could have used, and TargetMet reports whether the
	// run stopped because the target was reached (false: it exhausted
	// the budget or the MaxWindows cap first — the claimed interval is
	// still honest, just wider than asked).
	TargetCI     float64
	WindowBudget int
	TargetMet    bool
}

// machineWarmer adapts the machine's memory hierarchy to trace.Warmer
// for the warming-skip tier. Ideal always-hit frontends never touch the
// L1I on the demand path, so the I-side warm is gated the same way.
type machineWarmer struct{ m *Machine }

func (w machineWarmer) WarmFetch(lineAddr uint64) {
	if !w.m.cfg.Ideal.UopAlwaysHit {
		w.m.mem.WarmFetchInst(lineAddr, w.m.cycle)
	}
}

func (w machineWarmer) WarmMem(addr uint64) { w.m.mem.WarmData(addr, w.m.cycle) }

// WarmCond implements trace.BranchWarmer: the demand direction
// predictor (and, on UCP machines, the alternate-path shadow predictor)
// trains on every skipped conditional branch. Predictor accuracy
// converges over tens of millions of instructions — truncating its
// training to the functional+detailed duty cycle measures an early-run
// predictor and biases IPC low.
func (w machineWarmer) WarmCond(pc uint64, taken bool) {
	predTaken := w.m.fe.WarmCond(pc, taken)
	if w.m.ucp != nil {
		w.m.ucp.WarmCond(pc, taken, predTaken)
	}
}

// condWarmer is the far-zone warmer: beyond the CacheWarmInsts horizon
// only the direction predictor trains (its accuracy converges over tens
// of millions of instructions and cannot be rebuilt by any bounded
// horizon), while the memory footprint is dropped — caches rebuild well
// inside the cache-warm + functional-warm horizons.
type condWarmer struct{ m *Machine }

func (condWarmer) WarmFetch(uint64) {}

func (condWarmer) WarmMem(uint64) {}

func (w condWarmer) WarmCond(pc uint64, taken bool) { machineWarmer(w).WarmCond(pc, taken) }

// runSampled is the sampling controller. Position accounting: skipped
// instructions never reach the backend, so the absolute stream position
// is skipped + be.Committed; drain overshoot past a window boundary
// simply shortens the next period's fast-forward gap.
func runSampled(cfg Config, src trace.Source, code core.CodeInfo, traceName string, wc *WarmCheckpoints, hook ProgressFunc) (Result, error) {
	m := NewMachine(cfg, src, code)
	s := cfg.Sampling
	// Window schedule: one window per full period, plus a trailing
	// window over the remainder when MeasureInsts is not period-aligned
	// (Config.Validate rejects remainders too short to hold the
	// warm+measure tail, so no measured instructions are ever silently
	// dropped). SampleWindows is shared with the window-parallel
	// executor, so serial and parallel runs place identical windows.
	specs := cfg.SampleWindows()
	budget := len(specs)
	// Adaptive mode stops early once the pinned evaluation schedule
	// sees the window-IPC half-width at or below target; the fixed
	// schedule is the budget either way.
	adaptive := s.Adaptive()
	maxW := budget
	if adaptive && s.MaxWindows > 0 && s.MaxWindows < maxW {
		maxW = s.MaxWindows
	}
	hook.note(StageWarming, 0, maxW)

	var skipped, ffTotal uint64

	// ffwd advances the stream position to `to` through the warming
	// pyramid with the sampling geometry's horizons (fastForward below;
	// the time-parallel segment runner shares the same implementation
	// with its own BoundaryWarm horizons).
	ffwd := func(to uint64) error {
		return m.fastForward(to, s.FFWarmInsts, s.CacheWarmInsts, s.BPWarmInsts, &skipped, &ffTotal)
	}

	var (
		streamAcc, refillAcc *stats.Histogram
		ipcs, mpkis          []float64
		sumInsts, sumCycles  uint64
		dUopHit, dDecode     uint64
		dSwitch, dMispred    uint64
		dPfIns, dPfUsed      uint64
	)

	// Warmup region: fast-forwarded entirely (bounded functional
	// warming); the per-window WarmInsts restore timing state. With a
	// checkpoint store attached (ckpt.go) the fast-forward runs at most
	// once per warm key: the first run to finish it publishes the end
	// state and every other run — later, or a concurrent sweep sibling
	// blocked on the same key — restores it instead.
	if wc != nil && wc.Store != nil && cfg.WarmupInsts > 0 {
		key := WarmKey(cfg, wc.TraceID)
		blob, hit, release := wc.Store.Acquire(key)
		if hit {
			var err error
			if skipped, ffTotal, err = m.restoreWarm(blob); err != nil {
				return Result{}, ckpt.KeyError(key, err)
			}
		} else {
			// Leader: pay the fast-forward and publish. The deferred
			// abort is once-guarded, so after a successful publish it is
			// a no-op; on any error path it hands leadership to a waiter
			// instead of deadlocking the flight.
			defer release(nil)
			if err := ffwd(cfg.WarmupInsts); err != nil {
				return Result{}, err
			}
			release(m.captureWarm(skipped, ffTotal))
		}
	} else if err := ffwd(cfg.WarmupInsts); err != nil {
		return Result{}, err
	}
	hook.note(StageMeasuring, 0, maxW)

	// The adaptive stop rule: a one-pass Welford accumulator over the
	// window IPCs, evaluated only at the pinned schedule points — a
	// pure function of the window-mean sequence, so two passes (and any
	// worker count, serial or window-parallel) terminate identically.
	as := NewAdaptiveStop(s, maxW)
	minW := as.Min()
	targetMet := false

	for k := 0; k < maxW; k++ {
		measureEnd := specs[k].End
		measureStart := specs[k].Start
		warmStart := measureStart - s.WarmInsts

		if err := ffwd(warmStart); err != nil {
			return Result{}, err
		}

		// Detailed warm, then the measured window. Targets are commit
		// counts: absolute position minus what was skipped.
		m.fe.Unpause()
		if err := m.runUntil(measureStart - skipped); err != nil {
			return Result{}, err
		}
		a := m.snap()
		m.fe.ResetHistograms()
		if err := m.runUntil(measureEnd - skipped); err != nil {
			return Result{}, err
		}
		b := m.snap()

		wInsts := b.insts - a.insts
		wCycles := b.cycles - a.cycles
		sumInsts += wInsts
		sumCycles += wCycles
		dUopHit += b.fe.UopsFromUopCache - a.fe.UopsFromUopCache
		dDecode += b.fe.UopsFromDecode - a.fe.UopsFromDecode
		dSwitch += b.fe.ModeSwitches - a.fe.ModeSwitches
		dMispred += b.fe.CondMispredicts - a.fe.CondMispredicts
		dPfIns += b.uop.PrefetchInserts - a.uop.PrefetchInserts
		dPfUsed += b.uop.PrefetchUsed - a.uop.PrefetchUsed
		if wCycles > 0 {
			ipcs = append(ipcs, float64(wInsts)/float64(wCycles))
		}
		if wInsts > 0 {
			mpkis = append(mpkis, float64(b.fe.CondMispredicts-a.fe.CondMispredicts)/float64(wInsts)*1000)
		}
		// Detach the window's histograms into the accumulators before
		// the drain can pollute them with out-of-window samples.
		if streamAcc == nil {
			streamAcc, refillAcc = m.fe.StreamLens, m.fe.RefillLat
		} else {
			streamAcc.Merge(m.fe.StreamLens)
			refillAcc.Merge(m.fe.RefillLat)
		}
		m.fe.ResetHistograms()

		// Quiesce: stop window generation and let in-flight work retire,
		// handing a clean stream position to the next fast-forward.
		m.fe.Pause()
		if err := m.drainQuiet(); err != nil {
			return Result{}, err
		}
		rel, stop := as.Observe(wInsts, wCycles)
		if !adaptive || k+1 < minW {
			hook.note(StageMeasuring, k+1, maxW)
			continue
		}
		hook.noteHalf(StageRefining, k+1, maxW, rel)
		if stop {
			targetMet = true
			break
		}
	}

	end := m.snap()
	sampled := &SampledStats{
		Windows:       len(ipcs),
		SkippedInsts:  skipped,
		FFInsts:       ffTotal,
		DetailedInsts: m.be.Committed - ffTotal,
		MeasuredInsts: sumInsts,
		WindowIPC:     ipcs,
		WindowMPKI:    mpkis,
	}
	if adaptive {
		sampled.TargetCI = s.TargetCI
		sampled.WindowBudget = budget
		sampled.TargetMet = targetMet
	}
	sampled.IPCMean, sampled.IPCCI95 = stats.CI95(ipcs)
	sampled.MPKIMean, sampled.MPKICI95 = stats.CI95(mpkis)
	if math.IsInf(sampled.IPCCI95, 1) {
		sampled.IPCCI95 = 0
	}
	if math.IsInf(sampled.MPKICI95, 1) {
		sampled.MPKICI95 = 0
	}

	r := Result{
		Name:    cfg.Name,
		Trace:   traceName,
		Insts:   sumInsts,
		Cycles:  sumCycles,
		Sampled: sampled,
	}
	if sumCycles > 0 {
		r.IPC = float64(sumInsts) / float64(sumCycles)
	}
	if fetched := dUopHit + dDecode; fetched > 0 {
		r.UopHitRate = float64(dUopHit) / float64(fetched)
	}
	if sumInsts > 0 {
		r.SwitchPKI = float64(dSwitch) / float64(sumInsts) * 1000
		r.CondMPKI = float64(dMispred) / float64(sumInsts) * 1000
	}
	if dPfIns > 0 {
		r.PrefetchAccuracy = float64(dPfUsed) / float64(dPfIns)
	}
	r.FE = end.fe
	r.Uop = end.uop
	r.UCP = end.ucp
	r.L1I = end.l1i
	r.StreamLens = streamAcc
	r.RefillLat = refillAcc
	if m.ucp != nil {
		r.UCPStorageKB = m.ucp.StorageKB()
	}
	return r, nil
}

// fastForward advances the stream position to `to` through the warming
// pyramid: the last ffW instructions run the functional path, the
// cacheW before that warm caches and train the predictor, the bpW
// before that train the predictor only, and anything earlier skips at
// trace-generator speed (a zero horizon extends the corresponding tier
// over the whole remainder). skipped/ffTotal are the caller's position
// accounting: *skipped counts instructions that never reached the
// backend, so the absolute stream position is *skipped + be.Committed.
func (m *Machine) fastForward(to, ffW, cacheW, bpW uint64, skipped, ffTotal *uint64) error {
	cur := *skipped + m.be.Committed
	if to <= cur {
		return nil
	}
	warm := to - cur
	if ffW > 0 && warm > ffW {
		skip := warm - ffW
		warm = ffW
		cacheZ := skip
		if cacheW > 0 && cacheZ > cacheW {
			cacheZ = cacheW
		}
		bpZ := skip - cacheZ
		if bpW > 0 && bpZ > bpW-cacheZ {
			bpZ = bpW - cacheZ
		}
		pure := skip - cacheZ - bpZ
		zones := [3]struct {
			n uint64
			w trace.Warmer
		}{{pure, nil}, {bpZ, condWarmer{m}}, {cacheZ, machineWarmer{m}}}
		for _, z := range zones {
			if z.n == 0 {
				continue
			}
			var n uint64
			if z.w == nil {
				n = uint64(trace.SkipN(m.src, int(z.n)))
			} else {
				n = uint64(trace.SkipWarmN(m.src, int(z.n), z.w))
			}
			*skipped += n
			m.cycle += n
			if n != z.n {
				return fmt.Errorf("sim: trace ended during fast-forward at instruction %d", *skipped+m.be.Committed)
			}
		}
	}
	done, err := m.ffRun(warm)
	*ffTotal += done
	return err
}

// ffRun functionally commits up to n instructions, returning how many it
// managed (short only at end of trace, which is an error for the
// sampled controller's budgets).
func (m *Machine) ffRun(n uint64) (uint64, error) {
	for i := uint64(0); i < n; i++ {
		in, ok := m.src.Next()
		if !ok {
			return i, fmt.Errorf("sim: trace ended during functional warming (%d committed)", m.be.Committed)
		}
		predTaken := m.fe.FunctionalCommit(&in, m.cycle)
		if m.ucp != nil {
			m.ucp.FunctionalObserve(&in, predTaken)
		}
		m.be.FunctionalCommit(&in, m.cycle)
		m.cycle++
	}
	return n, nil
}

// runUntil steps the detailed engine until the commit counter reaches
// target, with the same stuck-guard as the full-detail loop.
func (m *Machine) runUntil(target uint64) error {
	lastCommit := m.be.Committed
	stuck := uint64(0)
	for m.be.Committed < target {
		m.Step()
		if m.be.Committed == lastCommit {
			stuck++
			if stuck > 200_000 {
				return fmt.Errorf("sim: no commit for %d cycles at cycle %d (%d committed, target %d)", stuck, m.cycle, m.be.Committed, target)
			}
		} else {
			stuck = 0
			lastCommit = m.be.Committed
		}
		if m.fe.Done() && m.be.Drained() {
			return fmt.Errorf("sim: trace ended during sampled run (%d committed, target %d)", m.be.Committed, target)
		}
	}
	return nil
}

// drainQuiet steps with window generation paused until the FTQ, µ-op
// queue, and ROB are all empty.
func (m *Machine) drainQuiet() error {
	for cycles := 0; !(m.fe.Empty() && m.be.Drained()); cycles++ {
		if cycles > 200_000 {
			return fmt.Errorf("sim: pipeline failed to drain within %d cycles at cycle %d", cycles, m.cycle)
		}
		m.Step()
	}
	return nil
}
