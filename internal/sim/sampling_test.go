package sim_test

import (
	"math"
	"strings"
	"testing"

	"ucp/internal/core"
	"ucp/internal/sim"
	"ucp/internal/trace"
)

// quickSampling is a sampling geometry small enough for unit tests:
// 8 windows of 2k measured + 4k warm insts per 25k period, with every
// tier of the warming pyramid engaged (pure skip → BP-train skip →
// cache-warm skip → functional warm → detailed warm).
func quickSampling() sim.SamplingConfig {
	return sim.SamplingConfig{
		Enabled:        true,
		PeriodInsts:    25_000,
		DetailedInsts:  2_000,
		WarmInsts:      4_000,
		FFWarmInsts:    8_000,
		CacheWarmInsts: 4_000,
		BPWarmInsts:    8_000,
	}
}

// runOnce runs one simulation of the named profile and returns the
// result.
func runOnce(t *testing.T, profName string, cfg sim.Config) sim.Result {
	t.Helper()
	prof, ok := trace.ProfileByName(profName)
	if !ok {
		t.Fatalf("unknown profile %q", profName)
	}
	prog, err := trace.BuildProgram(prof)
	if err != nil {
		t.Fatalf("building %s: %v", profName, err)
	}
	budget := int(cfg.WarmupInsts+cfg.MeasureInsts) + 200_000
	src := trace.NewLimit(trace.NewWalker(prog), budget)
	res, err := sim.Run(cfg, src, prog, profName)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return res
}

// TestSampledDeterministic is the sampled-mode analogue of
// TestDeterministicDigest: two sampled runs from the same seed and
// sampling params must produce byte-identical digests, including the
// sampled section.
func TestSampledDeterministic(t *testing.T) {
	mk := func() string {
		cfg := sim.WithUCP(core.DefaultConfig())
		cfg.WarmupInsts = 50_000
		cfg.MeasureInsts = 200_000
		cfg.Sampling = quickSampling()
		return runOnce(t, "srv203", cfg).DeterminismDigest()
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("sampled digests differ:\n%s\n---\n%s", a, b)
	}
	for _, want := range []string{"sampled windows=", "sampled ipc=", "sampled w0 "} {
		if !strings.Contains(a, want) {
			t.Errorf("sampled digest missing %q section", want)
		}
	}
}

// TestSampledEstimatesTrackFull bounds the estimator's error on a unit
// scale: the sampled IPC must land within a loose tolerance of the
// full-detail IPC on the same stream (the check.sh gate enforces the
// tight documented bound at sweep scale). crypto01's small footprint
// converges within the test budget; large-footprint traces need
// multi-million-instruction runs before full and sampled measurements
// describe the same steady state (see EXPERIMENTS.md).
func TestSampledEstimatesTrackFull(t *testing.T) {
	for _, withUCP := range []bool{false, true} {
		cfg := sim.Baseline()
		if withUCP {
			cfg = sim.WithUCP(core.DefaultConfig())
		}
		cfg.WarmupInsts = 100_000
		cfg.MeasureInsts = 1_000_000
		full := runOnce(t, "crypto01", cfg)

		cfg.Sampling = sim.SamplingConfig{
			Enabled:       true,
			PeriodInsts:   100_000,
			DetailedInsts: 4_000,
			WarmInsts:     4_000,
			FFWarmInsts:   25_000,
		}
		sampled := runOnce(t, "crypto01", cfg)

		if sampled.Sampled == nil {
			t.Fatal("sampled run carries no SampledStats")
		}
		if got, want := sampled.Sampled.Windows, 10; got != want {
			t.Errorf("ucp=%v: %d windows, want %d", withUCP, got, want)
		}
		if full.Sampled != nil {
			t.Error("full-detail run unexpectedly carries SampledStats")
		}
		relErr := math.Abs(sampled.IPC-full.IPC) / full.IPC
		if relErr > 0.05 {
			t.Errorf("ucp=%v: sampled IPC %.4f vs full %.4f (%.1f%% error)",
				withUCP, sampled.IPC, full.IPC, relErr*100)
		}
		// The estimator's own bookkeeping must be internally consistent.
		s := sampled.Sampled
		if s.MeasuredInsts != sampled.Insts {
			t.Errorf("MeasuredInsts %d != Result.Insts %d", s.MeasuredInsts, sampled.Insts)
		}
		if s.SkippedInsts == 0 || s.FFInsts == 0 {
			t.Errorf("expected both skipping and functional warming: skipped=%d ff=%d",
				s.SkippedInsts, s.FFInsts)
		}
		if s.IPCCI95 < 0 || math.IsInf(s.IPCCI95, 0) || math.IsNaN(s.IPCCI95) {
			t.Errorf("IPCCI95 = %v, want finite non-negative", s.IPCCI95)
		}
		if s.DetailedInsts < s.MeasuredInsts {
			t.Errorf("DetailedInsts %d < MeasuredInsts %d", s.DetailedInsts, s.MeasuredInsts)
		}
	}
}

// TestSamplingValidate pins the config bounds.
func TestSamplingValidate(t *testing.T) {
	base := func() sim.Config {
		cfg := sim.Baseline()
		cfg.WarmupInsts = 10_000
		cfg.MeasureInsts = 100_000
		cfg.Sampling = sim.SamplingConfig{
			Enabled:       true,
			PeriodInsts:   20_000,
			DetailedInsts: 2_000,
			WarmInsts:     2_000,
		}
		return cfg
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid sampling config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*sim.Config)
	}{
		{"zero period", func(c *sim.Config) { c.Sampling.PeriodInsts = 0 }},
		{"window too small", func(c *sim.Config) { c.Sampling.DetailedInsts = 999 }},
		{"warm+detail exceed period", func(c *sim.Config) { c.Sampling.WarmInsts = 19_000 }},
		{"period exceeds measure", func(c *sim.Config) { c.Sampling.PeriodInsts = 200_000 }},
		{"implausible period", func(c *sim.Config) { c.Sampling.PeriodInsts = 1 << 41 }},
		{"implausible ffwarm", func(c *sim.Config) { c.Sampling.FFWarmInsts = 1 << 41 }},
		{"implausible cachewarm", func(c *sim.Config) { c.Sampling.CacheWarmInsts = 1 << 41 }},
		{"implausible bpwarm", func(c *sim.Config) { c.Sampling.BPWarmInsts = 1 << 41 }},
		// BPWarmInsts bounded while CacheWarmInsts is unbounded (= whole
		// span) puts an unwarmed cache zone inside the predictor-training
		// zone: the pyramid is inverted.
		{"inverted pyramid via zero cachewarm", func(c *sim.Config) { c.Sampling.BPWarmInsts = 5_000 }},
		{"cache zone wider than bp zone", func(c *sim.Config) {
			c.Sampling.BPWarmInsts = 5_000
			c.Sampling.CacheWarmInsts = 6_000
		}},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid sampling config", tc.name)
		}
	}
	// A well-formed pyramid (cache zone inside BP zone) must validate.
	cfg := base()
	cfg.Sampling.FFWarmInsts = 4_000
	cfg.Sampling.CacheWarmInsts = 3_000
	cfg.Sampling.BPWarmInsts = 5_000
	if err := cfg.Validate(); err != nil {
		t.Errorf("well-formed warming pyramid rejected: %v", err)
	}
	// Disabled sampling skips all bounds: the zero value must validate.
	cfg = base()
	cfg.Sampling = sim.SamplingConfig{}
	if err := cfg.Validate(); err != nil {
		t.Errorf("zero-value (disabled) sampling rejected: %v", err)
	}
}

// TestFullDetailDigestUnaffected pins that merely compiling in the
// sampled mode changes nothing: a full-detail digest must not contain a
// sampled section, and the Result must be identical with and without the
// (disabled) Sampling field set to its zero value — the hotpath golden
// gate in check.sh then pins byte-identity across PRs.
func TestFullDetailDigestUnaffected(t *testing.T) {
	cfg := sim.WithUCP(core.DefaultConfig())
	cfg.WarmupInsts = 10_000
	cfg.MeasureInsts = 20_000
	d := runOnce(t, "srv203", cfg).DeterminismDigest()
	if strings.Contains(d, "sampled") {
		t.Fatal("full-detail digest contains a sampled section")
	}
}
