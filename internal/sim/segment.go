package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"ucp/internal/cache"
	"ucp/internal/ckpt"
	"ucp/internal/core"
	"ucp/internal/frontend"
	"ucp/internal/stats"
	"ucp/internal/trace"
	"ucp/internal/uopcache"
)

// This file is the per-segment half of time-parallel simulation
// (internal/tpar): one full-detail run is split into N contiguous spans
// of its measured region, and each span is simulated independently on a
// fresh machine whose boundary state is rebuilt by the same warming
// pyramid the sampled mode uses (trace skip → BP-train skip →
// cache-warm skip → functional commit → detailed warm). Because every
// segment's outcome is a pure function of (config, trace, span,
// warming geometry), segments can run concurrently on any number of
// workers and merge into one byte-identical result.

// BoundaryWarm is the warming geometry applied at each segment
// boundary. All counts are instructions; the pyramid-nesting rules
// match SamplingConfig's horizons (fastForward shares the
// implementation).
//
//ucplint:config
type BoundaryWarm struct {
	// DetailedInsts precede every segment in detailed-but-unmeasured
	// mode, refilling pipeline/queue timing state the functional path
	// does not model.
	DetailedInsts uint64

	// FFInsts bounds the functional-warming horizon before the detailed
	// warm; 0 functionally commits the entire gap from position zero
	// (most accurate, but the boundary cost then grows with the
	// boundary's position and caps parallel scaling).
	FFInsts uint64

	// CacheInsts bounds the cache-warming horizon of the skip zone,
	// exactly as SamplingConfig.CacheWarmInsts (0 = unbounded).
	CacheInsts uint64

	// BPInsts bounds the direction-predictor training horizon of the
	// skip zone, exactly as SamplingConfig.BPWarmInsts (0 = unbounded).
	// When both horizons are bounded the cache-warm zone must fit
	// inside the predictor-training zone.
	BPInsts uint64
}

// DefaultBoundaryWarm is the conservative geometry: bounded functional
// warming, unbounded cache warming and predictor training in the skip
// zone — the same safety posture as ConservativeSampling, so no
// long-history state is ever dropped at a boundary.
func DefaultBoundaryWarm() BoundaryWarm {
	return BoundaryWarm{
		DetailedInsts: 5_000,
		FFInsts:       50_000,
	}
}

// Validate bounds the boundary-warming geometry.
func (b BoundaryWarm) Validate() error {
	if b.DetailedInsts < 1000 {
		return fmt.Errorf("sim: BoundaryWarm.DetailedInsts must be at least 1000 (segment boundaries are commit-based; a shorter detailed warm hands transient pipeline state to the measured span), got %d", b.DetailedInsts)
	}
	if b.DetailedInsts > 1<<40 {
		return fmt.Errorf("sim: BoundaryWarm.DetailedInsts %d is implausibly large", b.DetailedInsts)
	}
	if b.FFInsts > 1<<40 {
		return fmt.Errorf("sim: BoundaryWarm.FFInsts %d is implausibly large", b.FFInsts)
	}
	if b.CacheInsts > 1<<40 {
		return fmt.Errorf("sim: BoundaryWarm.CacheInsts %d is implausibly large", b.CacheInsts)
	}
	if b.BPInsts > 1<<40 {
		return fmt.Errorf("sim: BoundaryWarm.BPInsts %d is implausibly large", b.BPInsts)
	}
	if b.BPInsts > 0 && (b.CacheInsts == 0 || b.CacheInsts > b.BPInsts) {
		return fmt.Errorf("sim: BoundaryWarm.CacheInsts (%d) must be bounded within BPInsts (%d): an unwarmed cache zone inside the predictor-training zone inverts the warming pyramid",
			b.CacheInsts, b.BPInsts)
	}
	return nil
}

// SegmentSpec is one contiguous span [Start, End) of absolute stream
// positions (instruction counts from position zero), measured in
// detailed mode by one worker. Index orders segments within the run.
type SegmentSpec struct {
	Index      int
	Start, End uint64
}

// SegmentResult carries one segment's measured-region deltas. Unlike
// the serial Result, whose counter blocks are cumulative end-of-run
// state, every block here covers exactly [Start, End) — the merge sums
// them, so the combined blocks describe the measured region alone.
type SegmentResult struct {
	Index      int
	Start, End uint64

	// Insts/Cycles are the measured span's commit count and detailed
	// cycle count (the span may overshoot End by at most one commit
	// window — deterministically, like the serial engine's stop).
	Insts  uint64
	Cycles uint64

	FE  frontend.Stats
	Uop uopcache.Stats
	UCP core.Stats
	L1I cache.Stats

	StreamLens *stats.Histogram
	RefillLat  *stats.Histogram

	// SkippedInsts/FFInsts report how the boundary was warmed (restored
	// checkpoints return the captured values, so a restored segment is
	// indistinguishable from a cold one here too); DetailedInsts counts
	// everything cycle-accurately committed (boundary warm + measured
	// span) — the window-parallel merge sums it into
	// SampledStats.DetailedInsts.
	SkippedInsts  uint64
	FFInsts       uint64
	DetailedInsts uint64

	UCPStorageKB float64
}

// BoundaryKeySchema versions the boundary-checkpoint key derivation.
// Bump it when the normalization below changes, so old on-disk
// checkpoints become unreachable rather than wrongly shared.
const BoundaryKeySchema = "ucp-tpar-ckpt-1"

// BoundaryKey derives the content address of the functional-warm state
// at a segment boundary: the machine state after fast-forwarding to
// start−warm.DetailedInsts under warm's horizons. It reuses WarmKey's
// config normalization (the fast-forward touches the same subset) and
// additionally drops WarmupInsts — the boundary position is keyed
// explicitly, so runs with different warmup/segment geometry share any
// boundary they happen to place at the same position.
func BoundaryKey(cfg Config, traceID string, start uint64, warm BoundaryWarm) string {
	wcfg := warmConfig(cfg)
	wcfg.WarmupInsts = 0
	env := struct {
		Schema string
		Model  string
		Trace  string
		Start  uint64
		Warm   BoundaryWarm
		Config Config
	}{BoundaryKeySchema, ModelVersion, traceID, start, warm, wcfg}
	b, err := json.Marshal(env)
	if err != nil {
		// Config is a plain data struct; Marshal cannot fail on it.
		panic("sim: boundary key marshal: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// RunSegment simulates one segment of a full-detail run: rebuild the
// boundary state at spec.Start (restoring a cached checkpoint when the
// store has one, capturing one for the next run otherwise), then
// measure [Start, End) in detailed mode. src must be a fresh stream at
// position zero, not shared with any other segment (arena cursors are
// the intended source). The result is deterministic for a given
// (cfg, trace, spec, warm) regardless of worker placement, and a
// checkpoint-restored boundary is byte-identical to a cold one.
func RunSegment(cfg Config, src trace.Source, code core.CodeInfo, spec SegmentSpec, warm BoundaryWarm, wc *WarmCheckpoints) (SegmentResult, error) {
	if err := cfg.Validate(); err != nil {
		return SegmentResult{}, err
	}
	if cfg.Sampling.Enabled {
		return SegmentResult{}, fmt.Errorf("sim: RunSegment is the full-detail span runner; sampled configs parallelize per measured window through internal/wpar, which strips Sampling and derives the boundary warm from the sampling geometry")
	}
	if err := warm.Validate(); err != nil {
		return SegmentResult{}, err
	}
	if spec.End <= spec.Start {
		return SegmentResult{}, fmt.Errorf("sim: segment %d has empty span [%d, %d)", spec.Index, spec.Start, spec.End)
	}

	// The detailed engine reads src only after the fast-forward is
	// done, so the frontend's batched read-ahead cannot outrun a stream
	// position nobody advances anymore — no scalar wrapper needed
	// (unlike the sampled mode, which alternates back into functional
	// phases after detailed windows).
	m := NewMachine(cfg, src, code)

	warmStart := uint64(0)
	if spec.Start > warm.DetailedInsts {
		warmStart = spec.Start - warm.DetailedInsts
	}
	var skipped, ffTotal uint64
	if wc != nil && wc.Store != nil && warmStart > 0 {
		key := BoundaryKey(cfg, wc.TraceID, spec.Start, warm)
		blob, hit, release := wc.Store.Acquire(key)
		if hit {
			var err error
			if skipped, ffTotal, err = m.restoreWarm(blob); err != nil {
				return SegmentResult{}, ckpt.KeyError(key, err)
			}
		} else {
			// Leader: pay the fast-forward and publish. Once-guarded, so
			// the deferred abort is a no-op after a successful publish.
			defer release(nil)
			if err := m.fastForward(warmStart, warm.FFInsts, warm.CacheInsts, warm.BPInsts, &skipped, &ffTotal); err != nil {
				return SegmentResult{}, err
			}
			release(m.captureWarm(skipped, ffTotal))
		}
	} else if err := m.fastForward(warmStart, warm.FFInsts, warm.CacheInsts, warm.BPInsts, &skipped, &ffTotal); err != nil {
		return SegmentResult{}, err
	}

	// Detailed warm to the segment start, then the measured span.
	// Targets are commit counts: absolute position minus what the
	// fast-forward skipped.
	m.fe.Unpause()
	if err := m.runUntil(spec.Start - skipped); err != nil {
		return SegmentResult{}, err
	}
	a := m.snap()
	m.fe.ResetHistograms()
	if err := m.runUntil(spec.End - skipped); err != nil {
		return SegmentResult{}, err
	}
	b := m.snap()

	r := SegmentResult{
		Index:         spec.Index,
		Start:         spec.Start,
		End:           spec.End,
		Insts:         b.insts - a.insts,
		Cycles:        b.cycles - a.cycles,
		FE:            SubCounters(a.fe, b.fe),
		Uop:           SubCounters(a.uop, b.uop),
		UCP:           SubCounters(a.ucp, b.ucp),
		L1I:           SubCounters(a.l1i, b.l1i),
		StreamLens:    m.fe.StreamLens,
		RefillLat:     m.fe.RefillLat,
		SkippedInsts:  skipped,
		FFInsts:       ffTotal,
		DetailedInsts: b.insts - ffTotal,
	}
	if m.ucp != nil {
		r.UCPStorageKB = m.ucp.StorageKB()
	}
	return r, nil
}
