package sim_test

import (
	"reflect"
	"strings"
	"testing"

	"ucp/internal/ckpt"
	"ucp/internal/core"
	"ucp/internal/sim"
	"ucp/internal/trace"
)

// segSource returns a fresh stream over prof at position zero, budgeted
// for a boundary-warmed segment ending no later than end.
func segSource(t *testing.T, profName string, end uint64) (trace.Source, *trace.Program) {
	t.Helper()
	prof, ok := trace.ProfileByName(profName)
	if !ok {
		t.Fatalf("unknown profile %q", profName)
	}
	prog, err := trace.BuildProgram(prof)
	if err != nil {
		t.Fatalf("building %s: %v", profName, err)
	}
	return trace.NewLimit(trace.NewWalker(prog), int(end)+200_000), prog
}

// TestRunSegmentDeterministic pins that a segment's result is a pure
// function of (config, trace, span, warming geometry): two independent
// runs must agree on every field, including histogram internals.
func TestRunSegmentDeterministic(t *testing.T) {
	cfg := sim.WithUCP(core.DefaultConfig())
	cfg.WarmupInsts, cfg.MeasureInsts = 20_000, 40_000
	spec := sim.SegmentSpec{Index: 1, Start: 40_000, End: 60_000}
	warm := sim.BoundaryWarm{DetailedInsts: 2_000, FFInsts: 8_000}
	mk := func() sim.SegmentResult {
		src, prog := segSource(t, "crypto01", spec.End)
		r, err := sim.RunSegment(cfg, src, prog, spec, warm, nil)
		if err != nil {
			t.Fatalf("RunSegment: %v", err)
		}
		return r
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("segment results differ across identical runs:\n%+v\n---\n%+v", a, b)
	}
	if a.Insts < spec.End-spec.Start {
		t.Errorf("measured %d insts, want >= span length %d", a.Insts, spec.End-spec.Start)
	}
	if a.SkippedInsts == 0 || a.FFInsts == 0 {
		t.Errorf("boundary warming engaged no pyramid tiers: skipped=%d ff=%d", a.SkippedInsts, a.FFInsts)
	}
}

// TestRunSegmentCheckpointRestoreIdentical is the byte-identity bar for
// boundary checkpoints: cold (no store), capturing (leader), and
// restored (hit) runs of the same segment must produce deeply equal
// results, and the restored run must report the captured warming stats.
func TestRunSegmentCheckpointRestoreIdentical(t *testing.T) {
	cfg := sim.WithUCP(core.DefaultConfig())
	cfg.WarmupInsts, cfg.MeasureInsts = 20_000, 40_000
	spec := sim.SegmentSpec{Index: 0, Start: 20_000, End: 35_000}
	warm := sim.BoundaryWarm{DetailedInsts: 2_000, FFInsts: 8_000}

	run := func(wc *sim.WarmCheckpoints) sim.SegmentResult {
		src, prog := segSource(t, "srv203", spec.End)
		r, err := sim.RunSegment(cfg, src, prog, spec, warm, wc)
		if err != nil {
			t.Fatalf("RunSegment: %v", err)
		}
		return r
	}

	cold := run(nil)
	store := ckpt.NewStore("")
	wc := &sim.WarmCheckpoints{Store: store, TraceID: "test:srv203"}
	captured := run(wc)
	if store.Len() != 1 {
		t.Fatalf("capturing run left %d checkpoints, want 1", store.Len())
	}
	restored := run(wc)
	if store.Hits() != 1 {
		t.Fatalf("store hits = %d, want 1 (restore must come from the checkpoint)", store.Hits())
	}
	if !reflect.DeepEqual(cold, captured) {
		t.Errorf("capturing run differs from cold run:\n%+v\n---\n%+v", captured, cold)
	}
	if !reflect.DeepEqual(cold, restored) {
		t.Errorf("checkpoint-restored run differs from cold run:\n%+v\n---\n%+v", restored, cold)
	}
}

// TestRunSegmentShorterThanWarmWindow covers the degenerate boundary:
// a segment starting inside the detailed-warm window (start <
// DetailedInsts) must simulate in detail from position zero — no
// skipping, no functional warming — and still be deterministic.
func TestRunSegmentShorterThanWarmWindow(t *testing.T) {
	cfg := sim.Baseline()
	cfg.WarmupInsts, cfg.MeasureInsts = 500, 2_000
	spec := sim.SegmentSpec{Index: 0, Start: 500, End: 1_500}
	warm := sim.BoundaryWarm{DetailedInsts: 5_000} // wider than the whole prefix
	mk := func() sim.SegmentResult {
		src, prog := segSource(t, "crypto01", spec.End)
		r, err := sim.RunSegment(cfg, src, prog, spec, warm, nil)
		if err != nil {
			t.Fatalf("RunSegment: %v", err)
		}
		return r
	}
	a, b := mk(), mk()
	if a.SkippedInsts != 0 || a.FFInsts != 0 {
		t.Errorf("segment inside the warm window must warm in detail only: skipped=%d ff=%d",
			a.SkippedInsts, a.FFInsts)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("short-prefix segment is nondeterministic:\n%+v\n---\n%+v", a, b)
	}
}

// TestRunSegmentRejects pins the argument contract: sampled configs and
// empty spans are errors, not silent misbehavior.
func TestRunSegmentRejects(t *testing.T) {
	cfg := sim.Baseline()
	cfg.WarmupInsts, cfg.MeasureInsts = 10_000, 10_000
	warm := sim.DefaultBoundaryWarm()

	sampled := cfg
	sampled.Sampling = quickSampling()
	sampled.MeasureInsts = 100_000
	src, prog := segSource(t, "crypto01", 20_000)
	if _, err := sim.RunSegment(sampled, src, prog, sim.SegmentSpec{Start: 10_000, End: 20_000}, warm, nil); err == nil || !strings.Contains(err.Error(), "full-detail") {
		t.Errorf("sampled config accepted: err = %v", err)
	}
	src, prog = segSource(t, "crypto01", 20_000)
	if _, err := sim.RunSegment(cfg, src, prog, sim.SegmentSpec{Start: 10_000, End: 10_000}, warm, nil); err == nil || !strings.Contains(err.Error(), "empty span") {
		t.Errorf("empty span accepted: err = %v", err)
	}
}

// TestBoundaryWarmValidate pins the geometry bounds, mirroring the
// sampling pyramid's rules.
func TestBoundaryWarmValidate(t *testing.T) {
	if err := sim.DefaultBoundaryWarm().Validate(); err != nil {
		t.Fatalf("default geometry rejected: %v", err)
	}
	cases := []struct {
		name string
		warm sim.BoundaryWarm
	}{
		{"detailed warm too small", sim.BoundaryWarm{DetailedInsts: 999}},
		{"implausible detailed", sim.BoundaryWarm{DetailedInsts: 1 << 41}},
		{"implausible ff", sim.BoundaryWarm{DetailedInsts: 5_000, FFInsts: 1 << 41}},
		{"implausible cache", sim.BoundaryWarm{DetailedInsts: 5_000, CacheInsts: 1 << 41}},
		{"implausible bp", sim.BoundaryWarm{DetailedInsts: 5_000, BPInsts: 1 << 41}},
		{"inverted pyramid via zero cachewarm", sim.BoundaryWarm{DetailedInsts: 5_000, BPInsts: 5_000}},
		{"cache zone wider than bp zone", sim.BoundaryWarm{DetailedInsts: 5_000, CacheInsts: 6_000, BPInsts: 5_000}},
	}
	for _, tc := range cases {
		if err := tc.warm.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid geometry", tc.name)
		}
	}
	ok := sim.BoundaryWarm{DetailedInsts: 5_000, FFInsts: 25_000, CacheInsts: 3_000, BPInsts: 5_000}
	if err := ok.Validate(); err != nil {
		t.Errorf("well-formed pyramid rejected: %v", err)
	}
}

// TestBoundaryKeyGeometry pins what the boundary-checkpoint identity
// covers: position, warming geometry, trace, and the warm-relevant
// config subset — but not the measured budgets, so runs with different
// segment counts share boundaries they place at the same position.
func TestBoundaryKeyGeometry(t *testing.T) {
	cfg := sim.WithUCP(core.DefaultConfig())
	cfg.WarmupInsts, cfg.MeasureInsts = 20_000, 40_000
	warm := sim.DefaultBoundaryWarm()
	base := sim.BoundaryKey(cfg, "trace-a", 30_000, warm)

	other := cfg
	other.WarmupInsts, other.MeasureInsts = 10_000, 80_000
	if sim.BoundaryKey(other, "trace-a", 30_000, warm) != base {
		t.Error("instruction budgets leak into the boundary key")
	}
	if sim.BoundaryKey(cfg, "trace-b", 30_000, warm) == base {
		t.Error("trace identity not in the boundary key")
	}
	if sim.BoundaryKey(cfg, "trace-a", 30_001, warm) == base {
		t.Error("boundary position not in the boundary key")
	}
	w2 := warm
	w2.FFInsts += 1
	if sim.BoundaryKey(cfg, "trace-a", 30_000, w2) == base {
		t.Error("warming geometry not in the boundary key")
	}
}
