// Package sim assembles the full core model — decoupled frontend,
// out-of-order backend, memory hierarchy, µ-op cache, and optionally the
// UCP engine and standalone L1I prefetcher baselines — and runs it over
// a trace, producing the metrics the paper's figures report.
package sim

import (
	"fmt"
	"strings"

	"ucp/internal/backend"
	"ucp/internal/bpred"
	"ucp/internal/btb"
	"ucp/internal/cache"
	"ucp/internal/core"
	"ucp/internal/frontend"
	"ucp/internal/ittage"
	"ucp/internal/prefetch"
	"ucp/internal/ras"
	"ucp/internal/stats"
	"ucp/internal/trace"
	"ucp/internal/uopcache"
)

// ModelVersion stamps the simulator's behavior revision. internal/runq
// folds it into every result-cache key, so cached results from an older
// model revision are never replayed as current ones. Bump it whenever a
// change anywhere in the model alters any measured number.
const ModelVersion = "ucp-sim-2"

// Config describes one simulated machine configuration. Run validates
// it (and, transitively, every sub-structure's geometry) before
// assembling a machine.
//
//ucplint:config
type Config struct {
	// Name labels the variant in experiment output.
	Name string

	Frontend   frontend.Config
	Backend    backend.Config
	Memory     cache.HierarchyConfig
	Pred       bpred.Config
	BTB        btb.Config
	Ind        ittage.Config
	Uop        uopcache.Config
	RASEntries int

	Ideal frontend.Ideal

	// UCP enables the alternate-path prefetcher when non-nil.
	UCP *core.Config

	// L1IPrefetcher selects a standalone instruction prefetcher
	// baseline ("", "fnlmma", "fnlmma++", "djolt", "ep", "ep++").
	L1IPrefetcher string

	// MRC enables the misprediction recovery cache baseline (§VI-F).
	MRC *prefetch.MRCConfig

	// InclusiveUop keeps the µ-op cache inclusive of the L1I (the
	// §IV-G2 design point the paper argues against): L1I evictions
	// invalidate the corresponding µ-op cache entries.
	InclusiveUop bool

	// BlockBTB replaces the baseline instruction BTB with the
	// block-based organization of §IV-C when non-nil (one entry per
	// aligned code block holding several branches, fewer banks).
	BlockBTB *btb.BlockConfig

	// WarmupInsts are committed before statistics start; MeasureInsts
	// are then measured (§V: 50M + 50M at full scale).
	WarmupInsts  uint64
	MeasureInsts uint64

	// Sampling selects the sampled simulation mode (sampling.go): the
	// MeasureInsts region is covered by periodic detailed windows
	// separated by functional fast-forward instead of being
	// cycle-simulated end to end. Default off; full-detail behavior is
	// untouched when disabled.
	Sampling SamplingConfig
}

// Baseline is the Table II configuration: 4Kops µ-op cache, 64KB
// TAGE-SC-L, 64KB ITTAGE, 64K-entry BTB, no UCP, no L1I prefetcher.
func Baseline() Config {
	return Config{
		Name:         "baseline",
		Frontend:     frontend.DefaultConfig(),
		Backend:      backend.DefaultConfig(),
		Memory:       cache.DefaultHierarchyConfig(),
		Pred:         bpred.Config64KB(),
		BTB:          btb.DefaultConfig(),
		Ind:          ittage.Config64KB(),
		Uop:          uopcache.DefaultConfig(),
		RASEntries:   64,
		WarmupInsts:  400_000,
		MeasureInsts: 600_000,
	}
}

// WithUCP returns the baseline plus a UCP engine (which also doubles the
// BTB banks, §IV-C).
func WithUCP(ucp core.Config) Config {
	c := Baseline()
	c.Name = "UCP"
	c.UCP = &ucp
	c.BTB = btb.UCPConfig()
	return c
}

// validL1IPrefetchers are the standalone prefetcher baseline names.
var validL1IPrefetchers = map[string]bool{
	"": true, "fnlmma": true, "fnlmma++": true, "djolt": true, "ep": true, "ep++": true,
}

// Validate rejects machine configurations whose structures could not be
// built in hardware, delegating to each sub-config's own Validate.
func (c Config) Validate() error {
	if err := c.Pred.Validate(); err != nil {
		return err
	}
	if err := c.BTB.Validate(); err != nil {
		return err
	}
	if err := c.Ind.Validate(); err != nil {
		return err
	}
	if err := c.Uop.Validate(); err != nil {
		return err
	}
	if c.RASEntries <= 0 {
		return fmt.Errorf("sim: RASEntries must be positive, got %d", c.RASEntries)
	}
	if c.UCP != nil {
		if err := c.UCP.Validate(); err != nil {
			return err
		}
	}
	if c.MRC != nil {
		if err := c.MRC.Validate(); err != nil {
			return err
		}
	}
	if !validL1IPrefetchers[c.L1IPrefetcher] {
		return fmt.Errorf("sim: unknown L1I prefetcher %q", c.L1IPrefetcher)
	}
	if c.MeasureInsts == 0 {
		return fmt.Errorf("sim: MeasureInsts must be positive")
	}
	if c.WarmupInsts > 1<<40 {
		return fmt.Errorf("sim: WarmupInsts %d is implausibly large", c.WarmupInsts)
	}
	if err := c.Sampling.Validate(); err != nil {
		return err
	}
	if c.Sampling.Enabled && c.Sampling.PeriodInsts > c.MeasureInsts {
		return fmt.Errorf("sim: Sampling.PeriodInsts %d exceeds MeasureInsts %d (need at least one full period)",
			c.Sampling.PeriodInsts, c.MeasureInsts)
	}
	if c.Sampling.Enabled {
		// A period-unaligned MeasureInsts gets a trailing measurement
		// window over the remainder (sampling.go windowEnd) — but only
		// when the remainder can hold the warm+measure tail. Anything
		// shorter would either be silently dropped (the pre-fix
		// behavior) or measure a window shorter than the geometry
		// promises; reject it instead.
		if rem := c.MeasureInsts % c.Sampling.PeriodInsts; rem > 0 && rem < c.Sampling.WarmInsts+c.Sampling.DetailedInsts {
			return fmt.Errorf("sim: MeasureInsts %% Sampling.PeriodInsts leaves a %d-instruction remainder, too short for a trailing window (WarmInsts+DetailedInsts = %d); align MeasureInsts to the period or extend it",
				rem, c.Sampling.WarmInsts+c.Sampling.DetailedInsts)
		}
	}
	return nil
}

// ValidateSegments is the one compatibility matrix for composing a
// time-parallel segment request with this config — ucpsim, experiments,
// and the executors all consult it instead of hand-rolling (and
// drifting) their own rejection messages. segments <= 1 is always the
// serial engine. segments > 1 on a full-detail config is internal/tpar;
// on a sampled config it is internal/wpar, whose per-window boundary
// warm is derived from the sampling geometry (SamplingConfig's
// BoundaryWarm method) — the only still-unvalidated combination is a
// sampled geometry whose WarmInsts cannot satisfy the boundary warm's
// floor, which is rejected here with the remediation spelled out.
func (c Config) ValidateSegments(segments int) error {
	if segments <= 1 || !c.Sampling.Enabled {
		return nil
	}
	if c.Sampling.WarmInsts < 1000 {
		return fmt.Errorf("sim: sampled+time-parallel composition requires Sampling.WarmInsts >= 1000 (each window's detailed warm becomes a segment boundary warm, whose floor is 1000; raise WarmInsts or drop -segments), got %d", c.Sampling.WarmInsts)
	}
	return nil
}

// Result carries the measured metrics of one run.
type Result struct {
	Name  string
	Trace string

	Insts  uint64
	Cycles uint64
	IPC    float64

	// UopHitRate is the per-instruction µ-op cache hit rate (Fig. 3).
	UopHitRate float64
	// SwitchPKI is stream/build mode switches per kilo-instruction.
	SwitchPKI float64
	// CondMPKI is conditional branch mispredictions per kilo-instruction.
	CondMPKI float64
	// PrefetchAccuracy is used prefetched entries over prefetched
	// entries (Fig. 14); zero when UCP is off.
	PrefetchAccuracy float64

	// StreamLens is the distribution of consecutive µ-op cache hit
	// stream lengths; RefillLat the mispredict-resolve to first-µ-op
	// latency distribution (measured window only).
	StreamLens *stats.Histogram
	RefillLat  *stats.Histogram

	FE           frontend.Stats
	Uop          uopcache.Stats
	UCP          core.Stats
	UCPStorageKB float64
	L1I          cache.Stats

	// Sampled carries the sampling estimator's window statistics; nil
	// for full-detail runs, so their digests are unchanged.
	Sampled *SampledStats

	// TimePar carries the time-parallel merge provenance (internal/tpar);
	// nil for serial runs, so their digests are unchanged.
	TimePar *TimeParStats
}

// TimeParStats reports how a time-parallel run was segmented and what
// each segment measured. It is folded into the determinism digest, so
// every field must be independent of worker count and scheduling —
// checkpoint provenance (captured vs restored boundaries) deliberately
// lives in the pool's CheckpointStats instead.
type TimeParStats struct {
	// Segments is the number of concurrently simulated trace segments.
	Segments int
	// Boundaries are the segment start positions (absolute instruction
	// counts), in segment order.
	Boundaries []uint64
	// SegInsts/SegCycles/SegIPC are the per-segment measured spans, in
	// segment order.
	SegInsts  []uint64
	SegCycles []uint64
	SegIPC    []float64
	// SkippedInsts/FFInsts total the boundary-warming work across all
	// segments (warming-skip vs functionally committed instructions).
	SkippedInsts uint64
	FFInsts      uint64
}

// Machine is one assembled core, stepped cycle by cycle.
type Machine struct {
	cfg   Config
	fe    *frontend.Frontend
	be    *backend.Backend
	mem   *cache.Hierarchy
	ucp   *core.Engine
	mrc   *prefetch.MRC
	uop   *uopcache.UopCache
	src   trace.Source // post-wrapping stream, shared with the frontend
	cycle uint64

	mrcPending uint64 // corrected target of the stalled misprediction
}

// NewMachine assembles a machine over src. When code is nil and UCP is
// enabled, instruction classes are learned from the dynamic stream (the
// recorded-trace case) instead of read from a generated Program.
func NewMachine(cfg Config, src trace.Source, code core.CodeInfo) *Machine {
	if cfg.Sampling.Enabled {
		// The fast-forward controller and the frontend must observe one
		// shared stream position, so the frontend's batched read-ahead
		// (which buffers up to 128 instructions past the commit point)
		// is hidden behind a scalar wrapper in sampled mode.
		src = trace.NewScalar(src)
	}
	if code == nil && cfg.UCP != nil {
		lc := NewLearnedCode()
		src = &observingSource{src: src, code: lc}
		code = lc
	}
	mem := cache.NewHierarchy(cfg.Memory)
	pred := bpred.NewTageSCL(cfg.Pred)
	var b btb.TargetBuffer = btb.New(cfg.BTB)
	if cfg.BlockBTB != nil {
		b = btb.NewBlock(*cfg.BlockBTB)
	}
	r := ras.New(cfg.RASEntries)
	ind := ittage.New(cfg.Ind)
	uop := uopcache.New(cfg.Uop)
	fe := frontend.New(cfg.Frontend, src, pred, b, r, ind, uop, mem, cfg.Ideal)
	if cfg.InclusiveUop {
		mem.L1I.OnEvict = uop.InvalidateLine
	}
	be := backend.New(cfg.Backend, mem)
	m := &Machine{cfg: cfg, fe: fe, be: be, mem: mem, uop: uop, src: src}
	if cfg.UCP != nil {
		m.ucp = core.New(*cfg.UCP, fe, code)
		fe.SetHook(m.ucp)
	}
	if pf := prefetch.NewL1I(cfg.L1IPrefetcher, mem); pf != nil {
		fe.L1IPrefetcher = pf
	}
	if cfg.MRC != nil {
		m.mrc = prefetch.NewMRC(*cfg.MRC)
	}
	be.DataPrefetcher = prefetch.NewIPStride(mem)
	return m
}

// Step advances one cycle and returns the µ-ops committed in it.
func (m *Machine) Step() int {
	now := m.cycle
	committed, flush := m.be.Cycle(now)
	if flush != nil {
		m.fe.ResumeAt(flush.Cycle + 1)
	}
	m.dispatch(now, flush)
	m.fe.Cycle(now)
	if m.ucp != nil {
		m.ucp.Cycle(now)
	}
	m.cycle++
	return committed
}

// dispatch moves ready µ-ops from the frontend queue into the backend.
func (m *Machine) dispatch(now uint64, flush *backend.Flush) {
	if m.mrc != nil && flush != nil && m.mrcPending != 0 {
		// The MRC records the corrected-path µ-ops after every
		// misprediction and, on a tag hit, streams them straight to
		// execution (modeled as a fast-deliver credit; §VI-F).
		if m.mrc.Lookup(m.mrcPending) {
			m.fe.GrantFastDeliver(m.mrc.OpsPerEntry())
		}
		m.mrc.Record(m.mrcPending)
		m.mrcPending = 0
	}
	width := m.be.DispatchWidth()
	for i := 0; i < width; i++ {
		if !m.be.CanDispatch(1) {
			return
		}
		u, ok := m.fe.PopUop(now)
		if !ok {
			return
		}
		if u.Mispredict && m.mrc != nil {
			m.mrcPending = u.Inst.NextPC()
		}
		m.be.Dispatch(backend.Uop{
			PC:         u.Inst.PC,
			Class:      u.Inst.Class,
			Dst:        u.Inst.Dst,
			Src1:       u.Inst.Src1,
			Src2:       u.Inst.Src2,
			MemAddr:    u.Inst.MemAddr,
			Mispredict: u.Mispredict,
		})
	}
}

// snapshot captures the counters that are delta-measured across the
// warmup boundary.
type snapshot struct {
	fe     frontend.Stats
	uop    uopcache.Stats
	ucp    core.Stats
	l1i    cache.Stats
	cycles uint64
	insts  uint64
}

func (m *Machine) snap() snapshot {
	s := snapshot{
		fe:     m.fe.Stats(),
		uop:    m.uop.Stats(),
		l1i:    m.mem.L1I.Stats(),
		cycles: m.cycle,
		insts:  m.be.Committed,
	}
	if m.ucp != nil {
		s.ucp = m.ucp.Stats()
	}
	return s
}

// Run executes the configured warmup + measurement phases over src.
func Run(cfg Config, src trace.Source, code core.CodeInfo, traceName string) (Result, error) {
	return RunCkpt(cfg, src, code, traceName, nil)
}

// RunCkpt is Run with an optional warm-checkpoint store (ckpt.go): in
// sampled mode the initial fast-forward is captured once per warm key
// and restored on every later run sharing it, with byte-identical
// results either way. A nil wc (or a full-detail config) behaves
// exactly like Run.
func RunCkpt(cfg Config, src trace.Source, code core.CodeInfo, traceName string, wc *WarmCheckpoints) (Result, error) {
	return RunHooked(cfg, src, code, traceName, wc, nil)
}

// RunHooked is RunCkpt with an optional progress hook (progress.go).
// The hook is observability only: results are byte-identical with and
// without one.
func RunHooked(cfg Config, src trace.Source, code core.CodeInfo, traceName string, wc *WarmCheckpoints, hook ProgressFunc) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Sampling.Enabled {
		return runSampled(cfg, src, code, traceName, wc, hook)
	}
	hook.note(StageWarming, 0, 1)
	m := NewMachine(cfg, src, code)
	target := cfg.WarmupInsts
	var start snapshot
	warm := false
	lastCommit := m.be.Committed
	stuck := uint64(0)
	for {
		m.Step()
		if m.be.Committed == lastCommit {
			stuck++
			if stuck > 200_000 {
				return Result{}, fmt.Errorf("sim: no commit for %d cycles at cycle %d (pc stall)", stuck, m.cycle)
			}
		} else {
			stuck = 0
			lastCommit = m.be.Committed
		}
		if !warm && m.be.Committed >= target {
			warm = true
			start = m.snap()
			m.fe.ResetHistograms()
			target = cfg.WarmupInsts + cfg.MeasureInsts
			hook.note(StageMeasuring, 0, 1)
		}
		if warm && m.be.Committed >= target {
			break
		}
		if m.fe.Done() && m.be.Drained() {
			if !warm {
				return Result{}, fmt.Errorf("sim: trace ended during warmup (%d committed)", m.be.Committed)
			}
			break
		}
	}
	end := m.snap()
	hook.note(StageMeasuring, 1, 1)
	return buildResult(cfg, traceName, m, start, end), nil
}

func buildResult(cfg Config, traceName string, m *Machine, a, b snapshot) Result {
	insts := b.insts - a.insts
	cycles := b.cycles - a.cycles
	r := Result{
		Name:   cfg.Name,
		Trace:  traceName,
		Insts:  insts,
		Cycles: cycles,
	}
	if cycles > 0 {
		r.IPC = float64(insts) / float64(cycles)
	}
	fetched := (b.fe.UopsFromUopCache + b.fe.UopsFromDecode) - (a.fe.UopsFromUopCache + a.fe.UopsFromDecode)
	if fetched > 0 {
		r.UopHitRate = float64(b.fe.UopsFromUopCache-a.fe.UopsFromUopCache) / float64(fetched)
	}
	if insts > 0 {
		r.SwitchPKI = float64(b.fe.ModeSwitches-a.fe.ModeSwitches) / float64(insts) * 1000
		r.CondMPKI = float64(b.fe.CondMispredicts-a.fe.CondMispredicts) / float64(insts) * 1000
	}
	pi := b.uop.PrefetchInserts - a.uop.PrefetchInserts
	if pi > 0 {
		r.PrefetchAccuracy = float64(b.uop.PrefetchUsed-a.uop.PrefetchUsed) / float64(pi)
	}
	r.FE = b.fe
	r.Uop = b.uop
	r.UCP = b.ucp
	r.L1I = b.l1i
	r.StreamLens = m.fe.StreamLens
	r.RefillLat = m.fe.RefillLat
	if m.ucp != nil {
		r.UCPStorageKB = m.ucp.StorageKB()
	}
	return r
}

// DeterminismDigest renders every measured quantity of the run —
// scalars, all counter blocks, and both full distributions — into one
// string. Two runs of the same configuration from the same seed must
// produce byte-identical digests; ucplint's -determinism harness and
// the harness determinism test compare them.
func (r Result) DeterminismDigest() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "name=%s trace=%s\n", r.Name, r.Trace)
	fmt.Fprintf(&sb, "insts=%d cycles=%d ipc=%.9f\n", r.Insts, r.Cycles, r.IPC)
	fmt.Fprintf(&sb, "uophit=%.9f switchpki=%.9f condmpki=%.9f pfacc=%.9f\n",
		r.UopHitRate, r.SwitchPKI, r.CondMPKI, r.PrefetchAccuracy)
	fmt.Fprintf(&sb, "fe=%+v\n", r.FE)
	fmt.Fprintf(&sb, "uop=%+v\n", r.Uop)
	fmt.Fprintf(&sb, "ucp=%+v storagekb=%.4f\n", r.UCP, r.UCPStorageKB)
	fmt.Fprintf(&sb, "l1i=%+v\n", r.L1I)
	if r.StreamLens != nil {
		sb.WriteString(r.StreamLens.Render())
	}
	if r.RefillLat != nil {
		sb.WriteString(r.RefillLat.Render())
	}
	// The sampled section only exists for sampled runs, so full-detail
	// digests (and the hotpath golden) are byte-identical to before.
	if s := r.Sampled; s != nil {
		fmt.Fprintf(&sb, "sampled windows=%d skipped=%d ff=%d detailed=%d measured=%d\n",
			s.Windows, s.SkippedInsts, s.FFInsts, s.DetailedInsts, s.MeasuredInsts)
		fmt.Fprintf(&sb, "sampled ipc=%.9f±%.9f mpki=%.9f±%.9f\n",
			s.IPCMean, s.IPCCI95, s.MPKIMean, s.MPKICI95)
		for i, v := range s.WindowIPC {
			fmt.Fprintf(&sb, "sampled w%d ipc=%.9f\n", i, v)
		}
		// The adaptive line only exists for adaptive runs, so
		// fixed-geometry sampled digests are byte-identical to before.
		if s.TargetCI > 0 {
			fmt.Fprintf(&sb, "sampled adaptive target=%.6f budget=%d met=%v\n",
				s.TargetCI, s.WindowBudget, s.TargetMet)
		}
	}
	// The time-parallel section only exists for segmented runs, so
	// serial digests (and the hotpath golden) are byte-identical to
	// before.
	if t := r.TimePar; t != nil {
		fmt.Fprintf(&sb, "timepar segments=%d skipped=%d ff=%d\n",
			t.Segments, t.SkippedInsts, t.FFInsts)
		for i := range t.Boundaries {
			fmt.Fprintf(&sb, "timepar s%d start=%d insts=%d cycles=%d ipc=%.9f\n",
				i, t.Boundaries[i], t.SegInsts[i], t.SegCycles[i], t.SegIPC[i])
		}
	}
	return sb.String()
}
