package sim

import (
	"testing"

	"ucp/internal/btb"
	"ucp/internal/core"
	"ucp/internal/isa"
	"ucp/internal/prefetch"
	"ucp/internal/trace"
)

func isaInst() isa.Inst {
	return isa.Inst{PC: 0x4000, Class: isa.CondBranch}
}

// run executes cfg over the named profile with reduced instruction
// counts for test speed.
func run(t testing.TB, cfg Config, profile string, warm, meas uint64) Result {
	t.Helper()
	prof, ok := trace.ProfileByName(profile)
	if !ok {
		t.Fatalf("no profile %s", profile)
	}
	prog, err := trace.BuildProgram(prof)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WarmupInsts, cfg.MeasureInsts = warm, meas
	src := trace.NewLimit(trace.NewWalker(prog), int(warm+meas)+100_000)
	res, err := Run(cfg, src, prog, profile)
	if err != nil {
		t.Fatalf("%s/%s: %v", cfg.Name, profile, err)
	}
	return res
}

func TestBaselineSanity(t *testing.T) {
	res := run(t, Baseline(), "int02", 100_000, 200_000)
	if res.IPC < 0.3 || res.IPC > 8 {
		t.Fatalf("baseline IPC %.3f implausible", res.IPC)
	}
	if res.Insts < 190_000 {
		t.Fatalf("measured %d insts, want ~200000", res.Insts)
	}
	if res.UopHitRate <= 0 || res.UopHitRate > 1 {
		t.Fatalf("uop hit rate %.3f", res.UopHitRate)
	}
	if res.CondMPKI <= 0 || res.CondMPKI > 60 {
		t.Fatalf("cond MPKI %.2f", res.CondMPKI)
	}
	t.Logf("int02 baseline: IPC=%.3f uopHR=%.3f switchPKI=%.2f condMPKI=%.2f",
		res.IPC, res.UopHitRate, res.SwitchPKI, res.CondMPKI)
}

func TestDeterminism(t *testing.T) {
	a := run(t, Baseline(), "crypto02", 50_000, 100_000)
	b := run(t, Baseline(), "crypto02", 50_000, 100_000)
	if a.Cycles != b.Cycles || a.Insts != b.Insts {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d cycles/insts",
			a.Cycles, a.Insts, b.Cycles, b.Insts)
	}
}

func TestUopCacheHitRateOrdering(t *testing.T) {
	// Small-footprint crypto must hit far more than a large srv trace.
	c := run(t, Baseline(), "crypto02", 100_000, 200_000)
	s := run(t, Baseline(), "srv206", 100_000, 200_000)
	if c.UopHitRate < 0.85 {
		t.Errorf("crypto02 hit rate %.3f, want > 0.85", c.UopHitRate)
	}
	if s.UopHitRate > c.UopHitRate-0.1 {
		t.Errorf("srv206 hit rate %.3f not clearly below crypto02 %.3f",
			s.UopHitRate, c.UopHitRate)
	}
	t.Logf("hit rates: crypto02=%.3f srv206=%.3f", c.UopHitRate, s.UopHitRate)
}

func TestIdealUopCacheBeatsReal(t *testing.T) {
	base := run(t, Baseline(), "srv203", 100_000, 200_000)
	ideal := Baseline()
	ideal.Name = "ideal-uop"
	ideal.Ideal.UopAlwaysHit = true
	id := run(t, ideal, "srv203", 100_000, 200_000)
	if id.IPC <= base.IPC {
		t.Fatalf("ideal µ-op cache IPC %.3f <= baseline %.3f", id.IPC, base.IPC)
	}
	t.Logf("srv203: base=%.3f ideal=%.3f (+%.1f%%)", base.IPC, id.IPC,
		100*(id.IPC/base.IPC-1))
}

func TestNoUopCacheSlower(t *testing.T) {
	// On a µ-op-cache-friendly trace, removing the µ-op cache must
	// reduce IPC.
	base := run(t, Baseline(), "crypto02", 100_000, 200_000)
	no := Baseline()
	no.Name = "no-uop"
	no.Ideal.NoUopCache = true
	n := run(t, no, "crypto02", 100_000, 200_000)
	if n.IPC >= base.IPC {
		t.Fatalf("no-µ-op-cache IPC %.3f >= baseline %.3f", n.IPC, base.IPC)
	}
	if n.UopHitRate != 0 {
		t.Fatalf("no-uop config reports hit rate %.3f", n.UopHitRate)
	}
	t.Logf("crypto02: no-uop=%.3f base=%.3f (+%.1f%%)", n.IPC, base.IPC,
		100*(base.IPC/n.IPC-1))
}

func TestUCPRuns(t *testing.T) {
	cfg := WithUCP(core.DefaultConfig())
	res := run(t, cfg, "srv205", 100_000, 200_000)
	if res.UCP.Triggers == 0 {
		t.Fatal("UCP never triggered")
	}
	if res.UCP.FillsInserted == 0 {
		t.Fatal("UCP never filled the µ-op cache")
	}
	if res.UCPStorageKB < 10 || res.UCPStorageKB > 16 {
		t.Errorf("UCP storage %.2fKB, paper says 12.95KB", res.UCPStorageKB)
	}
	t.Logf("UCP srv205: IPC=%.3f triggers=%d fills=%d prefAcc=%.3f storage=%.2fKB",
		res.IPC, res.UCP.Triggers, res.UCP.FillsInserted, res.PrefetchAccuracy, res.UCPStorageKB)
}

func TestUCPNoIndStorage(t *testing.T) {
	cfg := WithUCP(core.NoIndConfig())
	cfg.Name = "UCP-NoInd"
	res := run(t, cfg, "int02", 60_000, 100_000)
	if res.UCPStorageKB < 6 || res.UCPStorageKB > 11 {
		t.Errorf("UCP-NoInd storage %.2fKB, paper says 8.95KB", res.UCPStorageKB)
	}
}

func TestArchitecturalNeutrality(t *testing.T) {
	// UCP, prefetchers, and ideal modes must not change WHAT commits —
	// only timing. Committed counts equal across configs by
	// construction; verify committed == requested for several configs.
	for _, cfg := range []Config{
		Baseline(),
		WithUCP(core.DefaultConfig()),
		func() Config { c := Baseline(); c.L1IPrefetcher = "fnlmma"; return c }(),
	} {
		res := run(t, cfg, "int01", 50_000, 100_000)
		// Commit width granularity can shave a few µ-ops off the window.
		if res.Insts < 99_000 {
			t.Errorf("%s: measured %d insts", cfg.Name, res.Insts)
		}
	}
}

func TestPrefetcherVariantsRun(t *testing.T) {
	for _, name := range []string{"fnlmma", "fnlmma++", "djolt", "ep", "ep++"} {
		cfg := Baseline()
		cfg.Name = name
		cfg.L1IPrefetcher = name
		res := run(t, cfg, "srv202", 60_000, 100_000)
		if res.IPC <= 0 {
			t.Errorf("%s: IPC %.3f", name, res.IPC)
		}
	}
}

func TestMRCRuns(t *testing.T) {
	cfg := Baseline()
	cfg.Name = "mrc"
	mrc := prefetch.MRCConfigKB(33)
	cfg.MRC = &mrc
	res := run(t, cfg, "srv203", 60_000, 100_000)
	if res.IPC <= 0 {
		t.Fatalf("MRC IPC %.3f", res.IPC)
	}
}

func TestIdealBRCondBeatsBaseline(t *testing.T) {
	base := run(t, Baseline(), "srv205", 100_000, 200_000)
	br := Baseline()
	br.Name = "idealbrcond16"
	br.Ideal.BRCondN = 16
	b16 := run(t, br, "srv205", 100_000, 200_000)
	if b16.IPC < base.IPC {
		t.Fatalf("IdealBRCond-16 IPC %.3f < baseline %.3f", b16.IPC, base.IPC)
	}
	t.Logf("srv205: base=%.3f brcond16=%.3f (+%.2f%%)", base.IPC, b16.IPC,
		100*(b16.IPC/base.IPC-1))
}

func TestLearnedCodeForFileTraces(t *testing.T) {
	// Running UCP over a recorded trace (no Program) must still fill the
	// µ-op cache, using classes learned from the stream.
	prof, _ := trace.ProfileByName("srv201")
	prog, err := trace.BuildProgram(prof)
	if err != nil {
		t.Fatal(err)
	}
	insts := trace.Collect(trace.NewWalker(prog), 400_000)
	cfg := WithUCP(core.DefaultConfig())
	cfg.WarmupInsts, cfg.MeasureInsts = 150_000, 150_000
	res, err := Run(cfg, trace.NewSliceSource(insts), nil, "file")
	if err != nil {
		t.Fatal(err)
	}
	if res.UCP.Triggers == 0 || res.UCP.FillsInserted == 0 {
		t.Fatalf("UCP inert on a recorded trace: %+v", res.UCP)
	}
}

func TestLearnedCode(t *testing.T) {
	lc := NewLearnedCode()
	if _, ok := lc.ClassAt(0x1000); ok {
		t.Fatal("empty map knows an address")
	}
	in := isaInst()
	lc.Observe(&in)
	if c, ok := lc.ClassAt(in.PC); !ok || c != in.Class {
		t.Fatalf("learned class %v ok=%v", c, ok)
	}
	if lc.Known() != 1 {
		t.Fatalf("known %d", lc.Known())
	}
}

func TestInclusiveUopCacheCostsHits(t *testing.T) {
	// The paper keeps the µ-op cache NOT inclusive of the L1I to
	// maximize reach (§IV-G2); the inclusive design point must not
	// increase the hit rate on a footprint-heavy trace.
	base := run(t, Baseline(), "srv204", 300_000, 300_000)
	inc := Baseline()
	inc.Name = "inclusive"
	inc.InclusiveUop = true
	i := run(t, inc, "srv204", 300_000, 300_000)
	if i.UopHitRate > base.UopHitRate+0.01 {
		t.Fatalf("inclusive hit rate %.3f above non-inclusive %.3f",
			i.UopHitRate, base.UopHitRate)
	}
	if i.Uop.Invalidations == 0 {
		t.Fatal("inclusion never invalidated anything on a big footprint")
	}
}

func TestHistogramsPopulated(t *testing.T) {
	res := run(t, Baseline(), "int02", 150_000, 150_000)
	if res.StreamLens.Count() == 0 {
		t.Fatal("no stream-length samples")
	}
	if res.RefillLat.Count() == 0 {
		t.Fatal("no refill-latency samples")
	}
	if res.StreamLens.Mean() <= 0 {
		t.Fatal("degenerate stream lengths")
	}
}

func TestStreamLengthsLongerOnCrypto(t *testing.T) {
	// The paper's core observation (§III-A): small kernels sustain long
	// µ-op hit streams; flat datacenter code does not.
	c := run(t, Baseline(), "crypto02", 150_000, 200_000)
	s := run(t, Baseline(), "srv206", 150_000, 200_000)
	if c.StreamLens.Mean() <= s.StreamLens.Mean() {
		t.Fatalf("crypto stream mean %.1f not above srv %.1f",
			c.StreamLens.Mean(), s.StreamLens.Mean())
	}
	t.Logf("stream length mean: crypto02=%.1f srv206=%.1f",
		c.StreamLens.Mean(), s.StreamLens.Mean())
}

func TestUCPShortensRefills(t *testing.T) {
	// The mechanism itself: UCP must reduce the mean mispredict-to-
	// first-µ-op refill latency on a trace where it helps.
	base := run(t, Baseline(), "srv205", 600_000, 500_000)
	u := run(t, WithUCP(core.DefaultConfig()), "srv205", 600_000, 500_000)
	if u.RefillLat.Mean() >= base.RefillLat.Mean() {
		t.Fatalf("UCP refill mean %.2f not below baseline %.2f",
			u.RefillLat.Mean(), base.RefillLat.Mean())
	}
	t.Logf("refill latency mean: base=%.2f ucp=%.2f", base.RefillLat.Mean(), u.RefillLat.Mean())
}

func TestWrongPathFetchConfig(t *testing.T) {
	cfg := Baseline()
	cfg.Name = "wrongpath"
	cfg.Frontend.WrongPathFetch = true
	res := run(t, cfg, "srv203", 150_000, 150_000)
	if res.FE.WrongPathInsts == 0 {
		t.Fatal("wrong-path fetch enabled but never walked")
	}
	if res.IPC <= 0 {
		t.Fatal("wrong-path run produced no progress")
	}
}

func TestMRCBeatsNothingOnRefillHeavyTrace(t *testing.T) {
	// The MRC accelerates refills: on a mispredict-heavy trace it should
	// not lose to the baseline (paper: +0.3-0.7% at large sizes).
	base := run(t, Baseline(), "srv209", 500_000, 400_000)
	cfg := Baseline()
	cfg.Name = "mrc132"
	m := prefetch.MRCConfigKB(132)
	cfg.MRC = &m
	res := run(t, cfg, "srv209", 500_000, 400_000)
	if res.IPC < base.IPC*0.995 {
		t.Fatalf("132KB MRC IPC %.4f clearly below baseline %.4f", res.IPC, base.IPC)
	}
	t.Logf("srv209: base=%.4f mrc=%.4f (%+.2f%%)", base.IPC, res.IPC, 100*(res.IPC/base.IPC-1))
}

func TestBlockBTBEndToEnd(t *testing.T) {
	// The block-based BTB must sustain the full machine, with UCP, at
	// comparable quality to the instruction BTB (§IV-C: UCP is agnostic
	// of the BTB organization).
	inst := run(t, WithUCP(core.DefaultConfig()), "srv201", 300_000, 300_000)
	cfg := WithUCP(core.DefaultConfig())
	cfg.Name = "UCP-blockbtb"
	bb := btb.DefaultBlockConfig()
	cfg.BlockBTB = &bb
	blk := run(t, cfg, "srv201", 300_000, 300_000)
	if blk.UCP.Triggers == 0 || blk.UCP.FillsInserted == 0 {
		t.Fatal("UCP inert over the block BTB")
	}
	if blk.IPC < inst.IPC*0.9 {
		t.Fatalf("block BTB IPC %.4f way below instruction BTB %.4f", blk.IPC, inst.IPC)
	}
	t.Logf("srv201 UCP: instBTB=%.4f blockBTB=%.4f", inst.IPC, blk.IPC)
}

// TestObservingSourceStaysScalar pins that observingSource does NOT
// satisfy trace.BatchSource (and no other skip/warm fast path either):
// a batch path would let the frontend read ahead of the simulated fetch
// stream and reach LearnedCode.Observe cycles early, which is
// architecturally visible and breaks the determinism digest.
func TestObservingSourceStaysScalar(t *testing.T) {
	var src trace.Source = &observingSource{}
	if _, ok := src.(trace.BatchSource); ok {
		t.Fatal("observingSource satisfies trace.BatchSource; it must stay scalar-only (see learnedcode.go)")
	}
	// The skip fast paths would bypass Observe the same way.
	if _, ok := src.(trace.Skipper); ok {
		t.Fatal("observingSource satisfies trace.Skipper, bypassing LearnedCode.Observe")
	}
	if _, ok := src.(trace.WarmSkipper); ok {
		t.Fatal("observingSource satisfies trace.WarmSkipper, bypassing LearnedCode.Observe")
	}
}

func TestObservingSourceReset(t *testing.T) {
	prof, _ := trace.ProfileByName("crypto01")
	prog, _ := trace.BuildProgram(prof)
	lc := NewLearnedCode()
	src := &observingSource{src: trace.NewLimit(trace.NewWalker(prog), 100), code: lc}
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	if n != 100 {
		t.Fatalf("observed %d", n)
	}
	if lc.Known() == 0 {
		t.Fatal("nothing learned")
	}
	src.Reset()
	if _, ok := src.Next(); !ok {
		t.Fatal("reset source empty")
	}
}

func TestResultCarriesConfigName(t *testing.T) {
	cfg := Baseline()
	cfg.Name = "custom-label"
	res := run(t, cfg, "crypto01", 60_000, 60_000)
	if res.Name != "custom-label" || res.Trace != "crypto01" {
		t.Fatalf("labels %q/%q", res.Name, res.Trace)
	}
}

func TestTraceEndsDuringWarmupErrors(t *testing.T) {
	prof, _ := trace.ProfileByName("crypto01")
	prog, _ := trace.BuildProgram(prof)
	cfg := Baseline()
	cfg.WarmupInsts, cfg.MeasureInsts = 1_000_000, 1_000_000
	src := trace.NewLimit(trace.NewWalker(prog), 10_000) // far too short
	if _, err := Run(cfg, src, prog, "short"); err == nil {
		t.Fatal("truncated trace accepted")
	}
}
