package sim

import (
	"strings"
	"testing"

	"ucp/internal/core"
)

// TestConfigValidate exercises the machine-level validation that Run
// performs before assembling anything: broken sub-structure geometries
// must be rejected with an explanatory error, and every shipped
// configuration must pass.
func TestConfigValidate(t *testing.T) {
	if err := Baseline().Validate(); err != nil {
		t.Fatalf("baseline rejected: %v", err)
	}
	if err := WithUCP(core.DefaultConfig()).Validate(); err != nil {
		t.Fatalf("UCP config rejected: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantSub string
	}{
		{"non-power-of-two BTB entries", func(c *Config) { c.BTB.Entries = 3000 }, "power of two"},
		{"non-power-of-two BTB banks", func(c *Config) { c.BTB.Banks = 12 }, "power of two"},
		{"BTB ways exceed entries", func(c *Config) { c.BTB.Entries = 4; c.BTB.Ways = 8 }, "exceeds"},
		{"zero uop-cache capacity", func(c *Config) { c.Uop.Ops = 0 }, "Ops"},
		{"uop entry wider than 4-bit count", func(c *Config) { c.Uop.OpsPerEntry = 16 }, "OpsPerEntry"},
		{"uop branches exceed 2-bit count", func(c *Config) { c.Uop.MaxBranches = 4 }, "MaxBranches"},
		{"zero RAS", func(c *Config) { c.RASEntries = 0 }, "RASEntries"},
		{"unknown prefetcher", func(c *Config) { c.L1IPrefetcher = "mystery" }, "prefetcher"},
		{"zero measurement", func(c *Config) { c.MeasureInsts = 0 }, "MeasureInsts"},
		{"broken ITTAGE", func(c *Config) { c.Ind.Tables = 0 }, "Tables"},
		{"broken TAGE bimodal", func(c *Config) { c.Pred.Tage.BimodalBits = 0 }, "BimodalBits"},
		{"broken UCP sub-config", func(c *Config) {
			u := core.DefaultConfig()
			u.WalkWidth = 0
			c.UCP = &u
		}, "WalkWidth"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := WithUCP(core.DefaultConfig())
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("Validate accepted an invalid config")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestRunRejectsInvalidConfig proves validation is wired into Run, not
// just available.
func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := Baseline()
	cfg.Uop.MaxBranches = 7
	_, err := Run(cfg, nil, nil, "none")
	if err == nil || !strings.Contains(err.Error(), "MaxBranches") {
		t.Fatalf("Run did not reject invalid config: %v", err)
	}
}
