package stats

import "math"

// tCrit95 holds two-sided 95% Student-t critical values for 1..30
// degrees of freedom. Beyond 30 the normal approximation (1.96) is
// within 2% and the sampled-simulation windows this serves never need
// tighter.
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the sample mean of xs and the half-width of its 95%
// confidence interval under the Student-t small-sample model (the
// interval is mean ± half). Edge cases: an empty series yields (0, 0);
// a single sample yields its value with an infinite half-width (one
// observation bounds nothing); a constant series yields (value, 0).
func CI95(xs []float64) (mean, half float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	if n == 1 {
		return mean, math.Inf(1)
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1)) // Bessel-corrected
	df := n - 1
	t := 1.96
	if df <= len(tCrit95) {
		t = tCrit95[df-1]
	}
	return mean, t * sd / math.Sqrt(float64(n))
}
