package stats

import (
	"math"
	"testing"
)

func TestCI95EdgeCases(t *testing.T) {
	// Empty series: nothing to estimate.
	if mean, half := CI95(nil); mean != 0 || half != 0 {
		t.Errorf("CI95(nil) = (%v, %v), want (0, 0)", mean, half)
	}
	if mean, half := CI95([]float64{}); mean != 0 || half != 0 {
		t.Errorf("CI95(empty) = (%v, %v), want (0, 0)", mean, half)
	}
	// One sample: its value, but one observation bounds nothing.
	if mean, half := CI95([]float64{2.5}); mean != 2.5 || !math.IsInf(half, 1) {
		t.Errorf("CI95({2.5}) = (%v, %v), want (2.5, +Inf)", mean, half)
	}
	// Constant series: zero variance, zero half-width.
	if mean, half := CI95([]float64{1.25, 1.25, 1.25, 1.25}); mean != 1.25 || half != 0 {
		t.Errorf("CI95(constant) = (%v, %v), want (1.25, 0)", mean, half)
	}
}

func TestCI95KnownValues(t *testing.T) {
	// n=2: mean 2, sd = sqrt(2), half = t(df=1) * sd / sqrt(2) = 12.706.
	mean, half := CI95([]float64{1, 3})
	if mean != 2 {
		t.Errorf("mean = %v, want 2", mean)
	}
	if math.Abs(half-12.706) > 1e-9 {
		t.Errorf("half = %v, want 12.706", half)
	}
	// n=5 of {1,2,3,4,5}: mean 3, sd = sqrt(2.5),
	// half = t(df=4) * sd / sqrt(5) = 2.776 * 0.70711 = 1.96293...
	mean, half = CI95([]float64{1, 2, 3, 4, 5})
	if mean != 3 {
		t.Errorf("mean = %v, want 3", mean)
	}
	if want := 2.776 * math.Sqrt(2.5) / math.Sqrt(5); math.Abs(half-want) > 1e-9 {
		t.Errorf("half = %v, want %v", half, want)
	}
}

// TestCI95LargeSample pins the df>30 normal-approximation branch and the
// 1/sqrt(n) shrinkage: quadrupling the sample count at fixed variance
// halves the half-width.
func TestCI95LargeSample(t *testing.T) {
	mk := func(n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i % 2) // alternating 0/1: sd ~ 0.5
		}
		return xs
	}
	_, h40 := CI95(mk(40))
	sd := math.Sqrt(float64(40) / float64(39) * 0.25)
	if want := 1.96 * sd / math.Sqrt(40); math.Abs(h40-want) > 1e-9 {
		t.Errorf("n=40 half = %v, want %v", h40, want)
	}
	_, h160 := CI95(mk(160))
	if ratio := h40 / h160; math.Abs(ratio-2) > 0.02 {
		t.Errorf("quadrupling n should halve the half-width; ratio = %v", ratio)
	}
}
