package stats

import "math"

// Running is a one-pass Welford accumulator for mean/variance, used by
// the adaptive sampling controller to evaluate its stop rule in O(1)
// per window instead of retaining and re-scanning every window sample.
// Its CI95 method matches the slice-based CI95 function bit-for-bit in
// semantics (same t table, same edge cases) and to float tolerance in
// value; the equivalence is pinned by TestRunningMatchesCI95.
type Running struct {
	n    int
	mean float64
	m2   float64 // sum of squared deviations from the running mean
}

// Add folds one observation into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// Merge folds o's observations into r using Chan et al.'s pairwise
// combine: the merged mean is the count-weighted mean, and the merged
// M2 adds the between-part correction delta²·n_r·n_o/n. The result is
// the same distribution summary Add would have produced over the
// concatenated sample streams (to float tolerance — pinned against the
// naive two-pass moments by TestRunningMergeMatchesTwoPass), which is
// what lets per-worker accumulators combine after a parallel fan-out.
// Merge order perturbs only floating-point rounding, never the
// statistics; the shuffle harness (TestRunningMergeCommutes) pins
// bit-exact commutativity on exactly-representable parts.
//
//ucplint:commutative
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	n := r.n + o.n
	delta := o.mean - r.mean
	r.mean += delta * float64(o.n) / float64(n)
	r.m2 += o.m2 + delta*delta*float64(r.n)*float64(o.n)/float64(n)
	r.n = n
}

// N returns the number of observations added.
func (r *Running) N() int { return r.n }

// Mean returns the running sample mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// CI95 returns the sample mean and the half-width of its 95%
// confidence interval under the same Student-t model as the
// slice-based CI95: empty yields (0, 0); a single sample yields its
// value with an infinite half-width — the adaptive controller relies
// on that +Inf to never terminate on n=1 — and a constant series
// yields (value, 0).
func (r *Running) CI95() (mean, half float64) {
	if r.n == 0 {
		return 0, 0
	}
	if r.n == 1 {
		return r.mean, math.Inf(1)
	}
	sd := math.Sqrt(r.m2 / float64(r.n-1)) // Bessel-corrected
	df := r.n - 1
	t := 1.96
	if df <= len(tCrit95) {
		t = tCrit95[df-1]
	}
	return r.mean, t * sd / math.Sqrt(float64(r.n))
}
