package stats

import (
	"fmt"
	"math"
	"testing"

	"ucp/internal/rng"
)

// TestRunningMatchesCI95 pins the equivalence between the one-pass
// Welford accumulator and the slice-based CI95 across sample counts
// spanning the whole t table and beyond, including heavy-cancellation
// series where a naive sum-of-squares accumulator loses precision.
func TestRunningMatchesCI95(t *testing.T) {
	r := rng.New(7)
	for _, n := range []int{2, 3, 5, 10, 29, 30, 31, 50, 500} {
		for _, scale := range []float64{1, 1e-6, 1e6} {
			var xs []float64
			var run Running
			for i := 0; i < n; i++ {
				// Offset well away from zero so relative-error checks
				// exercise cancellation in the variance accumulation.
				x := 1000 + scale*(r.Float64()-0.5)
				xs = append(xs, x)
				run.Add(x)
			}
			wantMean, wantHalf := CI95(xs)
			gotMean, gotHalf := run.CI95()
			if relErr(gotMean, wantMean) > 1e-12 {
				t.Errorf("n=%d scale=%g: mean %.17g, CI95 says %.17g", n, scale, gotMean, wantMean)
			}
			if relErr(gotHalf, wantHalf) > 1e-6 {
				t.Errorf("n=%d scale=%g: half %.17g, CI95 says %.17g", n, scale, gotHalf, wantHalf)
			}
			if run.N() != n {
				t.Errorf("n=%d: N() = %d", n, run.N())
			}
		}
	}
}

func relErr(got, want float64) float64 {
	if got == want {
		return 0
	}
	d := math.Abs(got - want)
	if m := math.Abs(want); m > 0 {
		return d / m
	}
	return d
}

// TestRunningMergeMatchesTwoPass pins Merge (Chan et al.'s pairwise
// combine) against the naive two-pass moments: however a sample stream
// is split into parts and however those parts are merged, the combined
// accumulator must report the same count, mean, and sum of squared
// deviations as a direct two-pass computation over the whole stream.
func TestRunningMergeMatchesTwoPass(t *testing.T) {
	r := rng.New(21)
	for _, n := range []int{2, 7, 30, 257} {
		for _, parts := range []int{1, 2, 3, 8} {
			var xs []float64
			for i := 0; i < n; i++ {
				xs = append(xs, 1000+1e3*(r.Float64()-0.5))
			}
			// Two-pass reference.
			sum := 0.0
			for _, x := range xs {
				sum += x
			}
			wantMean := sum / float64(n)
			wantM2 := 0.0
			for _, x := range xs {
				wantM2 += (x - wantMean) * (x - wantMean)
			}
			// Split round-robin into parts, accumulate, merge left to right.
			accs := make([]Running, parts)
			for i, x := range xs {
				accs[i%parts].Add(x)
			}
			var merged Running
			for i := range accs {
				merged.Merge(&accs[i])
			}
			if merged.n != n {
				t.Errorf("n=%d parts=%d: merged count %d", n, parts, merged.n)
			}
			if relErr(merged.mean, wantMean) > 1e-12 {
				t.Errorf("n=%d parts=%d: merged mean %.17g, two-pass %.17g", n, parts, merged.mean, wantMean)
			}
			if relErr(merged.m2, wantM2) > 1e-9 {
				t.Errorf("n=%d parts=%d: merged m2 %.17g, two-pass %.17g", n, parts, merged.m2, wantM2)
			}
		}
	}
}

// TestRunningMergeEdgeCases: merging an empty accumulator (either side)
// must be the identity, and single-sample parts must combine into the
// same state Add would build.
func TestRunningMergeEdgeCases(t *testing.T) {
	var a, empty Running
	a.Add(2)
	a.Add(4)
	before := a
	a.Merge(&empty)
	if a != before {
		t.Errorf("merging empty changed the accumulator: %+v -> %+v", before, a)
	}
	empty.Merge(&a)
	if empty != a {
		t.Errorf("merging into empty did not copy: %+v vs %+v", empty, a)
	}

	var x, y, ref Running
	x.Add(2)
	y.Add(4)
	x.Merge(&y)
	ref.Add(2)
	ref.Add(4)
	if x.n != ref.n || relErr(x.mean, ref.mean) > 1e-15 || relErr(x.m2, ref.m2) > 1e-15 {
		t.Errorf("single-sample merge %+v differs from sequential Add %+v", x, ref)
	}
}

// TestRunningMergeCommutes backs Merge's //ucplint:commutative
// annotation with the dynamic shuffle harness. The parts are built so
// every intermediate value is exactly representable — each part holds
// the two samples c±2^a, so its mean is exactly c and its m2 exactly
// 2·4^a, making every merge's delta zero and every m2 addition a sum
// of distinct powers of two — which pins bit-exact digest equality
// under any merge order, not just statistical equivalence. Registered
// in ucplint's verified set
// (TestCommutativeAnnotationsAreShuffleTested).
func TestRunningMergeCommutes(t *testing.T) {
	const c = 1000
	parts := make([]*Running, 12)
	for i := range parts {
		var r Running
		r.Add(c - float64(int64(1)<<i))
		r.Add(c + float64(int64(1)<<i))
		parts[i] = &r
	}
	err := CheckCommutative(
		func() *Running { return &Running{} },
		func(dst, src *Running) { dst.Merge(src) },
		func(r *Running) string {
			return fmt.Sprintf("n=%d mean=%x m2=%x", r.n,
				math.Float64bits(r.mean), math.Float64bits(r.m2))
		},
		parts, 0xD1CE, 64,
	)
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunningEdgeCases pins the empty/single/constant edge cases the
// adaptive stop rule depends on: in particular one sample must report
// an infinite half-width so the controller can never terminate on n=1.
func TestRunningEdgeCases(t *testing.T) {
	var empty Running
	if mean, half := empty.CI95(); mean != 0 || half != 0 {
		t.Errorf("empty: got (%g, %g), want (0, 0)", mean, half)
	}

	var one Running
	one.Add(3.25)
	mean, half := one.CI95()
	if mean != 3.25 || !math.IsInf(half, 1) {
		t.Errorf("single sample: got (%g, %g), want (3.25, +Inf)", mean, half)
	}
	sMean, sHalf := CI95([]float64{3.25})
	if sMean != mean || !math.IsInf(sHalf, 1) {
		t.Errorf("CI95 single-sample disagreement: got (%g, %g)", sMean, sHalf)
	}

	var c Running
	for i := 0; i < 8; i++ {
		c.Add(2.5)
	}
	if mean, half := c.CI95(); mean != 2.5 || half != 0 {
		t.Errorf("constant series: got (%g, %g), want (2.5, 0)", mean, half)
	}
}
