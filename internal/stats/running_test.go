package stats

import (
	"math"
	"testing"

	"ucp/internal/rng"
)

// TestRunningMatchesCI95 pins the equivalence between the one-pass
// Welford accumulator and the slice-based CI95 across sample counts
// spanning the whole t table and beyond, including heavy-cancellation
// series where a naive sum-of-squares accumulator loses precision.
func TestRunningMatchesCI95(t *testing.T) {
	r := rng.New(7)
	for _, n := range []int{2, 3, 5, 10, 29, 30, 31, 50, 500} {
		for _, scale := range []float64{1, 1e-6, 1e6} {
			var xs []float64
			var run Running
			for i := 0; i < n; i++ {
				// Offset well away from zero so relative-error checks
				// exercise cancellation in the variance accumulation.
				x := 1000 + scale*(r.Float64()-0.5)
				xs = append(xs, x)
				run.Add(x)
			}
			wantMean, wantHalf := CI95(xs)
			gotMean, gotHalf := run.CI95()
			if relErr(gotMean, wantMean) > 1e-12 {
				t.Errorf("n=%d scale=%g: mean %.17g, CI95 says %.17g", n, scale, gotMean, wantMean)
			}
			if relErr(gotHalf, wantHalf) > 1e-6 {
				t.Errorf("n=%d scale=%g: half %.17g, CI95 says %.17g", n, scale, gotHalf, wantHalf)
			}
			if run.N() != n {
				t.Errorf("n=%d: N() = %d", n, run.N())
			}
		}
	}
}

func relErr(got, want float64) float64 {
	if got == want {
		return 0
	}
	d := math.Abs(got - want)
	if m := math.Abs(want); m > 0 {
		return d / m
	}
	return d
}

// TestRunningEdgeCases pins the empty/single/constant edge cases the
// adaptive stop rule depends on: in particular one sample must report
// an infinite half-width so the controller can never terminate on n=1.
func TestRunningEdgeCases(t *testing.T) {
	var empty Running
	if mean, half := empty.CI95(); mean != 0 || half != 0 {
		t.Errorf("empty: got (%g, %g), want (0, 0)", mean, half)
	}

	var one Running
	one.Add(3.25)
	mean, half := one.CI95()
	if mean != 3.25 || !math.IsInf(half, 1) {
		t.Errorf("single sample: got (%g, %g), want (3.25, +Inf)", mean, half)
	}
	sMean, sHalf := CI95([]float64{3.25})
	if sMean != mean || !math.IsInf(sHalf, 1) {
		t.Errorf("CI95 single-sample disagreement: got (%g, %g)", sMean, sHalf)
	}

	var c Running
	for i := 0; i < 8; i++ {
		c.Add(2.5)
	}
	if mean, half := c.CI95(); mean != 2.5 || half != 0 {
		t.Errorf("constant series: got (%g, %g), want (2.5, 0)", mean, half)
	}
}
