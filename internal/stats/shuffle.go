package stats

import (
	"fmt"

	"ucp/internal/rng"
)

// CheckCommutative is the dynamic half of ucplint's mergeorder rule:
// every merge method annotated //ucplint:commutative must be backed by
// a test that calls this helper. It merges parts into a fresh
// accumulator in `rounds` seeded random orders and fails on the first
// order whose digest differs from the reference (identity) order — the
// exact property time-parallel aggregation needs, since segment results
// arrive in worker-completion order.
//
// digest must capture every merged field bit-exactly (use
// math.Float64bits for floats); a digest that rounds would hide exactly
// the low-bit divergence this check exists to catch.
func CheckCommutative[T any](newAcc func() T, merge func(dst, src T), digest func(T) string, parts []T, seed uint64, rounds int) error {
	combine := func(order []int) string {
		acc := newAcc()
		for _, i := range order {
			merge(acc, parts[i])
		}
		return digest(acc)
	}
	order := make([]int, len(parts))
	for i := range order {
		order[i] = i
	}
	want := combine(order)
	r := rng.New(seed)
	for round := 0; round < rounds; round++ {
		// Fisher–Yates over the index slice, seeded: reproducible
		// failures, no ambient randomness.
		for i := len(order) - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		if got := combine(order); got != want {
			return fmt.Errorf("merge is order-sensitive: round %d (seed %d) produced\n  %s\nwant (identity order)\n  %s",
				round, seed, got, want)
		}
	}
	return nil
}
