package stats

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"ucp/internal/rng"
)

// histDigest renders every merged Histogram field bit-exactly: the
// float sum goes through Float64bits so a single ULP of divergence
// fails the check.
func histDigest(h *Histogram) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "count=%d sum=%016x min=%d max=%d buckets=%v",
		h.count, math.Float64bits(h.sum), h.min, h.max, h.buckets)
	return sb.String()
}

// TestHistogramMergeCommutes backs the //ucplint:commutative annotation
// on Histogram.Merge: merging per-segment histograms in seeded random
// orders must be bit-identical to the identity order. This holds
// because every sample enters via Add(uint64) — the float sum is a
// total of integer-valued float64 terms, exact below 2^53.
func TestHistogramMergeCommutes(t *testing.T) {
	r := rng.New(0xC0FFEE)
	parts := make([]*Histogram, 16)
	for i := range parts {
		parts[i] = NewHistogram("seg")
		// Skewed sizes and magnitudes: small counts merged after huge
		// sums is where a float accumulation would round if it could.
		n := 1 + r.Intn(200)
		for j := 0; j < n; j++ {
			parts[i].Add(r.Uint64n(1 << uint(4+i)))
		}
	}
	err := CheckCommutative(
		func() *Histogram { return NewHistogram("seg") },
		func(dst, src *Histogram) { dst.Merge(src) },
		histDigest,
		parts, 0xD1CE, 64,
	)
	if err != nil {
		t.Fatal(err)
	}
}

// TestCheckCommutativeCatchesOrderSensitivity proves the harness has
// teeth: a deliberately order-sensitive merge (float division chain)
// must be rejected.
func TestCheckCommutativeCatchesOrderSensitivity(t *testing.T) {
	type frac struct{ v float64 }
	r := rng.New(7)
	parts := make([]*frac, 12)
	for i := range parts {
		parts[i] = &frac{v: 1 + r.Float64()}
	}
	err := CheckCommutative(
		func() *frac { return &frac{v: 1} },
		func(dst, src *frac) { dst.v = dst.v/3 + src.v }, // order-sensitive on purpose
		func(f *frac) string { return fmt.Sprintf("%016x", math.Float64bits(f.v)) },
		parts, 99, 64,
	)
	if err == nil {
		t.Fatal("CheckCommutative accepted an order-sensitive merge")
	}
}
