// Package stats provides the small statistics toolkit the simulator's
// analyses are built on: log-bucketed histograms (stream lengths, refill
// latencies), streaming means, and aggregate helpers. The paper reasons
// about distributions — e.g. "the µ-op cache is only beneficial for
// applications that exhibit long enough streams of consecutive hits"
// (§III-A) — so the harness reports them, not just means.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// Histogram is a power-of-two bucketed histogram of non-negative
// samples: bucket i counts samples in [2^i, 2^(i+1)) with bucket 0
// holding zeros and ones.
type Histogram struct {
	name    string
	buckets [40]uint64
	count   uint64
	sum     float64
	min     uint64
	max     uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram(name string) *Histogram {
	return &Histogram{name: name, min: math.MaxUint64}
}

// bucketOf maps v to its power-of-two bucket: floor(log2(v)), with 0
// and 1 sharing bucket 0 and everything ≥ 2^39 clamped into bucket 39.
// bits.Len64 keeps the Add path loop- and branch-free.
func bucketOf(v uint64) int {
	b := bits.Len64(v|1) - 1
	if b >= 40 {
		b = 39
	}
	return b
}

// Add records one sample. It is called per event from the cycle
// engine's inner loop and must stay allocation-free.
//
//ucplint:hotpath
func (h *Histogram) Add(v uint64) {
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max return the observed extremes (0 when empty).
func (h *Histogram) Min() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observed sample.
func (h *Histogram) Max() uint64 { return h.max }

// Percentile returns an upper bound on the p-th percentile (p in
// [0,100]) at bucket resolution.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var acc uint64
	for i, c := range h.buckets {
		acc += c
		if acc >= target {
			if i == 0 {
				return 1
			}
			return 1<<uint(i+1) - 1 // inclusive bucket upper bound
		}
	}
	return h.max
}

// String renders a compact one-line summary.
func (h *Histogram) String() string {
	return fmt.Sprintf("%s: n=%d mean=%.1f p50≤%d p90≤%d p99≤%d max=%d",
		h.name, h.count, h.Mean(), h.Percentile(50), h.Percentile(90),
		h.Percentile(99), h.Max())
}

// Render draws an ASCII bar chart of the non-empty buckets.
func (h *Histogram) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (n=%d, mean=%.1f)\n", h.name, h.count, h.Mean())
	var peak uint64
	last := 0
	for i, c := range h.buckets {
		if c > peak {
			peak = c
		}
		if c > 0 {
			last = i
		}
	}
	if peak == 0 {
		return sb.String()
	}
	for i := 0; i <= last; i++ {
		lo := uint64(0)
		if i > 0 {
			lo = 1 << uint(i)
		}
		hi := uint64(1)<<uint(i+1) - 1
		bar := int(40 * h.buckets[i] / peak)
		fmt.Fprintf(&sb, "%10d-%-10d |%-40s %d\n", lo, hi, strings.Repeat("#", bar), h.buckets[i])
	}
	return sb.String()
}

// histogramState is the exported wire form of a Histogram. The on-disk
// result cache (internal/runq) serializes whole sim.Results as JSON, so
// the round trip must preserve every field a report can render — name,
// buckets, count, sum, min, max — or a cache-warm rerun would print
// different bytes than the run that populated the cache.
type histogramState struct {
	Name    string   `json:"name"`
	Buckets []uint64 `json:"buckets"`
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
}

// MarshalJSON implements json.Marshaler.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramState{
		Name:    h.name,
		Buckets: h.buckets[:],
		Count:   h.count,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var s histogramState
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	if len(s.Buckets) > len(h.buckets) {
		return fmt.Errorf("stats: histogram %q has %d buckets, want ≤ %d",
			s.Name, len(s.Buckets), len(h.buckets))
	}
	*h = Histogram{name: s.Name, count: s.Count, sum: s.Sum, min: s.Min, max: s.Max}
	copy(h.buckets[:], s.Buckets)
	return nil
}

// Merge adds other's samples into h (bucket-wise; min/max/mean exact).
//
// The float sum is exact under any merge order: every sample enters via
// Add(uint64), so sum is a total of integer-valued float64 terms, and
// integer-valued float64 addition below 2^53 never rounds. The
// annotation is verified dynamically by TestHistogramMergeCommutes
// (shuffle-merge under seeded random orderings).
//
//ucplint:commutative
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	h.count += other.count
	h.sum += other.sum
	if other.count > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Clone returns an independent copy of h (nil-safe). Aggregators that
// must not mutate their inputs — the time-parallel merge reduces shared
// per-segment results more than once under the shuffle-merge harness —
// clone before merging.
func (h *Histogram) Clone() *Histogram {
	if h == nil {
		return nil
	}
	c := *h
	return &c
}

// Geomean computes the geometric mean of ratios (b[i]/a[i]) minus one,
// as a percentage — the speedup aggregation the paper uses (§V).
func Geomean(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: mismatched lengths %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, nil
	}
	sum := 0.0
	for i := range a {
		if a[i] <= 0 || b[i] <= 0 {
			return 0, fmt.Errorf("stats: non-positive sample at %d", i)
		}
		sum += math.Log(b[i] / a[i])
	}
	return (math.Exp(sum/float64(len(a))) - 1) * 100, nil
}

// Amean is the arithmetic mean (0 when empty).
func Amean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
