package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram("x")
	for _, v := range []uint64{0, 1, 2, 3, 8, 100} {
		h.Add(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Min() != 0 || h.Max() != 100 {
		t.Fatalf("min/max %d/%d", h.Min(), h.Max())
	}
	if m := h.Mean(); math.Abs(m-19.0) > 0.01 {
		t.Fatalf("mean %v", m)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram("empty")
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	if !strings.Contains(h.Render(), "empty") {
		t.Fatal("render must include the name")
	}
}

func TestPercentileMonotone(t *testing.T) {
	if err := quick.Check(func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram("q")
		for _, v := range vals {
			h.Add(uint64(v))
		}
		last := uint64(0)
		for _, p := range []float64{10, 25, 50, 75, 90, 99, 100} {
			q := h.Percentile(p)
			if q < last {
				return false
			}
			last = q
		}
		// p100 bound must cover the max.
		return h.Percentile(100) >= h.Max() || h.Percentile(100) >= 1<<15
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileBounds(t *testing.T) {
	h := NewHistogram("p")
	for i := uint64(1); i <= 1000; i++ {
		h.Add(i)
	}
	// p50 of uniform 1..1000 is ~500; the bucket bound gives ≤1023.
	if q := h.Percentile(50); q < 256 || q > 1024 {
		t.Fatalf("p50 bound %d", q)
	}
}

func TestMerge(t *testing.T) {
	a, b := NewHistogram("a"), NewHistogram("b")
	a.Add(1)
	a.Add(100)
	b.Add(50)
	a.Merge(b)
	if a.Count() != 3 || a.Max() != 100 || a.Min() != 1 {
		t.Fatalf("merged %s", a)
	}
	if math.Abs(a.Mean()-(151.0/3)) > 0.01 {
		t.Fatalf("merged mean %v", a.Mean())
	}
}

func TestGeomean(t *testing.T) {
	g, err := Geomean([]float64{1, 2}, []float64{1.1, 2.2})
	if err != nil || math.Abs(g-10) > 0.001 {
		t.Fatalf("geomean %v err %v", g, err)
	}
	if _, err := Geomean([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Geomean([]float64{0}, []float64{1}); err == nil {
		t.Fatal("zero sample accepted")
	}
	if g, err := Geomean(nil, nil); err != nil || g != 0 {
		t.Fatal("empty geomean")
	}
}

func TestAmean(t *testing.T) {
	if Amean(nil) != 0 {
		t.Fatal("empty amean")
	}
	if Amean([]float64{1, 3}) != 2 {
		t.Fatal("amean math")
	}
}

func TestRender(t *testing.T) {
	h := NewHistogram("streams")
	for i := 0; i < 100; i++ {
		h.Add(uint64(i % 16))
	}
	out := h.Render()
	if !strings.Contains(out, "#") {
		t.Fatalf("no bars:\n%s", out)
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram("refill latency")
	for _, v := range []uint64{0, 1, 3, 9, 200, 1 << 30} {
		h.Add(v)
	}
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	got := NewHistogram("")
	if err := json.Unmarshal(b, got); err != nil {
		t.Fatal(err)
	}
	if got.Render() != h.Render() || got.String() != h.String() {
		t.Fatalf("round trip changed rendering:\n%s\nvs\n%s", got.Render(), h.Render())
	}
	if got.Mean() != h.Mean() || got.Percentile(90) != h.Percentile(90) ||
		got.Min() != h.Min() || got.Max() != h.Max() || got.Count() != h.Count() {
		t.Fatal("round trip changed summary statistics")
	}
}

func TestHistogramJSONRoundTripEmpty(t *testing.T) {
	h := NewHistogram("empty")
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	got := NewHistogram("x")
	if err := json.Unmarshal(b, got); err != nil {
		t.Fatal(err)
	}
	if got.Render() != h.Render() {
		t.Fatal("empty histogram rendering changed")
	}
	// The empty-histogram min sentinel (MaxUint64) must survive so that
	// later Adds still track the true minimum.
	got.Add(7)
	if got.Min() != 7 {
		t.Fatalf("min after round trip + Add = %d, want 7", got.Min())
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 1 << 20: 20}
	for v, want := range cases {
		if got := bucketOf(v); got != want {
			t.Errorf("bucketOf(%d) = %d, want %d", v, got, want)
		}
	}
	if got := bucketOf(math.MaxUint64); got != 39 {
		t.Errorf("bucketOf(max) = %d", got)
	}
}
