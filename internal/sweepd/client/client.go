// Package client is the sweepd wire client: submission with
// retry/backoff against 503 backpressure, event streaming with
// resume-on-reconnect, and a runq.Runner implementation so the
// experiment harness (and cmd/ucpsim) can run every existing sweep
// against a remote server behind a -server flag with byte-identical
// reports.
package client

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"ucp/internal/runq"
	"ucp/internal/sim"
	"ucp/internal/sweepd"
)

// Client talks to one sweepd server. The zero value is not usable;
// call New.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8344".
	BaseURL string
	// HTTP is the transport; New installs http.DefaultClient. Streams
	// hold connections open for the life of a job, so do not set a
	// global Timeout on it — bound individual calls with MaxRetries
	// and the server's own request deadlines instead.
	HTTP *http.Client
	// MaxRetries bounds per-request retry attempts after the first try
	// (default 5). Retries apply to transport errors, 5xx, and 503
	// backpressure; 4xx errors are permanent and never retried.
	MaxRetries int
	// Backoff is the base delay between retries (default 250ms),
	// doubled per attempt — deterministic, no jitter: randomness is
	// banned outside internal/rng, and lockstep clients resolve
	// through the server's single-flight anyway. A 503's Retry-After
	// overrides the computed delay when longer.
	Backoff time.Duration
	// Progress receives one line per job state change (nil: silent).
	Progress io.Writer
}

// New builds a client with defaults.
func New(baseURL string) *Client {
	return &Client{
		BaseURL:    strings.TrimRight(baseURL, "/"),
		HTTP:       http.DefaultClient,
		MaxRetries: 5,
		Backoff:    250 * time.Millisecond,
	}
}

// apiError is a non-2xx reply: permanent for 4xx, retryable otherwise.
type apiError struct {
	code       int
	msg        string
	retryAfter time.Duration
}

func (e *apiError) Error() string {
	return fmt.Sprintf("sweepd server: %s (HTTP %d)", e.msg, e.code)
}

func (e *apiError) permanent() bool { return e.code >= 400 && e.code < 500 }

// do performs one HTTP exchange, decoding a 2xx JSON body into out
// (when non-nil) and non-2xx bodies into an apiError.
func (c *Client) do(method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		return fmt.Errorf("sweepd client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return fmt.Errorf("sweepd client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("sweepd client: decoding %s reply: %w", path, err)
	}
	return nil
}

func decodeError(resp *http.Response) error {
	e := &apiError{code: resp.StatusCode}
	var reply sweepd.ErrorReply
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&reply); err == nil && reply.Error != "" {
		e.msg = reply.Error
	} else {
		e.msg = resp.Status
	}
	if v := resp.Header.Get("Retry-After"); v != "" {
		if sec, err := strconv.Atoi(v); err == nil && sec > 0 {
			e.retryAfter = time.Duration(sec) * time.Second
		}
	}
	return e
}

// retry runs op under the client's backoff policy.
func (c *Client) retry(op func() error) error {
	delay := c.Backoff
	if delay <= 0 {
		delay = 250 * time.Millisecond
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil {
			return nil
		}
		var ae *apiError
		if errors.As(err, &ae) && ae.permanent() {
			return err
		}
		if attempt >= c.MaxRetries {
			return err
		}
		wait := delay
		if ae != nil && ae.retryAfter > wait {
			wait = ae.retryAfter
		}
		if c.Progress != nil {
			fmt.Fprintf(c.Progress, "sweepd client: %v — retrying in %s (%d/%d)\n",
				err, wait, attempt+1, c.MaxRetries)
		}
		time.Sleep(wait)
		delay *= 2
	}
}

// Submit sends a batch and returns the job IDs in submission order.
// 503 backpressure is retried with the server's Retry-After hint.
func (c *Client) Submit(specs []sweepd.JobSpec) ([]string, error) {
	body, err := json.Marshal(sweepd.SubmitRequest{
		Protocol: sweepd.ProtocolVersion,
		Model:    sim.ModelVersion,
		Jobs:     specs,
	})
	if err != nil {
		return nil, fmt.Errorf("sweepd client: encoding submit: %w", err)
	}
	var resp sweepd.SubmitResponse
	if err := c.retry(func() error { return c.do(http.MethodPost, "/v1/jobs", body, &resp) }); err != nil {
		return nil, err
	}
	if len(resp.IDs) != len(specs) {
		return nil, fmt.Errorf("sweepd client: server admitted %d of %d jobs", len(resp.IDs), len(specs))
	}
	return resp.IDs, nil
}

// Status fetches a job's current status.
func (c *Client) Status(id string) (sweepd.JobStatus, error) {
	var st sweepd.JobStatus
	err := c.retry(func() error { return c.do(http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &st) })
	return st, err
}

// Statz fetches the server's ops counters.
func (c *Client) Statz() (sweepd.Statz, error) {
	var st sweepd.Statz
	err := c.retry(func() error { return c.do(http.MethodGet, "/v1/statz", nil, &st) })
	return st, err
}

// Health fetches liveness.
func (c *Client) Health() (sweepd.Health, error) {
	var h sweepd.Health
	err := c.retry(func() error { return c.do(http.MethodGet, "/v1/healthz", nil, &h) })
	return h, err
}

// Wait follows a job's event stream until the terminal event, then
// returns the final status (with the result). onEvent, when non-nil,
// observes every event exactly once, in order — across reconnects the
// stream resumes from the last seen sequence number, so a dropped
// connection costs a reconnect, not duplicate or lost events.
func (c *Client) Wait(id string, onEvent func(sweepd.Event)) (sweepd.JobStatus, error) {
	lastSeq := 0
	attempts := 0
	for {
		seqBefore := lastSeq
		terminal, err := c.streamOnce(id, &lastSeq, onEvent)
		if terminal {
			return c.Status(id)
		}
		if lastSeq > seqBefore {
			attempts = 0 // forward progress resets the reconnect budget
		}
		if err == nil {
			// Clean EOF without a terminal event: the server ended the
			// response early. Resume — but meter it like a drop, or an
			// unhealthy server would spin us at line rate.
			err = errors.New("stream ended before the terminal event")
		}
		var ae *apiError
		if errors.As(err, &ae) && ae.permanent() {
			return sweepd.JobStatus{}, err
		}
		attempts++
		if attempts > c.MaxRetries {
			return sweepd.JobStatus{}, fmt.Errorf("sweepd client: event stream for %.12s: %w", id, err)
		}
		wait := c.Backoff
		if wait <= 0 {
			wait = 250 * time.Millisecond
		}
		for i := 1; i < attempts; i++ {
			wait *= 2
		}
		if c.Progress != nil {
			fmt.Fprintf(c.Progress, "sweepd client: stream %.12s dropped (%v) — resuming after seq %d in %s\n",
				id, err, lastSeq, wait)
		}
		time.Sleep(wait)
	}
}

// streamOnce opens one events connection from lastSeq and consumes it
// until EOF, updating lastSeq per event. Returns terminal=true once a
// done/failed event was seen.
func (c *Client) streamOnce(id string, lastSeq *int, onEvent func(sweepd.Event)) (bool, error) {
	path := fmt.Sprintf("%s/v1/jobs/%s/events?after=%d", c.BaseURL, url.PathEscape(id), *lastSeq)
	resp, err := c.HTTP.Get(path)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev sweepd.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return false, fmt.Errorf("bad event line: %w", err)
		}
		if ev.Seq <= *lastSeq {
			continue // duplicate on reconnect overlap; drop
		}
		*lastSeq = ev.Seq
		if onEvent != nil {
			onEvent(ev)
		}
		if c.Progress != nil {
			if ev.State == sweepd.StateRefining {
				fmt.Fprintf(c.Progress, "sweepd client: job %.12s %s %d/%d ±%.2f%%\n",
					ev.ID, ev.State, ev.WindowsDone, ev.WindowsTotal, ev.HalfWidth*100)
			} else {
				fmt.Fprintf(c.Progress, "sweepd client: job %.12s %s %d/%d\n",
					ev.ID, ev.State, ev.WindowsDone, ev.WindowsTotal)
			}
		}
		if ev.State == sweepd.StateDone || ev.State == sweepd.StateFailed {
			return true, nil
		}
	}
	return false, sc.Err()
}

// RunAll implements runq.Runner over the wire: submit the whole batch
// (the server dedups by key, against this batch, every other client,
// and its own history), wait for every job, and return results in
// submission order — the same contract as a local pool, which is what
// makes remote reports byte-identical to in-process ones.
func (c *Client) RunAll(jobs []runq.Job) []runq.JobResult {
	results := make([]runq.JobResult, len(jobs))
	specs := make([]sweepd.JobSpec, 0, len(jobs))
	idx := make([]int, 0, len(jobs)) // submitted index -> jobs index
	for i, j := range jobs {
		results[i] = runq.JobResult{Job: j}
		spec, err := sweepd.Spec(j)
		if err != nil {
			results[i].Err = err
			continue
		}
		specs = append(specs, spec)
		idx = append(idx, i)
	}
	if len(specs) == 0 {
		return results
	}
	ids, err := c.Submit(specs)
	if err != nil {
		for _, i := range idx {
			results[i].Err = err
		}
		return results
	}
	for k, i := range idx {
		results[i].Key = ids[k]
	}
	// Wait jobs one at a time, in order: the server executes the whole
	// batch concurrently regardless, and waiting in submission order
	// keeps client-side memory and connection count at one.
	done := make(map[string]int) // id -> first jobs index resolved
	for k, i := range idx {
		id := ids[k]
		if first, ok := done[id]; ok {
			// Intra-batch duplicate: copy the leader's outcome, like
			// the in-process pool does.
			results[i].Result = results[first].Result
			results[i].Err = results[first].Err
			results[i].Source = runq.SourceMemo
			continue
		}
		st, err := c.Wait(id, nil)
		if err != nil {
			results[i].Err = err
		} else if st.Err != "" {
			results[i].Err = fmt.Errorf("%s", st.Err)
			results[i].Source = st.Source
			results[i].Attempts = st.Attempts
		} else if st.Result == nil {
			results[i].Err = fmt.Errorf("sweepd client: job %.12s reported %s with no result", id, st.State)
		} else {
			results[i].Result = *st.Result
			results[i].Source = st.Source
			results[i].Attempts = st.Attempts
		}
		done[id] = i
	}
	return results
}
