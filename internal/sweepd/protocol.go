// Package sweepd is the long-lived multi-tenant simulation service:
// one process owning a single runq.Pool — and through it the shared
// decoded-trace arenas, the warm-checkpoint store, and the
// content-addressed result cache — serving simulation jobs to any
// number of concurrent clients over a versioned JSON HTTP API.
//
// The serving economics mirror what the content-addressed tiers
// already bought a single process, promoted fleet-wide: most requests
// are cache hits, and the expensive misses are scheduled on a bounded
// queue, deduplicated across clients (concurrent submissions of the
// same job key coalesce onto one in-flight execution), and reused by
// every later tenant. One decode, one warm checkpoint, many tenants.
//
// API surface (all under /v1; see DESIGN.md for semantics):
//
//	POST /v1/jobs            submit a batch; idempotent on the job key
//	GET  /v1/jobs/{id}       status + result
//	GET  /v1/jobs/{id}/events streaming NDJSON progress (resumable)
//	GET  /v1/statz           cache/queue/latency counters
//	GET  /v1/healthz         liveness + drain state
package sweepd

import (
	"fmt"

	"ucp/internal/runq"
	"ucp/internal/sim"
	"ucp/internal/stats"
	"ucp/internal/trace"
)

// ProtocolVersion stamps the wire format. Every submit request carries
// it and the server rejects mismatches outright: a client and server
// disagreeing on sim.ModelVersion or the job-key schema would silently
// exchange results computed under different models, which is exactly
// the cache-compatibility bug class the -version flags exist to debug.
const ProtocolVersion = "sweepd-4"

// Job states, in lifecycle order. A job is queued on admission, warming
// once an executor picks it up, measuring when detailed windows start,
// refining when an adaptive run has reached its minimum window count
// and is narrowing its confidence interval, and finally done or failed.
// Coalesced resubmissions observe the original job's state wherever it
// is.
const (
	StateQueued    = "queued"
	StateWarming   = sim.StageWarming
	StateMeasuring = sim.StageMeasuring
	StateRefining  = sim.StageRefining
	StateDone      = "done"
	StateFailed    = "failed"
)

// JobSpec is the wire form of one runq job. Only synthetic-profile
// workloads travel: a recorded trace is server-local state and its
// content digest cannot be resolved client-side, so trace-file jobs
// must run in-process (Spec returns an error for them).
type JobSpec struct {
	Config  sim.Config    `json:"config"`
	Profile trace.Profile `json:"profile"`
	Warmup  uint64        `json:"warmup"`
	Measure uint64        `json:"measure"`
	// Segments > 1 asks the server to run the job time-parallel:
	// per-segment (internal/tpar) with the given boundary-warm geometry
	// for full-detail configs, per measured window (internal/wpar) for
	// sampled ones — where the window plan comes from the sampling
	// geometry and Boundary is ignored. Results are byte-identical
	// whatever worker budget the server has.
	Segments int              `json:"segments,omitempty"`
	Boundary sim.BoundaryWarm `json:"boundary,omitzero"`
}

// Job converts the spec back to a pool job.
func (s JobSpec) Job() runq.Job {
	return runq.Job{
		Config:   s.Config,
		Profile:  s.Profile,
		Warmup:   s.Warmup,
		Measure:  s.Measure,
		Segments: s.Segments,
		Boundary: s.Boundary,
	}
}

// Spec converts a pool job to its wire form.
func Spec(j runq.Job) (JobSpec, error) {
	if j.TraceFile != "" {
		return JobSpec{}, fmt.Errorf("sweepd: %s: recorded-trace jobs are server-local; run them in-process", j.TraceFile)
	}
	return JobSpec{
		Config:   j.Config,
		Profile:  j.Profile,
		Warmup:   j.Warmup,
		Measure:  j.Measure,
		Segments: j.Segments,
		Boundary: j.Boundary,
	}, nil
}

// SubmitRequest is the POST /v1/jobs body.
type SubmitRequest struct {
	// Protocol must equal ProtocolVersion.
	Protocol string `json:"protocol"`
	// Model must equal sim.ModelVersion: results are only meaningful to
	// a client built from the same simulator revision.
	Model string    `json:"model"`
	Jobs  []JobSpec `json:"jobs"`
}

// SubmitResponse acknowledges an admitted batch. IDs are the jobs'
// content-addressed runq keys, in submission order; resubmitting an
// identical spec returns the identical ID (idempotency is structural,
// not session state).
type SubmitResponse struct {
	Protocol string   `json:"protocol"`
	Model    string   `json:"model"`
	IDs      []string `json:"ids"`
}

// JobStatus is the GET /v1/jobs/{id} body.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// WindowsDone/WindowsTotal mirror the run's last progress event.
	WindowsDone  int `json:"windows_done"`
	WindowsTotal int `json:"windows_total"`
	// Source and Attempts carry runq provenance once the job finished.
	Source   string `json:"source,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	// Result is set in StateDone, Err in StateFailed.
	Result *sim.Result `json:"result,omitempty"`
	Err    string      `json:"err,omitempty"`
}

// Event is one NDJSON line on the GET /v1/jobs/{id}/events stream.
// Seq increases from 1 per job with no gaps, so a client that lost its
// connection resumes exactly where it left off with ?after=<last seq>.
type Event struct {
	Seq   int    `json:"seq"`
	ID    string `json:"id"`
	State string `json:"state"`
	// WindowsDone/WindowsTotal count completed measurement windows
	// (zero totals while unknown).
	WindowsDone  int `json:"windows_done"`
	WindowsTotal int `json:"windows_total"`
	// HalfWidth is the current relative 95% half-width of the window
	// IPC mean, reported on StateRefining events of adaptive jobs (0
	// elsewhere; +Inf before two windows exist is clamped to 0 on the
	// wire — JSON has no Inf).
	HalfWidth float64 `json:"half_width,omitempty"`
	// ElapsedMS is time since the job was admitted, on the server's
	// injected clock; EtaMS extrapolates the remaining measuring time
	// from window throughput (0 when unknowable).
	ElapsedMS int64 `json:"elapsed_ms"`
	EtaMS     int64 `json:"eta_ms,omitempty"`
	// Err rides the terminal event of a failed job.
	Err string `json:"err,omitempty"`
}

// Statz is the GET /v1/statz body: the ops surface. Everything in it
// is cumulative since server start except the queue/inflight gauges.
type Statz struct {
	Protocol string `json:"protocol"`
	Model    string `json:"model"`
	// UptimeMS is the injected clock's current reading.
	UptimeMS int64 `json:"uptime_ms"`

	// Jobs* count distinct submissions: Coalesced are submissions that
	// attached to an existing job (the fleet-wide dedup at work).
	JobsSubmitted int `json:"jobs_submitted"`
	JobsCoalesced int `json:"jobs_coalesced"`
	JobsDone      int `json:"jobs_done"`
	JobsFailed    int `json:"jobs_failed"`

	// QueueDepth/QueueCap/Inflight are point-in-time gauges; Rejected
	// counts submissions bounced with 503 backpressure.
	QueueDepth int  `json:"queue_depth"`
	QueueCap   int  `json:"queue_cap"`
	Inflight   int  `json:"inflight"`
	Rejected   int  `json:"rejected"`
	Draining   bool `json:"draining"`

	// Pool is the shared result tier: runs executed, memo/disk hits.
	Pool runq.Stats `json:"pool"`
	// Checkpoint tier: functional-warm blobs captured and restored.
	CkptCaptured int `json:"ckpt_captured"`
	CkptRestored int `json:"ckpt_restored"`
	// Arenas counts shared decoded trace arenas held by the pool.
	Arenas int `json:"arenas"`

	// Per-stage latency distributions (milliseconds on the injected
	// clock): queue wait, execution, and end-to-end submit→terminal.
	QueueWaitMS *stats.Histogram `json:"queue_wait_ms"`
	RunMS       *stats.Histogram `json:"run_ms"`
	TotalMS     *stats.Histogram `json:"total_ms"`
}

// Health is the GET /v1/healthz body.
type Health struct {
	Status     string `json:"status"` // "ok" or "draining"
	QueueDepth int    `json:"queue_depth"`
	Inflight   int    `json:"inflight"`
}

// ErrorReply is every non-2xx JSON body.
type ErrorReply struct {
	Error string `json:"error"`
}
