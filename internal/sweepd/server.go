package sweepd

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"ucp/internal/runq"
	"ucp/internal/sim"
	"ucp/internal/stats"
)

// Config configures a Server.
type Config struct {
	// Pool configures the one shared runq pool (result cache dir,
	// checkpoint dir, arena sharing, worker bound). The server turns
	// UseArena and Checkpoints on by default semantics of its own: the
	// whole point of serving is tier sharing, so leave them set unless
	// you are debugging the tiers themselves.
	Pool runq.Options
	// QueueDepth bounds jobs admitted but not yet executing; past it,
	// submissions bounce with 503 + Retry-After (default 256).
	QueueDepth int
	// Executors bounds concurrently executing jobs (default
	// Pool.Workers, or GOMAXPROCS when that is unset too). Each
	// executor drives one pool execution at a time; the pool's own
	// single-flight dedups identical keys across them.
	Executors int
	// Clock supplies elapsed-since-start readings for ETAs, latency
	// histograms, and log lines. The server itself never reads the
	// wall clock (ucplint wallclock rule) — cmd/sweepd wires
	// time.Since behind it; a nil Clock reads zero forever.
	Clock runq.Clock
	// RequestTimeout is the per-request deadline on the non-streaming
	// endpoints (default 30s). Event streams are exempt: they live as
	// long as the job plus the client's interest.
	RequestTimeout time.Duration
	// RetryAfter is the backpressure hint sent with 503 responses
	// (default 2s, rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// Log receives one line per lifecycle transition (nil: silent).
	Log io.Writer
}

// jobState is the server-side lifecycle record of one distinct job key.
type jobState struct {
	id   string
	job  runq.Job
	spec JobSpec

	state        string
	windowsDone  int
	windowsTotal int
	halfWidth    float64 // current relative CI half-width (refining only)

	submitted time.Duration // clock at admission
	started   time.Duration // clock when an executor picked it up
	measuring time.Duration // clock at the first measuring event

	result *runq.JobResult // terminal outcome (done or failed)

	// events is the append-only progress history; seq = index + 1.
	// notify is closed and replaced on every append, so any number of
	// streamers can wait for "something new" without per-subscriber
	// bookkeeping — a dead client simply stops re-arming its wait.
	events []Event
	notify chan struct{}
}

// Server owns the pool and the job registry. All mutable state is
// guarded by mu; executor goroutines and HTTP handler goroutines share
// it only through the annotated guarded methods.
type Server struct {
	cfg  Config
	pool *runq.Pool

	queue chan *jobState

	mu        sync.Mutex
	jobs      map[string]*jobState
	qdepth    int // jobs admitted, not yet picked up
	inflight  int // jobs executing right now
	submitted int
	coalesced int
	finished  int
	failed    int
	rejected  int
	streams   int
	draining  bool
	closed    bool

	qwaitH *stats.Histogram
	runH   *stats.Histogram
	totalH *stats.Histogram

	wg sync.WaitGroup // executor goroutines
}

// New builds a server and starts its executors. Callers serve
// Handler() on a listener of their choice and must call Shutdown to
// drain.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.Executors <= 0 {
		cfg.Executors = cfg.Pool.Workers
	}
	if cfg.Executors <= 0 {
		cfg.Executors = runtime.GOMAXPROCS(0)
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 2 * time.Second
	}
	s := &Server{
		cfg:    cfg,
		pool:   runq.New(cfg.Pool),
		queue:  make(chan *jobState, cfg.QueueDepth),
		jobs:   make(map[string]*jobState),
		qwaitH: stats.NewHistogram("sweepd queue wait (ms)"),
		runH:   stats.NewHistogram("sweepd execution (ms)"),
		totalH: stats.NewHistogram("sweepd end-to-end (ms)"),
	}
	for i := 0; i < cfg.Executors; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for js := range s.queue {
				s.run(js)
			}
		}()
	}
	return s
}

// Pool exposes the shared pool (the in-process side of a paired
// local/remote gate runs on it directly).
func (s *Server) Pool() *runq.Pool { return s.pool }

// now reads the injected clock (zero when none is wired).
func (s *Server) now() time.Duration {
	if s.cfg.Clock == nil {
		return 0
	}
	return s.cfg.Clock()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, "sweepd: "+format+"\n", args...)
	}
}

// Handler returns the versioned API surface. Non-streaming endpoints
// run under the per-request deadline; the events stream is exempt.
func (s *Server) Handler() http.Handler {
	bounded := func(h http.HandlerFunc) http.Handler {
		return http.TimeoutHandler(h, s.cfg.RequestTimeout, `{"error":"request deadline exceeded"}`)
	}
	mux := http.NewServeMux()
	mux.Handle("POST /v1/jobs", bounded(s.handleSubmit))
	mux.Handle("GET /v1/jobs/{id}", bounded(s.handleStatus))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.Handle("GET /v1/statz", bounded(s.handleStatz))
	mux.Handle("GET /v1/healthz", bounded(s.handleHealthz))
	return mux
}

// Shutdown drains the server gracefully: new submissions are refused
// with 503, queued and in-flight jobs run to completion (their results
// land in the pool's disk cache when one is configured), and event
// streams see their terminal events. It returns nil once every
// executor has exited, or the done channel's error if closed first.
// Safe to call once; later calls return immediately.
func (s *Server) Shutdown(cancel <-chan struct{}) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.closed = true
	// No sender can race this close: every send happens under mu with
	// draining checked first.
	close(s.queue)
	s.mu.Unlock()
	s.logf("draining: refusing new submissions, finishing queued work")

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		s.logf("drained")
		return nil
	case <-cancel:
		return fmt.Errorf("sweepd: shutdown canceled with work still in flight")
	}
}

// ---- submission ----

// handleSubmit admits a batch: content-addressed key per job, dedup
// against every job the server has ever seen, bounded-queue
// backpressure, all-or-nothing admission (so a retried 503 cannot
// half-duplicate a batch).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	body := http.MaxBytesReader(w, r.Body, 16<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		replyError(w, http.StatusBadRequest, fmt.Sprintf("decoding submit request: %v", err))
		return
	}
	if req.Protocol != ProtocolVersion {
		replyError(w, http.StatusBadRequest, fmt.Sprintf(
			"protocol mismatch: client %q, server %q", req.Protocol, ProtocolVersion))
		return
	}
	if req.Model != sim.ModelVersion {
		replyError(w, http.StatusBadRequest, fmt.Sprintf(
			"model mismatch: client %q, server %q — results would not be comparable", req.Model, sim.ModelVersion))
		return
	}
	if len(req.Jobs) == 0 {
		replyError(w, http.StatusBadRequest, "empty job batch")
		return
	}
	// Resolve keys and validate configs before taking the lock: a bad
	// job rejects the batch with a 400 naming the offender, not a 500
	// from the middle of execution.
	ids := make([]string, len(req.Jobs))
	jobs := make([]runq.Job, len(req.Jobs))
	for i, spec := range req.Jobs {
		if err := spec.Config.Validate(); err != nil {
			replyError(w, http.StatusBadRequest, fmt.Sprintf("job %d (%s): %v", i, spec.Config.Name, err))
			return
		}
		jobs[i] = spec.Job()
		key, err := runq.Key(jobs[i])
		if err != nil {
			replyError(w, http.StatusBadRequest, fmt.Sprintf("job %d (%s): %v", i, spec.Config.Name, err))
			return
		}
		ids[i] = key
	}

	admitted, retryAfter := s.admit(req.Jobs, jobs, ids)
	if !admitted {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		replyError(w, http.StatusServiceUnavailable, "queue full or draining; retry later")
		return
	}
	replyJSON(w, http.StatusOK, SubmitResponse{
		Protocol: ProtocolVersion,
		Model:    sim.ModelVersion,
		IDs:      ids,
	})
}

// admit registers a batch under the lock. Jobs whose key is already
// known (any state) coalesce onto the existing execution; genuinely
// new jobs consume queue slots. Admission is all-or-nothing against
// the remaining queue capacity.
//
//ucplint:guarded
func (s *Server) admit(specs []JobSpec, jobs []runq.Job, ids []string) (ok bool, retryAfterSec int) {
	retryAfterSec = int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false, retryAfterSec
	}
	fresh := 0
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		if s.jobs[id] == nil && !seen[id] {
			seen[id] = true
			fresh++
		}
	}
	if s.qdepth+fresh > s.cfg.QueueDepth {
		s.rejected++
		return false, retryAfterSec
	}
	now := s.now()
	for i, id := range ids {
		s.submitted++
		if js := s.jobs[id]; js != nil {
			s.coalesced++
			continue
		}
		js := &jobState{
			id:        id,
			job:       jobs[i],
			spec:      specs[i],
			state:     StateQueued,
			submitted: now,
			notify:    make(chan struct{}),
		}
		s.jobs[id] = js
		s.publishLocked(js, StateQueued, "")
		s.qdepth++
		s.queue <- js // never blocks: qdepth <= QueueDepth == cap
		s.logf("job %.12s queued (%s on %s)", id, js.job.Config.Name, js.spec.Profile.Name)
	}
	return true, retryAfterSec
}

// ---- execution ----

// run executes one job on an executor goroutine. Panics anywhere in
// the job body are already errors at the pool layer (recoverRun); this
// recover is the second fence, isolating even a bug in the server's
// own bookkeeping to the one job so other tenants keep their service.
//
//ucplint:guarded
func (s *Server) run(js *jobState) {
	defer func() {
		if r := recover(); r != nil {
			s.finish(js, runq.JobResult{Job: js.job, Key: js.id,
				Err: fmt.Errorf("internal: %v", r)})
		}
	}()

	s.mu.Lock()
	s.qdepth--
	s.inflight++
	js.started = s.now()
	s.qwaitH.Add(uint64((js.started - js.submitted).Milliseconds()))
	s.mu.Unlock()

	jr := s.pool.RunOne(js.job, func(pr sim.Progress) { s.progress(js, pr) })
	s.finish(js, jr)
}

// progress relays a simulation stage notification into the job's event
// stream. It runs on the executor goroutine, synchronously with the
// simulation — keep it O(1).
//
//ucplint:guarded
func (s *Server) progress(js *jobState, pr sim.Progress) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if pr.Stage == StateMeasuring && js.state != StateMeasuring {
		js.measuring = s.now()
	}
	// JSON has no Inf: the pre-two-window half-width flattens to 0 on
	// the wire (the client renders 0 as "no estimate yet").
	half := pr.HalfWidth
	if math.IsInf(half, 1) {
		half = 0
	}
	if js.state == pr.Stage && js.windowsDone == pr.WindowsDone &&
		js.windowsTotal == pr.WindowsTotal && js.halfWidth == half {
		return
	}
	js.state = pr.Stage
	js.windowsDone = pr.WindowsDone
	js.windowsTotal = pr.WindowsTotal
	js.halfWidth = half
	s.publishLocked(js, pr.Stage, "")
}

// finish records a terminal outcome and publishes the final event.
//
//ucplint:guarded
func (s *Server) finish(js *jobState, jr runq.JobResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if js.result != nil {
		return // second fence already fired for this job
	}
	s.inflight--
	now := s.now()
	s.runH.Add(uint64((now - js.started).Milliseconds()))
	s.totalH.Add(uint64((now - js.submitted).Milliseconds()))
	js.result = &jr
	if jr.Err != nil {
		s.failed++
		js.state = StateFailed
		s.publishLocked(js, StateFailed, jr.Err.Error())
		s.logf("job %.12s FAILED after %dms: %v", js.id, (now - js.submitted).Milliseconds(), jr.Err)
		return
	}
	s.finished++
	// A fixed-geometry job always ran its whole schedule; an adaptive
	// one (last seen refining) may have stopped early, so its window
	// counter stays wherever the stop rule left it.
	if js.state != StateRefining && js.windowsTotal > 0 {
		js.windowsDone = js.windowsTotal
	}
	js.state = StateDone
	s.publishLocked(js, StateDone, "")
	s.logf("job %.12s done in %dms (%s, queue %dms)", js.id,
		(now - js.submitted).Milliseconds(), jr.Source, (js.started - js.submitted).Milliseconds())
}

// publishLocked appends one event and wakes every waiting streamer.
// Callers hold s.mu.
func (s *Server) publishLocked(js *jobState, state string, errText string) {
	ev := Event{
		Seq:          len(js.events) + 1,
		ID:           js.id,
		State:        state,
		WindowsDone:  js.windowsDone,
		WindowsTotal: js.windowsTotal,
		ElapsedMS:    (s.now() - js.submitted).Milliseconds(),
		Err:          errText,
	}
	if state == StateRefining {
		ev.HalfWidth = js.halfWidth
	}
	// ETA: extrapolate remaining measuring time from window throughput.
	if state == StateMeasuring && js.windowsDone > 0 && js.windowsDone < js.windowsTotal {
		perWindow := float64(s.now()-js.measuring) / float64(js.windowsDone)
		ev.EtaMS = time.Duration(perWindow * float64(js.windowsTotal-js.windowsDone)).Milliseconds()
	}
	js.events = append(js.events, ev)
	close(js.notify)
	js.notify = make(chan struct{})
}

// ---- read endpoints ----

// lookup fetches a job by id.
//
//ucplint:guarded
func (s *Server) lookup(id string) *jobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// status snapshots a job's wire status.
//
//ucplint:guarded
func (s *Server) status(js *jobState) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := JobStatus{
		ID:           js.id,
		State:        js.state,
		WindowsDone:  js.windowsDone,
		WindowsTotal: js.windowsTotal,
	}
	if jr := js.result; jr != nil {
		st.Source = jr.Source
		st.Attempts = jr.Attempts
		if jr.Err != nil {
			st.Err = jr.Err.Error()
		} else {
			res := jr.Result
			st.Result = &res
		}
	}
	return st
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	js := s.lookup(r.PathValue("id"))
	if js == nil {
		replyError(w, http.StatusNotFound, "unknown job id")
		return
	}
	replyJSON(w, http.StatusOK, s.status(js))
}

// handleEvents streams a job's progress as NDJSON, one Event per line,
// from ?after=<seq> (default 0: the whole history). The stream ends
// after the terminal event. A client that vanishes mid-stream costs
// nothing but its dead connection: the job and every other stream keep
// going, and the client resumes later with after=<last seen seq>.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	js := s.lookup(r.PathValue("id"))
	if js == nil {
		replyError(w, http.StatusNotFound, "unknown job id")
		return
	}
	after := 0
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			replyError(w, http.StatusBadRequest, "bad after parameter")
			return
		}
		after = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	s.trackStream(+1)
	defer s.trackStream(-1)

	enc := json.NewEncoder(w)
	cursor := after
	for {
		batch, notify, terminal := s.eventsSince(js, cursor)
		for _, ev := range batch {
			if err := enc.Encode(ev); err != nil {
				return // client went away; the job does not care
			}
			cursor = ev.Seq
		}
		if flusher != nil {
			flusher.Flush()
		}
		if terminal {
			// The terminal event is always the last publish, so once the
			// batch containing it (or an empty post-terminal batch) has
			// been flushed there is nothing left to wait for.
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

// eventsSince returns events with Seq > cursor, the wait channel for
// more, and whether the job has reached a terminal state.
//
//ucplint:guarded
func (s *Server) eventsSince(js *jobState, cursor int) ([]Event, <-chan struct{}, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var batch []Event
	if cursor < len(js.events) {
		batch = append(batch, js.events[cursor:]...)
	}
	terminal := js.state == StateDone || js.state == StateFailed
	return batch, js.notify, terminal
}

// trackStream maintains the active-streams gauge.
//
//ucplint:guarded
func (s *Server) trackStream(d int) {
	s.mu.Lock()
	s.streams += d
	s.mu.Unlock()
}

// handleStatz renders the ops counters. The whole snapshot is
// marshaled under the lock so the histograms cannot tear mid-encode.
func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	b, err := s.statzJSON()
	if err != nil {
		replyError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

// statzJSON snapshots and encodes the Statz reply.
//
//ucplint:guarded
func (s *Server) statzJSON() ([]byte, error) {
	captured, restored := s.pool.CheckpointStats()
	arenas := s.pool.ArenaCount()
	pool := s.pool.Stats()
	s.mu.Lock()
	defer s.mu.Unlock()
	return json.Marshal(Statz{
		Protocol:      ProtocolVersion,
		Model:         sim.ModelVersion,
		UptimeMS:      s.now().Milliseconds(),
		JobsSubmitted: s.submitted,
		JobsCoalesced: s.coalesced,
		JobsDone:      s.finished,
		JobsFailed:    s.failed,
		QueueDepth:    s.qdepth,
		QueueCap:      s.cfg.QueueDepth,
		Inflight:      s.inflight,
		Rejected:      s.rejected,
		Draining:      s.draining,
		Pool:          pool,
		CkptCaptured:  captured,
		CkptRestored:  restored,
		Arenas:        arenas,
		QueueWaitMS:   s.qwaitH,
		RunMS:         s.runH,
		TotalMS:       s.totalH,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := Health{Status: "ok", QueueDepth: s.qdepth, Inflight: s.inflight}
	if s.draining {
		h.Status = "draining"
	}
	s.mu.Unlock()
	replyJSON(w, http.StatusOK, h)
}

// ---- shared reply helpers ----

func replyJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func replyError(w http.ResponseWriter, code int, msg string) {
	replyJSON(w, code, ErrorReply{Error: msg})
}
