package sweepd_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ucp/internal/runq"
	"ucp/internal/sim"
	"ucp/internal/sweepd"
	"ucp/internal/sweepd/client"
	"ucp/internal/trace"
)

// fakeClock is a deterministic injected clock: every reading advances
// one millisecond, so latency histograms and ETAs are exercised
// without the wall clock (the wallclock lint holds in tests too).
func fakeClock() runq.Clock {
	var tick atomic.Int64
	return func() time.Duration {
		return time.Duration(tick.Add(1)) * time.Millisecond
	}
}

// testSpec is a small valid job spec (the injected RunJob never
// actually simulates it).
func testSpec(t *testing.T, name string) sweepd.JobSpec {
	t.Helper()
	profs := trace.QuickProfiles()
	cfg := sim.Baseline()
	cfg.Name = name
	cfg.WarmupInsts, cfg.MeasureInsts = 1000, 1000
	return sweepd.JobSpec{Config: cfg, Profile: profs[0], Warmup: 1000, Measure: 1000}
}

// startServer wires a sweepd server behind httptest and returns a
// ready client. The HTTP listener closes with the test; the sweepd
// executors drain through Shutdown.
func startServer(t *testing.T, cfg sweepd.Config) (*sweepd.Server, *httptest.Server, *client.Client) {
	t.Helper()
	if cfg.Clock == nil {
		cfg.Clock = fakeClock()
	}
	srv := sweepd.New(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		cancel := make(chan struct{})
		go func() { time.Sleep(10 * time.Second); close(cancel) }()
		srv.Shutdown(cancel)
		hs.Close()
	})
	c := client.New(hs.URL)
	c.Backoff = 5 * time.Millisecond
	return srv, hs, c
}

// TestCrossClientSingleFlight is the satellite coverage task: N
// concurrent clients submit the same job key against a live server;
// exactly one pool execution happens, every client gets an identical
// result, and the run is race-clean (the suite runs under -race in
// check.sh).
func TestCrossClientSingleFlight(t *testing.T) {
	const clients = 8
	var execs atomic.Int32
	gate := make(chan struct{})
	_, _, cl := startServer(t, sweepd.Config{
		Executors: 4,
		Pool: runq.Options{
			RunJob: func(runq.Job, sim.ProgressFunc) (sim.Result, error) {
				execs.Add(1)
				<-gate
				return sim.Result{Name: "shared", IPC: 2.25}, nil
			},
		},
	})

	spec := testSpec(t, "shared")
	var wg sync.WaitGroup
	ids := make([]string, clients)
	results := make([]sweepd.JobStatus, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := cl.Submit([]sweepd.JobSpec{spec})
			if err != nil {
				errs[i] = err
				return
			}
			ids[i] = got[0]
			results[i], errs[i] = cl.Wait(got[0], nil)
		}(i)
	}
	// Let every submission land (and coalesce) while the one execution
	// is still in flight, then release it.
	for deadline := 0; deadline < 400; deadline++ {
		st, err := cl.Statz()
		if err == nil && st.JobsSubmitted == clients {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(gate)
	wg.Wait()

	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if ids[i] != ids[0] {
			t.Fatalf("client %d got id %.12s, client 0 got %.12s — idempotency broken", i, ids[i], ids[0])
		}
		if results[i].Result == nil || results[i].Result.IPC != 2.25 {
			t.Fatalf("client %d result: %+v", i, results[i])
		}
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("job executed %d times for %d clients, want exactly 1", n, clients)
	}
	st, err := cl.Statz()
	if err != nil {
		t.Fatalf("statz: %v", err)
	}
	if st.JobsSubmitted != clients || st.JobsCoalesced != clients-1 {
		t.Fatalf("statz submitted=%d coalesced=%d, want %d and %d",
			st.JobsSubmitted, st.JobsCoalesced, clients, clients-1)
	}
	if st.Pool.Runs != 1 {
		t.Fatalf("pool ran %d jobs, want 1", st.Pool.Runs)
	}
}

// TestRemoteMatchesLocalByteIdentical runs a real (tiny) simulation
// both in-process and through the wire and requires byte-identical
// determinism digests — the contract that lets every existing report
// run remote.
func TestRemoteMatchesLocalByteIdentical(t *testing.T) {
	_, _, cl := startServer(t, sweepd.Config{Executors: 2})

	profs := trace.QuickProfiles()
	cfg := sim.Baseline()
	jobs := []runq.Job{
		{Config: cfg, Profile: profs[0], Warmup: 10_000, Measure: 10_000},
		{Config: cfg, Profile: profs[1%len(profs)], Warmup: 10_000, Measure: 10_000},
	}

	local := runq.New(runq.Options{}).RunAll(jobs)
	remote := cl.RunAll(jobs)
	for i := range jobs {
		if local[i].Err != nil || remote[i].Err != nil {
			t.Fatalf("job %d: local err=%v remote err=%v", i, local[i].Err, remote[i].Err)
		}
		ld := local[i].Result.DeterminismDigest()
		rd := remote[i].Result.DeterminismDigest()
		if ld != rd {
			t.Fatalf("job %d digests differ:\nlocal:\n%s\nremote:\n%s", i, ld, rd)
		}
	}
}

// TestKilledClientMidStream kills one tenant's event stream while its
// job is in flight and requires the job, the server, and a second
// tenant's stream to be unaffected.
func TestKilledClientMidStream(t *testing.T) {
	gate := make(chan struct{})
	_, hs, cl := startServer(t, sweepd.Config{
		Executors: 1,
		Pool: runq.Options{
			RunJob: func(_ runq.Job, hook sim.ProgressFunc) (sim.Result, error) {
				hook(sim.Progress{Stage: sim.StageWarming})
				<-gate
				return sim.Result{Name: "slow"}, nil
			},
		},
	})

	ids, err := cl.Submit([]sweepd.JobSpec{testSpec(t, "slow")})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	id := ids[0]

	// Tenant A: open the stream, read one event, then vanish.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
		hs.URL+"/v1/jobs/"+id+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("open stream: %v", err)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("read first event: %v", err)
	}
	cancel() // kill the client mid-stream
	resp.Body.Close()

	// Tenant B: a normal wait on the same job must still complete.
	done := make(chan error, 1)
	go func() {
		st, err := cl.Wait(id, nil)
		if err == nil && st.State != sweepd.StateDone {
			err = fmt.Errorf("state %q, want done", st.State)
		}
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let B attach while A's corpse is reaped
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("surviving tenant: %v", err)
	}
	if h, err := cl.Health(); err != nil || h.Status != "ok" {
		t.Fatalf("health after killed client: %+v, %v", h, err)
	}
}

// TestPanickingJobIsolated submits one job that panics every attempt
// and one that succeeds; the panic must fail only its own job.
func TestPanickingJobIsolated(t *testing.T) {
	_, _, cl := startServer(t, sweepd.Config{
		Executors: 2,
		Pool: runq.Options{
			RunJob: func(j runq.Job, _ sim.ProgressFunc) (sim.Result, error) {
				if j.Config.Name == "boom" {
					panic("injected job fault")
				}
				return sim.Result{Name: j.Config.Name, IPC: 1.0}, nil
			},
		},
	})

	ids, err := cl.Submit([]sweepd.JobSpec{testSpec(t, "boom"), testSpec(t, "fine")})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	boom, berr := cl.Wait(ids[0], nil)
	fine, ferr := cl.Wait(ids[1], nil)
	if berr != nil {
		t.Fatalf("waiting on the panicking job: %v", berr)
	}
	if boom.State != sweepd.StateFailed || !strings.Contains(boom.Err, "panic: injected job fault") {
		t.Fatalf("panicking job status: %+v", boom)
	}
	if ferr != nil || fine.State != sweepd.StateDone || fine.Result == nil {
		t.Fatalf("innocent tenant dropped: %+v, %v", fine, ferr)
	}
	st, err := cl.Statz()
	if err != nil || st.JobsFailed != 1 || st.JobsDone != 1 {
		t.Fatalf("statz after panic: %+v, %v", st, err)
	}
}

// TestBackpressure503 pins the bounded queue: a batch larger than the
// remaining queue capacity bounces whole with 503 + Retry-After and
// admits nothing (so an idempotent retry cannot half-duplicate it).
func TestBackpressure503(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	_, hs, cl := startServer(t, sweepd.Config{
		QueueDepth: 2,
		Executors:  1,
		Pool: runq.Options{
			RunJob: func(runq.Job, sim.ProgressFunc) (sim.Result, error) {
				<-gate
				return sim.Result{}, nil
			},
		},
	})

	// Four distinct fresh jobs against a depth-2 queue: guaranteed
	// over capacity no matter how fast the executor drains.
	specs := []sweepd.JobSpec{
		testSpec(t, "a"), testSpec(t, "b"), testSpec(t, "c"), testSpec(t, "d"),
	}
	body, _ := json.Marshal(sweepd.SubmitRequest{
		Protocol: sweepd.ProtocolVersion, Model: sim.ModelVersion, Jobs: specs,
	})
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without a Retry-After hint")
	}
	st, err := cl.Statz()
	if err != nil || st.Rejected != 1 {
		t.Fatalf("statz rejected=%d, want 1 (%v)", st.Rejected, err)
	}
	if st.JobsSubmitted != 0 {
		t.Fatalf("rejected batch leaked %d admissions", st.JobsSubmitted)
	}

	// Within capacity the same client is served.
	if _, err := cl.Submit(specs[:2]); err != nil {
		t.Fatalf("in-capacity submit after 503: %v", err)
	}
}

// TestEventStreamResume reconnects mid-history with ?after and
// requires exactly-once, gap-free event delivery across the break.
func TestEventStreamResume(t *testing.T) {
	step := make(chan struct{})
	_, hs, cl := startServer(t, sweepd.Config{
		Executors: 1,
		Pool: runq.Options{
			RunJob: func(_ runq.Job, hook sim.ProgressFunc) (sim.Result, error) {
				hook(sim.Progress{Stage: sim.StageWarming, WindowsTotal: 3})
				<-step
				for k := 1; k <= 3; k++ {
					hook(sim.Progress{Stage: sim.StageMeasuring, WindowsDone: k, WindowsTotal: 3})
				}
				return sim.Result{Name: "windows"}, nil
			},
		},
	})

	ids, err := cl.Submit([]sweepd.JobSpec{testSpec(t, "windows")})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	id := ids[0]

	// First connection: read the pre-release history (queued, warming),
	// then drop the connection.
	resp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	br := bufio.NewReader(resp.Body)
	var got []sweepd.Event
	for i := 0; i < 2; i++ {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading event %d: %v", i, err)
		}
		var ev sweepd.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		got = append(got, ev)
	}
	resp.Body.Close()
	close(step)

	// Resume after the last seen sequence number; collect to the end.
	st, err := cl.Wait(id, func(ev sweepd.Event) {})
	if err != nil || st.State != sweepd.StateDone {
		t.Fatalf("wait: %+v, %v", st, err)
	}
	resp2, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events?after=%d", hs.URL, id, got[len(got)-1].Seq))
	if err != nil {
		t.Fatalf("resume stream: %v", err)
	}
	defer resp2.Body.Close()
	sc := bufio.NewScanner(resp2.Body)
	for sc.Scan() {
		var ev sweepd.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad resumed event %q: %v", sc.Text(), err)
		}
		got = append(got, ev)
	}

	for i, ev := range got {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d — gap or duplicate across the reconnect:\n%+v", i, ev.Seq, got)
		}
	}
	last := got[len(got)-1]
	if last.State != sweepd.StateDone {
		t.Fatalf("last event %+v, want done", last)
	}
	if got[0].State != sweepd.StateQueued || got[1].State != sweepd.StateWarming {
		t.Fatalf("lifecycle prefix wrong: %+v", got[:2])
	}
	sawWindows := false
	for _, ev := range got {
		if ev.State == sweepd.StateMeasuring && ev.WindowsDone > 0 && ev.WindowsTotal == 3 {
			sawWindows = true
		}
	}
	if !sawWindows {
		t.Fatalf("no measuring window counts in %+v", got)
	}
}

// TestRefiningStreamResume covers the adaptive lifecycle state on the
// wire: a job that moves measuring → refining (with per-event
// half-widths) streams gap-free across a dropped connection, resumed
// events carry the same half-widths, and an early adaptive stop leaves
// the done event's window counter where the stop rule ended, not at
// the budget.
func TestRefiningStreamResume(t *testing.T) {
	step := make(chan struct{})
	halves := []float64{0.08, 0.031, 0.018}
	_, hs, cl := startServer(t, sweepd.Config{
		Executors: 1,
		Pool: runq.Options{
			RunJob: func(_ runq.Job, hook sim.ProgressFunc) (sim.Result, error) {
				hook(sim.Progress{Stage: sim.StageWarming, WindowsTotal: 10})
				for k := 1; k <= 3; k++ {
					hook(sim.Progress{Stage: sim.StageMeasuring, WindowsDone: k, WindowsTotal: 10})
				}
				<-step
				// The adaptive tail: refining events carry the shrinking
				// half-width, then the run stops early at 6 of 10 windows.
				for i, h := range halves {
					hook(sim.Progress{Stage: sim.StageRefining, WindowsDone: 4 + i, WindowsTotal: 10, HalfWidth: h})
				}
				return sim.Result{Name: "adaptive"}, nil
			},
		},
	})

	ids, err := cl.Submit([]sweepd.JobSpec{testSpec(t, "adaptive")})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	id := ids[0]

	// First connection: consume the fixed-measuring prefix, then drop
	// before any refining event exists.
	resp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	br := bufio.NewReader(resp.Body)
	var got []sweepd.Event
	for i := 0; i < 4; i++ { // queued, warming, measuring 1..2 at least
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading event %d: %v", i, err)
		}
		var ev sweepd.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		got = append(got, ev)
	}
	resp.Body.Close()
	close(step)

	st, err := cl.Wait(id, nil)
	if err != nil || st.State != sweepd.StateDone {
		t.Fatalf("wait: %+v, %v", st, err)
	}
	resp2, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events?after=%d", hs.URL, id, got[len(got)-1].Seq))
	if err != nil {
		t.Fatalf("resume stream: %v", err)
	}
	defer resp2.Body.Close()
	sc := bufio.NewScanner(resp2.Body)
	for sc.Scan() {
		var ev sweepd.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad resumed event %q: %v", sc.Text(), err)
		}
		got = append(got, ev)
	}

	for i, ev := range got {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d — gap or duplicate across the reconnect:\n%+v", i, ev.Seq, got)
		}
	}
	var refined []sweepd.Event
	for _, ev := range got {
		if ev.State == sweepd.StateRefining {
			refined = append(refined, ev)
		}
	}
	if len(refined) != len(halves) {
		t.Fatalf("saw %d refining events, want %d: %+v", len(refined), len(halves), got)
	}
	for i, ev := range refined {
		if ev.HalfWidth != halves[i] {
			t.Errorf("refining event %d half_width %g, want %g", i, ev.HalfWidth, halves[i])
		}
		if ev.WindowsDone != 4+i || ev.WindowsTotal != 10 {
			t.Errorf("refining event %d windows %d/%d, want %d/10", i, ev.WindowsDone, ev.WindowsTotal, 4+i)
		}
	}
	last := got[len(got)-1]
	if last.State != sweepd.StateDone {
		t.Fatalf("last event %+v, want done", last)
	}
	if last.WindowsDone != 6 {
		t.Errorf("done event windows_done = %d, want 6 (the adaptive stop point, not the 10-window budget)", last.WindowsDone)
	}
	if last.HalfWidth != 0 {
		t.Errorf("done event carries half_width %g, want 0", last.HalfWidth)
	}
	if st.WindowsDone != 6 {
		t.Errorf("status windows_done = %d, want 6", st.WindowsDone)
	}
}

// TestGracefulShutdown drains in-flight work, refuses new
// submissions, and completes waiting streams.
func TestGracefulShutdown(t *testing.T) {
	gate := make(chan struct{})
	srv, hs, cl := startServer(t, sweepd.Config{
		Executors: 1,
		Pool: runq.Options{
			RunJob: func(runq.Job, sim.ProgressFunc) (sim.Result, error) {
				<-gate
				return sim.Result{Name: "draining"}, nil
			},
		},
	})

	ids, err := cl.Submit([]sweepd.JobSpec{testSpec(t, "draining")})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(nil) }()

	// Draining: new submissions bounce with 503.
	var refused bool
	for i := 0; i < 200; i++ {
		body, _ := json.Marshal(sweepd.SubmitRequest{
			Protocol: sweepd.ProtocolVersion, Model: sim.ModelVersion,
			Jobs: []sweepd.JobSpec{testSpec(t, "late")},
		})
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("probe submit: %v", err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			refused = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !refused {
		t.Fatal("draining server still admitting jobs")
	}

	close(gate) // let the in-flight job finish
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	st, err := cl.Status(ids[0])
	if err != nil || st.State != sweepd.StateDone {
		t.Fatalf("in-flight job not drained to completion: %+v, %v", st, err)
	}
}

// TestProtocolMismatchRejected pins the version gate on submissions.
func TestProtocolMismatchRejected(t *testing.T) {
	_, hs, _ := startServer(t, sweepd.Config{
		Pool: runq.Options{RunJob: func(runq.Job, sim.ProgressFunc) (sim.Result, error) {
			return sim.Result{}, nil
		}},
	})
	body, _ := json.Marshal(sweepd.SubmitRequest{
		Protocol: "sweepd-0", Model: sim.ModelVersion,
		Jobs: []sweepd.JobSpec{testSpec(t, "old")},
	})
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestIdempotentResubmit submits the same spec after completion and
// requires the same ID back with the result served from the memo tier
// (no second execution).
func TestIdempotentResubmit(t *testing.T) {
	var execs atomic.Int32
	_, _, cl := startServer(t, sweepd.Config{
		Pool: runq.Options{RunJob: func(runq.Job, sim.ProgressFunc) (sim.Result, error) {
			execs.Add(1)
			return sim.Result{Name: "idem", IPC: 3.0}, nil
		}},
	})
	spec := testSpec(t, "idem")
	first, err := cl.Submit([]sweepd.JobSpec{spec})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := cl.Wait(first[0], nil); err != nil {
		t.Fatalf("wait: %v", err)
	}
	second, err := cl.Submit([]sweepd.JobSpec{spec})
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if second[0] != first[0] {
		t.Fatalf("resubmission minted a new id: %.12s vs %.12s", second[0], first[0])
	}
	st, err := cl.Wait(second[0], nil)
	if err != nil || st.Result == nil || st.Result.IPC != 3.0 {
		t.Fatalf("resubmitted result: %+v, %v", st, err)
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("resubmission re-executed: %d runs", n)
	}
}
