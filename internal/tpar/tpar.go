// Package tpar runs one simulation time-parallel: the measured region
// of a single full-detail run is split into N contiguous trace segments
// (sim.SegmentSpec), each segment's boundary state is rebuilt by the
// functional-warm pyramid (or restored from a content-addressed
// internal/ckpt checkpoint captured on a previous run), the segments
// are simulated concurrently on a bounded worker pool, and the
// per-segment results are merged in segment order — so the combined
// sim.Result is byte-identical at any worker count, the same bar
// internal/runq's job-level parallelism already clears.
//
// The price is a bounded boundary-warming error: each segment's start
// state comes from the warming pyramid rather than from cycle-accurate
// history, exactly like the sampled mode's windows (EXPERIMENTS.md
// quantifies the IPC delta). segments=1 is special-cased onto the
// serial engine, byte-identical to sim.Run.
package tpar

import (
	"fmt"
	"runtime"
	"sync"

	"ucp/internal/cache"
	"ucp/internal/ckpt"
	"ucp/internal/core"
	"ucp/internal/frontend"
	"ucp/internal/sim"
	"ucp/internal/stats"
	"ucp/internal/trace"
	"ucp/internal/uopcache"
)

// Options configures one time-parallel run.
type Options struct {
	// Segments is the number of trace segments (clamped to the measured
	// instruction count; <= 1 runs the serial engine).
	Segments int
	// Workers bounds concurrent segment simulations (GOMAXPROCS when
	// <= 0). Results are byte-identical at any value.
	Workers int
	// Warm is the boundary-warming geometry (zero value:
	// sim.DefaultBoundaryWarm).
	Warm sim.BoundaryWarm
	// Checkpoints, when non-nil, caches each boundary's functional-warm
	// state under a content-addressed key (sim.BoundaryKey): the first
	// run captures, later runs — or concurrent runs sharing a boundary —
	// restore, with byte-identical results either way. TraceID must then
	// identify the instruction stream exactly (sim.WarmCheckpoints).
	Checkpoints *ckpt.Store
	TraceID     string
	// Gate, when non-nil, bounds segment concurrency across *multiple*
	// concurrent time-parallel runs sharing it (internal/runq sizes one
	// gate at its worker count so a time-parallel job cooperates with
	// the pool instead of oversubscribing the host). Each in-flight
	// segment holds one slot.
	Gate chan struct{}
	// Hook receives progress notifications (observability only; runs
	// are byte-identical with and without one). Unlike sim's hooks it
	// may be invoked from multiple goroutines; calls are serialized.
	Hook sim.ProgressFunc
}

// Plan splits the measured region [warmup, warmup+measure) into
// contiguous segments: segments of base length measure/n with the
// remainder spread one instruction each over the leading segments, so
// lengths differ by at most one. n is clamped to [1, measure] — more
// segments than instructions would create empty spans.
func Plan(warmup, measure uint64, n int) []sim.SegmentSpec {
	if n < 1 {
		n = 1
	}
	if uint64(n) > measure {
		n = int(measure)
		if n < 1 {
			n = 1
		}
	}
	base := measure / uint64(n)
	rem := measure % uint64(n)
	specs := make([]sim.SegmentSpec, n)
	start := warmup
	for i := range specs {
		length := base
		if uint64(i) < rem {
			length++
		}
		specs[i] = sim.SegmentSpec{Index: i, Start: start, End: start + length}
		start += length
	}
	return specs
}

// Run executes cfg time-parallel over the trace. newSource must return
// a fresh, independent stream at position zero on every call (arena
// cursors: each segment gets its own); it is called from multiple
// goroutines. With Segments <= 1 (or a measured region too short to
// split) the run goes through the serial engine and is byte-identical
// to sim.Run.
func Run(cfg sim.Config, newSource func() trace.Source, code core.CodeInfo, traceName string, opts Options) (sim.Result, error) {
	if err := cfg.Validate(); err != nil {
		return sim.Result{}, err
	}
	var wc *sim.WarmCheckpoints
	if opts.Checkpoints != nil {
		wc = &sim.WarmCheckpoints{Store: opts.Checkpoints, TraceID: opts.TraceID}
	}
	specs := Plan(cfg.WarmupInsts, cfg.MeasureInsts, opts.Segments)
	if len(specs) <= 1 {
		return sim.RunHooked(cfg, newSource(), code, traceName, wc, opts.Hook)
	}
	if cfg.Sampling.Enabled {
		// RunSegment would reject this anyway, but fail before planning
		// boundaries: sampled runs parallelize per measured window through
		// internal/wpar, which derives its boundary warm from the sampling
		// geometry instead of opts.Warm.
		return sim.Result{}, fmt.Errorf("tpar: config is sampled; sampled runs time-parallelize per window through internal/wpar")
	}
	warm := opts.Warm
	if warm == (sim.BoundaryWarm{}) {
		warm = sim.DefaultBoundaryWarm()
	}
	if err := warm.Validate(); err != nil {
		return sim.Result{}, err
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}

	// Serialized progress: segment completions arrive from any worker,
	// but the hook contract is single-goroutine.
	var noteMu sync.Mutex
	done := 0
	note := func() {
		if opts.Hook == nil {
			return
		}
		noteMu.Lock()
		defer noteMu.Unlock()
		done++
		opts.Hook(sim.Progress{Stage: sim.StageMeasuring, WindowsDone: done, WindowsTotal: len(specs)})
	}
	if opts.Hook != nil {
		opts.Hook(sim.Progress{Stage: sim.StageWarming, WindowsDone: 0, WindowsTotal: len(specs)})
	}

	// runOne simulates one segment with its own recover: a panicking
	// segment fails this run, not the process (and not its siblings'
	// worker goroutines). Each in-flight segment holds one Gate slot, so
	// total detailed-simulation concurrency across every time-parallel
	// run sharing the gate stays bounded.
	runOne := func(spec sim.SegmentSpec) (res sim.SegmentResult, err error) {
		if opts.Gate != nil {
			opts.Gate <- struct{}{}
			defer func() { <-opts.Gate }()
		}
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("segment %d: panic: %v", spec.Index, r)
			}
		}()
		return sim.RunSegment(cfg, newSource(), code, spec, warm, wc)
	}

	// Fan out over the workers. Each worker folds its segments into its
	// own Accum (cells are disjoint by construction: a segment index is
	// dispatched exactly once); the per-worker accums merge afterwards
	// in any order, and Accum.Result reduces in segment order — which is
	// why the digest is byte-identical at any worker count.
	accs := make([]*Accum, workers)
	errs := make([]error, len(specs))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := NewAccum(len(specs))
			accs[w] = acc
			for i := range idxCh {
				res, err := runOne(specs[i])
				if err != nil {
					errs[i] = err
				} else {
					acc.AddSegment(res)
				}
				note()
			}
		}(w)
	}
	for i := range specs {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	// Deterministic error selection: the lowest-indexed failure wins,
	// independent of completion order.
	for _, err := range errs {
		if err != nil {
			return sim.Result{}, fmt.Errorf("tpar: %w", err)
		}
	}

	merged := accs[0]
	for _, acc := range accs[1:] {
		merged.Merge(acc)
	}
	return merged.Result(cfg, traceName)
}

// Accum accumulates per-segment results, keyed by segment index. Cells
// from different Accums are disjoint (each segment is simulated exactly
// once), which is what makes Merge commutative; the order-sensitive
// reduction happens only in Result, which walks cells in segment order.
type Accum struct {
	cells []*sim.SegmentResult
}

// NewAccum returns an accumulator for a run of n segments.
func NewAccum(n int) *Accum {
	return &Accum{cells: make([]*sim.SegmentResult, n)}
}

// AddSegment files one segment's result under its index. Filing two
// results under one index is a scheduling bug and panics.
func (a *Accum) AddSegment(r sim.SegmentResult) {
	if r.Index < 0 || r.Index >= len(a.cells) {
		panic(fmt.Sprintf("tpar: segment index %d out of range [0, %d)", r.Index, len(a.cells)))
	}
	if a.cells[r.Index] != nil {
		panic(fmt.Sprintf("tpar: segment %d accumulated twice", r.Index))
	}
	c := r
	a.cells[r.Index] = &c
}

// Merge folds b's cells into a. Cell sets are disjoint by construction,
// so the merge is a union: no arithmetic happens here at all — every
// order-sensitive reduction is deferred to Result's segment-ordered
// walk, which is what keeps digests byte-identical at any worker count.
// Verified dynamically by TestAccumMergeCommutes (shuffle-merge under
// seeded random orderings, via stats.CheckCommutative).
//
//ucplint:commutative
func (a *Accum) Merge(b *Accum) {
	if len(b.cells) > len(a.cells) {
		grown := make([]*sim.SegmentResult, len(b.cells))
		copy(grown, a.cells)
		a.cells = grown
	}
	for i, c := range b.cells {
		if c == nil {
			continue
		}
		if a.cells[i] != nil {
			panic(fmt.Sprintf("tpar: segment %d accumulated twice across merge", i))
		}
		a.cells[i] = c
	}
}

// Result reduces the accumulated segments — in segment order, never
// arrival order — into one sim.Result. Counter blocks are summed
// measured-region deltas (integer addition, exact in any grouping);
// histograms merge into fresh clones, so the cells themselves are never
// mutated and Result can be re-derived from the same Accum. The rate
// metrics use the serial engine's formulas over the summed deltas.
func (a *Accum) Result(cfg sim.Config, traceName string) (sim.Result, error) {
	var (
		insts, cycles  uint64
		skipped, ff    uint64
		fe             frontend.Stats
		uop            uopcache.Stats
		ucp            core.Stats
		l1i            cache.Stats
		stream, refill *stats.Histogram
	)
	t := &sim.TimeParStats{Segments: len(a.cells)}
	for i, c := range a.cells {
		if c == nil {
			return sim.Result{}, fmt.Errorf("tpar: merge is missing segment %d of %d", i, len(a.cells))
		}
		insts += c.Insts
		cycles += c.Cycles
		skipped += c.SkippedInsts
		ff += c.FFInsts
		sim.AddCounters(&fe, c.FE)
		sim.AddCounters(&uop, c.Uop)
		sim.AddCounters(&ucp, c.UCP)
		sim.AddCounters(&l1i, c.L1I)
		if stream == nil {
			stream, refill = c.StreamLens.Clone(), c.RefillLat.Clone()
		} else {
			stream.Merge(c.StreamLens)
			refill.Merge(c.RefillLat)
		}
		segIPC := 0.0
		if c.Cycles > 0 {
			segIPC = float64(c.Insts) / float64(c.Cycles)
		}
		t.Boundaries = append(t.Boundaries, c.Start)
		t.SegInsts = append(t.SegInsts, c.Insts)
		t.SegCycles = append(t.SegCycles, c.Cycles)
		t.SegIPC = append(t.SegIPC, segIPC)
	}
	t.SkippedInsts, t.FFInsts = skipped, ff

	r := sim.Result{
		Name:       cfg.Name,
		Trace:      traceName,
		Insts:      insts,
		Cycles:     cycles,
		FE:         fe,
		Uop:        uop,
		UCP:        ucp,
		L1I:        l1i,
		StreamLens: stream,
		RefillLat:  refill,
		TimePar:    t,
	}
	if cycles > 0 {
		r.IPC = float64(insts) / float64(cycles)
	}
	if fetched := fe.UopsFromUopCache + fe.UopsFromDecode; fetched > 0 {
		r.UopHitRate = float64(fe.UopsFromUopCache) / float64(fetched)
	}
	if insts > 0 {
		r.SwitchPKI = float64(fe.ModeSwitches) / float64(insts) * 1000
		r.CondMPKI = float64(fe.CondMispredicts) / float64(insts) * 1000
	}
	if uop.PrefetchInserts > 0 {
		r.PrefetchAccuracy = float64(uop.PrefetchUsed) / float64(uop.PrefetchInserts)
	}
	r.UCPStorageKB = a.cells[0].UCPStorageKB
	return r, nil
}
