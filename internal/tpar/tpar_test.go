package tpar_test

import (
	"strings"
	"testing"

	"ucp/internal/ckpt"
	"ucp/internal/core"
	"ucp/internal/sim"
	"ucp/internal/stats"
	"ucp/internal/tpar"
	"ucp/internal/trace"
)

// testArena decodes prof into an arena budgeted for end + slack; every
// segment draws a fresh cursor from it, like runq does.
func testArena(t *testing.T, profName string, end uint64) (*trace.Arena, *trace.Program) {
	t.Helper()
	prof, ok := trace.ProfileByName(profName)
	if !ok {
		t.Fatalf("unknown profile %q", profName)
	}
	prog, err := trace.BuildProgram(prof)
	if err != nil {
		t.Fatalf("building %s: %v", profName, err)
	}
	return trace.ArenaFromSource(trace.NewWalker(prog), int(end)+200_000), prog
}

func testWarm() sim.BoundaryWarm {
	return sim.BoundaryWarm{DetailedInsts: 2_000, FFInsts: 8_000}
}

// TestPlan pins the segment geometry: contiguous coverage of exactly
// [warmup, warmup+measure), lengths differing by at most one with the
// remainder on the leading segments (the trailing segment is the
// partial one), and clamping when asked for more segments than
// instructions.
func TestPlan(t *testing.T) {
	specs := tpar.Plan(1_000, 10_007, 4)
	if len(specs) != 4 {
		t.Fatalf("got %d segments, want 4", len(specs))
	}
	wantLens := []uint64{2_502, 2_502, 2_502, 2_501} // 10_007 = 4*2501 + 3
	pos := uint64(1_000)
	for i, s := range specs {
		if s.Index != i {
			t.Errorf("segment %d carries index %d", i, s.Index)
		}
		if s.Start != pos {
			t.Errorf("segment %d starts at %d, want %d (gap or overlap)", i, s.Start, pos)
		}
		if got := s.End - s.Start; got != wantLens[i] {
			t.Errorf("segment %d spans %d insts, want %d", i, got, wantLens[i])
		}
		pos = s.End
	}
	if pos != 11_007 {
		t.Errorf("plan ends at %d, want warmup+measure = 11_007", pos)
	}

	// More segments than instructions: clamp to one inst per segment.
	specs = tpar.Plan(0, 3, 10)
	if len(specs) != 3 {
		t.Fatalf("overclamped plan has %d segments, want 3", len(specs))
	}
	for i, s := range specs {
		if s.End-s.Start != 1 {
			t.Errorf("clamped segment %d spans %d insts, want 1", i, s.End-s.Start)
		}
	}

	// Degenerate inputs collapse to a single serial segment.
	if got := len(tpar.Plan(5, 100, 0)); got != 1 {
		t.Errorf("n=0 planned %d segments, want 1", got)
	}
}

// TestSegmentsOneMatchesSerial: a one-segment run must route through
// the serial engine and be byte-identical to sim.Run — the identity
// anchor every other invariance test leans on.
func TestSegmentsOneMatchesSerial(t *testing.T) {
	cfg := sim.WithUCP(core.DefaultConfig())
	cfg.WarmupInsts, cfg.MeasureInsts = 20_000, 40_000
	a, prog := testArena(t, "crypto01", 60_000)

	serial, err := sim.Run(cfg, a.Cursor(), prog, "crypto01")
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	one, err := tpar.Run(cfg, func() trace.Source { return a.Cursor() }, prog, "crypto01",
		tpar.Options{Segments: 1})
	if err != nil {
		t.Fatalf("tpar run: %v", err)
	}
	if got, want := one.DeterminismDigest(), serial.DeterminismDigest(); got != want {
		t.Fatalf("segments=1 digest differs from serial:\n%s\n---\n%s", got, want)
	}
	if one.TimePar != nil {
		t.Error("segments=1 result carries TimeParStats; it must be the serial result verbatim")
	}
}

// TestWorkerCountInvariance is the tentpole determinism bar: the same
// segmented run must produce byte-identical digests at any worker
// count, including a TimePar section describing every segment.
func TestWorkerCountInvariance(t *testing.T) {
	cfg := sim.WithUCP(core.DefaultConfig())
	cfg.WarmupInsts, cfg.MeasureInsts = 20_000, 40_000
	a, prog := testArena(t, "srv203", 60_000)

	run := func(workers int) sim.Result {
		r, err := tpar.Run(cfg, func() trace.Source { return a.Cursor() }, prog, "srv203",
			tpar.Options{Segments: 4, Workers: workers, Warm: testWarm()})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return r
	}
	d1 := run(1).DeterminismDigest()
	for _, w := range []int{2, 8} {
		if dw := run(w).DeterminismDigest(); dw != d1 {
			t.Fatalf("digest differs between workers=1 and workers=%d:\n%s\n---\n%s", w, d1, dw)
		}
	}
	for _, want := range []string{"timepar segments=4", "timepar s0 ", "timepar s3 "} {
		if !strings.Contains(d1, want) {
			t.Errorf("digest missing %q section:\n%s", want, d1)
		}
	}
}

// TestCheckpointRestoredRunIdentical: a run restoring all boundary
// checkpoints captured by an earlier run must be byte-identical to the
// cold run — and actually hit the store.
func TestCheckpointRestoredRunIdentical(t *testing.T) {
	cfg := sim.WithUCP(core.DefaultConfig())
	cfg.WarmupInsts, cfg.MeasureInsts = 20_000, 40_000
	a, prog := testArena(t, "crypto01", 60_000)
	store := ckpt.NewStore("")

	run := func(st *ckpt.Store) sim.Result {
		r, err := tpar.Run(cfg, func() trace.Source { return a.Cursor() }, prog, "crypto01",
			tpar.Options{Segments: 4, Workers: 2, Warm: testWarm(),
				Checkpoints: st, TraceID: "test:" + a.ID()})
		if err != nil {
			t.Fatalf("tpar run: %v", err)
		}
		return r
	}
	cold := run(nil)
	captured := run(store)
	if store.Len() == 0 {
		t.Fatal("capturing run published no boundary checkpoints")
	}
	hitsBefore := store.Hits()
	restored := run(store)
	if store.Hits() <= hitsBefore {
		t.Fatal("restore run never hit the checkpoint store")
	}
	cd := cold.DeterminismDigest()
	if d := captured.DeterminismDigest(); d != cd {
		t.Fatalf("capturing run digest differs from cold:\n%s\n---\n%s", d, cd)
	}
	if d := restored.DeterminismDigest(); d != cd {
		t.Fatalf("checkpoint-restored run digest differs from cold:\n%s\n---\n%s", d, cd)
	}
}

// TestMoreSegmentsThanInsts: asking for more segments than measured
// instructions must clamp, not fail or emit empty spans.
func TestMoreSegmentsThanInsts(t *testing.T) {
	cfg := sim.Baseline()
	cfg.WarmupInsts, cfg.MeasureInsts = 2_000, 5
	a, prog := testArena(t, "crypto01", 2_005)
	r, err := tpar.Run(cfg, func() trace.Source { return a.Cursor() }, prog, "crypto01",
		tpar.Options{Segments: 64, Workers: 4, Warm: testWarm()})
	if err != nil {
		t.Fatalf("clamped run failed: %v", err)
	}
	if r.TimePar == nil || r.TimePar.Segments != 5 {
		t.Fatalf("TimePar = %+v, want 5 clamped segments", r.TimePar)
	}
	if r.Insts < 5 {
		t.Errorf("measured %d insts, want >= 5", r.Insts)
	}
}

// TestAccumMergeCommutes backs Accum.Merge's //ucplint:commutative
// annotation with the dynamic shuffle-merge harness: per-worker accums
// holding disjoint segment sets must reduce to byte-identical digests
// under any merge order. Registered in ucplint's verified set
// (TestCommutativeAnnotationsAreShuffleTested).
func TestAccumMergeCommutes(t *testing.T) {
	cfg := sim.WithUCP(core.DefaultConfig())
	cfg.WarmupInsts, cfg.MeasureInsts = 10_000, 24_000
	a, prog := testArena(t, "srv203", 34_000)
	specs := tpar.Plan(cfg.WarmupInsts, cfg.MeasureInsts, 6)
	parts := make([]*tpar.Accum, len(specs))
	for i, spec := range specs {
		res, err := sim.RunSegment(cfg, a.Cursor(), prog, spec, testWarm(), nil)
		if err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
		parts[i] = tpar.NewAccum(len(specs))
		parts[i].AddSegment(res)
	}
	err := stats.CheckCommutative(
		func() *tpar.Accum { return tpar.NewAccum(len(specs)) },
		func(dst, src *tpar.Accum) { dst.Merge(src) },
		func(acc *tpar.Accum) string {
			r, err := acc.Result(cfg, "srv203")
			if err != nil {
				t.Fatalf("Result after full merge: %v", err)
			}
			return r.DeterminismDigest()
		},
		parts, 0xBEEF, 64,
	)
	if err != nil {
		t.Fatal(err)
	}
}

// TestResultMissingSegment: reducing an accumulator with a hole must
// fail loudly — a silently short merge would report wrong numbers with
// a valid-looking digest.
func TestResultMissingSegment(t *testing.T) {
	acc := tpar.NewAccum(3)
	acc.AddSegment(sim.SegmentResult{Index: 0, Start: 0, End: 10, Insts: 10, Cycles: 20})
	acc.AddSegment(sim.SegmentResult{Index: 2, Start: 20, End: 30, Insts: 10, Cycles: 20})
	if _, err := acc.Result(sim.Baseline(), "x"); err == nil || !strings.Contains(err.Error(), "missing segment 1") {
		t.Fatalf("hole not detected: err = %v", err)
	}
}
