package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"

	"ucp/internal/isa"
)

// Arena is a decode-once, read-only trace shared by many consumers: the
// instruction stream is held in the v2 compact byte encoding (~2-6
// bytes/inst versus 48 bytes for a materialized []isa.Inst), and every
// consumer gets its own cheap Cursor over the shared bytes. An Arena is
// immutable after construction, so any number of cursors may run
// concurrently — the runq worker pool builds one arena per trace and
// hands each job a fresh cursor instead of re-decoding the file per job.
//
// A periodic seek index (one decoder-state snapshot every
// ArenaIndexPeriod instructions) makes Cursor.Skip O(1) in the distance
// skipped: a skip jumps to the nearest preceding snapshot and decodes at
// most one period of records. File-backed traces can persist the index
// as a sidecar (see WriteIndex / cmd/tracegen) so loading skips the
// index-building scan.
type Arena struct {
	data   []byte      // v2 compact record stream (no file header)
	count  uint64      // total instruction count
	snaps  []arenaSnap // snaps[i] = decoder state before record i*ArenaIndexPeriod
	digest [sha256.Size]byte
}

// ArenaIndexPeriod is the seek-index granularity: one decoder-state
// snapshot per this many instructions. A skip decodes at most one
// period of records after jumping to a snapshot.
const ArenaIndexPeriod = 4096

// arenaSnap is the complete v2 decoder state at a record boundary:
// everything needed to resume decoding at byte offset off.
type arenaSnap struct {
	off      uint64
	expectPC uint64
	lastMem  uint64
	lastDst  uint8
	lastSrc1 uint8
	lastSrc2 uint8
}

// cursorState is the live v2 decoder state of one cursor (the mutable
// counterpart of arenaSnap).
type cursorState struct {
	off      int
	expectPC uint64
	lastMem  uint64
	lastDst  uint8
	lastSrc1 uint8
	lastSrc2 uint8
}

// arenaBuilder incrementally encodes a stream into arena form. Its
// record encoding mirrors WriteCompact byte for byte — an arena built
// here and a v2 file written from the same instructions hold identical
// bytes and digests — and it records a seek-index snapshot every
// ArenaIndexPeriod instructions as it encodes, so building an arena is
// a single pass: no intermediate []isa.Inst (48 bytes/inst) is ever
// materialized and no separate index scan runs.
type arenaBuilder struct {
	body     []byte
	snaps    []arenaSnap
	count    uint64
	expectPC uint64
	lastMem  uint64
	lastDst  uint8
	lastSrc1 uint8
	lastSrc2 uint8
}

// add encodes one instruction.
func (b *arenaBuilder) add(in *isa.Inst) {
	if b.count%ArenaIndexPeriod == 0 {
		b.snaps = append(b.snaps, arenaSnap{
			off: uint64(len(b.body)), expectPC: b.expectPC, lastMem: b.lastMem,
			lastDst: b.lastDst, lastSrc1: b.lastSrc1, lastSrc2: b.lastSrc2,
		})
	}
	first := b.count == 0
	flags := byte(in.Class) & classMask
	if in.Taken {
		flags |= flagTaken
	}
	explicitPC := first || in.PC != b.expectPC
	if explicitPC {
		flags |= flagPC
	}
	hasMem := in.Class == isa.Load || in.Class == isa.Store
	if hasMem {
		flags |= flagMem
	}
	regsChanged := first || in.Dst != b.lastDst || in.Src1 != b.lastSrc1 || in.Src2 != b.lastSrc2
	if regsChanged {
		flags |= flagRegs
	}
	b.body = append(b.body, flags)
	if explicitPC {
		b.body = binary.AppendVarint(b.body, int64(in.PC)-int64(b.expectPC))
	}
	if in.Taken {
		b.body = binary.AppendVarint(b.body, int64(in.Target)-int64(in.PC))
	}
	if hasMem {
		b.body = binary.AppendVarint(b.body, int64(in.MemAddr)-int64(b.lastMem))
		b.lastMem = in.MemAddr
	}
	if regsChanged {
		b.body = append(b.body, in.Dst, in.Src1, in.Src2)
		b.lastDst, b.lastSrc1, b.lastSrc2 = in.Dst, in.Src1, in.Src2
	}
	b.expectPC = in.NextPC()
	b.count++
}

// finish assembles the arena, computing the digest over the canonical
// v2 file bytes (header + body) without concatenating them.
func (b *arenaBuilder) finish() *Arena {
	hdr := make([]byte, fileHeaderLen)
	copy(hdr, fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], compactVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], b.count)
	h := sha256.New()
	h.Write(hdr)
	h.Write(b.body)
	a := &Arena{data: b.body, count: b.count, snaps: b.snaps}
	copy(a.digest[:], h.Sum(nil))
	return a
}

// NewArena encodes insts into a shared arena. The encoding is exactly
// WriteCompact's, so an arena built from a slice and one loaded from the
// corresponding v2 file hold identical bytes (and identical digests).
func NewArena(insts []isa.Inst) *Arena {
	var b arenaBuilder
	b.body = make([]byte, 0, 4*len(insts))
	for i := range insts {
		b.add(&insts[i])
	}
	return b.finish()
}

// ArenaFromSource drains up to n instructions from src into an arena,
// streaming each straight through the encoder.
func ArenaFromSource(src Source, n int) *Arena {
	var b arenaBuilder
	if n > 0 {
		b.body = make([]byte, 0, 4*n)
	}
	for i := 0; i < n; i++ {
		in, ok := src.Next()
		if !ok {
			break
		}
		b.add(&in)
	}
	return b.finish()
}

// fileHeaderLen is the byte length of the UCPT file header (magic +
// version + count) shared by both trace format versions.
const fileHeaderLen = 16

// LoadArena reads a trace file (either format version) into an arena.
// For v2 files the record bytes are adopted as-is; a valid sidecar index
// (path + ".idx", see WriteIndex) replaces the index-building scan, and
// a missing, stale, or corrupt sidecar silently falls back to scanning.
// v1 files are decoded and re-encoded into the compact form, so the
// arena digest identifies the instruction stream regardless of which
// on-disk version carried it.
func LoadArena(path string) (*Arena, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < fileHeaderLen || string(raw[:4]) != fileMagic {
		return nil, errors.New("trace: bad magic")
	}
	version := binary.LittleEndian.Uint32(raw[4:8])
	n := binary.LittleEndian.Uint64(raw[8:16])
	switch version {
	case fileVersion:
		insts, err := ReadAny(bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		return NewArena(insts), nil
	case compactVersion:
		const maxInsts = 1 << 30
		if n > maxInsts {
			return nil, fmt.Errorf("trace: implausible instruction count %d", n)
		}
		a := &Arena{data: raw[fileHeaderLen:], count: n, digest: sha256.Sum256(raw)}
		if snaps, ok := readSidecar(path+indexSuffix, a.digest, n); ok {
			a.snaps = snaps
			return a, nil
		}
		if err := a.buildIndex(); err != nil {
			return nil, err
		}
		return a, nil
	default:
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
}

// buildIndex scans the record stream once, validating every record and
// snapshotting the decoder state each ArenaIndexPeriod instructions.
// After a successful scan cursors can decode without error checks.
func (a *Arena) buildIndex() error {
	a.snaps = make([]arenaSnap, 0, a.count/ArenaIndexPeriod+1)
	var st cursorState
	for i := uint64(0); i < a.count; i++ {
		if i%ArenaIndexPeriod == 0 {
			a.snaps = append(a.snaps, snapOf(&st))
		}
		if err := a.decode(&st, nil); err != nil {
			return fmt.Errorf("trace: record %d: %w", i, err)
		}
	}
	if st.off != len(a.data) {
		return fmt.Errorf("trace: %d trailing bytes after %d records", len(a.data)-st.off, a.count)
	}
	return nil
}

func snapOf(st *cursorState) arenaSnap {
	return arenaSnap{
		off:      uint64(st.off),
		expectPC: st.expectPC,
		lastMem:  st.lastMem,
		lastDst:  st.lastDst,
		lastSrc1: st.lastSrc1,
		lastSrc2: st.lastSrc2,
	}
}

func (st *cursorState) load(s arenaSnap) {
	st.off = int(s.off)
	st.expectPC = s.expectPC
	st.lastMem = s.lastMem
	st.lastDst = s.lastDst
	st.lastSrc1 = s.lastSrc1
	st.lastSrc2 = s.lastSrc2
}

// decode advances st past one record, mirroring readCompactBody. When in
// is non-nil the decoded instruction is stored there; a nil in skips the
// store but performs the identical state update (used by Skip and the
// index scan).
func (a *Arena) decode(st *cursorState, in *isa.Inst) error {
	data := a.data
	if st.off >= len(data) {
		return io.ErrUnexpectedEOF
	}
	flags := data[st.off]
	st.off++
	class := isa.Class(flags & classMask)
	if int(class) >= isa.NumClasses {
		return fmt.Errorf("bad class %d", class)
	}
	taken := flags&flagTaken != 0
	pc := st.expectPC
	if flags&flagPC != 0 {
		d, n := binary.Varint(data[st.off:])
		if n <= 0 {
			return io.ErrUnexpectedEOF
		}
		st.off += n
		pc = uint64(int64(st.expectPC) + d)
	}
	var target uint64
	if taken {
		d, n := binary.Varint(data[st.off:])
		if n <= 0 {
			return io.ErrUnexpectedEOF
		}
		st.off += n
		target = uint64(int64(pc) + d)
	}
	var mem uint64
	if flags&flagMem != 0 {
		d, n := binary.Varint(data[st.off:])
		if n <= 0 {
			return io.ErrUnexpectedEOF
		}
		st.off += n
		st.lastMem = uint64(int64(st.lastMem) + d)
		mem = st.lastMem
	}
	if flags&flagRegs != 0 {
		if st.off+3 > len(data) {
			return io.ErrUnexpectedEOF
		}
		st.lastDst = data[st.off]
		st.lastSrc1 = data[st.off+1]
		st.lastSrc2 = data[st.off+2]
		st.off += 3
	}
	rec := isa.Inst{
		PC:      pc,
		Class:   class,
		Taken:   taken,
		Target:  target,
		MemAddr: mem,
		Dst:     st.lastDst,
		Src1:    st.lastSrc1,
		Src2:    st.lastSrc2,
	}
	st.expectPC = rec.NextPC()
	if in != nil {
		*in = rec
	}
	return nil
}

// Len returns the arena's instruction count.
func (a *Arena) Len() int { return int(a.count) }

// Bytes returns the size of the shared encoded stream in bytes.
func (a *Arena) Bytes() int { return len(a.data) }

// ID returns a stable hex identity for the instruction stream: the
// SHA-256 of its canonical v2 file encoding. Checkpoint keys use it as
// the trace-identity component for file-backed traces.
func (a *Arena) ID() string { return hex.EncodeToString(a.digest[:]) }

// Cursor returns a new independent read cursor positioned at the start.
// Cursors are cheap (a few words of decoder state); each is single-
// goroutine like any Source, but distinct cursors over one arena may run
// on distinct goroutines concurrently.
func (a *Arena) Cursor() *Cursor { return &Cursor{a: a} }

// Cursor is a read-only decoding position inside a shared Arena. It
// implements Source, BatchSource, Skipper, and WarmSkipper, so it slots
// into every consumer seam: the cycle engine's batched fetch, the
// sampled controller's warming pyramid, and plain scalar drains.
type Cursor struct {
	a   *Arena
	st  cursorState
	idx uint64 // records consumed
}

// Next implements Source.
func (c *Cursor) Next() (isa.Inst, bool) {
	if c.idx >= c.a.count {
		return isa.Inst{}, false
	}
	var in isa.Inst
	if err := c.a.decode(&c.st, &in); err != nil {
		// The build-time scan validated every record; reaching here means
		// the arena was corrupted in memory.
		panic("trace: arena cursor decode failed: " + err.Error())
	}
	c.idx++
	return in, true
}

// NextBatch implements BatchSource.
func (c *Cursor) NextBatch(dst []isa.Inst) int {
	n := 0
	for n < len(dst) && c.idx < c.a.count {
		if err := c.a.decode(&c.st, &dst[n]); err != nil {
			panic("trace: arena cursor decode failed: " + err.Error())
		}
		c.idx++
		n++
	}
	return n
}

// Reset implements Source.
func (c *Cursor) Reset() {
	c.st = cursorState{}
	c.idx = 0
}

// Skip implements Skipper in O(1) amortized: jump to the nearest seek-
// index snapshot at or before the target, then decode at most one index
// period of records without materializing them.
func (c *Cursor) Skip(n int) int {
	if n < 0 {
		n = 0
	}
	if rem := c.a.count - c.idx; uint64(n) > rem {
		n = int(rem)
	}
	target := c.idx + uint64(n)
	if si := target / ArenaIndexPeriod; si < uint64(len(c.a.snaps)) && si*ArenaIndexPeriod > c.idx {
		c.st.load(c.a.snaps[si])
		c.idx = si * ArenaIndexPeriod
	}
	for c.idx < target {
		if err := c.a.decode(&c.st, nil); err != nil {
			panic("trace: arena cursor decode failed: " + err.Error())
		}
		c.idx++
	}
	return n
}

// SkipWarm implements WarmSkipper: every skipped record is decoded (the
// warmer needs its footprint), reporting fetch-line crossings, memory
// effective addresses, and — when w is a BranchWarmer — conditional
// branch outcomes, exactly like the SkipWarmN fallback.
func (c *Cursor) SkipWarm(n int, w Warmer) int {
	if n < 0 {
		n = 0
	}
	if rem := c.a.count - c.idx; uint64(n) > rem {
		n = int(rem)
	}
	bw, hasBW := w.(BranchWarmer)
	lastLine, lineValid := uint64(0), false
	var in isa.Inst
	for i := 0; i < n; i++ {
		if err := c.a.decode(&c.st, &in); err != nil {
			panic("trace: arena cursor decode failed: " + err.Error())
		}
		c.idx++
		if la := in.LineAddr(); !lineValid || la != lastLine {
			lastLine, lineValid = la, true
			w.WarmFetch(la)
		}
		switch in.Class {
		case isa.Load, isa.Store:
			w.WarmMem(in.MemAddr)
		case isa.CondBranch:
			if hasBW {
				bw.WarmCond(in.PC, in.Taken)
			}
		}
	}
	return n
}

// Sidecar seek-index file format (written next to v2 trace files as
// <trace>.idx): magic, version, index period, instruction count, the
// SHA-256 of the trace file it indexes, the snapshots, and a trailing
// SHA-256 of everything before it. Readers verify both digests — a
// sidecar that does not match its trace byte-for-byte, or that was
// itself truncated or corrupted, is ignored and the index rebuilt by
// scanning.
const (
	indexMagic   = "UCPI"
	indexVersion = 1
	indexSuffix  = ".idx"
	snapBytes    = 27 // off u64 + expectPC u64 + lastMem u64 + 3 reg bytes
)

// IndexPath returns the sidecar index path for a trace file path.
func IndexPath(tracePath string) string { return tracePath + indexSuffix }

// WriteIndex serializes the arena's seek index in the sidecar format.
func (a *Arena) WriteIndex(w io.Writer) error {
	buf := make([]byte, 0, 4+4+4+8+sha256.Size+len(a.snaps)*snapBytes)
	buf = append(buf, indexMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, indexVersion)
	buf = binary.LittleEndian.AppendUint32(buf, ArenaIndexPeriod)
	buf = binary.LittleEndian.AppendUint64(buf, a.count)
	buf = append(buf, a.digest[:]...)
	for _, s := range a.snaps {
		buf = binary.LittleEndian.AppendUint64(buf, s.off)
		buf = binary.LittleEndian.AppendUint64(buf, s.expectPC)
		buf = binary.LittleEndian.AppendUint64(buf, s.lastMem)
		buf = append(buf, s.lastDst, s.lastSrc1, s.lastSrc2)
	}
	sum := sha256.Sum256(buf)
	buf = append(buf, sum[:]...)
	_, err := w.Write(buf)
	return err
}

// readSidecar loads and verifies a sidecar index. ok is false — never an
// error — when the file is missing, malformed, self-inconsistent, or
// written for different trace bytes: the caller falls back to scanning.
func readSidecar(path string, traceDigest [sha256.Size]byte, count uint64) ([]arenaSnap, bool) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	const fixed = 4 + 4 + 4 + 8 + sha256.Size
	if len(raw) < fixed+sha256.Size || string(raw[:4]) != indexMagic {
		return nil, false
	}
	body, tail := raw[:len(raw)-sha256.Size], raw[len(raw)-sha256.Size:]
	if sha256.Sum256(body) != [sha256.Size]byte(tail) {
		return nil, false
	}
	if binary.LittleEndian.Uint32(raw[4:8]) != indexVersion {
		return nil, false
	}
	if binary.LittleEndian.Uint32(raw[8:12]) != ArenaIndexPeriod {
		return nil, false
	}
	if binary.LittleEndian.Uint64(raw[12:20]) != count {
		return nil, false
	}
	if [sha256.Size]byte(raw[20:20+sha256.Size]) != traceDigest {
		return nil, false
	}
	snapData := body[fixed:]
	if len(snapData)%snapBytes != 0 {
		return nil, false
	}
	want := (count + ArenaIndexPeriod - 1) / ArenaIndexPeriod
	snaps := make([]arenaSnap, 0, len(snapData)/snapBytes)
	for o := 0; o+snapBytes <= len(snapData); o += snapBytes {
		snaps = append(snaps, arenaSnap{
			off:      binary.LittleEndian.Uint64(snapData[o : o+8]),
			expectPC: binary.LittleEndian.Uint64(snapData[o+8 : o+16]),
			lastMem:  binary.LittleEndian.Uint64(snapData[o+16 : o+24]),
			lastDst:  snapData[o+24],
			lastSrc1: snapData[o+25],
			lastSrc2: snapData[o+26],
		})
	}
	if uint64(len(snaps)) != want {
		return nil, false
	}
	return snaps, true
}
