package trace

import (
	"bytes"
	"testing"

	"ucp/internal/isa"
)

// benchInsts is sized so decode throughput dominates setup noise while
// keeping -benchtime=1x smokes fast.
const benchInsts = 200_000

func benchStream(b *testing.B) []isa.Inst {
	b.Helper()
	prog, err := BuildProgram(QuickProfiles()[0])
	if err != nil {
		b.Fatal(err)
	}
	return Collect(NewWalker(prog), benchInsts)
}

// BenchmarkTraceDecode measures raw v2 file ingest (ReadAny), the cost
// every runq job used to pay per job before the shared arena.
func BenchmarkTraceDecode(b *testing.B) {
	insts := benchStream(b)
	var buf bytes.Buffer
	if err := WriteCompact(&buf, insts); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := ReadAny(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(insts) {
			b.Fatalf("decoded %d insts, want %d", len(got), len(insts))
		}
	}
	b.ReportMetric(float64(b.N)*float64(len(insts))/b.Elapsed().Seconds(), "insts/s")
}

// BenchmarkArenaCursor measures the steady-state cursor drain over a
// shared arena — what each runq job pays instead of a full ReadAny. The
// drain itself must be allocation-free.
func BenchmarkArenaCursor(b *testing.B) {
	a := NewArena(benchStream(b))
	batch := make([]isa.Inst, 512)
	c := a.Cursor()
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		c.Reset()
		for {
			n := c.NextBatch(batch)
			if n == 0 {
				break
			}
			total += n
		}
	}
	if total != b.N*a.Len() {
		b.Fatalf("drained %d insts, want %d", total, b.N*a.Len())
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "insts/s")
}

// BenchmarkArenaSkip measures the seek-index fast path: each iteration
// performs a long Skip that would otherwise decode millions of records.
func BenchmarkArenaSkip(b *testing.B) {
	a := NewArena(benchStream(b))
	c := a.Cursor()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		if got := c.Skip(a.Len() - 1); got != a.Len()-1 {
			b.Fatalf("Skip = %d", got)
		}
	}
}
