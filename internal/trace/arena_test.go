package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ucp/internal/isa"
)

// arenaInsts is a control-flow-consistent stream long enough to cross
// several seek-index snapshot boundaries.
func arenaInsts(t *testing.T, n int) []isa.Inst {
	t.Helper()
	prog, err := BuildProgram(QuickProfiles()[0])
	if err != nil {
		t.Fatal(err)
	}
	return Collect(NewWalker(prog), n)
}

// semSame compares streams under the compact codec's documented loss:
// the target of a not-taken branch is not serialized (and never consumed
// by the simulator), so arena streams are compared semantically.
func semSame(a, b []isa.Inst) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !semanticallyEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// Compile-time pin: a Cursor must slot into every consumer seam.
var _ Source = (*Cursor)(nil)
var _ BatchSource = (*Cursor)(nil)
var _ Skipper = (*Cursor)(nil)
var _ WarmSkipper = (*Cursor)(nil)

func TestArenaCursorMatchesSlice(t *testing.T) {
	insts := arenaInsts(t, 3*ArenaIndexPeriod+117)
	a := NewArena(insts)
	if a.Len() != len(insts) {
		t.Fatalf("Len = %d, want %d", a.Len(), len(insts))
	}

	if got := drainScalar(a.Cursor(), len(insts)+10); !semSame(insts, got) {
		t.Fatalf("scalar drain diverges (%d vs %d insts)", len(got), len(insts))
	}

	// Batch drain with an awkward batch size so batches straddle
	// snapshot boundaries.
	c := a.Cursor()
	var got []isa.Inst
	buf := make([]isa.Inst, 193)
	for {
		n := c.NextBatch(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if !semSame(insts, got) {
		t.Fatalf("batch drain diverges (%d vs %d insts)", len(got), len(insts))
	}

	// Reset rewinds fully.
	c.Reset()
	if got := drainScalar(c, len(insts)+10); !semSame(insts, got) {
		t.Fatal("stream diverges after Reset")
	}
}

// TestArenaCursorSkip pins Skip against the SliceSource reference across
// snapshot boundaries: same skip count, identical stream afterwards.
func TestArenaCursorSkip(t *testing.T) {
	insts := arenaInsts(t, 2*ArenaIndexPeriod+500)
	a := NewArena(insts)
	const tail = 600
	for _, n := range []int{0, 1, 100, ArenaIndexPeriod - 1, ArenaIndexPeriod,
		ArenaIndexPeriod + 1, 2 * ArenaIndexPeriod, len(insts), len(insts) + 5} {
		ref := NewSliceSource(insts)
		refSkipped := ref.Skip(n)
		want := drainScalar(ref, tail)

		c := a.Cursor()
		if got := c.Skip(n); got != refSkipped {
			t.Fatalf("Skip(%d) = %d, want %d", n, got, refSkipped)
		}
		if got := drainScalar(c, tail); !semSame(want, got) {
			t.Fatalf("stream diverges after Skip(%d)", n)
		}
	}

	// Consecutive skips from a non-zero position must land identically.
	ref := NewSliceSource(insts)
	c := a.Cursor()
	for _, n := range []int{37, ArenaIndexPeriod, 2000, 9} {
		ref.Skip(n)
		c.Skip(n)
		wi, wok := ref.Next()
		gi, gok := c.Next()
		if wok != gok || !semanticallyEqual(wi, gi) {
			t.Fatalf("consecutive skips diverge at n=%d", n)
		}
	}
}

// TestArenaCursorSkipWarm pins SkipWarm callback parity against the
// materializing fallback, plus the post-skip stream position.
func TestArenaCursorSkipWarm(t *testing.T) {
	insts := arenaInsts(t, ArenaIndexPeriod+777)
	a := NewArena(insts)
	for _, n := range []int{0, 1, 500, ArenaIndexPeriod + 1, len(insts) + 3} {
		var want condRec
		refSkipped := SkipWarmN(scalarOnly{NewSliceSource(insts)}, n, &want)
		wantTail := drainScalar(scalarOnlyAt(insts, refSkipped), 400)

		var rec condRec
		c := a.Cursor()
		if got := c.SkipWarm(n, &rec); got != refSkipped {
			t.Fatalf("SkipWarm(%d) = %d, want %d", n, got, refSkipped)
		}
		if !sameEvents(want.events, rec.events) {
			t.Fatalf("SkipWarm(%d): warm event sequence diverges (%d vs %d events)",
				n, len(rec.events), len(want.events))
		}
		if got := drainScalar(c, 400); !semSame(wantTail, got) {
			t.Fatalf("stream diverges after SkipWarm(%d)", n)
		}
	}
}

// scalarOnlyAt is a slice source already advanced past pos instructions.
func scalarOnlyAt(insts []isa.Inst, pos int) Source {
	s := NewSliceSource(insts)
	s.Skip(pos)
	return s
}

// instDigest folds a full instruction stream into a comparable hash
// (not-taken branch targets excluded — the compact codec drops them).
func instDigest(src Source) [sha256.Size]byte {
	h := sha256.New()
	var rec [32]byte
	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		if !in.Taken {
			in.Target = 0
		}
		binary.LittleEndian.PutUint64(rec[0:8], in.PC)
		binary.LittleEndian.PutUint64(rec[8:16], in.Target)
		binary.LittleEndian.PutUint64(rec[16:24], in.MemAddr)
		rec[24] = byte(in.Class)
		rec[25] = 0
		if in.Taken {
			rec[25] = 1
		}
		rec[26], rec[27], rec[28] = in.Dst, in.Src1, in.Src2
		h.Write(rec[:])
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

// TestArenaConcurrentCursors runs many cursors over one arena on
// separate goroutines (meaningful under -race): every cursor must
// produce a byte-identical stream digest, interleaving skips to stress
// the shared seek index.
func TestArenaConcurrentCursors(t *testing.T) {
	insts := arenaInsts(t, 2*ArenaIndexPeriod+901)
	a := NewArena(insts)
	want := instDigest(NewSliceSource(insts))

	const goroutines = 8
	digests := make([][sha256.Size]byte, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := a.Cursor()
			// Perturb the cursor with a goroutine-specific skip pattern
			// first, then rewind and digest the full stream.
			c.Skip(g * 1001)
			c.Next()
			c.Reset()
			digests[g] = instDigest(c)
		}(g)
	}
	wg.Wait()
	for g, d := range digests {
		if d != want {
			t.Fatalf("cursor on goroutine %d produced a divergent stream digest", g)
		}
	}
}

// TestLoadArena checks both file versions load into identical arenas:
// same identity, same stream.
func TestLoadArena(t *testing.T) {
	insts := arenaInsts(t, 5000)
	dir := t.TempDir()
	v1 := filepath.Join(dir, "t1.trace")
	v2 := filepath.Join(dir, "t2.trace")
	var b1, b2 bytes.Buffer
	if err := Write(&b1, insts); err != nil {
		t.Fatal(err)
	}
	if err := WriteCompact(&b2, insts); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(v1, b1.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(v2, b2.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	ref := NewArena(insts)
	for name, path := range map[string]string{"v1": v1, "v2": v2} {
		a, err := LoadArena(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.ID() != ref.ID() {
			t.Fatalf("%s: ID %s differs from in-memory arena %s", name, a.ID(), ref.ID())
		}
		if got := drainScalar(a.Cursor(), len(insts)+10); !semSame(insts, got) {
			t.Fatalf("%s: stream diverges", name)
		}
	}
}

// TestArenaSidecar pins the sidecar index round trip: a written index
// must be accepted and produce an arena whose skips behave identically,
// and every corruption (flipped byte, truncation, digest mismatch) must
// fall back to scanning rather than trusting the sidecar.
func TestArenaSidecar(t *testing.T) {
	insts := arenaInsts(t, 2*ArenaIndexPeriod+333)
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	var buf bytes.Buffer
	if err := WriteCompact(&buf, insts); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	ref := NewArena(insts)
	var idx bytes.Buffer
	if err := ref.WriteIndex(&idx); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(IndexPath(path), idx.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// Valid sidecar: must be adopted (observable as identical snaps) and
	// skips must still match the reference.
	a, err := LoadArena(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.snaps) != len(ref.snaps) {
		t.Fatalf("sidecar arena has %d snaps, want %d", len(a.snaps), len(ref.snaps))
	}
	for i := range a.snaps {
		if a.snaps[i] != ref.snaps[i] {
			t.Fatalf("snap %d differs: %+v vs %+v", i, a.snaps[i], ref.snaps[i])
		}
	}
	c := a.Cursor()
	c.Skip(ArenaIndexPeriod + 17)
	s := NewSliceSource(insts)
	s.Skip(ArenaIndexPeriod + 17)
	if got := drainScalar(c, 200); !semSame(drainScalar(s, 200), got) {
		t.Fatal("sidecar-indexed arena diverges after Skip")
	}

	// Corrupt sidecars: flip one byte at a few offsets, truncate, and
	// pair with a different trace. All must be rejected (ok=false) while
	// LoadArena still succeeds by scanning.
	good := idx.Bytes()
	for _, cut := range []int{0, 5, 10, 30, len(good) / 2, len(good) - 1} {
		bad := append([]byte(nil), good...)
		bad[cut] ^= 0xff
		if _, ok := readSidecar(writeTemp(t, dir, bad), ref.digest, ref.count); ok {
			t.Fatalf("sidecar with byte %d flipped was accepted", cut)
		}
	}
	for _, cut := range []int{0, 3, 20, len(good) - 1} {
		if _, ok := readSidecar(writeTemp(t, dir, good[:cut]), ref.digest, ref.count); ok {
			t.Fatalf("sidecar truncated to %d bytes was accepted", cut)
		}
	}
	other := NewArena(arenaInsts(t, 100))
	if _, ok := readSidecar(writeTemp(t, dir, good), other.digest, other.count); ok {
		t.Fatal("sidecar for a different trace was accepted")
	}
	bad := filepath.Join(dir, "corrupt.trace")
	if err := os.WriteFile(bad, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 1
	if err := os.WriteFile(IndexPath(bad), flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	ac, err := LoadArena(bad)
	if err != nil {
		t.Fatalf("LoadArena with corrupt sidecar: %v", err)
	}
	if got := drainScalar(ac.Cursor(), len(insts)+10); !semSame(insts, got) {
		t.Fatal("corrupt-sidecar fallback produced a divergent stream")
	}
}

var tempSeq int

func writeTemp(t *testing.T, dir string, data []byte) string {
	t.Helper()
	tempSeq++
	p := filepath.Join(dir, fmt.Sprintf("side-%d.idx", tempSeq))
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestLoadArenaCorrupt truncates a v2 trace file at every byte: every
// prefix must fail cleanly (the index-building scan validates records),
// never panic or succeed.
func TestLoadArenaCorrupt(t *testing.T) {
	insts := corruptInsts()
	var buf bytes.Buffer
	if err := WriteCompact(&buf, insts); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	for cut := 0; cut < len(full); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadArena(path); err == nil {
			t.Fatalf("prefix of %d/%d bytes loaded without error", cut, len(full))
		}
	}
	// Trailing garbage after the declared records must also be rejected.
	if err := os.WriteFile(path, append(append([]byte(nil), full...), 0x00), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadArena(path); err == nil {
		t.Fatal("trailing garbage loaded without error")
	}
}
